module github.com/oblivfd/oblivfd

go 1.22
