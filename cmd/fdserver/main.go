// Command fdserver runs the untrusted storage server S: it holds only
// ciphertexts and answers the storage protocol over TCP. Pair it with
// fdclient (or any securefd.DialTCP client) to reproduce the paper's
// two-machine deployment (§VII-A).
//
//	fdserver -listen :7066
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
)

func main() {
	var (
		listen   = flag.String("listen", ":7066", "address to listen on")
		stats    = flag.Duration("stats", 0, "if > 0, print storage stats at this interval")
		latency  = flag.Duration("latency", 0, "artificial per-operation delay, to model a slower network")
		snapshot = flag.String("snapshot", "", "persistence file: loaded at startup if present, written on shutdown")
	)
	flag.Parse()

	if err := run(*listen, *stats, *latency, *snapshot); err != nil {
		fmt.Fprintln(os.Stderr, "fdserver:", err)
		os.Exit(1)
	}
}

func run(listen string, statsEvery, latency time.Duration, snapshotPath string) error {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	return serve(l, statsEvery, latency, snapshotPath)
}

// serve runs the server on an established listener until it closes.
func serve(l net.Listener, statsEvery, latency time.Duration, snapshotPath string) error {
	srv := store.NewServer()
	if snapshotPath != "" {
		if f, err := os.Open(snapshotPath); err == nil {
			err = srv.LoadSnapshot(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("loading snapshot %s: %w", snapshotPath, err)
			}
			st, _ := srv.Stats()
			fmt.Printf("restored snapshot %s: %d objects, %d bytes\n", snapshotPath, st.Objects, st.StoredBytes)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	svc := store.WithLatency(store.Service(srv), latency)
	fmt.Printf("fdserver listening on %s (the server sees only ciphertexts and access patterns)\n", l.Addr())

	if statsEvery > 0 {
		go func() {
			for range time.Tick(statsEvery) {
				st, err := srv.Stats()
				if err != nil {
					continue
				}
				fmt.Printf("stats: %d objects, %d bytes stored, %d ops observed\n",
					st.Objects, st.StoredBytes, srv.Trace().TotalOps())
			}
		}()
	}

	// Shut down cleanly on interrupt.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Println("\nshutting down")
		l.Close()
	}()

	err := transport.Serve(l, svc)
	if snapshotPath != "" {
		f, ferr := os.Create(snapshotPath)
		if ferr != nil {
			return ferr
		}
		if serr := srv.SaveSnapshot(f); serr != nil {
			f.Close()
			return serr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		fmt.Printf("saved snapshot to %s\n", snapshotPath)
	}
	return err
}
