// Command fdserver runs the untrusted storage server S: it holds only
// ciphertexts and answers the storage protocol over TCP. Pair it with
// fdclient (or any securefd.DialTCP client) to reproduce the paper's
// two-machine deployment (§VII-A). The protocol includes fused batch
// frames (one message carrying many cell operations, applied in order),
// so clients that batch pay network round trips per batch, not per cell.
//
//	fdserver -listen :7066
//
// On SIGINT or SIGTERM the server drains: it stops accepting connections,
// lets in-flight requests finish within -grace, then exits (writing
// -snapshot if configured). With -data-dir the server is crash-safe instead:
// every mutation is logged to an append-only WAL before it is acknowledged,
// client-marked epochs become atomic snapshots, and startup recovers the
// pre-crash state from the newest valid snapshot plus the log tail — kill -9
// loses nothing. For resilience experiments, -fault-rate/-spike-rate
// inject seeded transient storage faults and -drop-rate severs live
// connections mid-call; a client built on securefd.WithRetry and the
// self-healing DialTCP transport rides through all of them.
//
// With -metrics-addr the server additionally exposes operator telemetry:
// Prometheus text at /metrics, the same snapshot as JSON at /metrics.json,
// recent distributed-tracing spans as Chrome trace-event JSON at
// /trace.json (Perfetto-loadable), and the Go profiler under
// /debug/pprof/. Everything exported is an operation count, byte size, or
// latency — quantities the storage server observes anyway, so the
// endpoints add nothing to the leakage profile; span contexts ride the
// frame protocol in a fixed-size, always-present header, so enabling
// tracing never changes a frame's length (DESIGN.md §14).
// Logs are human-readable key=value lines by default; -log-json switches
// to one JSON object per line for log shippers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
	"github.com/oblivfd/oblivfd/internal/trace"
	"github.com/oblivfd/oblivfd/internal/transport"
)

// config collects the serve options so flags extend without churn.
type config struct {
	statsEvery   time.Duration
	latency      time.Duration
	snapshotPath string
	dataDir      string        // durable storage directory (WAL + snapshots)
	grace        time.Duration // drain window for in-flight requests on shutdown
	faultRate    float64       // seeded transient storage error rate
	spikeRate    float64       // seeded latency spike rate
	spike        time.Duration // spike magnitude
	dropRate     float64       // seeded mid-call connection drop rate
	corruptRate  float64       // seeded read-payload corruption rate
	faultSeed    int64
	metricsAddr  string // if set, serve /metrics + /metrics.json + /debug/pprof/
	logJSON      bool

	// Distributed tracing (spans exported at /trace.json on -metrics-addr).
	traceSample   int           // record every Nth trace (0 disables tracing)
	traceCapacity int           // span ring-buffer size
	traceSlow     time.Duration // log spans at least this slow (0 = never)

	// Multi-tenant admission control (0 / "" = unlimited or disabled).
	maxSessions  int           // concurrently open sessions
	maxInflight  int           // concurrently executing requests across sessions
	sessionToken string        // shared auth token handshakes must present
	sessionRate  float64       // per-session request rate limit (req/s)
	idleTimeout  time.Duration // evict sessions idle this long

	// Replication (requires -data-dir). A primary ships its WAL to the
	// -replicas peers; a -replica-of server applies that stream and refuses
	// client operations until promoted. A replica may also carry -replicas
	// (its own peer list) so that, once promoted, it ships to the survivors.
	replicas    string        // comma-separated peer addresses to ship to when primary
	replicaOf   string        // primary's address this server replicates (replica role)
	fence       int64         // initial fencing epoch (0 = 1, or whatever FENCE recorded)
	shipTimeout time.Duration // per-shipment deadline on replication calls

	// Background integrity scrubbing (requires -data-dir).
	scrubInterval time.Duration // pause between full sweeps (0 = off)
	scrubRate     int64         // scrub work units per second (cells / KiB)
}

func main() {
	var cfg config
	listen := flag.String("listen", ":7066", "address to listen on")
	flag.DurationVar(&cfg.statsEvery, "stats", 0, "if > 0, log storage stats at this interval")
	flag.DurationVar(&cfg.latency, "latency", 0, "artificial per-operation delay, to model a slower network")
	flag.StringVar(&cfg.snapshotPath, "snapshot", "", "persistence file: loaded at startup if present, written on shutdown")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable storage directory (WAL + atomic snapshots): crash-safe, recovers on start; excludes -snapshot")
	flag.DurationVar(&cfg.grace, "grace", 5*time.Second, "drain window for in-flight requests on SIGINT")
	flag.Float64Var(&cfg.faultRate, "fault-rate", 0, "inject transient storage errors at this rate (0..1), for resilience testing")
	flag.Float64Var(&cfg.spikeRate, "spike-rate", 0, "inject latency spikes at this rate (0..1)")
	flag.DurationVar(&cfg.spike, "spike", 5*time.Millisecond, "latency spike magnitude for -spike-rate")
	flag.Float64Var(&cfg.dropRate, "drop-rate", 0, "sever live connections mid-call at this per-I/O rate (0..1)")
	flag.Float64Var(&cfg.corruptRate, "corrupt-rate", 0, "corrupt read payloads at this rate (0..1), modeling a Byzantine server; clients must detect every hit")
	flag.Int64Var(&cfg.faultSeed, "fault-seed", 1, "seed for the deterministic fault/drop schedules")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "if set, serve Prometheus /metrics, /metrics.json, and /debug/pprof/ on this address")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "log as JSON lines instead of key=value text")
	flag.IntVar(&cfg.traceSample, "trace-sample", 1, "head-sample every Nth trace into the span ring buffer (0 disables tracing)")
	flag.IntVar(&cfg.traceCapacity, "trace-capacity", 4096, "span ring-buffer capacity; oldest spans are evicted first")
	flag.DurationVar(&cfg.traceSlow, "trace-slow", 0, "log a structured slow-span event for spans at least this long, sampled or not (0 = never)")
	flag.IntVar(&cfg.maxSessions, "max-sessions", 0, "cap concurrently open client sessions; excess handshakes are refused with a retryable overload error (0 = unlimited)")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "cap requests executing at once across all sessions; excess requests are shed (0 = unlimited)")
	flag.StringVar(&cfg.sessionToken, "session-token", "", "require every session handshake to present this token; sessionless requests are refused while set")
	flag.Float64Var(&cfg.sessionRate, "session-rate", 0, "per-session request rate limit in req/s (0 = unlimited)")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 0, "evict sessions idle this long, freeing their session slots (0 = never)")
	flag.StringVar(&cfg.replicas, "replicas", "", "comma-separated peer addresses to ship the WAL to while primary; on a -replica-of server this takes effect at promotion (requires -data-dir)")
	flag.StringVar(&cfg.replicaOf, "replica-of", "", "address of the primary this server replicates; refuses client ops until promoted (requires -data-dir)")
	flag.Int64Var(&cfg.fence, "fence", 0, "initial fencing epoch; 0 defers to the FENCE file or 1, higher values force-promote past a stale primary")
	flag.DurationVar(&cfg.shipTimeout, "ship-timeout", 5*time.Second, "deadline per replication call; a peer that exceeds it is marked down and resynced by snapshot when it returns")
	flag.DurationVar(&cfg.scrubInterval, "scrub-interval", 0, "background integrity scrub: pause between full sweeps over snapshots, WAL, and stored cells (0 disables; requires -data-dir)")
	flag.Int64Var(&cfg.scrubRate, "scrub-rate", 65536, "scrub rate limit in work units per second (one unit per cell verified or KiB of file scanned; 0 = unlimited)")
	flag.Parse()

	if err := run(*listen, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "fdserver:", err)
		os.Exit(1)
	}
}

func run(listen string, cfg config) error {
	l, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	return serve(l, cfg)
}

// newLogger builds the process logger: text for humans, JSON for shippers.
func newLogger(jsonFormat bool) *slog.Logger {
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(os.Stdout, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stdout, nil))
}

// baseStore is what the command needs from either storage backend beyond the
// Service surface.
type baseStore interface {
	store.Service
	Trace() *trace.Recorder
}

// health is the /healthz and /readyz response body.
type health struct {
	Status         string `json:"status"`
	Role           string `json:"role"` // primary | replica | standalone
	Fence          int64  `json:"fence,omitempty"`
	ReplicationLag int64  `json:"replication_lag,omitempty"`
	Watermark      int64  `json:"watermark,omitempty"`
	Draining       bool   `json:"draining"`
	Degraded       bool   `json:"degraded"` // disk full: read-only, writes shed
	ActiveSessions int    `json:"active_sessions"`
}

// healthSnapshot summarizes liveness and role for the operator endpoints.
func healthSnapshot(durable *store.DurableServer, rep *store.ReplicatedServer, ts *transport.Server) health {
	h := health{
		Status:         "ok",
		Role:           "standalone",
		Draining:       ts.Draining(),
		ActiveSessions: ts.Sessions().Active(),
	}
	if durable != nil && durable.Degraded() {
		h.Degraded = true
		h.Status = "degraded"
	}
	if rep != nil {
		if rep.IsPrimary() {
			h.Role = "primary"
		} else {
			h.Role = "replica"
		}
		h.Fence = rep.Fence()
		h.ReplicationLag = rep.ReplicaLag()
		h.Watermark = rep.Watermark()
	}
	return h
}

// serve runs the server on an established listener until it closes or a
// termination signal drains it.
func serve(l net.Listener, cfg config) error {
	log := newLogger(cfg.logJSON)

	// One registry is shared by every layer: durable storage (WAL/snapshot
	// timings), the service decorators (per-op latency, fault counters),
	// and the RPC server (per-RPC latency, connection and byte counters).
	var reg *telemetry.Registry
	if cfg.metricsAddr != "" {
		reg = telemetry.New()
	}

	// One tracer spans every layer of a request: RPC dispatch, store ops,
	// WAL appends, replication shipping. Its span contexts arrive in the
	// frame protocol's fixed-size header, so client spans and these server
	// spans share trace IDs and merge into one causal tree. Tracing is
	// leakage-neutral by construction (DESIGN.md §14).
	var otr *otrace.Tracer
	if cfg.traceSample > 0 {
		otr = otrace.New(otrace.Config{
			Service:     "fdserver",
			Capacity:    cfg.traceCapacity,
			SampleEvery: cfg.traceSample,
			SlowSpan:    cfg.traceSlow,
			OnSlowSpan: func(r otrace.Record) {
				log.Warn("slow span", "span_name", r.Name, "trace", r.Trace,
					"span", r.Span, "dur", time.Duration(r.Dur).String())
			},
		})
	}

	var srv baseStore
	var durable *store.DurableServer
	var mem *store.Server
	if cfg.dataDir != "" {
		if cfg.snapshotPath != "" {
			return fmt.Errorf("-snapshot and -data-dir are mutually exclusive")
		}
		d, err := store.OpenDir(cfg.dataDir, store.DurableOptions{Metrics: reg, Trace: otr})
		if err != nil {
			return fmt.Errorf("opening data dir %s: %w", cfg.dataDir, err)
		}
		defer d.Close()
		info := d.Recovery()
		st, _ := d.Stats()
		log.Info("recovered durable storage", "dir", cfg.dataDir,
			"snapshot_seq", info.SnapshotSeq, "epoch", info.SnapshotEpoch,
			"wal_replayed", info.WALReplayed, "objects", st.Objects, "bytes", st.StoredBytes)
		if info.TornTail {
			log.Warn("repaired torn WAL tail", "truncated_at", info.WALTruncatedAt)
		}
		durable, srv = d, d
	} else {
		mem = store.NewServer()
		if cfg.snapshotPath != "" {
			if f, err := os.Open(cfg.snapshotPath); err == nil {
				err = mem.LoadSnapshot(f)
				f.Close()
				if err != nil {
					return fmt.Errorf("loading snapshot %s: %w", cfg.snapshotPath, err)
				}
				st, _ := mem.Stats()
				log.Info("restored snapshot", "path", cfg.snapshotPath,
					"objects", st.Objects, "bytes", st.StoredBytes)
			} else if !os.IsNotExist(err) {
				return err
			}
		}
		srv = mem
	}

	// Replication wraps the durable store before any decorator so every
	// acknowledged mutation is also the one shipped to the replicas.
	var rep *store.ReplicatedServer
	if cfg.replicas != "" || cfg.replicaOf != "" || cfg.fence > 0 {
		if durable == nil {
			return fmt.Errorf("-replicas, -replica-of and -fence require -data-dir")
		}
		var peers []string
		for _, p := range strings.Split(cfg.replicas, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		token := cfg.sessionToken
		shipTimeout := cfg.shipTimeout
		if shipTimeout <= 0 {
			shipTimeout = 5 * time.Second
		}
		dial := func(addr string) (store.ReplicaConn, error) {
			return transport.DialWith(addr, transport.ClientConfig{
				Token:       token,
				DialTimeout: 2 * time.Second,
				// Shipments carry the primary's span context so the
				// replica's apply spans join the same causal tree.
				Trace: otr,
				// Short per-call deadline: a hung (not merely dead) peer can
				// stall writers for at most one shipment before it is marked
				// down and skipped until the redial cadence.
				CallTimeout: shipTimeout,
				Redials:     -1, // the shipper handles peer loss itself
			})
		}
		r, err := store.Replicated(durable, store.ReplicationConfig{
			Primary: cfg.replicaOf == "",
			Fence:   cfg.fence,
			Peers:   peers,
			Dial:    dial,
			Metrics: reg,
			Trace:   otr,
		})
		if err != nil {
			return fmt.Errorf("enabling replication: %w", err)
		}
		rep, srv = r, r
		role := "primary"
		if !rep.IsPrimary() {
			role = "replica"
		}
		log.Info("replication on", "role", role, "fence", rep.Fence(),
			"replicas", len(peers), "primary", cfg.replicaOf)
	}

	// Background integrity scrubbing sweeps snapshots, the WAL, and every
	// stored cell on a fixed, data-independent schedule, repairing from a
	// replica (or from live memory, for file damage) before foreground
	// reads trip over the corruption. Trace-neutral: DESIGN.md §15.
	if cfg.scrubInterval > 0 {
		if durable == nil {
			return fmt.Errorf("-scrub-interval requires -data-dir")
		}
		scrubber := store.NewScrubber(durable, rep, store.ScrubConfig{
			Interval: cfg.scrubInterval,
			Rate:     cfg.scrubRate,
			Metrics:  reg,
		})
		scrubber.Start()
		defer scrubber.Close()
		log.Info("integrity scrubbing on", "interval", cfg.scrubInterval.String(),
			"rate", cfg.scrubRate, "repair", rep != nil)
	}

	svc := store.WithLatency(store.Service(srv), cfg.latency)
	var faulty *store.FaultService
	if cfg.faultRate > 0 || cfg.spikeRate > 0 || cfg.corruptRate > 0 {
		faulty = store.WithFaults(svc, store.FaultConfig{
			Seed:        cfg.faultSeed,
			ErrorRate:   cfg.faultRate,
			SpikeRate:   cfg.spikeRate,
			Spike:       cfg.spike,
			CorruptRate: cfg.corruptRate,
			Metrics:     reg,
		})
		svc = faulty
		log.Info("fault injection on", "error_rate", cfg.faultRate,
			"spike_rate", cfg.spikeRate, "corrupt_rate", cfg.corruptRate,
			"seed", cfg.faultSeed)
	}
	// Outermost decorator: the per-op histograms measure what an RPC
	// dispatch actually costs, injected latency and faults included.
	svc = store.WithMetrics(svc, reg)
	var droppy *transport.FaultyListener
	if cfg.dropRate > 0 {
		droppy = transport.WithConnFaults(l, transport.FaultConfig{Seed: cfg.faultSeed, DropRate: cfg.dropRate})
		log.Info("connection drops on", "drop_rate", cfg.dropRate, "seed", cfg.faultSeed)
	}
	log.Info("fdserver listening (the server sees only ciphertexts and access patterns)",
		"addr", l.Addr().String())

	ts := transport.NewServer(svc)
	ts.SetSessionLimits(store.SessionLimits{
		MaxSessions: cfg.maxSessions,
		MaxInflight: cfg.maxInflight,
		RatePerSec:  cfg.sessionRate,
		IdleTimeout: cfg.idleTimeout,
		Token:       cfg.sessionToken,
	})
	ts.SetMetrics(reg)
	ts.SetTracer(otr)
	if rep != nil {
		ts.SetReplicator(rep)
	}
	if cfg.maxSessions > 0 || cfg.maxInflight > 0 || cfg.sessionRate > 0 ||
		cfg.idleTimeout > 0 || cfg.sessionToken != "" {
		log.Info("admission control on", "max_sessions", cfg.maxSessions,
			"max_inflight", cfg.maxInflight, "session_rate", cfg.sessionRate,
			"idle_timeout", cfg.idleTimeout.String(), "token_required", cfg.sessionToken != "")
	}

	var metricsSrv *http.Server
	if reg != nil {
		ml, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener on %s: %w", cfg.metricsAddr, err)
		}
		mux := telemetry.NewMux(reg)
		mux.Handle("/trace.json", otr.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			h := healthSnapshot(durable, rep, ts)
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(h)
		})
		mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
			// Ready means "will accept client operations": not draining,
			// not degraded read-only (disk full), and, when replicated,
			// holding the primary role. Replicas answer 503 so a load
			// balancer only routes writers at the real primary.
			h := healthSnapshot(durable, rep, ts)
			w.Header().Set("Content-Type", "application/json")
			if h.Draining || h.Degraded || (rep != nil && h.Role == "replica") {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = json.NewEncoder(w).Encode(h)
		})
		metricsSrv = &http.Server{Handler: mux}
		go func() {
			if serr := metricsSrv.Serve(ml); serr != nil && serr != http.ErrServerClosed {
				log.Error("metrics server failed", "err", serr)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			_ = metricsSrv.Shutdown(ctx)
		}()
		log.Info("telemetry endpoint up", "addr", ml.Addr().String(),
			"paths", "/metrics /metrics.json /trace.json /healthz /readyz /debug/pprof/")
	}

	if cfg.statsEvery > 0 {
		go func() {
			for range time.Tick(cfg.statsEvery) {
				st, err := srv.Stats()
				if err != nil {
					continue
				}
				attrs := []any{
					"objects", st.Objects, "bytes", st.StoredBytes,
					"ops", srv.Trace().TotalOps(),
				}
				if faulty != nil {
					attrs = append(attrs, "faults_injected", faulty.Injected())
				}
				if droppy != nil {
					attrs = append(attrs, "conns_dropped", droppy.Drops())
				}
				log.Info("stats", attrs...)
			}
		}()
	}

	// Drain cleanly on SIGINT or SIGTERM (what init systems and container
	// runtimes send): stop accepting, let in-flight requests finish within
	// the grace window, then close what remains.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		s, ok := <-sig
		if !ok {
			return
		}
		log.Info("signal received: draining", "signal", s.String(),
			"active_conns", ts.ActiveConns(), "active_sessions", ts.Sessions().Active(),
			"grace", cfg.grace.String())
		ts.Shutdown(cfg.grace)
		log.Info("drained", "requests_shed", ts.Sessions().Shed(),
			"handshakes_rejected", ts.Sessions().Rejected())
	}()

	var err error
	if droppy != nil {
		err = ts.Serve(droppy)
	} else {
		err = ts.Serve(l)
	}
	signal.Stop(sig) // no more sends possible after Stop returns
	close(sig)       // unblock the drain goroutine if no signal arrived
	<-drained        // don't exit mid-drain
	switch {
	case durable != nil:
		// Snapshot at the current epoch so the next start replays no WAL;
		// even without it, the WAL alone already guarantees recovery.
		if serr := durable.Snapshot(); serr != nil {
			return fmt.Errorf("final snapshot: %w", serr)
		}
		log.Info("saved final snapshot", "dir", cfg.dataDir)
	case cfg.snapshotPath != "":
		f, ferr := os.Create(cfg.snapshotPath)
		if ferr != nil {
			return ferr
		}
		if serr := mem.SaveSnapshot(f); serr != nil {
			f.Close()
			return serr
		}
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		log.Info("saved snapshot", "path", cfg.snapshotPath)
	}
	return err
}
