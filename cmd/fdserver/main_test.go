package main

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
)

func TestServeAcceptsClients(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serve(l, config{}) }()

	c, err := transport.Dial(l.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.CreateArray("a", 4); err != nil {
		t.Fatalf("CreateArray: %v", err)
	}
	if err := c.WriteCells("a", []int64{0}, [][]byte{{1, 2}}); err != nil {
		t.Fatalf("WriteCells: %v", err)
	}
	got, err := c.ReadCells("a", []int64{0})
	if err != nil || len(got) != 1 || len(got[0]) != 2 {
		t.Fatalf("ReadCells = %v, %v", got, err)
	}
	c.Close()
	l.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Error("serve did not return after listener close")
	}
}

func TestServeWithLatency(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = serve(l, config{latency: 2 * time.Millisecond}) }()

	c, err := transport.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if err := c.CreateArray("a", 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("latency not applied: call took %v", d)
	}
}

// TestServeWithFaultInjection: -fault-rate faults surface to the client as
// store.ErrTransient (retryable), and a retry-wrapped client rides them out.
func TestServeWithFaultInjection(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = serve(l, config{faultRate: 1, faultSeed: 3}) }()

	c, err := transport.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("a", 1); !errors.Is(err, store.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient through the -fault-rate server", err)
	}
}

// TestServeWithConnDrops: -drop-rate severs connections mid-call; a
// self-healing client still completes every operation.
func TestServeWithConnDrops(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = serve(l, config{dropRate: 0.05, faultSeed: 9}) }()

	cfg := transport.DefaultClientConfig()
	cfg.RedialBackoff = time.Millisecond
	cfg.RedialMaxBackoff = 20 * time.Millisecond
	c, err := transport.DialWith(l.Addr().String(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateArray("a", 16); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := c.WriteCells("a", []int64{int64(i % 16)}, [][]byte{{byte(i)}}); err != nil {
			t.Fatalf("write %d through -drop-rate server: %v", i, err)
		}
	}
	if c.Reconnects() == 0 {
		t.Error("no reconnects at 5% drop rate over 101 calls")
	}
}

func TestRunBadAddress(t *testing.T) {
	if err := run("256.256.256.256:0", config{}); err == nil {
		t.Error("bad listen address accepted")
	}
}

// TestSnapshotPersistence: state written before shutdown is visible after a
// restart with the same -snapshot path.
func TestSnapshotPersistence(t *testing.T) {
	path := t.TempDir() + "/state.gob"

	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serve(l1, config{snapshotPath: path}) }()
	c1, err := transport.Dial(l1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.CreateArray("persist", 2); err != nil {
		t.Fatal(err)
	}
	if err := c1.WriteCells("persist", []int64{1}, [][]byte{{42}}); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	l1.Close()
	if err := <-done; err != nil {
		t.Fatalf("first serve: %v", err)
	}

	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	go func() { _ = serve(l2, config{snapshotPath: path}) }()
	c2, err := transport.Dial(l2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.ReadCells("persist", []int64{1})
	if err != nil {
		t.Fatalf("ReadCells after restart: %v", err)
	}
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != 42 {
		t.Errorf("restored cell = %v, want [42]", got)
	}
}
