package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"rnd", "adult", "letter", "flight"} {
		out := filepath.Join(dir, name+".csv")
		if err := run(name, 20, 5, 1, out); err != nil {
			t.Errorf("run(%s): %v", name, err)
			continue
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Count(string(data), "\n")
		if lines != 21 { // header + 20 rows
			t.Errorf("%s: %d lines, want 21", name, lines)
		}
	}
}

func TestRunRNDColumns(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.csv")
	if err := run("rnd", 5, 7, 1, out); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	header := strings.SplitN(string(data), "\n", 2)[0]
	if got := len(strings.Split(header, ",")); got != 7 {
		t.Errorf("columns = %d, want 7", got)
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("bogus", 10, 5, 1, filepath.Join(t.TempDir(), "x.csv")); err == nil {
		t.Error("unknown dataset accepted")
	}
}
