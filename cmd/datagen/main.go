// Command datagen emits one of the evaluation datasets as CSV: the paper's
// synthetic RND workload or a shape-compatible Adult/Letter/Flight stand-in
// (Table I; see DESIGN.md §2 for the substitution rationale).
//
//	datagen -dataset rnd -rows 8192 -cols 10 -o rnd.csv
//	datagen -dataset flight -rows 100000 -o flight.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/oblivfd/oblivfd/securefd"
)

func main() {
	var (
		name = flag.String("dataset", "rnd", "rnd|adult|letter|flight")
		rows = flag.Int("rows", 0, "row count (0 = published size; rnd defaults to 8192)")
		cols = flag.Int("cols", 10, "column count (rnd only)")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	if err := run(*name, *rows, *cols, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name string, rows, cols int, seed int64, out string) error {
	var rel *securefd.Relation
	var err error
	if name == "rnd" && rows > 0 {
		rel = securefd.GenerateRND(cols, rows, seed)
	} else {
		rel, err = securefd.GenerateDataset(name, rows, seed)
		if err != nil {
			return err
		}
	}
	if out == "" {
		return securefd.WriteCSV(os.Stdout, rel)
	}
	if err := securefd.WriteCSVFile(out, rel); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d rows × %d attributes\n", out, rel.NumRows(), rel.NumAttrs())
	return nil
}
