package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "emp.csv")
	csv := "Position,Department\nEngineer,R&D\nEngineer,R&D\nSales,Market\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllProtocols(t *testing.T) {
	path := writeCSV(t)
	for _, proto := range []string{"sort", "or-oram", "ex-oram", "plaintext", "enclave"} {
		if err := run(path, proto, "bitonic", 2, 0, false, true); err != nil {
			t.Errorf("run(%s): %v", proto, err)
		}
	}
}

func TestRunAggregateAndMaxLHS(t *testing.T) {
	path := writeCSV(t)
	if err := run(path, "plaintext", "odd-even", 1, 1, true, false); err != nil {
		t.Errorf("run with aggregate: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("missing.csv", "sort", "bitonic", 1, 0, false, true); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(writeCSV(t), "bogus", "bitonic", 1, 0, false, true); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunUnknownNetwork(t *testing.T) {
	if err := run(writeCSV(t), "sort", "zigzag", 1, 0, false, true); err == nil {
		t.Error("unknown network accepted")
	}
}
