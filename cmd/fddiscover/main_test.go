package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "emp.csv")
	csv := "Position,Department\nEngineer,R&D\nEngineer,R&D\nSales,Market\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// quietOpts returns a baseline options value for tests.
func quietOpts(proto string) options {
	return options{protoName: proto, network: "bitonic", workers: 2, quiet: true}
}

func TestRunAllProtocols(t *testing.T) {
	path := writeCSV(t)
	for _, proto := range []string{"sort", "or-oram", "ex-oram", "plaintext", "enclave"} {
		if err := run(path, quietOpts(proto)); err != nil {
			t.Errorf("run(%s): %v", proto, err)
		}
	}
}

func TestRunAggregateAndMaxLHS(t *testing.T) {
	path := writeCSV(t)
	o := options{protoName: "plaintext", network: "odd-even", workers: 1, maxLHS: 1, aggregate: true}
	if err := run(path, o); err != nil {
		t.Errorf("run with aggregate: %v", err)
	}
}

// TestRunWithFaultsAndRetry: -fault-rate plus the default retry policy
// completes discovery despite injected transient failures.
func TestRunWithFaultsAndRetry(t *testing.T) {
	o := quietOpts("sort")
	o.faultRate = 0.1
	o.faultSeed = 4
	o.rtt = 10 * time.Microsecond
	if err := run(writeCSV(t), o); err != nil {
		t.Errorf("run with 10%% faults and retries: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("missing.csv", quietOpts("sort")); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(writeCSV(t), quietOpts("bogus")); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunUnknownNetwork(t *testing.T) {
	o := quietOpts("sort")
	o.network = "zigzag"
	if err := run(writeCSV(t), o); err == nil {
		t.Error("unknown network accepted")
	}
}
