package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/securefd"
)

func writeCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "emp.csv")
	csv := "Position,Department\nEngineer,R&D\nEngineer,R&D\nSales,Market\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// quietOpts returns a baseline options value for tests.
func quietOpts(proto string) options {
	return options{protoName: proto, network: "bitonic", workers: 2, quiet: true}
}

func TestRunAllProtocols(t *testing.T) {
	path := writeCSV(t)
	for _, proto := range []string{"sort", "or-oram", "ex-oram", "plaintext", "enclave"} {
		if err := run(path, quietOpts(proto)); err != nil {
			t.Errorf("run(%s): %v", proto, err)
		}
	}
}

func TestRunAggregateAndMaxLHS(t *testing.T) {
	path := writeCSV(t)
	o := options{protoName: "plaintext", network: "odd-even", workers: 1, maxLHS: 1, aggregate: true}
	if err := run(path, o); err != nil {
		t.Errorf("run with aggregate: %v", err)
	}
}

// TestRunWithFaultsAndRetry: -fault-rate plus the default retry policy
// completes discovery despite injected transient failures.
func TestRunWithFaultsAndRetry(t *testing.T) {
	o := quietOpts("sort")
	o.faultRate = 0.1
	o.faultSeed = 4
	o.rtt = 10 * time.Microsecond
	if err := run(writeCSV(t), o); err != nil {
		t.Errorf("run with 10%% faults and retries: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("missing.csv", quietOpts("sort")); err == nil {
		t.Error("missing file accepted")
	}
	if err := run(writeCSV(t), quietOpts("bogus")); err == nil {
		t.Error("unknown protocol accepted")
	}
}

// TestRunWithTelemetry: -telemetry attaches a registry through every layer
// and prints a breakdown; the run must still succeed for each protocol.
func TestRunWithTelemetry(t *testing.T) {
	path := writeCSV(t)
	for _, proto := range []string{"sort", "or-oram", "ex-oram"} {
		o := quietOpts(proto)
		o.telemetry = true
		if err := run(path, o); err != nil {
			t.Errorf("run(%s) with telemetry: %v", proto, err)
		}
	}
}

// TestRunConnect: -connect drives discovery over the TCP transport against
// a server in another goroutine, with telemetry recording RPC latency.
func TestRunConnect(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ts := securefd.NewTCPServer(securefd.NewServer())
	go func() { _ = ts.Serve(l) }()
	defer ts.Shutdown(time.Second)

	o := quietOpts("sort")
	o.connect = l.Addr().String()
	o.telemetry = true
	if err := run(writeCSV(t), o); err != nil {
		t.Errorf("run over TCP: %v", err)
	}

	o = quietOpts("sort")
	o.connect = l.Addr().String()
	o.dataDir = t.TempDir()
	if err := run(writeCSV(t), o); err == nil {
		t.Error("-connect with -data-dir accepted; want mutual-exclusion error")
	}
}

func TestRunUnknownNetwork(t *testing.T) {
	o := quietOpts("sort")
	o.network = "zigzag"
	if err := run(writeCSV(t), o); err == nil {
		t.Error("unknown network accepted")
	}
}
