// Command fddiscover runs secure FD discovery on a CSV file (header row
// required) with any of the protocols, printing the discovered minimal
// dependencies with attribute names.
//
//	fddiscover -protocol sort -workers 4 data.csv
//	fddiscover -protocol ex-oram -max-lhs 3 data.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/oblivfd/oblivfd/securefd"
)

func main() {
	var (
		protoName = flag.String("protocol", "sort", "sort|or-oram|ex-oram|plaintext|enclave")
		workers   = flag.Int("workers", 1, "sorting parallelism degree")
		network   = flag.String("network", "bitonic", "sorting network: bitonic|odd-even")
		maxLHS    = flag.Int("max-lhs", 0, "bound determinant size (0 = unbounded)")
		aggregate = flag.Bool("aggregate", false, "merge FDs per determinant")
		quiet     = flag.Bool("quiet", false, "print only the FDs")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fddiscover [flags] <file.csv>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *protoName, *network, *workers, *maxLHS, *aggregate, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "fddiscover:", err)
		os.Exit(1)
	}
}

func run(path, protoName, networkName string, workers, maxLHS int, aggregate, quiet bool) error {
	protocol, err := securefd.ParseProtocol(protoName)
	if err != nil {
		return err
	}
	var network securefd.SortNetwork
	switch networkName {
	case "bitonic", "":
		network = securefd.NetworkBitonic
	case "odd-even":
		network = securefd.NetworkOddEven
	default:
		return fmt.Errorf("unknown network %q (want bitonic|odd-even)", networkName)
	}
	rel, err := securefd.ReadCSVFile(path)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("loaded %s: %d rows × %d attributes\n", path, rel.NumRows(), rel.NumAttrs())
	}

	db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
		Protocol: protocol,
		Workers:  workers,
		Network:  network,
		MaxLHS:   maxLHS,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	start := time.Now()
	report, err := db.Discover()
	if err != nil {
		return err
	}
	fds := report.Minimal
	if aggregate {
		fds = report.Aggregated
	}
	for _, fd := range fds {
		fmt.Println(fd.Format(rel.Schema()))
	}
	if !quiet {
		fmt.Printf("\n%d minimal FDs via %s in %s (%d partitions, %d checks)\n",
			len(report.Minimal), protocol, time.Since(start).Round(time.Millisecond),
			report.SetsMaterialized, report.Checks)
	}
	return nil
}
