// Command fddiscover runs secure FD discovery on a CSV file (header row
// required) with any of the protocols, printing the discovered minimal
// dependencies with attribute names.
//
//	fddiscover -protocol sort -workers 4 data.csv
//	fddiscover -protocol ex-oram -max-lhs 3 data.csv
//
// By default the storage server runs in-process; -connect points the client
// at a remote fdserver instead, reproducing the paper's two-machine
// deployment end to end:
//
//	fddiscover -connect localhost:7066 -protocol sort data.csv
//
// -servers points at a replicated fdserver group instead: the client probes
// for the primary and, if it dies mid-run, promotes the freshest replica
// (with a higher fencing epoch) and continues where it left off:
//
//	fddiscover -servers host1:7066,host2:7066,host3:7066 data.csv
//
// The in-process server can model a remote deployment: -rtt adds
// per-operation latency, and -fault-rate injects seeded transient storage
// failures that the client rides out with -retries (demonstrating the
// fault-tolerance stack without a network).
//
// -telemetry prints a per-phase breakdown after discovery — wall time per
// lattice level, candidate materializations, ORAM access counts, and (with
// -connect) client-side RPC latency quantiles. -log-json switches the
// informational log lines to JSON; the FD lines themselves stay plain.
//
// -trace-out records the run as a distributed trace and writes a Chrome
// trace-event JSON artifact (open it at https://ui.perfetto.dev). With
// -connect or -servers, span contexts ride the frame protocol's fixed-size
// header, the servers' spans are fetched back over the TraceDump RPC, and
// the artifact shows one causal tree per trace: lattice level → client RPC
// → server dispatch → WAL append → per-replica shipment.
//
// Long runs can survive crashes on both sides. -data-dir makes the
// in-process server durable (WAL + snapshots); -checkpoint makes the client
// write a recovery file at every completed lattice level (ORAM protocols
// only). After a crash, -resume continues from the last completed level:
//
//	fddiscover -protocol or-oram -data-dir state -checkpoint run.ckpt data.csv
//	fddiscover -data-dir state -resume run.ckpt
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/securefd"
)

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// options collects the run knobs so flags extend without churn.
type options struct {
	protoName   string
	network     string
	workers     int
	maxLHS      int
	aggregate   bool
	quiet       bool
	rtt         time.Duration // artificial per-operation latency
	faultRate   float64       // seeded transient fault injection rate
	corruptRate float64       // seeded read-payload corruption rate
	faultSeed   int64
	retries     int    // max attempts per storage call (1 = no retry)
	dataDir     string // durable server state directory
	ckptPath    string // client checkpoint file, written at level boundaries
	resume      string // checkpoint file to continue from
	connect     string // remote fdserver address; empty = in-process server
	servers     string // comma-separated replicated fdserver addresses (failover)
	db          string // database namespace on a multi-tenant server
	token       string // session auth token
	telemetry   bool   // print a per-phase breakdown after discovery
	traceOut    string // write a merged Chrome trace-event artifact here
	logJSON     bool
}

func main() {
	var o options
	flag.StringVar(&o.protoName, "protocol", "sort", "sort|or-oram|ex-oram|plaintext|enclave")
	flag.IntVar(&o.workers, "workers", 1, "parallelism degree: sorting-network workers and concurrent partition materializations per lattice level")
	flag.StringVar(&o.network, "network", "bitonic", "sorting network: bitonic|odd-even")
	flag.IntVar(&o.maxLHS, "max-lhs", 0, "bound determinant size (0 = unbounded)")
	flag.BoolVar(&o.aggregate, "aggregate", false, "merge FDs per determinant")
	flag.BoolVar(&o.quiet, "quiet", false, "print only the FDs")
	flag.DurationVar(&o.rtt, "rtt", 0, "artificial per-operation storage latency, to model a remote server")
	flag.Float64Var(&o.faultRate, "fault-rate", 0, "inject transient storage faults at this rate (0..1)")
	flag.Float64Var(&o.corruptRate, "corrupt-rate", 0, "corrupt read payloads at this rate (0..1); every hit must abort discovery with an integrity error")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for the deterministic fault schedule")
	flag.IntVar(&o.retries, "retries", 0, "max attempts per storage call (0 = default policy, 1 = no retry)")
	flag.StringVar(&o.dataDir, "data-dir", "", "durable server state directory (WAL + snapshots); survives crashes")
	flag.StringVar(&o.ckptPath, "checkpoint", "", "write a client recovery file here at every completed lattice level (or-oram/ex-oram only)")
	flag.StringVar(&o.resume, "resume", "", "continue a crashed run from this checkpoint file (requires -data-dir; no CSV argument)")
	flag.StringVar(&o.connect, "connect", "", "address of a running fdserver to use instead of the in-process server")
	flag.StringVar(&o.servers, "servers", "", "comma-separated addresses of a replicated fdserver group; the client follows the primary across failures (excludes -connect)")
	flag.StringVar(&o.db, "db", "", "with -connect: database namespace to bind the session to on a multi-tenant server (empty = root)")
	flag.StringVar(&o.token, "token", "", "with -connect: session auth token, required when the server runs with -session-token")
	flag.BoolVar(&o.telemetry, "telemetry", false, "print per-phase wall time, ORAM access counts, and latency quantiles after discovery")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the run's distributed trace (client and server spans merged) as Chrome trace-event JSON to this file")
	flag.BoolVar(&o.logJSON, "log-json", false, "log informational lines as JSON instead of key=value text")
	flag.Parse()

	if o.resume != "" {
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "usage: fddiscover -resume <file.ckpt> -data-dir <dir> (the data comes from the recovered server, not a CSV)")
			os.Exit(2)
		}
		if err := runResume(o); err != nil {
			fmt.Fprintln(os.Stderr, "fddiscover:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fddiscover [flags] <file.csv>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), o); err != nil {
		fmt.Fprintln(os.Stderr, "fddiscover:", err)
		os.Exit(1)
	}
}

// newLogger builds the informational logger; FD output stays on plain stdout.
func newLogger(jsonFormat bool) *slog.Logger {
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// newRegistry returns the run's registry, or nil when -telemetry is off (a
// nil registry turns every instrumentation point into a no-op).
func (o options) newRegistry() *securefd.Registry {
	if !o.telemetry {
		return nil
	}
	return securefd.NewRegistry()
}

// runResume recovers server and client to the checkpoint's epoch and
// continues discovery from the last completed lattice level, checkpointing
// to the same file as it goes.
func runResume(o options) error {
	log := newLogger(o.logJSON)
	if o.dataDir == "" {
		return fmt.Errorf("-resume requires -data-dir (the durable server state to recover)")
	}
	cp, err := securefd.ReadCheckpointFile(o.resume)
	if err != nil {
		return err
	}
	reg := o.newRegistry()
	tr := o.newTracer()
	db, srv, err := securefd.ResumeFromDir(o.dataDir, o.resume, securefd.DurableOptions{Trace: tr})
	if err != nil {
		return err
	}
	defer srv.Close()
	// Checkpoints carry no telemetry wiring; re-instrument the rebuilt
	// ORAM handles so post-resume accesses are counted.
	db.SetTelemetry(reg)
	db.SetTrace(tr)
	if !o.quiet {
		log.Info("resumed from checkpoint", "path", o.resume, "epoch", cp.Epoch,
			"completed_levels", cp.Epoch, "data_dir", o.dataDir)
	}
	ckpt := o.ckptPath
	if ckpt == "" {
		ckpt = o.resume
	}
	start := time.Now()
	report, err := db.DiscoverResumable(ckpt)
	if err != nil {
		return err
	}
	printReport(db, report, o, start, log)
	printBreakdown(reg, time.Since(start))
	if err := writeTrace(o, tr, nil, log); err != nil {
		return err
	}
	if err := srv.Snapshot(); err != nil {
		return err
	}
	return nil
}

// printReport prints the discovered FDs and, unless -quiet, the run summary.
func printReport(db *securefd.Database, report *securefd.Report, o options, start time.Time, log *slog.Logger) {
	fds := report.Minimal
	if o.aggregate {
		fds = report.Aggregated
	}
	for _, fd := range fds {
		fmt.Println(fd.Format(db.Schema()))
	}
	if !o.quiet {
		log.Info("discovery complete", "minimal_fds", len(report.Minimal),
			"elapsed", time.Since(start).Round(time.Millisecond).String(),
			"partitions", report.SetsMaterialized, "checks", report.Checks)
	}
}

// printBreakdown renders the per-phase telemetry table (no-op without -telemetry).
func printBreakdown(reg *securefd.Registry, wall time.Duration) {
	if reg == nil {
		return
	}
	fmt.Print(reg.Breakdown(wall))
}

// newTracer returns the run's span recorder, or nil when -trace-out is off
// (a nil tracer turns every span point into a no-op).
func (o options) newTracer() *securefd.Tracer {
	if o.traceOut == "" {
		return nil
	}
	return securefd.NewTracer(securefd.TracerConfig{Service: "fddiscover", SampleEvery: 1})
}

// writeTrace merges this process's spans with the server-side spans sharing
// their trace IDs (fetched over the TraceDump RPC when dump is non-nil) and
// writes the Chrome trace-event artifact. An unreachable server degrades to
// a client-only artifact rather than failing the run.
func writeTrace(o options, tr *securefd.Tracer, dump func(string) ([]securefd.SpanRecord, error), log *slog.Logger) error {
	if tr == nil {
		return nil
	}
	recs := tr.Records()
	ids := make(map[string]bool, len(recs))
	for _, r := range recs {
		ids[r.Trace] = true
	}
	remoteSpans := 0
	if dump != nil {
		remote, err := dump("")
		if err != nil {
			log.Warn("server trace dump failed; writing client spans only", "err", err)
		} else {
			for _, r := range remote {
				if ids[r.Trace] {
					recs = append(recs, r)
					remoteSpans++
				}
			}
		}
	}
	f, err := os.Create(o.traceOut)
	if err != nil {
		return err
	}
	if err := securefd.WriteChromeTrace(f, recs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !o.quiet {
		log.Info("trace written", "path", o.traceOut,
			"spans", len(recs), "server_spans", remoteSpans)
	}
	return nil
}

func run(path string, o options) error {
	log := newLogger(o.logJSON)
	protocol, err := securefd.ParseProtocol(o.protoName)
	if err != nil {
		return err
	}
	var network securefd.SortNetwork
	switch o.network {
	case "bitonic", "":
		network = securefd.NetworkBitonic
	case "odd-even":
		network = securefd.NetworkOddEven
	default:
		return fmt.Errorf("unknown network %q (want bitonic|odd-even)", o.network)
	}
	rel, err := securefd.ReadCSVFile(path)
	if err != nil {
		return err
	}
	if !o.quiet {
		log.Info("loaded csv", "path", path, "rows", rel.NumRows(), "attrs", rel.NumAttrs())
	}

	reg := o.newRegistry()
	tr := o.newTracer()
	// dumpTrace, when remote, fetches the servers' span rings so the
	// artifact holds both halves of every trace.
	var dumpTrace func(string) ([]securefd.SpanRecord, error)
	var svc securefd.Service
	var durable *securefd.DurableServer
	switch {
	case o.servers != "":
		if o.connect != "" {
			return fmt.Errorf("-connect and -servers are mutually exclusive")
		}
		if o.dataDir != "" {
			return fmt.Errorf("-servers and -data-dir are mutually exclusive (the remote fdservers own their storage)")
		}
		cfg := securefd.DefaultClientConfig()
		cfg.Metrics = reg
		cfg.Database = o.db
		cfg.Token = o.token
		cfg.Trace = tr
		addrs := splitAddrs(o.servers)
		if len(addrs) == 0 {
			return fmt.Errorf("-servers: no addresses given")
		}
		fo, err := securefd.DialTCPFailover(addrs, o.workers, cfg)
		if err != nil {
			return fmt.Errorf("connecting to %v: %w", addrs, err)
		}
		defer fo.Close()
		if !o.quiet {
			addr, fence := fo.Primary()
			log.Info("connected to replicated servers", "primary", addr,
				"fence", fence, "servers", len(addrs), "connections", o.workers)
		}
		svc = fo
		dumpTrace = fo.TraceDump
	case o.connect != "":
		if o.dataDir != "" {
			return fmt.Errorf("-connect and -data-dir are mutually exclusive (the remote fdserver owns its storage)")
		}
		cfg := securefd.DefaultClientConfig()
		cfg.Metrics = reg
		cfg.Database = o.db
		cfg.Token = o.token
		cfg.Trace = tr
		pool, err := securefd.DialTCPPool(o.connect, o.workers, cfg)
		if err != nil {
			return fmt.Errorf("connecting to %s: %w", o.connect, err)
		}
		defer pool.Close()
		if !o.quiet {
			log.Info("connected to remote server", "addr", o.connect, "connections", o.workers)
		}
		svc = pool
		dumpTrace = pool.TraceDump
	case o.dataDir != "":
		durable, err = securefd.OpenDir(o.dataDir, securefd.DurableOptions{Trace: tr})
		if err != nil {
			return err
		}
		defer durable.Close()
		svc = durable
	default:
		svc = securefd.NewServer()
	}
	if o.rtt > 0 {
		svc = securefd.WithLatency(svc, o.rtt)
	}
	var faulty *securefd.FaultService
	if o.faultRate > 0 || o.corruptRate > 0 {
		faulty = securefd.WithFaults(svc, securefd.FaultConfig{
			Seed:        o.faultSeed,
			ErrorRate:   o.faultRate,
			CorruptRate: o.corruptRate,
			Metrics:     reg,
		})
		svc = faulty
	}
	var retried *securefd.RetryService
	if o.faultRate > 0 || o.retries > 0 {
		retried = securefd.WithRetry(svc, securefd.RetryPolicy{MaxAttempts: o.retries, Metrics: reg})
		svc = retried
	}
	// Client-side per-op latency histograms: with -connect they measure
	// the full round trip the protocol actually waits on.
	svc = securefd.WithTelemetry(svc, reg)

	db, err := securefd.Outsource(svc, rel, securefd.Options{
		Protocol:  protocol,
		Workers:   o.workers,
		Network:   network,
		MaxLHS:    o.maxLHS,
		Telemetry: reg,
		Trace:     tr,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	start := time.Now()
	var report *securefd.Report
	if o.ckptPath != "" {
		report, err = db.DiscoverResumable(o.ckptPath)
	} else {
		report, err = db.Discover()
	}
	if err != nil {
		return err
	}
	printReport(db, report, o, start, log)
	if !o.quiet {
		if faulty != nil || retried != nil {
			st, err := svc.Stats()
			if err == nil {
				log.Info("fault tolerance", "faults_injected", st.FaultsInjected, "retries", st.Retries)
			}
		}
	}
	printBreakdown(reg, time.Since(start))
	if err := writeTrace(o, tr, dumpTrace, log); err != nil {
		return err
	}
	if durable != nil {
		if err := durable.Snapshot(); err != nil {
			return err
		}
	}
	return nil
}
