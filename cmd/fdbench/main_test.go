package main

import (
	"testing"
	"time"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"1,2,4", []int{1, 2, 4}},
		{" 8 , 16 ", []int{8, 16}},
		{"", []int{1, 2, 4, 8, 16}},     // default
		{"x,y", []int{1, 2, 4, 8, 16}},  // unparseable → default
		{"0,-3", []int{1, 2, 4, 8, 16}}, // non-positive rejected
		{"3,zz,5", []int{3, 5}},         // partial
	}
	for _, c := range cases {
		got := parseInts(c.in)
		if len(got) != len(c.want) {
			t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestSweep(t *testing.T) {
	got := sweep(16, 128)
	want := []int{16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// Tiny parameters: every experiment must run end to end.
	for _, exp := range []string{"table1", "fig5", "fig7", "faults"} {
		if err := run(exp, 16, 2, 16, 32, 16, []int{1}, 0, 0, 0.05, 1); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 16, 2, 16, 32, 16, []int{1}, time.Millisecond, 0, 0.05, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}
