package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/bench"
)

func TestParseInts(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"1,2,4", []int{1, 2, 4}},
		{" 8 , 16 ", []int{8, 16}},
		{"", []int{1, 2, 4, 8, 16}},     // default
		{"x,y", []int{1, 2, 4, 8, 16}},  // unparseable → default
		{"0,-3", []int{1, 2, 4, 8, 16}}, // non-positive rejected
		{"3,zz,5", []int{3, 5}},         // partial
	}
	for _, c := range cases {
		got := parseInts(c.in)
		if len(got) != len(c.want) {
			t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestSweep(t *testing.T) {
	got := sweep(16, 128)
	want := []int{16, 32, 64, 128}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
}

func TestRunSingleExperiments(t *testing.T) {
	// Tiny parameters: every experiment must run end to end.
	for _, exp := range []string{"table1", "fig5", "fig7", "faults", "telemetry", "multitenant"} {
		if err := run(exp, 16, 2, 16, 32, 16, []int{1}, 0, 0, 0.05, 0.05, 1, "", "", "", []int{1}, 2, 2, "", "", ""); err != nil {
			t.Errorf("run(%s): %v", exp, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 16, 2, 16, 32, 16, []int{1}, time.Millisecond, 0, 0.05, 0.05, 1, "", "", "", []int{1}, 2, 2, "", "", ""); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunTelemetryArtifact: -telemetry writes a JSON artifact with one point
// per (method, n) containing phase and access-count data.
func TestRunTelemetryArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_telemetry.json")
	if err := run("telemetry", 16, 2, 16, 32, 16, []int{1}, 0, 0, 0.05, 0.05, 1, out, "", "", []int{1}, 2, 2, "", "", ""); err != nil {
		t.Fatalf("run(telemetry): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var res bench.TelemetryResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Points) != 3 { // 3 methods × sweep(16, 16) = one size
		t.Fatalf("artifact has %d points, want 3", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.WallNS <= 0 || len(pt.Phases) == 0 {
			t.Errorf("point %s/%d missing wall time or phases", pt.Method, pt.N)
		}
		if pt.Method != "Sort" && pt.ORAMAccesses == 0 {
			t.Errorf("point %s/%d recorded no ORAM accesses", pt.Method, pt.N)
		}
		if pt.Method == "Sort" && pt.SortComparisons == 0 {
			t.Errorf("point %s/%d recorded no comparisons", pt.Method, pt.N)
		}
	}
}

// TestRunTracingArtifact: -tracing-out writes the telemetry experiment's
// tracing-overhead axis — an off/on wall-time pair per (method, n), with
// spans actually recorded on the traced side.
func TestRunTracingArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_tracing.json")
	if err := run("telemetry", 16, 2, 16, 32, 16, []int{1}, 0, 0, 0.05, 0.05, 1, "", out, "", []int{1}, 2, 2, "", "", ""); err != nil {
		t.Fatalf("run(telemetry): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var res bench.TracingResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Points) != 3 { // 3 methods × sweep(16, 16) = one size
		t.Fatalf("artifact has %d points, want 3", len(res.Points))
	}
	if res.SampleEvery != 1 {
		t.Errorf("sample_every = %d, want 1 (worst-case sampling)", res.SampleEvery)
	}
	for _, pt := range res.Points {
		if pt.WallOffNS <= 0 || pt.WallOnNS <= 0 {
			t.Errorf("point %s/%d missing wall times", pt.Method, pt.N)
		}
		if pt.Spans == 0 {
			t.Errorf("point %s/%d recorded no spans on the traced side", pt.Method, pt.N)
		}
	}
}

// TestRunScalingArtifact: -scaling-out writes the worker sweep and the
// batched-vs-unbatched rounds comparison.
func TestRunScalingArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	if err := run("scaling", 16, 2, 16, 32, 16, []int{1, 2}, 0, 0, 0.05, 0.05, 1, "", "", out, []int{1}, 2, 2, "", "", ""); err != nil {
		t.Fatalf("run(scaling): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var res bench.ScalingResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Points) != 6 { // 3 methods × 2 worker counts
		t.Fatalf("artifact has %d points, want 6", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.WallNS <= 0 || pt.Speedup <= 0 {
			t.Errorf("point %s/%d missing wall time or speedup", pt.Method, pt.Workers)
		}
	}
	if len(res.Rounds) != 2 || res.Rounds[0].Rounds <= res.Rounds[1].Rounds {
		t.Errorf("rounds comparison = %+v, want unbatched > batched", res.Rounds)
	}
	if res.RoundsFactor < 2 {
		t.Errorf("rounds factor = %.1f, want ≥ 2 (batching must at least halve rounds)", res.RoundsFactor)
	}
}

// TestRunMultiTenantArtifact: -mt-out writes the client sweep with request
// and shed accounting per point.
func TestRunMultiTenantArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_multitenant.json")
	if err := run("multitenant", 16, 2, 16, 32, 16, []int{1}, 0, 0, 0.05, 0.05, 1, "", "", "", []int{1, 2}, 2, 2, out, "", ""); err != nil {
		t.Fatalf("run(multitenant): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var res bench.MultiTenantResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Points) != 2 { // two client counts
		t.Fatalf("artifact has %d points, want 2", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.WallNS <= 0 || pt.Requests <= 0 {
			t.Errorf("point clients=%d missing wall time or requests", pt.Clients)
		}
		if pt.Shed > 0 && pt.ShedRate <= 0 {
			t.Errorf("point clients=%d shed %d but rate %f", pt.Clients, pt.Shed, pt.ShedRate)
		}
	}
}

// TestRunFailoverArtifact: -failover-out writes the replica-count sweep and
// the kill-the-primary recovery timings.
func TestRunFailoverArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_failover.json")
	if err := run("failover", 16, 2, 16, 32, 16, []int{1}, 0, 0, 0.05, 0.05, 1, "", "", "", []int{1}, 2, 2, "", out, ""); err != nil {
		t.Fatalf("run(failover): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var res bench.FailoverResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(res.Points) != 3 { // replica counts 0, 1, 2
		t.Fatalf("artifact has %d points, want 3", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.WallNS <= 0 || pt.Slowdown <= 0 {
			t.Errorf("point replicas=%d missing wall time or slowdown", pt.Replicas)
		}
	}
	if res.CleanWallNS <= 0 || res.KillWallNS <= 0 || res.RecoveryNS <= 0 {
		t.Errorf("cluster timings = clean %d, killed %d, recovery %d; want all > 0",
			res.CleanWallNS, res.KillWallNS, res.RecoveryNS)
	}
	if res.Failovers < 1 {
		t.Errorf("failovers = %d, want >= 1 (the kill point must have fired)", res.Failovers)
	}
}

// TestRunScrubArtifact: -scrub-out writes the scrubbing-overhead and
// time-to-repair axes.
func TestRunScrubArtifact(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_scrub.json")
	if err := run("scrub", 16, 2, 16, 32, 16, []int{1}, 0, 0, 0.05, 0.05, 1, "", "", "", []int{1}, 2, 2, "", "", out); err != nil {
		t.Fatalf("run(scrub): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var res bench.ScrubResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if res.BaseWallNS <= 0 || res.ScrubWallNS <= 0 {
		t.Errorf("wall times = base %d, scrubbed %d; want both > 0", res.BaseWallNS, res.ScrubWallNS)
	}
	if res.RepairSamples <= 0 || res.MeanRepairNS <= 0 || res.MaxRepairNS < res.MeanRepairNS {
		t.Errorf("repair axis = %d samples, mean %d, max %d", res.RepairSamples, res.MeanRepairNS, res.MaxRepairNS)
	}
	if res.ScrubRepairs < int64(res.RepairSamples) {
		t.Errorf("scrub repairs = %d, want >= %d", res.ScrubRepairs, res.RepairSamples)
	}
}
