// Command fdbench regenerates every table and figure of the paper's
// evaluation (§VII). Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records a full run.
//
// Usage:
//
//	fdbench -exp all                # everything, quick sizes
//	fdbench -exp fig4 -maxn 4096    # one experiment, bigger sweep
//	fdbench -exp table2 -rows 8192 -runs 9   # paper-scale obliviousness test
//
// Quick sizes keep the full suite in the minutes range; raise -rows/-maxn
// toward the paper's 2^13–2^15 for closer comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|table2|table3|fig4|fig5|fig6a|fig6b|fig7|ablation-compression|ablation-network|faults|recovery|telemetry|scaling|multitenant|failover|scrub|all")
		rows    = flag.Int("rows", 512, "rows sampled per dataset (table2); paper uses 8192")
		runs    = flag.Int("runs", 9, "runs per group (table2); paper uses 9")
		maxn    = flag.Int("maxn", 2048, "largest n in scalability sweeps (fig4/fig5/fig6b/fig7)")
		minn    = flag.Int("minn", 128, "smallest n in scalability sweeps")
		fign    = flag.Int("fig6a-n", 512, "n for the fig6a thread sweep; paper uses 32768")
		threads = flag.String("threads", "1,2,4,8,16", "comma-separated thread counts for fig6a")
		rtt     = flag.Duration("rtt", 200*time.Microsecond, "modeled network RTT per storage op (fig6a)")
		t2rtt   = flag.Duration("table2-rtt", 0, "modeled network RTT for table2 (0 = in-process timings)")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		frate   = flag.Float64("fault-rate", 0.02, "transient error and spike rate for the faults experiment")
		crate   = flag.Float64("corrupt-rate", 0.01, "per-read payload corruption rate for the faults experiment's detection axis (0 disables)")
		telOut  = flag.String("telemetry", "", "write the telemetry experiment's per-phase breakdown to this JSON file (e.g. BENCH_telemetry.json)")
		trcOut  = flag.String("tracing-out", "", "write the telemetry experiment's tracing-overhead axis to this JSON file (e.g. BENCH_tracing.json)")
		sclOut  = flag.String("scaling-out", "", "write the scaling experiment's worker sweep and rounds comparison to this JSON file (e.g. BENCH_scaling.json)")
		clients = flag.String("clients", "1,2,4,8", "comma-separated concurrent client counts for the multitenant experiment")
		dbs     = flag.Int("dbs", 2, "database namespaces the multitenant experiment's clients spread over")
		mtInfl  = flag.Int("mt-inflight", 4, "global in-flight request budget for the multitenant experiment's server")
		mtOut   = flag.String("mt-out", "", "write the multitenant experiment's client sweep to this JSON file (e.g. BENCH_multitenant.json)")
		foOut   = flag.String("failover-out", "", "write the failover experiment's replica sweep and recovery timings to this JSON file (e.g. BENCH_failover.json)")
		scOut   = flag.String("scrub-out", "", "write the scrub experiment's overhead and time-to-repair axes to this JSON file (e.g. BENCH_scrub.json)")
	)
	flag.Parse()

	if err := run(*exp, *rows, *runs, *minn, *maxn, *fign, parseInts(*threads), *rtt, *t2rtt, *frate, *crate, *seed, *telOut, *trcOut, *sclOut, parseInts(*clients), *dbs, *mtInfl, *mtOut, *foOut, *scOut); err != nil {
		fmt.Fprintln(os.Stderr, "fdbench:", err)
		os.Exit(1)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err == nil && v > 0 {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = []int{1, 2, 4, 8, 16}
	}
	return out
}

func sweep(minn, maxn int) []int {
	var out []int
	for n := minn; n <= maxn; n *= 2 {
		out = append(out, n)
	}
	return out
}

type renderer interface{ Render() string }

// joined concatenates two experiment renderings — the telemetry breakdown
// followed by its tracing-overhead axis.
type joined struct{ a, b renderer }

func (j joined) Render() string { return j.a.Render() + "\n" + j.b.Render() }

func run(exp string, rows, runs, minn, maxn, fign int, threads []int, rtt, t2rtt time.Duration, faultRate, corruptRate float64, seed int64, telemetryOut, tracingOut, scalingOut string, clients []int, dbs, mtInflight int, mtOut, failoverOut, scrubOut string) error {
	// The telemetry experiment covers the fig4/fig5 sizes and the smaller
	// fig7 dynamics range; its JSON artifact lands wherever -telemetry says.
	var telemetryResult *bench.TelemetryResult
	var tracingResult *bench.TracingResult
	var scalingResult *bench.ScalingResult
	var mtResult *bench.MultiTenantResult
	var foResult *bench.FailoverResult
	var scResult *bench.ScrubResult
	experiments := []struct {
		name string
		run  func() (renderer, error)
	}{
		{"table1", func() (renderer, error) { return bench.Table1(0, seed) }},
		{"table2", func() (renderer, error) {
			return bench.Table2(bench.Table2Config{Rows: rows, Runs: runs, Seed: seed, RTT: t2rtt})
		}},
		{"table3", func() (renderer, error) { return bench.Table3(sweep(minn, maxn), seed) }},
		{"fig4", func() (renderer, error) { return bench.Fig4(sweep(minn, maxn), seed) }},
		{"fig5", func() (renderer, error) { return bench.Fig5(sweep(minn, maxn), seed) }},
		{"fig6a", func() (renderer, error) { return bench.Fig6a(fign, threads, rtt, seed) }},
		{"fig6b", func() (renderer, error) { return bench.Fig6b(sweep(minn, maxn), seed) }},
		{"fig7", func() (renderer, error) { return bench.Fig7(sweep(minn, maxn/2), seed) }},
		{"ablation-compression", func() (renderer, error) { return bench.AblationCompression(minn*4, 6, seed) }},
		{"ablation-network", func() (renderer, error) { return bench.AblationNetwork(sweep(minn, maxn/2), seed) }},
		{"security-levels", func() (renderer, error) { return bench.SecurityLevels(sweep(minn, maxn/4), 2, seed) }},
		{"ablation-oram", func() (renderer, error) { return bench.AblationORAM(sweep(16, minn*4), seed) }},
		{"comm", func() (renderer, error) { return bench.Comm(sweep(minn, maxn/2), seed) }},
		{"faults", func() (renderer, error) {
			return bench.FaultTolerance(sweep(minn, maxn/2), faultRate, faultRate, corruptRate, seed)
		}},
		{"recovery", func() (renderer, error) { return bench.Recovery(sweep(minn, maxn/4), seed) }},
		{"telemetry", func() (renderer, error) {
			r, err := bench.Telemetry(sweep(minn, maxn/2), seed)
			telemetryResult = r
			if err != nil {
				return r, err
			}
			tr, err := bench.TracingOverhead(sweep(minn, maxn/2), seed)
			tracingResult = tr
			if err != nil {
				return r, err
			}
			return joined{r, tr}, nil
		}},
		{"scaling", func() (renderer, error) {
			r, err := bench.Scaling(minn, 6, threads, rtt, seed)
			scalingResult = r
			return r, err
		}},
		{"multitenant", func() (renderer, error) {
			r, err := bench.MultiTenant(minn/2, 5, clients, dbs, mtInflight, seed)
			mtResult = r
			return r, err
		}},
		{"failover", func() (renderer, error) {
			r, err := bench.Failover(minn*2, []int{0, 1, 2}, seed)
			foResult = r
			return r, err
		}},
		{"scrub", func() (renderer, error) {
			r, err := bench.Scrub(minn*2, 8, seed)
			scResult = r
			return r, err
		}},
	}

	ran := 0
	for _, e := range experiments {
		if exp != "all" && exp != e.name {
			continue
		}
		ran++
		start := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("=== %s (took %s) ===\n%s\n", e.name, time.Since(start).Round(time.Millisecond), res.Render())
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if telemetryOut != "" && telemetryResult != nil {
		if err := telemetryResult.WriteFile(telemetryOut); err != nil {
			return fmt.Errorf("writing %s: %w", telemetryOut, err)
		}
		fmt.Printf("wrote %s (%d points)\n", telemetryOut, len(telemetryResult.Points))
	}
	if tracingOut != "" && tracingResult != nil {
		if err := tracingResult.WriteFile(tracingOut); err != nil {
			return fmt.Errorf("writing %s: %w", tracingOut, err)
		}
		fmt.Printf("wrote %s (%d points)\n", tracingOut, len(tracingResult.Points))
	}
	if scalingOut != "" && scalingResult != nil {
		if err := scalingResult.WriteFile(scalingOut); err != nil {
			return fmt.Errorf("writing %s: %w", scalingOut, err)
		}
		fmt.Printf("wrote %s (%d points)\n", scalingOut, len(scalingResult.Points))
	}
	if mtOut != "" && mtResult != nil {
		if err := mtResult.WriteFile(mtOut); err != nil {
			return fmt.Errorf("writing %s: %w", mtOut, err)
		}
		fmt.Printf("wrote %s (%d points)\n", mtOut, len(mtResult.Points))
	}
	if failoverOut != "" && foResult != nil {
		if err := foResult.WriteFile(failoverOut); err != nil {
			return fmt.Errorf("writing %s: %w", failoverOut, err)
		}
		fmt.Printf("wrote %s (%d points)\n", failoverOut, len(foResult.Points))
	}
	if scrubOut != "" && scResult != nil {
		if err := scResult.WriteFile(scrubOut); err != nil {
			return fmt.Errorf("writing %s: %w", scrubOut, err)
		}
		fmt.Printf("wrote %s\n", scrubOut)
	}
	return nil
}
