// Command fdclient plays the resource-limited client C: it loads a CSV,
// encrypts it cell by cell, uploads it to a remote fdserver, and drives
// secure FD discovery over TCP. The server never sees a plaintext or a
// data-dependent access pattern.
//
//	fdclient -server localhost:7066 -protocol sort data.csv
//
// Against a replicated group, -servers lists every member; the client finds
// the primary and fails over (promoting the freshest replica) if it dies:
//
//	fdclient -servers host1:7066,host2:7066,host3:7066 data.csv
//
// The transport is fault tolerant: every call carries a deadline
// (-call-timeout), dropped connections re-dial with backoff (-redials),
// and transient server failures are retried (-retries) — so a long run
// survives restarts and flaky networks. Counters are reported at the end.
//
// -telemetry <file> writes the run's phase/metric snapshot — per-level
// wall time, RPC latency quantiles, retry counters — as JSON, the same
// breakdown fddiscover prints with its -telemetry flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/securefd"
)

// options collects the run knobs so flags extend without churn.
type options struct {
	protoName   string
	workers     int
	maxLHS      int
	pool        int           // parallel TCP connections
	retries     int           // max attempts per storage call (0 = default)
	callTimeout time.Duration // per-call deadline
	redials     int           // reconnection attempts per call
	db          string        // database namespace on a multi-tenant server
	token       string        // session auth token
	servers     string        // comma-separated replicated fdserver addresses
	telemetry   string        // write the phase/metric snapshot JSON here
}

func main() {
	var o options
	server := flag.String("server", "localhost:7066", "fdserver address")
	flag.StringVar(&o.servers, "servers", "", "comma-separated addresses of a replicated fdserver group; the client follows the primary across failures (overrides -server)")
	flag.StringVar(&o.protoName, "protocol", "sort", "sort|or-oram|ex-oram")
	flag.IntVar(&o.workers, "workers", 1, "sorting parallelism degree")
	flag.IntVar(&o.maxLHS, "max-lhs", 0, "bound determinant size (0 = unbounded)")
	flag.IntVar(&o.pool, "pool", 0, "parallel TCP connections (0 = one per worker)")
	flag.IntVar(&o.retries, "retries", 0, "max attempts per storage call (0 = default policy, 1 = no retry)")
	flag.DurationVar(&o.callTimeout, "call-timeout", 0, "per-call deadline (0 = default)")
	flag.IntVar(&o.redials, "redials", 0, "reconnection attempts per call after a dropped connection (0 = default)")
	flag.StringVar(&o.db, "db", "", "database namespace to bind the session to on a multi-tenant server (empty = root)")
	flag.StringVar(&o.token, "token", "", "session auth token, required when the server runs with -session-token")
	flag.StringVar(&o.telemetry, "telemetry", "", "write the run's phase/metric snapshot (per-level wall time, RPC latency quantiles) as JSON to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdclient [flags] <file.csv>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*server, o, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "fdclient:", err)
		os.Exit(1)
	}
}

func run(server string, o options, path string) error {
	protocol, err := securefd.ParseProtocol(o.protoName)
	if err != nil {
		return err
	}
	rel, err := securefd.ReadCSVFile(path)
	if err != nil {
		return err
	}

	// The registry instruments every layer — transport RPC latency, retry
	// counters, lattice phases — exactly like fddiscover's -telemetry.
	var reg *securefd.Registry
	if o.telemetry != "" {
		reg = securefd.NewRegistry()
	}

	cfg := securefd.DefaultClientConfig()
	if o.callTimeout > 0 {
		cfg.CallTimeout = o.callTimeout
	}
	if o.redials > 0 {
		cfg.Redials = o.redials
	}
	cfg.Database = o.db
	cfg.Token = o.token
	cfg.Metrics = reg
	poolSize := o.pool
	if poolSize <= 0 {
		poolSize = o.workers
	}
	var conn securefd.Service
	var closeConn func() error
	if o.servers != "" {
		var addrs []string
		for _, a := range strings.Split(o.servers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		fo, err := securefd.DialTCPFailover(addrs, poolSize, cfg)
		if err != nil {
			return err
		}
		primary, fence := fo.Primary()
		server = fmt.Sprintf("%s (fence %d, %d servers)", primary, fence, len(addrs))
		conn, closeConn = fo, fo.Close
	} else {
		pool, err := securefd.DialTCPPool(server, poolSize, cfg)
		if err != nil {
			return err
		}
		conn, closeConn = pool, pool.Close
	}
	defer closeConn()
	var svc securefd.Service = securefd.WithRetry(conn, securefd.RetryPolicy{MaxAttempts: o.retries, Metrics: reg})
	// Client-side per-op latency histograms measure the full round trip the
	// protocol actually waits on, retries included.
	svc = securefd.WithTelemetry(svc, reg)

	fmt.Printf("uploading %d×%d cells encrypted to %s…\n", rel.NumRows(), rel.NumAttrs(), server)
	wallStart := time.Now()
	start := wallStart
	db, err := securefd.Outsource(svc, rel, securefd.Options{
		Protocol:  protocol,
		Workers:   o.workers,
		MaxLHS:    o.maxLHS,
		Telemetry: reg,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("uploaded in %s; discovering…\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	report, err := db.Discover()
	if err != nil {
		return err
	}
	for _, fd := range report.Minimal {
		fmt.Println(fd.Format(rel.Schema()))
	}
	fmt.Printf("\n%d minimal FDs via %s over TCP in %s\n",
		len(report.Minimal), protocol, time.Since(start).Round(time.Millisecond))
	if st, err := svc.Stats(); err == nil && (st.Retries > 0 || st.Reconnects > 0) {
		fmt.Printf("fault tolerance: %d retries, %d reconnects\n", st.Retries, st.Reconnects)
	}
	if reg != nil {
		b, err := reg.MarshalBreakdownJSON(time.Since(wallStart))
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.telemetry, b, 0o644); err != nil {
			return err
		}
		fmt.Printf("telemetry snapshot written to %s\n", o.telemetry)
	}
	return nil
}
