// Command fdclient plays the resource-limited client C: it loads a CSV,
// encrypts it cell by cell, uploads it to a remote fdserver, and drives
// secure FD discovery over TCP. The server never sees a plaintext or a
// data-dependent access pattern.
//
//	fdclient -server localhost:7066 -protocol sort data.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/oblivfd/oblivfd/securefd"
)

func main() {
	var (
		server    = flag.String("server", "localhost:7066", "fdserver address")
		protoName = flag.String("protocol", "sort", "sort|or-oram|ex-oram")
		workers   = flag.Int("workers", 1, "sorting parallelism degree")
		maxLHS    = flag.Int("max-lhs", 0, "bound determinant size (0 = unbounded)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdclient [flags] <file.csv>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(*server, *protoName, *workers, *maxLHS, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "fdclient:", err)
		os.Exit(1)
	}
}

func run(server, protoName string, workers, maxLHS int, path string) error {
	protocol, err := securefd.ParseProtocol(protoName)
	if err != nil {
		return err
	}
	rel, err := securefd.ReadCSVFile(path)
	if err != nil {
		return err
	}
	svc, err := securefd.DialTCP(server)
	if err != nil {
		return err
	}
	defer svc.Close()

	fmt.Printf("uploading %d×%d cells encrypted to %s…\n", rel.NumRows(), rel.NumAttrs(), server)
	start := time.Now()
	db, err := securefd.Outsource(svc, rel, securefd.Options{
		Protocol: protocol,
		Workers:  workers,
		MaxLHS:   maxLHS,
	})
	if err != nil {
		return err
	}
	defer db.Close()
	fmt.Printf("uploaded in %s; discovering…\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	report, err := db.Discover()
	if err != nil {
		return err
	}
	for _, fd := range report.Minimal {
		fmt.Println(fd.Format(rel.Schema()))
	}
	fmt.Printf("\n%d minimal FDs via %s over TCP in %s\n",
		len(report.Minimal), protocol, time.Since(start).Round(time.Millisecond))
	return nil
}
