package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
)

func writeCSV(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.csv")
	csv := "a,b\n1,x\n1,x\n2,y\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClientAgainstServer(t *testing.T) {
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = transport.Serve(l, backend) }()

	o := options{protoName: "sort", workers: 2}
	if err := run(l.Addr().String(), o, writeCSV(t)); err != nil {
		t.Errorf("run: %v", err)
	}
	// The server must have seen ciphertext uploads and reveals.
	if backend.Trace().TotalOps() == 0 {
		t.Error("server saw no operations")
	}
	if len(backend.Reveals()) == 0 {
		t.Error("server log holds no FD decisions")
	}
}

// TestClientAgainstFaultyServer: the default fdclient stack (pooled
// self-healing connections + retry) completes against a server injecting
// transient faults and connection drops.
func TestClientAgainstFaultyServer(t *testing.T) {
	backend := store.WithFaults(store.NewServer(), store.FaultConfig{Seed: 2, ErrorRate: 0.05})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fl := transport.WithConnFaults(l, transport.FaultConfig{Seed: 3, DropRate: 0.01})
	go func() { _ = transport.Serve(fl, backend) }()

	o := options{protoName: "sort", workers: 2, retries: 8, callTimeout: 5 * time.Second, redials: 8}
	if err := run(l.Addr().String(), o, writeCSV(t)); err != nil {
		t.Errorf("run against faulty server: %v", err)
	}
}

func TestClientErrors(t *testing.T) {
	if err := run("127.0.0.1:1", options{protoName: "sort", workers: 1}, "x.csv"); err == nil {
		t.Error("dead server accepted")
	}
	if err := run("127.0.0.1:1", options{protoName: "bogus", workers: 1}, "x.csv"); err == nil {
		t.Error("unknown protocol accepted")
	}
}
