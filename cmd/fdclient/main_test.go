package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"

	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
)

func TestClientAgainstServer(t *testing.T) {
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = transport.Serve(l, backend) }()

	path := filepath.Join(t.TempDir(), "t.csv")
	csv := "a,b\n1,x\n1,x\n2,y\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(l.Addr().String(), "sort", 2, 0, path); err != nil {
		t.Errorf("run: %v", err)
	}
	// The server must have seen ciphertext uploads and reveals.
	if backend.Trace().TotalOps() == 0 {
		t.Error("server saw no operations")
	}
	if len(backend.Reveals()) == 0 {
		t.Error("server log holds no FD decisions")
	}
}

func TestClientErrors(t *testing.T) {
	if err := run("127.0.0.1:1", "sort", 1, 0, "x.csv"); err == nil {
		t.Error("dead server accepted")
	}
	backendless := "127.0.0.1:1"
	if err := run(backendless, "bogus", 1, 0, "x.csv"); err == nil {
		t.Error("unknown protocol accepted")
	}
}
