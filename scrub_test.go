package oblivfd

// Self-healing chaos harness: a replicated pair (1 primary, 1 replica) over
// real TCP serves discovery runs while seeded damage lands mid-run — bit rot
// in flat arrays and ORAM trees, corruption inside the WAL and retained
// snapshot files, and an ENOSPC window that sheds writes partway through
// discovery. Background scrubbers sweep throughout. Every scenario must end
// with the FD set of an undamaged run and at least one recorded repair; with
// no replica, corruption must still fail loudly with ErrIntegrity (the PR 4
// contract — self-healing never degrades fail-loudly into silence).

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/baseline"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
	"github.com/oblivfd/oblivfd/securefd"
)

var scrubSortOpts = securefd.Options{Protocol: securefd.ProtocolSort, Workers: 2, MaxLHS: 2}
var scrubORAMOpts = securefd.Options{Protocol: securefd.ProtocolORAM, Workers: 2, MaxLHS: 2}

// scrubNode is one member of the self-healing cluster.
type scrubNode struct {
	addr string
	dir  string
	rep  *store.ReplicatedServer
	ts   *transport.Server
	sc   *store.Scrubber
}

// scrubCluster boots n nodes (node 0 primary) over real TCP, the primary on
// primaryFS (nil = the real filesystem), each running a background scrubber
// on an aggressive interval when scrub is set.
func scrubCluster(t *testing.T, n int, primaryFS store.FS, scrub bool) []*scrubNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	dial := func(addr string) (store.ReplicaConn, error) {
		return transport.DialWith(addr, transport.ClientConfig{
			DialTimeout: time.Second, Redials: -1,
		})
	}
	nodes := make([]*scrubNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		opts := store.DurableOptions{}
		if i == 0 {
			opts.FS = primaryFS
		}
		dir := t.TempDir()
		d, err := store.OpenDir(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := store.Replicated(d, store.ReplicationConfig{
			Primary:     i == 0,
			Peers:       peers,
			RedialEvery: 1,
			Dial:        dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := transport.NewServer(rep)
		ts.SetReplicator(rep)
		go func(l net.Listener) { _ = ts.Serve(l) }(listeners[i])
		nodes[i] = &scrubNode{addr: addrs[i], dir: dir, rep: rep, ts: ts}
		if scrub {
			sc := store.NewScrubber(d, rep, store.ScrubConfig{Interval: 200 * time.Millisecond})
			sc.Start()
			nodes[i].sc = sc
			t.Cleanup(sc.Close)
		}
		t.Cleanup(func() { ts.Shutdown(0); rep.Close() })
	}
	return nodes
}

// scrubService dials the cluster with the retry policy a real deployment
// would run: repairs and disk-full sheds look like transient faults.
func scrubService(t *testing.T, nodes []*scrubNode) securefd.Service {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	cfg := securefd.DefaultClientConfig()
	cfg.DialTimeout = time.Second
	cfg.Redials = 1
	f, err := securefd.DialTCPFailover(addrs, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return securefd.WithRetry(f, securefd.RetryPolicy{
		MaxAttempts:    10,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
	})
}

// corruptLiveCells flips a bit in up to k populated stored cells of the
// wanted kind on d, returning how many it rotted. Cells are chosen in the
// scrubber's own sweep order, so the choice is deterministic.
func corruptLiveCells(t *testing.T, d *store.DurableServer, wantTree bool, k int) int {
	t.Helper()
	names, err := d.ObjectNames()
	if err != nil {
		t.Fatal(err)
	}
	rotted := 0
	for _, name := range names {
		n, isTree, err := d.ObjectExtent(name)
		if err != nil || isTree != wantTree {
			continue
		}
		for i := 0; i < n && rotted < k; i++ {
			if err := d.CorruptStored(name, isTree, int64(i), 3); err == nil {
				rotted++
			}
		}
		if rotted >= k {
			break
		}
	}
	return rotted
}

// scrubDiscover runs discovery over the damaged cluster and checks the FD
// set against the oracle.
func scrubDiscover(t *testing.T, svc securefd.Service, opts securefd.Options) {
	t.Helper()
	db, err := securefd.Outsource(svc, crashRelation(t), opts)
	if err != nil {
		t.Fatalf("Outsource: %v", err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatalf("discovery across damage: %v", err)
	}
	if want := baseline.MinimalFDs(crashRelation(t)); !relation.FDSetEqual(report.Minimal, want) {
		t.Fatalf("FDs = %v, want oracle %v", report.Minimal, want)
	}
}

// TestScrubChaosArrayRot: seeded bit rot in the primary's flat arrays after
// upload; discovery must finish with the oracle FD set and the rot healed
// from the replica.
func TestScrubChaosArrayRot(t *testing.T) {
	nodes := scrubCluster(t, 2, nil, true)
	svc := scrubService(t, nodes)
	db, err := securefd.Outsource(svc, crashRelation(t), scrubSortOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if rotted := corruptLiveCells(t, nodes[0].rep.Durable(), false, 4); rotted == 0 {
		t.Fatal("no populated array cells to rot")
	}
	report, err := db.Discover()
	if err != nil {
		t.Fatalf("discovery across array rot: %v", err)
	}
	if want := baseline.MinimalFDs(crashRelation(t)); !relation.FDSetEqual(report.Minimal, want) {
		t.Errorf("FDs = %v, want oracle %v", report.Minimal, want)
	}
	if got := nodes[0].rep.Repairs(); got < 1 {
		t.Errorf("repairs = %d, want >= 1", got)
	}
}

// TestScrubChaosTreeRot: under the ORAM protocol the bucket trees only live
// during discovery, so the rot injector runs concurrently — every live
// tree's root bucket gets a slot rotted (the root is on every ReadPath, so
// the next access must hit it) until a repair lands mid-run.
func TestScrubChaosTreeRot(t *testing.T) {
	nodes := scrubCluster(t, 2, nil, true)
	svc := scrubService(t, nodes)
	db, err := securefd.Outsource(svc, crashRelation(t), scrubORAMOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	done := make(chan struct{})
	var report *securefd.Report
	var derr error
	go func() {
		defer close(done)
		report, derr = db.Discover()
	}()

	d := nodes[0].rep.Durable()
	rotted := 0
	for injecting := true; injecting; {
		select {
		case <-done:
			injecting = false
		default:
			if nodes[0].rep.Repairs() >= 1 {
				injecting = false // damage healed; let discovery finish clean
				break
			}
			names, err := d.ObjectNames()
			if err != nil {
				injecting = false
				break
			}
			for _, name := range names {
				if n, isTree, err := d.ObjectExtent(name); err == nil && isTree && n > 0 {
					if err := d.CorruptStored(name, true, 0, 3); err == nil {
						rotted++
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}
	<-done
	if derr != nil {
		t.Fatalf("discovery across ORAM rot: %v", derr)
	}
	if rotted == 0 {
		t.Fatal("no tree slot was ever rotted — injector never saw a live tree")
	}
	if want := baseline.MinimalFDs(crashRelation(t)); !relation.FDSetEqual(report.Minimal, want) {
		t.Errorf("FDs = %v, want oracle %v", report.Minimal, want)
	}
	if got := nodes[0].rep.Repairs(); got < 1 {
		t.Errorf("repairs = %d, want >= 1", got)
	}
}

// waitForScrubRepair polls the node's scrubber until it has healed at least
// one finding.
func waitForScrubRepair(t *testing.T, n *scrubNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if n.sc.Repairs() >= 1 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("scrubber never repaired: corruptions=%d repairs=%d failures=%d",
		n.sc.Corruptions(), n.sc.Repairs(), n.sc.RepairFailures())
}

// TestScrubChaosWALRot: a bit flip inside the primary's WAL prefix is found
// by the background scrubber and healed from live memory before it can
// poison a recovery; discovery is unaffected.
func TestScrubChaosWALRot(t *testing.T) {
	nodes := scrubCluster(t, 2, nil, true)
	svc := scrubService(t, nodes)
	db, err := securefd.Outsource(svc, crashRelation(t), scrubSortOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	walPath := filepath.Join(nodes[0].dir, "wal.log")
	b, err := os.ReadFile(walPath)
	if err != nil || len(b) == 0 {
		t.Fatalf("WAL unreadable or empty after upload: %d bytes, %v", len(b), err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	waitForScrubRepair(t, nodes[0])

	report, err := db.Discover()
	if err != nil {
		t.Fatalf("discovery across WAL rot: %v", err)
	}
	if want := baseline.MinimalFDs(crashRelation(t)); !relation.FDSetEqual(report.Minimal, want) {
		t.Errorf("FDs = %v, want oracle %v", report.Minimal, want)
	}
}

// TestScrubChaosSnapshotRot: a rotted retained snapshot on the primary is
// replaced by a fresh one written from live memory and the damaged file is
// removed; discovery is unaffected.
func TestScrubChaosSnapshotRot(t *testing.T) {
	nodes := scrubCluster(t, 2, nil, true)
	svc := scrubService(t, nodes)
	db, err := securefd.Outsource(svc, crashRelation(t), scrubSortOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if err := nodes[0].rep.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(nodes[0].dir, "snap-*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("snapshots = %v, %v", snaps, err)
	}
	target := snaps[len(snaps)-1]
	b, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x10
	if err := os.WriteFile(target, b, 0o644); err != nil {
		t.Fatal(err)
	}
	waitForScrubRepair(t, nodes[0])
	if _, err := os.Stat(target); !os.IsNotExist(err) {
		t.Errorf("corrupt snapshot still on disk: %v", err)
	}

	report, err := db.Discover()
	if err != nil {
		t.Fatalf("discovery across snapshot rot: %v", err)
	}
	if want := baseline.MinimalFDs(crashRelation(t)); !relation.FDSetEqual(report.Minimal, want) {
		t.Errorf("FDs = %v, want oracle %v", report.Minimal, want)
	}
}

// TestScrubChaosDiskFullMidDiscovery: an ENOSPC window (torn short writes
// included) opens partway through discovery while seeded rot lands in the
// arrays. Writes shed with a retryable error, the client rides it out, the
// rot heals from the replica, and the FD set is exact.
func TestScrubChaosDiskFullMidDiscovery(t *testing.T) {
	// Measurement run: an unarmed FaultFS counts bytes written, giving the
	// coordinate system the window is placed in.
	meter := store.NewFaultFS(nil, store.FaultFSConfig{})
	nodes := scrubCluster(t, 2, meter, true)
	svc := scrubService(t, nodes)
	db, err := securefd.Outsource(svc, crashRelation(t), scrubSortOpts)
	if err != nil {
		t.Fatal(err)
	}
	afterUpload := meter.BytesWritten()
	if _, err := db.Discover(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	total := meter.BytesWritten()
	if total-afterUpload < 4096 {
		t.Fatalf("discovery writes only %d bytes; cannot place an ENOSPC window", total-afterUpload)
	}

	// Armed run: the window opens halfway through discovery.
	ffs := store.NewFaultFS(nil, store.FaultFSConfig{
		Seed:               11,
		DiskFullAfterBytes: afterUpload + (total-afterUpload)/2,
		DiskFullBytes:      8192,
		ShortWrites:        true,
	})
	nodes2 := scrubCluster(t, 2, ffs, true)
	svc2 := scrubService(t, nodes2)
	db2, err := securefd.Outsource(svc2, crashRelation(t), scrubSortOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if rotted := corruptLiveCells(t, nodes2[0].rep.Durable(), false, 2); rotted == 0 {
		t.Fatal("no populated array cells to rot")
	}
	report, err := db2.Discover()
	if err != nil {
		t.Fatalf("discovery across ENOSPC + rot: %v", err)
	}
	if want := baseline.MinimalFDs(crashRelation(t)); !relation.FDSetEqual(report.Minimal, want) {
		t.Errorf("FDs = %v, want oracle %v", report.Minimal, want)
	}
	if ffs.DiskFullInjected() == 0 {
		t.Error("the ENOSPC window never fired")
	}
	if got := nodes2[0].rep.Repairs(); got < 1 {
		t.Errorf("repairs = %d, want >= 1", got)
	}
	if nodes2[0].rep.Durable().Degraded() {
		t.Error("primary still degraded after the window passed")
	}
}

// TestScrubChaosNoReplicaFailsLoudly: with no healthy copy anywhere,
// corruption must surface as fatal ErrIntegrity — detection without repair,
// exactly the pre-scrubbing contract.
func TestScrubChaosNoReplicaFailsLoudly(t *testing.T) {
	nodes := scrubCluster(t, 1, nil, true)
	svc := scrubService(t, nodes)
	db, err := securefd.Outsource(svc, crashRelation(t), scrubSortOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	if rotted := corruptLiveCells(t, nodes[0].rep.Durable(), false, 2); rotted == 0 {
		t.Fatal("no populated array cells to rot")
	}
	if _, err := db.Discover(); !errors.Is(err, securefd.ErrIntegrity) {
		t.Fatalf("discovery over unrepairable rot = %v, want ErrIntegrity", err)
	}
	if got := nodes[0].rep.Repairs(); got != 0 {
		t.Errorf("repairs = %d without any replica", got)
	}
}

// TestScrubTraceNeutral: aggressive background scrubbing must not change the
// adversary's trace — identical op and byte totals to an unscrubbed run of
// the same workload, because sweeps read through server-side verification
// paths that bypass the trace recorder (DESIGN.md §15).
func TestScrubTraceNeutral(t *testing.T) {
	run := func(scrub bool) (ops, bytes int64) {
		nodes := scrubCluster(t, 2, nil, scrub)
		svc := scrubService(t, nodes)
		db, err := securefd.Outsource(svc, crashRelation(t), scrubSortOpts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if _, err := db.Discover(); err != nil {
			t.Fatal(err)
		}
		rec := nodes[0].rep.Durable().Trace()
		return rec.TotalOps(), rec.TotalBytes()
	}
	plainOps, plainBytes := run(false)
	scrubOps, scrubBytes := run(true)
	if plainOps != scrubOps || plainBytes != scrubBytes {
		t.Errorf("trace with scrubbing = %d ops / %d bytes, without = %d ops / %d bytes — scrubbing leaked into the trace",
			scrubOps, scrubBytes, plainOps, plainBytes)
	}
}
