#!/usr/bin/env bash
# Telemetry smoke test: boot fdserver with a live metrics endpoint, run a
# small discovery over TCP with the client-side breakdown enabled, and
# assert that the key series actually moved. Run via `make telemetry-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-17066}"
MPORT="${SMOKE_METRICS_PORT:-19090}"
TMP="$(mktemp -d)"
SERVER_PID=""

cleanup() {
    if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
        kill -TERM "$SERVER_PID" 2>/dev/null || true
        wait "$SERVER_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$TMP/fdserver" ./cmd/fdserver
go build -o "$TMP/fddiscover" ./cmd/fddiscover

cat > "$TMP/data.csv" <<'EOF'
Position,Department,City
Engineer,R&D,Zurich
Engineer,R&D,Zurich
Sales,Market,Geneva
Sales,Market,Basel
Manager,R&D,Zurich
Manager,Market,Geneva
EOF

echo "== starting fdserver on :$PORT (metrics on :$MPORT)"
"$TMP/fdserver" -listen "127.0.0.1:$PORT" -metrics-addr "127.0.0.1:$MPORT" \
    > "$TMP/server.log" 2>&1 &
SERVER_PID=$!

for i in $(seq 1 50); do
    if curl -fsS "http://127.0.0.1:$MPORT/metrics" > /dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "fdserver died during startup:" >&2
        cat "$TMP/server.log" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS "http://127.0.0.1:$MPORT/metrics" > /dev/null \
    || { echo "metrics endpoint never came up" >&2; exit 1; }

echo "== running discovery over TCP with -telemetry"
"$TMP/fddiscover" -connect "127.0.0.1:$PORT" -protocol sort -workers 2 \
    -telemetry "$TMP/data.csv" > "$TMP/discover.out" 2> "$TMP/discover.log"

fail=0
check() { # check <file> <pattern> <what>
    if ! grep -q "$2" "$1"; then
        echo "MISSING: $3 (pattern: $2)" >&2
        fail=1
    fi
}

echo "== asserting client-side breakdown"
check "$TMP/discover.out" "lattice/level-01" "per-level lattice span in -telemetry breakdown"
check "$TMP/discover.out" "oblivfd_rpc_client_seconds" "client RPC latency histogram in breakdown"

echo "== asserting server /metrics"
curl -fsS "http://127.0.0.1:$MPORT/metrics" > "$TMP/metrics.txt"
check "$TMP/metrics.txt" "oblivfd_rpc_seconds_bucket" "server RPC latency histogram"
check "$TMP/metrics.txt" "oblivfd_store_op_seconds_bucket" "per-op store latency histogram"
check "$TMP/metrics.txt" "oblivfd_net_rx_bytes_total" "network byte counter"

echo "== asserting /metrics.json and /debug/pprof/"
curl -fsS "http://127.0.0.1:$MPORT/metrics.json" > "$TMP/metrics.json"
check "$TMP/metrics.json" '"histograms"' "JSON metrics snapshot"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$MPORT/debug/pprof/")
if [[ "$code" != "200" ]]; then
    echo "MISSING: /debug/pprof/ returned HTTP $code" >&2
    fail=1
fi

echo "== draining fdserver (SIGTERM)"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

if [[ "$fail" -ne 0 ]]; then
    echo "telemetry smoke test FAILED" >&2
    exit 1
fi
echo "telemetry smoke test OK"
