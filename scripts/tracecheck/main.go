// Command tracecheck validates a merged trace artifact written by
// fddiscover -trace-out (or served at /trace.json): the file parses as a
// Chrome trace-event document, spans from at least -min-services distinct
// services share a trace ID, and — when both halves are present — at least
// one causal chain lattice level → client RPC → server dispatch exists.
//
//	tracecheck [-min-services 2] [-require-ship] run.trace.json
//
// It is the assertion half of `make trace-smoke`: a human eyeballs the
// artifact in Perfetto; CI runs this instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args"`
}

type doc struct {
	TraceEvents []event `json:"traceEvents"`
}

// span is one X event reshaped for chain walking.
type span struct {
	name    string
	service string
	trace   string
	id      string
	parent  string
}

func str(args map[string]any, key string) string {
	if v, ok := args[key].(string); ok {
		return v
	}
	return ""
}

func run() error {
	minServices := flag.Int("min-services", 2, "require spans from at least this many distinct services on one trace ID")
	requireShip := flag.Bool("require-ship", false, "require a per-peer replication shipment span (replicated deployments)")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: tracecheck [flags] <trace.json>")
	}

	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return fmt.Errorf("%s does not parse as a trace-event document: %w", flag.Arg(0), err)
	}

	procs := map[int]string{}
	for _, e := range d.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Pid] = str(e.Args, "name")
		}
	}
	byID := map[string]span{}
	var spans []span
	tracesPerService := map[string]map[string]bool{} // trace -> services
	for _, e := range d.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		s := span{
			name:    e.Name,
			service: procs[e.Pid],
			trace:   str(e.Args, "trace"),
			id:      str(e.Args, "span"),
			parent:  str(e.Args, "parent"),
		}
		spans = append(spans, s)
		byID[s.id] = s
		if tracesPerService[s.trace] == nil {
			tracesPerService[s.trace] = map[string]bool{}
		}
		tracesPerService[s.trace][s.service] = true
	}
	if len(spans) == 0 {
		return fmt.Errorf("document holds no spans")
	}

	shared := ""
	for trace, svcs := range tracesPerService {
		if len(svcs) >= *minServices {
			shared = trace
			break
		}
	}
	if shared == "" {
		return fmt.Errorf("no trace ID is shared by %d services: the client and server halves did not merge", *minServices)
	}

	// ancestor reports whether s has an ancestor whose name starts with
	// prefix — the causal-containment relation the artifact exists to show.
	ancestor := func(s span, prefix string) bool {
		for p, ok := byID[s.parent]; ok; p, ok = byID[p.parent] {
			if strings.HasPrefix(p.name, prefix) {
				return true
			}
		}
		return false
	}
	if *minServices >= 2 {
		chain := false
		for _, s := range spans {
			if strings.HasPrefix(s.name, "server/") && ancestor(s, "rpc/") && ancestor(s, "lattice/level-") {
				chain = true
				break
			}
		}
		if !chain {
			return fmt.Errorf("no server dispatch span is causally contained in a client RPC under a lattice level")
		}
	}
	if *requireShip {
		ship := false
		for _, s := range spans {
			if strings.HasPrefix(s.name, "repl/ship:") {
				ship = true
				break
			}
		}
		if !ship {
			return fmt.Errorf("-require-ship: no per-peer replication shipment span found")
		}
	}

	fmt.Printf("tracecheck OK: %d spans, %d services, shared trace %s\n",
		len(spans), len(procs), shared)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}
