#!/usr/bin/env bash
# Tracing smoke test: boot a replicated 2-server fdserver pair, run a small
# discovery over TCP with -trace-out, and validate the merged artifact —
# JSON parses, client and server spans share one trace ID, a causal chain
# lattice level → RPC → server dispatch exists, and a per-peer replication
# shipment span is present. Also asserts the live /trace.json endpoint and
# the replica's role/fence gauges. Run via `make trace-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-17166}"
RPORT="${SMOKE_REPLICA_PORT:-17167}"
MPORT="${SMOKE_METRICS_PORT:-19190}"
RMPORT="${SMOKE_REPLICA_METRICS_PORT:-19191}"
TMP="$(mktemp -d)"
PRIMARY_PID=""
REPLICA_PID=""

cleanup() {
    for pid in "$PRIMARY_PID" "$REPLICA_PID"; do
        if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
            kill -TERM "$pid" 2>/dev/null || true
            wait "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$TMP/fdserver" ./cmd/fdserver
go build -o "$TMP/fddiscover" ./cmd/fddiscover
go build -o "$TMP/tracecheck" ./scripts/tracecheck

cat > "$TMP/data.csv" <<'EOF'
Position,Department,City
Engineer,R&D,Zurich
Engineer,R&D,Zurich
Sales,Market,Geneva
Sales,Market,Basel
Manager,R&D,Zurich
Manager,Market,Geneva
EOF

echo "== starting replica on :$RPORT"
"$TMP/fdserver" -listen "127.0.0.1:$RPORT" -data-dir "$TMP/replica" \
    -replica-of "127.0.0.1:$PORT" -metrics-addr "127.0.0.1:$RMPORT" \
    > "$TMP/replica.log" 2>&1 &
REPLICA_PID=$!

echo "== starting primary on :$PORT (ships to the replica)"
"$TMP/fdserver" -listen "127.0.0.1:$PORT" -data-dir "$TMP/primary" \
    -replicas "127.0.0.1:$RPORT" -metrics-addr "127.0.0.1:$MPORT" \
    > "$TMP/primary.log" 2>&1 &
PRIMARY_PID=$!

wait_up() { # wait_up <url> <pid> <log>
    for i in $(seq 1 50); do
        if curl -fsS "$1" > /dev/null 2>&1; then
            return 0
        fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "fdserver died during startup:" >&2
            cat "$3" >&2
            exit 1
        fi
        sleep 0.1
    done
    echo "endpoint $1 never came up" >&2
    exit 1
}
wait_up "http://127.0.0.1:$MPORT/metrics" "$PRIMARY_PID" "$TMP/primary.log"
wait_up "http://127.0.0.1:$RMPORT/metrics" "$REPLICA_PID" "$TMP/replica.log"

echo "== running discovery against the pair with -trace-out"
"$TMP/fddiscover" -servers "127.0.0.1:$PORT,127.0.0.1:$RPORT" -protocol sort \
    -trace-out "$TMP/run.trace.json" "$TMP/data.csv" \
    > "$TMP/discover.out" 2> "$TMP/discover.log"

echo "== validating the merged artifact"
"$TMP/tracecheck" -require-ship "$TMP/run.trace.json"

fail=0
check() { # check <file> <pattern> <what>
    if ! grep -q "$2" "$1"; then
        echo "MISSING: $3 (pattern: $2)" >&2
        fail=1
    fi
}

echo "== asserting the live /trace.json endpoint"
curl -fsS "http://127.0.0.1:$MPORT/trace.json" > "$TMP/server.trace.json"
check "$TMP/server.trace.json" '"traceEvents"' "trace-event document at /trace.json"
check "$TMP/server.trace.json" 'repl/ship:' "replication shipment span at /trace.json"

echo "== asserting replica role gauges and runtime gauges"
curl -fsS "http://127.0.0.1:$RMPORT/metrics" > "$TMP/replica.metrics"
check "$TMP/replica.metrics" 'oblivfd_replication_role 0' "replica role gauge"
check "$TMP/replica.metrics" 'oblivfd_replication_fence' "replica fence gauge"
check "$TMP/replica.metrics" 'oblivfd_replication_watermark' "replica watermark gauge"
check "$TMP/replica.metrics" 'go_goroutines' "runtime goroutine gauge"
check "$TMP/replica.metrics" 'go_gc_pause_total_ns' "runtime GC pause gauge"
curl -fsS "http://127.0.0.1:$RMPORT/metrics.json" > "$TMP/replica.metrics.json"
check "$TMP/replica.metrics.json" 'oblivfd_replication_role' "replication gauges in /metrics.json"

echo "== draining both servers (SIGTERM)"
kill -TERM "$PRIMARY_PID" "$REPLICA_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
wait "$REPLICA_PID" 2>/dev/null || true
PRIMARY_PID=""
REPLICA_PID=""

if [[ "$fail" -ne 0 ]]; then
    echo "trace smoke test FAILED" >&2
    exit 1
fi
echo "trace smoke test OK"
