# Development targets for oblivfd.

GO ?= go

.PHONY: all build vet test test-race test-short bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The race detector needs more than one core to be interesting, but still
# catches ordering bugs on one.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at quick sizes; raise the flags toward
# the paper's scales for closer comparison (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/fdbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dynamic
	$(GO) run ./examples/query_optimization
	$(GO) run ./examples/adversary_view
	$(GO) run ./examples/parallel_enclave

clean:
	$(GO) clean ./...
