# Development targets for oblivfd.

GO ?= go

.PHONY: all build vet staticcheck lint test test-race test-short crash tamper failover scrub scrub-baseline bench experiments examples telemetry-smoke trace-smoke tracing-baseline scaling-smoke scaling-baseline parallel-race multitenant-race multitenant-smoke multitenant-baseline failover-baseline clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (install: go install honnef.co/go/tools/cmd/staticcheck@latest);
# CI always runs it.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

lint: vet staticcheck

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The race detector needs more than one core to be interesting, but still
# catches ordering bugs on one. -shuffle=on randomizes test order so suites
# that accidentally depend on a predecessor's state fail loudly.
test-race:
	$(GO) test -race -shuffle=on ./...

# Crash-injection suite: kill the server at seeded WAL offsets and the
# client between lattice levels, recover, and require identical results.
# -count=1 forces real (uncached) runs — these tests exercise the filesystem.
crash:
	$(GO) test -count=1 -run 'CrashRecovery' .
	$(GO) test -count=1 ./internal/store/ ./internal/core/ ./internal/oram/

# Tamper-injection suite: corrupt ciphertexts at seeded read offsets —
# in-process and over TCP — plus WAL frames and snapshots at rest, and
# require every corruption to be detected (never a silent wrong FD set).
# -race because detection paths cross the fault injector's locks.
tamper:
	$(GO) test -race -count=1 -run 'Tamper' .
	$(GO) test -race -count=1 ./internal/crypto/ ./internal/oram/ ./internal/obsort/ ./internal/transport/

# Replication and failover chaos suite: kill the primary of a 3-node
# cluster at seeded WAL offsets mid-discovery and require the failover
# client to promote a replica and finish with the identical FD set; plus
# the per-layer properties (stream integrity, fencing, promotion).
# -race because promotion and WAL shipping cross the replication locks.
failover:
	$(GO) test -race -count=1 -run 'Failover' .
	$(GO) test -race -count=1 -run 'Replic|Fenc|Shipping|DownReplica|MalformedFence' ./internal/store/
	$(GO) test -race -count=1 -run 'Failover|Repl' ./internal/transport/

# Regenerate the committed failover baseline (replica-count sweep and
# kill-the-primary recovery timings) at the recorded settings.
failover-baseline:
	$(GO) run ./cmd/fdbench -exp failover -failover-out BENCH_failover.json

# Self-healing chaos suite: seeded corruption (array cells, ORAM tree slots,
# WAL bytes, snapshot files) and an ENOSPC window injected mid-discovery on a
# replicated cluster over TCP, requiring identical FD sets with at least one
# repair per scenario; plus the scrubber/repair/disk-fault unit and property
# suites. -race because sweeps interleave with live mutations.
scrub:
	$(GO) test -race -count=1 -run 'TestScrub' .
	$(GO) test -race -count=1 -run 'Scrub|Repair|SelfHeal|DiskFull|Fsync|ShortWrite|Corrupt' ./internal/store/
	$(GO) test -race -count=1 -run 'Scrub|Repair|DiskFull' ./internal/transport/

# Regenerate the committed scrubbing baseline (overhead and time-to-repair
# axes) at the recorded settings.
scrub-baseline:
	$(GO) run ./cmd/fdbench -exp scrub -scrub-out BENCH_scrub.json

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at quick sizes; raise the flags toward
# the paper's scales for closer comparison (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/fdbench -exp all

# End-to-end telemetry check: fdserver with -metrics-addr, a TCP discovery
# with -telemetry, and curl assertions on /metrics, /metrics.json, pprof.
telemetry-smoke:
	./scripts/telemetry_smoke.sh

# End-to-end tracing check: a replicated 2-server pair, a discovery with
# -trace-out, and tracecheck assertions on the merged artifact (client and
# server spans share a trace ID, causal chain down to replication shipping),
# plus /trace.json and the replica's role gauges.
trace-smoke:
	$(GO) test -race -count=1 -run 'TestDistributedTraceCausalTree' .
	./scripts/trace_smoke.sh

# Regenerate the committed tracing-overhead baseline at the recorded settings.
tracing-baseline:
	$(GO) run ./cmd/fdbench -exp telemetry -tracing-out BENCH_tracing.json

# Quick scaling check: a small worker sweep plus the batched-vs-unbatched
# rounds comparison. Sizes are CI-friendly; BENCH_scaling.json (the
# committed baseline) is regenerated with scaling-baseline instead.
scaling-smoke:
	$(GO) run ./cmd/fdbench -exp scaling -minn 64 -rtt 200us -threads 1,4

# Regenerate the committed performance baseline at the recorded settings.
scaling-baseline:
	$(GO) run ./cmd/fdbench -exp scaling -minn 128 -rtt 1ms -threads 1,2,4,8 -scaling-out BENCH_scaling.json

# Serial-vs-parallel equivalence suite under the race detector, at one and
# four schedulable cores (GOMAXPROCS=1 hides interleavings; 4 exposes them).
parallel-race:
	$(GO) test -race -count=1 -cpu 1,4 -run 'Parallel|RunBatch|Batch' ./internal/core/ ./internal/store/ ./internal/transport/

# Multi-tenant suite under the race detector: session registry admission,
# namespace isolation, concurrent tenants under chaos faults, overload
# shedding, and two-tenant crash recovery. The registry, namespacing, and
# per-tenant marks are exactly the state concurrent clients contend on.
multitenant-race:
	$(GO) test -race -count=1 -run 'MultiTenant|Session|Namespace|CrashRecoveryTwoTenants' . ./internal/store/ ./internal/transport/

# Quick multi-tenant degradation check: a small client sweep over two
# namespaces against a tight in-flight budget. Sizes are CI-friendly;
# BENCH_multitenant.json (the committed baseline) is regenerated with
# multitenant-baseline instead.
multitenant-smoke: multitenant-race
	$(GO) run ./cmd/fdbench -exp multitenant -minn 64 -clients 1,4 -dbs 2

# Regenerate the committed multi-tenant baseline at the recorded settings.
multitenant-baseline:
	$(GO) run ./cmd/fdbench -exp multitenant -minn 128 -clients 1,2,4,8 -dbs 2 -mt-inflight 4 -mt-out BENCH_multitenant.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dynamic
	$(GO) run ./examples/query_optimization
	$(GO) run ./examples/adversary_view
	$(GO) run ./examples/parallel_enclave

clean:
	$(GO) clean ./...
