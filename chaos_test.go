package oblivfd

// Chaos tests: end-to-end FD discovery over a transport that keeps
// failing — transient server errors, latency spikes, and mid-call
// connection drops, all on seeded schedules. The fault-tolerance stack
// (self-healing transport.Client/Pool + store.WithRetry) must complete the
// run and produce exactly the FDs of a fault-free run; the seed transport
// (no deadlines, no retries, no reconnection) must fail on the same
// schedule, which is the gap this stack closes.

import (
	"net"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
	"github.com/oblivfd/oblivfd/securefd"
)

// chaosRates is the fault mix of the acceptance scenario: 3% transient
// errors and spikes at the storage layer, 2% connection drops per I/O op
// at the transport layer.
const (
	chaosErrorRate = 0.03
	chaosSpikeRate = 0.03
	chaosDropRate  = 0.02
)

// startChaosServer exposes a fault-injected store over a drop-injecting
// TCP listener.
func startChaosServer(t *testing.T, seed int64) (*store.FaultService, *transport.FaultyListener, string) {
	t.Helper()
	faulty := store.WithFaults(store.NewServer(), store.FaultConfig{
		Seed:      seed,
		ErrorRate: chaosErrorRate,
		SpikeRate: chaosSpikeRate,
		Spike:     200 * time.Microsecond,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := transport.WithConnFaults(l, transport.FaultConfig{Seed: seed + 1, DropRate: chaosDropRate})
	go func() { _ = transport.Serve(fl, faulty) }()
	t.Cleanup(func() { l.Close() })
	return faulty, fl, l.Addr().String()
}

// chaosClientConfig keeps reconnection fast enough for tests.
func chaosClientConfig() transport.ClientConfig {
	return transport.ClientConfig{
		CallTimeout:      10 * time.Second,
		DialTimeout:      2 * time.Second,
		Redials:          10,
		RedialBackoff:    time.Millisecond,
		RedialMaxBackoff: 50 * time.Millisecond,
	}
}

// referenceFDs runs fault-free in-process discovery.
func referenceFDs(t *testing.T, rel *securefd.Relation) []relation.FD {
	t.Helper()
	db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
		Protocol: securefd.ProtocolSort, MaxLHS: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}
	return report.Minimal
}

// TestChaosDiscoveryOverFaultyTCP is the acceptance scenario: full FD
// discovery over a TCP transport with seeded fault injection completes
// without intervention and yields the exact FD set of a fault-free run,
// with the fault/retry/reconnect counts surfaced in store.Stats.
func TestChaosDiscoveryOverFaultyTCP(t *testing.T) {
	rel := securefd.GenerateRND(5, 32, 21)
	want := referenceFDs(t, rel)

	_, fl, addr := startChaosServer(t, 1234)
	pool, err := transport.DialPoolWith(addr, 4, chaosClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	svc := store.WithRetry(pool, store.RetryPolicy{
		MaxAttempts:    10,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Seed:           9,
	})

	db, err := securefd.Outsource(svc, rel, securefd.Options{
		Protocol: securefd.ProtocolSort, Workers: 2, MaxLHS: 2,
	})
	if err != nil {
		t.Fatalf("outsourcing over chaos transport: %v", err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatalf("discovery over chaos transport: %v", err)
	}
	if !relation.FDSetEqual(report.Minimal, want) {
		t.Errorf("FDs under chaos = %v, want %v", report.Minimal, want)
	}

	st, err := svc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultsInjected == 0 {
		t.Error("chaos run injected no transient errors; rates too low to prove anything")
	}
	if fl.Drops() == 0 {
		t.Error("chaos run dropped no connections; rates too low to prove anything")
	}
	if st.Retries == 0 {
		t.Error("Stats.Retries == 0 despite injected faults")
	}
	if st.Reconnects == 0 {
		t.Error("Stats.Reconnects == 0 despite connection drops")
	}
	t.Logf("chaos run: %d faults injected, %d conn drops, %d retries, %d reconnects",
		st.FaultsInjected, fl.Drops(), st.Retries, st.Reconnects)
}

// TestChaosSeedTransportFails demonstrates the closed gap: the same fault
// schedule breaks a client with no deadlines, retries, or reconnection
// (the seed transport's behaviour, preserved by NewClient on a raw conn).
func TestChaosSeedTransportFails(t *testing.T) {
	rel := securefd.GenerateRND(5, 32, 21)
	_, _, addr := startChaosServer(t, 1234)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := transport.NewClient(conn) // no self-healing, no deadlines
	defer c.Close()

	db, err := securefd.Outsource(c, rel, securefd.Options{
		Protocol: securefd.ProtocolSort, MaxLHS: 2,
	})
	if err == nil {
		_, err = db.Discover()
		db.Close()
	}
	if err == nil {
		t.Fatal("seed transport completed a chaos run; the fault-tolerance stack is not being exercised")
	}
	t.Logf("seed transport failed as expected: %v", err)
}

// TestChaosDynamicProtocolOverFaultyTCP: the ORAM path (tree reads/writes,
// dynamic maintenance) also survives chaos — coverage for ReadPath /
// WritePath / WriteBuckets retries.
func TestChaosDynamicProtocolOverFaultyTCP(t *testing.T) {
	schema, err := securefd.NewSchema("Position", "Department", "Office")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := securefd.FromRows(schema, []securefd.Row{
		{"Engineer", "R&D", "B1"},
		{"Engineer", "R&D", "B2"},
		{"Sales", "Market", "B3"},
	})
	if err != nil {
		t.Fatal(err)
	}

	_, _, addr := startChaosServer(t, 77)
	pool, err := transport.DialPoolWith(addr, 2, chaosClientConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	svc := store.WithRetry(pool, store.RetryPolicy{
		MaxAttempts:    10,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Seed:           9,
	})

	db, err := securefd.Outsource(svc, rel, securefd.Options{
		Protocol:       securefd.ProtocolDynamicORAM,
		InsertHeadroom: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}
	id, err := db.Insert(securefd.Row{"Engineer", "Support", "B9"})
	if err != nil {
		t.Fatalf("insert under chaos: %v", err)
	}
	rv, err := db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Invalidated) == 0 {
		t.Error("violating insert under chaos invalidated nothing")
	}
	if err := db.Delete(id); err != nil {
		t.Fatalf("delete under chaos: %v", err)
	}
	rv, err = db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Invalidated) != 0 {
		t.Errorf("FDs still broken after chaos rollback: %v", rv.Invalidated)
	}
}
