package oblivfd

// Integration tests across module boundaries: dataset generation → CSV →
// encrypted outsourcing over real TCP → discovery → dynamic maintenance →
// server snapshot/restore. These are the flows a downstream user wires
// together; unit tests in internal/ cover each piece in isolation.

import (
	"bytes"
	"net"
	"testing"

	"github.com/oblivfd/oblivfd/internal/baseline"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
	"github.com/oblivfd/oblivfd/securefd"
)

// startTCPServer exposes a fresh store over TCP.
func startTCPServer(t *testing.T) (*store.Server, string) {
	t.Helper()
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = transport.Serve(l, backend) }()
	t.Cleanup(func() { l.Close() })
	return backend, l.Addr().String()
}

// TestEndToEndCSVOverTCP: generate a dataset, round-trip it through CSV,
// outsource over TCP, and check the discovered FDs against the oracle.
func TestEndToEndCSVOverTCP(t *testing.T) {
	rel, err := securefd.GenerateDataset("flight", 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := securefd.WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	loaded, err := securefd.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	_, addr := startTCPServer(t)
	svc, err := securefd.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	db, err := securefd.Outsource(svc, loaded, securefd.Options{
		Protocol: securefd.ProtocolSort,
		Workers:  2,
		MaxLHS:   1, // flight has 20 attributes; keep the lattice shallow
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}

	var want []relation.FD
	for _, fd := range baseline.MinimalFDs(loaded) {
		if fd.LHS.Size() <= 1 {
			want = append(want, fd)
		}
	}
	if !relation.FDSetEqual(report.Minimal, want) {
		t.Errorf("FDs over TCP = %v, want %v", report.Minimal, want)
	}
}

// TestDynamicLifecycleOverTCP: the full dynamic protocol against a remote
// server — discovery, violating insert, revalidation, rollback.
func TestDynamicLifecycleOverTCP(t *testing.T) {
	schema, err := securefd.NewSchema("Position", "Department", "Office")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := securefd.FromRows(schema, []securefd.Row{
		{"Engineer", "R&D", "B1"},
		{"Engineer", "R&D", "B2"},
		{"Sales", "Market", "B3"},
	})
	if err != nil {
		t.Fatal(err)
	}

	backend, addr := startTCPServer(t)
	svc, err := securefd.DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	db, err := securefd.Outsource(svc, rel, securefd.Options{
		Protocol:       securefd.ProtocolDynamicORAM,
		InsertHeadroom: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}

	id, err := db.Insert(securefd.Row{"Engineer", "Support", "B9"})
	if err != nil {
		t.Fatal(err)
	}
	rv, err := db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Invalidated) == 0 {
		t.Error("violating insert over TCP invalidated nothing")
	}
	if err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	rv, err = db.Revalidate(report.Minimal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rv.Invalidated) != 0 {
		t.Errorf("FDs still broken after rollback: %v", rv.Invalidated)
	}

	// The server held only ciphertexts: scan every stored byte sequence
	// for plaintext cell values.
	var snap bytes.Buffer
	if err := backend.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	for _, secret := range []string{"Engineer", "R&D", "Support"} {
		if bytes.Contains(snap.Bytes(), []byte(secret)) {
			t.Errorf("plaintext %q found in server storage", secret)
		}
	}
}

// TestSnapshotPreservesProtocolState: ORAM trees survive a server
// save/restore cycle and the client can keep using them (the client holds
// its own position map and stash, so a server restart is transparent).
func TestSnapshotPreservesProtocolState(t *testing.T) {
	rel, err := securefd.GenerateDataset("letter", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	server := securefd.NewServer()
	db, err := securefd.Outsource(server, rel, securefd.Options{
		Protocol:       securefd.ProtocolDynamicORAM,
		InsertHeadroom: 4,
		MaxLHS:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Discover(); err != nil {
		t.Fatal(err)
	}

	// Snapshot and restore into the same server (a restart in place).
	var snap bytes.Buffer
	if err := server.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := server.LoadSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// The dynamic protocol keeps working against the restored state.
	row := make(securefd.Row, rel.NumAttrs())
	for j := range row {
		row[j] = "z"
	}
	id, err := db.Insert(row)
	if err != nil {
		t.Fatalf("Insert after restore: %v", err)
	}
	if err := db.Delete(id); err != nil {
		t.Fatalf("Delete after restore: %v", err)
	}
}

// TestAllProtocolsAgreeOnGeneratedData: every protocol discovers the same
// FDs on each shaped dataset sample.
func TestAllProtocolsAgreeOnGeneratedData(t *testing.T) {
	for _, name := range []string{"adult", "letter"} {
		rel, err := securefd.GenerateDataset(name, 40, 5)
		if err != nil {
			t.Fatal(err)
		}
		var reference []relation.FD
		for _, p := range []securefd.Protocol{
			securefd.ProtocolPlaintext, securefd.ProtocolSort,
			securefd.ProtocolORAM, securefd.ProtocolDynamicORAM,
			securefd.ProtocolEnclave,
		} {
			db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
				Protocol: p, Workers: 2, MaxLHS: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			report, err := db.Discover()
			db.Close()
			if err != nil {
				t.Fatalf("%s/%v: %v", name, p, err)
			}
			if reference == nil {
				reference = report.Minimal
				continue
			}
			if !relation.FDSetEqual(report.Minimal, reference) {
				t.Errorf("%s/%v: FDs diverge from plaintext reference", name, p)
			}
		}
	}
}
