package oblivfd

// Kill-the-primary chaos harness for the replication subsystem: a 3-node
// replicated cluster (1 primary, 2 replicas) serves a discovery run through
// a failover client; the primary is killed at seeded WAL offsets
// mid-discovery; the client must promote a replica (with a higher fencing
// epoch) and finish with the exact FD set of an uninterrupted run. The
// per-layer properties live in internal/store (stream integrity, fencing)
// and internal/transport (promotion, fence-aware handshakes); this is the
// end-to-end composition check, the replication analogue of crash_test.go.

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/baseline"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
	"github.com/oblivfd/oblivfd/securefd"
)

var failoverOpts = securefd.Options{Protocol: securefd.ProtocolSort, Workers: 2, MaxLHS: 2}

// failNode is one member of the chaos cluster.
type failNode struct {
	addr string
	dir  string
	rep  *store.ReplicatedServer
	ts   *transport.Server
}

// failCluster boots 1 primary + (n-1) replicas over real TCP sockets, every
// node configured with all others as replication peers. kills arms the
// primary's crash-injection point (0 = never killed).
func failCluster(t *testing.T, n int, kills int64) []*failNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	dial := func(addr string) (store.ReplicaConn, error) {
		return transport.DialWith(addr, transport.ClientConfig{
			DialTimeout: time.Second, Redials: -1,
		})
	}
	nodes := make([]*failNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		opts := store.DurableOptions{}
		if i == 0 {
			opts.KillAfterAppends = kills
		}
		dir := t.TempDir()
		d, err := store.OpenDir(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := store.Replicated(d, store.ReplicationConfig{
			Primary:     i == 0,
			Peers:       peers,
			RedialEvery: 1,
			Dial:        dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := transport.NewServer(rep)
		ts.SetReplicator(rep)
		go func(l net.Listener) { _ = ts.Serve(l) }(listeners[i])
		nodes[i] = &failNode{addr: addrs[i], dir: dir, rep: rep, ts: ts}
		t.Cleanup(func() { ts.Shutdown(0); rep.Close() })
	}
	return nodes
}

// failoverService dials the whole cluster and layers the retry policy a real
// deployment would use, so a promotion mid-call looks like one more
// transient fault.
func failoverService(t *testing.T, nodes []*failNode) (*transport.FailoverPool, securefd.Service) {
	t.Helper()
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	cfg := securefd.DefaultClientConfig()
	cfg.DialTimeout = time.Second
	cfg.Redials = 1
	f, err := securefd.DialTCPFailover(addrs, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	svc := securefd.WithRetry(f, securefd.RetryPolicy{
		MaxAttempts:    6,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
	})
	return f, svc
}

// cleanReplicatedRun discovers over an unkilled cluster and returns the
// baseline report plus the primary's WAL-append counts after upload and at
// the end — the coordinate system the kill points are placed in.
func cleanReplicatedRun(t *testing.T) (rep *securefd.Report, afterUpload, total int64) {
	t.Helper()
	nodes := failCluster(t, 3, 0)
	_, svc := failoverService(t, nodes)
	db, err := securefd.Outsource(svc, crashRelation(t), failoverOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	afterUpload = nodes[0].rep.Durable().WALAppends()
	report, err := db.Discover()
	if err != nil {
		t.Fatal(err)
	}
	total = nodes[0].rep.Durable().WALAppends()
	if want := baseline.MinimalFDs(crashRelation(t)); !relation.FDSetEqual(report.Minimal, want) {
		t.Fatalf("clean replicated run FDs = %v, want oracle %v", report.Minimal, want)
	}
	// Synchronous shipping: nothing outstanding at the end of a clean run.
	if lag := nodes[0].rep.ReplicaLag(); lag != 0 {
		t.Fatalf("clean run ends with replication lag %d", lag)
	}
	return report, afterUpload, total
}

// TestFailoverPrimaryKilledMidDiscovery is the tentpole acceptance test:
// the primary dies at five seeded WAL offsets spread across the discovery
// phase; each time the client must fail over to a promoted replica and
// produce the identical FD set, and the dead primary's successor must hold a
// strictly higher fence.
func TestFailoverPrimaryKilledMidDiscovery(t *testing.T) {
	want, afterUpload, total := cleanReplicatedRun(t)
	if total-afterUpload < 6 {
		t.Fatalf("discovery spans only %d appends; cannot place 5 kill points", total-afterUpload)
	}
	for i := int64(1); i <= 5; i++ {
		kill := afterUpload + i*(total-afterUpload)/6
		t.Run(fmt.Sprintf("kill@%d", kill), func(t *testing.T) {
			nodes := failCluster(t, 3, kill)
			f, svc := failoverService(t, nodes)
			db, err := securefd.Outsource(svc, crashRelation(t), failoverOpts)
			if err != nil {
				t.Fatalf("Outsource: %v", err)
			}
			defer db.Close()
			report, err := db.Discover()
			if err != nil {
				t.Fatalf("discovery across primary death: %v", err)
			}
			if !relation.FDSetEqual(report.Minimal, want.Minimal) {
				t.Errorf("FDs = %v, want %v", report.Minimal, want.Minimal)
			}
			if n := f.Failovers(); n < 1 {
				t.Errorf("failovers = %d, want >= 1 (the kill point must have fired)", n)
			}
			addr, fence := f.Primary()
			if addr == nodes[0].addr {
				t.Errorf("client still points at the killed primary %s", addr)
			}
			if fence < 2 {
				t.Errorf("post-failover fence = %d, want >= 2", fence)
			}
			if nodes[0].rep.IsPrimary() {
				t.Error("killed ex-primary still claims the role")
			}
		})
	}
}

// TestFailoverExPrimaryRejoinsFenced: after a failover, the ex-primary's
// directory is reopened with its original primary flags (an operator
// restarting the crashed box unchanged). The FENCE file its successor's
// stream left behind demotes it at boot; it cannot serve clients or accept
// writes, and a fence-aware handshake is refused.
func TestFailoverExPrimaryRejoinsFenced(t *testing.T) {
	_, afterUpload, total := cleanReplicatedRun(t)
	kill := afterUpload + (total-afterUpload)/2
	nodes := failCluster(t, 3, kill)
	f, svc := failoverService(t, nodes)
	db, err := securefd.Outsource(svc, crashRelation(t), failoverOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Discover(); err != nil {
		t.Fatalf("discovery across primary death: %v", err)
	}
	_, fence := f.Primary()
	if fence < 2 {
		t.Fatalf("post-failover fence = %d, want >= 2", fence)
	}

	// Restart the dead box from its directory, flags unchanged.
	nodes[0].ts.Shutdown(0)
	if err := nodes[0].rep.Close(); err != nil {
		t.Fatal(err)
	}
	d, err := store.OpenDir(nodes[0].dir, store.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := store.Replicated(d, store.ReplicationConfig{Primary: true, Fence: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	if rep2.IsPrimary() {
		t.Fatal("ex-primary rebooted into the primary role despite its successor's fence")
	}
	if rep2.Fence() < fence {
		t.Errorf("rebooted fence = %d, want >= %d (learned from the successor's stream)", rep2.Fence(), fence)
	}
	if err := rep2.WriteCells("anything", []int64{0}, [][]byte{{1}}); err == nil ||
		(!errors.Is(err, securefd.ErrNotPrimary) && !errors.Is(err, securefd.ErrFenced)) {
		t.Errorf("rebooted ex-primary write = %v, want ErrNotPrimary or ErrFenced", err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts2 := transport.NewServer(rep2)
	ts2.SetReplicator(rep2)
	go func() { _ = ts2.Serve(l) }()
	defer ts2.Shutdown(0)
	cfg := securefd.DefaultClientConfig()
	cfg.Fence = fence
	if _, err := securefd.DialTCPWith(l.Addr().String(), cfg); err == nil ||
		(!errors.Is(err, securefd.ErrNotPrimary) && !errors.Is(err, securefd.ErrFenced)) {
		t.Errorf("fence-aware dial of rebooted ex-primary = %v, want a role refusal", err)
	}
}
