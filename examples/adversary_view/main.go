// The adversary's view: what does the persistent adversary actually see?
//
// This example runs the same secure discovery over two databases of equal
// size but wildly different contents — one uniform-random, one a single
// repeated row — and compares the server-visible traces. Obliviousness
// (Definition 2) says they must be indistinguishable: same operations, same
// objects, same sizes, in the same order; only the uniformly random ORAM
// leaves and the ciphertext bits differ.
//
//	go run ./examples/adversary_view
package main

import (
	"fmt"
	"log"

	"github.com/oblivfd/oblivfd/securefd"
)

func main() {
	const rows = 64

	// Two same-size databases with entirely different values. The secure
	// protocol is allowed to reveal exactly L(DB) = {Size(DB), FD(DB)}:
	// equal sizes and equal FD sets must therefore mean equal traces.
	// Cell widths are padded equal (cell lengths are part of Size under
	// cell-level encryption), and both databases carry the same FD
	// structure — distinct random values everywhere, so every column is
	// a key in both.
	padTo7 := func(rel *securefd.Relation) *securefd.Relation {
		out := securefd.NewRelation(rel.Schema())
		for i := 0; i < rel.NumRows(); i++ {
			row := make(securefd.Row, rel.NumAttrs())
			for j := range row {
				row[j] = fmt.Sprintf("%07s", rel.Value(i, j))
			}
			if err := out.Append(row); err != nil {
				log.Fatal(err)
			}
		}
		return out
	}
	dbA := padTo7(securefd.GenerateRND(3, rows, 7))
	dbB := padTo7(securefd.GenerateRND(3, rows, 1234))

	shapeA := observe(dbA)
	shapeB := observe(dbB)

	fmt.Printf("database A: %d rows of random values (seed 7)\n", rows)
	fmt.Printf("database B: %d rows of random values (seed 1234) — zero cells in common\n\n", rows)
	fmt.Printf("server-visible events during discovery:\n")
	fmt.Printf("  A: %d events\n", len(shapeA))
	fmt.Printf("  B: %d events\n", len(shapeB))

	if shapeA.Equal(shapeB) {
		fmt.Println("\ntrace shapes are IDENTICAL — the adversary cannot tell the databases apart.")
		fmt.Println("Had the two databases carried different FDs, the traces would diverge exactly")
		fmt.Println("at the lattice's pruning decisions: that divergence IS the allowed FD(DB) leakage.")
	} else {
		fmt.Println("\ntrace shapes DIFFER (this indicates a leak — please report it):")
		fmt.Println(shapeA.Diff(shapeB))
	}

	fmt.Println("\nfirst five events the adversary sees (database A):")
	for _, e := range shapeA[:5] {
		fmt.Printf("  %v\n", e)
	}
}

// observe runs a full discovery and returns the normalized trace shape.
func observe(rel *securefd.Relation) securefd.TraceShape {
	server := securefd.NewServer()
	server.Trace().Enable()
	db, err := securefd.Outsource(server, rel, securefd.Options{
		Protocol: securefd.ProtocolSort,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Discover(); err != nil {
		log.Fatal(err)
	}
	return securefd.ShapeOf(server.Trace().Events()).Canonical()
}
