// Parallelism and enclaves: the sorting protocol's two deployment levers
// (§IV-D, §VII-D / Fig. 6).
//
// The bitonic network's stages contain only disjoint compare-exchanges, so
// the protocol parallelizes up to n/2; and because the client logic is a
// tiny constant-memory loop, it fits a secure enclave, where dropping the
// client↔server transfer and re-encryption yields orders-of-magnitude
// speedups.
//
//	go run ./examples/parallel_enclave
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/oblivfd/oblivfd/securefd"
)

// rtt models the client↔server network round trip of a real deployment
// (the paper's client and server sit on a 1 Gbps LAN). Network latency —
// unlike CPU time — is what parallel workers overlap.
const rtt = 100 * time.Microsecond

func main() {
	const rows = 256
	rel := securefd.GenerateRND(4, rows, 42)

	fmt.Printf("sorting protocol on RND %d×%d, full discovery each run, %v modeled RTT\n\n", rows, rel.NumAttrs(), rtt)

	// Lever 1: parallel workers on the client-server protocol.
	fmt.Println("threads  runtime   speedup   (client-server protocol)")
	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8} {
		d, fds := discover(rel, securefd.ProtocolSort, workers)
		if base == 0 {
			base = d
		}
		fmt.Printf("%7d  %8s  %7.2fx  (%d FDs)\n", workers, d.Round(time.Millisecond), float64(base)/float64(d), fds)
	}

	// Lever 2: the enclave deployment — same algorithm, plaintext secure
	// memory, no transfer, no re-encryption.
	d, fds := discover(rel, securefd.ProtocolEnclave, 4)
	fmt.Printf("\nenclave  %8s  %7.0fx  (%d FDs) — simulated SGX deployment\n",
		d.Round(time.Microsecond), float64(base)/float64(d), fds)
	fmt.Println("\nthe paper reports a 22,000x speedup for SGX over its Python/LAN baseline (Fig. 6b);")
	fmt.Println("our non-enclave baseline is already in-process Go, so the measured factor is smaller,")
	fmt.Println("but the shape — enclave >> protocol, parallelism with diminishing returns — matches.")
}

func discover(rel *securefd.Relation, p securefd.Protocol, workers int) (time.Duration, int) {
	svc := securefd.WithLatency(securefd.NewServer(), rtt)
	db, err := securefd.Outsource(svc, rel, securefd.Options{
		Protocol: p,
		Workers:  workers,
		MaxLHS:   2, // keep the demo snappy
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	start := time.Now()
	report, err := db.Discover()
	if err != nil {
		log.Fatal(err)
	}
	return time.Since(start), len(report.Minimal)
}
