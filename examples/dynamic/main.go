// Dynamic databases: the extended ORAM protocol (§V) keeps discovered
// dependencies fresh under insertions and deletions at polylogarithmic cost
// per operation — the paper's first non-trivial dynamic FD protocol.
//
// The scenario: an employee table with the intro's motivating dependency
// Position → Department. A re-org inserts a record that breaks it; the FD
// is re-validated instantly from maintained partitions (no O(n) rescan);
// deleting the record restores it.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"github.com/oblivfd/oblivfd/securefd"
)

func main() {
	schema, err := securefd.NewSchema("Employee", "Position", "Department")
	if err != nil {
		log.Fatal(err)
	}
	rel, err := securefd.FromRows(schema, []securefd.Row{
		{"E01", "Engineer", "R&D"},
		{"E02", "Engineer", "R&D"},
		{"E03", "Scientist", "R&D"},
		{"E04", "Account-Exec", "Sales"},
		{"E05", "Account-Exec", "Sales"},
		{"E06", "Recruiter", "People"},
	})
	if err != nil {
		log.Fatal(err)
	}

	db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
		Protocol:       securefd.ProtocolDynamicORAM,
		InsertHeadroom: 8, // capacity for future insertions
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	report, err := db.Discover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial minimal FDs:")
	for _, fd := range report.Minimal {
		fmt.Println(" ", fd.Format(schema))
	}

	position := schema.MustSet("Position")
	posDept := schema.MustSet("Position", "Department")
	holds := func() bool {
		a, _ := db.Cardinality(position)
		b, _ := db.Cardinality(posDept)
		return a == b
	}
	fmt.Printf("\nPosition -> Department: %v\n", holds())

	// A re-org: an Engineer moves to the new Platform department. The
	// insertion updates every maintained partition in O(log n) ORAM
	// accesses per attribute set — not a rescan.
	id, err := db.Insert(securefd.Row{"E07", "Engineer", "Platform"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted E07 (Engineer, Platform) as record %d\n", id)
	fmt.Printf("Position -> Department: %v  (broken by the new record)\n", holds())

	// The re-org is rolled back.
	if err := db.Delete(id); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted record %d\n", id)
	fmt.Printf("Position -> Department: %v  (restored)\n", holds())

	fmt.Printf("\nlive records: %d\n", db.NumRows())
}
