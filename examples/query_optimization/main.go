// Query optimization with discovered FDs — the paper's motivating example
// (§I-A): if Position → Department holds, a query filtering on both
// attributes only needs the Position equality test, halving the number of
// encrypted equality checks, which is expensive in encrypted databases.
//
// This example discovers the FD securely, then simulates the two query
// plans over the encrypted table and counts the equality tests each
// performs.
//
//	go run ./examples/query_optimization
package main

import (
	"fmt"
	"log"

	"github.com/oblivfd/oblivfd/securefd"
)

func main() {
	schema, err := securefd.NewSchema("Employee", "Position", "Department")
	if err != nil {
		log.Fatal(err)
	}
	rel := securefd.NewRelation(schema)
	positions := []struct{ pos, dept string }{
		{"Engineer", "R&D"}, {"Scientist", "R&D"}, {"Account-Exec", "Sales"},
		{"Recruiter", "People"}, {"Counsel", "Legal"},
	}
	for i := 0; i < 200; i++ {
		p := positions[i%len(positions)]
		if err := rel.Append(securefd.Row{fmt.Sprintf("E%03d", i), p.pos, p.dept}); err != nil {
			log.Fatal(err)
		}
	}

	db, err := securefd.Outsource(securefd.NewServer(), rel, securefd.Options{
		Protocol: securefd.ProtocolSort,
		Workers:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Step 1: maintenance-time FD discovery.
	position := schema.MustSet("Position")
	department := schema.MustSet("Department")
	holds, err := db.Validate(position, department)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("discovered securely: Position -> Department holds = %v\n\n", holds)

	// Step 2: query time. The query is
	//   SELECT * WHERE Position = 'Engineer' AND Department = 'R&D'
	// Without the FD the executor must run an encrypted equality test per
	// row per predicate; with it, the Department predicate is implied.
	naive := countEqualityTests(rel, true)
	optimized := countEqualityTests(rel, false)
	fmt.Printf("naive plan:     %5d encrypted equality tests (two predicates)\n", naive)
	fmt.Printf("optimized plan: %5d encrypted equality tests (Position only; FD implies Department)\n", optimized)
	fmt.Printf("\nsaved %.0f%% of the equality tests — 'half costs can be reduced' (§I-A)\n",
		100*float64(naive-optimized)/float64(naive))
}

// countEqualityTests simulates the executor: one test per row for the
// Position predicate, plus one per row for Department in the naive plan.
func countEqualityTests(rel *securefd.Relation, checkDepartment bool) int {
	tests := 0
	for i := 0; i < rel.NumRows(); i++ {
		tests++ // Position equality test
		if checkDepartment {
			tests++ // Department equality test
		}
	}
	return tests
}
