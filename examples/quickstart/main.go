// Quickstart: outsource a small table and discover its functional
// dependencies securely.
//
// The server in this example is in-process, but it plays the untrusted
// party faithfully: it stores only ciphertexts, and every byte it observes
// is recorded in its access-pattern trace. Swap NewServer for DialTCP to
// run against a real remote fdserver.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/oblivfd/oblivfd/securefd"
)

func main() {
	// The paper's Fig. 1 relation.
	schema, err := securefd.NewSchema("Name", "City", "Birth")
	if err != nil {
		log.Fatal(err)
	}
	rel, err := securefd.FromRows(schema, []securefd.Row{
		{"Alice", "Boston", "Jan"},
		{"Bob", "Boston", "May"},
		{"Bob", "Boston", "Jan"},
		{"Carol", "New York", "Sep"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Outsource: a fresh 128-bit key is generated client-side, every cell
	// is encrypted individually, and the ciphertexts go to the server.
	server := securefd.NewServer()
	db, err := securefd.Outsource(server, rel, securefd.Options{
		Protocol: securefd.ProtocolSort, // oblivious bitonic sorting (§IV-D)
		Workers:  2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Discover all minimal functional dependencies. The server learns
	// nothing beyond the database size and the FDs themselves.
	report, err := db.Discover()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("minimal functional dependencies:")
	for _, fd := range report.Minimal {
		fmt.Println(" ", fd.Format(schema))
	}

	// Validate one dependency directly (Theorem 1: |π_X| = |π_{X∪Y}|).
	nameToCity, err := db.Validate(schema.MustSet("Name"), schema.MustSet("City"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nName -> City holds: %v (the paper's Fig. 1 example)\n", nameToCity)

	// What did the adversary see? Only sizes, object names, and access
	// patterns — plus the deliberately revealed FD decisions.
	fmt.Printf("\nserver observed %d storage operations and %d public FD decisions\n",
		server.Trace().TotalOps(), len(server.Reveals()))
}
