package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// ReadCSV loads a relation from CSV with a header row of attribute names.
func ReadCSV(r io.Reader) (*relation.Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	schema, err := relation.NewSchema(header...)
	if err != nil {
		return nil, fmt.Errorf("dataset: CSV header: %w", err)
	}
	rel := relation.New(schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		if err := rel.Append(relation.Row(rec)); err != nil {
			return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
		}
	}
	return rel, nil
}

// ReadCSVFile loads a relation from a CSV file path.
func ReadCSVFile(path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	return ReadCSV(f)
}

// WriteCSV writes a relation as CSV with a header row.
func WriteCSV(w io.Writer, rel *relation.Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema().Names()); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for i := 0; i < rel.NumRows(); i++ {
		if err := cw.Write(rel.Row(i)); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes a relation to a CSV file path.
func WriteCSVFile(path string, rel *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := WriteCSV(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
