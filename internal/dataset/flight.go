package dataset

import (
	"fmt"
	"math/rand"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// Flight generates a Flight-route-shaped relation: 20 columns of flight
// stream data with the rich FD structure route data has in reality
// (airport code → city, flight number → carrier, etc.). This makes it the
// FD-densest of the three shaped datasets, as in the original.
func Flight(n int, seed int64) *relation.Relation {
	schema := relation.MustNewSchema(
		"flight-date", "carrier-code", "carrier-name", "flight-num",
		"origin", "origin-city", "origin-state", "dest", "dest-city",
		"dest-state", "sched-dep", "actual-dep", "dep-delay", "sched-arr",
		"actual-arr", "arr-delay", "distance", "air-time", "tail-num",
		"cancelled",
	)
	r := relation.New(schema)
	rng := rand.New(rand.NewSource(seed))

	carriers := []struct{ code, name string }{
		{"AA", "American"}, {"DL", "Delta"}, {"UA", "United"},
		{"WN", "Southwest"}, {"B6", "JetBlue"}, {"AS", "Alaska"},
		{"NK", "Spirit"}, {"F9", "Frontier"},
	}
	airports := []struct{ code, city, state string }{
		{"ATL", "Atlanta", "GA"}, {"LAX", "Los-Angeles", "CA"},
		{"ORD", "Chicago", "IL"}, {"DFW", "Dallas", "TX"},
		{"DEN", "Denver", "CO"}, {"JFK", "New-York", "NY"},
		{"SFO", "San-Francisco", "CA"}, {"SEA", "Seattle", "WA"},
		{"LAS", "Las-Vegas", "NV"}, {"MCO", "Orlando", "FL"},
		{"BOS", "Boston", "MA"}, {"MIA", "Miami", "FL"},
		{"PHX", "Phoenix", "AZ"}, {"IAH", "Houston", "TX"},
		{"EWR", "Newark", "NJ"}, {"MSP", "Minneapolis", "MN"},
	}

	for i := 0; i < n; i++ {
		c := carriers[rng.Intn(len(carriers))]
		o := airports[rng.Intn(len(airports))]
		d := airports[rng.Intn(len(airports))]
		schedDep := rng.Intn(24*60 - 300)
		depDelay := rng.Intn(90) - 10
		dist := 200 + rng.Intn(2500)
		airTime := dist/8 + rng.Intn(30)
		schedArr := schedDep + airTime + 20
		arrDelay := depDelay + rng.Intn(20) - 10
		// flight-num determines carrier (planted FD): partition the number
		// space by carrier.
		fnum := rng.Intn(1200) + 1 + 1200*carrierIndex(carriers, c.code)

		row := relation.Row{
			fmt.Sprintf("2023-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
			c.code, c.name,
			fmt.Sprint(fnum),
			o.code, o.city, o.state,
			d.code, d.city, d.state,
			hhmm(schedDep), hhmm(schedDep + depDelay), fmt.Sprint(depDelay),
			hhmm(schedArr), hhmm(schedArr + arrDelay), fmt.Sprint(arrDelay),
			fmt.Sprint(dist), fmt.Sprint(airTime),
			fmt.Sprintf("N%05d", rng.Intn(4000)),
			pick(rng, []string{"0", "1"}, []int{98, 2}),
		}
		mustAppend(r, row)
	}
	return r
}

func carrierIndex(carriers []struct{ code, name string }, code string) int {
	for i, c := range carriers {
		if c.code == code {
			return i
		}
	}
	return 0
}

func hhmm(minutes int) string {
	if minutes < 0 {
		minutes += 24 * 60
	}
	minutes %= 24 * 60
	return fmt.Sprintf("%02d:%02d", minutes/60, minutes%60)
}
