package dataset

import (
	"fmt"
	"math/rand"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// Letter generates a Letter-Recognition-shaped relation: 16 numeric feature
// columns in 0..15 plus the class column folded into the feature count the
// way the paper counts it (16 columns total: "lettr" + 15 features; the UCI
// set has 17 but the paper reports 16, so we follow the paper). The class
// letter weakly correlates with features; no exact FDs besides those arising
// by chance in small integer domains — the interesting regime for the
// obliviousness experiment, where the value distribution is near-uniform and
// narrow.
func Letter(n int, seed int64) *relation.Relation {
	names := []string{
		"lettr", "x-box", "y-box", "width", "high", "onpix", "x-bar",
		"y-bar", "x2bar", "y2bar", "xybar", "x2ybr", "xy2br", "x-ege",
		"xegvy", "y-ege",
	}
	r := relation.New(relation.MustNewSchema(names...))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		letter := string(rune('A' + rng.Intn(26)))
		row := make(relation.Row, len(names))
		row[0] = letter
		// Features cluster weakly around a per-letter centroid, like the
		// real extracted-glyph statistics.
		base := int(letter[0]-'A') % 8
		for j := 1; j < len(names); j++ {
			v := base + rng.Intn(9) - 4
			if v < 0 {
				v = 0
			}
			if v > 15 {
				v = 15
			}
			row[j] = fmt.Sprint(v)
		}
		mustAppend(r, row)
	}
	return r
}
