package dataset

import (
	"bytes"
	"strconv"
	"testing"

	"github.com/oblivfd/oblivfd/internal/relation"
)

func TestRNDShapeAndDomain(t *testing.T) {
	r := RND(5, 100, 1)
	if r.NumAttrs() != 5 || r.NumRows() != 100 {
		t.Fatalf("shape = %dx%d, want 5x100", r.NumAttrs(), r.NumRows())
	}
	for i := 0; i < r.NumRows(); i++ {
		for j := 0; j < r.NumAttrs(); j++ {
			v, err := strconv.Atoi(r.Value(i, j))
			if err != nil || v < 1 || v > 1<<20 {
				t.Fatalf("cell (%d,%d) = %q outside [1, 2^20]", i, j, r.Value(i, j))
			}
		}
	}
}

func TestRNDDeterministicBySeed(t *testing.T) {
	a := RND(3, 50, 42)
	b := RND(3, 50, 42)
	c := RND(3, 50, 43)
	same, diff := true, false
	for i := 0; i < 50; i++ {
		for j := 0; j < 3; j++ {
			if a.Value(i, j) != b.Value(i, j) {
				same = false
			}
			if a.Value(i, j) != c.Value(i, j) {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different data")
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestShapedDatasetsMatchTable1Columns(t *testing.T) {
	cases := []struct {
		name string
		rel  *relation.Relation
		cols int
	}{
		{"Adult", Adult(200, 1), 14},
		{"Letter", Letter(200, 1), 16},
		{"Flight", Flight(200, 1), 20},
	}
	for _, c := range cases {
		if got := c.rel.NumAttrs(); got != c.cols {
			t.Errorf("%s columns = %d, want %d (Table I)", c.name, got, c.cols)
		}
		if got := c.rel.NumRows(); got != 200 {
			t.Errorf("%s rows = %d, want 200", c.name, got)
		}
	}
}

func TestAdultPlantedFD(t *testing.T) {
	r := Adult(2000, 7)
	s := r.Schema()
	edu, _ := s.Index("education")
	eduNum, _ := s.Index("education-num")
	fd := relation.FD{LHS: relation.SingleAttr(edu), RHS: relation.SingleAttr(eduNum)}
	if !fd.Holds(r) {
		t.Error("planted FD education -> education-num does not hold")
	}
}

func TestFlightPlantedFDs(t *testing.T) {
	r := Flight(2000, 7)
	s := r.Schema()
	cases := []struct{ lhs, rhs string }{
		{"carrier-code", "carrier-name"},
		{"flight-num", "carrier-code"},
		{"origin", "origin-city"},
		{"origin-city", "origin-state"},
		{"dest", "dest-state"},
	}
	for _, c := range cases {
		li, _ := s.Index(c.lhs)
		ri, _ := s.Index(c.rhs)
		fd := relation.FD{LHS: relation.SingleAttr(li), RHS: relation.SingleAttr(ri)}
		if !fd.Holds(r) {
			t.Errorf("planted FD %s -> %s does not hold", c.lhs, c.rhs)
		}
	}
	// Negative control: date should not determine carrier.
	di, _ := s.Index("flight-date")
	ci, _ := s.Index("carrier-code")
	fd := relation.FD{LHS: relation.SingleAttr(di), RHS: relation.SingleAttr(ci)}
	if fd.Holds(r) {
		t.Error("flight-date -> carrier-code holds; generator degenerate")
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, name := range []string{"adult", "letter", "flight", "rnd"} {
		r, err := Generate(name, 50, 1)
		if err != nil {
			t.Errorf("Generate(%q): %v", name, err)
			continue
		}
		if r.NumRows() != 50 {
			t.Errorf("Generate(%q) rows = %d, want 50", name, r.NumRows())
		}
	}
	if _, err := Generate("bogus", 10, 1); err == nil {
		t.Error("Generate on unknown name succeeded")
	}
}

func TestGenerateDefaultSizesMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	for _, spec := range Specs {
		r, err := Generate(lower(spec.Name), 0, 1)
		if err != nil {
			t.Fatalf("Generate(%s): %v", spec.Name, err)
		}
		if r.NumRows() != spec.Rows || r.NumAttrs() != spec.Columns {
			t.Errorf("%s = %dx%d, want %dx%d", spec.Name,
				r.NumAttrs(), r.NumRows(), spec.Columns, spec.Rows)
		}
	}
}

func lower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Adult(30, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRows() != orig.NumRows() || got.NumAttrs() != orig.NumAttrs() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := 0; i < got.NumRows(); i++ {
		for j := 0; j < got.NumAttrs(); j++ {
			if got.Value(i, j) != orig.Value(i, j) {
				t.Fatalf("cell (%d,%d) = %q, want %q", i, j, got.Value(i, j), orig.Value(i, j))
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2,3\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,a\n1,2\n")); err == nil {
		t.Error("duplicate-header CSV accepted")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/tiny.csv"
	orig := Letter(10, 5)
	if err := WriteCSVFile(path, orig); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	got, err := ReadCSVFile(path)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if got.NumRows() != 10 {
		t.Errorf("rows = %d, want 10", got.NumRows())
	}
	if _, err := ReadCSVFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}
