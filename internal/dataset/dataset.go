// Package dataset provides the workloads of the paper's evaluation (§VII-A,
// Table I): the synthetic RND generator and shape-compatible substitutes for
// the three real-world datasets (Adult, Letter, Flight).
//
// Substitution note (see DESIGN.md §2): the original datasets are not
// redistributable here, so each generator reproduces the published column
// count, row count, and a plausible value-distribution profile, including
// planted functional dependencies so the database-level search has real work
// to do. The protocols under test are oblivious, so their server-visible
// behaviour must not depend on these contents — which is exactly what the
// Table II experiment checks.
package dataset

import (
	"fmt"
	"math/rand"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// Spec describes a named dataset's published shape (Table I).
type Spec struct {
	Name    string
	Columns int
	Rows    int
}

// Specs lists the paper's datasets in Table I order.
var Specs = []Spec{
	{Name: "Adult", Columns: 14, Rows: 48842},
	{Name: "Letter", Columns: 16, Rows: 20000},
	{Name: "Flight", Columns: 20, Rows: 500000},
}

// RND generates the paper's synthetic dataset: n rows × m columns, each cell
// drawn uniformly from [1, 2^20] (§VII-A). The rng seed makes runs
// reproducible.
func RND(m, n int, seed int64) *relation.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("C%02d", i)
	}
	r := relation.New(relation.MustNewSchema(names...))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		row := make(relation.Row, m)
		for j := range row {
			row[j] = fmt.Sprint(rng.Intn(1<<20) + 1)
		}
		mustAppend(r, row)
	}
	return r
}

// Generate builds the named dataset ("adult", "letter", "flight", "rnd") at
// its published size, or at the requested rows if rows > 0.
func Generate(name string, rows int, seed int64) (*relation.Relation, error) {
	switch name {
	case "adult":
		return Adult(orDefault(rows, 48842), seed), nil
	case "letter":
		return Letter(orDefault(rows, 20000), seed), nil
	case "flight":
		return Flight(orDefault(rows, 500000), seed), nil
	case "rnd":
		return RND(10, orDefault(rows, 1<<13), seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q (want adult|letter|flight|rnd)", name)
	}
}

func orDefault(v, d int) int {
	if v > 0 {
		return v
	}
	return d
}

func mustAppend(r *relation.Relation, row relation.Row) {
	if err := r.Append(row); err != nil {
		panic(err)
	}
}

// pick returns a categorical value with the given rng, weighted by weights.
func pick(rng *rand.Rand, values []string, weights []int) string {
	total := 0
	for _, w := range weights {
		total += w
	}
	x := rng.Intn(total)
	for i, w := range weights {
		if x < w {
			return values[i]
		}
		x -= w
	}
	return values[len(values)-1]
}
