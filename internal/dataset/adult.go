package dataset

import (
	"fmt"
	"math/rand"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// Adult generates an Adult-shaped census relation: 14 columns matching the
// UCI Adult schema, with skewed categorical distributions and the dataset's
// best-known FD planted (education → education-num is a bijection in the
// real data).
func Adult(n int, seed int64) *relation.Relation {
	schema := relation.MustNewSchema(
		"age", "workclass", "fnlwgt", "education", "education-num",
		"marital-status", "occupation", "relationship", "race", "sex",
		"capital-gain", "capital-loss", "hours-per-week", "native-country",
	)
	r := relation.New(schema)
	rng := rand.New(rand.NewSource(seed))

	educations := []string{
		"Bachelors", "HS-grad", "11th", "Masters", "9th", "Some-college",
		"Assoc-acdm", "Assoc-voc", "7th-8th", "Doctorate", "Prof-school",
		"5th-6th", "10th", "1st-4th", "Preschool", "12th",
	}
	eduWeights := []int{16, 32, 4, 5, 2, 22, 3, 4, 2, 1, 2, 1, 3, 1, 1, 1}
	workclasses := []string{
		"Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
		"Local-gov", "State-gov", "Without-pay", "Never-worked",
	}
	workWeights := []int{70, 8, 3, 3, 6, 4, 1, 1}
	maritals := []string{
		"Married-civ-spouse", "Divorced", "Never-married", "Separated",
		"Widowed", "Married-spouse-absent", "Married-AF-spouse",
	}
	maritalWeights := []int{46, 14, 33, 3, 3, 1, 1}
	occupations := []string{
		"Tech-support", "Craft-repair", "Other-service", "Sales",
		"Exec-managerial", "Prof-specialty", "Handlers-cleaners",
		"Machine-op-inspct", "Adm-clerical", "Farming-fishing",
		"Transport-moving", "Priv-house-serv", "Protective-serv",
		"Armed-Forces",
	}
	occWeights := []int{3, 13, 11, 12, 13, 13, 4, 7, 12, 3, 5, 1, 2, 1}
	relationships := []string{
		"Wife", "Own-child", "Husband", "Not-in-family",
		"Other-relative", "Unmarried",
	}
	relWeights := []int{5, 16, 40, 26, 3, 10}
	races := []string{"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"}
	raceWeights := []int{85, 3, 1, 1, 10}
	countries := []string{
		"United-States", "Mexico", "Philippines", "Germany", "Canada",
		"Puerto-Rico", "El-Salvador", "India", "Cuba", "England",
	}
	countryWeights := []int{90, 2, 1, 1, 1, 1, 1, 1, 1, 1}

	for i := 0; i < n; i++ {
		edu := pick(rng, educations, eduWeights)
		// Planted FD: education -> education-num (real Adult property).
		eduNum := fmt.Sprint(eduIndex(educations, edu) + 1)
		row := relation.Row{
			fmt.Sprint(17 + rng.Intn(74)),
			pick(rng, workclasses, workWeights),
			fmt.Sprint(10000 + rng.Intn(1_400_000)),
			edu,
			eduNum,
			pick(rng, maritals, maritalWeights),
			pick(rng, occupations, occWeights),
			pick(rng, relationships, relWeights),
			pick(rng, races, raceWeights),
			pick(rng, []string{"Male", "Female"}, []int{67, 33}),
			capGain(rng),
			capLoss(rng),
			fmt.Sprint(1 + rng.Intn(99)),
			pick(rng, countries, countryWeights),
		}
		mustAppend(r, row)
	}
	return r
}

func eduIndex(educations []string, edu string) int {
	for i, e := range educations {
		if e == edu {
			return i
		}
	}
	return 0
}

func capGain(rng *rand.Rand) string {
	// Mostly zero, occasionally large — matches the real column's skew.
	if rng.Intn(100) < 92 {
		return "0"
	}
	return fmt.Sprint(1000 + rng.Intn(99000))
}

func capLoss(rng *rand.Rand) string {
	if rng.Intn(100) < 95 {
		return "0"
	}
	return fmt.Sprint(100 + rng.Intn(4000))
}
