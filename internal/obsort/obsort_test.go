package obsort

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/trace"
)

func u64rec(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func u64less(a, b []byte) bool {
	return binary.BigEndian.Uint64(a) < binary.BigEndian.Uint64(b)
}

func newArray(t *testing.T, values []uint64) (*Array, *store.Server) {
	t.Helper()
	srv := store.NewServer()
	recs := make([][]byte, len(values))
	for i, v := range values {
		recs[i] = u64rec(v)
	}
	a, err := Create(srv, crypto.MustNewCipher(crypto.MustNewKey()), "arr", recs)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return a, srv
}

func readU64s(t *testing.T, a *Array) []uint64 {
	t.Helper()
	recs, err := a.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = binary.BigEndian.Uint64(r)
	}
	return out
}

func TestCreateValidation(t *testing.T) {
	srv := store.NewServer()
	c := crypto.MustNewCipher(crypto.MustNewKey())
	if _, err := Create(srv, c, "e", nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Create(srv, c, "w", [][]byte{{1, 2}, {3}}); err == nil {
		t.Error("ragged records accepted")
	}
}

func TestCreatePadsToPowerOfTwo(t *testing.T) {
	a, _ := newArray(t, []uint64{5, 3, 1})
	if a.Len() != 3 || a.PaddedLen() != 4 {
		t.Errorf("len=%d padded=%d, want 3/4", a.Len(), a.PaddedLen())
	}
	a2, _ := newArray(t, []uint64{1, 2, 3, 4})
	if a2.PaddedLen() != 4 {
		t.Errorf("power-of-two input padded to %d", a2.PaddedLen())
	}
}

func TestSortSmall(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31} {
		values := make([]uint64, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range values {
			values[i] = uint64(rng.Intn(50)) // duplicates likely
		}
		a, _ := newArray(t, values)
		if err := a.Sort(u64less, 1); err != nil {
			t.Fatalf("Sort(n=%d): %v", n, err)
		}
		got := readU64s(t, a)
		want := append([]uint64(nil), values...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got %v, want %v", n, got, want)
			}
		}
	}
}

func TestSortParallelMatchesSequential(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(1))
	values := make([]uint64, n)
	for i := range values {
		values[i] = uint64(rng.Intn(1000))
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		a, _ := newArray(t, values)
		if err := a.Sort(u64less, workers); err != nil {
			t.Fatalf("Sort(workers=%d): %v", workers, err)
		}
		got := readU64s(t, a)
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Errorf("workers=%d: output not sorted", workers)
		}
		if len(got) != n {
			t.Errorf("workers=%d: lost records: %d", workers, len(got))
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		values := make([]uint64, len(raw))
		for i, v := range raw {
			values[i] = uint64(v)
		}
		srv := store.NewServer()
		recs := make([][]byte, len(values))
		for i, v := range values {
			recs[i] = u64rec(v)
		}
		a, err := Create(srv, crypto.MustNewCipher(crypto.MustNewKey()), "arr", recs)
		if err != nil {
			return false
		}
		if err := a.Sort(u64less, 1); err != nil {
			return false
		}
		got, err := a.ReadAll()
		if err != nil {
			return false
		}
		want := append([]uint64(nil), values...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if binary.BigEndian.Uint64(got[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestComparatorCountFixed: the number of compare-exchanges depends only on
// the padded length (it is the bitonic network size p/2 · log p (log p+1)/2).
func TestComparatorCountFixed(t *testing.T) {
	count := func(values []uint64) int64 {
		a, _ := newArray(t, values)
		if err := a.Sort(u64less, 1); err != nil {
			t.Fatal(err)
		}
		return a.Comparisons()
	}
	sorted := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	reversed := []uint64{8, 7, 6, 5, 4, 3, 2, 1}
	equal := []uint64{5, 5, 5, 5, 5, 5, 5, 5}
	c1, c2, c3 := count(sorted), count(reversed), count(equal)
	if c1 != c2 || c2 != c3 {
		t.Errorf("comparator counts differ: %d, %d, %d", c1, c2, c3)
	}
	// p=8: log p = 3 stages of merges → p/2 · 3·4/2 = 4·6 = 24.
	if c1 != 24 {
		t.Errorf("comparator count = %d, want 24", c1)
	}
}

// TestTraceShapeDataIndependent is Definition 3's obliviousness: two
// same-length inputs with different contents yield identical trace shapes.
func TestTraceShapeDataIndependent(t *testing.T) {
	run := func(values []uint64) trace.Shape {
		srv := store.NewServer()
		recs := make([][]byte, len(values))
		for i, v := range values {
			recs[i] = u64rec(v)
		}
		srv.Trace().Enable()
		a, err := Create(srv, crypto.MustNewCipher(crypto.MustNewKey()), "arr", recs)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Sort(u64less, 1); err != nil {
			t.Fatal(err)
		}
		return trace.ShapeOf(srv.Trace().Events())
	}
	s1 := run([]uint64{9, 1, 8, 2, 7, 3})
	s2 := run([]uint64{0, 0, 0, 0, 0, 0})
	if !s1.Equal(s2) {
		t.Errorf("sort traces differ for same-size inputs:\n%s", s1.Diff(s2))
	}
}

// TestCiphertextsRewrittenEvenWithoutSwap: after any compare-exchange both
// cells must hold fresh ciphertexts, or the server learns "no swap".
func TestCiphertextsRewrittenEvenWithoutSwap(t *testing.T) {
	a, srv := newArray(t, []uint64{1, 2}) // already ordered: no swap needed
	before, err := srv.ReadCells("arr", []int64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := [][]byte{append([]byte(nil), before[0]...), append([]byte(nil), before[1]...)}
	if err := a.Sort(u64less, 1); err != nil {
		t.Fatal(err)
	}
	after, err := srv.ReadCells("arr", []int64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if bytes.Equal(snapshot[i], after[i]) {
			t.Errorf("cell %d ciphertext unchanged after sort", i)
		}
	}
}

func TestScanRewritesEveryCell(t *testing.T) {
	a, srv := newArray(t, []uint64{10, 20, 30})
	visited := make([]uint64, 0, 3)
	err := a.Scan(func(i int, rec []byte) ([]byte, error) {
		visited = append(visited, binary.BigEndian.Uint64(rec))
		return u64rec(uint64(i) * 100), nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if fmt.Sprint(visited) != "[10 20 30]" {
		t.Errorf("visited = %v", visited)
	}
	got := readU64s(t, a)
	if fmt.Sprint(got) != "[0 100 200]" {
		t.Errorf("after Scan = %v", got)
	}
	// Scan touches exactly n cells for read and n for write.
	srv.Trace().Reset()
	if err := a.Scan(func(i int, rec []byte) ([]byte, error) { return rec, nil }); err != nil {
		t.Fatal(err)
	}
	if r := srv.Trace().Count(trace.OpReadCell); r != 3 {
		t.Errorf("ReadCell count = %d", r)
	}
	if w := srv.Trace().Count(trace.OpWriteCell); w != 3 {
		t.Errorf("WriteCell count = %d", w)
	}
}

func TestScanWidthEnforced(t *testing.T) {
	a, _ := newArray(t, []uint64{1})
	err := a.Scan(func(i int, rec []byte) ([]byte, error) { return rec[:4], nil })
	if err == nil {
		t.Error("short Scan output accepted")
	}
}

func TestOddEvenSorts(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 33, 64} {
		rng := rand.New(rand.NewSource(int64(n) + 99))
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(rng.Intn(40))
		}
		a, _ := newArray(t, values)
		if err := a.SortNetwork(u64less, 2, OddEvenMerge); err != nil {
			t.Fatalf("SortNetwork(odd-even, n=%d): %v", n, err)
		}
		got := readU64s(t, a)
		want := append([]uint64(nil), values...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("odd-even n=%d: got %v, want %v", n, got, want)
			}
		}
	}
}

func TestOddEvenPropertySorts(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 48 {
			return true
		}
		values := make([]uint64, len(raw))
		for i, v := range raw {
			values[i] = uint64(v)
		}
		srv := store.NewServer()
		recs := make([][]byte, len(values))
		for i, v := range values {
			recs[i] = u64rec(v)
		}
		a, err := Create(srv, crypto.MustNewCipher(crypto.MustNewKey()), "arr", recs)
		if err != nil {
			return false
		}
		if err := a.SortNetwork(u64less, 1, OddEvenMerge); err != nil {
			return false
		}
		got, err := a.ReadAll()
		if err != nil {
			return false
		}
		prev := uint64(0)
		for i, r := range got {
			v := binary.BigEndian.Uint64(r)
			if i > 0 && v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestOddEvenFewerComparators documents the ablation claim: Batcher's
// odd-even network uses fewer comparators than the bitonic network at the
// same size.
func TestOddEvenFewerComparators(t *testing.T) {
	count := func(network Network) int64 {
		a, _ := newArray(t, []uint64{7, 3, 9, 1, 5, 2, 8, 4})
		if err := a.SortNetwork(u64less, 1, network); err != nil {
			t.Fatal(err)
		}
		return a.Comparisons()
	}
	bitonic := count(Bitonic)
	oddEven := count(OddEvenMerge)
	if oddEven >= bitonic {
		t.Errorf("odd-even comparators (%d) not below bitonic (%d)", oddEven, bitonic)
	}
	// n=8: odd-even merge sort uses 19 comparators, bitonic 24.
	if oddEven != 19 {
		t.Errorf("odd-even comparators = %d, want 19", oddEven)
	}
}

// TestStagesDisjointPairs: within any stage of either network, positions
// must be touched at most once (the parallelism safety property).
func TestStagesDisjointPairs(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  func(p int, fn func([][2]int64) error) error
	}{
		{"bitonic", Stages},
		{"odd-even", OddEvenStages},
	} {
		for _, p := range []int{2, 8, 32, 128} {
			err := tc.run(p, func(pairs [][2]int64) error {
				seen := make(map[int64]bool)
				for _, pr := range pairs {
					for _, pos := range []int64{pr[0], pr[1]} {
						if pos < 0 || pos >= int64(p) {
							t.Fatalf("%s p=%d: position %d out of range", tc.name, p, pos)
						}
						if seen[pos] {
							t.Fatalf("%s p=%d: position %d touched twice in one stage", tc.name, p, pos)
						}
						seen[pos] = true
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s p=%d: %v", tc.name, p, err)
			}
		}
	}
}

func TestStagesRejectNonPowerOfTwo(t *testing.T) {
	noop := func([][2]int64) error { return nil }
	if err := Stages(6, noop); err == nil {
		t.Error("bitonic stages accepted non-power-of-two")
	}
	if err := OddEvenStages(12, noop); err == nil {
		t.Error("odd-even stages accepted non-power-of-two")
	}
	a, _ := newArray(t, []uint64{1, 2})
	if err := a.SortNetwork(u64less, 1, Network(9)); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestSortStringsRecords(t *testing.T) {
	// Non-numeric fixed-width records sort correctly too.
	srv := store.NewServer()
	words := []string{"pear", "plum", "kiwi", "fig "}
	recs := make([][]byte, len(words))
	for i, w := range words {
		recs[i] = []byte(w)
	}
	a, err := Create(srv, crypto.MustNewCipher(crypto.MustNewKey()), "w", recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Sort(func(x, y []byte) bool { return bytes.Compare(x, y) < 0 }, 2); err != nil {
		t.Fatal(err)
	}
	got, err := a.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fig ", "kiwi", "pear", "plum"}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Errorf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCreateStreamed(t *testing.T) {
	srv := store.NewServer()
	c := crypto.MustNewCipher(crypto.MustNewKey())
	a, err := CreateStreamed(srv, c, "s", 5, 8, func(i int) ([]byte, error) {
		return u64rec(uint64(100 - i)), nil
	})
	if err != nil {
		t.Fatalf("CreateStreamed: %v", err)
	}
	if a.Len() != 5 || a.PaddedLen() != 8 || a.Width() != 8 {
		t.Errorf("len=%d padded=%d width=%d", a.Len(), a.PaddedLen(), a.Width())
	}
	if err := a.Sort(u64less, 1); err != nil {
		t.Fatal(err)
	}
	got := readU64s(t, a)
	want := []uint64{96, 97, 98, 99, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCreateStreamedErrors(t *testing.T) {
	srv := store.NewServer()
	c := crypto.MustNewCipher(crypto.MustNewKey())
	if _, err := CreateStreamed(srv, c, "a", 0, 8, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := CreateStreamed(srv, c, "b", 2, 0, nil); err == nil {
		t.Error("width=0 accepted")
	}
	if _, err := CreateStreamed(srv, c, "c", 2, 8, func(i int) ([]byte, error) {
		return []byte{1}, nil // wrong width
	}); err == nil {
		t.Error("wrong-width record accepted")
	}
	if _, err := CreateStreamed(srv, c, "d", 2, 8, func(i int) ([]byte, error) {
		return nil, fmt.Errorf("source failure")
	}); err == nil {
		t.Error("source error swallowed")
	}
	// Name collision with the half-created array "c"/"d" objects.
	if _, err := CreateStreamed(srv, c, "c", 2, 8, func(i int) ([]byte, error) {
		return u64rec(1), nil
	}); err == nil {
		t.Error("name collision accepted")
	}
}

func TestGet(t *testing.T) {
	a, _ := newArray(t, []uint64{10, 20, 30})
	rec, err := a.Get(1)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if binary.BigEndian.Uint64(rec) != 20 {
		t.Errorf("Get(1) = %v", rec)
	}
	if _, err := a.Get(-1); err == nil {
		t.Error("Get(-1) accepted")
	}
	if _, err := a.Get(3); err == nil {
		t.Error("Get beyond logical length accepted")
	}
	// Get must return a copy.
	rec[0] = 0xFF
	again, _ := a.Get(1)
	if binary.BigEndian.Uint64(again) != 20 {
		t.Error("Get returned shared storage")
	}
}

func TestDestroy(t *testing.T) {
	a, srv := newArray(t, []uint64{1, 2})
	if err := a.Destroy(); err != nil {
		t.Fatal(err)
	}
	st, _ := srv.Stats()
	if st.Objects != 0 {
		t.Errorf("objects after destroy = %d", st.Objects)
	}
}
