// Package obsort implements the oblivious sorting primitive of Definition 3
// using Batcher's bitonic sorting network (the paper's choice, §III-C):
// O(n log² n) compare-exchanges whose positions are a fixed function of n
// alone, so the server-visible access pattern carries no information about
// the data. Each compare-exchange ships two ciphertexts to the client, which
// decrypts, compares, and writes both back re-encrypted — always both,
// always fresh, whether or not they swapped.
//
// Comparators within one stage of the network touch disjoint cells, which is
// what gives the algorithm its n/2 parallelism degree (§IV-D, Fig. 6a). Sort
// accepts a worker count to exploit it.
package obsort

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// Less orders two plaintext records. It runs inside the client and never
// influences which cells are touched — only the order in which the pair is
// written back.
type Less func(a, b []byte) bool

// ChunkCells bounds how many cells one storage call carries. Sequential
// passes (Scan, CreateStreamed, ReadAll) and sort stages coalesce up to this
// many cells per ReadCells/WriteCells, so round-trip count scales with
// n/ChunkCells instead of n while client memory stays O(1): the chunk size
// is a fixed constant, not a function of n. The cells touched and their
// per-cell server-visible accesses are identical to the one-at-a-time
// schedule — only the call framing changes (DESIGN.md §11).
//
// It is a variable only so the scaling benchmark can set it to 1 and measure
// the unbatched round-trip baseline; it must not be mutated while any sort
// or scan is in flight.
var ChunkCells = 64

// Array is a client-side handle to a server-resident encrypted array of
// fixed-width records, padded to a power of two so the bitonic network is
// well-formed. Padding records always sort after real ones and are
// indistinguishable from them on the server.
type Array struct {
	svc      store.Service
	cipher   *crypto.Cipher
	name     string
	n        int // logical record count
	p        int // padded length (power of two)
	recWidth int // payload width; wire records carry one extra flag byte

	comparisons atomic.Int64

	// Telemetry, nil when disabled. The comparison positions are a pure
	// function of the padded length, so counting and timing them observes
	// only Size(DB) (DESIGN.md §9).
	reg      *telemetry.Registry
	compCtr  *telemetry.Counter
	stageCtr *telemetry.Counter
}

// SetTelemetry attaches (or, with nil, detaches) a metrics registry.
func (a *Array) SetTelemetry(reg *telemetry.Registry) {
	a.reg = reg
	a.compCtr = reg.Counter("oblivfd_sort_comparisons_total")
	a.stageCtr = reg.Counter("oblivfd_sort_stages_total")
}

// Create encrypts records (all of identical width) into a fresh server array
// named name, padded to the next power of two.
func Create(svc store.Service, cipher *crypto.Cipher, name string, records [][]byte) (*Array, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("obsort: empty input")
	}
	w := len(records[0])
	for i, r := range records {
		if len(r) != w {
			return nil, fmt.Errorf("obsort: record %d has %d bytes, want %d", i, len(r), w)
		}
	}
	p := 1
	for p < len(records) {
		p <<= 1
	}
	a := &Array{svc: svc, cipher: cipher, name: name, n: len(records), p: p, recWidth: w}
	if err := svc.CreateArray(name, p); err != nil {
		return nil, fmt.Errorf("obsort: %w", err)
	}
	idx := make([]int64, p)
	cts := make([][]byte, p)
	for i := 0; i < p; i++ {
		idx[i] = int64(i)
		var rec []byte
		if i < len(records) {
			rec = records[i]
		}
		ct, err := a.encrypt(rec, i >= len(records), int64(i))
		if err != nil {
			return nil, err
		}
		cts[i] = ct
	}
	if err := svc.WriteCells(name, idx, cts); err != nil {
		return nil, fmt.Errorf("obsort: %w", err)
	}
	return a, nil
}

// CreateStreamed builds an encrypted array of n records of the given width,
// obtaining records one at a time from next and uploading each immediately,
// so the client never holds more than one record — the O(1) client memory
// property the sorting protocol claims (§IV-D).
func CreateStreamed(svc store.Service, cipher *crypto.Cipher, name string, n, width int, next func(i int) ([]byte, error)) (*Array, error) {
	if n < 1 {
		return nil, fmt.Errorf("obsort: empty input")
	}
	if width < 1 {
		return nil, fmt.Errorf("obsort: record width %d < 1", width)
	}
	p := 1
	for p < n {
		p <<= 1
	}
	a := &Array{svc: svc, cipher: cipher, name: name, n: n, p: p, recWidth: width}
	if err := svc.CreateArray(name, p); err != nil {
		return nil, fmt.Errorf("obsort: %w", err)
	}
	idx := make([]int64, 0, ChunkCells)
	cts := make([][]byte, 0, ChunkCells)
	for lo := 0; lo < p; lo += ChunkCells {
		hi := lo + ChunkCells
		if hi > p {
			hi = p
		}
		idx, cts = idx[:0], cts[:0]
		for i := lo; i < hi; i++ {
			var rec []byte
			pad := i >= n
			if !pad {
				r, err := next(i)
				if err != nil {
					return nil, err
				}
				if len(r) != width {
					return nil, fmt.Errorf("obsort: record %d has %d bytes, want %d", i, len(r), width)
				}
				rec = r
			}
			ct, err := a.encrypt(rec, pad, int64(i))
			if err != nil {
				return nil, err
			}
			idx = append(idx, int64(i))
			cts = append(cts, ct)
		}
		if err := svc.WriteCells(name, idx, cts); err != nil {
			return nil, fmt.Errorf("obsort: %w", err)
		}
	}
	return a, nil
}

// Get decrypts and returns the record at logical position i.
func (a *Array) Get(i int) ([]byte, error) {
	if i < 0 || i >= a.n {
		return nil, fmt.Errorf("obsort: index %d out of range [0,%d)", i, a.n)
	}
	cts, err := a.svc.ReadCells(a.name, []int64{int64(i)})
	if err != nil {
		return nil, fmt.Errorf("obsort: %w", err)
	}
	rec, pad, err := a.decrypt(cts[0], int64(i))
	if err != nil {
		return nil, err
	}
	if pad {
		return nil, fmt.Errorf("obsort: padding record inside logical range at %d", i)
	}
	return append([]byte(nil), rec...), nil
}

// GetRange decrypts and returns the logical records in [lo, hi), fetching
// at most ChunkCells cells per storage call.
func (a *Array) GetRange(lo, hi int) ([][]byte, error) {
	if lo < 0 || hi > a.n || lo > hi {
		return nil, fmt.Errorf("obsort: range [%d,%d) out of [0,%d)", lo, hi, a.n)
	}
	out := make([][]byte, 0, hi-lo)
	for start := lo; start < hi; start += ChunkCells {
		end := start + ChunkCells
		if end > hi {
			end = hi
		}
		idx := make([]int64, end-start)
		for k := range idx {
			idx[k] = int64(start + k)
		}
		cts, err := a.svc.ReadCells(a.name, idx)
		if err != nil {
			return nil, fmt.Errorf("obsort: %w", err)
		}
		for k, ct := range cts {
			rec, pad, err := a.decrypt(ct, idx[k])
			if err != nil {
				return nil, err
			}
			if pad {
				return nil, fmt.Errorf("obsort: padding record inside logical range at %d", idx[k])
			}
			out = append(out, append([]byte(nil), rec...))
		}
	}
	return out, nil
}

// GetRanges fetches the same logical range [lo, hi) from several arrays,
// fusing all the reads into one batched round trip when the storage service
// supports it (store.Batcher) and falling back to one read per array
// otherwise. All arrays must live on the same service. Callers bound the
// range themselves (typically to ChunkCells) to keep client memory O(1).
func GetRanges(arrays []*Array, lo, hi int) ([][][]byte, error) {
	if len(arrays) == 0 {
		return nil, nil
	}
	idx := make([]int64, hi-lo)
	for k := range idx {
		idx[k] = int64(lo + k)
	}
	ops := make([]store.BatchOp, len(arrays))
	for j, a := range arrays {
		if lo < 0 || hi > a.n || lo > hi {
			return nil, fmt.Errorf("obsort: range [%d,%d) out of [0,%d)", lo, hi, a.n)
		}
		ops[j] = store.BatchOp{Name: a.name, Idx: idx}
	}
	res, err := store.DoBatch(arrays[0].svc, ops)
	if err != nil {
		return nil, fmt.Errorf("obsort: %w", err)
	}
	out := make([][][]byte, len(arrays))
	for j, a := range arrays {
		out[j] = make([][]byte, len(idx))
		for k, ct := range res[j] {
			rec, pad, err := a.decrypt(ct, idx[k])
			if err != nil {
				return nil, err
			}
			if pad {
				return nil, fmt.Errorf("obsort: padding record inside logical range at %d", idx[k])
			}
			out[j][k] = append([]byte(nil), rec...)
		}
	}
	return out, nil
}

// Name returns the server-side array name.
func (a *Array) Name() string { return a.name }

// Len returns the logical record count n.
func (a *Array) Len() int { return a.n }

// PaddedLen returns the power-of-two physical length.
func (a *Array) PaddedLen() int { return a.p }

// Width returns the record payload width.
func (a *Array) Width() int { return a.recWidth }

// Comparisons returns the number of compare-exchanges executed so far.
func (a *Array) Comparisons() int64 { return a.comparisons.Load() }

// Destroy deletes the server-side array.
func (a *Array) Destroy() error { return a.svc.Delete(a.name) }

// cellAD binds a record ciphertext to (array, position). Every read and
// write addresses a cell by its current position and compare-exchange
// re-encrypts both cells it moves, so position binding holds across the
// whole sort: a server that swaps two cells is detected at the next read.
// (Replaying an *old* ciphertext of the same cell is the one substitution
// this layer cannot see — the sort protocols have no per-cell version state;
// DESIGN.md §10 discusses the residual window.)
func (a *Array) cellAD(i int64) []byte {
	return []byte("sort:" + a.name + ":" + strconv.FormatInt(i, 10))
}

func (a *Array) encrypt(rec []byte, pad bool, i int64) ([]byte, error) {
	pt := make([]byte, 1+a.recWidth)
	if pad {
		pt[0] = 1
	} else {
		copy(pt[1:], rec)
	}
	return a.cipher.Seal(pt, a.cellAD(i))
}

func (a *Array) decrypt(ct []byte, i int64) (rec []byte, pad bool, err error) {
	pt, err := a.cipher.Open(ct, a.cellAD(i))
	if err != nil {
		return nil, false, fmt.Errorf("obsort %q: cell %d authentication failed: %v: %w", a.name, i, err, store.ErrIntegrity)
	}
	if len(pt) != 1+a.recWidth {
		return nil, false, fmt.Errorf("obsort %q: cell %d has %d plaintext bytes, want %d: %w", a.name, i, len(pt), 1+a.recWidth, store.ErrIntegrity)
	}
	return pt[1:], pt[0] == 1, nil
}

// Stages enumerates the bitonic network for a power-of-two length p: fn is
// invoked once per stage with that stage's compare-exchange pairs (lo, hi),
// meaning "the record at lo must sort before the record at hi". Pairs
// within a stage touch disjoint positions and may run concurrently. The
// network is a pure function of p — this is what makes the sort oblivious.
// The enclave simulation replays the identical network in secure memory.
func Stages(p int, fn func(pairs [][2]int64) error) error {
	if p&(p-1) != 0 || p < 1 {
		return fmt.Errorf("obsort: stage enumeration needs a power-of-two length, got %d", p)
	}
	pairs := make([][2]int64, 0, p/2)
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			pairs = pairs[:0]
			for i := 0; i < p; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				lo, hi := int64(i), int64(l)
				if i&k != 0 {
					lo, hi = hi, lo // descending half of the bitonic merge
				}
				pairs = append(pairs, [2]int64{lo, hi})
			}
			if err := fn(pairs); err != nil {
				return err
			}
		}
	}
	return nil
}

// OddEvenStages enumerates Batcher's odd-even merge sorting network for a
// power-of-two length p — the other classic O(n log² n) oblivious network.
// It uses slightly fewer comparators than the bitonic network
// (the ablation benchmark quantifies the gap) but its stages are less
// regular. Pairs within a stage are disjoint.
func OddEvenStages(p int, fn func(pairs [][2]int64) error) error {
	if p&(p-1) != 0 || p < 1 {
		return fmt.Errorf("obsort: stage enumeration needs a power-of-two length, got %d", p)
	}
	pairs := make([][2]int64, 0, p/2)
	for k := 1; k < p; k <<= 1 {
		for j := k; j >= 1; j >>= 1 {
			pairs = pairs[:0]
			for i := j % k; i+j < p; i += 2 * j {
				for l := 0; l < j; l++ {
					lo := i + l
					hi := lo + j
					if hi >= p {
						break
					}
					// Comparators only within one 2k-block.
					if lo/(2*k) == hi/(2*k) {
						pairs = append(pairs, [2]int64{int64(lo), int64(hi)})
					}
				}
			}
			if err := fn(pairs); err != nil {
				return err
			}
		}
	}
	return nil
}

// Network selects the oblivious comparison network used by Sort.
type Network int

// Available networks.
const (
	// Bitonic is Batcher's bitonic sorter — the paper's choice (§III-C).
	Bitonic Network = iota
	// OddEvenMerge is Batcher's odd-even merge sorter, provided as an
	// ablation alternative; same asymptotics, fewer comparators.
	OddEvenMerge
)

// Sort obliviously sorts the array in ascending order of less using the
// bitonic network, with the given number of parallel workers (minimum 1).
// The compare-exchange positions are a pure function of the padded length.
func (a *Array) Sort(less Less, workers int) error {
	return a.SortNetwork(less, workers, Bitonic)
}

// SortNetwork is Sort with an explicit choice of comparison network.
func (a *Array) SortNetwork(less Less, workers int, network Network) error {
	if workers < 1 {
		workers = 1
	}
	var sortSpan telemetry.Span
	switch network {
	case Bitonic:
		sortSpan = a.reg.StartSpan("sort/bitonic")
	case OddEvenMerge:
		sortSpan = a.reg.StartSpan("sort/odd-even")
	}
	defer sortSpan.End()
	stage := func(pairs [][2]int64) error {
		a.stageCtr.Inc()
		sp := a.reg.StartSpan("sort/stage")
		defer sp.End()
		return a.runStage(pairs, less, workers)
	}
	switch network {
	case Bitonic:
		return Stages(a.p, stage)
	case OddEvenMerge:
		return OddEvenStages(a.p, stage)
	default:
		return fmt.Errorf("obsort: unknown network %d", network)
	}
}

// runStage executes one network stage; all pairs are disjoint, so workers
// can process them concurrently. Pairs are split into contiguous chunks —
// one per worker — so dispatch overhead is per stage, not per comparator,
// and each worker coalesces its pairs into ChunkCells-sized storage calls.
func (a *Array) runStage(pairs [][2]int64, less Less, workers int) error {
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		return a.compareExchangeBlocks(pairs, less)
	}
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(pairs) {
			break
		}
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		wg.Add(1)
		go func(part [][2]int64) {
			defer wg.Done()
			if err := a.compareExchangeBlocks(part, less); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}(pairs[lo:hi])
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// compareExchangeBlocks processes a run of disjoint pairs in blocks of
// ChunkCells/2 comparators: one ReadCells for the block's cells, the
// compare decisions in client memory, one WriteCells with every cell
// re-encrypted fresh — 2 rounds per block instead of 2 per comparator.
func (a *Array) compareExchangeBlocks(pairs [][2]int64, less Less) error {
	blockPairs := ChunkCells / 2
	if blockPairs < 1 {
		blockPairs = 1 // ChunkCells 1 degenerates to one comparator per round pair
	}
	for lo := 0; lo < len(pairs); lo += blockPairs {
		hi := lo + blockPairs
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if err := a.compareExchangeBlock(pairs[lo:hi], less); err != nil {
			return err
		}
	}
	return nil
}

// compareExchangeBlock orders the records of each (lo, hi) pair so that the
// record at lo sorts before the one at hi. Every cell is rewritten with a
// fresh ciphertext regardless of the comparison outcomes.
func (a *Array) compareExchangeBlock(pairs [][2]int64, less Less) error {
	idx := make([]int64, 0, 2*len(pairs))
	for _, pr := range pairs {
		idx = append(idx, pr[0], pr[1])
	}
	cts, err := a.svc.ReadCells(a.name, idx)
	if err != nil {
		return fmt.Errorf("obsort: %w", err)
	}
	out := make([][]byte, 0, len(idx))
	for k, pr := range pairs {
		a.comparisons.Add(1)
		a.compCtr.Inc()
		rec0, pad0, err := a.decrypt(cts[2*k], pr[0])
		if err != nil {
			return err
		}
		rec1, pad1, err := a.decrypt(cts[2*k+1], pr[1])
		if err != nil {
			return err
		}
		// Padding sorts after every real record; two paddings are equal.
		swap := false
		switch {
		case pad0 && !pad1:
			swap = true
		case !pad0 && !pad1:
			swap = less(rec1, rec0)
		}
		if swap {
			rec0, pad0, rec1, pad1 = rec1, pad1, rec0, pad0
		}
		ct0, err := a.encrypt(rec0, pad0, pr[0])
		if err != nil {
			return err
		}
		ct1, err := a.encrypt(rec1, pad1, pr[1])
		if err != nil {
			return err
		}
		out = append(out, ct0, ct1)
	}
	if err := a.svc.WriteCells(a.name, idx, out); err != nil {
		return fmt.Errorf("obsort: %w", err)
	}
	return nil
}

// Scan performs a sequential oblivious pass over the logical records: every
// cell is read, handed to fn, and rewritten with a fresh ciphertext whether
// or not fn changed it. Algorithm 3's labeling loop (lines 3–8) is exactly
// such a pass. fn must return a record of the array's width. Cells move in
// ChunkCells-sized calls: each chunk is one read round and one write round.
func (a *Array) Scan(fn func(i int, rec []byte) ([]byte, error)) error {
	idx := make([]int64, 0, ChunkCells)
	wcts := make([][]byte, 0, ChunkCells)
	for lo := 0; lo < a.n; lo += ChunkCells {
		hi := lo + ChunkCells
		if hi > a.n {
			hi = a.n
		}
		idx = idx[:0]
		for i := lo; i < hi; i++ {
			idx = append(idx, int64(i))
		}
		cts, err := a.svc.ReadCells(a.name, idx)
		if err != nil {
			return fmt.Errorf("obsort: %w", err)
		}
		wcts = wcts[:0]
		for k, ct := range cts {
			i := int(idx[k])
			rec, pad, err := a.decrypt(ct, idx[k])
			if err != nil {
				return err
			}
			if pad {
				return fmt.Errorf("obsort: padding record inside logical range at %d", i)
			}
			out, err := fn(i, rec)
			if err != nil {
				return err
			}
			if len(out) != a.recWidth {
				return fmt.Errorf("obsort: Scan fn returned %d bytes, want %d", len(out), a.recWidth)
			}
			wct, err := a.encrypt(out, false, idx[k])
			if err != nil {
				return err
			}
			wcts = append(wcts, wct)
		}
		if err := a.svc.WriteCells(a.name, idx, wcts); err != nil {
			return fmt.Errorf("obsort: %w", err)
		}
	}
	return nil
}

// ReadAll decrypts and returns the logical records. It exists for the final
// result extraction and for tests; it is a plain sequential scan.
func (a *Array) ReadAll() ([][]byte, error) {
	return a.GetRange(0, a.n)
}
