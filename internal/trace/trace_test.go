package trace

import (
	"sync"
	"testing"
)

func TestOpString(t *testing.T) {
	if OpReadPath.String() != "ReadPath" {
		t.Errorf("OpReadPath = %q", OpReadPath.String())
	}
	if Op(200).String() == "" {
		t.Error("unknown op renders empty")
	}
}

func TestRecorderCountsWithoutEnable(t *testing.T) {
	r := NewRecorder()
	r.Record(Event{Op: OpReadCell, Bytes: 10})
	r.Record(Event{Op: OpReadCell, Bytes: 5})
	r.Record(Event{Op: OpWriteCell, Bytes: 1})
	if got := r.Count(OpReadCell); got != 2 {
		t.Errorf("Count(ReadCell) = %d", got)
	}
	if got := r.TotalOps(); got != 3 {
		t.Errorf("TotalOps = %d", got)
	}
	if got := r.TotalBytes(); got != 16 {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := r.Events(); len(got) != 0 {
		t.Errorf("events retained without Enable: %v", got)
	}
}

func TestRecorderEnableDisableReset(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	r.Record(Event{Op: OpDelete, Object: "x"})
	r.Disable()
	r.Record(Event{Op: OpDelete, Object: "y"})
	ev := r.Events()
	if len(ev) != 1 || ev[0].Object != "x" {
		t.Errorf("Events = %v", ev)
	}
	r.Reset()
	if r.TotalOps() != 0 || len(r.Events()) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestRecorderConcurrentSafe(t *testing.T) {
	r := NewRecorder()
	r.Enable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Op: OpReadCell, Bytes: 1})
			}
		}()
	}
	wg.Wait()
	if got := r.TotalOps(); got != 800 {
		t.Errorf("TotalOps = %d, want 800", got)
	}
	if got := len(r.Events()); got != 800 {
		t.Errorf("Events len = %d, want 800", got)
	}
}

func TestShapeEqualAndDiff(t *testing.T) {
	a := []Event{
		{Op: OpReadPath, Object: "t", Index: 3, Bytes: 10},
		{Op: OpWritePath, Object: "t", Index: 3, Bytes: 10},
		{Op: OpReveal, Object: "fd", Index: 1},
	}
	b := []Event{
		{Op: OpReadPath, Object: "t", Index: 7, Bytes: 10},
		{Op: OpWritePath, Object: "t", Index: 1, Bytes: 10},
		{Op: OpReveal, Object: "fd", Index: 1},
	}
	if !ShapeOf(a).Equal(ShapeOf(b)) {
		t.Error("shapes differing only in path leaves unequal")
	}
	c := append([]Event(nil), b...)
	c[2].Index = 0 // reveal value IS part of the shape (allowed leakage)
	if ShapeOf(a).Equal(ShapeOf(c)) {
		t.Error("differing reveal values compare equal")
	}
	if ShapeOf(a).Diff(ShapeOf(c)) == "" {
		t.Error("Diff empty for unequal shapes")
	}
	short := ShapeOf(a[:2])
	if ShapeOf(a).Equal(short) {
		t.Error("different lengths compare equal")
	}
	if ShapeOf(a).Diff(short) == "" {
		t.Error("Diff empty for different lengths")
	}
}

func TestCanonicalRenamesStably(t *testing.T) {
	a := ShapeOf([]Event{
		{Op: OpReadCell, Object: "run1:alpha", Index: 1},
		{Op: OpWriteCell, Object: "run1:beta", Index: 2},
		{Op: OpReadCell, Object: "run1:alpha", Index: 3},
	})
	b := ShapeOf([]Event{
		{Op: OpReadCell, Object: "run2:gamma", Index: 1},
		{Op: OpWriteCell, Object: "run2:delta", Index: 2},
		{Op: OpReadCell, Object: "run2:gamma", Index: 3},
	})
	if a.Equal(b) {
		t.Fatal("raw shapes with different names should differ")
	}
	if !a.Canonical().Equal(b.Canonical()) {
		t.Error("canonical shapes with isomorphic names differ")
	}
	// Distinctness is preserved: collapsing two objects must NOT compare
	// equal to the two-object trace.
	c := ShapeOf([]Event{
		{Op: OpReadCell, Object: "x", Index: 1},
		{Op: OpWriteCell, Object: "x", Index: 2},
		{Op: OpReadCell, Object: "x", Index: 3},
	})
	if a.Canonical().Equal(c.Canonical()) {
		t.Error("canonicalization erased object distinctness")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Op: OpReadCell, Object: "a", Index: 2, Bytes: 16}
	if got := e.String(); got != "ReadCell(a,2,16B)" {
		t.Errorf("String = %q", got)
	}
}
