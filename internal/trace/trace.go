// Package trace models the view of the persistent adversary (§III-B): the
// complete sequence of server-visible events during a protocol run. The
// server records one Event per storage operation; obliviousness tests
// compare traces of runs on same-size databases with different contents.
//
// What the adversary sees per event: which object was touched, the kind of
// operation, the physical index involved, and ciphertext lengths — never
// plaintext. For ORAM path operations the physical index is the (uniformly
// random) leaf, so Shape normalizes it away before comparison; everything
// else must match exactly for an oblivious protocol.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Op enumerates server-visible operation kinds.
type Op uint8

// Operation kinds recorded by the server.
const (
	OpCreateArray Op = iota
	OpReadCell
	OpWriteCell
	OpCreateTree
	OpReadPath
	OpWritePath
	OpWriteBucket
	OpDelete
	OpReveal     // client reveals a public result bit/count to the server's log
	OpCheckpoint // client marks a recovery epoch (public: a property of timing)
)

var opNames = [...]string{
	"CreateArray", "ReadCell", "WriteCell", "CreateTree",
	"ReadPath", "WritePath", "WriteBucket", "Delete", "Reveal", "Checkpoint",
}

// String returns the operation name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Event is one server-visible storage operation.
type Event struct {
	Op     Op
	Object string // storage object name
	Index  int64  // cell index, or ORAM leaf for path ops
	Bytes  int    // total ciphertext bytes moved
}

// String renders the event compactly.
func (e Event) String() string {
	return fmt.Sprintf("%s(%s,%d,%dB)", e.Op, e.Object, e.Index, e.Bytes)
}

// Recorder accumulates events. It is safe for concurrent use, and the
// always-on counters are lock-free so recording never serializes the
// parallel sorting workers.
type Recorder struct {
	enabled atomic.Bool
	counts  [len(opNames)]atomic.Int64
	bytes   atomic.Int64

	mu     sync.Mutex // guards events only
	events []Event
}

// NewRecorder returns a recorder; events are only retained after Enable.
// Operation counters and byte totals are always maintained.
func NewRecorder() *Recorder { return &Recorder{} }

// Enable starts retaining full event sequences (memory-heavy; used by
// obliviousness tests and the fdbench trace experiment).
func (r *Recorder) Enable() { r.enabled.Store(true) }

// Disable stops retaining event sequences; counters keep accumulating.
func (r *Recorder) Disable() { r.enabled.Store(false) }

// Record appends an event.
func (r *Recorder) Record(e Event) {
	r.counts[e.Op].Add(1)
	r.bytes.Add(int64(e.Bytes))
	if r.enabled.Load() {
		r.mu.Lock()
		r.events = append(r.events, e)
		r.mu.Unlock()
	}
}

// Reset clears retained events and counters.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
	for i := range r.counts {
		r.counts[i].Store(0)
	}
	r.bytes.Store(0)
}

// Events returns a copy of the retained event sequence.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Count returns how many events of the given op were recorded since Reset.
func (r *Recorder) Count(op Op) int64 { return r.counts[op].Load() }

// TotalOps returns the total number of events since Reset.
func (r *Recorder) TotalOps() int64 {
	var total int64
	for i := range r.counts {
		total += r.counts[i].Load()
	}
	return total
}

// TotalBytes returns the total ciphertext bytes moved since Reset.
func (r *Recorder) TotalBytes() int64 { return r.bytes.Load() }

// Shape is a trace with data-independent content only: for path operations
// the leaf index is replaced by -1 (it is sampled uniformly by the client
// and carries no information about the database contents beyond its length).
type Shape []Event

// ShapeOf normalizes a trace for comparison.
func ShapeOf(events []Event) Shape {
	out := make(Shape, len(events))
	for i, e := range events {
		if e.Op == OpReadPath || e.Op == OpWritePath {
			e.Index = -1
		}
		out[i] = e
	}
	return out
}

// Canonical returns a copy of the shape with object names replaced by
// placeholders ("obj0", "obj1", …) in order of first appearance. Object
// names are chosen by the client data-independently (they embed process-
// local counters), so comparing two independent runs requires canonical
// names; distinctness of objects is preserved, which is all the adversary
// learns from names.
func (s Shape) Canonical() Shape {
	names := make(map[string]string)
	out := make(Shape, len(s))
	for i, e := range s {
		canon, ok := names[e.Object]
		if !ok {
			canon = fmt.Sprintf("obj%d", len(names))
			names[e.Object] = canon
		}
		e.Object = canon
		out[i] = e
	}
	return out
}

// CanonicalPerStructure returns a canonical form that is invariant under
// interleaving of accesses to *distinct* objects, while preserving the exact
// per-object access sequence. It groups events by object (keeping each
// object's internal order), renders every group, sorts the groups by their
// rendered content, and reassigns placeholder names ("obj0", "obj1", …) in
// sorted order. Two runs have equal CanonicalPerStructure shapes iff they
// touch the same multiset of per-object access sequences — exactly the
// obliviousness invariant for level-parallel execution (DESIGN.md §11):
// each structure's sequence is unchanged from the serial run; only the
// cross-structure interleaving (scheduling noise) differs. Groups with
// identical content are interchangeable, so ties sort stably by content
// alone without affecting equality.
func (s Shape) CanonicalPerStructure() Shape {
	type group struct {
		events   []Event
		rendered string
	}
	byObj := make(map[string]*group)
	var order []*group
	for _, e := range s {
		g, ok := byObj[e.Object]
		if !ok {
			g = &group{}
			byObj[e.Object] = g
			order = append(order, g)
		}
		e.Object = "" // blanked: identity is carried by group membership
		g.events = append(g.events, e)
	}
	for _, g := range order {
		var b strings.Builder
		for _, e := range g.events {
			b.WriteString(e.String())
			b.WriteByte('\n')
		}
		g.rendered = b.String()
	}
	sort.Slice(order, func(i, j int) bool { return order[i].rendered < order[j].rendered })
	out := make(Shape, 0, len(s))
	for i, g := range order {
		name := fmt.Sprintf("obj%d", i)
		for _, e := range g.events {
			e.Object = name
			out = append(out, e)
		}
	}
	return out
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Diff returns a human-readable description of the first few positions where
// the shapes differ, or "" if they are equal.
func (s Shape) Diff(t Shape) string {
	var b strings.Builder
	if len(s) != len(t) {
		fmt.Fprintf(&b, "lengths differ: %d vs %d\n", len(s), len(t))
	}
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	reported := 0
	for i := 0; i < n && reported < 5; i++ {
		if s[i] != t[i] {
			fmt.Fprintf(&b, "event %d: %v vs %v\n", i, s[i], t[i])
			reported++
		}
	}
	return b.String()
}
