package store

import (
	"fmt"
	"strings"
)

// Database namespaces: a multi-tenant server hosts several databases on one
// Service by prefixing every object name with "<db>/". Engine-generated
// object names never contain '/' (they join components with ':'), so the
// first '/' unambiguously splits namespace from object. The empty namespace
// "" — names with no '/' at all — is the root namespace that single-tenant
// clients have always used; everything here is backward compatible with it.
//
// Leakage: the namespace prefix is part of the session identity the tenant
// already announced in its handshake, so prefixed names reveal nothing
// beyond which tenant is acting — the adversary's view of the whole server
// is the union of the per-tenant traces it would have seen from N
// single-tenant servers, plus the (public) interleaving. See DESIGN.md §12.

// NamespaceOf returns the database namespace an object name belongs to: the
// prefix before the first '/', or "" (the root namespace) when the name has
// none.
func NamespaceOf(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return ""
}

// ValidDBName reports whether db is usable as a database namespace: non-empty,
// at most 128 bytes, and drawn from [A-Za-z0-9._-] so it can never contain
// the '/' separator or frame-confusing bytes.
func ValidDBName(db string) bool {
	if db == "" || len(db) > 128 {
		return false
	}
	for i := 0; i < len(db); i++ {
		c := db[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// NamespaceService is the optional per-namespace surface a multi-tenant
// backend exposes alongside Service. Checkpoint/Stats on Service itself act
// on the root namespace; these act on a named one. Decorators that wrap a
// NamespaceService forward both methods so per-tenant marks survive the
// whole fdserver stack (latency → faults → metrics → backend).
type NamespaceService interface {
	// CheckpointNS marks a recovery epoch for one database namespace.
	CheckpointNS(db string, epoch int64) error
	// StatsNS reports accounting restricted to one database namespace.
	StatsNS(db string) (Stats, error)
}

// CheckpointIn marks an epoch in the given namespace on any Service: through
// NamespaceService when the backend (or its decorators) support it, falling
// back to the plain Checkpoint for the root namespace. A non-root namespace
// on a backend without NamespaceService is an error rather than a silent
// cross-tenant checkpoint.
func CheckpointIn(svc Service, db string, epoch int64) error {
	if db == "" {
		return svc.Checkpoint(epoch)
	}
	if ns, ok := svc.(NamespaceService); ok {
		return ns.CheckpointNS(db, epoch)
	}
	return fmt.Errorf("store: backend %T cannot checkpoint namespace %q", svc, db)
}

// StatsIn reports namespace-scoped stats on any Service, with the same
// fallback rules as CheckpointIn.
func StatsIn(svc Service, db string) (Stats, error) {
	if db == "" {
		return svc.Stats()
	}
	if ns, ok := svc.(NamespaceService); ok {
		return ns.StatsNS(db)
	}
	return Stats{}, fmt.Errorf("store: backend %T cannot report namespace %q", svc, db)
}

// namespacedService scopes a Service to one database: every object name is
// prefixed with "<db>/", reveals are tagged per-tenant, and
// Checkpoint/Stats act on the tenant's own recovery mark. It is what the
// transport server interposes once a session handshake has bound a
// connection to a database, so N tenants share one backend without key
// collisions.
type namespacedService struct {
	svc Service
	db  string
}

// Namespaced returns svc scoped to the given database namespace. An empty db
// returns svc unchanged (the root namespace needs no prefixing).
func Namespaced(svc Service, db string) Service {
	if db == "" {
		return svc
	}
	return &namespacedService{svc: svc, db: db}
}

func (n *namespacedService) prefix(name string) string { return n.db + "/" + name }

// CreateArray implements Service.
func (n *namespacedService) CreateArray(name string, size int) error {
	return n.svc.CreateArray(n.prefix(name), size)
}

// ArrayLen implements Service.
func (n *namespacedService) ArrayLen(name string) (int, error) {
	return n.svc.ArrayLen(n.prefix(name))
}

// ReadCells implements Service.
func (n *namespacedService) ReadCells(name string, idx []int64) ([][]byte, error) {
	return n.svc.ReadCells(n.prefix(name), idx)
}

// WriteCells implements Service.
func (n *namespacedService) WriteCells(name string, idx []int64, cts [][]byte) error {
	return n.svc.WriteCells(n.prefix(name), idx, cts)
}

// CreateTree implements Service.
func (n *namespacedService) CreateTree(name string, levels, slotsPerBucket int) error {
	return n.svc.CreateTree(n.prefix(name), levels, slotsPerBucket)
}

// ReadPath implements Service.
func (n *namespacedService) ReadPath(name string, leaf uint32) ([][]byte, error) {
	return n.svc.ReadPath(n.prefix(name), leaf)
}

// WritePath implements Service.
func (n *namespacedService) WritePath(name string, leaf uint32, slots [][]byte) error {
	return n.svc.WritePath(n.prefix(name), leaf, slots)
}

// WriteBuckets implements Service.
func (n *namespacedService) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	return n.svc.WriteBuckets(n.prefix(name), bucketStart, slots)
}

// Delete implements Service.
func (n *namespacedService) Delete(name string) error {
	return n.svc.Delete(n.prefix(name))
}

// Reveal implements Service. The tag is prefixed too: the reveal log is part
// of the adversary's trace, and per-tenant tags keep the union-of-traces
// leakage argument syntactic — each logged disclosure names the tenant that
// made it.
func (n *namespacedService) Reveal(tag string, value int64) error {
	return n.svc.Reveal(n.prefix(tag), value)
}

// Checkpoint implements Service, marking the epoch in this database's
// namespace only.
func (n *namespacedService) Checkpoint(epoch int64) error {
	return CheckpointIn(n.svc, n.db, epoch)
}

// Stats implements Service, reporting this database's namespace only.
func (n *namespacedService) Stats() (Stats, error) {
	return StatsIn(n.svc, n.db)
}

// Batch implements Batcher by prefixing each op and delegating through
// DoBatch, so a backend Batcher still gets the whole batch in one call and a
// plain backend falls back to per-op dispatch.
func (n *namespacedService) Batch(ops []BatchOp) ([][][]byte, error) {
	scoped := make([]BatchOp, len(ops))
	for i, op := range ops {
		op.Name = n.prefix(op.Name)
		scoped[i] = op
	}
	return DoBatch(n.svc, scoped)
}

var (
	_ Service = (*namespacedService)(nil)
	_ Batcher = (*namespacedService)(nil)
)
