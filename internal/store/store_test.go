package store

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/trace"
)

func TestArrayLifecycle(t *testing.T) {
	s := NewServer()
	if err := s.CreateArray("a", 4); err != nil {
		t.Fatalf("CreateArray: %v", err)
	}
	if err := s.CreateArray("a", 4); !errors.Is(err, ErrObjectExists) {
		t.Errorf("duplicate CreateArray err = %v, want ErrObjectExists", err)
	}
	n, err := s.ArrayLen("a")
	if err != nil || n != 4 {
		t.Fatalf("ArrayLen = %d, %v", n, err)
	}
	if err := s.WriteCells("a", []int64{0, 3}, [][]byte{{1, 2}, {3}}); err != nil {
		t.Fatalf("WriteCells: %v", err)
	}
	got, err := s.ReadCells("a", []int64{3, 0, 1})
	if err != nil {
		t.Fatalf("ReadCells: %v", err)
	}
	if !bytes.Equal(got[0], []byte{3}) || !bytes.Equal(got[1], []byte{1, 2}) || got[2] != nil {
		t.Errorf("ReadCells = %v", got)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.ArrayLen("a"); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("ArrayLen after delete err = %v", err)
	}
}

func TestArrayErrors(t *testing.T) {
	s := NewServer()
	if err := s.CreateArray("neg", -1); err == nil {
		t.Error("negative-size array accepted")
	}
	if _, err := s.ReadCells("missing", []int64{0}); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("ReadCells on missing array err = %v", err)
	}
	if err := s.WriteCells("missing", []int64{0}, [][]byte{{1}}); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("WriteCells on missing array err = %v", err)
	}
	if err := s.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadCells("a", []int64{2}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range read err = %v", err)
	}
	if err := s.WriteCells("a", []int64{-1}, [][]byte{{1}}); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out-of-range write err = %v", err)
	}
	if err := s.WriteCells("a", []int64{0, 1}, [][]byte{{1}}); err == nil {
		t.Error("mismatched idx/cts accepted")
	}
}

func TestTreePathLayout(t *testing.T) {
	s := NewServer()
	const levels, z = 3, 2
	if err := s.CreateTree("t", levels, z); err != nil {
		t.Fatalf("CreateTree: %v", err)
	}
	// 3 levels → 4 leaves, 7 buckets, path length 3 buckets = 6 slots.
	for leaf := uint32(0); leaf < 4; leaf++ {
		slots, err := s.ReadPath("t", leaf)
		if err != nil {
			t.Fatalf("ReadPath(%d): %v", leaf, err)
		}
		if len(slots) != levels*z {
			t.Fatalf("path slot count = %d, want %d", len(slots), levels*z)
		}
	}
	if _, err := s.ReadPath("t", 4); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("ReadPath beyond leaves err = %v", err)
	}

	// Write a distinctive payload along leaf 0's path, check shared root
	// is visible from leaf 3's path.
	payload := make([][]byte, levels*z)
	for i := range payload {
		payload[i] = []byte{byte(i + 1)}
	}
	if err := s.WritePath("t", 0, payload); err != nil {
		t.Fatalf("WritePath: %v", err)
	}
	other, err := s.ReadPath("t", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Root bucket (first z slots) is shared by all paths.
	for j := 0; j < z; j++ {
		if !bytes.Equal(other[j], payload[j]) {
			t.Errorf("root slot %d = %v, want %v", j, other[j], payload[j])
		}
	}
	// Leaf buckets differ: leaf 3's leaf bucket was never written.
	for j := (levels - 1) * z; j < levels*z; j++ {
		if other[j] != nil {
			t.Errorf("leaf-3 slot %d = %v, want empty", j, other[j])
		}
	}
}

func TestTreeWritePathValidation(t *testing.T) {
	s := NewServer()
	if err := s.CreateTree("t", 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePath("t", 0, make([][]byte, 3)); !errors.Is(err, ErrBadPath) {
		t.Errorf("short WritePath err = %v", err)
	}
	if err := s.WritePath("missing", 0, make([][]byte, 8)); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("WritePath missing tree err = %v", err)
	}
	if err := s.CreateTree("t", 2, 4); !errors.Is(err, ErrObjectExists) {
		t.Errorf("duplicate tree err = %v", err)
	}
	if err := s.CreateTree("bad", 0, 4); err == nil {
		t.Error("zero-level tree accepted")
	}
}

func TestWriteBuckets(t *testing.T) {
	s := NewServer()
	const levels, z = 3, 2 // 7 buckets, 14 slots
	if err := s.CreateTree("t", levels, z); err != nil {
		t.Fatal(err)
	}
	// Fill all buckets in two batches.
	batch := func(start, buckets int, tag byte) [][]byte {
		slots := make([][]byte, buckets*z)
		for i := range slots {
			slots[i] = []byte{tag, byte(i)}
		}
		if err := s.WriteBuckets("t", start, slots); err != nil {
			t.Fatalf("WriteBuckets(%d): %v", start, err)
		}
		return slots
	}
	batch(0, 4, 1)
	batch(4, 3, 2)
	// Path to leaf 0 = buckets 0,1,3 → slots {0,1},{2,3},{6,7} of batch 1.
	got, err := s.ReadPath("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{{1, 0}, {1, 1}, {1, 2}, {1, 3}, {1, 6}, {1, 7}}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("slot %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Validation.
	if err := s.WriteBuckets("t", 0, make([][]byte, 3)); !errors.Is(err, ErrBadPath) {
		t.Errorf("non-multiple slots err = %v", err)
	}
	if err := s.WriteBuckets("t", 6, make([][]byte, 4)); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("overflow range err = %v", err)
	}
	if err := s.WriteBuckets("missing", 0, make([][]byte, 2)); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("missing tree err = %v", err)
	}
	// Accounting reflects bucket writes.
	st, _ := s.Stats()
	if st.StoredBytes != 14*2 {
		t.Errorf("StoredBytes = %d, want 28", st.StoredBytes)
	}
}

func TestNameCollisionAcrossKinds(t *testing.T) {
	s := NewServer()
	if err := s.CreateArray("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTree("x", 2, 2); !errors.Is(err, ErrObjectExists) {
		t.Errorf("tree over array name err = %v", err)
	}
	if err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTree("x", 2, 2); err != nil {
		t.Errorf("tree after array delete: %v", err)
	}
	if err := s.CreateArray("x", 1); !errors.Is(err, ErrObjectExists) {
		t.Errorf("array over tree name err = %v", err)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := NewServer()
	if err := s.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCells("a", []int64{0, 1}, [][]byte{make([]byte, 10), make([]byte, 20)}); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects != 1 || st.StoredBytes != 30 {
		t.Errorf("Stats = %+v, want 1 object / 30 bytes", st)
	}
	// Overwrite shrinks accounting.
	if err := s.WriteCells("a", []int64{1}, [][]byte{make([]byte, 5)}); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Stats()
	if st.StoredBytes != 15 {
		t.Errorf("StoredBytes after overwrite = %d, want 15", st.StoredBytes)
	}
	if err := s.CreateTree("t", 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePath("t", 0, [][]byte{make([]byte, 4), nil, nil, nil}); err != nil {
		t.Fatal(err)
	}
	st, _ = s.Stats()
	if st.Objects != 2 || st.StoredBytes != 19 {
		t.Errorf("Stats with tree = %+v, want 2 objects / 19 bytes", st)
	}
}

func TestTraceRecording(t *testing.T) {
	s := NewServer()
	s.Trace().Enable()
	if err := s.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCells("a", []int64{0}, [][]byte{{9, 9}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadCells("a", []int64{0}); err != nil {
		t.Fatal(err)
	}
	ev := s.Trace().Events()
	want := []trace.Event{
		{Op: trace.OpCreateArray, Object: "a", Index: 2},
		{Op: trace.OpWriteCell, Object: "a", Index: 0, Bytes: 2},
		{Op: trace.OpReadCell, Object: "a", Index: 0, Bytes: 2},
	}
	if len(ev) != len(want) {
		t.Fatalf("trace has %d events, want %d: %v", len(ev), len(want), ev)
	}
	for i := range want {
		if ev[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, ev[i], want[i])
		}
	}
	if got := s.Trace().Count(trace.OpWriteCell); got != 1 {
		t.Errorf("Count(WriteCell) = %d", got)
	}
	if got := s.Trace().TotalBytes(); got != 4 {
		t.Errorf("TotalBytes = %d, want 4", got)
	}
}

func TestRevealLog(t *testing.T) {
	s := NewServer()
	if err := s.Reveal("fd", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Reveal("fd", 0); err != nil {
		t.Fatal(err)
	}
	got := s.Reveals()
	if len(got) != 2 || got[0] != (Reveal{"fd", 1}) || got[1] != (Reveal{"fd", 0}) {
		t.Errorf("Reveals = %v", got)
	}
	s.ResetReveals()
	if len(s.Reveals()) != 0 {
		t.Error("ResetReveals did not clear log")
	}
}

func TestConcurrentDisjointCellAccess(t *testing.T) {
	s := NewServer()
	const n = 256
	if err := s.CreateArray("a", n); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				ct := []byte(fmt.Sprint(i))
				if err := s.WriteCells("a", []int64{int64(i)}, [][]byte{ct}); err != nil {
					t.Errorf("WriteCells(%d): %v", i, err)
					return
				}
				got, err := s.ReadCells("a", []int64{int64(i)})
				if err != nil || !bytes.Equal(got[0], ct) {
					t.Errorf("ReadCells(%d) = %v, %v", i, got, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestWithLatencyDelaysEveryOp(t *testing.T) {
	const rtt = 3 * time.Millisecond
	svc := WithLatency(Service(NewServer()), rtt)
	start := time.Now()
	if err := svc.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := svc.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ReadCells("a", []int64{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ArrayLen("a"); err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateTree("t", 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ReadPath("t", 0); err != nil {
		t.Fatal(err)
	}
	if err := svc.WritePath("t", 0, make([][]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if err := svc.WriteBuckets("t", 0, make([][]byte, 2)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Reveal("x", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Stats(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Delete("t"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 11*rtt {
		t.Errorf("11 calls took %v, want >= %v", elapsed, 11*rtt)
	}
}

func TestWithLatencyZeroIsPassthrough(t *testing.T) {
	srv := NewServer()
	if got := WithLatency(Service(srv), 0); got != Service(srv) {
		t.Error("zero latency should return the underlying service")
	}
}

// TestWithLatencyOverlapsConcurrentCalls: the property Fig. 6(a) exploits —
// concurrent delayed calls overlap rather than serialize.
func TestWithLatencyOverlapsConcurrentCalls(t *testing.T) {
	const rtt = 5 * time.Millisecond
	svc := WithLatency(Service(NewServer()), rtt)
	if err := svc.CreateArray("a", 16); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if _, err := svc.ReadCells("a", []int64{int64(w)}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*rtt {
		t.Errorf("8 concurrent calls took %v; they serialized instead of overlapping", elapsed)
	}
}

func TestShapeNormalizesLeaves(t *testing.T) {
	a := []trace.Event{{Op: trace.OpReadPath, Object: "t", Index: 5, Bytes: 100}}
	b := []trace.Event{{Op: trace.OpReadPath, Object: "t", Index: 9, Bytes: 100}}
	if !trace.ShapeOf(a).Equal(trace.ShapeOf(b)) {
		t.Error("shapes differing only in leaf index compare unequal")
	}
	c := []trace.Event{{Op: trace.OpReadCell, Object: "t", Index: 5, Bytes: 100}}
	d := []trace.Event{{Op: trace.OpReadCell, Object: "t", Index: 9, Bytes: 100}}
	if trace.ShapeOf(c).Equal(trace.ShapeOf(d)) {
		t.Error("cell indices must be part of the shape")
	}
	if diff := trace.ShapeOf(c).Diff(trace.ShapeOf(d)); diff == "" {
		t.Error("Diff on unequal shapes is empty")
	}
	if diff := trace.ShapeOf(a).Diff(trace.ShapeOf(b)); diff != "" {
		t.Errorf("Diff on equal shapes = %q", diff)
	}
}
