package store

import (
	"time"

	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// opNames is every Service operation, used to pre-create metric handles so
// the hot path never touches the registry map.
var opNames = []string{
	"CreateArray", "ArrayLen", "ReadCells", "WriteCells",
	"CreateTree", "ReadPath", "WritePath", "WriteBuckets",
	"Delete", "Reveal", "Checkpoint", "Stats", "Batch",
}

// Op indices into metricsService handle slices.
const (
	opCreateArray = iota
	opArrayLen
	opReadCells
	opWriteCells
	opCreateTree
	opReadPath
	opWritePath
	opWriteBuckets
	opDelete
	opReveal
	opCheckpoint
	opStats
	opBatch
	numOps
)

// WithMetrics wraps a Service so every call is timed into a per-operation
// latency histogram (oblivfd_store_op_seconds{op=...}), errors are counted
// (oblivfd_store_op_errors_total{op=...}), and ciphertext payload volume
// is accumulated (oblivfd_store_bytes_{read,written}_total). A nil
// registry returns svc unchanged — the zero-telemetry path has no wrapper
// at all.
//
// Leakage note: everything observed here (operation kind, latency, payload
// size) is already visible to the server and the persistent adversary; see
// DESIGN.md §9.
func WithMetrics(svc Service, reg *telemetry.Registry) Service {
	if reg == nil {
		return svc
	}
	m := &metricsService{
		svc:          svc,
		bytesRead:    reg.Counter("oblivfd_store_bytes_read_total"),
		bytesWritten: reg.Counter("oblivfd_store_bytes_written_total"),
	}
	for i, op := range opNames {
		m.lat[i] = reg.Histogram("oblivfd_store_op_seconds", "op", op)
		m.errs[i] = reg.Counter("oblivfd_store_op_errors_total", "op", op)
	}
	return m
}

type metricsService struct {
	svc          Service
	lat          [numOps]*telemetry.Histogram
	errs         [numOps]*telemetry.Counter
	bytesRead    *telemetry.Counter
	bytesWritten *telemetry.Counter
}

// observe records one finished call.
func (m *metricsService) observe(op int, t0 time.Time, err error) {
	m.lat[op].ObserveSince(t0)
	if err != nil {
		m.errs[op].Inc()
	}
}

func payloadBytes(cts [][]byte) int64 {
	var n int64
	for _, ct := range cts {
		n += int64(len(ct))
	}
	return n
}

// CreateArray implements Service.
func (m *metricsService) CreateArray(name string, n int) error {
	t0 := time.Now()
	err := m.svc.CreateArray(name, n)
	m.observe(opCreateArray, t0, err)
	return err
}

// ArrayLen implements Service.
func (m *metricsService) ArrayLen(name string) (int, error) {
	t0 := time.Now()
	n, err := m.svc.ArrayLen(name)
	m.observe(opArrayLen, t0, err)
	return n, err
}

// ReadCells implements Service.
func (m *metricsService) ReadCells(name string, idx []int64) ([][]byte, error) {
	t0 := time.Now()
	cts, err := m.svc.ReadCells(name, idx)
	m.observe(opReadCells, t0, err)
	if err == nil {
		m.bytesRead.Add(payloadBytes(cts))
	}
	return cts, err
}

// WriteCells implements Service.
func (m *metricsService) WriteCells(name string, idx []int64, cts [][]byte) error {
	t0 := time.Now()
	err := m.svc.WriteCells(name, idx, cts)
	m.observe(opWriteCells, t0, err)
	if err == nil {
		m.bytesWritten.Add(payloadBytes(cts))
	}
	return err
}

// CreateTree implements Service.
func (m *metricsService) CreateTree(name string, levels, slotsPerBucket int) error {
	t0 := time.Now()
	err := m.svc.CreateTree(name, levels, slotsPerBucket)
	m.observe(opCreateTree, t0, err)
	return err
}

// ReadPath implements Service.
func (m *metricsService) ReadPath(name string, leaf uint32) ([][]byte, error) {
	t0 := time.Now()
	cts, err := m.svc.ReadPath(name, leaf)
	m.observe(opReadPath, t0, err)
	if err == nil {
		m.bytesRead.Add(payloadBytes(cts))
	}
	return cts, err
}

// WritePath implements Service.
func (m *metricsService) WritePath(name string, leaf uint32, slots [][]byte) error {
	t0 := time.Now()
	err := m.svc.WritePath(name, leaf, slots)
	m.observe(opWritePath, t0, err)
	if err == nil {
		m.bytesWritten.Add(payloadBytes(slots))
	}
	return err
}

// WriteBuckets implements Service.
func (m *metricsService) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	t0 := time.Now()
	err := m.svc.WriteBuckets(name, bucketStart, slots)
	m.observe(opWriteBuckets, t0, err)
	if err == nil {
		m.bytesWritten.Add(payloadBytes(slots))
	}
	return err
}

// Delete implements Service.
func (m *metricsService) Delete(name string) error {
	t0 := time.Now()
	err := m.svc.Delete(name)
	m.observe(opDelete, t0, err)
	return err
}

// Reveal implements Service.
func (m *metricsService) Reveal(tag string, value int64) error {
	t0 := time.Now()
	err := m.svc.Reveal(tag, value)
	m.observe(opReveal, t0, err)
	return err
}

// Checkpoint implements Service.
func (m *metricsService) Checkpoint(epoch int64) error {
	t0 := time.Now()
	err := m.svc.Checkpoint(epoch)
	m.observe(opCheckpoint, t0, err)
	return err
}

// Stats implements Service.
func (m *metricsService) Stats() (Stats, error) {
	t0 := time.Now()
	st, err := m.svc.Stats()
	m.observe(opStats, t0, err)
	return st, err
}

// Batch implements Batcher, timing the fused call as one operation and
// attributing payload bytes to the read/write totals per inner op.
func (m *metricsService) Batch(ops []BatchOp) ([][][]byte, error) {
	t0 := time.Now()
	res, err := DoBatch(m.svc, ops)
	m.observe(opBatch, t0, err)
	if err == nil {
		for i, op := range ops {
			if op.Write {
				m.bytesWritten.Add(payloadBytes(op.Cts))
			} else if i < len(res) {
				m.bytesRead.Add(payloadBytes(res[i]))
			}
		}
	}
	return res, err
}

// CheckpointNS implements NamespaceService, timed as a Checkpoint.
func (m *metricsService) CheckpointNS(db string, epoch int64) error {
	t0 := time.Now()
	err := CheckpointIn(m.svc, db, epoch)
	m.observe(opCheckpoint, t0, err)
	return err
}

// StatsNS implements NamespaceService, timed as a Stats.
func (m *metricsService) StatsNS(db string) (Stats, error) {
	t0 := time.Now()
	st, err := StatsIn(m.svc, db)
	m.observe(opStats, t0, err)
	return st, err
}

var (
	_ Service          = (*metricsService)(nil)
	_ Batcher          = (*metricsService)(nil)
	_ NamespaceService = (*metricsService)(nil)
)
