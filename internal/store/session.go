package store

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// Session errors.
var (
	// ErrOverloaded is load shedding: the server refused to take the work
	// right now — admission budget exhausted, rate limit hit, or drain in
	// progress. The request did not execute, so it is safe and expected to
	// retry with backoff; DefaultRetryable classifies it as retryable.
	ErrOverloaded = errors.New("store: server overloaded")
	// ErrUnauthorized is a failed session handshake: bad token or invalid
	// database name. Retrying the identical handshake cannot change the
	// verdict, so it is fatal (DefaultRetryable returns false).
	ErrUnauthorized = errors.New("store: session unauthorized")
)

// SessionLimits configures admission control for a multi-tenant server. The
// zero value imposes no limits at all — every field is opt-in, so a server
// built without explicit limits behaves exactly like the single-tenant one.
type SessionLimits struct {
	// MaxSessions caps concurrently open sessions (0 = unlimited). When the
	// cap is reached, opening a new session first evicts sessions idle
	// longer than IdleTimeout; if none can be evicted the handshake is
	// refused with ErrOverloaded.
	MaxSessions int
	// MaxInflight caps requests executing across all sessions
	// (0 = unlimited); excess requests are shed with ErrOverloaded.
	MaxInflight int
	// PerSessionInflight caps requests executing within one session
	// (0 = unlimited).
	PerSessionInflight int
	// RatePerSec is a per-session token-bucket rate limit in requests per
	// second (0 = unlimited).
	RatePerSec float64
	// Burst is the token-bucket depth; 0 derives it from RatePerSec
	// (minimum 1).
	Burst int
	// IdleTimeout makes sessions with no in-flight requests evictable after
	// this much inactivity (0 = never evict).
	IdleTimeout time.Duration
	// Token, when non-empty, is the shared secret every handshake must
	// present; a mismatch is ErrUnauthorized.
	Token string
}

// Session is one authenticated client binding to a database namespace. The
// transport server opens one per connection handshake; every subsequent
// request on that connection passes through Begin for admission.
type Session struct {
	ID int64
	DB string

	reg        *SessionRegistry
	inflight   int
	lastActive time.Time
	tokens     float64
	lastRefill time.Time
	closed     bool
	onEvict    func()
}

// SessionRegistry tracks every live session and enforces SessionLimits. It
// is the single admission point: Open gates handshakes, Begin gates
// requests, Drain flips the registry into shutdown mode where existing
// sessions finish and new ones are refused.
type SessionRegistry struct {
	limits SessionLimits

	mu       sync.Mutex
	sessions map[int64]*Session
	nextID   int64
	draining bool
	inflight int64

	shed     int64 // requests refused by admission control
	rejected int64 // handshakes refused (auth, capacity, drain)
	evicted  int64 // idle sessions reclaimed

	now func() time.Time // test hook; nil means time.Now

	// Registry-backed handles; nil-safe when no registry is attached.
	activeGauge   *telemetry.Gauge
	inflightGauge *telemetry.Gauge
	openedCtr     *telemetry.Counter
	shedCtr       *telemetry.Counter
	rejectedCtr   *telemetry.Counter
	evictedCtr    *telemetry.Counter
}

// NewSessionRegistry builds a registry with the given limits. A telemetry
// registry, when non-nil, backs the session gauges and shed counters
// (oblivfd_sessions_active, oblivfd_sessions_inflight,
// oblivfd_sessions_opened_total, oblivfd_requests_shed_total,
// oblivfd_sessions_rejected_total, oblivfd_sessions_evicted_total).
func NewSessionRegistry(limits SessionLimits, reg *telemetry.Registry) *SessionRegistry {
	return &SessionRegistry{
		limits:        limits,
		sessions:      make(map[int64]*Session),
		nextID:        1,
		activeGauge:   reg.Gauge("oblivfd_sessions_active"),
		inflightGauge: reg.Gauge("oblivfd_sessions_inflight"),
		openedCtr:     reg.Counter("oblivfd_sessions_opened_total"),
		shedCtr:       reg.Counter("oblivfd_requests_shed_total"),
		rejectedCtr:   reg.Counter("oblivfd_sessions_rejected_total"),
		evictedCtr:    reg.Counter("oblivfd_sessions_evicted_total"),
	}
}

// Limits returns the configured limits.
func (r *SessionRegistry) Limits() SessionLimits { return r.limits }

func (r *SessionRegistry) clock() time.Time {
	if r.now != nil {
		return r.now()
	}
	return time.Now()
}

// Open authenticates a handshake and admits a session bound to the given
// database namespace (db may be "" for the root namespace). Failures are
// ErrUnauthorized (bad token or malformed database name — fatal) or
// ErrOverloaded (capacity or drain — retryable).
func (r *SessionRegistry) Open(db, token string) (*Session, error) {
	if db != "" && !ValidDBName(db) {
		r.bumpRejected()
		return nil, fmt.Errorf("%w: invalid database name %q", ErrUnauthorized, db)
	}
	if r.limits.Token != "" && token != r.limits.Token {
		r.bumpRejected()
		return nil, fmt.Errorf("%w: bad session token", ErrUnauthorized)
	}
	r.mu.Lock()
	if r.draining {
		r.rejected++
		r.mu.Unlock()
		r.rejectedCtr.Inc()
		return nil, fmt.Errorf("%w: server draining, refusing new sessions", ErrOverloaded)
	}
	var evicted []*Session
	if r.limits.MaxSessions > 0 && len(r.sessions) >= r.limits.MaxSessions {
		evicted = r.sweepLocked(r.clock())
	}
	if r.limits.MaxSessions > 0 && len(r.sessions) >= r.limits.MaxSessions {
		r.rejected++
		r.mu.Unlock()
		r.notifyEvicted(evicted)
		r.rejectedCtr.Inc()
		return nil, fmt.Errorf("%w: %d sessions active (max %d)", ErrOverloaded, r.limits.MaxSessions, r.limits.MaxSessions)
	}
	s := &Session{
		ID:         r.nextID,
		DB:         db,
		reg:        r,
		lastActive: r.clock(),
		lastRefill: r.clock(),
		tokens:     r.burst(),
	}
	r.nextID++
	r.sessions[s.ID] = s
	r.mu.Unlock()
	r.notifyEvicted(evicted)
	r.activeGauge.Add(1)
	r.openedCtr.Inc()
	return s, nil
}

func (r *SessionRegistry) bumpRejected() {
	r.mu.Lock()
	r.rejected++
	r.mu.Unlock()
	r.rejectedCtr.Inc()
}

// burst returns the token-bucket depth implied by the limits.
func (r *SessionRegistry) burst() float64 {
	if r.limits.RatePerSec <= 0 {
		return 0
	}
	b := float64(r.limits.Burst)
	if b <= 0 {
		b = r.limits.RatePerSec
	}
	if b < 1 {
		b = 1
	}
	return b
}

// sweepLocked evicts sessions with no in-flight work that have been idle
// past IdleTimeout, returning them so the caller can run their eviction
// callbacks outside the lock. Callers hold r.mu.
func (r *SessionRegistry) sweepLocked(now time.Time) []*Session {
	if r.limits.IdleTimeout <= 0 {
		return nil
	}
	var out []*Session
	for id, s := range r.sessions {
		if s.inflight == 0 && now.Sub(s.lastActive) >= r.limits.IdleTimeout {
			s.closed = true
			delete(r.sessions, id)
			r.evicted++
			out = append(out, s)
		}
	}
	return out
}

func (r *SessionRegistry) notifyEvicted(evicted []*Session) {
	for _, s := range evicted {
		r.activeGauge.Add(-1)
		r.evictedCtr.Inc()
		if s.onEvict != nil {
			s.onEvict()
		}
	}
}

// SweepIdle evicts idle sessions immediately (the lazy sweep in Open only
// runs at capacity); the transport server calls it periodically so an idle
// tenant's connection is reclaimed even on an uncrowded server. Returns the
// number of sessions evicted.
func (r *SessionRegistry) SweepIdle() int {
	r.mu.Lock()
	evicted := r.sweepLocked(r.clock())
	r.mu.Unlock()
	r.notifyEvicted(evicted)
	return len(evicted)
}

// Drain refuses all future handshakes while letting existing sessions keep
// issuing requests; it returns the number of sessions still active. The
// transport server calls it on SIGTERM so the shutdown is fair: tenants
// mid-discovery finish, newcomers get a retryable ErrOverloaded and find
// another replica.
func (r *SessionRegistry) Drain() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.draining = true
	return len(r.sessions)
}

// Draining reports whether Drain was called.
func (r *SessionRegistry) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Active returns the number of open sessions.
func (r *SessionRegistry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Inflight returns the number of requests currently admitted and executing.
func (r *SessionRegistry) Inflight() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inflight
}

// Shed returns how many requests admission control has refused.
func (r *SessionRegistry) Shed() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.shed
}

// Rejected returns how many handshakes were refused.
func (r *SessionRegistry) Rejected() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rejected
}

// Evicted returns how many idle sessions were reclaimed.
func (r *SessionRegistry) Evicted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// OnEvict registers a callback run when the registry evicts this session
// (idle sweep). The transport server uses it to close the underlying
// connection, which the self-healing client answers by re-dialing and
// re-handshaking.
func (s *Session) OnEvict(fn func()) {
	s.reg.mu.Lock()
	s.onEvict = fn
	s.reg.mu.Unlock()
}

// Begin admits one request into the session. On success it returns a release
// function the caller must run when the request completes; on refusal it
// returns ErrOverloaded (shed — the request never executed).
func (s *Session) Begin() (release func(), err error) {
	r := s.reg
	now := r.clock()
	r.mu.Lock()
	switch {
	case s.closed:
		r.shed++
		err = fmt.Errorf("%w: session evicted", ErrOverloaded)
	case r.limits.MaxInflight > 0 && r.inflight >= int64(r.limits.MaxInflight):
		r.shed++
		err = fmt.Errorf("%w: %d requests in flight (max %d)", ErrOverloaded, r.inflight, r.limits.MaxInflight)
	case r.limits.PerSessionInflight > 0 && s.inflight >= r.limits.PerSessionInflight:
		r.shed++
		err = fmt.Errorf("%w: session %d at in-flight cap %d", ErrOverloaded, s.ID, r.limits.PerSessionInflight)
	case !s.takeTokenLocked(now):
		r.shed++
		err = fmt.Errorf("%w: session %d rate limited (%.3g req/s)", ErrOverloaded, s.ID, r.limits.RatePerSec)
	}
	if err != nil {
		r.mu.Unlock()
		r.shedCtr.Inc()
		return nil, err
	}
	r.inflight++
	s.inflight++
	s.lastActive = now
	r.mu.Unlock()
	r.inflightGauge.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			r.inflight--
			s.inflight--
			s.lastActive = r.clock()
			r.mu.Unlock()
			r.inflightGauge.Add(-1)
		})
	}, nil
}

// takeTokenLocked consumes one token from the session's bucket, refilling by
// elapsed wall time first. Callers hold r.mu.
func (s *Session) takeTokenLocked(now time.Time) bool {
	rate := s.reg.limits.RatePerSec
	if rate <= 0 {
		return true
	}
	elapsed := now.Sub(s.lastRefill).Seconds()
	if elapsed > 0 {
		s.tokens += elapsed * rate
		if burst := s.reg.burst(); s.tokens > burst {
			s.tokens = burst
		}
		s.lastRefill = now
	}
	if s.tokens < 1 {
		return false
	}
	s.tokens--
	return true
}

// Close removes the session from the registry. The transport server calls it
// when the connection ends; closing twice (or closing an evicted session) is
// a no-op.
func (s *Session) Close() {
	r := s.reg
	r.mu.Lock()
	if s.closed {
		r.mu.Unlock()
		return
	}
	s.closed = true
	delete(r.sessions, s.ID)
	r.mu.Unlock()
	r.activeGauge.Add(-1)
}
