package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"syscall"
)

// Write-ahead log: every mutating storage operation is appended as one
// self-contained CRC32-framed record before the server acknowledges it.
// Recovery replays the log over the newest valid snapshot; a torn tail
// (partial frame from a crash mid-append) is detected by the framing and
// truncated, never replayed and never a panic.
//
// Frame format, all little-endian:
//
//	payloadLen uint32 | crc32 uint32 | gob(walRecord)
//
// Each record uses a fresh gob encoder so frames decode independently —
// replay can start from any snapshot boundary and a torn frame cannot
// poison its successors.

// walOp enumerates the mutations the log can carry. Reads are not logged:
// they change nothing the snapshot+log must reconstruct.
type walOp uint8

const (
	walCreateArray walOp = iota
	walWriteCells
	walCreateTree
	walWritePath
	walWriteBuckets
	walDelete
	walCheckpoint
	walFence
	walRepairCells
	walRepairSlots
)

var walOpNames = [...]string{
	"CreateArray", "WriteCells", "CreateTree", "WritePath", "WriteBuckets", "Delete", "Checkpoint", "Fence",
	"RepairCells", "RepairSlots",
}

func (o walOp) String() string {
	if int(o) < len(walOpNames) {
		return walOpNames[o]
	}
	return fmt.Sprintf("walOp(%d)", uint8(o))
}

// walRecord is one logged mutation. Field use depends on Op:
//
//	CreateArray:  Name, N
//	WriteCells:   Name, Idx, Cts
//	CreateTree:   Name, Levels, Slots
//	WritePath:    Name, Leaf, Cts
//	WriteBuckets: Name, N (bucketStart), Cts
//	Delete:       Name
//	Checkpoint:   Name (database namespace, "" = root), N (epoch)
//	Fence:        N (fencing epoch), Name ("primary" or "replica" — the role
//	              adopted with it)
//	RepairCells:  Name, Idx, Cts (array self-heal; replays as an install —
//	              no dirty bump, no trace event)
//	RepairSlots:  Name, Idx (flat slot indices), Cts (tree self-heal)
type walRecord struct {
	Op     walOp
	Name   string
	N      int64
	Levels int
	Slots  int
	Leaf   uint32
	Idx    []int64
	Cts    [][]byte
}

// maxWALPayload bounds a declared frame length so a corrupted length field
// cannot trigger a huge allocation before the CRC check.
const maxWALPayload = 1 << 32

// encodeWALRecord renders one framed record.
func encodeWALRecord(rec *walRecord) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("store: encoding WAL record: %w", err)
	}
	frame := make([]byte, 8+payload.Len())
	binary.LittleEndian.PutUint32(frame[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload.Bytes()))
	copy(frame[8:], payload.Bytes())
	return frame, nil
}

// errTornFrame distinguishes an incomplete/garbled tail (expected after a
// crash; truncate and continue) from corruption in the middle of the log.
var errTornFrame = errors.New("torn frame")

// readWALRecord reads one frame from r. io.EOF means a clean end;
// errTornFrame means the bytes at the current offset do not form a complete
// valid frame.
func readWALRecord(r io.Reader) (*walRecord, int64, error) {
	header := make([]byte, 8)
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, errTornFrame // partial header
	}
	plen := binary.LittleEndian.Uint32(header[0:])
	want := binary.LittleEndian.Uint32(header[4:])
	if uint64(plen) > maxWALPayload {
		return nil, 0, errTornFrame
	}
	var payloadBuf bytes.Buffer
	if n, err := io.CopyN(&payloadBuf, r, int64(plen)); err != nil || n != int64(plen) {
		return nil, 0, errTornFrame // partial payload
	}
	payload := payloadBuf.Bytes()
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, errTornFrame
	}
	rec := new(walRecord)
	if err := safeGobDecode(payload, rec); err != nil {
		return nil, 0, errTornFrame
	}
	return rec, int64(8 + len(payload)), nil
}

// scanWAL reads every complete frame from r and reports the byte offset of
// the end of the last valid frame. A torn tail stops the scan without error;
// the caller truncates the file to validEnd.
func scanWAL(r io.Reader) (records []*walRecord, validEnd int64, torn bool) {
	for {
		rec, n, err := readWALRecord(r)
		if err == io.EOF {
			return records, validEnd, false
		}
		if err != nil {
			return records, validEnd, true
		}
		records = append(records, rec)
		validEnd += n
	}
}

// replayWAL applies records to the in-memory server in log order. Replay is
// idempotent so it tolerates a snapshot that already includes a prefix of
// the log (possible when a crash lands between snapshot rename and log
// truncation): creates replace any existing object, deletes of missing
// objects succeed, and cell/path/bucket writes are plain overwrites. A
// record that still fails semantically (e.g. a write to an object no create
// established) means the log does not extend this snapshot — that is
// corruption, not a torn tail.
func replayWAL(s *Server, records []*walRecord) error {
	for i, rec := range records {
		var err error
		switch rec.Op {
		case walCreateArray:
			_ = s.Delete(rec.Name) // create-as-replace for idempotent replay
			err = s.CreateArray(rec.Name, int(rec.N))
		case walWriteCells:
			err = s.WriteCells(rec.Name, rec.Idx, rec.Cts)
		case walCreateTree:
			_ = s.Delete(rec.Name)
			err = s.CreateTree(rec.Name, rec.Levels, rec.Slots)
		case walWritePath:
			err = s.WritePath(rec.Name, rec.Leaf, rec.Cts)
		case walWriteBuckets:
			err = s.WriteBuckets(rec.Name, int(rec.N), rec.Cts)
		case walDelete:
			if derr := s.Delete(rec.Name); derr != nil && !errors.Is(derr, ErrUnknownObject) {
				err = derr
			}
		case walCheckpoint:
			// Name carries the database namespace; records written before
			// multi-tenancy have Name == "" and replay as root checkpoints,
			// exactly as they always did.
			err = s.CheckpointNS(rec.Name, rec.N)
		case walFence:
			// Fencing epochs are an audit trail in the log; the FENCE file
			// (see replicate.go) is the authoritative durable copy, so
			// replay has nothing to apply to the in-memory state.
		case walRepairCells:
			err = s.InstallStored(rec.Name, false, rec.Idx, rec.Cts)
		case walRepairSlots:
			err = s.InstallStored(rec.Name, true, rec.Idx, rec.Cts)
		default:
			err = fmt.Errorf("unknown op %v", rec.Op)
		}
		if err != nil {
			return fmt.Errorf("%w: record %d (%v %q): %v", ErrCorruptWAL, i, rec.Op, rec.Name, err)
		}
	}
	return nil
}

// errWALFailStop classifies WAL failures the durable layer must treat as
// fail-stop: an fsync error (the kernel may have dropped dirty pages — data
// already acknowledged could be gone, so continuing risks acking writes that
// never become durable; the "fsyncgate" lesson), or a torn write that could
// not be rolled back (the on-disk log no longer matches the in-memory size
// accounting). Disk-full with a clean rollback is NOT fail-stop — it wraps
// ErrDiskFull and the server degrades to read-only instead.
var errWALFailStop = errors.New("store: WAL fail-stop")

// walWriter appends framed records to the log file.
type walWriter struct {
	f           File
	syncEvery   int   // fsync cadence in records; <=1 syncs every append
	pending     int   // appends since last fsync
	appended    int64 // total records appended (kill-point accounting)
	size        int64 // current file size in bytes
	truncations int64 // times truncate() ran (scrub race guard)
}

func openWALWriter(fsys FS, path string, syncEvery int) (*walWriter, error) {
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &walWriter{f: f, syncEvery: syncEvery, size: info.Size()}, nil
}

// append frames and writes one record, fsyncing per the cadence. A failed
// write (ENOSPC) is rolled back by truncating to the pre-append size so the
// log never carries a torn frame the next recovery would mistake for a
// crash; only if that rollback itself fails does the error escalate to
// fail-stop.
func (w *walWriter) append(rec *walRecord) error {
	frame, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(frame); err != nil {
		if terr := w.f.Truncate(w.size); terr != nil {
			return fmt.Errorf("%w: append failed (%v) and rollback truncate failed: %v", errWALFailStop, err, terr)
		}
		if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			return fmt.Errorf("%w: append failed (%v) and rollback seek failed: %v", errWALFailStop, err, serr)
		}
		if errors.Is(err, ErrDiskFull) || isENOSPC(err) {
			return fmt.Errorf("store: appending WAL record: %w", err)
		}
		return fmt.Errorf("%w: appending WAL record: %v", errWALFailStop, err)
	}
	w.size += int64(len(frame))
	w.appended++
	w.pending++
	if w.syncEvery <= 1 || w.pending >= w.syncEvery {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("%w: syncing WAL: %v", errWALFailStop, err)
		}
		w.pending = 0
	}
	return nil
}

// isENOSPC reports whether err is the real filesystem's out-of-space errno
// (the injected form already wraps ErrDiskFull).
func isENOSPC(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}

// appendTorn simulates a crash mid-append for the kill-point harness: it
// writes only a prefix of the frame (at least the header plus one payload
// byte when possible, never the whole frame) and syncs, leaving exactly the
// torn tail a real SIGKILL between write and completion would.
func (w *walWriter) appendTorn(rec *walRecord) error {
	frame, err := encodeWALRecord(rec)
	if err != nil {
		return err
	}
	cut := len(frame) / 2
	if cut < 9 && len(frame) > 9 {
		cut = 9
	}
	if cut >= len(frame) {
		cut = len(frame) - 1
	}
	if cut < 1 {
		cut = 1
	}
	if _, err := w.f.Write(frame[:cut]); err != nil {
		return fmt.Errorf("store: appending torn WAL record: %w", err)
	}
	w.size += int64(cut)
	return w.f.Sync()
}

// truncate resets the log to empty (after a snapshot absorbed its records).
func (w *walWriter) truncate() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("%w: syncing truncated WAL: %v", errWALFailStop, err)
	}
	w.size = 0
	w.pending = 0
	w.truncations++
	return nil
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
