package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// flaky is a Service stub that fails the first failures calls to one method
// with the given error, then delegates to a real server.
type flaky struct {
	*Server
	err      error
	failures int
	seen     int
	applied  bool // when set, the operation applies despite the error
}

func (f *flaky) WriteCells(name string, idx []int64, cts [][]byte) error {
	if f.seen < f.failures {
		f.seen++
		if f.applied {
			_ = f.Server.WriteCells(name, idx, cts)
		}
		return f.err
	}
	return f.Server.WriteCells(name, idx, cts)
}

func (f *flaky) CreateArray(name string, n int) error {
	if f.seen < f.failures {
		f.seen++
		if f.applied {
			_ = f.Server.CreateArray(name, n)
		}
		return f.err
	}
	return f.Server.CreateArray(name, n)
}

// fastPolicy keeps test backoffs instant and records sleeps.
func fastPolicy(p RetryPolicy, slept *[]time.Duration) RetryPolicy {
	p.sleep = func(d time.Duration) {
		if slept != nil {
			*slept = append(*slept, d)
		}
	}
	return p
}

func TestRetryRecoversFromTransient(t *testing.T) {
	backend := &flaky{Server: NewServer(), err: fmt.Errorf("%w: test", ErrTransient), failures: 3}
	if err := backend.Server.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}
	var slept []time.Duration
	// JitterPartial keeps the schedule near-exponential so the monotonicity
	// assertion below holds; the full-jitter default is covered separately.
	r := WithRetry(backend, fastPolicy(RetryPolicy{MaxAttempts: 5, Jitter: JitterPartial}, &slept))
	if err := r.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatalf("WriteCells with 3 transient failures: %v", err)
	}
	if r.Retries() != 3 {
		t.Errorf("Retries() = %d, want 3", r.Retries())
	}
	if len(slept) != 3 {
		t.Fatalf("slept %d times, want 3", len(slept))
	}
	// Exponential growth: each backoff at least the previous (modulo the
	// ±10% jitter at defaults, doubling always dominates).
	for i := 1; i < len(slept); i++ {
		if slept[i] <= slept[i-1] {
			t.Errorf("backoff %d (%v) not greater than %d (%v)", i, slept[i], i-1, slept[i-1])
		}
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries != 3 {
		t.Errorf("Stats.Retries = %d, want 3", st.Retries)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	backend := &flaky{Server: NewServer(), err: fmt.Errorf("%w: test", ErrTransient), failures: 100}
	_ = backend.Server.CreateArray("a", 4)
	r := WithRetry(backend, fastPolicy(RetryPolicy{MaxAttempts: 4}, nil))
	err := r.WriteCells("a", []int64{0}, [][]byte{{1}})
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want wrapped ErrTransient", err)
	}
	if backend.seen != 4 {
		t.Errorf("backend saw %d attempts, want 4", backend.seen)
	}
}

func TestRetryFatalErrorsNotRetried(t *testing.T) {
	r := WithRetry(NewServer(), fastPolicy(RetryPolicy{}, nil))
	if err := r.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateArray("a", 2); !errors.Is(err, ErrObjectExists) {
		t.Fatalf("duplicate create = %v, want ErrObjectExists", err)
	}
	if _, err := r.ReadCells("missing", []int64{0}); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("missing read = %v, want ErrUnknownObject", err)
	}
	if r.Retries() != 0 {
		t.Errorf("fatal errors consumed %d retries", r.Retries())
	}
}

// TestRetryReconcilesLostCreateAck: the first CreateArray applies but its
// acknowledgement is "lost" (fail-after); the retry's ErrObjectExists is
// reconciled to success.
func TestRetryReconcilesLostCreateAck(t *testing.T) {
	backend := &flaky{Server: NewServer(), err: fmt.Errorf("%w: ack lost", ErrTransient), failures: 1, applied: true}
	r := WithRetry(backend, fastPolicy(RetryPolicy{}, nil))
	if err := r.CreateArray("a", 4); err != nil {
		t.Fatalf("create with lost ack = %v, want reconciled success", err)
	}
	if n, err := r.ArrayLen("a"); err != nil || n != 4 {
		t.Fatalf("array after reconciled create: %d, %v", n, err)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	backend := &flaky{Server: NewServer(), err: fmt.Errorf("%w: test", ErrTransient), failures: 100}
	_ = backend.Server.CreateArray("a", 4)
	r := WithRetry(backend, fastPolicy(RetryPolicy{MaxAttempts: 10, Budget: 2}, nil))
	err := r.WriteCells("a", []int64{0}, [][]byte{{1}})
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
}

func TestRetryCallTimeout(t *testing.T) {
	backend := &flaky{Server: NewServer(), err: fmt.Errorf("%w: test", ErrTransient), failures: 100}
	_ = backend.Server.CreateArray("a", 4)
	// Real sleeps here: the deadline must trip before MaxAttempts does.
	r := WithRetry(backend, RetryPolicy{
		MaxAttempts:    50,
		InitialBackoff: 20 * time.Millisecond,
		CallTimeout:    30 * time.Millisecond,
	})
	start := time.Now()
	err := r.WriteCells("a", []int64{0}, [][]byte{{1}})
	if err == nil || !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want deadline error wrapping ErrTransient", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Errorf("deadline did not bound the call: took %v", d)
	}
	if backend.seen >= 50 {
		t.Errorf("deadline did not stop attempts: %d", backend.seen)
	}
}

func TestRetryJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		backend := &flaky{Server: NewServer(), err: fmt.Errorf("%w: test", ErrTransient), failures: 5}
		_ = backend.Server.CreateArray("a", 4)
		var slept []time.Duration
		r := WithRetry(backend, fastPolicy(RetryPolicy{MaxAttempts: 6, Seed: 11}, &slept))
		if err := r.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
			t.Fatal(err)
		}
		return slept
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sleep counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("jittered backoff %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestRetryFullJitterBounds: the default full-jitter mode draws every delay
// from [0, ceiling] where the ceiling follows the exponential schedule.
func TestRetryFullJitterBounds(t *testing.T) {
	backend := &flaky{Server: NewServer(), err: fmt.Errorf("%w: test", ErrTransient), failures: 5}
	_ = backend.Server.CreateArray("a", 4)
	var slept []time.Duration
	p := fastPolicy(RetryPolicy{MaxAttempts: 6, Seed: 7}, &slept)
	r := WithRetry(backend, p)
	if err := r.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 5 {
		t.Fatalf("slept %d times, want 5", len(slept))
	}
	ceiling := 5 * time.Millisecond // InitialBackoff default
	for i, d := range slept {
		if d < 0 || d > ceiling {
			t.Errorf("backoff %d = %v outside [0, %v]", i, d, ceiling)
		}
		if ceiling < time.Second { // MaxBackoff default
			ceiling *= 2
		}
	}
}

// TestRetryFullJitterDecorrelates: two clients built with the default
// (unseeded) policy must not share a retry schedule — synchronized storms
// are exactly what full jitter exists to prevent.
func TestRetryFullJitterDecorrelates(t *testing.T) {
	run := func() []time.Duration {
		backend := &flaky{Server: NewServer(), err: fmt.Errorf("%w: test", ErrTransient), failures: 8}
		_ = backend.Server.CreateArray("a", 4)
		var slept []time.Duration
		r := WithRetry(backend, fastPolicy(RetryPolicy{MaxAttempts: 9}, &slept))
		if err := r.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
			t.Fatal(err)
		}
		return slept
	}
	a, b := run(), run()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Errorf("two unseeded clients drew identical schedules: %v", a)
	}
}

func TestDefaultRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrUnknownObject, false},
		{fmt.Errorf("wrap: %w", ErrObjectExists), false},
		{ErrOutOfRange, false},
		{ErrBadPath, false},
		{ErrTransient, true},
		{fmt.Errorf("transport: %w: dial refused", ErrUnavailable), true},
		{errors.New("some application error"), false},
	}
	for _, c := range cases {
		if got := DefaultRetryable(c.err); got != c.want {
			t.Errorf("DefaultRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetryOverFaults: the two layers compose — a fault injector at 30%
// under a retry layer yields a fully reliable service.
func TestRetryOverFaults(t *testing.T) {
	faulty := WithFaults(NewServer(), FaultConfig{Seed: 5, ErrorRate: 0.3})
	r := WithRetry(faulty, fastPolicy(RetryPolicy{MaxAttempts: 20}, nil))
	if err := r.CreateArray("a", 16); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := r.WriteCells("a", []int64{int64(i % 16)}, [][]byte{{byte(i)}}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := r.ReadCells("a", []int64{int64(i % 16)})
		if err != nil || got[0][0] != byte(i) {
			t.Fatalf("read %d = %v, %v", i, got, err)
		}
	}
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultsInjected == 0 || st.Retries == 0 {
		t.Errorf("counters not surfaced: %+v", st)
	}
	if st.Retries < st.FaultsInjected {
		t.Errorf("retries (%d) < injected faults (%d): some fault was never retried", st.Retries, st.FaultsInjected)
	}
}
