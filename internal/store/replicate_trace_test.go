package store

import (
	"strings"
	"testing"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// openReplicated opens a durable server in a temp dir and wraps it in
// replication with the given config extras applied.
func openReplicated(t *testing.T, cfg ReplicationConfig) *ReplicatedServer {
	t.Helper()
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replicated(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestRoleGaugesOnReplica: satellite check that replicas — not just the
// primary's ship() path — publish role, fence, and watermark gauges, and
// keep them fresh across apply, promotion, and deposition.
func TestRoleGaugesOnReplica(t *testing.T) {
	reg := telemetry.New()
	rep := openReplicated(t, ReplicationConfig{Primary: false, Metrics: reg})

	role := reg.Gauge("oblivfd_replication_role")
	fence := reg.Gauge("oblivfd_replication_fence")
	watermark := reg.Gauge("oblivfd_replication_watermark")
	if role.Value() != 0 {
		t.Fatalf("replica role gauge = %d, want 0", role.Value())
	}
	if fence.Value() != 1 {
		t.Fatalf("initial fence gauge = %d, want 1", fence.Value())
	}

	// Applying a shipped frame advances the watermark gauge.
	frame, err := encodeWALRecord(&walRecord{Op: walCreateArray, Name: "a", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rep.ApplyReplicated(1, 0, [][]byte{frame}); err != nil {
		t.Fatal(err)
	}
	if watermark.Value() != 1 {
		t.Fatalf("watermark gauge = %d, want 1", watermark.Value())
	}

	// Promotion flips the role gauge and bumps the fence gauge.
	if _, err := rep.Promote(5); err != nil {
		t.Fatal(err)
	}
	if role.Value() != 1 {
		t.Fatalf("promoted role gauge = %d, want 1", role.Value())
	}
	if fence.Value() != 5 {
		t.Fatalf("promoted fence gauge = %d, want 5", fence.Value())
	}

	// A higher fence from a successor deposes this server: role drops back.
	if err := rep.ObserveFence(9); err != nil {
		t.Fatal(err)
	}
	if role.Value() != 0 {
		t.Fatalf("deposed role gauge = %d, want 0", role.Value())
	}
	if fence.Value() != 9 {
		t.Fatalf("deposed fence gauge = %d, want 9", fence.Value())
	}
}

// TestPrimaryRoleGauge: the primary publishes role=1 from construction and
// drops to 0 when fenced out by a successor.
func TestPrimaryRoleGauge(t *testing.T) {
	reg := telemetry.New()
	p := openReplicated(t, ReplicationConfig{Primary: true, Metrics: reg})
	role := reg.Gauge("oblivfd_replication_role")
	if role.Value() != 1 {
		t.Fatalf("primary role gauge = %d, want 1", role.Value())
	}
	if err := p.ObserveFence(3); err != nil {
		t.Fatal(err)
	}
	if role.Value() != 0 {
		t.Fatalf("fenced-out primary role gauge = %d, want 0", role.Value())
	}
	if reg.Gauge("oblivfd_replication_fence").Value() != 3 {
		t.Fatalf("fence gauge = %d, want 3", reg.Gauge("oblivfd_replication_fence").Value())
	}
}

// TestReplicationShipSpans: a traced primary records one repl/ship span per
// peer shipment and replicas record repl/apply spans, so a merged artifact
// shows where replication time goes.
func TestReplicationShipSpans(t *testing.T) {
	rtr := otrace.New(otrace.Config{Service: "replica", SampleEvery: 1})
	replica := openReplicated(t, ReplicationConfig{Primary: false, Trace: rtr})

	ptr := otrace.New(otrace.Config{Service: "primary", SampleEvery: 1})
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Replicated(d, ReplicationConfig{
		Primary:     true,
		Peers:       []string{"replica-0"},
		RedialEvery: 1,
		Trace:       ptr,
		Dial:        func(string) (ReplicaConn, error) { return loopConn{replica}, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	if err := p.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}

	ships := 0
	for _, r := range ptr.Records() {
		if strings.HasPrefix(r.Name, "repl/ship:") {
			if r.Name != "repl/ship:replica-0" {
				t.Fatalf("ship span names peer %q", r.Name)
			}
			ships++
		}
	}
	if ships == 0 {
		t.Fatalf("primary recorded no repl/ship spans: %v", recordNames(ptr.Records()))
	}
	applies := 0
	for _, r := range rtr.Records() {
		if r.Name == "repl/apply" {
			applies++
		}
	}
	if applies == 0 {
		t.Fatalf("replica recorded no repl/apply spans: %v", recordNames(rtr.Records()))
	}
}

func recordNames(recs []otrace.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}
