package store

import (
	"errors"
	"testing"
	"time"
)

// driveFaults runs a fixed call sequence and records which calls failed.
func driveFaults(t *testing.T, f *FaultService) []bool {
	t.Helper()
	var schedule []bool
	record := func(err error) {
		if err != nil && !errors.Is(err, ErrTransient) {
			t.Fatalf("injected error is not ErrTransient: %v", err)
		}
		schedule = append(schedule, err != nil)
	}
	record(f.CreateArray("a", 8))
	for i := 0; i < 200; i++ {
		record(f.WriteCells("a", []int64{int64(i % 8)}, [][]byte{{byte(i)}}))
		_, err := f.ReadCells("a", []int64{int64(i % 8)})
		record(err)
	}
	return schedule
}

func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := FaultConfig{Seed: 7, ErrorRate: 0.2}
	a := driveFaults(t, WithFaults(NewServer(), cfg))
	b := driveFaults(t, WithFaults(NewServer(), cfg))
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at call %d", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected at 20% rate over 401 calls")
	}
	// A different seed must give a different schedule (overwhelmingly).
	c := driveFaults(t, WithFaults(NewServer(), FaultConfig{Seed: 8, ErrorRate: 0.2}))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical schedules")
	}
}

func TestFaultsCounted(t *testing.T) {
	f := WithFaults(NewServer(), FaultConfig{Seed: 1, ErrorRate: 0.5})
	injected := int64(0)
	for {
		err := f.CreateArray("a", 4)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrTransient) {
			t.Fatal(err)
		}
		injected++ // creates fail before applying, so plain retry is safe
	}
	for i := 0; i < 100; i++ {
		if _, err := f.ArrayLen("a"); err != nil {
			injected++
		}
	}
	if got := f.Injected(); got != injected {
		t.Errorf("Injected() = %d, observed %d failing calls", got, injected)
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FaultsInjected != f.Injected() {
		t.Errorf("Stats.FaultsInjected = %d, want %d", st.FaultsInjected, f.Injected())
	}
	if st.FaultsInjected == 0 {
		t.Error("no faults injected at 50% rate")
	}
}

func TestFaultSpikesDelay(t *testing.T) {
	f := WithFaults(NewServer(), FaultConfig{Seed: 3, SpikeRate: 1, Spike: 2 * time.Millisecond})
	if err := f.CreateArray("a", 1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := f.ArrayLen("a"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Errorf("spike not applied: call took %v", d)
	}
	if f.Spikes() < 2 {
		t.Errorf("Spikes() = %d, want >= 2", f.Spikes())
	}
}

// TestFaultFailAfterApplies: a fail-after error still applies the write, so
// a retry of the identical write is a no-op — the idempotency the retry
// layer relies on.
func TestFaultFailAfterApplies(t *testing.T) {
	srv := NewServer()
	f := WithFaults(srv, FaultConfig{Seed: 2, ErrorRate: 1}) // every call fails
	_ = f.CreateArray("a", 2)                                // fail-before only (non-idempotent op)
	if _, err := srv.ArrayLen("a"); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("CreateArray applied despite fail-before-only rule: %v", err)
	}
	if err := srv.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	// Drive writes until one fail-after lands, then check it applied.
	applied := false
	for i := 0; i < 50 && !applied; i++ {
		err := f.WriteCells("a", []int64{0}, [][]byte{{0xAB}})
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("expected injected error, got %v", err)
		}
		got, rerr := srv.ReadCells("a", []int64{0})
		if rerr != nil {
			t.Fatal(rerr)
		}
		applied = len(got[0]) == 1 && got[0][0] == 0xAB
	}
	if !applied {
		t.Error("no fail-after write applied in 50 attempts at 100% error rate")
	}
}
