package store

import "sync/atomic"

// Batching lets concurrent protocol workers coalesce independent cell
// operations into one logical round trip. A batch is a flat list of
// ReadCells/WriteCells operations; the semantics are exactly "apply the ops
// in order", so a batch is observationally identical to issuing its ops one
// by one — only the number of wire round trips (and injected latency
// delays) changes.
//
// Leakage note: the server sees the same per-cell accesses either way — the
// in-memory Server records one trace event per cell index regardless of
// call granularity — so batching changes timing, never the access trace.

// BatchOp is one cell operation inside a batch. Write selects WriteCells
// (Cts carries the ciphertexts); otherwise the op is a ReadCells.
type BatchOp struct {
	Write bool
	Name  string
	Idx   []int64
	Cts   [][]byte // writes only
}

// Batcher is the optional extension a Service implements when it can apply
// a whole batch in one round trip. Results are per-op: reads return their
// ciphertexts, writes return nil. Decorators that cannot preserve their
// semantics across a fused call (e.g. the per-op fault injector) simply
// don't implement it, and DoBatch degrades to per-op calls through them.
type Batcher interface {
	Batch(ops []BatchOp) ([][][]byte, error)
}

// DoBatch applies ops through svc, fused into one call when svc implements
// Batcher and op by op otherwise. The first error aborts the batch;
// previously applied writes remain applied (same as serial issuance).
func DoBatch(svc Service, ops []BatchOp) ([][][]byte, error) {
	if b, ok := svc.(Batcher); ok {
		return b.Batch(ops)
	}
	return batchFallback(svc, ops)
}

// batchFallback applies ops one by one through svc.
func batchFallback(svc Service, ops []BatchOp) ([][][]byte, error) {
	out := make([][][]byte, len(ops))
	for i, op := range ops {
		if op.Write {
			if err := svc.WriteCells(op.Name, op.Idx, op.Cts); err != nil {
				return nil, err
			}
			continue
		}
		cts, err := svc.ReadCells(op.Name, op.Idx)
		if err != nil {
			return nil, err
		}
		out[i] = cts
	}
	return out, nil
}

// Batch implements Batcher for the in-memory server: ops apply in order
// under the server's own per-call locking. Trace events are recorded per
// cell index by ReadCells/WriteCells exactly as for unbatched calls.
func (s *Server) Batch(ops []BatchOp) ([][][]byte, error) {
	return batchFallback(s, ops)
}

// RoundCounter counts logical storage round trips: every Service call is
// one round, and a fused Batch is one round regardless of how many ops it
// carries. The scaling benchmark uses it to report how many rounds (and
// hence how much injected RTT) a discovery run pays.
type RoundCounter struct {
	svc    Service
	rounds atomic.Int64
}

// WithRoundCounter wraps svc with a round counter; safe for concurrent
// workers.
func WithRoundCounter(svc Service) *RoundCounter { return &RoundCounter{svc: svc} }

// Rounds returns the number of logical round trips counted so far.
func (c *RoundCounter) Rounds() int64 { return c.rounds.Load() }

// Batch implements Batcher. If the inner service cannot fuse the batch,
// each op is its own round and is counted as such — the counter never
// reports fewer rounds than the backend actually served.
func (c *RoundCounter) Batch(ops []BatchOp) ([][][]byte, error) {
	if b, ok := c.svc.(Batcher); ok {
		c.rounds.Add(1)
		return b.Batch(ops)
	}
	return batchFallback(c, ops)
}

// CreateArray implements Service.
func (c *RoundCounter) CreateArray(name string, n int) error {
	c.rounds.Add(1)
	return c.svc.CreateArray(name, n)
}

// ArrayLen implements Service.
func (c *RoundCounter) ArrayLen(name string) (int, error) {
	c.rounds.Add(1)
	return c.svc.ArrayLen(name)
}

// ReadCells implements Service.
func (c *RoundCounter) ReadCells(name string, idx []int64) ([][]byte, error) {
	c.rounds.Add(1)
	return c.svc.ReadCells(name, idx)
}

// WriteCells implements Service.
func (c *RoundCounter) WriteCells(name string, idx []int64, cts [][]byte) error {
	c.rounds.Add(1)
	return c.svc.WriteCells(name, idx, cts)
}

// CreateTree implements Service.
func (c *RoundCounter) CreateTree(name string, levels, slotsPerBucket int) error {
	c.rounds.Add(1)
	return c.svc.CreateTree(name, levels, slotsPerBucket)
}

// ReadPath implements Service.
func (c *RoundCounter) ReadPath(name string, leaf uint32) ([][]byte, error) {
	c.rounds.Add(1)
	return c.svc.ReadPath(name, leaf)
}

// WritePath implements Service.
func (c *RoundCounter) WritePath(name string, leaf uint32, slots [][]byte) error {
	c.rounds.Add(1)
	return c.svc.WritePath(name, leaf, slots)
}

// WriteBuckets implements Service.
func (c *RoundCounter) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	c.rounds.Add(1)
	return c.svc.WriteBuckets(name, bucketStart, slots)
}

// Delete implements Service.
func (c *RoundCounter) Delete(name string) error {
	c.rounds.Add(1)
	return c.svc.Delete(name)
}

// Reveal implements Service.
func (c *RoundCounter) Reveal(tag string, value int64) error {
	c.rounds.Add(1)
	return c.svc.Reveal(tag, value)
}

// Checkpoint implements Service.
func (c *RoundCounter) Checkpoint(epoch int64) error {
	c.rounds.Add(1)
	return c.svc.Checkpoint(epoch)
}

// Stats implements Service.
func (c *RoundCounter) Stats() (Stats, error) {
	c.rounds.Add(1)
	return c.svc.Stats()
}

var (
	_ Service = (*RoundCounter)(nil)
	_ Batcher = (*RoundCounter)(nil)
	_ Batcher = (*Server)(nil)
)
