package store

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// ErrRetryBudgetExhausted is returned once WithRetry has spent its total
// retry budget; it signals a systemically failing backend rather than a
// transient blip.
var ErrRetryBudgetExhausted = errors.New("store: retry budget exhausted")

// JitterMode selects how WithRetry randomizes its exponential backoff.
type JitterMode int

const (
	// JitterFull (the default): each delay is drawn uniformly from
	// [0, ceiling], the "full jitter" strategy — maximum decorrelation
	// between clients whose retry clocks started at the same failure.
	JitterFull JitterMode = iota
	// JitterPartial: the legacy ±(JitterFrac/2)·ceiling band around the
	// exponential schedule.
	JitterPartial
	// JitterNone: the bare exponential schedule.
	JitterNone
)

// RetryPolicy parameterizes WithRetry. The zero value of any field selects
// the default noted on it.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per call, including the first
	// (default 5).
	MaxAttempts int
	// InitialBackoff is the delay before the first retry (default 5ms);
	// each further retry doubles it (Multiplier) up to MaxBackoff.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 1s).
	MaxBackoff time.Duration
	// Multiplier scales the backoff between attempts (default 2).
	Multiplier float64
	// Jitter selects the backoff randomization strategy. The default,
	// JitterFull, draws each delay uniformly from [0, ceiling] where the
	// ceiling grows exponentially — the strategy that best decorrelates
	// retry storms: after a failover or a burst of ErrOverloaded shedding,
	// every client's clock restarts at the same instant, and partial jitter
	// keeps them marching in near-lockstep while full jitter spreads them
	// across the whole window. JitterPartial preserves the legacy
	// ±(JitterFrac/2)·ceiling behavior (monotone, tightly predictable
	// delays); JitterNone disables jitter for exact-schedule tests.
	Jitter JitterMode
	// JitterFrac sizes JitterPartial's band: each backoff is randomized by
	// ±(JitterFrac/2)·backoff (default 0.2). Ignored by the other modes.
	JitterFrac float64
	// CallTimeout is the deadline for one logical call including all its
	// retries; 0 means no deadline.
	CallTimeout time.Duration
	// Budget bounds the total retries across the service's lifetime;
	// 0 means unlimited. A run that burns its budget fails fast with
	// ErrRetryBudgetExhausted instead of limping through a dead backend.
	Budget int64
	// Seed fixes the jitter schedule for reproducible tests. 0 (the
	// default) seeds from the process-global generator, so independent
	// clients draw independent schedules — the whole point of jitter.
	Seed int64
	// Retryable classifies errors; nil selects DefaultRetryable.
	Retryable func(error) bool
	// Metrics, when set, backs the retry counter with the shared registry
	// series oblivfd_retries_total instead of a per-instance counter.
	Metrics *telemetry.Registry

	// sleep is a test hook; nil means time.Sleep.
	sleep func(time.Duration)
}

// DefaultRetryable reports whether an error is worth retrying: transient
// failures, connection-level failures, and load shedding are; the store's
// semantic errors (unknown object, exists, out of range, bad path) are not,
// because repeating the identical request cannot change a semantic verdict.
func DefaultRetryable(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, ErrUnknownObject), errors.Is(err, ErrObjectExists),
		errors.Is(err, ErrOutOfRange), errors.Is(err, ErrBadPath):
		return false
	case errors.Is(err, ErrUnauthorized):
		// Fatal: the handshake was refused on its merits (bad token or
		// malformed database name); re-presenting the same credentials
		// cannot change the verdict.
		return false
	case errors.Is(err, ErrIntegrity),
		errors.Is(err, ErrServerKilled), errors.Is(err, ErrNoSuchEpoch):
		// Fatal: failed verification (which covers ErrCorruptSnapshot and
		// ErrCorruptWAL — both match ErrIntegrity), corruption, and a dead
		// process cannot be retried away — recovery is an operator action,
		// not a request-level one. Re-reading a tampered or rotted block
		// returns the same wrong bytes.
		return false
	case errors.Is(err, ErrDiskFull):
		// Degraded read-only mode: the server applied nothing durable and
		// shed the write for lack of disk space. The condition clears when
		// space frees (compaction, pruning, operator action), so backing
		// off and retrying is correct — unlike ErrIntegrity, nothing is
		// wrong with the data.
		return true
	case errors.Is(err, ErrOverloaded):
		// Load shedding: the server refused the work before executing it,
		// so a retry after backoff is exactly what admission control wants
		// the client to do.
		return true
	case errors.Is(err, ErrTransient), errors.Is(err, ErrUnavailable):
		return true
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE),
		errors.Is(err, syscall.ECONNREFUSED):
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

// RetryService is a Service decorator that re-issues failed calls with
// exponential backoff, jitter, per-call deadlines, and a total retry
// budget.
//
// Protocol safety: every write in the Service interface is idempotent — it
// stores the exact ciphertexts carried by the request, so applying a write
// twice leaves the same state as applying it once. Creates and deletes are
// not idempotent at the server, but a retried create that answers "already
// exists" (or a retried delete answering "unknown object") after a
// transient failure can only mean the earlier attempt applied — so the
// retry layer reconciles those verdicts to success. That reasoning is
// scoped to the session's own database namespace: on a multi-tenant server
// every object name a session touches is prefixed with its database (see
// Namespaced), so no other tenant can create or delete the objects this
// client names, and within one namespace there is still a single writer.
// Two clients sharing one database namespace would break the
// reconciliation, which is why the transport binds each session to exactly
// one database and documents one-writer-per-database as the deployment
// contract.
//
// Leakage note: a retried access appears to the persistent adversary as one
// extra access to the same object with fresh ciphertexts. Since every
// protocol access is already re-encrypted and its position is independent
// of the data (the obliviousness invariant), a duplicate is
// indistinguishable from the protocol simply being one access longer; the
// adversary additionally learns that a fault occurred and when, which is a
// property of the network, not of the database. The leakage profile
// L(DB) = {Size(DB), FD(DB)} is unchanged.
type RetryService struct {
	svc    Service
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand

	// retries is registry-backed (shared) when policy.Metrics is set,
	// standalone otherwise; shared records which.
	retries *telemetry.Counter
	shared  bool
	spent   atomic.Int64 // against policy.Budget
}

// WithRetry wraps a Service with the given retry policy.
func WithRetry(svc Service, policy RetryPolicy) *RetryService {
	if policy.MaxAttempts <= 0 {
		policy.MaxAttempts = 5
	}
	if policy.InitialBackoff <= 0 {
		policy.InitialBackoff = 5 * time.Millisecond
	}
	if policy.MaxBackoff <= 0 {
		policy.MaxBackoff = time.Second
	}
	if policy.Multiplier <= 1 {
		policy.Multiplier = 2
	}
	if policy.JitterFrac <= 0 {
		policy.JitterFrac = 0.2
	}
	if policy.Retryable == nil {
		policy.Retryable = DefaultRetryable
	}
	if policy.sleep == nil {
		policy.sleep = time.Sleep
	}
	seed := policy.Seed
	if seed == 0 {
		seed = rand.Int63() // independent schedule per client (see Seed)
	}
	rs := &RetryService{svc: svc, policy: policy, rng: rand.New(rand.NewSource(seed))}
	if policy.Metrics != nil {
		rs.retries = policy.Metrics.Counter("oblivfd_retries_total")
		rs.shared = true
	} else {
		rs.retries = telemetry.NewCounter()
	}
	return rs
}

// Retries returns the number of re-attempts performed so far. With a
// Metrics registry configured this is the stack-wide total.
func (r *RetryService) Retries() int64 { return r.retries.Value() }

// backoff computes the jittered delay before retry number n (1-based). The
// exponential schedule sets the ceiling; Jitter decides where under it the
// delay lands.
func (r *RetryService) backoff(n int) time.Duration {
	d := float64(r.policy.InitialBackoff)
	for i := 1; i < n; i++ {
		d *= r.policy.Multiplier
		if d >= float64(r.policy.MaxBackoff) {
			d = float64(r.policy.MaxBackoff)
			break
		}
	}
	switch r.policy.Jitter {
	case JitterFull:
		r.mu.Lock()
		d *= r.rng.Float64()
		r.mu.Unlock()
	case JitterPartial:
		r.mu.Lock()
		jitter := (r.rng.Float64() - 0.5) * r.policy.JitterFrac * d
		r.mu.Unlock()
		d += jitter
	case JitterNone:
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// reconciled reports whether an error on a retried call proves the earlier
// attempt applied (see the type comment).
func reconciled(appliedErr error, err error) bool {
	return appliedErr != nil && errors.Is(err, appliedErr)
}

// do runs one logical call. appliedErr, when non-nil, is the sentinel that
// a retry of this operation returns once the operation has already applied.
func (r *RetryService) do(op string, appliedErr error, fn func() error) error {
	var deadline time.Time
	if r.policy.CallTimeout > 0 {
		deadline = time.Now().Add(r.policy.CallTimeout)
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		if attempt > 1 && reconciled(appliedErr, err) {
			return nil
		}
		if !r.policy.Retryable(err) {
			return err
		}
		if attempt >= r.policy.MaxAttempts {
			return fmt.Errorf("store: %s failed after %d attempts: %w", op, attempt, err)
		}
		if r.policy.Budget > 0 && r.spent.Add(1) > r.policy.Budget {
			return fmt.Errorf("%w: %s: %v", ErrRetryBudgetExhausted, op, err)
		}
		wait := r.backoff(attempt)
		if !deadline.IsZero() && time.Now().Add(wait).After(deadline) {
			return fmt.Errorf("store: %s deadline exceeded after %d attempts: %w", op, attempt, err)
		}
		r.policy.sleep(wait)
		r.retries.Inc()
	}
}

// CreateArray implements Service.
func (r *RetryService) CreateArray(name string, n int) error {
	return r.do("CreateArray", ErrObjectExists, func() error { return r.svc.CreateArray(name, n) })
}

// ArrayLen implements Service.
func (r *RetryService) ArrayLen(name string) (n int, err error) {
	err = r.do("ArrayLen", nil, func() error { n, err = r.svc.ArrayLen(name); return err })
	return n, err
}

// ReadCells implements Service.
func (r *RetryService) ReadCells(name string, idx []int64) (cts [][]byte, err error) {
	err = r.do("ReadCells", nil, func() error { cts, err = r.svc.ReadCells(name, idx); return err })
	if err != nil {
		return nil, err
	}
	return cts, nil
}

// WriteCells implements Service.
func (r *RetryService) WriteCells(name string, idx []int64, cts [][]byte) error {
	return r.do("WriteCells", nil, func() error { return r.svc.WriteCells(name, idx, cts) })
}

// CreateTree implements Service.
func (r *RetryService) CreateTree(name string, levels, slotsPerBucket int) error {
	return r.do("CreateTree", ErrObjectExists, func() error { return r.svc.CreateTree(name, levels, slotsPerBucket) })
}

// ReadPath implements Service.
func (r *RetryService) ReadPath(name string, leaf uint32) (cts [][]byte, err error) {
	err = r.do("ReadPath", nil, func() error { cts, err = r.svc.ReadPath(name, leaf); return err })
	if err != nil {
		return nil, err
	}
	return cts, nil
}

// WritePath implements Service.
func (r *RetryService) WritePath(name string, leaf uint32, slots [][]byte) error {
	return r.do("WritePath", nil, func() error { return r.svc.WritePath(name, leaf, slots) })
}

// WriteBuckets implements Service.
func (r *RetryService) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	return r.do("WriteBuckets", nil, func() error { return r.svc.WriteBuckets(name, bucketStart, slots) })
}

// Delete implements Service.
func (r *RetryService) Delete(name string) error {
	return r.do("Delete", ErrUnknownObject, func() error { return r.svc.Delete(name) })
}

// Reveal implements Service. A retried Reveal may append a duplicate entry
// to the public log; the value is already public, so nothing new leaks.
func (r *RetryService) Reveal(tag string, value int64) error {
	return r.do("Reveal", nil, func() error { return r.svc.Reveal(tag, value) })
}

// Checkpoint implements Service. Marking the same epoch twice is harmless
// (the durable backend just snapshots again), so retries are safe.
func (r *RetryService) Checkpoint(epoch int64) error {
	return r.do("Checkpoint", nil, func() error { return r.svc.Checkpoint(epoch) })
}

// Stats implements Service, adding the retry count to the report. With a
// shared registry counter the value is the stack-wide total, so it
// replaces rather than accumulates (see FaultService.Stats).
func (r *RetryService) Stats() (Stats, error) {
	var st Stats
	err := r.do("Stats", nil, func() error { var e error; st, e = r.svc.Stats(); return e })
	if err != nil {
		return Stats{}, err
	}
	if r.shared {
		st.Retries = r.retries.Value()
	} else {
		st.Retries += r.retries.Value()
	}
	return st, nil
}

// Batch implements Batcher. A failed batch is retried whole: every op in a
// batch is a cell read or an idempotent cell write, so re-applying a
// partially applied batch converges to the same state as one clean pass.
func (r *RetryService) Batch(ops []BatchOp) (res [][][]byte, err error) {
	err = r.do("Batch", nil, func() error { res, err = DoBatch(r.svc, ops); return err })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CheckpointNS implements NamespaceService with the same retry semantics as
// Checkpoint.
func (r *RetryService) CheckpointNS(db string, epoch int64) error {
	return r.do("Checkpoint", nil, func() error { return CheckpointIn(r.svc, db, epoch) })
}

// StatsNS implements NamespaceService, adding the retry count like Stats.
func (r *RetryService) StatsNS(db string) (Stats, error) {
	var st Stats
	err := r.do("Stats", nil, func() error { var e error; st, e = StatsIn(r.svc, db); return e })
	if err != nil {
		return Stats{}, err
	}
	if r.shared {
		st.Retries = r.retries.Value()
	} else {
		st.Retries += r.retries.Value()
	}
	return st, nil
}

var (
	_ Service          = (*RetryService)(nil)
	_ Batcher          = (*RetryService)(nil)
	_ NamespaceService = (*RetryService)(nil)
)
