package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// repairLoopConn is loopConn plus the repair-donor RPC, standing in for the
// transport's kindRepair round trip.
type repairLoopConn struct{ loopConn }

func (c repairLoopConn) FetchRepair(fence int64, name string, isTree bool, idx []int64) ([][]byte, error) {
	return c.r.FetchRepair(fence, name, isTree, idx)
}

// newRepairPrimary is newPrimary with repair-capable peer connections.
func newRepairPrimary(t *testing.T, replicas ...*ReplicatedServer) *ReplicatedServer {
	t.Helper()
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var peers []string
	byAddr := map[string]*ReplicatedServer{}
	for i, rep := range replicas {
		addr := string(rune('a' + i))
		peers = append(peers, addr)
		byAddr[addr] = rep
	}
	p, err := Replicated(d, ReplicationConfig{
		Primary:     true,
		Peers:       peers,
		RedialEvery: 1,
		Dial: func(addr string) (ReplicaConn, error) {
			return repairLoopConn{loopConn{byAddr[addr]}}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestCorruptCellFailsLoudlyWithoutReplicas pins the PR 4 contract with
// scrubbing in the picture: absent any healthy copy, bit rot is detected,
// counted, and surfaced as fatal ErrIntegrity — never silently served and
// never silently "repaired" from nothing.
func TestCorruptCellFailsLoudlyWithoutReplicas(t *testing.T) {
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mutateSample(t, d)
	if err := d.CorruptStored("a", false, 0, 3); err != nil {
		t.Fatal(err)
	}

	_, rerr := d.ReadCells("a", []int64{0})
	if !errors.Is(rerr, ErrIntegrity) {
		t.Fatalf("read of rotted cell = %v, want ErrIntegrity", rerr)
	}
	var cce *CorruptCellsError
	if !errors.As(rerr, &cce) || cce.Object != "a" || cce.Tree || len(cce.Idx) != 1 || cce.Idx[0] != 0 {
		t.Fatalf("corrupt-cell detail = %+v", cce)
	}

	sc := NewScrubber(d, nil, ScrubConfig{})
	if err := sc.SweepOnce(); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sc.Corruptions() == 0 {
		t.Error("scrub found no corruption")
	}
	if sc.Repairs() != 0 || sc.RepairFailures() == 0 {
		t.Errorf("repairs = %d, failures = %d; want 0 repairs and >0 failures without peers",
			sc.Repairs(), sc.RepairFailures())
	}
	// Detection must not have mutated anything: the read still fails loudly.
	if _, err := d.ReadCells("a", []int64{0}); !errors.Is(err, ErrIntegrity) {
		t.Errorf("read after detect-only sweep = %v, want ErrIntegrity", err)
	}
}

// TestScrubRepairsPrimaryFromReplica: bit rot in a flat array and an ORAM
// tree on the primary is found by a sweep, healed with verified bytes from
// the replica, logged (so it survives restart), and shipped (so the replica's
// stream position advances like any write).
func TestScrubRepairsPrimaryFromReplica(t *testing.T) {
	replica := newReplica(t)
	primary := newRepairPrimary(t, replica)
	mutateSample(t, primary)

	if err := primary.Durable().CorruptStored("a", false, 3, 5); err != nil {
		t.Fatal(err)
	}
	if err := primary.Durable().CorruptStored("t", true, 0, 1); err != nil {
		t.Fatal(err)
	}
	wmBefore := replica.Watermark()

	sc := NewScrubber(primary.Durable(), primary, ScrubConfig{})
	if err := sc.SweepOnce(); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if got := sc.Corruptions(); got < 2 {
		t.Errorf("corruptions = %d, want >= 2 (array + tree)", got)
	}
	if got := sc.Repairs(); got < 2 {
		t.Errorf("scrub repairs = %d, want >= 2", got)
	}
	if got := primary.Repairs(); got < 2 {
		t.Errorf("cells repaired = %d, want >= 2", got)
	}
	if sc.RepairFailures() != 0 {
		t.Errorf("repair failures = %d, want 0", sc.RepairFailures())
	}
	checkSample(t, primary.Durable())
	// Each repair ships as one stream record.
	if got := replica.Watermark() - wmBefore; got < 2 {
		t.Errorf("replica watermark advanced %d, want >= 2 (repairs ship)", got)
	}

	// The heal is a WAL record: a restart replays it and stays clean.
	dir := primary.Dir()
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	checkSample(t, d2)
	if bad, _, err := d2.VerifyStored("a", 0, 4); err != nil || len(bad) != 0 {
		t.Errorf("verify after reopen: bad=%v err=%v", bad, err)
	}
}

// TestForegroundReadRepairs: a client read that trips over rot on a
// replicated primary is healed in-line and succeeds — the caller never sees
// ErrIntegrity when a healthy copy exists.
func TestForegroundReadRepairs(t *testing.T) {
	replica := newReplica(t)
	primary := newRepairPrimary(t, replica)
	mutateSample(t, primary)

	if err := primary.Durable().CorruptStored("a", false, 0, 2); err != nil {
		t.Fatal(err)
	}
	got, err := primary.ReadCells("a", []int64{0})
	if err != nil {
		t.Fatalf("read across rot = %v, want transparent repair", err)
	}
	if !bytes.Equal(got[0], []byte{1}) {
		t.Fatalf("repaired cell = %v, want [1]", got[0])
	}
	if primary.Repairs() == 0 {
		t.Error("no repair counted for the foreground read")
	}

	if err := primary.Durable().CorruptStored("t", true, 4, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.ReadPath("t", 2); err != nil {
		t.Fatalf("path read across rot = %v, want transparent repair", err)
	}
}

// TestBatchReadRepairsMidBatch: rot hit by a read inside a Batch heals
// without breaking the batch or the replication stream order.
func TestBatchReadRepairsMidBatch(t *testing.T) {
	replica := newReplica(t)
	primary := newRepairPrimary(t, replica)
	mutateSample(t, primary)

	if err := primary.Durable().CorruptStored("a", false, 0, 1); err != nil {
		t.Fatal(err)
	}
	out, err := primary.Batch([]BatchOp{
		{Write: true, Name: "a", Idx: []int64{1}, Cts: [][]byte{{42}}},
		{Name: "a", Idx: []int64{0, 1}},
	})
	if err != nil {
		t.Fatalf("batch across rot = %v", err)
	}
	if !bytes.Equal(out[1][0], []byte{1}) || !bytes.Equal(out[1][1], []byte{42}) {
		t.Fatalf("batch read = %v", out[1])
	}
	// Replica converged: the pre-repair write shipped before the repair.
	cts, err := replica.Durable().ReadCells("a", []int64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cts[0], []byte{1}) || !bytes.Equal(cts[1], []byte{42}) {
		t.Errorf("replica cells after mid-batch repair = %v", cts)
	}
}

// TestReplicaScrubResyncs: a replica that finds its own rot marks itself
// diverged; the primary's next shipment trips the sequence check and pushes a
// full snapshot, replacing every corrupt byte.
func TestReplicaScrubResyncs(t *testing.T) {
	replica := newReplica(t)
	primary := newRepairPrimary(t, replica)
	mutateSample(t, primary)

	if err := replica.Durable().CorruptStored("a", false, 0, 4); err != nil {
		t.Fatal(err)
	}
	sc := NewScrubber(replica.Durable(), replica, ScrubConfig{})
	if err := sc.SweepOnce(); err != nil {
		t.Fatalf("replica sweep: %v", err)
	}
	if sc.Corruptions() == 0 || sc.Repairs() == 0 {
		t.Fatalf("corruptions=%d repairs=%d; want divergence marked", sc.Corruptions(), sc.Repairs())
	}
	if replica.Watermark() != -1 {
		t.Fatalf("watermark = %d, want -1 (diverged)", replica.Watermark())
	}

	// Any primary write now heals the replica wholesale via snapshot resync.
	if err := primary.WriteCells("a", []int64{2}, [][]byte{{7}}); err != nil {
		t.Fatal(err)
	}
	checkSample(t, replica.Durable())
	cts, err := replica.Durable().ReadCells("a", []int64{2})
	if err != nil || !bytes.Equal(cts[0], []byte{7}) {
		t.Errorf("replica cell after resync = %v, %v", cts, err)
	}
	if bad, _, err := replica.Durable().VerifyStored("a", 0, 4); err != nil || len(bad) != 0 {
		t.Errorf("replica still corrupt after resync: bad=%v err=%v", bad, err)
	}
}

// corruptFileByte flips one byte in the middle of a file on disk.
func corruptFileByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) == 0 {
		t.Fatalf("%s is empty", path)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrubHealsCorruptSnapshotFile: a rotted retained snapshot is detected
// by the sweep, superseded by a fresh snapshot written from live memory, and
// removed so recovery can never load it. No replica needed.
func TestScrubHealsCorruptSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots = %v, %v", snaps, err)
	}
	corruptFileByte(t, snaps[0])

	sc := NewScrubber(d, nil, ScrubConfig{})
	if err := sc.SweepOnce(); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sc.Corruptions() != 1 || sc.Repairs() != 1 {
		t.Fatalf("corruptions=%d repairs=%d, want 1/1", sc.Corruptions(), sc.Repairs())
	}
	if _, err := os.Stat(snaps[0]); !os.IsNotExist(err) {
		t.Errorf("corrupt snapshot still on disk: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	defer d2.Close()
	checkSample(t, d2)
}

// TestScrubHealsCorruptWAL: rot inside the log's acknowledged prefix is
// healed from live memory — a fresh snapshot compacts the log away — and a
// restart recovers the full state.
func TestScrubHealsCorruptWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	corruptFileByte(t, filepath.Join(dir, walName))

	sc := NewScrubber(d, nil, ScrubConfig{})
	if err := sc.SweepOnce(); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sc.Corruptions() != 1 || sc.Repairs() != 1 {
		t.Fatalf("corruptions=%d repairs=%d, want 1/1", sc.Corruptions(), sc.Repairs())
	}
	if size := d.WALSize(); size != 0 {
		t.Errorf("WAL size after heal = %d, want 0 (compacted)", size)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after heal: %v", err)
	}
	defer d2.Close()
	checkSample(t, d2)
}

// TestScrubCleanStoreFindsNothing: a sweep over healthy state is a no-op
// apart from the counters that say it looked.
func TestScrubCleanStoreFindsNothing(t *testing.T) {
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mutateSample(t, d)
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	sc := NewScrubber(d, nil, ScrubConfig{})
	if err := sc.SweepOnce(); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if sc.Corruptions() != 0 || sc.Repairs() != 0 || sc.RepairFailures() != 0 {
		t.Errorf("clean sweep: corruptions=%d repairs=%d failures=%d, want all 0",
			sc.Corruptions(), sc.Repairs(), sc.RepairFailures())
	}
	if sc.CellsScrubbed() == 0 || sc.Sweeps() != 1 {
		t.Errorf("cells=%d sweeps=%d; the sweep must actually have looked",
			sc.CellsScrubbed(), sc.Sweeps())
	}
}

// TestDiskFullDegradesToReadOnly: an injected ENOSPC window sheds writes
// with a retryable error while reads keep serving; when space frees, retried
// writes drain the parked log and the server leaves degraded mode on its own.
func TestDiskFullDegradesToReadOnly(t *testing.T) {
	ffs := NewFaultFS(nil, FaultFSConfig{Seed: 1, DiskFullAfterBytes: 300, DiskFullBytes: 3000})
	d, err := OpenDir(t.TempDir(), DurableOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.CreateArray("a", 64); err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte{9}, 64)
	var wrote int
	var full error
	for i := 0; i < 64 && full == nil; i++ {
		if err := d.WriteCells("a", []int64{int64(i)}, [][]byte{payload}); err != nil {
			full = err
		} else {
			wrote++
		}
	}
	if full == nil {
		t.Fatal("ENOSPC window never fired")
	}
	if !errors.Is(full, ErrDiskFull) {
		t.Fatalf("shed write = %v, want ErrDiskFull", full)
	}
	if !DefaultRetryable(full) {
		t.Error("ErrDiskFull must classify as retryable")
	}
	if errors.Is(full, ErrServerKilled) {
		t.Error("disk-full must not be fail-stop")
	}
	if !d.Degraded() {
		t.Error("server not degraded while shedding writes")
	}
	// Reads keep serving the acknowledged state.
	if cts, err := d.ReadCells("a", []int64{0}); err != nil || !bytes.Equal(cts[0], payload) {
		t.Fatalf("degraded read = %v, %v", cts, err)
	}

	// Retry until the window passes (attempted bytes advance it): the parked
	// record drains, the write lands, degraded clears.
	var recovered bool
	for i := 0; i < 500; i++ {
		if err := d.WriteCells("a", []int64{63}, [][]byte{payload}); err == nil {
			recovered = true
			break
		} else if !errors.Is(err, ErrDiskFull) {
			t.Fatalf("retry failed non-retryably: %v", err)
		}
	}
	if !recovered {
		t.Fatal("never recovered from the ENOSPC window")
	}
	if d.Degraded() {
		t.Error("still degraded after space recovered")
	}
	if ffs.DiskFullInjected() == 0 {
		t.Error("fault schedule never injected")
	}
	if cts, err := d.ReadCells("a", []int64{63}); err != nil || !bytes.Equal(cts[0], payload) {
		t.Errorf("post-recovery read = %v, %v", cts, err)
	}
}

// TestFsyncFailureIsFailStop: one failed fsync latches the server dead with
// a non-retryable ErrServerKilled — never ack-then-lose.
func TestFsyncFailureIsFailStop(t *testing.T) {
	ffs := NewFaultFS(nil, FaultFSConfig{FsyncFailAfter: 1})
	d, err := OpenDir(t.TempDir(), DurableOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	werr := d.CreateArray("a", 4)
	if !errors.Is(werr, ErrServerKilled) {
		t.Fatalf("write across fsync failure = %v, want ErrServerKilled", werr)
	}
	if DefaultRetryable(werr) {
		t.Error("fail-stop must not be retryable")
	}
	// Everything refuses until the directory is reopened.
	if _, err := d.ReadCells("a", []int64{0}); !errors.Is(err, ErrServerKilled) {
		t.Errorf("read after fail-stop = %v, want ErrServerKilled", err)
	}
	if err := d.WriteCells("a", []int64{0}, [][]byte{{1}}); !errors.Is(err, ErrServerKilled) {
		t.Errorf("write after fail-stop = %v, want ErrServerKilled", err)
	}
	if ffs.FsyncFailuresInjected() == 0 {
		t.Error("fault schedule never injected")
	}
}

// TestShortWriteRolledBackOnReopen: an ENOSPC that lands a torn prefix is
// rolled back by the WAL writer, so recovery replays exactly the acknowledged
// records — no torn tail, no phantom write.
func TestShortWriteRolledBackOnReopen(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FaultFSConfig{Seed: 7, DiskFullAfterBytes: 250, ShortWrites: true})
	d, err := OpenDir(dir, DurableOptions{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateArray("a", 32); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{5}, 48)
	acked := 0
	for i := 0; i < 32; i++ {
		if err := d.WriteCells("a", []int64{int64(i)}, [][]byte{payload}); err != nil {
			if !errors.Is(err, ErrDiskFull) {
				t.Fatalf("write %d = %v, want ErrDiskFull", i, err)
			}
			break
		}
		acked++
	}
	if acked == 0 || acked == 32 {
		t.Fatalf("acked = %d; the window must fire mid-sequence", acked)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen on the real filesystem: the torn prefix must be gone.
	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after short write: %v", err)
	}
	defer d2.Close()
	if info := d2.Recovery(); info.TornTail {
		t.Errorf("recovery found a torn tail: %+v (rollback failed)", info)
	} else if info.WALReplayed != acked+1 { // +1 for CreateArray
		t.Errorf("replayed %d records, want %d acked", info.WALReplayed, acked+1)
	}
	for i := 0; i < acked; i++ {
		cts, err := d2.ReadCells("a", []int64{int64(i)})
		if err != nil || !bytes.Equal(cts[0], payload) {
			t.Fatalf("acked cell %d lost: %v, %v", i, cts, err)
		}
	}
	// The refused write must NOT have survived.
	if cts, err := d2.ReadCells("a", []int64{int64(acked)}); err != nil || cts[0] != nil {
		t.Errorf("unacked cell present after recovery: %v, %v", cts, err)
	}
}

// TestScrubSweepRacesLiveTraffic is the satellite property test: continuous
// sweeps racing live writes and batches must never report a false positive —
// every "corruption" a scrubber finds on a healthy store is a bug in its
// snapshot of the world, not in the data. Run under -race.
func TestScrubSweepRacesLiveTraffic(t *testing.T) {
	replica := newReplica(t)
	primary := newRepairPrimary(t, replica)
	if err := primary.CreateArray("x", 128); err != nil {
		t.Fatal(err)
	}
	if err := primary.CreateTree("tt", 4, 2); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan error, 3)
	wg.Add(3)
	go func() { // single-cell writes
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			idx := int64(i % 128)
			if err := primary.WriteCells("x", []int64{idx}, [][]byte{{byte(i), byte(i >> 8)}}); err != nil {
				fail <- fmt.Errorf("write: %w", err)
				return
			}
		}
	}()
	go func() { // batches mixing reads and writes
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			idx := int64((i * 7) % 128)
			if _, err := primary.Batch([]BatchOp{
				{Write: true, Name: "x", Idx: []int64{idx}, Cts: [][]byte{{byte(i)}}},
				{Name: "x", Idx: []int64{idx}},
			}); err != nil {
				fail <- fmt.Errorf("batch: %w", err)
				return
			}
		}
	}()
	go func() { // ORAM path writes
		defer wg.Done()
		slots := make([][]byte, 4*2)
		for i := range slots {
			slots[i] = []byte{byte(i)}
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := primary.WritePath("tt", uint32(i%8), slots); err != nil {
				fail <- fmt.Errorf("path: %w", err)
				return
			}
		}
	}()

	sc := NewScrubber(primary.Durable(), primary, ScrubConfig{ChunkCells: 16})
	for i := 0; i < 25; i++ {
		if err := sc.SweepOnce(); err != nil {
			t.Errorf("sweep %d: %v", i, err)
			break
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}

	if got := sc.Corruptions(); got != 0 {
		t.Errorf("scrub reported %d corruptions on a healthy store under load", got)
	}
	if got := sc.RepairFailures(); got != 0 {
		t.Errorf("repair failures = %d on a healthy store", got)
	}
	if bad, _, err := primary.Durable().VerifyStored("x", 0, 128); err != nil || len(bad) != 0 {
		t.Errorf("post-race verify: bad=%v err=%v", bad, err)
	}
}

// TestScrubberBackgroundLoop: Start/Close run sweeps on the interval without
// leaking the goroutine, and a second Close is harmless.
func TestScrubberBackgroundLoop(t *testing.T) {
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mutateSample(t, d)

	sc := NewScrubber(d, nil, ScrubConfig{Interval: time.Millisecond})
	sc.Start()
	for i := 0; i < 200 && sc.Sweeps() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	sc.Close()
	sc.Close()
	if sc.Sweeps() == 0 {
		t.Error("background loop never completed a sweep")
	}
}
