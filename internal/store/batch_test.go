package store

import (
	"bytes"
	"testing"
	"time"
)

// batchFixture creates an array with n cells holding {byte(i)}.
func batchFixture(t *testing.T, svc Service, name string, n int) {
	t.Helper()
	if err := svc.CreateArray(name, n); err != nil {
		t.Fatal(err)
	}
	idx := make([]int64, n)
	cts := make([][]byte, n)
	for i := range idx {
		idx[i] = int64(i)
		cts[i] = []byte{byte(i)}
	}
	if err := svc.WriteCells(name, idx, cts); err != nil {
		t.Fatal(err)
	}
}

// TestDoBatchMatchesSerial: a fused batch must be observationally identical
// to issuing its ops one by one — mixed reads and writes, applied in order,
// with reads seeing earlier writes in the same batch.
func TestDoBatchMatchesSerial(t *testing.T) {
	srv := NewServer()
	batchFixture(t, srv, "a", 4)
	res, err := DoBatch(srv, []BatchOp{
		{Name: "a", Idx: []int64{0, 1}},
		{Write: true, Name: "a", Idx: []int64{0}, Cts: [][]byte{{0xEE}}},
		{Name: "a", Idx: []int64{0}}, // must observe the write above
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res[0][0], []byte{0}) || !bytes.Equal(res[0][1], []byte{1}) {
		t.Errorf("op 0 read %v, want [[0] [1]]", res[0])
	}
	if res[1] != nil {
		t.Errorf("write op returned %v, want nil", res[1])
	}
	if !bytes.Equal(res[2][0], []byte{0xEE}) {
		t.Errorf("in-batch read-after-write got %v, want [EE]", res[2][0])
	}
}

// nonBatcher hides the Batcher extension so DoBatch exercises the per-op
// fallback path.
type nonBatcher struct{ Service }

func TestDoBatchFallback(t *testing.T) {
	srv := NewServer()
	batchFixture(t, srv, "a", 2)
	res, err := DoBatch(nonBatcher{Service(srv)}, []BatchOp{
		{Name: "a", Idx: []int64{1}},
		{Write: true, Name: "a", Idx: []int64{1}, Cts: [][]byte{{9}}},
		{Name: "a", Idx: []int64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res[0][0], []byte{1}) || !bytes.Equal(res[2][0], []byte{9}) {
		t.Errorf("fallback batch reads = %v / %v, want [1] / [9]", res[0][0], res[2][0])
	}
}

// TestRoundCounterCountsBatchesAsOneRound: a fused batch is one logical
// round regardless of op count; unbatched ops are one round each.
func TestRoundCounterCountsBatchesAsOneRound(t *testing.T) {
	srv := NewServer()
	batchFixture(t, srv, "a", 4)
	rc := WithRoundCounter(srv)

	base := rc.Rounds()
	if _, err := DoBatch(rc, []BatchOp{
		{Name: "a", Idx: []int64{0}},
		{Name: "a", Idx: []int64{1}},
		{Name: "a", Idx: []int64{2}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := rc.Rounds() - base; got != 1 {
		t.Errorf("fused batch counted as %d rounds, want 1", got)
	}

	base = rc.Rounds()
	for i := int64(0); i < 3; i++ {
		if _, err := rc.ReadCells("a", []int64{i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rc.Rounds() - base; got != 3 {
		t.Errorf("3 serial reads counted as %d rounds, want 3", got)
	}

	// A backend that cannot fuse makes each op its own round: the counter
	// must not report fewer rounds than the backend actually served.
	rc2 := WithRoundCounter(nonBatcher{Service(srv)})
	if _, err := DoBatch(rc2, []BatchOp{
		{Name: "a", Idx: []int64{0}},
		{Name: "a", Idx: []int64{1}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := rc2.Rounds(); got != 2 {
		t.Errorf("non-fusing backend: batch of 2 counted as %d rounds, want 2", got)
	}
}

// TestWithLatencyBatchPaysOneDelay is the mechanism the scaling experiment
// prices: a fused batch pays one RTT no matter how many cells it carries.
func TestWithLatencyBatchPaysOneDelay(t *testing.T) {
	srv := NewServer()
	batchFixture(t, srv, "a", 8)
	const rtt = 20 * time.Millisecond
	svc := WithLatency(Service(srv), rtt)

	ops := make([]BatchOp, 8)
	for i := range ops {
		ops[i] = BatchOp{Name: "a", Idx: []int64{int64(i)}}
	}
	start := time.Now()
	if _, err := DoBatch(svc, ops); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < rtt {
		t.Errorf("batch took %s, want ≥ one RTT (%s)", elapsed, rtt)
	}
	if elapsed >= 4*rtt {
		t.Errorf("batch of 8 took %s — paying per-op delays instead of one RTT", elapsed)
	}
}
