package store

import (
	"strings"
	"testing"

	"github.com/oblivfd/oblivfd/internal/trace"
)

func TestNamespaceOf(t *testing.T) {
	cases := []struct{ name, want string }{
		{"fd1:cells", ""},            // engine names use ':', never '/'
		{"alpha/fd1:cells", "alpha"}, // tenant-prefixed
		{"alpha/x/y", "alpha"},       // only the first '/' splits
		{"", ""},
	}
	for _, c := range cases {
		if got := NamespaceOf(c.name); got != c.want {
			t.Errorf("NamespaceOf(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}

func TestValidDBName(t *testing.T) {
	for _, db := range []string{"a", "tenant-1", "A.B_c9"} {
		if !ValidDBName(db) {
			t.Errorf("ValidDBName(%q) = false, want true", db)
		}
	}
	for _, db := range []string{"", "a/b", "a b", "é", strings.Repeat("x", 129)} {
		if ValidDBName(db) {
			t.Errorf("ValidDBName(%q) = true, want false", db)
		}
	}
}

// TestNamespacedIsolation: two tenants on one backend neither see nor
// clobber each other's objects, even with identical object names.
func TestNamespacedIsolation(t *testing.T) {
	backend := NewServer()
	alpha := Namespaced(backend, "alpha")
	beta := Namespaced(backend, "beta")

	if err := alpha.CreateArray("arr", 4); err != nil {
		t.Fatal(err)
	}
	if err := beta.CreateArray("arr", 9); err != nil {
		t.Fatalf("same object name in a second namespace: %v", err)
	}
	if n, err := alpha.ArrayLen("arr"); err != nil || n != 4 {
		t.Fatalf("alpha ArrayLen = %d, %v; want 4", n, err)
	}
	if n, err := beta.ArrayLen("arr"); err != nil || n != 9 {
		t.Fatalf("beta ArrayLen = %d, %v; want 9", n, err)
	}

	if err := alpha.WriteCells("arr", []int64{0}, [][]byte{[]byte("A0")}); err != nil {
		t.Fatal(err)
	}
	if err := beta.WriteCells("arr", []int64{0}, [][]byte{[]byte("B0")}); err != nil {
		t.Fatal(err)
	}
	got, err := alpha.ReadCells("arr", []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "A0" {
		t.Errorf("alpha cell = %q after beta's write, want %q", got[0], "A0")
	}

	// Deleting one tenant's object leaves the other's intact.
	if err := alpha.Delete("arr"); err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.ArrayLen("arr"); err == nil {
		t.Error("alpha arr survives its own Delete")
	}
	if n, err := beta.ArrayLen("arr"); err != nil || n != 9 {
		t.Errorf("beta arr damaged by alpha's Delete: %d, %v", n, err)
	}
}

// TestNamespacedRoot: the empty namespace is the identity — same Service,
// unprefixed names, so single-tenant callers are untouched.
func TestNamespacedRoot(t *testing.T) {
	backend := NewServer()
	if got := Namespaced(backend, ""); got != Service(backend) {
		t.Fatalf("Namespaced(svc, \"\") = %T, want the backend itself", got)
	}
}

// TestNamespacedMarks: checkpoints and dirty counters are per-namespace —
// one tenant's writes never disturb another's resume-consistency check.
func TestNamespacedMarks(t *testing.T) {
	backend := NewServer()
	alpha := Namespaced(backend, "alpha")
	beta := Namespaced(backend, "beta")
	for _, svc := range []Service{alpha, beta} {
		if err := svc.CreateArray("arr", 2); err != nil {
			t.Fatal(err)
		}
	}
	if err := alpha.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	// Beta keeps mutating after alpha's checkpoint.
	if err := beta.WriteCells("arr", []int64{0}, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	stA, err := alpha.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stA.Epoch != 3 || stA.MutationsSinceEpoch != 0 {
		t.Errorf("alpha mark = epoch %d/%d dirty, want 3/0 (beta's writes leaked in)",
			stA.Epoch, stA.MutationsSinceEpoch)
	}
	if stA.Objects != 1 {
		t.Errorf("alpha Stats.Objects = %d, want 1 (its own array only)", stA.Objects)
	}
	stB, err := beta.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stB.Epoch != 0 || stB.MutationsSinceEpoch == 0 {
		t.Errorf("beta mark = epoch %d/%d dirty, want 0 epoch and non-zero dirty",
			stB.Epoch, stB.MutationsSinceEpoch)
	}
	// The root namespace has its own independent mark.
	if err := backend.CreateArray("plain", 1); err != nil {
		t.Fatal(err)
	}
	stRoot, err := backend.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stRoot.Epoch != 0 {
		t.Errorf("root epoch = %d, want 0", stRoot.Epoch)
	}
}

// TestNamespacedReveal: reveal tags are tenant-prefixed in the public log,
// keeping the union-of-traces leakage argument syntactic.
func TestNamespacedReveal(t *testing.T) {
	backend := NewServer()
	backend.Trace().Enable()
	alpha := Namespaced(backend, "alpha")
	if err := alpha.Reveal("fd:A->B", 1); err != nil {
		t.Fatal(err)
	}
	events := backend.Trace().Events()
	var found bool
	for _, e := range events {
		if e.Op == trace.OpReveal {
			found = true
			if e.Object != "alpha/fd:A->B" {
				t.Errorf("reveal tag = %q, want %q", e.Object, "alpha/fd:A->B")
			}
		}
	}
	if !found {
		t.Fatal("no reveal event recorded")
	}
}

// TestNamespacedBatch: batch op names are prefixed and the batch still runs
// through the backend's fused path.
func TestNamespacedBatch(t *testing.T) {
	backend := NewServer()
	alpha := Namespaced(backend, "alpha")
	if err := alpha.CreateArray("arr", 2); err != nil {
		t.Fatal(err)
	}
	batcher, ok := alpha.(Batcher)
	if !ok {
		t.Fatal("namespaced service lost the Batcher extension")
	}
	res, err := batcher.Batch([]BatchOp{
		{Write: true, Name: "arr", Idx: []int64{0, 1}, Cts: [][]byte{[]byte("x"), []byte("y")}},
		{Name: "arr", Idx: []int64{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(res[1][0]) != "y" {
		t.Errorf("batched read = %q, want %q", res[1][0], "y")
	}
	// The write really landed under the prefixed name.
	if got, err := backend.ReadCells("alpha/arr", []int64{0}); err != nil || string(got[0]) != "x" {
		t.Errorf("backend alpha/arr cell = %q, %v; want %q", got, err, "x")
	}
}

// TestCheckpointInFallback: a backend without NamespaceService still works
// for the root namespace but refuses a named one instead of silently
// checkpointing across tenants.
func TestCheckpointInFallback(t *testing.T) {
	plain := &plainOnlySvc{Service: NewServer()}
	if err := CheckpointIn(plain, "", 1); err != nil {
		t.Errorf("root checkpoint through plain backend: %v", err)
	}
	if err := CheckpointIn(plain, "alpha", 1); err == nil {
		t.Error("namespaced checkpoint on a plain backend must fail")
	}
	if _, err := StatsIn(plain, "alpha"); err == nil {
		t.Error("namespaced stats on a plain backend must fail")
	}
}

// plainOnlySvc hides the backend's NamespaceService implementation.
type plainOnlySvc struct{ Service }
