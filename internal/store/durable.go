package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/telemetry"
	"github.com/oblivfd/oblivfd/internal/trace"
)

// DurableServer wraps the in-memory Server with crash-safe persistence:
// every mutation is applied to memory and then appended to a write-ahead
// log before the call returns, and Snapshot/Checkpoint write the full state
// to an atomically-renamed snapshot file and compact the log. OpenDir
// recovers by replaying the surviving log over the newest valid snapshot.
//
// Data directory layout:
//
//	<dir>/snap-<seq>.snap   framed snapshots, seq strictly increasing
//	<dir>/wal.log           mutations since the newest snapshot
//
// The last KeepSnapshots snapshots are retained so a client whose
// checkpoint file is one epoch behind the server's newest mark can still
// roll back to a matching state (OpenDirAtEpoch).
//
// Leakage: the directory holds exactly what the live server holds —
// ciphertexts and public structure. Persisting it gives the adversary
// nothing the threat model's full-memory view did not already include.
type DurableServer struct {
	mu   sync.Mutex
	mem  *Server
	dir  string
	opts DurableOptions
	fsys FS

	wal     *walWriter
	snapSeq int64 // sequence number of the newest snapshot on disk

	killed  bool  // crash-injection kill point fired
	kills   int64 // appends remaining before the kill point (when armed)
	armed   bool
	recInfo RecoveryInfo

	// failed, once set, wraps ErrServerKilled and makes every operation
	// refuse: a fail-stop condition (fsync failure, unrecoverable torn
	// write) where continuing could acknowledge writes that never become
	// durable.
	failed error
	// parked holds records applied to memory whose WAL append was refused
	// with ErrDiskFull. While any are parked the server is degraded
	// (read-only): writes shed with a retryable error, reads proceed. Later
	// appends drain the queue first (preserving log order), and a successful
	// snapshot absorbs the parked effects wholesale and clears it.
	parked   []*walRecord
	degraded bool

	walAppendLat  *telemetry.Histogram
	snapshotLat   *telemetry.Histogram
	snapshots     *telemetry.Counter
	prunes        *telemetry.Counter
	pruneFailures *telemetry.Counter
	sheds         *telemetry.Counter
	degradedGauge *telemetry.Gauge
	otr           *otrace.Tracer // nil-safe span recorder (wal/append, store/snapshot)
}

var (
	_ Service          = (*DurableServer)(nil)
	_ NamespaceService = (*DurableServer)(nil)
)

// DurableOptions tunes the durable backend.
type DurableOptions struct {
	// SyncEvery is the WAL fsync cadence in records. 1 (the default via 0)
	// syncs every append: an acknowledged mutation survives any crash.
	// Larger values trade the tail of that guarantee for throughput.
	SyncEvery int
	// KeepSnapshots is how many epoch snapshots to retain (default 2).
	// Two covers the client-crash window between the server's epoch mark
	// and the client writing its own checkpoint file.
	KeepSnapshots int
	// KillAfterAppends arms the crash-injection kill point: the Nth WAL
	// append (1-based) writes only a torn partial frame, the in-memory
	// mutation is acknowledged to nobody, and every subsequent call
	// returns ErrServerKilled until the directory is reopened. Zero
	// disables injection.
	KillAfterAppends int64
	// Metrics, when set, times WAL appends (oblivfd_wal_append_seconds)
	// and snapshots (oblivfd_snapshot_seconds) into the registry.
	Metrics *telemetry.Registry
	// Trace, when set, records one span per WAL append (wal/append) and
	// per snapshot write (store/snapshot), parented under the request span
	// bound to the serving goroutine.
	Trace *otrace.Tracer
	// FS selects the filesystem the WAL, snapshots, and FENCE file go
	// through. Nil means the real one (OSFS); the disk-fault harness passes
	// a FaultFS to inject ENOSPC, short writes, fsync failures, and bit rot.
	FS FS
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.SyncEvery <= 0 {
		o.SyncEvery = 1
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	if o.FS == nil {
		o.FS = OSFS
	}
	return o
}

// RecoveryInfo reports what OpenDir found and did.
type RecoveryInfo struct {
	SnapshotSeq    int64 // sequence of the snapshot restored (0 = none)
	SnapshotEpoch  int64 // epoch recorded in that snapshot
	WALReplayed    int   // complete WAL records replayed
	WALTruncatedAt int64 // byte offset the log was truncated to (torn tail)
	TornTail       bool  // whether a torn tail was found and discarded
	WALDiscarded   bool  // log dropped: it extended a snapshot we could not restore
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	walName    = "wal.log"
)

func snapPath(dir string, seq int64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", snapPrefix, seq, snapSuffix))
}

// listSnapshots returns the snapshot sequence numbers in dir, ascending.
func listSnapshots(fsys FS, dir string) ([]int64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		seqs = append(seqs, n)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// OpenDir opens (creating if needed) a data directory and recovers: it
// loads the newest snapshot that passes validation, replays the WAL's
// complete records over it, and truncates any torn tail. A snapshot that
// fails its CRC is skipped in favor of the next-newest (the write was
// atomic, so a bad newest snapshot means a crash before rename completed
// its fsync — the previous one is intact); if every snapshot is corrupt,
// OpenDir returns ErrCorruptSnapshot.
func OpenDir(dir string, opts DurableOptions) (*DurableServer, error) {
	return openDir(dir, opts, -1)
}

// OpenDirAtEpoch opens the directory rolled back to the newest retained
// snapshot that was taken exactly at the given epoch mark (matching epoch,
// zero mutations since — shutdown snapshots recording later mutations under
// the same epoch are skipped): the WAL and any newer snapshots are discarded
// so the storage state is exactly the one the client's checkpoint at that
// epoch describes. Returns ErrNoSuchEpoch if no retained snapshot qualifies.
func OpenDirAtEpoch(dir string, epoch int64, opts DurableOptions) (*DurableServer, error) {
	return openDir(dir, opts, epoch)
}

func openDir(dir string, opts DurableOptions, wantEpoch int64) (*DurableServer, error) {
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := listSnapshots(fsys, dir)
	if err != nil {
		return nil, err
	}

	mem := NewServer()
	var info RecoveryInfo
	rollback := wantEpoch >= 0

	// Restore the newest usable snapshot (newest matching snapshot when
	// rolling back to an epoch).
	matched := false
	newest := int64(-1)
	if len(seqs) > 0 {
		newest = seqs[len(seqs)-1]
	}
	var loadErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		f, err := fsys.Open(snapPath(dir, seqs[i]))
		if err != nil {
			return nil, err
		}
		err = mem.LoadSnapshot(f)
		f.Close()
		if err != nil {
			if IsCorrupt(err) {
				loadErr = err
				continue // fall back to the previous snapshot
			}
			return nil, err
		}
		if rollback {
			// Only a snapshot taken at the epoch mark itself will do: a
			// shutdown snapshot can record the same epoch with mutations
			// applied since, and resuming a client checkpoint against that
			// state would corrupt its ORAM partitions (VerifyEpoch would
			// reject it anyway — skip to the checkpoint-consistent one).
			st, serr := mem.Stats()
			if serr != nil {
				return nil, serr
			}
			if st.Epoch != wantEpoch || st.MutationsSinceEpoch != 0 {
				mem = NewServer() // discard; keep looking for the epoch
				continue
			}
		}
		info.SnapshotSeq = seqs[i]
		info.SnapshotEpoch = mem.Epoch()
		matched = true
		break
	}
	if !matched {
		if rollback {
			return nil, fmt.Errorf("%w: epoch %d not among retained snapshots", ErrNoSuchEpoch, wantEpoch)
		}
		if len(seqs) > 0 && loadErr != nil {
			// Snapshots exist but none restored: surface the corruption.
			return nil, loadErr
		}
		mem = NewServer() // fresh directory
	}

	walPath := filepath.Join(dir, walName)
	switch {
	case rollback:
		// The log extends the *newest* state; after rollback it no longer
		// applies. Discard it.
		if err := fsys.Remove(walPath); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		// Newer snapshots than the matched one describe futures the client
		// abandoned; prune them so the next snapshot sequence stays sane.
		for _, seq := range seqs {
			if seq > info.SnapshotSeq {
				if err := fsys.Remove(snapPath(dir, seq)); err != nil && !os.IsNotExist(err) {
					return nil, err
				}
			}
		}
	case matched && info.SnapshotSeq != newest:
		// The log extends the newest snapshot, which failed to restore.
		// Replaying it over an older one would fabricate state; drop it
		// and report the data loss.
		info.WALDiscarded = true
		if err := fsys.Remove(walPath); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	default:
		if err := replayWALFile(fsys, mem, walPath, &info); err != nil {
			return nil, err
		}
	}
	w, err := openWALWriter(fsys, walPath, opts.SyncEvery)
	if err != nil {
		return nil, err
	}
	ds := &DurableServer{
		mem:     mem,
		dir:     dir,
		opts:    opts,
		fsys:    fsys,
		wal:     w,
		snapSeq: info.SnapshotSeq,
		recInfo: info,
		// Nil-safe: with no registry these handles are nil and observing
		// them no-ops.
		walAppendLat:  opts.Metrics.Histogram("oblivfd_wal_append_seconds"),
		snapshotLat:   opts.Metrics.Histogram("oblivfd_snapshot_seconds"),
		snapshots:     opts.Metrics.Counter("oblivfd_snapshots_total"),
		prunes:        opts.Metrics.Counter("oblivfd_snapshots_pruned_total"),
		pruneFailures: opts.Metrics.Counter("oblivfd_snapshot_prune_failures_total"),
		sheds:         opts.Metrics.Counter("oblivfd_disk_full_sheds_total"),
		degradedGauge: opts.Metrics.Gauge("oblivfd_store_degraded"),
		otr:           opts.Trace,
	}
	if opts.KillAfterAppends > 0 {
		ds.armed = true
		ds.kills = opts.KillAfterAppends
	}
	// What recovery found and did, on /metrics rather than log-only: ops can
	// alert on torn tails and discarded logs without scraping stderr.
	opts.Metrics.Gauge("oblivfd_recovery_snapshot_seq").Set(info.SnapshotSeq)
	opts.Metrics.Gauge("oblivfd_recovery_wal_replayed").Set(int64(info.WALReplayed))
	opts.Metrics.Gauge("oblivfd_recovery_wal_truncated_offset").Set(info.WALTruncatedAt)
	opts.Metrics.Gauge("oblivfd_recovery_torn_tail").Set(b2i(info.TornTail))
	opts.Metrics.Gauge("oblivfd_recovery_wal_discarded").Set(b2i(info.WALDiscarded))
	return ds, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// replayWALFile replays every complete record of the log at path into mem
// and truncates a torn tail in place. A missing log is a no-op.
func replayWALFile(fsys FS, mem *Server, path string, info *RecoveryInfo) error {
	f, err := fsys.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	records, validEnd, torn := scanWAL(f)
	f.Close()
	if err := replayWAL(mem, records); err != nil {
		return err
	}
	info.WALReplayed = len(records)
	info.TornTail = torn
	info.WALTruncatedAt = validEnd
	if torn {
		if err := fsys.Truncate(path, validEnd); err != nil {
			return err
		}
	}
	return nil
}

// Recovery reports what opening the directory found.
func (d *DurableServer) Recovery() RecoveryInfo { return d.recInfo }

// Trace exposes the in-memory server's adversary recorder.
func (d *DurableServer) Trace() *trace.Recorder { return d.mem.Trace() }

// Reveals exposes the reveal log.
func (d *DurableServer) Reveals() []Reveal { return d.mem.Reveals() }

// Epoch returns the last client-marked recovery epoch.
func (d *DurableServer) Epoch() int64 { return d.mem.Epoch() }

// Dir returns the data directory path.
func (d *DurableServer) Dir() string { return d.dir }

// logMutation appends a record after the in-memory apply succeeded. With
// SyncEvery=1 an acknowledged mutation is durable; a crash between apply
// and append loses only an operation that was never acknowledged, which is
// indistinguishable (to the client) from crashing before the call. When the
// kill point fires the record is written torn and the server plays dead.
func (d *DurableServer) logMutation(rec *walRecord) error {
	if d.walAppendLat != nil {
		defer d.walAppendLat.ObserveSince(time.Now())
	}
	defer d.otr.Start("wal/append").End()
	if d.armed {
		d.kills--
		if d.kills == 0 {
			d.killed = true
			if err := d.wal.appendTorn(rec); err != nil {
				return err
			}
			return fmt.Errorf("%w: kill point at WAL append %d", ErrServerKilled, d.wal.appended+1)
		}
	}
	return d.wal.append(rec)
}

// mutate runs apply against memory and logs the record on success. A WAL
// append refused for lack of disk space parks the record (memory already
// holds the effect) and returns a retryable error wrapping ErrDiskFull;
// while anything is parked the server is degraded and sheds further writes
// up front. Fail-stop WAL errors latch the server dead.
func (d *DurableServer) mutate(apply func() error, rec *walRecord) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return err
	}
	// Drain parked records first so the log stays in apply order; if the
	// disk is still full, shed this write before touching memory.
	if err := d.flushParkedLocked(); err != nil {
		d.sheds.Inc()
		return err
	}
	if err := apply(); err != nil {
		return err
	}
	if err := d.logMutation(rec); err != nil {
		switch {
		case errors.Is(err, ErrDiskFull):
			d.parked = append(d.parked, rec)
			d.setDegradedLocked(true)
			d.sheds.Inc()
			return err
		case errors.Is(err, errWALFailStop):
			return d.failStopLocked(err)
		}
		return err
	}
	return nil
}

// aliveLocked is the common liveness gate: a fired kill point or a latched
// fail-stop condition makes every operation refuse.
func (d *DurableServer) aliveLocked() error {
	if d.failed != nil {
		return d.failed
	}
	if d.killed {
		return ErrServerKilled
	}
	return nil
}

// failStopLocked latches the server dead. The wrapped ErrServerKilled makes
// the condition fatal to retry classification, exactly like a crash — which
// is the point: after an fsync failure the kernel may have discarded dirty
// pages, so pretending to continue could acknowledge writes that never reach
// the disk (the fsyncgate failure mode). Only a process restart (reopening
// the directory, which re-reads what is actually on disk) clears it.
func (d *DurableServer) failStopLocked(cause error) error {
	if d.failed == nil {
		d.failed = fmt.Errorf("%w: fail-stop: %v", ErrServerKilled, cause)
		slog.Error("store: entering fail-stop", "cause", cause)
	}
	return d.failed
}

// flushParkedLocked appends parked records in order; on success the server
// leaves degraded mode. An ErrDiskFull return means the disk is still full.
func (d *DurableServer) flushParkedLocked() error {
	for len(d.parked) > 0 {
		if err := d.wal.append(d.parked[0]); err != nil {
			if errors.Is(err, errWALFailStop) {
				return d.failStopLocked(err)
			}
			return err
		}
		d.parked = d.parked[1:]
	}
	if d.degraded {
		d.setDegradedLocked(false)
	}
	return nil
}

func (d *DurableServer) setDegradedLocked(v bool) {
	d.degraded = v
	d.degradedGauge.Set(b2i(v))
	if v {
		slog.Warn("store: disk full — degraded to read-only, writes shed as retryable", "parked", len(d.parked))
	} else {
		slog.Info("store: disk space recovered — leaving degraded mode")
	}
}

// Degraded reports whether the server is shedding writes for lack of disk
// space (reads still serve). fdserver surfaces it on /readyz.
func (d *DurableServer) Degraded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

// readGuard serializes reads with the kill flag. The inner Server has its
// own RWMutex; this lock only makes "dead servers answer nothing" strict.
// Degraded (disk-full) mode deliberately does NOT block reads.
func (d *DurableServer) readGuard() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.aliveLocked()
}

// CreateArray implements Service.
func (d *DurableServer) CreateArray(name string, n int) error {
	return d.mutate(func() error { return d.mem.CreateArray(name, n) },
		&walRecord{Op: walCreateArray, Name: name, N: int64(n)})
}

// ArrayLen implements Service.
func (d *DurableServer) ArrayLen(name string) (int, error) {
	if err := d.readGuard(); err != nil {
		return 0, err
	}
	return d.mem.ArrayLen(name)
}

// ReadCells implements Service.
func (d *DurableServer) ReadCells(name string, idx []int64) ([][]byte, error) {
	if err := d.readGuard(); err != nil {
		return nil, err
	}
	return d.mem.ReadCells(name, idx)
}

// WriteCells implements Service.
func (d *DurableServer) WriteCells(name string, idx []int64, cts [][]byte) error {
	return d.mutate(func() error { return d.mem.WriteCells(name, idx, cts) },
		&walRecord{Op: walWriteCells, Name: name, Idx: idx, Cts: cts})
}

// CreateTree implements Service.
func (d *DurableServer) CreateTree(name string, levels, slotsPerBucket int) error {
	return d.mutate(func() error { return d.mem.CreateTree(name, levels, slotsPerBucket) },
		&walRecord{Op: walCreateTree, Name: name, Levels: levels, Slots: slotsPerBucket})
}

// ReadPath implements Service.
func (d *DurableServer) ReadPath(name string, leaf uint32) ([][]byte, error) {
	if err := d.readGuard(); err != nil {
		return nil, err
	}
	return d.mem.ReadPath(name, leaf)
}

// WritePath implements Service.
func (d *DurableServer) WritePath(name string, leaf uint32, slots [][]byte) error {
	return d.mutate(func() error { return d.mem.WritePath(name, leaf, slots) },
		&walRecord{Op: walWritePath, Name: name, Leaf: leaf, Cts: slots})
}

// WriteBuckets implements Service.
func (d *DurableServer) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	return d.mutate(func() error { return d.mem.WriteBuckets(name, bucketStart, slots) },
		&walRecord{Op: walWriteBuckets, Name: name, N: int64(bucketStart), Cts: slots})
}

// Delete implements Service.
func (d *DurableServer) Delete(name string) error {
	return d.mutate(func() error { return d.mem.Delete(name) },
		&walRecord{Op: walDelete, Name: name})
}

// Reveal implements Service. Reveals are part of the adversary's trace, not
// the recoverable storage state, so they are not logged.
func (d *DurableServer) Reveal(tag string, value int64) error {
	if err := d.readGuard(); err != nil {
		return err
	}
	return d.mem.Reveal(tag, value)
}

// Checkpoint implements Service: it marks the epoch, writes an epoch-tagged
// snapshot atomically, compacts the WAL, and prunes snapshots beyond
// KeepSnapshots. When it returns, the mark is durable: a crash at any later
// point recovers to a state at or after this epoch, and OpenDirAtEpoch can
// roll back to exactly it while retained.
func (d *DurableServer) Checkpoint(epoch int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return err
	}
	if err := d.mem.Checkpoint(epoch); err != nil {
		return err
	}
	return d.snapshotLocked()
}

// CheckpointNS implements NamespaceService: a non-root tenant's epoch mark
// is made durable as a WAL record rather than a full snapshot — with
// SyncEvery=1 the mark survives any crash the moment the call returns, and
// per-tenant checkpoints stay cheap even with many tenants checkpointing at
// every level of their traversals. Full snapshots (which absorb these
// records and persist the marks in the snapshot payload) still happen on
// root checkpoints and graceful shutdown.
func (d *DurableServer) CheckpointNS(db string, epoch int64) error {
	if db == "" {
		return d.Checkpoint(epoch)
	}
	return d.mutate(func() error { return d.mem.CheckpointNS(db, epoch) },
		&walRecord{Op: walCheckpoint, Name: db, N: epoch})
}

// StatsNS implements NamespaceService.
func (d *DurableServer) StatsNS(db string) (Stats, error) {
	if err := d.readGuard(); err != nil {
		return Stats{}, err
	}
	return d.mem.StatsNS(db)
}

// SnapshotBytes serializes the current state into memory (the same framed
// format SaveSnapshot writes to disk). The replication layer pushes it to a
// replica that needs a full resync.
func (d *DurableServer) SnapshotBytes() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := d.mem.SaveSnapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ResetFromSnapshot replaces the entire storage state with the snapshot
// read from r, persists it as a new durable snapshot, and truncates the WAL
// (whose records described the abandoned state). The replication layer uses
// it to realign a replica with the primary's exact bytes; afterwards the
// directory recovers to precisely the synced state. The state is loaded in
// place — LoadSnapshot swaps only the object tables and recovery marks, and
// only after a successful decode — so the replica's accumulated adversary
// trace recorder and reveal log survive the resync (the per-replica trace
// accounting of DESIGN.md §13) and anything holding the old Trace() pointer
// keeps observing a live recorder.
func (d *DurableServer) ResetFromSnapshot(r io.Reader) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return err
	}
	if err := d.mem.LoadSnapshot(r); err != nil {
		return err
	}
	return d.snapshotLocked()
}

// appendRecord logs a record that has no in-memory mutation to apply (the
// replication layer's fencing marks). It respects the kill point exactly
// like a mutation.
func (d *DurableServer) appendRecord(rec *walRecord) error {
	return d.mutate(func() error { return nil }, rec)
}

// Snapshot writes a snapshot of the current state (whatever the epoch) and
// compacts the WAL. fdserver calls it on graceful shutdown.
func (d *DurableServer) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return err
	}
	return d.snapshotLocked()
}

// snapshotLocked writes snap-<seq+1> via temp + fsync + rename + dir sync,
// then truncates the WAL (its records are absorbed) and prunes old
// snapshots. Crash windows: before rename — old snapshot + full WAL still
// recover; between rename and truncate — the new snapshot already contains
// the WAL's effects, and replay over it is idempotent.
func (d *DurableServer) snapshotLocked() error {
	if d.snapshotLat != nil {
		defer d.snapshotLat.ObserveSince(time.Now())
		defer d.snapshots.Inc()
	}
	defer d.otr.Start("store/snapshot").End()
	seq := d.snapSeq + 1
	final := snapPath(d.dir, seq)
	tmp, err := d.fsys.CreateTemp(d.dir, "snap-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// Running out of space while writing the temp file is recoverable: the
	// old snapshot and WAL are untouched, so clean up and stay (or go)
	// degraded. Everything past the temp write follows fail-stop rules —
	// a failed fsync or rename after we may already depend on the new file
	// cannot be waved off.
	if err := d.mem.SaveSnapshot(tmp); err != nil {
		if cerr := tmp.Close(); cerr != nil {
			slog.Warn("store: closing aborted snapshot temp", "err", cerr)
		}
		if rerr := d.fsys.Remove(tmpName); rerr != nil {
			slog.Warn("store: removing aborted snapshot temp", "file", tmpName, "err", rerr)
		}
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		d.fsys.Remove(tmpName)
		return d.failStopLocked(fmt.Errorf("syncing snapshot %q: %w", tmpName, err))
	}
	if err := tmp.Close(); err != nil {
		d.fsys.Remove(tmpName)
		return d.failStopLocked(fmt.Errorf("closing snapshot %q: %w", tmpName, err))
	}
	if err := d.fsys.Rename(tmpName, final); err != nil {
		d.fsys.Remove(tmpName)
		return err
	}
	if err := syncDir(d.fsys, d.dir); err != nil {
		return d.failStopLocked(fmt.Errorf("syncing data directory: %w", err))
	}
	d.snapSeq = seq

	if err := d.wal.truncate(); err != nil {
		if errors.Is(err, errWALFailStop) {
			return d.failStopLocked(err)
		}
		return err
	}
	// The snapshot absorbed the full in-memory state, including every parked
	// record's effect — the disk-full backlog is durable now.
	if len(d.parked) > 0 || d.degraded {
		d.parked = nil
		d.setDegradedLocked(false)
	}

	// Prune beyond the retention window; failures here cost only disk, but
	// they are counted and logged, not swallowed — unpruned snapshots on a
	// nearly-full disk are how degraded mode becomes permanent.
	seqs, err := listSnapshots(d.fsys, d.dir)
	if err == nil && len(seqs) > d.opts.KeepSnapshots {
		for _, old := range seqs[:len(seqs)-d.opts.KeepSnapshots] {
			if rerr := d.fsys.Remove(snapPath(d.dir, old)); rerr != nil {
				d.pruneFailures.Inc()
				slog.Warn("store: pruning old snapshot failed", "seq", old, "err", rerr)
			} else {
				d.prunes.Inc()
			}
		}
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable.
func syncDir(fsys FS, dir string) error {
	f, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats implements Service.
func (d *DurableServer) Stats() (Stats, error) {
	if err := d.readGuard(); err != nil {
		return Stats{}, err
	}
	return d.mem.Stats()
}

// ApplyRepair installs repaired ciphertexts (a walRepairCells/walRepairSlots
// record) into memory and logs the record, so the self-heal survives a
// restart. Like any mutation it is shed while the disk is full — the
// in-memory install still lands, which is what foreground reads see.
func (d *DurableServer) ApplyRepair(rec *walRecord) error {
	isTree := rec.Op == walRepairSlots
	return d.mutate(func() error { return d.mem.InstallStored(rec.Name, isTree, rec.Idx, rec.Cts) }, rec)
}

// ObjectNames lists live objects in the scrubber's fixed sweep order.
func (d *DurableServer) ObjectNames() ([]string, error) {
	if err := d.readGuard(); err != nil {
		return nil, err
	}
	return d.mem.ObjectNames(), nil
}

// ObjectExtent reports an object's stored-cell count and kind.
func (d *DurableServer) ObjectExtent(name string) (int, bool, error) {
	if err := d.readGuard(); err != nil {
		return 0, false, err
	}
	return d.mem.ObjectExtent(name)
}

// VerifyStored checks stored checksums over [lo, hi) of the named object.
func (d *DurableServer) VerifyStored(name string, lo, hi int) ([]int64, bool, error) {
	if err := d.readGuard(); err != nil {
		return nil, false, err
	}
	return d.mem.VerifyStored(name, lo, hi)
}

// StoredVerified returns checksum-verified ciphertexts (the repair donor
// path).
func (d *DurableServer) StoredVerified(name string, isTree bool, idx []int64) ([][]byte, error) {
	if err := d.readGuard(); err != nil {
		return nil, err
	}
	return d.mem.StoredVerified(name, isTree, idx)
}

// CorruptStored flips one stored bit without updating its checksum — the
// chaos harness's bit-rot hook.
func (d *DurableServer) CorruptStored(name string, isTree bool, i int64, bit uint) error {
	if err := d.readGuard(); err != nil {
		return err
	}
	return d.mem.CorruptStored(name, isTree, i, bit)
}

// walScrubView captures, under the durable lock, what the WAL scrubber may
// safely read: the log path, the size of the valid prefix, and the number of
// compactions so far. A scan's verdict only counts if the truncation count
// is unchanged afterwards — otherwise a concurrent compaction rewrote the
// file under the scan and any "corruption" seen is an artifact.
func (d *DurableServer) walScrubView() (path string, size, truncations int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return filepath.Join(d.dir, walName), d.wal.size, d.wal.truncations
}

// snapshotScrubView captures the snapshot sequences currently on disk plus
// the newest sequence the server has written.
func (d *DurableServer) snapshotScrubView() (seqs []int64, newest int64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.aliveLocked(); err != nil {
		return nil, 0, err
	}
	seqs, err = listSnapshots(d.fsys, d.dir)
	return seqs, d.snapSeq, err
}

// WALSize returns the current log size in bytes (for the recovery bench).
func (d *DurableServer) WALSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal.size
}

// WALAppends returns the total records appended since open, across
// compactions (the crash harness uses it to seed kill points).
func (d *DurableServer) WALAppends() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal.appended
}

// Close syncs and closes the log. It does not snapshot; callers wanting a
// compact directory call Snapshot first.
func (d *DurableServer) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.wal.close()
}
