package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// loopConn wires a primary directly to an in-process replica, standing in for
// the transport's replication stream.
type loopConn struct{ r *ReplicatedServer }

func (c loopConn) Replicate(fence, seq int64, frames [][]byte) error {
	_, err := c.r.ApplyReplicated(fence, seq, frames)
	return err
}
func (c loopConn) SyncSnapshot(fence, seq int64, snap []byte) error {
	return c.r.ApplySync(fence, seq, snap)
}
func (c loopConn) Close() error { return nil }

// newReplica opens a fresh replica-role server in its own temp dir.
func newReplica(t *testing.T) *ReplicatedServer {
	t.Helper()
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replicated(d, ReplicationConfig{Primary: false})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// newPrimary opens a primary that ships to the given replicas over loopConns.
func newPrimary(t *testing.T, replicas ...*ReplicatedServer) *ReplicatedServer {
	t.Helper()
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var peers []string
	byAddr := map[string]*ReplicatedServer{}
	for i, rep := range replicas {
		addr := string(rune('a' + i))
		peers = append(peers, addr)
		byAddr[addr] = rep
	}
	p, err := Replicated(d, ReplicationConfig{
		Primary:     true,
		Peers:       peers,
		RedialEvery: 1,
		Dial: func(addr string) (ReplicaConn, error) {
			return loopConn{byAddr[addr]}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestReplicationMirrorsPrimaryState(t *testing.T) {
	replica := newReplica(t)
	primary := newPrimary(t, replica)

	mutateSample(t, primary)
	if err := primary.Checkpoint(1); err != nil {
		t.Fatal(err)
	}

	// The replica refuses client reads...
	if _, err := replica.ReadCells("a", []int64{0}); !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("replica read error = %v, want ErrNotPrimary", err)
	}
	// ...but its durable layer holds the primary's exact state.
	checkSample(t, replica.Durable())

	if lag := primary.ReplicaLag(); lag != 0 {
		t.Errorf("replication lag = %d after synchronous shipping, want 0", lag)
	}
	if w, s := replica.Watermark(), primary.ReplicaLag(); w == 0 || s != 0 {
		t.Errorf("watermark = %d (want > 0), lag = %d", w, s)
	}
}

func TestReplicationBatchShipsOnce(t *testing.T) {
	replica := newReplica(t)
	primary := newPrimary(t, replica)
	if err := primary.CreateArray("b", 8); err != nil {
		t.Fatal(err)
	}
	before := replica.Watermark()
	out, err := primary.Batch([]BatchOp{
		{Write: true, Name: "b", Idx: []int64{0}, Cts: [][]byte{{1}}},
		{Name: "b", Idx: []int64{0}},
		{Write: true, Name: "b", Idx: []int64{1}, Cts: [][]byte{{2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[1][0], []byte{1}) {
		t.Fatalf("batch read = %v", out[1])
	}
	if got := replica.Watermark() - before; got != 2 {
		t.Errorf("replica applied %d records for the batch, want 2 (writes only)", got)
	}
	cts, err := replica.Durable().ReadCells("b", []int64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cts[0], []byte{1}) || !bytes.Equal(cts[1], []byte{2}) {
		t.Errorf("replica cells = %v", cts)
	}
}

// TestReplicaRejectsDamagedStream is the torn/bit-flipped stream property
// test: whatever prefix truncation or single-bit corruption hits a shipped
// frame, the replica detects it (ErrIntegrity), applies nothing, and a
// snapshot resync restores it to the stream.
func TestReplicaRejectsDamagedStream(t *testing.T) {
	replica := newReplica(t)

	frame, err := encodeWALRecord(&walRecord{Op: walCreateArray, Name: "x", N: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	damaged := make([][]byte, 0, 64)
	for cut := 0; cut < len(frame); cut++ { // every torn prefix, header included
		damaged = append(damaged, frame[:cut])
	}
	for i := 0; i < 32; i++ { // random single-bit flips across the frame
		b := append([]byte(nil), frame...)
		pos := rng.Intn(len(b))
		b[pos] ^= 1 << uint(rng.Intn(8))
		damaged = append(damaged, b)
	}
	damaged = append(damaged, append(append([]byte(nil), frame...), 0xEE)) // trailing garbage

	for i, bad := range damaged {
		w, err := replica.ApplyReplicated(1, replica.Watermark(), [][]byte{bad})
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("damaged frame %d: error = %v, want ErrIntegrity", i, err)
		}
		if w != 0 || replica.Watermark() != 0 {
			t.Fatalf("damaged frame %d advanced the watermark to %d", i, w)
		}
		if _, err := replica.Durable().ArrayLen("x"); !errors.Is(err, ErrUnknownObject) {
			t.Fatalf("damaged frame %d applied state: %v", i, err)
		}
	}

	// A batch where only the last frame is damaged must apply nothing either.
	good, err := encodeWALRecord(&walRecord{Op: walCreateArray, Name: "y", N: 4})
	if err != nil {
		t.Fatal(err)
	}
	torn := frame[:len(frame)-3]
	if _, err := replica.ApplyReplicated(1, 0, [][]byte{good, torn}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("mixed batch error = %v, want ErrIntegrity", err)
	}
	if _, err := replica.Durable().ArrayLen("y"); !errors.Is(err, ErrUnknownObject) {
		t.Fatal("replica applied a prefix of a damaged batch")
	}

	// The primary's answer to ErrIntegrity is a snapshot push; after it the
	// replica is back on the stream at the primary's position.
	src := NewServer()
	if err := src.CreateArray("x", 8); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := src.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplySync(1, 7, snap.Bytes()); err != nil {
		t.Fatal(err)
	}
	if w := replica.Watermark(); w != 7 {
		t.Fatalf("watermark after sync = %d, want 7", w)
	}
	if _, err := replica.ApplyReplicated(1, 7, [][]byte{frame}); err != nil {
		t.Fatalf("clean frame after resync: %v", err)
	}
	if n, err := replica.Durable().ArrayLen("x"); err != nil || n != 8 {
		t.Fatalf("replica state after resync: n=%d err=%v", n, err)
	}
}

func TestReplicaRejectsSequenceGap(t *testing.T) {
	replica := newReplica(t)
	frame, err := encodeWALRecord(&walRecord{Op: walCreateArray, Name: "x", N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.ApplyReplicated(1, 5, [][]byte{frame}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("gap error = %v, want ErrIntegrity", err)
	}
	if replica.Watermark() != 0 {
		t.Fatal("gap advanced the watermark")
	}
}

func TestShippingHealsDivergedReplica(t *testing.T) {
	replica := newReplica(t)
	// Desynchronize the replica: pretend it applied 3 records of some
	// earlier life that the primary never shipped this reign.
	var empty bytes.Buffer
	if err := NewServer().SaveSnapshot(&empty); err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplySync(1, 3, empty.Bytes()); err != nil {
		t.Fatal(err)
	}

	primary := newPrimary(t, replica)
	if err := primary.CreateArray("h", 4); err != nil { // seq 0 vs watermark 3
		t.Fatal(err)
	}
	if err := primary.WriteCells("h", []int64{1}, [][]byte{{42}}); err != nil {
		t.Fatal(err)
	}
	cts, err := replica.Durable().ReadCells("h", []int64{1})
	if err != nil {
		t.Fatalf("replica not healed: %v", err)
	}
	if !bytes.Equal(cts[0], []byte{42}) {
		t.Fatalf("replica cells after heal = %v", cts)
	}
	if lag := primary.ReplicaLag(); lag != 0 {
		t.Errorf("lag after heal = %d", lag)
	}
}

func TestFencingDeposesOldPrimary(t *testing.T) {
	replica := newReplica(t)
	primary := newPrimary(t, replica)
	if err := primary.CreateArray("f", 2); err != nil {
		t.Fatal(err)
	}

	// A failover client promotes the replica at fence 2...
	if _, err := replica.Promote(1); !errors.Is(err, ErrFenced) {
		t.Fatalf("promote at non-increasing fence: %v, want ErrFenced", err)
	}
	fence, err := replica.Promote(2)
	if err != nil || fence != 2 {
		t.Fatalf("promote = (%d, %v)", fence, err)
	}
	if !replica.IsPrimary() {
		t.Fatal("promoted replica is not primary")
	}

	// ...and the old primary, once it hears fence 2, refuses all writes.
	if err := primary.ObserveFence(2); err != nil {
		t.Fatal(err)
	}
	if primary.IsPrimary() {
		t.Fatal("deposed primary still claims the role")
	}
	if err := primary.WriteCells("f", []int64{0}, [][]byte{{1}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed write error = %v, want ErrFenced", err)
	}
	if _, err := primary.ReadCells("f", []int64{0}); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed read error = %v, want ErrFenced", err)
	}
	// Stats still answer (the failover prober depends on it).
	st, err := primary.Stats()
	if err != nil || st.Primary || st.Fence != 2 {
		t.Fatalf("deposed stats = %+v, %v", st, err)
	}

	// Replication from the stale fence is refused too.
	frame, _ := encodeWALRecord(&walRecord{Op: walCreateArray, Name: "z", N: 1})
	if _, err := replica.ApplyReplicated(1, replica.Watermark(), [][]byte{frame}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-fence shipment error = %v, want ErrFenced", err)
	}
}

func TestFenceFileSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replicated(d, ReplicationConfig{Primary: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CreateArray("p", 2); err != nil {
		t.Fatal(err)
	}
	if err := r.ObserveFence(5); err != nil { // deposed at fence 5
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Restarting with the original primary flags cannot resurrect the role:
	// the FENCE file recorded the loss.
	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Replicated(d2, ReplicationConfig{Primary: true, Fence: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.IsPrimary() || r2.Fence() != 5 {
		t.Fatalf("rebooted deposed primary: primary=%v fence=%d", r2.IsPrimary(), r2.Fence())
	}
	if err := r2.WriteCells("p", []int64{0}, [][]byte{{1}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("rebooted deposed write error = %v, want ErrFenced", err)
	}
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}

	// An operator force-promotes with a strictly higher fence.
	d3, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Replicated(d3, ReplicationConfig{Primary: true, Fence: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if !r3.IsPrimary() || r3.Fence() != 6 {
		t.Fatalf("force-promoted: primary=%v fence=%d", r3.IsPrimary(), r3.Fence())
	}
	if err := r3.WriteCells("p", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedFenceFileRefusesBoot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := os.WriteFile(filepath.Join(dir, fenceFile), []byte("not a fence"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replicated(d, ReplicationConfig{Primary: true}); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("malformed FENCE boot error = %v, want ErrIntegrity", err)
	}
}

func TestDownReplicaNeverBlocksPrimary(t *testing.T) {
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dials := 0
	p, err := Replicated(d, ReplicationConfig{
		Primary:     true,
		Peers:       []string{"down"},
		RedialEvery: 4,
		Dial: func(string) (ReplicaConn, error) {
			dials++
			return nil, errors.New("connection refused")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.CreateArray("u", 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := p.WriteCells("u", []int64{0}, [][]byte{{byte(i)}}); err != nil {
			t.Fatalf("write %d with replica down: %v", i, err)
		}
	}
	if dials == 0 || dials > 8 {
		t.Errorf("dial attempts = %d, want a handful at the redial cadence", dials)
	}
	if lag := p.ReplicaLag(); lag != 17 {
		t.Errorf("lag with replica down = %d, want 17", lag)
	}
}

// TestResyncPreservesAdversaryTrace pins the trace-continuity contract of
// ResetFromSnapshot: a snapshot resync replaces the replica's object state
// but not its accumulated adversary recorder or reveal log, so the
// per-replica trace accounting (DESIGN.md §13) holds across resyncs and a
// cached Trace() pointer keeps observing a live recorder.
func TestResyncPreservesAdversaryTrace(t *testing.T) {
	replica := newReplica(t)
	rec := replica.Trace()
	if err := replica.Durable().Reveal("pre", 1); err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := NewServer().SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := replica.ApplySync(1, 3, snap.Bytes()); err != nil {
		t.Fatal(err)
	}

	if replica.Trace() != rec {
		t.Fatal("snapshot resync replaced the adversary trace recorder")
	}
	got := replica.Durable().Reveals()
	if len(got) != 1 || got[0].Tag != "pre" {
		t.Fatalf("reveal log after resync = %v, want the pre-sync entry preserved", got)
	}
}

// blockingConn is a replica connection whose Replicate hangs (connection
// open, peer not answering) until released, modeling a partitioned peer.
type blockingConn struct {
	entered chan struct{}
	release chan struct{}
}

func (c *blockingConn) Replicate(fence, seq int64, frames [][]byte) error {
	c.entered <- struct{}{}
	<-c.release
	return nil
}
func (c *blockingConn) SyncSnapshot(fence, seq int64, snap []byte) error { return nil }
func (c *blockingConn) Close() error                                    { return nil }

// TestHungPeerDoesNotBlockReads asserts the availability contract of the
// split-lock design: while a shipment hangs on a partitioned peer, only
// writers wait — reads, Stats (the failover prober's lifeline), lag
// telemetry, and fence observations all answer. A regression here shows up
// as this test deadlocking against the suite timeout.
func TestHungPeerDoesNotBlockReads(t *testing.T) {
	d, err := OpenDir(t.TempDir(), DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	conn := &blockingConn{entered: make(chan struct{}), release: make(chan struct{})}
	p, err := Replicated(d, ReplicationConfig{
		Primary:     true,
		Peers:       []string{"hung"},
		RedialEvery: 1,
		Dial:        func(string) (ReplicaConn, error) { return conn, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	done := make(chan error, 1)
	go func() { done <- p.CreateArray("x", 2) }()
	<-conn.entered // the record is applied; its shipment is now hanging

	// The applied record is already readable on the primary...
	if n, err := p.ArrayLen("x"); err != nil || n != 2 {
		t.Fatalf("read during hung shipment: n=%d err=%v", n, err)
	}
	// ...probes answer with the role and the visible lag...
	st, err := p.Stats()
	if err != nil || !st.Primary {
		t.Fatalf("stats during hung shipment = %+v, %v", st, err)
	}
	if lag := p.ReplicaLag(); lag != 1 {
		t.Errorf("lag during hung shipment = %d, want 1", lag)
	}
	// ...and role changes are not queued behind the stalled writer.
	if err := p.ObserveFence(9); err != nil {
		t.Fatalf("fence observation during hung shipment: %v", err)
	}
	if p.IsPrimary() {
		t.Fatal("higher fence did not depose during hung shipment")
	}

	close(conn.release)
	if err := <-done; err != nil {
		t.Fatalf("mutation with hung peer: %v", err)
	}
}
