package store

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives a registry's time for deterministic idle/rate tests.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestSessionTokenAuth(t *testing.T) {
	r := NewSessionRegistry(SessionLimits{Token: "secret"}, nil)
	if _, err := r.Open("tenant", "wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("bad token: err = %v, want ErrUnauthorized", err)
	}
	if _, err := r.Open("tenant", ""); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("missing token: err = %v, want ErrUnauthorized", err)
	}
	s, err := r.Open("tenant", "secret")
	if err != nil {
		t.Fatalf("good token refused: %v", err)
	}
	s.Close()
	if got := r.Rejected(); got != 2 {
		t.Errorf("Rejected() = %d, want 2", got)
	}
}

func TestSessionInvalidDBName(t *testing.T) {
	r := NewSessionRegistry(SessionLimits{}, nil)
	for _, db := range []string{"a/b", "a b", "\x00", string(make([]byte, 200))} {
		if _, err := r.Open(db, ""); !errors.Is(err, ErrUnauthorized) {
			t.Errorf("Open(%q): err = %v, want ErrUnauthorized", db, err)
		}
	}
	// The root namespace ("") and plain names are fine.
	for _, db := range []string{"", "tenant-1", "a.b_c"} {
		s, err := r.Open(db, "")
		if err != nil {
			t.Errorf("Open(%q): %v", db, err)
			continue
		}
		s.Close()
	}
}

func TestSessionMaxSessions(t *testing.T) {
	r := NewSessionRegistry(SessionLimits{MaxSessions: 2}, nil)
	a, err := r.Open("a", "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Open("b", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open("c", ""); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third session: err = %v, want ErrOverloaded", err)
	}
	a.Close()
	c, err := r.Open("c", "")
	if err != nil {
		t.Fatalf("after a slot freed: %v", err)
	}
	b.Close()
	c.Close()
	if got := r.Active(); got != 0 {
		t.Errorf("Active() = %d after closing all, want 0", got)
	}
}

// TestSessionIdleEvictionAtCapacity: a full registry reclaims idle sessions
// to admit a newcomer, running the eviction callback (the transport server
// closes the evicted connection there).
func TestSessionIdleEvictionAtCapacity(t *testing.T) {
	clk := newFakeClock()
	r := NewSessionRegistry(SessionLimits{MaxSessions: 1, IdleTimeout: time.Minute}, nil)
	r.now = clk.now
	a, err := r.Open("a", "")
	if err != nil {
		t.Fatal(err)
	}
	evicted := false
	a.OnEvict(func() { evicted = true })

	// Not idle long enough: the newcomer is refused.
	clk.advance(30 * time.Second)
	if _, err := r.Open("b", ""); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("capacity with fresh session: err = %v, want ErrOverloaded", err)
	}
	// Past the idle timeout: a is evicted to make room.
	clk.advance(time.Minute)
	b, err := r.Open("b", "")
	if err != nil {
		t.Fatalf("capacity with evictable session: %v", err)
	}
	if !evicted {
		t.Error("eviction callback did not run")
	}
	if got := r.Evicted(); got != 1 {
		t.Errorf("Evicted() = %d, want 1", got)
	}
	// An evicted session's Begin is shed, not executed.
	if _, err := a.Begin(); !errors.Is(err, ErrOverloaded) {
		t.Errorf("Begin on evicted session: err = %v, want ErrOverloaded", err)
	}
	b.Close()
}

// TestSessionIdleEvictionSkipsInflight: a session with work in flight is
// never evicted, no matter how stale lastActive looks.
func TestSessionIdleEvictionSkipsInflight(t *testing.T) {
	clk := newFakeClock()
	r := NewSessionRegistry(SessionLimits{MaxSessions: 1, IdleTimeout: time.Minute}, nil)
	r.now = clk.now
	a, err := r.Open("a", "")
	if err != nil {
		t.Fatal(err)
	}
	release, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour)
	if n := r.SweepIdle(); n != 0 {
		t.Fatalf("SweepIdle evicted %d sessions with in-flight work", n)
	}
	release()
	clk.advance(time.Hour)
	if n := r.SweepIdle(); n != 1 {
		t.Fatalf("SweepIdle after release = %d, want 1", n)
	}
}

func TestSessionInflightBudgets(t *testing.T) {
	r := NewSessionRegistry(SessionLimits{MaxInflight: 2}, nil)
	s, err := r.Open("a", "")
	if err != nil {
		t.Fatal(err)
	}
	rel1, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := s.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Begin(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over budget: err = %v, want ErrOverloaded", err)
	}
	if got := r.Shed(); got != 1 {
		t.Errorf("Shed() = %d, want 1", got)
	}
	rel1()
	rel1() // release is idempotent; must not free a second slot
	rel3, err := s.Begin()
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	if _, err := s.Begin(); !errors.Is(err, ErrOverloaded) {
		t.Fatal("double release freed two slots")
	}
	rel2()
	rel3()
	if got := r.Inflight(); got != 0 {
		t.Errorf("Inflight() = %d after all releases, want 0", got)
	}
}

func TestSessionPerSessionInflight(t *testing.T) {
	r := NewSessionRegistry(SessionLimits{PerSessionInflight: 1}, nil)
	a, _ := r.Open("a", "")
	b, _ := r.Open("b", "")
	relA, err := a.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Begin(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second request in session a: err = %v, want ErrOverloaded", err)
	}
	// The per-session cap is per session: b still has its own slot.
	relB, err := b.Begin()
	if err != nil {
		t.Fatalf("session b blocked by session a's cap: %v", err)
	}
	relA()
	relB()
}

func TestSessionRateLimit(t *testing.T) {
	clk := newFakeClock()
	r := NewSessionRegistry(SessionLimits{RatePerSec: 10, Burst: 2}, nil)
	r.now = clk.now
	s, err := r.Open("a", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		release, err := s.Begin()
		if err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
		release()
	}
	if _, err := s.Begin(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("burst exhausted: err = %v, want ErrOverloaded", err)
	}
	// 100ms at 10 req/s refills one token.
	clk.advance(100 * time.Millisecond)
	release, err := s.Begin()
	if err != nil {
		t.Fatalf("after refill: %v", err)
	}
	release()
	// The bucket never exceeds the burst depth: a long sleep buys at most 2.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		release, err := s.Begin()
		if err != nil {
			t.Fatalf("request %d after refill-to-burst: %v", i, err)
		}
		release()
	}
	if _, err := s.Begin(); !errors.Is(err, ErrOverloaded) {
		t.Error("token bucket exceeded its burst depth")
	}
}

func TestSessionDrain(t *testing.T) {
	r := NewSessionRegistry(SessionLimits{}, nil)
	s, err := r.Open("a", "")
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Drain(); n != 1 {
		t.Fatalf("Drain() = %d active, want 1", n)
	}
	// New handshakes are refused with the retryable error…
	if _, err := r.Open("b", ""); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("handshake while draining: err = %v, want ErrOverloaded", err)
	}
	// …but the admitted session keeps working (fair drain).
	release, err := s.Begin()
	if err != nil {
		t.Fatalf("admitted session shed during drain: %v", err)
	}
	release()
	s.Close()
	if got := r.Active(); got != 0 {
		t.Errorf("Active() = %d, want 0", got)
	}
}

// TestSessionErrorClassification pins the retry semantics the transport
// relies on: shed work is retryable (it never executed), auth failures are
// not (the verdict cannot change).
func TestSessionErrorClassification(t *testing.T) {
	if !DefaultRetryable(ErrOverloaded) {
		t.Error("ErrOverloaded must be retryable: the request was never executed")
	}
	if DefaultRetryable(ErrUnauthorized) {
		t.Error("ErrUnauthorized must not be retryable")
	}
}

func TestSessionZeroLimitsNoAdmission(t *testing.T) {
	r := NewSessionRegistry(SessionLimits{}, nil)
	var sessions []*Session
	for i := 0; i < 50; i++ {
		s, err := r.Open("t", "")
		if err != nil {
			t.Fatalf("session %d refused under zero limits: %v", i, err)
		}
		sessions = append(sessions, s)
		if _, err := s.Begin(); err != nil {
			t.Fatalf("request %d shed under zero limits: %v", i, err)
		}
	}
	for _, s := range sessions {
		s.Close()
	}
}
