// Package store implements the server S: named encrypted storage objects
// (flat ciphertext arrays for the sorting protocol, bucket trees for
// PathORAM) plus the persistent adversary's trace recorder. The server never
// holds a key; everything it stores is ciphertext produced by the client.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"github.com/oblivfd/oblivfd/internal/trace"
)

// Common storage errors.
var (
	ErrUnknownObject = errors.New("store: unknown object")
	ErrObjectExists  = errors.New("store: object already exists")
	ErrOutOfRange    = errors.New("store: index out of range")
	ErrBadPath       = errors.New("store: malformed path payload")

	// ErrTransient marks an injected or otherwise momentary failure: the
	// operation did not necessarily apply, but repeating it is expected to
	// succeed. WithFaults produces it; WithRetry retries on it.
	ErrTransient = errors.New("store: transient fault")
	// ErrUnavailable marks a connection-level failure (dial refused,
	// connection reset, deadline exceeded) after the transport exhausted
	// its own reconnection attempts. WithRetry retries on it.
	ErrUnavailable = errors.New("store: service unavailable")

	// ErrIntegrity marks data that failed client-side verification: an
	// AEAD authentication failure, a stale or replayed ORAM block, a
	// version-tag or epoch-tag mismatch, a corrupt WAL frame or snapshot.
	// The data is wrong, not the network, so it is fatal — WithRetry never
	// retries it — and discovery aborts with the location that tripped it.
	ErrIntegrity = errors.New("store: integrity verification failed")

	// ErrCorruptSnapshot marks a snapshot stream that cannot be restored:
	// truncated, bit-flipped, or semantically inconsistent. It is an
	// integrity failure (errors.Is(err, ErrIntegrity) holds) and fatal —
	// retrying the identical load cannot succeed — so the retry classifier
	// treats it as non-retryable.
	ErrCorruptSnapshot error = &integrityError{"store: corrupt snapshot"}
	// ErrCorruptWAL marks a write-ahead log whose surviving prefix cannot
	// be applied to the snapshot it extends (a torn *tail* is expected
	// after a crash and silently truncated; this error means corruption
	// before the tail). An integrity failure, fatal like
	// ErrCorruptSnapshot.
	ErrCorruptWAL error = &integrityError{"store: corrupt write-ahead log"}
	// ErrServerKilled is returned by a durable server whose crash-injection
	// kill point fired: the simulated process is dead and every further
	// call fails until the data directory is re-opened. Fatal by
	// construction — retrying against a dead process cannot succeed.
	ErrServerKilled = errors.New("store: server killed (crash injection)")
	// ErrNoSuchEpoch is returned by OpenDirAtEpoch when no retained
	// snapshot matches the requested recovery epoch.
	ErrNoSuchEpoch = errors.New("store: no snapshot for requested epoch")

	// ErrDiskFull is returned when the durable backend cannot append to its
	// WAL or write a snapshot because the disk is out of space. The write
	// did not become durable (it is parked and re-appended once space
	// frees), so the server sheds it while reads continue — degraded
	// read-only mode. Retryable: freeing space (compaction, pruning, an
	// operator) makes the identical request succeed.
	ErrDiskFull = errors.New("store: disk full")

	// ErrNotPrimary is returned by a replica asked to serve client
	// operations: only the primary may read or mutate, because the client's
	// ORAM state is coupled to a single linearized history. Not retryable
	// against the same server — the failover layer rotates to another one.
	ErrNotPrimary = errors.New("store: not the primary")
	// ErrFenced is returned by a server that has been fenced off: it held
	// (or believed it held) the primary role under an older fencing epoch
	// and has since learned of a higher one. A fenced server refuses every
	// client operation — accepting even one write would fork the history a
	// promoted replica continued. Fatal at the issuing server; the failover
	// layer treats it as "find the real primary".
	ErrFenced = errors.New("store: fenced by a newer primary epoch")
)

// CorruptCellsError reports stored ciphertexts that failed their
// server-side checksum: latent corruption (bit rot) in the live store, as
// opposed to tampering the client's AEAD layer detects end-to-end. It
// matches ErrIntegrity under errors.Is; the self-healing layer additionally
// uses the location to fetch authoritative bytes from a healthy replica and
// rewrite in place (see scrub.go), so the error reaches a client only when
// no healthy copy exists.
type CorruptCellsError struct {
	Object string
	Tree   bool    // Idx are flat slot indices of a bucket tree, not array cells
	Idx    []int64 // corrupt positions, ascending
}

func (e *CorruptCellsError) Error() string {
	kind := "array"
	if e.Tree {
		kind = "tree"
	}
	return fmt.Sprintf("store: integrity verification failed: %s %q: %d stored cells failed checksum (first at %d)",
		kind, e.Object, len(e.Idx), e.Idx[0])
}

func (e *CorruptCellsError) Is(target error) bool { return target == ErrIntegrity }

// integrityError is a named sentinel that additionally matches ErrIntegrity
// under errors.Is, so callers can branch on the specific failure
// (ErrCorruptSnapshot vs ErrCorruptWAL) or on the whole integrity class with
// one check.
type integrityError struct{ msg string }

func (e *integrityError) Error() string { return e.msg }

func (e *integrityError) Is(target error) bool { return target == ErrIntegrity }

// Stats summarizes server-side resource usage; it backs the storage columns
// of Table II and Fig. 5. The fault-tolerance counters are contributed by
// the decorator layers as a Stats call passes through them: WithFaults adds
// FaultsInjected, WithRetry adds Retries, and the TCP client/pool add
// Reconnects — so one Stats() call on the outermost service reports the
// whole stack.
type Stats struct {
	Objects     int   // number of live storage objects
	StoredBytes int64 // total ciphertext bytes currently stored

	FaultsInjected int64 // transient errors injected by WithFaults
	Retries        int64 // re-attempts performed by WithRetry
	Reconnects     int64 // TCP re-dials and pool connection replacements

	// Epoch is the most recent recovery epoch the client marked via
	// Checkpoint, and MutationsSinceEpoch counts mutating operations
	// applied after that mark. A client resuming from a checkpoint file
	// requires Epoch to match and MutationsSinceEpoch to be zero —
	// otherwise its stash/position map no longer describes the server's
	// trees. Both flow over the wire so the check works on any transport.
	Epoch               int64
	MutationsSinceEpoch int64

	// Replication state, contributed by a ReplicatedServer. Primary reports
	// whether this server currently holds the primary role; Fence is its
	// fencing epoch; ReplicaLag is the primary-side count of shipped records
	// the slowest configured replica has not acknowledged; Watermark is the
	// replica-side count of replication records applied this reign (the
	// failover layer promotes the freshest reachable replica). Failovers is
	// added client-side by a FailoverPool.
	Primary    bool
	Fence      int64
	ReplicaLag int64
	Watermark  int64
	Failovers  int64
}

// Service is the full server-side surface the client can invoke. Both the
// in-process and TCP transports expose exactly this interface, so protocol
// code is transport-agnostic.
type Service interface {
	// CreateArray allocates a flat array of n empty cells.
	CreateArray(name string, n int) error
	// ArrayLen returns the number of cells in an array.
	ArrayLen(name string) (int, error)
	// ReadCells returns the ciphertexts at the given indices.
	ReadCells(name string, idx []int64) ([][]byte, error)
	// WriteCells replaces the ciphertexts at the given indices.
	WriteCells(name string, idx []int64, cts [][]byte) error
	// CreateTree allocates a complete binary bucket tree with the given
	// number of levels (root..leaves) and slots per bucket; every slot
	// starts empty and is populated by client writes.
	CreateTree(name string, levels, slotsPerBucket int) error
	// ReadPath returns the slots of all buckets on the root→leaf path,
	// root first.
	ReadPath(name string, leaf uint32) ([][]byte, error)
	// WritePath replaces the slots of all buckets on the root→leaf path.
	// len(slots) must equal levels × slotsPerBucket.
	WritePath(name string, leaf uint32, slots [][]byte) error
	// WriteBuckets bulk-replaces the slots of the contiguous bucket range
	// starting at bucketStart (heap order, root = 0). It exists so ORAM
	// setup can populate the whole tree with encrypted dummies in one
	// linear pass rather than N overlapping path writes.
	WriteBuckets(name string, bucketStart int, slots [][]byte) error
	// Delete removes an object and frees its storage.
	Delete(name string) error
	// Reveal logs a deliberately public value (a result bit or an FD id).
	// It exists so the adversary's trace contains exactly the allowed
	// leakage L(DB) and nothing else.
	Reveal(tag string, value int64) error
	// Checkpoint marks a client recovery epoch. A durable backend makes
	// everything up to this point crash-safe (snapshot + WAL compaction)
	// before returning; the in-memory server just records the mark. The
	// epoch value and its timing are public — they reveal only how far
	// the levelwise traversal has progressed, which L(DB) already
	// includes via the reveal log.
	Checkpoint(epoch int64) error
	// Stats reports storage accounting.
	Stats() (Stats, error)
}

// Server is the in-memory reference implementation of Service. It is safe
// for concurrent use; the parallel sorting driver issues overlapping
// ReadCells/WriteCells on disjoint indices.
//
// Recovery marks are tracked per database namespace (see NamespaceOf): each
// tenant checkpoints its own epoch, and a tenant's MutationsSinceEpoch counts
// only that tenant's writes — another tenant's traffic must not invalidate a
// resuming client's consistency check. The root namespace "" is what
// un-prefixed (single-tenant) clients use, so Checkpoint/Stats keep their
// historical meaning.
type Server struct {
	mu      sync.RWMutex
	arrays  map[string]*array
	trees   map[string]*tree
	rec     *trace.Recorder
	reveals []Reveal
	marks   map[string]*nsMark // recovery marks keyed by namespace
}

// nsMark is one namespace's recovery state: the last client-marked epoch and
// the count of mutations applied in that namespace since the mark.
type nsMark struct {
	epoch int64
	dirty int64
}

// Reveal is one logged public disclosure.
type Reveal struct {
	Tag   string
	Value int64
}

// Stored objects carry one CRC32 per cell/slot, maintained on every write
// and checked on every read and scrub pass. The server holds no keys, so
// this is not a substitute for the client's AEAD verification — it is how
// the server itself notices latent corruption (bit rot) early enough to
// repair from a replica instead of serving bytes the client will fatally
// reject.
type array struct {
	cells [][]byte
	sums  []uint32
	bytes int64
}

type tree struct {
	levels int
	slots  int // per bucket
	data   [][]byte
	sums   []uint32
	bytes  int64
}

// cellSum is the stored-cell checksum. An empty or never-written cell sums
// to 0, which crc32 also assigns to the empty payload — consistent.
func cellSum(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// NewServer returns an empty server with trace counting active.
func NewServer() *Server {
	return &Server{
		arrays: make(map[string]*array),
		trees:  make(map[string]*tree),
		rec:    trace.NewRecorder(),
		marks:  make(map[string]*nsMark),
	}
}

// Trace exposes the adversary's recorder.
func (s *Server) Trace() *trace.Recorder { return s.rec }

// markLocked returns the recovery mark for a namespace, creating it on first
// use. Callers hold s.mu.
func (s *Server) markLocked(db string) *nsMark {
	m, ok := s.marks[db]
	if !ok {
		m = &nsMark{}
		s.marks[db] = m
	}
	return m
}

// bumpLocked counts one mutation against the namespace that owns the object.
// Callers hold s.mu.
func (s *Server) bumpLocked(name string) {
	s.markLocked(NamespaceOf(name)).dirty++
}

// Reveals returns the public values the client has disclosed since the last
// recorder reset.
func (s *Server) Reveals() []Reveal {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Reveal(nil), s.reveals...)
}

// ResetReveals clears the reveal log.
func (s *Server) ResetReveals() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reveals = nil
}

// CreateArray implements Service.
func (s *Server) CreateArray(name string, n int) error {
	if n < 0 {
		return fmt.Errorf("store: array %q: negative size %d", name, n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.arrays[name]; ok {
		return fmt.Errorf("%w: array %q", ErrObjectExists, name)
	}
	if _, ok := s.trees[name]; ok {
		return fmt.Errorf("%w: tree %q", ErrObjectExists, name)
	}
	s.arrays[name] = &array{cells: make([][]byte, n), sums: make([]uint32, n)}
	s.bumpLocked(name)
	s.rec.Record(trace.Event{Op: trace.OpCreateArray, Object: name, Index: int64(n)})
	return nil
}

// ArrayLen implements Service.
func (s *Server) ArrayLen(name string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.arrays[name]
	if !ok {
		return 0, fmt.Errorf("%w: array %q", ErrUnknownObject, name)
	}
	return len(a.cells), nil
}

// ReadCells implements Service.
func (s *Server) ReadCells(name string, idx []int64) ([][]byte, error) {
	s.mu.RLock()
	a, ok := s.arrays[name]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: array %q", ErrUnknownObject, name)
	}
	out := make([][]byte, len(idx))
	total := 0
	var bad []int64
	for k, i := range idx {
		if i < 0 || i >= int64(len(a.cells)) {
			s.mu.RUnlock()
			return nil, fmt.Errorf("%w: array %q index %d (len %d)", ErrOutOfRange, name, i, len(a.cells))
		}
		if cellSum(a.cells[i]) != a.sums[i] {
			bad = append(bad, i)
		}
		out[k] = a.cells[i]
		total += len(out[k])
	}
	s.mu.RUnlock()
	if len(bad) > 0 {
		return nil, &CorruptCellsError{Object: name, Idx: bad}
	}
	for k, i := range idx {
		s.rec.Record(trace.Event{Op: trace.OpReadCell, Object: name, Index: i, Bytes: len(out[k])})
	}
	_ = total
	return out, nil
}

// WriteCells implements Service.
func (s *Server) WriteCells(name string, idx []int64, cts [][]byte) error {
	if len(idx) != len(cts) {
		return fmt.Errorf("store: WriteCells on %q: %d indices, %d ciphertexts", name, len(idx), len(cts))
	}
	s.mu.Lock()
	a, ok := s.arrays[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: array %q", ErrUnknownObject, name)
	}
	for k, i := range idx {
		if i < 0 || i >= int64(len(a.cells)) {
			s.mu.Unlock()
			return fmt.Errorf("%w: array %q index %d (len %d)", ErrOutOfRange, name, i, len(a.cells))
		}
		a.bytes += int64(len(cts[k]) - len(a.cells[i]))
		a.cells[i] = cts[k]
		a.sums[i] = cellSum(cts[k])
	}
	s.bumpLocked(name)
	s.mu.Unlock()
	for k, i := range idx {
		s.rec.Record(trace.Event{Op: trace.OpWriteCell, Object: name, Index: i, Bytes: len(cts[k])})
	}
	return nil
}

// CreateTree implements Service.
func (s *Server) CreateTree(name string, levels, slotsPerBucket int) error {
	if levels < 1 || slotsPerBucket < 1 {
		return fmt.Errorf("store: tree %q: invalid shape %d levels × %d slots", name, levels, slotsPerBucket)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.trees[name]; ok {
		return fmt.Errorf("%w: tree %q", ErrObjectExists, name)
	}
	if _, ok := s.arrays[name]; ok {
		return fmt.Errorf("%w: array %q", ErrObjectExists, name)
	}
	buckets := (1 << levels) - 1
	s.trees[name] = &tree{
		levels: levels,
		slots:  slotsPerBucket,
		data:   make([][]byte, buckets*slotsPerBucket),
		sums:   make([]uint32, buckets*slotsPerBucket),
	}
	s.bumpLocked(name)
	s.rec.Record(trace.Event{Op: trace.OpCreateTree, Object: name, Index: int64(levels)})
	return nil
}

// pathNodes returns the bucket indices (heap layout, root = 0) from the root
// to the given leaf.
func (t *tree) pathNodes(leaf uint32) ([]int, error) {
	numLeaves := 1 << (t.levels - 1)
	if int(leaf) >= numLeaves {
		return nil, fmt.Errorf("%w: leaf %d (have %d leaves)", ErrOutOfRange, leaf, numLeaves)
	}
	nodes := make([]int, t.levels)
	node := numLeaves - 1 + int(leaf) // leaf node index in heap layout
	for l := t.levels - 1; l >= 0; l-- {
		nodes[l] = node
		node = (node - 1) / 2
	}
	return nodes, nil
}

// ReadPath implements Service.
func (s *Server) ReadPath(name string, leaf uint32) ([][]byte, error) {
	s.mu.RLock()
	t, ok := s.trees[name]
	if !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: tree %q", ErrUnknownObject, name)
	}
	nodes, err := t.pathNodes(leaf)
	if err != nil {
		s.mu.RUnlock()
		return nil, fmt.Errorf("store: ReadPath(%q): %w", name, err)
	}
	out := make([][]byte, 0, len(nodes)*t.slots)
	total := 0
	var bad []int64
	for _, n := range nodes {
		for j := 0; j < t.slots; j++ {
			ct := t.data[n*t.slots+j]
			if cellSum(ct) != t.sums[n*t.slots+j] {
				bad = append(bad, int64(n*t.slots+j))
			}
			out = append(out, ct)
			total += len(ct)
		}
	}
	s.mu.RUnlock()
	if len(bad) > 0 {
		sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
		return nil, &CorruptCellsError{Object: name, Tree: true, Idx: bad}
	}
	s.rec.Record(trace.Event{Op: trace.OpReadPath, Object: name, Index: int64(leaf), Bytes: total})
	return out, nil
}

// WritePath implements Service.
func (s *Server) WritePath(name string, leaf uint32, slots [][]byte) error {
	s.mu.Lock()
	t, ok := s.trees[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: tree %q", ErrUnknownObject, name)
	}
	nodes, err := t.pathNodes(leaf)
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("store: WritePath(%q): %w", name, err)
	}
	if len(slots) != len(nodes)*t.slots {
		s.mu.Unlock()
		return fmt.Errorf("%w: tree %q: got %d slots, want %d", ErrBadPath, name, len(slots), len(nodes)*t.slots)
	}
	total := 0
	k := 0
	for _, n := range nodes {
		for j := 0; j < t.slots; j++ {
			t.bytes += int64(len(slots[k]) - len(t.data[n*t.slots+j]))
			t.data[n*t.slots+j] = slots[k]
			t.sums[n*t.slots+j] = cellSum(slots[k])
			total += len(slots[k])
			k++
		}
	}
	s.bumpLocked(name)
	s.mu.Unlock()
	s.rec.Record(trace.Event{Op: trace.OpWritePath, Object: name, Index: int64(leaf), Bytes: total})
	return nil
}

// WriteBuckets implements Service.
func (s *Server) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	s.mu.Lock()
	t, ok := s.trees[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: tree %q", ErrUnknownObject, name)
	}
	if len(slots)%t.slots != 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: tree %q: %d slots not a multiple of bucket size %d", ErrBadPath, name, len(slots), t.slots)
	}
	first := bucketStart * t.slots
	if bucketStart < 0 || first+len(slots) > len(t.data) {
		s.mu.Unlock()
		return fmt.Errorf("%w: tree %q: bucket range [%d,+%d)", ErrOutOfRange, name, bucketStart, len(slots)/t.slots)
	}
	total := 0
	for k, ct := range slots {
		t.bytes += int64(len(ct) - len(t.data[first+k]))
		t.data[first+k] = ct
		t.sums[first+k] = cellSum(ct)
		total += len(ct)
	}
	s.bumpLocked(name)
	s.mu.Unlock()
	s.rec.Record(trace.Event{Op: trace.OpWriteBucket, Object: name, Index: int64(bucketStart), Bytes: total})
	return nil
}

// Delete implements Service.
func (s *Server) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.arrays[name]; ok {
		delete(s.arrays, name)
	} else if _, ok := s.trees[name]; ok {
		delete(s.trees, name)
	} else {
		return fmt.Errorf("%w: %q", ErrUnknownObject, name)
	}
	s.bumpLocked(name)
	s.rec.Record(trace.Event{Op: trace.OpDelete, Object: name})
	return nil
}

// Reveal implements Service.
func (s *Server) Reveal(tag string, value int64) error {
	s.mu.Lock()
	s.reveals = append(s.reveals, Reveal{Tag: tag, Value: value})
	s.mu.Unlock()
	s.rec.Record(trace.Event{Op: trace.OpReveal, Object: tag, Index: value})
	return nil
}

// Checkpoint implements Service: it records the epoch mark and zeroes the
// mutation counter for the root namespace. Durability is the durable
// backend's job; the in-memory server only supports the resume-consistency
// check in Stats.
func (s *Server) Checkpoint(epoch int64) error {
	return s.CheckpointNS("", epoch)
}

// CheckpointNS implements NamespaceService: it marks a recovery epoch for one
// database namespace, leaving every other tenant's mark untouched.
func (s *Server) CheckpointNS(db string, epoch int64) error {
	s.mu.Lock()
	m := s.markLocked(db)
	m.epoch = epoch
	m.dirty = 0
	s.mu.Unlock()
	s.rec.Record(trace.Event{Op: trace.OpCheckpoint, Object: db, Index: epoch})
	return nil
}

// Epoch returns the root namespace's last client-marked recovery epoch.
func (s *Server) Epoch() int64 { return s.EpochNS("") }

// EpochNS returns a namespace's last client-marked recovery epoch.
func (s *Server) EpochNS(db string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if m, ok := s.marks[db]; ok {
		return m.epoch
	}
	return 0
}

// Stats implements Service: server-wide object and byte totals, with the
// recovery mark of the root namespace (the one un-prefixed clients write to).
func (s *Server) Stats() (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	st.Objects = len(s.arrays) + len(s.trees)
	for _, a := range s.arrays {
		st.StoredBytes += a.bytes
	}
	for _, t := range s.trees {
		st.StoredBytes += t.bytes
	}
	if m, ok := s.marks[""]; ok {
		st.Epoch = m.epoch
		st.MutationsSinceEpoch = m.dirty
	}
	return st, nil
}

// StatsNS implements NamespaceService: accounting restricted to one database
// namespace — only that tenant's objects, bytes, and recovery mark. A tenant
// therefore learns nothing about its neighbors from Stats, and its
// MutationsSinceEpoch check stays sound while other tenants keep writing.
func (s *Server) StatsNS(db string) (Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	for name, a := range s.arrays {
		if NamespaceOf(name) == db {
			st.Objects++
			st.StoredBytes += a.bytes
		}
	}
	for name, t := range s.trees {
		if NamespaceOf(name) == db {
			st.Objects++
			st.StoredBytes += t.bytes
		}
	}
	if m, ok := s.marks[db]; ok {
		st.Epoch = m.epoch
		st.MutationsSinceEpoch = m.dirty
	}
	return st, nil
}

// ObjectNames returns every live object name, sorted. The scrubber sweeps
// them in this fixed order so its access pattern is a function of the public
// structure only (DESIGN.md §15).
func (s *Server) ObjectNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.arrays)+len(s.trees))
	for name := range s.arrays {
		names = append(names, name)
	}
	for name := range s.trees {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ObjectExtent reports an object's stored-cell count (array cells, or flat
// tree slots) and whether it is a tree.
func (s *Server) ObjectExtent(name string) (n int, isTree bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if a, ok := s.arrays[name]; ok {
		return len(a.cells), false, nil
	}
	if t, ok := s.trees[name]; ok {
		return len(t.data), true, nil
	}
	return 0, false, fmt.Errorf("%w: %q", ErrUnknownObject, name)
}

// VerifyStored checks the checksums of the cell/slot range [lo, hi) and
// returns the corrupt positions (nil when clean). Verification holds only
// the read lock and records nothing in the adversary trace: the scrubber is
// the server inspecting its own memory, not a client access.
func (s *Server) VerifyStored(name string, lo, hi int) (bad []int64, isTree bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cells, sums := [][]byte(nil), []uint32(nil)
	if a, ok := s.arrays[name]; ok {
		cells, sums = a.cells, a.sums
	} else if t, ok := s.trees[name]; ok {
		cells, sums, isTree = t.data, t.sums, true
	} else {
		return nil, false, fmt.Errorf("%w: %q", ErrUnknownObject, name)
	}
	if lo < 0 || hi > len(cells) || lo > hi {
		return nil, isTree, fmt.Errorf("%w: %q range [%d,%d) of %d", ErrOutOfRange, name, lo, hi, len(cells))
	}
	for i := lo; i < hi; i++ {
		if cellSum(cells[i]) != sums[i] {
			bad = append(bad, int64(i))
		}
	}
	return bad, isTree, nil
}

// StoredVerified returns the ciphertexts at the given positions after
// re-verifying their checksums — the donor side of repair-from-replica: a
// peer must never serve bytes its own store has rotted. Like VerifyStored it
// records no trace events.
func (s *Server) StoredVerified(name string, isTree bool, idx []int64) ([][]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cells, sums, err := s.storedLocked(name, isTree)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(idx))
	var bad []int64
	for k, i := range idx {
		if i < 0 || i >= int64(len(cells)) {
			return nil, fmt.Errorf("%w: %q index %d (len %d)", ErrOutOfRange, name, i, len(cells))
		}
		if cellSum(cells[i]) != sums[i] {
			bad = append(bad, i)
			continue
		}
		out[k] = cells[i]
	}
	if len(bad) > 0 {
		return nil, &CorruptCellsError{Object: name, Tree: isTree, Idx: bad}
	}
	return out, nil
}

// InstallStored rewrites the given positions with repaired ciphertexts,
// updating checksums. A repair re-establishes bytes the object logically
// already held, so it bumps no namespace dirty counter (a resuming client's
// MutationsSinceEpoch check must not trip on a background repair) and
// records no adversary-trace event (the canonical client trace is unchanged
// by self-healing; the repair itself is visible to the adversary through the
// replication view, which DESIGN.md §15 argues leaks nothing new).
func (s *Server) InstallStored(name string, isTree bool, idx []int64, cts [][]byte) error {
	if len(idx) != len(cts) {
		return fmt.Errorf("store: InstallStored on %q: %d indices, %d ciphertexts", name, len(idx), len(cts))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cells, sums, err := s.storedLocked(name, isTree)
	if err != nil {
		return err
	}
	for k, i := range idx {
		if i < 0 || i >= int64(len(cells)) {
			return fmt.Errorf("%w: %q index %d (len %d)", ErrOutOfRange, name, i, len(cells))
		}
		delta := int64(len(cts[k]) - len(cells[i]))
		if a, ok := s.arrays[name]; ok {
			a.bytes += delta
		} else if t, ok := s.trees[name]; ok {
			t.bytes += delta
		}
		cells[i] = cts[k]
		sums[i] = cellSum(cts[k])
	}
	return nil
}

// storedLocked resolves an object's cell and sum slices. Callers hold s.mu.
func (s *Server) storedLocked(name string, isTree bool) ([][]byte, []uint32, error) {
	if isTree {
		t, ok := s.trees[name]
		if !ok {
			return nil, nil, fmt.Errorf("%w: tree %q", ErrUnknownObject, name)
		}
		return t.data, t.sums, nil
	}
	a, ok := s.arrays[name]
	if !ok {
		return nil, nil, fmt.Errorf("%w: array %q", ErrUnknownObject, name)
	}
	return a.cells, a.sums, nil
}

// CorruptStored flips one bit of a stored ciphertext without touching its
// checksum — the bit-rot injection the scrub/repair harness uses. It fails
// if the cell is empty (there is no byte to flip). Injection only; never
// called outside tests and the chaos/bench harnesses.
func (s *Server) CorruptStored(name string, isTree bool, i int64, bit uint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cells, _, err := s.storedLocked(name, isTree)
	if err != nil {
		return err
	}
	if i < 0 || i >= int64(len(cells)) {
		return fmt.Errorf("%w: %q index %d (len %d)", ErrOutOfRange, name, i, len(cells))
	}
	if len(cells[i]) == 0 {
		return fmt.Errorf("store: CorruptStored: %q cell %d is empty", name, i)
	}
	// Copy-on-rot: the stored slice may alias a buffer a reader still holds.
	rotted := append([]byte(nil), cells[i]...)
	rotted[int(bit/8)%len(rotted)] ^= 1 << (bit % 8)
	cells[i] = rotted
	return nil
}
