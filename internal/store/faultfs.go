package store

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
)

// FaultFS wraps an FS with seeded disk-fault injection: a deterministic
// ENOSPC window (optionally landing a short write first), fsync failures,
// and bit rot on file reads. The schedule is a pure function of the seed and
// the byte/call counters, so two runs over the same workload fail at the
// same points — the scrub/disk-fault chaos harness leans on that.
type FaultFSConfig struct {
	// Seed fixes the short-write cut points and rot bit positions.
	Seed int64
	// DiskFullAfterBytes arms the ENOSPC window: once this many bytes have
	// been written through the FS, further writes fail with ErrDiskFull
	// until another DiskFullBytes of writes have been *attempted* (modeling
	// space freed elsewhere); 0 disables, and DiskFullBytes 0 makes the
	// window permanent.
	DiskFullAfterBytes int64
	DiskFullBytes      int64
	// ShortWrites makes each ENOSPC-failing write land a random prefix
	// before erroring, the torn-write shape a real ENOSPC can leave.
	ShortWrites bool
	// FsyncFailAfter makes the Nth fsync (1-based) and every later one fail
	// with an injected I/O error; 0 disables. The durable layer treats any
	// fsync failure as fail-stop (never ack then lose).
	FsyncFailAfter int64
	// RotAfterReads flips one bit in the payload of the Nth file Read call
	// (1-based) and every RotEvery-th read after it; 0 disables. RotEvery 0
	// rots only the Nth read.
	RotAfterReads int64
	RotEvery      int64
}

// FaultFS implements FS. Safe for concurrent use.
type FaultFS struct {
	inner FS
	cfg   FaultFSConfig

	mu      sync.Mutex
	rng     *rand.Rand
	written int64 // bytes attempted through Write
	fsyncs  int64
	reads   int64

	injectedFull  int64
	injectedSync  int64
	injectedRot   int64
	injectedShort int64
}

// NewFaultFS wraps inner (OSFS when nil) with the given fault schedule.
func NewFaultFS(inner FS, cfg FaultFSConfig) *FaultFS {
	if inner == nil {
		inner = OSFS
	}
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// BytesWritten reports the bytes attempted through Write so far — the
// coordinate system DiskFullAfterBytes windows are placed in.
func (f *FaultFS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// DiskFullInjected reports how many writes were refused with ErrDiskFull.
func (f *FaultFS) DiskFullInjected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedFull
}

// FsyncFailuresInjected reports how many fsyncs were failed.
func (f *FaultFS) FsyncFailuresInjected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedSync
}

// RotInjected reports how many reads had a bit flipped.
func (f *FaultFS) RotInjected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injectedRot
}

// admitWrite charges n attempted bytes against the ENOSPC window and reports
// whether the write may proceed; when refused with ShortWrites armed, cut is
// the prefix length to land before erroring. The counters advance whether or
// not the write is admitted, so the schedule depends only on the workload.
func (f *FaultFS) admitWrite(n int) (ok bool, cut int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	pos := f.written
	f.written += int64(n)
	if f.cfg.DiskFullAfterBytes <= 0 || pos < f.cfg.DiskFullAfterBytes {
		return true, 0
	}
	if f.cfg.DiskFullBytes > 0 && pos >= f.cfg.DiskFullAfterBytes+f.cfg.DiskFullBytes {
		return true, 0 // window passed: space was freed
	}
	f.injectedFull++
	if f.cfg.ShortWrites && n > 1 {
		f.injectedShort++
		cut = 1 + f.rng.Intn(n-1)
	}
	return false, cut
}

// admitSync reports whether an fsync may succeed.
func (f *FaultFS) admitSync() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fsyncs++
	if f.cfg.FsyncFailAfter > 0 && f.fsyncs >= f.cfg.FsyncFailAfter {
		f.injectedSync++
		return false
	}
	return true
}

// rotRead decides whether this read call gets a bit flipped, and where
// (fractional position into the payload, bit index).
func (f *FaultFS) rotRead() (bool, float64, uint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	if f.cfg.RotAfterReads <= 0 || f.reads < f.cfg.RotAfterReads {
		return false, 0, 0
	}
	if f.reads > f.cfg.RotAfterReads && (f.cfg.RotEvery <= 0 || (f.reads-f.cfg.RotAfterReads)%f.cfg.RotEvery != 0) {
		return false, 0, 0
	}
	f.injectedRot++
	return true, f.rng.Float64(), uint(f.rng.Intn(8))
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *FaultFS) Open(name string) (File, error) {
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

// ReadFile routes through Open so whole-file reads (the FENCE file) are
// subject to rot injection like any other read.
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

func (f *FaultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }

func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// faultFile intercepts the per-file operations the schedule covers.
type faultFile struct {
	File
	fs *FaultFS
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ok, cut := ff.fs.admitWrite(len(p))
	if ok {
		return ff.File.Write(p)
	}
	n := 0
	if cut > 0 && cut < len(p) {
		// The torn shape a real ENOSPC can leave: part of the payload lands
		// before the error. The WAL writer must roll this back.
		n, _ = ff.File.Write(p[:cut])
	}
	return n, fmt.Errorf("%w: injected ENOSPC writing %q (%d bytes refused)", ErrDiskFull, ff.Name(), len(p))
}

func (ff *faultFile) Sync() error {
	if ff.fs.admitSync() {
		return ff.File.Sync()
	}
	return fmt.Errorf("store: injected fsync failure on %q", ff.Name())
}

func (ff *faultFile) Read(p []byte) (int, error) {
	n, err := ff.File.Read(p)
	if n > 0 {
		if rot, frac, bit := ff.fs.rotRead(); rot {
			p[int(frac*float64(n))%n] ^= 1 << bit
		}
	}
	return n, err
}
