package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// testRecords is a representative mutation sequence: creates, overwrites, a
// delete-then-recreate, tree traffic, and a checkpoint mark.
func testRecords() []*walRecord {
	return []*walRecord{
		{Op: walCreateArray, Name: "a", N: 4},
		{Op: walWriteCells, Name: "a", Idx: []int64{0, 3}, Cts: [][]byte{{1}, {2, 3}}},
		{Op: walCreateTree, Name: "t", Levels: 3, Slots: 2},
		{Op: walWritePath, Name: "t", Leaf: 1, Cts: [][]byte{{9}, {8}, {7}, nil, nil, nil}},
		{Op: walWriteBuckets, Name: "t", N: 0, Cts: [][]byte{{5}, nil}},
		{Op: walDelete, Name: "a"},
		{Op: walCreateArray, Name: "a", N: 2},
		{Op: walWriteCells, Name: "a", Idx: []int64{1}, Cts: [][]byte{{42}}},
		{Op: walCheckpoint, N: 7},
	}
}

func encodeAll(t *testing.T, recs []*walRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		frame, err := encodeWALRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(frame)
	}
	return buf.Bytes()
}

func TestWALRecordRoundTrip(t *testing.T) {
	for _, rec := range testRecords() {
		frame, err := encodeWALRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := readWALRecord(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%v: %v", rec.Op, err)
		}
		if n != int64(len(frame)) {
			t.Errorf("%v: consumed %d bytes, frame is %d", rec.Op, n, len(frame))
		}
		if got.Op != rec.Op || got.Name != rec.Name || got.N != rec.N {
			t.Errorf("round trip: got %+v, want %+v", got, rec)
		}
	}
}

func TestScanWALStopsAtTornTail(t *testing.T) {
	recs := testRecords()
	data := encodeAll(t, recs)
	// Append a torn frame: the first half of another record.
	extra, err := encodeWALRecord(&walRecord{Op: walWriteCells, Name: "a", Idx: []int64{0}, Cts: [][]byte{{1, 2, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte(nil), data...), extra[:len(extra)/2]...)

	got, validEnd, isTorn := scanWAL(bytes.NewReader(torn))
	if !isTorn {
		t.Error("torn tail not detected")
	}
	if len(got) != len(recs) {
		t.Errorf("scanned %d records, want %d", len(got), len(recs))
	}
	if validEnd != int64(len(data)) {
		t.Errorf("validEnd = %d, want %d", validEnd, len(data))
	}
}

func TestScanWALGarbage(t *testing.T) {
	recs, validEnd, torn := scanWAL(bytes.NewReader([]byte("this is not a log")))
	if len(recs) != 0 || validEnd != 0 || !torn {
		t.Errorf("garbage scan = %d records, end %d, torn %v", len(recs), validEnd, torn)
	}
}

// TestWALReplayIdempotent is the recovery-correctness core: replaying the
// same log once or twice must converge to the same state, because a crash
// between snapshot rename and log truncation makes recovery replay records
// the snapshot already absorbed.
func TestWALReplayIdempotent(t *testing.T) {
	recs := testRecords()

	once := NewServer()
	if err := replayWAL(once, recs); err != nil {
		t.Fatalf("first replay: %v", err)
	}
	statsOnce, _ := once.Stats()

	twice := NewServer()
	if err := replayWAL(twice, recs); err != nil {
		t.Fatal(err)
	}
	if err := replayWAL(twice, recs); err != nil {
		t.Fatalf("second replay over same state: %v", err)
	}
	statsTwice, _ := twice.Stats()

	if statsOnce.Objects != statsTwice.Objects || statsOnce.StoredBytes != statsTwice.StoredBytes ||
		statsOnce.Epoch != statsTwice.Epoch || statsOnce.MutationsSinceEpoch != statsTwice.MutationsSinceEpoch {
		t.Errorf("double replay diverged: once %+v, twice %+v", statsOnce, statsTwice)
	}
	for _, s := range []*Server{once, twice} {
		got, err := s.ReadCells("a", []int64{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != nil || !bytes.Equal(got[1], []byte{42}) {
			t.Errorf("cells after replay = %v", got)
		}
		if s.Epoch() != 7 {
			t.Errorf("epoch after replay = %d, want 7", s.Epoch())
		}
	}
}

func TestWALReplayRejectsMidLogFailure(t *testing.T) {
	// A write to an object no create established cannot extend any snapshot:
	// that is corruption, not a torn tail.
	recs := []*walRecord{{Op: walWriteCells, Name: "ghost", Idx: []int64{0}, Cts: [][]byte{{1}}}}
	err := replayWAL(NewServer(), recs)
	if !errors.Is(err, ErrCorruptWAL) {
		t.Errorf("replay of dangling write = %v, want ErrCorruptWAL", err)
	}
}

func TestWALWriterTornAppendRecoverable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, walName)
	w, err := openWALWriter(OSFS, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for _, rec := range recs {
		if err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.appendTorn(&walRecord{Op: walDelete, Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, _, torn := scanWAL(f)
	if !torn {
		t.Error("torn append not detected on disk")
	}
	if len(got) != len(recs) {
		t.Errorf("recovered %d records, want %d", len(got), len(recs))
	}
}
