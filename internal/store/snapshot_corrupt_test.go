package store

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// buildSnapshotBytes produces a realistic snapshot: several arrays and trees
// with pseudo-random ciphertext-like contents and a marked epoch.
func buildSnapshotBytes(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	s := NewServer()
	for i := 0; i < 3; i++ {
		name := string(rune('a' + i))
		if err := s.CreateArray(name, 8); err != nil {
			t.Fatal(err)
		}
		for j := int64(0); j < 8; j++ {
			ct := make([]byte, 1+rng.Intn(32))
			rng.Read(ct)
			if err := s.WriteCells(name, []int64{j}, [][]byte{ct}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 2; i++ {
		name := string(rune('t' + i))
		if err := s.CreateTree(name, 4, 2); err != nil {
			t.Fatal(err)
		}
		for leaf := uint32(0); leaf < 8; leaf++ {
			slots := make([][]byte, 8)
			for k := range slots {
				slots[k] = make([]byte, 16)
				rng.Read(slots[k])
			}
			if err := s.WritePath(name, leaf, slots); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Checkpoint(5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotTruncationProperty is the property test behind crash safety:
// loading a snapshot truncated at EVERY byte offset must yield
// ErrCorruptSnapshot — never a panic, never a half-loaded server.
func TestSnapshotTruncationProperty(t *testing.T) {
	data := buildSnapshotBytes(t)
	for cut := 0; cut < len(data); cut++ {
		s := NewServer()
		if err := s.CreateArray("sentinel", 1); err != nil {
			t.Fatal(err)
		}
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("LoadSnapshot panicked at truncation offset %d: %v", cut, p)
				}
			}()
			return s.LoadSnapshot(bytes.NewReader(data[:cut]))
		}()
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrCorruptSnapshot", cut, len(data), err)
		}
		// A failed load must leave the server untouched.
		if _, aerr := s.ArrayLen("sentinel"); aerr != nil {
			t.Fatalf("truncation at %d: failed load clobbered existing state: %v", cut, aerr)
		}
	}
	// And the untruncated stream still loads.
	if err := NewServer().LoadSnapshot(bytes.NewReader(data)); err != nil {
		t.Fatalf("full snapshot rejected: %v", err)
	}
}

// TestSnapshotBitFlipProperty flips every byte (one at a time) and requires
// the loader to either reject with ErrCorruptSnapshot or — never — panic.
// (Every region is covered by magic, bounds, or CRC checks, so acceptance
// would mean silently loading corrupted state.)
func TestSnapshotBitFlipProperty(t *testing.T) {
	data := buildSnapshotBytes(t)
	flipped := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		copy(flipped, data)
		flipped[i] ^= 0x41
		s := NewServer()
		err := func() (err error) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("LoadSnapshot panicked with byte %d flipped: %v", i, p)
				}
			}()
			return s.LoadSnapshot(bytes.NewReader(flipped))
		}()
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("byte %d flipped: err = %v, want ErrCorruptSnapshot", i, err)
		}
	}
}
