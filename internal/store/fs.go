package store

import (
	"io"
	"os"
)

// FS abstracts the filesystem operations the durable store performs, so the
// disk-fault harness can inject ENOSPC, short writes, fsync failures, and
// bit rot underneath the WAL/snapshot/FENCE paths without touching a real
// disk's failure modes. The default implementation (OSFS) forwards to the os
// package; DurableOptions.FS selects an alternative.
type FS interface {
	// MkdirAll creates a directory path (os.MkdirAll semantics).
	MkdirAll(path string, perm os.FileMode) error
	// Open opens a file (or directory, for fsync) read-only.
	Open(name string) (File, error)
	// OpenFile is the generalized open (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a unique temporary file in dir (os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// ReadDir lists a directory (os.ReadDir).
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile reads a whole file (os.ReadFile).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath (os.Rename).
	Rename(oldpath, newpath string) error
	// Remove deletes a file (os.Remove).
	Remove(name string) error
	// Truncate resizes the named file (os.Truncate).
	Truncate(name string, size int64) error
}

// File is the open-file surface the store uses: sequential reads and
// appends, fsync, in-place truncation. *os.File implements it.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
