package store

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

// mutateSample applies a recognizable mutation sequence through the Service
// surface.
func mutateSample(t *testing.T, svc Service) {
	t.Helper()
	if err := svc.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}
	if err := svc.WriteCells("a", []int64{0, 3}, [][]byte{{1}, {2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.CreateTree("t", 3, 2); err != nil {
		t.Fatal(err)
	}
	if err := svc.WritePath("t", 2, [][]byte{{9}, {8}, {7}, {6}, {5}, {4}}); err != nil {
		t.Fatal(err)
	}
}

// checkSample verifies the mutateSample state survived.
func checkSample(t *testing.T, svc Service) {
	t.Helper()
	got, err := svc.ReadCells("a", []int64{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], []byte{1}) || got[1] != nil || !bytes.Equal(got[2], []byte{2, 3}) {
		t.Errorf("cells after recovery = %v", got)
	}
	slots, err := svc.ReadPath("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(slots[0], []byte{9}) || !bytes.Equal(slots[5], []byte{4}) {
		t.Errorf("path after recovery = %v", slots)
	}
}

func TestOpenDirRecoversFromWALAlone(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Close(); err != nil { // no snapshot: recovery must come from the log
		t.Fatal(err)
	}

	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	info := d2.Recovery()
	if info.SnapshotSeq != 0 || info.WALReplayed == 0 || info.TornTail {
		t.Errorf("recovery info = %+v, want WAL-only replay", info)
	}
	checkSample(t, d2)
}

func TestCheckpointSnapshotsAndCompacts(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	if size := d.WALSize(); size != 0 {
		t.Errorf("WAL size after checkpoint = %d, want 0 (compacted)", size)
	}
	st, _ := d.Stats()
	if st.Epoch != 3 || st.MutationsSinceEpoch != 0 {
		t.Errorf("stats after checkpoint = epoch %d, %d mutations", st.Epoch, st.MutationsSinceEpoch)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	info := d2.Recovery()
	if info.SnapshotSeq != 1 || info.SnapshotEpoch != 3 || info.WALReplayed != 0 {
		t.Errorf("recovery info = %+v, want snapshot #1 at epoch 3, empty WAL", info)
	}
	checkSample(t, d2)
	if d2.Epoch() != 3 {
		t.Errorf("epoch after recovery = %d, want 3", d2.Epoch())
	}
}

func TestRecoverySnapshotPlusWALTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	// Mutations after the snapshot live only in the log.
	if err := d.WriteCells("a", []int64{1}, [][]byte{{77}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info := d2.Recovery(); info.SnapshotSeq != 1 || info.WALReplayed != 1 {
		t.Errorf("recovery info = %+v, want snapshot #1 + 1 replayed record", info)
	}
	got, err := d2.ReadCells("a", []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], []byte{77}) {
		t.Errorf("post-snapshot write lost: %v", got[0])
	}
	st, _ := d2.Stats()
	if st.Epoch != 1 || st.MutationsSinceEpoch == 0 {
		t.Errorf("stats = %+v, want epoch 1 with replayed mutations counted", st)
	}
}

func TestKillPointTornTailAndRecovery(t *testing.T) {
	dir := t.TempDir()
	// mutateSample performs 4 mutations; kill on the 3rd append.
	d, err := OpenDir(dir, DurableOptions{KillAfterAppends: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}
	err = d.WriteCells("a", []int64{1}, [][]byte{{2}})
	if !errors.Is(err, ErrServerKilled) {
		t.Fatalf("3rd mutation = %v, want ErrServerKilled", err)
	}
	// A dead server answers nothing.
	if _, err := d.ReadCells("a", []int64{0}); !errors.Is(err, ErrServerKilled) {
		t.Errorf("read after kill = %v, want ErrServerKilled", err)
	}
	if err := d.WriteCells("a", []int64{2}, [][]byte{{3}}); !errors.Is(err, ErrServerKilled) {
		t.Errorf("write after kill = %v, want ErrServerKilled", err)
	}
	d.Close()

	// Recovery finds the torn frame, truncates it, and keeps exactly the
	// acknowledged operations.
	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	info := d2.Recovery()
	if !info.TornTail {
		t.Error("torn tail not reported")
	}
	if info.WALReplayed != 2 {
		t.Errorf("replayed %d records, want the 2 acknowledged ones", info.WALReplayed)
	}
	got, err := d2.ReadCells("a", []int64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], []byte{1}) {
		t.Errorf("acknowledged write lost: %v", got[0])
	}
	if got[1] != nil {
		t.Errorf("unacknowledged write survived: %v", got[1])
	}
}

func TestKillPointNeverRetried(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{KillAfterAppends: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// ErrServerKilled is fatal: the retry layer must give up immediately.
	r := WithRetry(d, RetryPolicy{MaxAttempts: 5})
	err = r.CreateArray("a", 1)
	if !errors.Is(err, ErrServerKilled) {
		t.Fatalf("retried create = %v, want ErrServerKilled", err)
	}
	if n := r.Retries(); n != 0 {
		t.Errorf("%d retries against a killed server, want 0 (fatal error)", n)
	}
}

func TestOpenDirAtEpochRollsBack(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCells("a", []int64{1}, [][]byte{{50}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCells("a", []int64{2}, [][]byte{{60}}); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Roll back to epoch 1: the epoch-2 snapshot and the log are discarded.
	d1, err := OpenDirAtEpoch(dir, 1, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := d1.ReadCells("a", []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != nil || got[1] != nil {
		t.Errorf("post-epoch-1 state survived rollback: %v", got)
	}
	st, _ := d1.Stats()
	if st.Epoch != 1 || st.MutationsSinceEpoch != 0 {
		t.Errorf("rolled-back stats = %+v", st)
	}
	checkSample(t, d1)
	d1.Close()

	// The abandoned future is gone for good: reopening plain recovers epoch 1.
	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Epoch() != 1 {
		t.Errorf("epoch after rollback + reopen = %d, want 1", d2.Epoch())
	}
}

func TestOpenDirAtEpochSkipsShutdownSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	// Mutate past the epoch mark, then take a shutdown snapshot: it records
	// epoch 1 with dirty mutations folded in.
	if err := d.WriteCells("a", []int64{1}, [][]byte{{50}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Rollback to epoch 1 must skip the newer shutdown snapshot (same epoch,
	// dirty > 0) and restore the checkpoint-consistent one.
	d1, err := OpenDirAtEpoch(dir, 1, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d1.Close()
	st, err := d1.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.MutationsSinceEpoch != 0 {
		t.Errorf("rolled-back stats = %+v, want epoch 1 with 0 mutations", st)
	}
	got, err := d1.ReadCells("a", []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != nil {
		t.Errorf("post-epoch mutation survived rollback: %v", got)
	}
	checkSample(t, d1)
}

func TestOpenDirAtEpochUnknown(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := OpenDirAtEpoch(dir, 42, DurableOptions{}); !errors.Is(err, ErrNoSuchEpoch) {
		t.Errorf("unknown epoch = %v, want ErrNoSuchEpoch", err)
	}
}

func TestSnapshotRetention(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	for epoch := int64(1); epoch <= 4; epoch++ {
		if err := d.Checkpoint(epoch); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	seqs, err := listSnapshots(OSFS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Errorf("retained snapshots = %v, want [3 4]", seqs)
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{KeepSnapshots: 2})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCells("a", []int64{1}, [][]byte{{50}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(2); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Flip bytes in the middle of the newest snapshot.
	path := snapPath(dir, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDir(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	info := d2.Recovery()
	if info.SnapshotSeq != 1 {
		t.Errorf("restored snapshot #%d, want fallback to #1", info.SnapshotSeq)
	}
	if d2.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", d2.Epoch())
	}
	checkSample(t, d2)
}

func TestOpenDirAllSnapshotsCorrupt(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDir(dir, DurableOptions{KeepSnapshots: 1})
	if err != nil {
		t.Fatal(err)
	}
	mutateSample(t, d)
	if err := d.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	d.Close()
	path := snapPath(dir, 1)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDir(dir, DurableOptions{}); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("all-corrupt open = %v, want ErrCorruptSnapshot", err)
	}
}
