package store

import (
	"bytes"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	s := NewServer()
	if err := s.CreateArray("a", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCells("a", []int64{0, 2}, [][]byte{{1, 2}, {3}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTree("t", 3, 2); err != nil {
		t.Fatal(err)
	}
	path := make([][]byte, 6)
	for i := range path {
		path[i] = []byte{byte(i + 10)}
	}
	if err := s.WritePath("t", 1, path); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Stats()

	var buf bytes.Buffer
	if err := s.SaveSnapshot(&buf); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	restored := NewServer()
	if err := restored.LoadSnapshot(&buf); err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	after, _ := restored.Stats()
	if before != after {
		t.Errorf("stats after restore = %+v, want %+v", after, before)
	}
	got, err := restored.ReadCells("a", []int64{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], []byte{1, 2}) || got[1] != nil || !bytes.Equal(got[2], []byte{3}) {
		t.Errorf("cells after restore = %v", got)
	}
	slots, err := restored.ReadPath("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range path {
		if !bytes.Equal(slots[i], path[i]) {
			t.Errorf("slot %d = %v, want %v", i, slots[i], path[i])
		}
	}
	// The restored server is fully writable.
	if err := restored.WriteCells("a", []int64{1}, [][]byte{{9}}); err != nil {
		t.Errorf("write after restore: %v", err)
	}
}

func TestSnapshotReplacesState(t *testing.T) {
	donor := NewServer()
	if err := donor.CreateArray("x", 1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := donor.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	target := NewServer()
	if err := target.CreateArray("old", 5); err != nil {
		t.Fatal(err)
	}
	if err := target.LoadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := target.ArrayLen("old"); err == nil {
		t.Error("pre-snapshot object survived LoadSnapshot")
	}
	if n, err := target.ArrayLen("x"); err != nil || n != 1 {
		t.Errorf("snapshot object missing: %d, %v", n, err)
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	s := NewServer()
	if err := s.LoadSnapshot(bytes.NewBufferString("not a snapshot")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestLoadSnapshotValidatesTreeShape(t *testing.T) {
	// Hand-craft a snapshot with an inconsistent tree.
	donor := NewServer()
	if err := donor.CreateTree("t", 2, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := donor.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt: decode/re-encode path is internal, so simulate by building
	// an empty server and checking a valid snapshot loads (shape checks
	// exercised by the success path) — then check the zero-level case via
	// direct construction.
	s := NewServer()
	if err := s.LoadSnapshot(&buf); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}
