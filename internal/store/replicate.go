package store

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sync"
	"sync/atomic"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/telemetry"
	"github.com/oblivfd/oblivfd/internal/trace"
)

// Primary/replica replication with fenced failover.
//
// A ReplicatedServer wraps a DurableServer in one of two roles. The primary
// serves clients and, after each locally durable mutation, ships the same
// CRC-framed WAL record to every configured replica over the transport's
// replication stream. A replica refuses client operations (ErrNotPrimary)
// and applies shipped records through its own durable layer, so its
// directory recovers to exactly the primary's state at the last applied
// record — promotion is just flipping the role.
//
// Ordering. The primary holds its ship mutex across apply-then-ship, so the
// ship order equals the WAL order equals the order clients observed. Each
// shipment carries a sequence number (records shipped this reign, before the
// batch); the replica requires it to equal its own applied count and answers
// ErrIntegrity on any gap, torn frame, or CRC mismatch — it never applies a
// prefix of a damaged batch. The primary heals a divergent or freshly
// (re)connected replica by pushing a full snapshot (SyncSnapshot) and
// resuming the stream from its current position.
//
// Fencing. Promotion is guarded by a monotonic fencing epoch, persisted in
// a FENCE file (and mirrored into the WAL as an audit record) before the
// role changes hands. Every hello and replication message carries the
// sender's fence; a server that learns of a higher fence deposes itself and
// answers every subsequent client operation with ErrFenced — a deposed
// primary cannot fork the history its successor continued, even across its
// own restarts, because the FENCE file records that it lost the role.
//
// Availability model. Shipping is best-effort: a down replica never blocks
// the primary (the discovery run keeps its availability), it just falls
// behind and is resynced by snapshot when it returns. A dead peer fails
// fast at dial; a hung peer (connection open, nothing answering) costs at
// most one ship deadline — the dialer's call timeout, which fdserver keeps
// short for replication connections — before it is marked down and skipped
// until the redial cadence, and even that stall is confined to writers:
// shipping happens outside the role mutex, so reads, Stats probes (which
// failover depends on), and fence observations never wait behind a slow
// peer. The cost is that a failover to a behind replica loses the
// unshipped suffix — which the single-writer client immediately detects
// (its ORAM state no longer matches) and repairs through the same
// retry/reconcile path it uses after a redial. See DESIGN.md §13 for the
// leakage argument.

// ReplicaConn is the primary's view of one replica: the two replication
// RPCs. *transport.Client implements it.
type ReplicaConn interface {
	// Replicate ships framed WAL records; seq is the shipper's count of
	// records shipped this reign before this batch.
	Replicate(fence, seq int64, frames [][]byte) error
	// SyncSnapshot replaces the replica's entire state and repositions its
	// stream cursor at seq.
	SyncSnapshot(fence, seq int64, snap []byte) error
	Close() error
}

// RepairFetcher is the optional third replication RPC: fetch
// checksum-verified ciphertexts from a peer to heal local corruption.
// *transport.Client implements it; the primary type-asserts per connection
// so older ReplicaConn fakes keep working.
type RepairFetcher interface {
	FetchRepair(fence int64, name string, isTree bool, idx []int64) ([][]byte, error)
}

// ReplicaDialer opens a replication connection to a peer address.
type ReplicaDialer func(addr string) (ReplicaConn, error)

// ReplicationConfig parameterizes Replicated.
type ReplicationConfig struct {
	// Primary selects the initial role. A FENCE file recording a lost
	// primaryship overrides it (the server boots deposed).
	Primary bool
	// Fence is the initial fencing epoch; a primary defaults to 1. A higher
	// fence recorded in the FENCE file wins. Operators force-promote a
	// server by restarting it with a fence above the cluster's highest.
	Fence int64
	// Peers are the replication addresses of the other cluster members.
	Peers []string
	// Dial opens replication connections; required when Peers is non-empty.
	Dial ReplicaDialer
	// RedialEvery is the cadence, in shipped records, at which a down peer
	// is re-dialed (default 32; 1 retries on every mutation).
	RedialEvery int
	// Metrics, when set, exposes replication lag and ship/resync counters,
	// plus the role/fence/watermark gauges both roles publish (replicas
	// included — /healthz was previously the only place a replica reported
	// them).
	Metrics *telemetry.Registry
	// Trace, when set, records spans for per-peer shipments
	// (repl/ship:<addr>), snapshot resyncs (repl/resync:<addr>), and
	// replica-side batch applies (repl/apply), parented under the request
	// span bound to the serving goroutine.
	Trace *otrace.Tracer
}

// Replicator is the role-management surface the transport server drives on
// behalf of remote primaries and failover clients. ReplicatedServer
// implements it.
type Replicator interface {
	IsPrimary() bool
	Fence() int64
	// ObserveFence records that a higher fencing epoch exists; the server
	// deposes itself if it believed it was primary at a lower one.
	ObserveFence(fence int64) error
	// Promote adopts the given fence and the primary role. It fails with
	// ErrFenced unless fence is strictly above the current one.
	Promote(fence int64) (int64, error)
	// ApplyReplicated applies a batch of framed WAL records shipped by the
	// primary at the given fence and stream position; it returns the new
	// watermark (records applied this reign).
	ApplyReplicated(fence, seq int64, frames [][]byte) (int64, error)
	// ApplySync replaces the whole state from a snapshot and repositions
	// the stream cursor.
	ApplySync(fence, seq int64, snap []byte) error
	// FetchRepair serves checksum-verified ciphertexts to a peer healing
	// corruption (the donor side of repair-from-replica). Any role answers;
	// the caller's fence must be current.
	FetchRepair(fence int64, name string, isTree bool, idx []int64) ([][]byte, error)
	Watermark() int64
}

// replicaPeer is the primary's bookkeeping for one replica. conn and downAt
// are guarded by the owning server's shipMu; acked is atomic so lag reads
// (probes, telemetry) never wait behind an in-flight shipment.
type replicaPeer struct {
	addr   string
	conn   ReplicaConn
	acked  atomic.Int64 // stream position the peer has confirmed
	downAt int64        // shipped count when the conn last failed (redial cadence)
}

// ReplicatedServer decorates a DurableServer with a replication role. It
// implements Service, Batcher, NamespaceService, and Replicator.
//
// Locking: shipMu serializes mutations and their shipments, so the stream
// order equals the WAL order; it is the only lock held across replication
// network calls. mu guards the role state and the replica-side stream
// cursor and is held only for memory operations, so role probes and client
// reads proceed while a shipment is in flight. Lock order is shipMu before
// mu; the durable layer's own locks nest innermost.
type ReplicatedServer struct {
	d   *DurableServer
	cfg ReplicationConfig

	shipMu  sync.Mutex
	peers   []*replicaPeer
	shipped atomic.Int64 // records shipped this reign (primary side)

	mu        sync.Mutex
	primary   bool
	deposed   bool // held the primary role under an older fence and lost it
	fence     int64
	watermark int64 // records applied this reign (replica side)

	repaired atomic.Int64 // corrupt cells healed from a peer (MTTR bench + harness)

	lagGauge     *telemetry.Gauge
	peersGauge   *telemetry.Gauge
	ships        *telemetry.Counter
	shipFailures *telemetry.Counter
	resyncs      *telemetry.Counter
	applied      *telemetry.Counter
	repairs      *telemetry.Counter
	// Role-state gauges published by both roles (not just the shipping
	// primary): 0/1 role flag, fencing epoch, and stream position.
	roleGauge      *telemetry.Gauge
	fenceGauge     *telemetry.Gauge
	watermarkGauge *telemetry.Gauge
}

var (
	_ Service          = (*ReplicatedServer)(nil)
	_ Batcher          = (*ReplicatedServer)(nil)
	_ NamespaceService = (*ReplicatedServer)(nil)
	_ Replicator       = (*ReplicatedServer)(nil)
)

const fenceFile = "FENCE"

// loadFence reads <dir>/FENCE ("<fence> <primary|replica>"). ok is false
// when the file does not exist (a never-replicated directory).
func loadFence(fsys FS, dir string) (fence int64, primary bool, ok bool, err error) {
	raw, rerr := fsys.ReadFile(filepath.Join(dir, fenceFile))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return 0, false, false, nil
		}
		return 0, false, false, rerr
	}
	fields := strings.Fields(string(raw))
	if len(fields) != 2 {
		return 0, false, false, fmt.Errorf("%w: malformed FENCE file %q", ErrIntegrity, string(raw))
	}
	fence, perr := strconv.ParseInt(fields[0], 10, 64)
	if perr != nil {
		return 0, false, false, fmt.Errorf("%w: malformed FENCE file %q", ErrIntegrity, string(raw))
	}
	return fence, fields[1] == "primary", true, nil
}

// saveFence durably records the fence and role via temp + fsync + rename +
// dir sync, the same discipline as snapshots: the role change must not be
// observable before it is durable, or a crash could resurrect a deposed
// primary.
func saveFence(fsys FS, dir string, fence int64, primary bool) error {
	role := "replica"
	if primary {
		role = "primary"
	}
	tmp, err := fsys.CreateTemp(dir, "fence-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if _, err := fmt.Fprintf(tmp, "%d %s\n", fence, role); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	if err := fsys.Rename(tmpName, filepath.Join(dir, fenceFile)); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	return syncDir(fsys, dir)
}

// Replicated wraps d with the given replication role. The FENCE file in d's
// directory, when present, can only demote relative to cfg: a server that
// durably lost the primary role boots deposed even if its flags still say
// -replicas, unless the operator hands it a strictly higher fence.
func Replicated(d *DurableServer, cfg ReplicationConfig) (*ReplicatedServer, error) {
	if cfg.RedialEvery <= 0 {
		cfg.RedialEvery = 32
	}
	if len(cfg.Peers) > 0 && cfg.Dial == nil {
		return nil, errors.New("store: replication peers configured without a dialer")
	}
	fence, primary := cfg.Fence, cfg.Primary
	if fence <= 0 {
		// Fencing epochs start at 1 for every replicated role, so a probe
		// can tell a replicated server (Stats.Fence > 0) from a plain one.
		fence = 1
	}
	fileFence, filePrimary, ok, err := loadFence(d.fsys, d.Dir())
	if err != nil {
		return nil, err
	}
	if ok {
		if fileFence > fence {
			// The directory has lived under a higher fence than the flags
			// know about; whoever held it last decides the role.
			fence = fileFence
			primary = primary && filePrimary
		} else if fileFence == fence && !filePrimary {
			// Same epoch, durably recorded as lost: stay deposed.
			primary = false
		}
	}
	r := &ReplicatedServer{
		d:       d,
		cfg:     cfg,
		primary: primary,
		deposed: cfg.Primary && !primary,
		fence:   fence,
		// Nil-safe handles (see DurableServer).
		lagGauge:     cfg.Metrics.Gauge("oblivfd_replication_lag_records"),
		peersGauge:   cfg.Metrics.Gauge("oblivfd_replicas_connected"),
		ships:        cfg.Metrics.Counter("oblivfd_replication_ships_total"),
		shipFailures: cfg.Metrics.Counter("oblivfd_replication_ship_failures_total"),
		resyncs:      cfg.Metrics.Counter("oblivfd_replication_resyncs_total"),
		applied:      cfg.Metrics.Counter("oblivfd_replication_records_applied_total"),
		repairs:      cfg.Metrics.Counter("oblivfd_repairs_total"),

		roleGauge:      cfg.Metrics.Gauge("oblivfd_replication_role"),
		fenceGauge:     cfg.Metrics.Gauge("oblivfd_replication_fence"),
		watermarkGauge: cfg.Metrics.Gauge("oblivfd_replication_watermark"),
	}
	r.publishRoleLocked()
	for _, addr := range cfg.Peers {
		r.peers = append(r.peers, &replicaPeer{addr: addr, downAt: -int64(cfg.RedialEvery)})
	}
	if err := saveFence(d.fsys, d.Dir(), fence, primary); err != nil {
		return nil, err
	}
	if err := d.appendRecord(fenceRecord(fence, primary)); err != nil && !errors.Is(err, ErrServerKilled) {
		return nil, err
	}
	return r, nil
}

func fenceRecord(fence int64, primary bool) *walRecord {
	role := "replica"
	if primary {
		role = "primary"
	}
	return &walRecord{Op: walFence, N: fence, Name: role}
}

// Durable returns the wrapped durable backend (harness access).
func (r *ReplicatedServer) Durable() *DurableServer { return r.d }

// Trace forwards the adversary recorder (fdserver's decorators need it).
func (r *ReplicatedServer) Trace() *trace.Recorder { return r.d.Trace() }

// Dir returns the data directory path.
func (r *ReplicatedServer) Dir() string { return r.d.Dir() }

// publishRoleLocked mirrors the role state into the gauges so replicas —
// which never run ship() — still report role, fence, and watermark on
// /metrics and /metrics.json, matching what /healthz says. Called wherever
// the state changes; caller holds r.mu (or has exclusive access during
// construction). Nil-safe when metrics are off.
func (r *ReplicatedServer) publishRoleLocked() {
	role := int64(0)
	if r.primary && !r.deposed {
		role = 1
	}
	r.roleGauge.Set(role)
	r.fenceGauge.Set(r.fence)
	r.watermarkGauge.Set(r.watermark)
}

// gateLocked admits client operations only on a live primary.
func (r *ReplicatedServer) gateLocked() error {
	if r.deposed {
		return fmt.Errorf("%w (fence %d)", ErrFenced, r.fence)
	}
	if !r.primary {
		return ErrNotPrimary
	}
	return nil
}

// adoptFenceLocked durably adopts a new fence and role. Order matters: the
// FENCE file first (if that fails, nothing changed), memory second, the WAL
// audit record last and best-effort (a crash-injected kill must not block a
// role change that is already durable in the FENCE file).
func (r *ReplicatedServer) adoptFenceLocked(fence int64, becomePrimary bool) error {
	if err := saveFence(r.d.fsys, r.d.Dir(), fence, becomePrimary); err != nil {
		return err
	}
	wasPrimary := r.primary
	r.fence = fence
	r.primary = becomePrimary
	if becomePrimary {
		r.deposed = false
	} else if wasPrimary {
		r.deposed = true
	}
	if err := r.d.appendRecord(fenceRecord(fence, becomePrimary)); err != nil && !errors.Is(err, ErrServerKilled) {
		return err
	}
	r.publishRoleLocked()
	return nil
}

// depose records that a higher fence exists somewhere (exact value
// unknown, e.g. a replica answered ErrFenced to a shipment): the current
// role is lost at the current fence.
func (r *ReplicatedServer) depose() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.primary {
		return
	}
	// Best-effort durability: even if the file write fails the in-memory
	// depose holds, and the successor's higher fence will fence this server
	// again on any future contact.
	_ = saveFence(r.d.fsys, r.d.Dir(), r.fence, false)
	r.primary = false
	r.deposed = true
	r.publishRoleLocked()
}

// IsPrimary implements Replicator.
func (r *ReplicatedServer) IsPrimary() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.primary && !r.deposed
}

// Fence implements Replicator.
func (r *ReplicatedServer) Fence() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fence
}

// Watermark implements Replicator.
func (r *ReplicatedServer) Watermark() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.watermark
}

// ObserveFence implements Replicator.
func (r *ReplicatedServer) ObserveFence(fence int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fence <= r.fence {
		return nil
	}
	return r.adoptFenceLocked(fence, false)
}

// Promote implements Replicator: a failover client (or operator) hands the
// replica a fence strictly above every fence it has seen, and the replica
// becomes the primary for that epoch. The stream cursor continues from the
// local watermark: peers that were equally in sync need no resync, and any
// peer whose position differs answers ErrIntegrity on the first shipment
// and is snapshot-synced.
func (r *ReplicatedServer) Promote(fence int64) (int64, error) {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if fence <= r.fence {
		return r.fence, fmt.Errorf("%w: promotion fence %d not above current %d", ErrFenced, fence, r.fence)
	}
	if err := r.adoptFenceLocked(fence, true); err != nil {
		return r.fence, err
	}
	r.shipped.Store(r.watermark)
	for _, p := range r.peers {
		p.acked.Store(r.watermark)
		p.downAt = r.watermark - int64(r.cfg.RedialEvery) // retry dials immediately
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
	}
	return r.fence, nil
}

// acceptFenceLocked validates the fence on an incoming replication message.
func (r *ReplicatedServer) acceptFenceLocked(fence int64) error {
	switch {
	case fence < r.fence:
		return fmt.Errorf("%w: shipment fence %d below local %d", ErrFenced, fence, r.fence)
	case fence > r.fence:
		// A newer primary exists; adopt its fence (deposing ourselves if we
		// believed we held the role).
		return r.adoptFenceLocked(fence, false)
	case r.primary && !r.deposed:
		// Same fence from another server claiming primaryship: split-brain
		// within one epoch is a configuration error; refuse the stream.
		return fmt.Errorf("%w: two primaries at fence %d", ErrFenced, fence)
	}
	return nil
}

// applyRecord applies one shipped WAL record through the replica's durable
// layer, so the record lands in the replica's own WAL and the idempotent
// create-as-replace semantics of recovery replay hold here too.
func applyRecord(d *DurableServer, rec *walRecord) error {
	switch rec.Op {
	case walCreateArray:
		if err := d.Delete(rec.Name); err != nil && !errors.Is(err, ErrUnknownObject) {
			return err
		}
		return d.CreateArray(rec.Name, int(rec.N))
	case walWriteCells:
		return d.WriteCells(rec.Name, rec.Idx, rec.Cts)
	case walCreateTree:
		if err := d.Delete(rec.Name); err != nil && !errors.Is(err, ErrUnknownObject) {
			return err
		}
		return d.CreateTree(rec.Name, rec.Levels, rec.Slots)
	case walWritePath:
		return d.WritePath(rec.Name, rec.Leaf, rec.Cts)
	case walWriteBuckets:
		return d.WriteBuckets(rec.Name, int(rec.N), rec.Cts)
	case walDelete:
		if err := d.Delete(rec.Name); err != nil && !errors.Is(err, ErrUnknownObject) {
			return err
		}
		return nil
	case walCheckpoint:
		return d.CheckpointNS(rec.Name, rec.N)
	case walRepairCells, walRepairSlots:
		// A primary-side repair replays here as an install: same bytes, no
		// dirty bump, no trace event — the replica stays byte-identical.
		return d.ApplyRepair(rec)
	case walFence:
		return nil // roles are not replicated
	default:
		return fmt.Errorf("%w: unknown replicated op %v", ErrIntegrity, rec.Op)
	}
}

// ApplyReplicated implements Replicator. The whole batch is CRC-verified
// before any record applies: a torn or bit-flipped stream yields
// ErrIntegrity with zero state change, and the primary responds by pushing
// a snapshot resync. A sequence gap (seq != watermark) is handled the same
// way — the replica never guesses at missing records.
func (r *ReplicatedServer) ApplyReplicated(fence, seq int64, frames [][]byte) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.acceptFenceLocked(fence); err != nil {
		return r.watermark, err
	}
	if seq != r.watermark {
		return r.watermark, fmt.Errorf("%w: replication stream position %d, local watermark %d", ErrIntegrity, seq, r.watermark)
	}
	records := make([]*walRecord, 0, len(frames))
	for i, frame := range frames {
		rec, n, err := readWALRecord(bytes.NewReader(frame))
		if err != nil || n != int64(len(frame)) {
			return r.watermark, fmt.Errorf("%w: replication frame %d of %d failed CRC validation", ErrIntegrity, i, len(frames))
		}
		records = append(records, rec)
	}
	asp := r.cfg.Trace.Start("repl/apply")
	defer asp.End()
	for _, rec := range records {
		if err := applyRecord(r.d, rec); err != nil {
			r.publishRoleLocked()
			return r.watermark, err
		}
		r.watermark++
		r.applied.Inc()
	}
	r.publishRoleLocked()
	return r.watermark, nil
}

// ApplySync implements Replicator: full-state resync from the primary.
func (r *ReplicatedServer) ApplySync(fence, seq int64, snap []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.acceptFenceLocked(fence); err != nil {
		return err
	}
	if err := r.d.ResetFromSnapshot(bytes.NewReader(snap)); err != nil {
		return err
	}
	r.watermark = seq
	r.publishRoleLocked()
	return nil
}

// FetchRepair implements Replicator: the donor side of repair-from-replica.
// Any role answers — a replica's healthy copy is exactly what a corrupt
// primary needs — but the requester's fence must be current, so a fenced-off
// ex-primary cannot pull state it no longer owns, and the bytes are
// re-verified against the local checksums before they leave (a donor never
// propagates its own rot; it answers ErrIntegrity instead and heals itself
// through its own scrubber).
func (r *ReplicatedServer) FetchRepair(fence int64, name string, isTree bool, idx []int64) ([][]byte, error) {
	r.mu.Lock()
	if err := r.acceptFenceLocked(fence); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	r.mu.Unlock()
	return r.d.StoredVerified(name, isTree, idx)
}

// RepairStored heals corrupt cells on the primary by fetching verified
// bytes from the freshest peer that has them, re-installing locally (WAL
// record included, so the heal survives a restart), and shipping the same
// record so replicas converge. It fails — wrapping ErrIntegrity, the same
// fatal class PR 4 established — when no reachable peer holds a healthy
// copy: self-healing must never degrade fail-loudly into silent corruption.
func (r *ReplicatedServer) RepairStored(name string, isTree bool, idx []int64) error {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	return r.repairStoredLocked(name, isTree, idx)
}

// repairStoredLocked is RepairStored with shipMu already held (Batch repairs
// mid-batch without releasing the stream order lock).
func (r *ReplicatedServer) repairStoredLocked(name string, isTree bool, idx []int64) error {
	r.mu.Lock()
	if err := r.gateLocked(); err != nil {
		r.mu.Unlock()
		return err
	}
	fence := r.fence
	r.mu.Unlock()

	// Freshest-acked peer first: the peer with the highest confirmed stream
	// position is least likely to be missing the object entirely.
	order := append([]*replicaPeer(nil), r.peers...)
	sort.SliceStable(order, func(i, j int) bool { return order[i].acked.Load() > order[j].acked.Load() })
	lastErr := errors.New("no replicas configured")
	for _, p := range order {
		if p.conn == nil {
			conn, err := r.cfg.Dial(p.addr)
			if err != nil {
				lastErr = err
				continue
			}
			p.conn = conn
		}
		rf, ok := p.conn.(RepairFetcher)
		if !ok {
			lastErr = fmt.Errorf("peer %s cannot serve repairs", p.addr)
			continue
		}
		cts, err := rf.FetchRepair(fence, name, isTree, idx)
		if err != nil {
			if errors.Is(err, ErrFenced) {
				r.depose()
				return fmt.Errorf("%w: deposed during repair of %q", ErrFenced, name)
			}
			lastErr = err
			continue
		}
		op := walRepairCells
		if isTree {
			op = walRepairSlots
		}
		rec := &walRecord{Op: op, Name: name, Idx: idx, Cts: cts}
		frame, err := encodeWALRecord(rec)
		if err != nil {
			return err
		}
		if aerr := r.d.ApplyRepair(rec); aerr != nil {
			// A full disk parks the record rather than appending it; the
			// in-memory install may still have landed, in which case the
			// repair stands for readers now and becomes durable when the
			// parked queue drains. Only a repair that left the cells corrupt
			// is a failure.
			healed := false
			if errors.Is(aerr, ErrDiskFull) {
				_, verr := r.d.StoredVerified(name, isTree, idx)
				healed = verr == nil
			}
			if !healed {
				return aerr
			}
		}
		r.repaired.Add(int64(len(idx)))
		r.repairs.Add(int64(len(idx)))
		slog.Warn("store: repaired corrupt cells from replica",
			"object", name, "tree", isTree, "cells", len(idx), "peer", p.addr)
		r.ship(fence, [][]byte{frame})
		return nil
	}
	return fmt.Errorf("%w: %q cells %v corrupt and no healthy replica copy reachable: %v",
		ErrIntegrity, name, idx, lastErr)
}

// Repairs reports how many cells have been healed from peers since start.
func (r *ReplicatedServer) Repairs() int64 { return r.repaired.Load() }

// MarkDiverged is the replica-side repair path: it poisons the replica's
// stream position so the primary's next shipment fails the sequence check
// and triggers the existing snapshot resync, replacing every local byte
// with the primary's verified state. (The poisoned watermark also demotes
// this replica in failover elections — a known-corrupt replica must not win
// a promotion on freshness.) No-op on a live primary.
func (r *ReplicatedServer) MarkDiverged() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.primary && !r.deposed {
		return
	}
	r.watermark = -1
	r.publishRoleLocked()
	slog.Warn("store: replica marked diverged — awaiting snapshot resync from primary")
}

// tryRepair attempts a repair-from-replica for a foreground read that hit
// corruption. It returns nil when the repair landed (retry the read), the
// original error when repair does not apply here (no corruption detail, no
// peers), and the repair's own error otherwise — which keeps a disk-full
// shed retryable (ErrDiskFull) instead of laundering it into the fatal
// ErrIntegrity the caller started with.
func (r *ReplicatedServer) tryRepair(err error) error {
	var cce *CorruptCellsError
	if !errors.As(err, &cce) || len(r.peers) == 0 {
		return err
	}
	if rerr := r.RepairStored(cce.Object, cce.Tree, cce.Idx); rerr != nil {
		return rerr
	}
	return nil
}

// ship sends frames to every peer at the fence they were applied under
// (never the current fence: a fence adopted between apply and ship must
// not launder a deposed server's record into the successor's stream — a
// peer at the newer fence refuses the stale shipment instead). Failures
// never fail the client's operation: a peer that cannot be reached is
// marked down and retried at the redial cadence; a peer whose stream
// position diverged is healed with a full snapshot push; a peer that
// answers ErrFenced deposes us. Caller holds shipMu, never mu.
func (r *ReplicatedServer) ship(fence int64, frames [][]byte) {
	if len(r.peers) == 0 || len(frames) == 0 {
		return
	}
	seq := r.shipped.Load()
	shipped := seq + int64(len(frames))
	r.shipped.Store(shipped)
	connected := int64(0)
	for _, p := range r.peers {
		// One span per peer per shipment: this is the unit an operator
		// wants visible when asking "which replica stalled this level".
		// The span is bound so the Replicate RPC (and through its wire
		// context, the replica's apply spans) parent under it — one causal
		// chain from the client's mutation to the replica's WAL.
		ssp := r.cfg.Trace.Start("repl/ship:" + p.addr)
		release := ssp.Bind()
		endShip := func() { release(); ssp.End() }
		if p.conn == nil {
			if shipped-p.downAt < int64(r.cfg.RedialEvery) {
				endShip()
				continue
			}
			conn, err := r.cfg.Dial(p.addr)
			if err != nil {
				p.downAt = shipped
				r.shipFailures.Inc()
				endShip()
				continue
			}
			p.conn = conn
			// A fresh connection's position is unknown; the seq check on the
			// first shipment sorts it out (ErrIntegrity -> snapshot sync).
		}
		err := p.conn.Replicate(fence, seq, frames)
		switch {
		case err == nil:
			p.acked.Store(shipped)
			r.ships.Inc()
			connected++
		case errors.Is(err, ErrFenced):
			// The peer knows a higher fence: we are no longer the primary.
			r.depose()
			r.shipFailures.Inc()
			endShip()
			return
		case errors.Is(err, ErrIntegrity):
			if r.syncPeer(fence, p) {
				connected++
			}
		default:
			p.conn.Close()
			p.conn = nil
			p.downAt = shipped
			r.shipFailures.Inc()
		}
		endShip()
	}
	r.peersGauge.Set(connected)
	r.lagGauge.Set(r.maxLag())
}

// syncPeer pushes a full snapshot to a diverged peer and reports whether it
// ended the call in sync. Caller holds shipMu.
func (r *ReplicatedServer) syncPeer(fence int64, p *replicaPeer) bool {
	defer r.cfg.Trace.Start("repl/resync:" + p.addr).End()
	shipped := r.shipped.Load()
	snap, err := r.d.SnapshotBytes()
	if err == nil {
		err = p.conn.SyncSnapshot(fence, shipped, snap)
	}
	if err != nil {
		if errors.Is(err, ErrFenced) {
			r.depose()
		}
		p.conn.Close()
		p.conn = nil
		p.downAt = shipped
		r.shipFailures.Inc()
		return false
	}
	p.acked.Store(shipped)
	r.resyncs.Inc()
	return true
}

// maxLag is the stream distance of the slowest configured peer. The peer
// table is fixed at construction and the positions are atomic, so no lock
// is needed — probes stay responsive while a shipment is in flight.
func (r *ReplicatedServer) maxLag() int64 {
	shipped := r.shipped.Load()
	var lag int64
	for _, p := range r.peers {
		if d := shipped - p.acked.Load(); d > lag {
			lag = d
		}
	}
	return lag
}

// ReplicaLag returns the primary-side maximum replication lag in records.
func (r *ReplicatedServer) ReplicaLag() int64 {
	return r.maxLag()
}

// mutate gates, applies through the durable layer, and synchronously ships
// the record before acknowledging the client — an acknowledged write is on
// every reachable replica, the invariant the failover harness leans on.
// shipMu spans the whole call so the stream order is the WAL order; mu is
// released before the network calls so a slow peer stalls only writers.
// The frame is encoded before apply: an encoding failure rejects the
// operation outright, rather than applying a record that could never ship —
// a divergence the stream position check would never see, since shipped
// would not advance either.
func (r *ReplicatedServer) mutate(rec *walRecord, apply func() error) error {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	r.mu.Lock()
	if err := r.gateLocked(); err != nil {
		r.mu.Unlock()
		return err
	}
	frame, err := encodeWALRecord(rec)
	if err != nil {
		r.mu.Unlock()
		return err
	}
	if err := apply(); err != nil {
		r.mu.Unlock()
		return err
	}
	fence := r.fence
	r.mu.Unlock()
	r.ship(fence, [][]byte{frame})
	return nil
}

// read gates reads onto the primary: a replica's state may be mid-batch
// relative to the primary's, and the client's ORAM position map is coupled
// to the single linearized history only the primary serves.
func (r *ReplicatedServer) read(fn func() error) error {
	r.mu.Lock()
	if err := r.gateLocked(); err != nil {
		r.mu.Unlock()
		return err
	}
	r.mu.Unlock()
	return fn()
}

// CreateArray implements Service.
func (r *ReplicatedServer) CreateArray(name string, n int) error {
	return r.mutate(&walRecord{Op: walCreateArray, Name: name, N: int64(n)},
		func() error { return r.d.CreateArray(name, n) })
}

// ArrayLen implements Service.
func (r *ReplicatedServer) ArrayLen(name string) (n int, err error) {
	err = r.read(func() error { n, err = r.d.ArrayLen(name); return err })
	return n, err
}

// ReadCells implements Service. A read that hits corruption triggers one
// repair-from-replica attempt and retries; only if no healthy copy exists
// does the client see ErrIntegrity (the PR 4 fail-loudly contract).
func (r *ReplicatedServer) ReadCells(name string, idx []int64) (cts [][]byte, err error) {
	err = r.read(func() error { cts, err = r.d.ReadCells(name, idx); return err })
	if err != nil {
		if rerr := r.tryRepair(err); rerr == nil {
			err = r.read(func() error { cts, err = r.d.ReadCells(name, idx); return err })
		} else {
			err = rerr
		}
	}
	if err != nil {
		return nil, err
	}
	return cts, nil
}

// WriteCells implements Service.
func (r *ReplicatedServer) WriteCells(name string, idx []int64, cts [][]byte) error {
	return r.mutate(&walRecord{Op: walWriteCells, Name: name, Idx: idx, Cts: cts},
		func() error { return r.d.WriteCells(name, idx, cts) })
}

// CreateTree implements Service.
func (r *ReplicatedServer) CreateTree(name string, levels, slotsPerBucket int) error {
	return r.mutate(&walRecord{Op: walCreateTree, Name: name, Levels: levels, Slots: slotsPerBucket},
		func() error { return r.d.CreateTree(name, levels, slotsPerBucket) })
}

// ReadPath implements Service. Corruption on the path repairs from a
// replica and retries, like ReadCells.
func (r *ReplicatedServer) ReadPath(name string, leaf uint32) (cts [][]byte, err error) {
	err = r.read(func() error { cts, err = r.d.ReadPath(name, leaf); return err })
	if err != nil {
		if rerr := r.tryRepair(err); rerr == nil {
			err = r.read(func() error { cts, err = r.d.ReadPath(name, leaf); return err })
		} else {
			err = rerr
		}
	}
	if err != nil {
		return nil, err
	}
	return cts, nil
}

// WritePath implements Service.
func (r *ReplicatedServer) WritePath(name string, leaf uint32, slots [][]byte) error {
	return r.mutate(&walRecord{Op: walWritePath, Name: name, Leaf: leaf, Cts: slots},
		func() error { return r.d.WritePath(name, leaf, slots) })
}

// WriteBuckets implements Service.
func (r *ReplicatedServer) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	return r.mutate(&walRecord{Op: walWriteBuckets, Name: name, N: int64(bucketStart), Cts: slots},
		func() error { return r.d.WriteBuckets(name, bucketStart, slots) })
}

// Delete implements Service.
func (r *ReplicatedServer) Delete(name string) error {
	return r.mutate(&walRecord{Op: walDelete, Name: name},
		func() error { return r.d.Delete(name) })
}

// Reveal implements Service. Reveals are part of the adversary's trace at
// the server that observed them, not recoverable state, so they are not
// replicated.
func (r *ReplicatedServer) Reveal(tag string, value int64) error {
	return r.read(func() error { return r.d.Reveal(tag, value) })
}

// Checkpoint implements Service. The epoch mark replicates like any other
// record, so a replica snapshots at the same epochs the primary does — the
// "last epoch snapshot" a resync falls back to exists on both sides.
func (r *ReplicatedServer) Checkpoint(epoch int64) error {
	return r.mutate(&walRecord{Op: walCheckpoint, Name: "", N: epoch},
		func() error { return r.d.Checkpoint(epoch) })
}

// CheckpointNS implements NamespaceService.
func (r *ReplicatedServer) CheckpointNS(db string, epoch int64) error {
	if db == "" {
		return r.Checkpoint(epoch)
	}
	return r.mutate(&walRecord{Op: walCheckpoint, Name: db, N: epoch},
		func() error { return r.d.CheckpointNS(db, epoch) })
}

// Batch implements Batcher: ops apply one by one through the durable layer
// (each landing in the WAL) and ship to every replica as a single
// Replicate call, so batching cuts replication round trips exactly as it
// cuts client round trips.
func (r *ReplicatedServer) Batch(ops []BatchOp) ([][][]byte, error) {
	r.shipMu.Lock()
	defer r.shipMu.Unlock()
	r.mu.Lock()
	if err := r.gateLocked(); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	fence := r.fence
	out := make([][][]byte, len(ops))
	var frames [][]byte
	fail := func(err error) ([][][]byte, error) {
		r.mu.Unlock()
		r.ship(fence, frames) // keep replicas aligned with what applied
		return nil, err
	}
	for i, op := range ops {
		if op.Write {
			// Encode first, as in mutate: a frame that cannot ship must not
			// apply.
			frame, err := encodeWALRecord(&walRecord{Op: walWriteCells, Name: op.Name, Idx: op.Idx, Cts: op.Cts})
			if err != nil {
				return fail(err)
			}
			if err := r.d.WriteCells(op.Name, op.Idx, op.Cts); err != nil {
				return fail(err)
			}
			frames = append(frames, frame)
			continue
		}
		cts, err := r.d.ReadCells(op.Name, op.Idx)
		if err != nil {
			// Mid-batch corruption: repair inline (shipMu is already held)
			// and retry the read once before giving up. The batch's pending
			// frames ship first so the donor replica reflects every write
			// this batch already applied — repairing against a peer that
			// lags the unshipped writes could install stale bytes.
			var cce *CorruptCellsError
			if errors.As(err, &cce) && len(r.peers) > 0 {
				r.mu.Unlock()
				r.ship(fence, frames)
				frames = nil
				rerr := r.repairStoredLocked(cce.Object, cce.Tree, cce.Idx)
				r.mu.Lock()
				if rerr == nil {
					cts, err = r.d.ReadCells(op.Name, op.Idx)
				} else {
					err = rerr // keeps a disk-full shed retryable
				}
			}
			if err != nil {
				return fail(err)
			}
		}
		out[i] = cts
	}
	r.mu.Unlock()
	r.ship(fence, frames)
	return out, nil
}

// Stats implements Service. Unlike data operations, Stats answers on any
// role — the failover layer probes it to find the primary and the freshest
// replica.
func (r *ReplicatedServer) Stats() (Stats, error) {
	st, err := r.d.Stats()
	if err != nil {
		return Stats{}, err
	}
	r.annotate(&st)
	return st, nil
}

// StatsNS implements NamespaceService; like Stats it answers on any role.
func (r *ReplicatedServer) StatsNS(db string) (Stats, error) {
	st, err := r.d.StatsNS(db)
	if err != nil {
		return Stats{}, err
	}
	r.annotate(&st)
	return st, nil
}

func (r *ReplicatedServer) annotate(st *Stats) {
	r.mu.Lock()
	st.Primary = r.primary && !r.deposed
	st.Fence = r.fence
	st.Watermark = r.watermark
	r.mu.Unlock()
	st.ReplicaLag = r.maxLag()
}

// Snapshot forwards to the durable layer (graceful shutdown).
func (r *ReplicatedServer) Snapshot() error { return r.d.Snapshot() }

// Close closes replication connections and the durable layer.
func (r *ReplicatedServer) Close() error {
	r.shipMu.Lock()
	for _, p := range r.peers {
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
	}
	r.shipMu.Unlock()
	return r.d.Close()
}
