package store

import (
	"time"
)

// WithLatency wraps a Service so every call takes at least rtt longer,
// modeling the client↔server network round trip of the paper's deployment
// (two machines on a 1 Gbps LAN, §VII-A). Concurrent calls are delayed
// independently, so latency — unlike CPU work — is overlappable: this is
// the effect the sorting protocol's parallelism exploits (Fig. 6a), and
// injecting it lets single-machine runs reproduce that behaviour.
func WithLatency(svc Service, rtt time.Duration) Service {
	if rtt <= 0 {
		return svc
	}
	return &latencyService{svc: svc, rtt: rtt}
}

type latencyService struct {
	svc Service
	rtt time.Duration
}

func (l *latencyService) delay() { time.Sleep(l.rtt) }

// CreateArray implements Service.
func (l *latencyService) CreateArray(name string, n int) error {
	l.delay()
	return l.svc.CreateArray(name, n)
}

// ArrayLen implements Service.
func (l *latencyService) ArrayLen(name string) (int, error) {
	l.delay()
	return l.svc.ArrayLen(name)
}

// ReadCells implements Service.
func (l *latencyService) ReadCells(name string, idx []int64) ([][]byte, error) {
	l.delay()
	return l.svc.ReadCells(name, idx)
}

// WriteCells implements Service.
func (l *latencyService) WriteCells(name string, idx []int64, cts [][]byte) error {
	l.delay()
	return l.svc.WriteCells(name, idx, cts)
}

// CreateTree implements Service.
func (l *latencyService) CreateTree(name string, levels, slotsPerBucket int) error {
	l.delay()
	return l.svc.CreateTree(name, levels, slotsPerBucket)
}

// ReadPath implements Service.
func (l *latencyService) ReadPath(name string, leaf uint32) ([][]byte, error) {
	l.delay()
	return l.svc.ReadPath(name, leaf)
}

// WritePath implements Service.
func (l *latencyService) WritePath(name string, leaf uint32, slots [][]byte) error {
	l.delay()
	return l.svc.WritePath(name, leaf, slots)
}

// WriteBuckets implements Service.
func (l *latencyService) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	l.delay()
	return l.svc.WriteBuckets(name, bucketStart, slots)
}

// Delete implements Service.
func (l *latencyService) Delete(name string) error {
	l.delay()
	return l.svc.Delete(name)
}

// Reveal implements Service.
func (l *latencyService) Reveal(tag string, value int64) error {
	l.delay()
	return l.svc.Reveal(tag, value)
}

// Checkpoint implements Service.
func (l *latencyService) Checkpoint(epoch int64) error {
	l.delay()
	return l.svc.Checkpoint(epoch)
}

// Stats implements Service.
func (l *latencyService) Stats() (Stats, error) {
	l.delay()
	return l.svc.Stats()
}

// CheckpointNS implements NamespaceService, forwarding to the backend so
// per-tenant epoch marks survive the decorator stack.
func (l *latencyService) CheckpointNS(db string, epoch int64) error {
	l.delay()
	return CheckpointIn(l.svc, db, epoch)
}

// StatsNS implements NamespaceService.
func (l *latencyService) StatsNS(db string) (Stats, error) {
	l.delay()
	return StatsIn(l.svc, db)
}

// Batch implements Batcher: the whole batch pays one round-trip delay, which
// is the point of batching — RTT cost scales with rounds, not cells.
func (l *latencyService) Batch(ops []BatchOp) ([][][]byte, error) {
	l.delay()
	return DoBatch(l.svc, ops)
}

var (
	_ Batcher          = (*latencyService)(nil)
	_ NamespaceService = (*latencyService)(nil)
)
