package store

import (
	"errors"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
	"time"

	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// Background integrity scrubbing: a Scrubber periodically sweeps everything
// the durable store is responsible for — retained snapshot files, the WAL,
// and every stored cell of every named array and ORAM tree — verifying
// checksums and repairing what it can before a foreground read trips over
// the damage.
//
// Sweep order is fixed and data-independent (DESIGN.md §15): snapshots in
// ascending sequence order, then the WAL front to back, then objects in
// ascending name order with indices ascending, paced by a token bucket whose
// refill depends only on wall time. Everything the sweep's timing or order
// could reveal — object names, extents, file sizes — is public structure the
// adversary already holds, so scrubbing adds nothing to the leakage profile.
//
// Repair strategy by damage site:
//
//   - Stored cells, primary with replicas: fetch verified bytes from the
//     freshest peer (RepairStored), reinstall, ship the repair.
//   - Stored cells, replica: MarkDiverged — the primary's next shipment
//     triggers the existing snapshot resync, replacing every local byte.
//   - Stored cells, no peers: counted and left for foreground reads to fail
//     loudly with ErrIntegrity (the PR 4 contract; scrubbing must not turn
//     detectable corruption into silence).
//   - Snapshot file or WAL damage (any role): the live in-memory state is
//     still good — write a fresh snapshot, which also truncates the WAL,
//     and drop the corrupt file. No peer needed.

// ScrubConfig tunes a Scrubber.
type ScrubConfig struct {
	// Interval is the pause between full sweeps (default 30s).
	Interval time.Duration
	// Rate limits scrub work in units per second — one unit per stored cell
	// verified, one per KiB of snapshot/WAL file scanned. Zero or negative
	// means unlimited (tests; fdserver defaults to 65536).
	Rate int64
	// ChunkCells is how many cells are verified per lock acquisition
	// (default 512); mutations interleave between chunks.
	ChunkCells int
	// Metrics, when set, exposes the oblivfd_scrub_* counters/gauges.
	Metrics *telemetry.Registry
}

func (c ScrubConfig) withDefaults() ScrubConfig {
	if c.Interval <= 0 {
		c.Interval = 30 * time.Second
	}
	if c.ChunkCells <= 0 {
		c.ChunkCells = 512
	}
	return c
}

// Scrubber owns the background sweep goroutine. Construct with NewScrubber,
// run with Start, stop with Close; SweepOnce is also exported directly for
// tests and the chaos harness.
type Scrubber struct {
	d   *DurableServer
	rep *ReplicatedServer // nil when unreplicated: detect-only for cells
	cfg ScrubConfig

	stop chan struct{}
	done chan struct{}

	sweeps      atomic.Int64
	cells       atomic.Int64
	corruptions atomic.Int64
	repairs     atomic.Int64
	repairFails atomic.Int64

	sweepsC      *telemetry.Counter
	cellsC       *telemetry.Counter
	filesC       *telemetry.Counter
	corruptionsC *telemetry.Counter
	repairsC     *telemetry.Counter
	repairFailsC *telemetry.Counter
	sweepSeconds *telemetry.Gauge

	// pacer state: a token bucket refilled by wall time only, so the sleep
	// schedule is a function of public sizes, never cell contents.
	tokens   int64
	lastFill time.Time
}

// NewScrubber builds a scrubber over d. rep may be nil (no repair path for
// cell corruption) or the ReplicatedServer wrapping d.
func NewScrubber(d *DurableServer, rep *ReplicatedServer, cfg ScrubConfig) *Scrubber {
	cfg = cfg.withDefaults()
	return &Scrubber{
		d:   d,
		rep: rep,
		cfg: cfg,

		sweepsC:      cfg.Metrics.Counter("oblivfd_scrub_sweeps_total"),
		cellsC:       cfg.Metrics.Counter("oblivfd_scrub_cells_total"),
		filesC:       cfg.Metrics.Counter("oblivfd_scrub_files_total"),
		corruptionsC: cfg.Metrics.Counter("oblivfd_scrub_corruptions_total"),
		repairsC:     cfg.Metrics.Counter("oblivfd_scrub_repairs_total"),
		repairFailsC: cfg.Metrics.Counter("oblivfd_scrub_repair_failures_total"),
		sweepSeconds: cfg.Metrics.Gauge("oblivfd_scrub_last_sweep_millis"),
	}
}

// Start launches the background sweep loop. Safe to call once.
func (sc *Scrubber) Start() {
	sc.stop = make(chan struct{})
	sc.done = make(chan struct{})
	go func() {
		defer close(sc.done)
		t := time.NewTicker(sc.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-sc.stop:
				return
			case <-t.C:
				if err := sc.SweepOnce(); err != nil && !errors.Is(err, ErrServerKilled) {
					slog.Warn("scrub: sweep failed", "err", err)
				}
			}
		}
	}()
}

// Close stops the background loop and waits for an in-flight sweep.
func (sc *Scrubber) Close() {
	if sc.stop == nil {
		return
	}
	close(sc.stop)
	<-sc.done
	sc.stop = nil
}

// Sweeps reports completed full sweeps.
func (sc *Scrubber) Sweeps() int64 { return sc.sweeps.Load() }

// CellsScrubbed reports stored cells verified since construction.
func (sc *Scrubber) CellsScrubbed() int64 { return sc.cells.Load() }

// Corruptions reports distinct damage findings (cell batches and files).
func (sc *Scrubber) Corruptions() int64 { return sc.corruptions.Load() }

// Repairs reports damage findings successfully healed.
func (sc *Scrubber) Repairs() int64 { return sc.repairs.Load() }

// RepairFailures reports damage findings that could not be healed.
func (sc *Scrubber) RepairFailures() int64 { return sc.repairFails.Load() }

// pace charges n work units against the rate limit, sleeping as needed.
// Interruptible by Close.
func (sc *Scrubber) pace(n int64) {
	if sc.cfg.Rate <= 0 || n <= 0 {
		return
	}
	now := time.Now()
	if sc.lastFill.IsZero() {
		sc.lastFill = now
	}
	sc.tokens += int64(now.Sub(sc.lastFill).Seconds() * float64(sc.cfg.Rate))
	if sc.tokens > sc.cfg.Rate {
		sc.tokens = sc.cfg.Rate // burst cap: one second of work
	}
	sc.lastFill = now
	sc.tokens -= n
	if sc.tokens >= 0 {
		return
	}
	wait := time.Duration(float64(-sc.tokens) / float64(sc.cfg.Rate) * float64(time.Second))
	if sc.stop != nil {
		select {
		case <-sc.stop:
		case <-time.After(wait):
		}
		return
	}
	time.Sleep(wait)
}

// SweepOnce runs one full sweep in the fixed order: snapshot files, the
// WAL, then every object's cells. It returns the first hard error (server
// dead); individual corruption findings are counted and repaired in-line,
// not returned.
func (sc *Scrubber) SweepOnce() error {
	t0 := time.Now()
	if err := sc.sweepSnapshots(); err != nil {
		return err
	}
	if err := sc.sweepWAL(); err != nil {
		return err
	}
	if err := sc.sweepObjects(); err != nil {
		return err
	}
	sc.sweeps.Add(1)
	sc.sweepsC.Inc()
	sc.sweepSeconds.Set(time.Since(t0).Milliseconds())
	return nil
}

// sweepSnapshots verifies every retained snapshot file's framing and CRC.
// A corrupt file is healed from live memory: the server writes a fresh
// snapshot (which also compacts the WAL) and the damaged file is removed.
func (sc *Scrubber) sweepSnapshots() error {
	seqs, _, err := sc.d.snapshotScrubView()
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		path := snapPath(sc.d.dir, seq)
		ok, bytesRead, verr := sc.verifySnapshotFile(path)
		sc.filesC.Inc()
		sc.pace(bytesRead / 1024)
		if verr != nil {
			// The file vanished: concurrent pruning, not corruption.
			continue
		}
		if ok {
			continue
		}
		sc.corruptions.Add(1)
		sc.corruptionsC.Inc()
		slog.Warn("scrub: corrupt snapshot file", "path", path)
		if err := sc.healFiles(); err != nil {
			sc.repairFails.Add(1)
			sc.repairFailsC.Inc()
			if errors.Is(err, ErrServerKilled) {
				return err
			}
			continue
		}
		// The fresh snapshot supersedes the damaged file; remove it so
		// recovery can never pick it (pruning would get it eventually, but
		// a known-bad file should not wait for retention to age it out).
		if rerr := sc.d.fsys.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
			slog.Warn("scrub: removing corrupt snapshot", "path", path, "err", rerr)
		}
		sc.repairs.Add(1)
		sc.repairsC.Inc()
	}
	return nil
}

// verifySnapshotFile reads and validates one snapshot file. ok=false means
// the bytes are damaged; err non-nil means the file could not be read at
// all (vanished under a concurrent prune).
func (sc *Scrubber) verifySnapshotFile(path string) (ok bool, bytesRead int64, err error) {
	f, err := sc.d.fsys.Open(path)
	if err != nil {
		return false, 0, err
	}
	defer f.Close()
	_, _, _, verr := readSnapshotStream(f)
	if info, serr := f.Stat(); serr == nil {
		bytesRead = info.Size()
	}
	return verr == nil, bytesRead, nil
}

// sweepWAL scans the log's valid prefix front to back. The verdict only
// counts if no compaction truncated the file during the scan — otherwise
// whatever the scan saw is an artifact of reading a file being rewritten.
func (sc *Scrubber) sweepWAL() error {
	path, size, truncsBefore := sc.d.walScrubView()
	if size == 0 {
		return nil
	}
	f, err := sc.d.fsys.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	// Scan exactly the frames the writer considers complete; bytes past
	// size belong to appends racing this scan and are not judged.
	_, validEnd, torn := scanWAL(io.LimitReader(f, size))
	f.Close()
	sc.filesC.Inc()
	sc.pace(size / 1024)
	_, _, truncsAfter := sc.d.walScrubView()
	if truncsAfter != truncsBefore {
		return nil // compacted mid-scan; next sweep sees the new log
	}
	if !torn && validEnd == size {
		return nil
	}
	// Damage inside the acknowledged prefix: every one of those records is
	// already applied in memory, so a fresh snapshot (which truncates the
	// log) loses nothing and removes the damage.
	sc.corruptions.Add(1)
	sc.corruptionsC.Inc()
	slog.Warn("scrub: corrupt WAL prefix", "path", path, "validEnd", validEnd, "size", size)
	if err := sc.healFiles(); err != nil {
		sc.repairFails.Add(1)
		sc.repairFailsC.Inc()
		if errors.Is(err, ErrServerKilled) {
			return err
		}
		return nil
	}
	sc.repairs.Add(1)
	sc.repairsC.Inc()
	return nil
}

// healFiles rewrites durable state from live memory: one fresh snapshot,
// which also compacts the WAL. Used for snapshot-file and WAL damage, where
// memory (guarded by per-cell checksums) is still the good copy.
func (sc *Scrubber) healFiles() error {
	return sc.d.Snapshot()
}

// sweepObjects verifies every stored cell's checksum, in ascending name and
// index order, a chunk at a time so live traffic interleaves.
func (sc *Scrubber) sweepObjects() error {
	names, err := sc.d.ObjectNames()
	if err != nil {
		return err
	}
	diverged := false
	for _, name := range names {
		n, isTree, err := sc.d.ObjectExtent(name)
		if err != nil {
			if errors.Is(err, ErrUnknownObject) {
				continue // deleted since the listing; public event
			}
			return err
		}
		for lo := 0; lo < n; lo += sc.cfg.ChunkCells {
			hi := lo + sc.cfg.ChunkCells
			if hi > n {
				hi = n
			}
			bad, _, err := sc.d.VerifyStored(name, lo, hi)
			if err != nil {
				if errors.Is(err, ErrUnknownObject) || errors.Is(err, ErrOutOfRange) {
					break // deleted or shrunk by a concurrent create-as-replace
				}
				return err
			}
			sc.cells.Add(int64(hi - lo))
			sc.cellsC.Add(int64(hi - lo))
			sc.pace(int64(hi - lo))
			if len(bad) == 0 {
				continue
			}
			sc.corruptions.Add(1)
			sc.corruptionsC.Inc()
			slog.Warn("scrub: corrupt stored cells", "object", name, "tree", isTree, "cells", len(bad))
			switch {
			case sc.rep != nil && sc.rep.IsPrimary():
				if rerr := sc.rep.RepairStored(name, isTree, bad); rerr != nil {
					sc.repairFails.Add(1)
					sc.repairFailsC.Inc()
					slog.Warn("scrub: repair from replica failed", "object", name, "err", rerr)
				} else {
					sc.repairs.Add(1)
					sc.repairsC.Inc()
				}
			case sc.rep != nil:
				// Replica: one resync heals everything; flag once per sweep.
				if !diverged {
					sc.rep.MarkDiverged()
					diverged = true
					sc.repairs.Add(1)
					sc.repairsC.Inc()
				}
			default:
				// No peers: detection only. Foreground reads of these cells
				// fail loudly with ErrIntegrity, exactly as before scrubbing
				// existed.
				sc.repairFails.Add(1)
				sc.repairFailsC.Inc()
			}
		}
	}
	return nil
}
