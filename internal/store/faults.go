package store

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// FaultConfig parameterizes WithFaults. All probabilities are per call.
type FaultConfig struct {
	// Seed fixes the fault schedule: two services built with the same seed
	// and driven by the same call sequence inject exactly the same faults.
	Seed int64
	// ErrorRate is the probability a call fails with ErrTransient.
	ErrorRate float64
	// SpikeRate is the probability a call is delayed by Spike, modeling a
	// latency spike (a congested link, a GC pause on the server).
	SpikeRate float64
	// Spike is the extra delay applied on a latency spike.
	Spike time.Duration
	// CorruptRate is the probability that a successful read's payload
	// (ReadCells or ReadPath) is corrupted — a seeded bit flip or block
	// swap, per CorruptMode — before it reaches the client. This models a
	// Byzantine server or bit rot; unlike ErrorRate faults it produces no
	// error at the injection site, only wrong bytes the client's integrity
	// layer must catch.
	CorruptRate float64
	// CorruptAfterReads, when > 0, corrupts exactly the Nth successful
	// read (1-based, counting ReadCells and ReadPath together). One-shot
	// and fully deterministic — the tamper harness uses it to guarantee
	// exactly one corruption per run at a seeded offset.
	CorruptAfterReads int64
	// CorruptMode selects the corruption shape (bit flip or block swap).
	CorruptMode CorruptMode
	// Metrics, when set, backs the injected-fault counters with the shared
	// registry series oblivfd_faults_injected_total /
	// oblivfd_fault_spikes_total / oblivfd_corruptions_injected_total
	// instead of per-instance counters, making the registry the single
	// source of truth for the whole stack.
	Metrics *telemetry.Registry
}

// CorruptMode selects how an injected corruption mangles a read's payload.
type CorruptMode int

const (
	// CorruptFlip flips one random bit of one returned block.
	CorruptFlip CorruptMode = iota
	// CorruptSwap swaps two returned blocks (positions within the batch);
	// a single-block batch degrades to a bit flip so the corruption is
	// never silently skipped.
	CorruptSwap
)

// FaultService is a Service decorator that injects transient faults on a
// deterministic, seeded schedule. It mirrors WithLatency: protocol code
// holds it as a plain Service while tests and the chaos harness observe the
// injected-fault counters.
//
// Failures come in two shapes, chosen by the schedule:
//
//   - fail-before: the call errors without reaching the backend, like a
//     request lost on the way to the server;
//   - fail-after: the backend applies the operation and then the call
//     errors, like a response lost on the way back. This is the case that
//     exercises idempotent retries. Non-idempotent operations (CreateArray,
//     CreateTree, Delete) are only ever failed before applying, because a
//     lost acknowledgement for those is the transport layer's reconcile
//     problem (see transport.Client), not the fault model's.
type FaultService struct {
	svc Service
	cfg FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	seq   int64 // calls scheduled so far
	crng  *rand.Rand
	reads int64 // successful reads observed (corruption schedule index)

	// errors and spikes are registry-backed (shared across the stack) when
	// cfg.Metrics is set, standalone otherwise; shared records which.
	errors      *telemetry.Counter
	spikes      *telemetry.Counter
	corruptions *telemetry.Counter
	shared      bool
}

// WithFaults wraps a Service with seeded fault injection. A zero-rate
// config returns a wrapper that never faults (useful for uniform plumbing).
func WithFaults(svc Service, cfg FaultConfig) *FaultService {
	// Corruption draws from its own seeded stream so enabling it never
	// shifts the transient-fault schedule: two services with the same seed
	// inject the same transient faults whether or not corruption is on.
	f := &FaultService{
		svc:  svc,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		crng: rand.New(rand.NewSource(cfg.Seed ^ 0x1e35a7bd1e35a7bd)),
	}
	if cfg.Metrics != nil {
		f.errors = cfg.Metrics.Counter("oblivfd_faults_injected_total")
		f.spikes = cfg.Metrics.Counter("oblivfd_fault_spikes_total")
		f.corruptions = cfg.Metrics.Counter("oblivfd_corruptions_injected_total")
		f.shared = true
	} else {
		f.errors = telemetry.NewCounter()
		f.spikes = telemetry.NewCounter()
		f.corruptions = telemetry.NewCounter()
	}
	return f
}

// Injected returns the number of transient errors injected so far. With a
// Metrics registry configured this is the stack-wide total, not just this
// layer's.
func (f *FaultService) Injected() int64 { return f.errors.Value() }

// Spikes returns the number of latency spikes injected so far.
func (f *FaultService) Spikes() int64 { return f.spikes.Value() }

// Corruptions returns the number of payload corruptions injected so far.
func (f *FaultService) Corruptions() int64 { return f.corruptions.Value() }

// maybeCorrupt applies the corruption schedule to a successful read's
// payload. Affected blocks are copied before mutation so an in-process
// backend's storage is never damaged — the corruption exists only on the
// "wire" to this client, exactly like a TCP-level bit flip. One variate is
// drawn from the corruption stream per read when CorruptRate is set, so the
// schedule is a pure function of the seed and the read index.
func (f *FaultService) maybeCorrupt(cts [][]byte) [][]byte {
	if f.cfg.CorruptRate <= 0 && f.cfg.CorruptAfterReads <= 0 {
		return cts
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.reads++
	hit := f.cfg.CorruptAfterReads > 0 && f.reads == f.cfg.CorruptAfterReads
	if f.cfg.CorruptRate > 0 && f.crng.Float64() < f.cfg.CorruptRate {
		hit = true
	}
	if !hit {
		return cts
	}
	var nonEmpty []int
	for i, ct := range cts {
		if len(ct) > 0 {
			nonEmpty = append(nonEmpty, i)
		}
	}
	if len(nonEmpty) == 0 {
		return cts
	}
	out := make([][]byte, len(cts))
	copy(out, cts)
	if f.cfg.CorruptMode == CorruptSwap && len(nonEmpty) >= 2 {
		i := nonEmpty[f.crng.Intn(len(nonEmpty))]
		j := i
		for j == i {
			j = nonEmpty[f.crng.Intn(len(nonEmpty))]
		}
		out[i], out[j] = out[j], out[i]
	} else {
		i := nonEmpty[f.crng.Intn(len(nonEmpty))]
		b := append([]byte(nil), out[i]...)
		b[f.crng.Intn(len(b))] ^= 1 << uint(f.crng.Intn(8))
		out[i] = b
	}
	f.corruptions.Inc()
	return out
}

// decision is one call's slot in the fault schedule.
type decision struct {
	seq   int64
	spike bool
	fail  bool
	after bool
}

// next draws one decision. Exactly three variates are consumed per call
// regardless of the outcome, so the schedule is a pure function of the seed
// and the call index — concurrency changes which caller gets which slot,
// never the slots themselves.
func (f *FaultService) next(idempotent bool) decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := decision{seq: f.seq}
	f.seq++
	d.spike = f.rng.Float64() < f.cfg.SpikeRate
	d.fail = f.rng.Float64() < f.cfg.ErrorRate
	d.after = f.rng.Intn(2) == 1 && idempotent
	return d
}

// call runs one operation under the schedule. do must capture its results
// in the caller's scope; on a fail-after the results are discarded by the
// caller returning the injected error.
func (f *FaultService) call(op string, idempotent bool, do func() error) error {
	d := f.next(idempotent)
	if d.spike && f.cfg.Spike > 0 {
		f.spikes.Inc()
		time.Sleep(f.cfg.Spike)
	}
	if d.fail && !d.after {
		f.errors.Inc()
		return fmt.Errorf("%w: injected before %s (call %d)", ErrTransient, op, d.seq)
	}
	err := do()
	if d.fail && d.after {
		f.errors.Inc()
		return fmt.Errorf("%w: injected after %s (call %d)", ErrTransient, op, d.seq)
	}
	return err
}

// CreateArray implements Service.
func (f *FaultService) CreateArray(name string, n int) error {
	return f.call("CreateArray", false, func() error { return f.svc.CreateArray(name, n) })
}

// ArrayLen implements Service.
func (f *FaultService) ArrayLen(name string) (n int, err error) {
	err = f.call("ArrayLen", true, func() error { n, err = f.svc.ArrayLen(name); return err })
	return n, err
}

// ReadCells implements Service.
func (f *FaultService) ReadCells(name string, idx []int64) (cts [][]byte, err error) {
	err = f.call("ReadCells", true, func() error { cts, err = f.svc.ReadCells(name, idx); return err })
	if err != nil {
		return nil, err
	}
	return f.maybeCorrupt(cts), nil
}

// WriteCells implements Service.
func (f *FaultService) WriteCells(name string, idx []int64, cts [][]byte) error {
	return f.call("WriteCells", true, func() error { return f.svc.WriteCells(name, idx, cts) })
}

// CreateTree implements Service.
func (f *FaultService) CreateTree(name string, levels, slotsPerBucket int) error {
	return f.call("CreateTree", false, func() error { return f.svc.CreateTree(name, levels, slotsPerBucket) })
}

// ReadPath implements Service.
func (f *FaultService) ReadPath(name string, leaf uint32) (cts [][]byte, err error) {
	err = f.call("ReadPath", true, func() error { cts, err = f.svc.ReadPath(name, leaf); return err })
	if err != nil {
		return nil, err
	}
	return f.maybeCorrupt(cts), nil
}

// WritePath implements Service.
func (f *FaultService) WritePath(name string, leaf uint32, slots [][]byte) error {
	return f.call("WritePath", true, func() error { return f.svc.WritePath(name, leaf, slots) })
}

// WriteBuckets implements Service.
func (f *FaultService) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	return f.call("WriteBuckets", true, func() error { return f.svc.WriteBuckets(name, bucketStart, slots) })
}

// Delete implements Service.
func (f *FaultService) Delete(name string) error {
	return f.call("Delete", false, func() error { return f.svc.Delete(name) })
}

// Reveal implements Service. Reveal appends to a public log, so a
// fail-after followed by a retry produces a duplicate entry; the duplicate
// carries the same already-public value, so it leaks nothing new.
func (f *FaultService) Reveal(tag string, value int64) error {
	return f.call("Reveal", true, func() error { return f.svc.Reveal(tag, value) })
}

// Checkpoint implements Service. Re-marking an epoch is idempotent (the
// durable backend writes a fresh snapshot of the same state), so fail-after
// injection is allowed.
func (f *FaultService) Checkpoint(epoch int64) error {
	return f.call("Checkpoint", true, func() error { return f.svc.Checkpoint(epoch) })
}

// Stats implements Service, adding the injected-fault count to the report.
// Stats itself is exempt from injection so that monitoring stays reliable
// even under heavy chaos. With a shared registry counter the value is the
// stack-wide total, so it replaces rather than accumulates — stacking two
// registry-backed fault layers must not double-count.
func (f *FaultService) Stats() (Stats, error) {
	st, err := f.svc.Stats()
	if err != nil {
		return st, err
	}
	if f.shared {
		st.FaultsInjected = f.errors.Value()
	} else {
		st.FaultsInjected += f.errors.Value()
	}
	return st, nil
}

// CheckpointNS implements NamespaceService, injecting faults on the same
// schedule slot a root Checkpoint would use (re-marking a tenant epoch is
// idempotent, so fail-after is allowed).
func (f *FaultService) CheckpointNS(db string, epoch int64) error {
	return f.call("Checkpoint", true, func() error { return CheckpointIn(f.svc, db, epoch) })
}

// StatsNS implements NamespaceService. Like Stats it is exempt from
// injection; the fault counter it reports is the stack-wide total (faults
// are a property of the shared backend, visible to every tenant's retries).
func (f *FaultService) StatsNS(db string) (Stats, error) {
	st, err := StatsIn(f.svc, db)
	if err != nil {
		return st, err
	}
	if f.shared {
		st.FaultsInjected = f.errors.Value()
	} else {
		st.FaultsInjected += f.errors.Value()
	}
	return st, nil
}

var (
	_ Service          = (*FaultService)(nil)
	_ NamespaceService = (*FaultService)(nil)
)
