package store

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshot persistence: the server can serialize its entire encrypted state
// and restore it later — e.g. across restarts of fdserver. Only ciphertexts
// and public structure cross the boundary; the snapshot is exactly as
// sensitive as the server's live memory (which the threat model already
// hands to the adversary).

// snapshot is the gob wire form of a server's storage.
type snapshot struct {
	Arrays map[string]arraySnapshot
	Trees  map[string]treeSnapshot
}

type arraySnapshot struct {
	Cells [][]byte
}

type treeSnapshot struct {
	Levels int
	Slots  int
	Data   [][]byte
}

// SaveSnapshot serializes all storage objects to w. Trace state and the
// reveal log are not part of the snapshot.
func (s *Server) SaveSnapshot(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{
		Arrays: make(map[string]arraySnapshot, len(s.arrays)),
		Trees:  make(map[string]treeSnapshot, len(s.trees)),
	}
	for name, a := range s.arrays {
		snap.Arrays[name] = arraySnapshot{Cells: a.cells}
	}
	for name, t := range s.trees {
		snap.Trees[name] = treeSnapshot{Levels: t.levels, Slots: t.slots, Data: t.data}
	}
	s.mu.RUnlock()
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot replaces the server's storage with the snapshot read from r.
func (s *Server) LoadSnapshot(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("store: decoding snapshot: %w", err)
	}
	arrays := make(map[string]*array, len(snap.Arrays))
	for name, a := range snap.Arrays {
		obj := &array{cells: a.Cells}
		for _, c := range a.Cells {
			obj.bytes += int64(len(c))
		}
		arrays[name] = obj
	}
	trees := make(map[string]*tree, len(snap.Trees))
	for name, t := range snap.Trees {
		if t.Levels < 1 || t.Slots < 1 {
			return fmt.Errorf("store: snapshot tree %q has invalid shape %d×%d", name, t.Levels, t.Slots)
		}
		wantSlots := ((1 << t.Levels) - 1) * t.Slots
		if len(t.Data) != wantSlots {
			return fmt.Errorf("store: snapshot tree %q has %d slots, want %d", name, len(t.Data), wantSlots)
		}
		obj := &tree{levels: t.Levels, slots: t.Slots, data: t.Data}
		for _, c := range t.Data {
			obj.bytes += int64(len(c))
		}
		trees[name] = obj
	}
	s.mu.Lock()
	s.arrays = arrays
	s.trees = trees
	s.mu.Unlock()
	return nil
}
