package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Snapshot persistence: the server can serialize its entire encrypted state
// and restore it later — e.g. across restarts of fdserver. Only ciphertexts
// and public structure cross the boundary; the snapshot is exactly as
// sensitive as the server's live memory (which the threat model already
// hands to the adversary).
//
// Wire format (version 2): an 8-byte magic, the recovery epoch and the
// mutations-since-epoch count, then a CRC32-framed gob payload:
//
//	"OFDSNAP2" | epoch int64 | dirty int64 | payloadLen uint64 | crc32 uint32 | gob(snapshot)
//
// All integers are little-endian. The CRC covers the epoch and dirty header
// fields followed by the gob payload — a flipped epoch must not verify, or a
// resumed client could pass the epoch-match check against the wrong state.
// The rest of the header is validated structurally (magic, sane length). Any
// truncation, bit flip, or shape violation surfaces as ErrCorruptSnapshot —
// never a raw gob error and never a panic — so callers can classify it as
// fatal (see DefaultRetryable).

// snapshotMagic identifies the framed snapshot format. Version bumps change
// the trailing digit so an old binary fails loudly instead of misparsing.
var snapshotMagic = [8]byte{'O', 'F', 'D', 'S', 'N', 'A', 'P', '2'}

// maxSnapshotPayload bounds the declared payload length so a corrupted
// header cannot trigger a huge allocation before the CRC check.
const maxSnapshotPayload = 1 << 40

// snapshot is the gob wire form of a server's storage. Marks carries the
// recovery marks of every non-root namespace (the root namespace's mark
// rides in the framed header for compatibility with pre-multi-tenant
// snapshots); it lives inside the CRC-covered payload, so a flipped tenant
// epoch fails verification exactly like a flipped root epoch. Snapshots
// written before multi-tenancy decode with a nil Marks map, which restores
// as "no non-root namespaces" — correct, since such servers had none.
type snapshot struct {
	Arrays map[string]arraySnapshot
	Trees  map[string]treeSnapshot
	Marks  map[string]markSnapshot
}

// markSnapshot is the wire form of one namespace's recovery mark.
type markSnapshot struct {
	Epoch int64
	Dirty int64
}

type arraySnapshot struct {
	Cells [][]byte
}

type treeSnapshot struct {
	Levels int
	Slots  int
	Data   [][]byte
}

// SaveSnapshot serializes all storage objects to w. Trace state and the
// reveal log are not part of the snapshot; the recovery epoch and dirty
// counter are, so a restart restores the resume-consistency check too.
func (s *Server) SaveSnapshot(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{
		Arrays: make(map[string]arraySnapshot, len(s.arrays)),
		Trees:  make(map[string]treeSnapshot, len(s.trees)),
	}
	for name, a := range s.arrays {
		snap.Arrays[name] = arraySnapshot{Cells: a.cells}
	}
	for name, t := range s.trees {
		snap.Trees[name] = treeSnapshot{Levels: t.levels, Slots: t.slots, Data: t.data}
	}
	var epoch, dirty int64
	for db, m := range s.marks {
		if db == "" {
			epoch, dirty = m.epoch, m.dirty
			continue
		}
		if snap.Marks == nil {
			snap.Marks = make(map[string]markSnapshot)
		}
		snap.Marks[db] = markSnapshot{Epoch: m.epoch, Dirty: m.dirty}
	}
	s.mu.RUnlock()
	return writeSnapshotStream(w, epoch, dirty, &snap)
}

func writeSnapshotStream(w io.Writer, epoch, dirty int64, snap *snapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	header := make([]byte, 8+8+8+8+4)
	copy(header, snapshotMagic[:])
	binary.LittleEndian.PutUint64(header[8:], uint64(epoch))
	binary.LittleEndian.PutUint64(header[16:], uint64(dirty))
	binary.LittleEndian.PutUint64(header[24:], uint64(payload.Len()))
	crc := crc32.NewIEEE()
	crc.Write(header[8:24]) // epoch | dirty
	crc.Write(payload.Bytes())
	binary.LittleEndian.PutUint32(header[32:], crc.Sum32())
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("store: writing snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("store: writing snapshot payload: %w", err)
	}
	return nil
}

// readSnapshotStream parses and validates a framed snapshot. Every failure
// mode — short read, bad magic, CRC mismatch, gob decode error (including
// decoder panics on hostile input), shape violations — wraps
// ErrCorruptSnapshot.
func readSnapshotStream(r io.Reader) (epoch, dirty int64, snap *snapshot, err error) {
	header := make([]byte, 8+8+8+8+4)
	if _, rerr := io.ReadFull(r, header); rerr != nil {
		return 0, 0, nil, fmt.Errorf("%w: short header: %v", ErrCorruptSnapshot, rerr)
	}
	if !bytes.Equal(header[:8], snapshotMagic[:]) {
		return 0, 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSnapshot, header[:8])
	}
	epoch = int64(binary.LittleEndian.Uint64(header[8:]))
	dirty = int64(binary.LittleEndian.Uint64(header[16:]))
	plen := binary.LittleEndian.Uint64(header[24:])
	want := binary.LittleEndian.Uint32(header[32:])
	if plen > maxSnapshotPayload {
		return 0, 0, nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptSnapshot, plen)
	}
	// Read incrementally: a corrupted length field must not provoke a huge
	// up-front allocation — a short stream fails here after reading only
	// what actually exists.
	var payloadBuf bytes.Buffer
	if n, rerr := io.CopyN(&payloadBuf, r, int64(plen)); rerr != nil || n != int64(plen) {
		return 0, 0, nil, fmt.Errorf("%w: short payload (%d of %d bytes): %v", ErrCorruptSnapshot, n, plen, rerr)
	}
	payload := payloadBuf.Bytes()
	crc := crc32.NewIEEE()
	crc.Write(header[8:24]) // epoch | dirty
	crc.Write(payload)
	if got := crc.Sum32(); got != want {
		return 0, 0, nil, fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrCorruptSnapshot, got, want)
	}
	snap = new(snapshot)
	if derr := safeGobDecode(payload, snap); derr != nil {
		return 0, 0, nil, fmt.Errorf("%w: %v", ErrCorruptSnapshot, derr)
	}
	return epoch, dirty, snap, nil
}

// safeGobDecode decodes gob data into v, converting decoder panics (which
// crafted streams can still trigger) into errors.
func safeGobDecode(data []byte, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("gob decode panicked: %v", p)
		}
	}()
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// restore converts the wire form back into live objects, validating shapes.
func (sn *snapshot) restore() (map[string]*array, map[string]*tree, error) {
	arrays := make(map[string]*array, len(sn.Arrays))
	for name, a := range sn.Arrays {
		obj := &array{cells: a.Cells}
		if obj.cells == nil {
			obj.cells = [][]byte{}
		}
		// Checksums are not persisted: the snapshot frame's CRC already
		// vouches for the bytes read here, so recomputing per-cell sums from
		// them re-establishes the in-memory integrity baseline the scrubber
		// verifies against.
		obj.sums = make([]uint32, len(obj.cells))
		for i, c := range obj.cells {
			obj.bytes += int64(len(c))
			obj.sums[i] = cellSum(c)
		}
		arrays[name] = obj
	}
	trees := make(map[string]*tree, len(sn.Trees))
	for name, t := range sn.Trees {
		if _, dup := arrays[name]; dup {
			return nil, nil, fmt.Errorf("%w: object %q is both array and tree", ErrCorruptSnapshot, name)
		}
		if t.Levels < 1 || t.Slots < 1 {
			return nil, nil, fmt.Errorf("%w: tree %q has invalid shape %d×%d", ErrCorruptSnapshot, name, t.Levels, t.Slots)
		}
		if t.Levels > 62 {
			return nil, nil, fmt.Errorf("%w: tree %q has implausible depth %d", ErrCorruptSnapshot, name, t.Levels)
		}
		wantSlots := ((1 << t.Levels) - 1) * t.Slots
		if len(t.Data) != wantSlots {
			return nil, nil, fmt.Errorf("%w: tree %q has %d slots, want %d", ErrCorruptSnapshot, name, len(t.Data), wantSlots)
		}
		obj := &tree{levels: t.Levels, slots: t.Slots, data: t.Data}
		obj.sums = make([]uint32, len(obj.data))
		for i, c := range obj.data {
			obj.bytes += int64(len(c))
			obj.sums[i] = cellSum(c)
		}
		trees[name] = obj
	}
	return arrays, trees, nil
}

// LoadSnapshot replaces the server's storage with the snapshot read from r.
// Truncated or corrupted input returns an error wrapping ErrCorruptSnapshot
// (check with errors.Is) and leaves the server's current state untouched.
func (s *Server) LoadSnapshot(r io.Reader) error {
	epoch, dirty, snap, err := readSnapshotStream(r)
	if err != nil {
		return err
	}
	arrays, trees, err := snap.restore()
	if err != nil {
		return err
	}
	marks := make(map[string]*nsMark, len(snap.Marks)+1)
	if epoch != 0 || dirty != 0 {
		marks[""] = &nsMark{epoch: epoch, dirty: dirty}
	}
	for db, m := range snap.Marks {
		if db == "" {
			return fmt.Errorf("%w: root mark duplicated in payload", ErrCorruptSnapshot)
		}
		if !ValidDBName(db) {
			return fmt.Errorf("%w: invalid namespace %q in marks", ErrCorruptSnapshot, db)
		}
		marks[db] = &nsMark{epoch: m.Epoch, dirty: m.Dirty}
	}
	s.mu.Lock()
	s.arrays = arrays
	s.trees = trees
	s.marks = marks
	s.mu.Unlock()
	return nil
}

// IsCorrupt reports whether err indicates unrecoverable on-disk corruption
// (snapshot or WAL). Exposed for operators scripting recovery decisions.
func IsCorrupt(err error) bool {
	return errors.Is(err, ErrCorruptSnapshot) || errors.Is(err, ErrCorruptWAL)
}
