package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestKSIdenticalSamples(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	res, err := KSTest(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 0 {
		t.Errorf("D = %v, want 0 for identical samples", res.D)
	}
	if res.P < 0.99 {
		t.Errorf("P = %v, want ≈1 for identical samples", res.P)
	}
}

func TestKSSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.05 {
		t.Errorf("P = %v; same-distribution samples flagged as different", res.P)
	}
}

func TestKSDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 2 // shifted mean
	}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 0.001 {
		t.Errorf("P = %v; clearly different distributions not detected", res.P)
	}
	if res.D < 0.5 {
		t.Errorf("D = %v, expected a large statistic", res.D)
	}
}

func TestKSSmallSamplesLikePaper(t *testing.T) {
	// The paper uses 9 runs per group; make sure small samples behave.
	a := []float64{1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98, 1.01, 0.99}
	b := []float64{1.02, 0.97, 1.04, 0.96, 1.0, 1.03, 0.98, 1.01, 1.0}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.35 {
		t.Errorf("P = %v; similar small samples should give the paper's large p-values", res.P)
	}
	if res.N1 != 9 || res.N2 != 9 {
		t.Errorf("sizes = %d, %d", res.N1, res.N2)
	}
}

func TestKSEmptyInput(t *testing.T) {
	if _, err := KSTest(nil, []float64{1}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KSTest([]float64{1}, nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestKSUnequalSizes(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1, 2, 3, 4, 5}
	res, err := KSTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0 || res.P > 1 {
		t.Errorf("P = %v out of range", res.P)
	}
}

func TestKSStatisticExactValue(t *testing.T) {
	// CDFs: a jumps at 1,2; b jumps at 3,4 → D must be 1.
	res, err := KSTest([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.D != 1 {
		t.Errorf("D = %v, want 1 for disjoint supports", res.D)
	}
}

func TestMeanStdDev(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(s); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(s); math.Abs(got-2.138) > 0.01 {
		t.Errorf("StdDev = %v, want ≈2.138", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs not handled")
	}
}
