// Package stats implements the two-sample Kolmogorov–Smirnov test used by
// the paper's obliviousness experiment (§VII-B, Table II): given runtime
// samples of the same method on two datasets, the test asks whether there is
// evidence the samples come from different distributions. Obliviousness
// predicts large p-values (no evidence).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult reports a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the KS statistic: the maximum distance between the two
	// empirical CDFs.
	D float64
	// P is the asymptotic two-sided p-value (Numerical Recipes
	// approximation with the Stephens small-sample correction).
	P float64
	// N1, N2 are the sample sizes.
	N1, N2 int
}

// KSTest runs the two-sample KS test on the given samples.
func KSTest(sample1, sample2 []float64) (KSResult, error) {
	n1, n2 := len(sample1), len(sample2)
	if n1 == 0 || n2 == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test needs non-empty samples (got %d, %d)", n1, n2)
	}
	a := append([]float64(nil), sample1...)
	b := append([]float64(nil), sample2...)
	sort.Float64s(a)
	sort.Float64s(b)

	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		x1, x2 := a[i], b[j]
		if x1 <= x2 {
			i++
		}
		if x2 <= x1 {
			j++
		}
		diff := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > d {
			d = diff
		}
	}

	ne := float64(n1) * float64(n2) / float64(n1+n2)
	sqrtNe := math.Sqrt(ne)
	lambda := (sqrtNe + 0.12 + 0.11/sqrtNe) * d
	return KSResult{D: d, P: kolmogorovQ(lambda), N1: n1, N2: n2}, nil
}

// kolmogorovQ evaluates Q_KS(λ) = 2 Σ_{k≥1} (-1)^{k-1} e^{-2k²λ²}, clamped
// to [0, 1].
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// Mean returns the arithmetic mean of the samples, or 0 for empty input.
func Mean(samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two samples.
func StdDev(samples []float64) float64 {
	if len(samples) < 2 {
		return 0
	}
	m := Mean(samples)
	sum := 0.0
	for _, s := range samples {
		d := s - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(samples)-1))
}
