package crypto

import (
	"bytes"
	"testing"
)

// BenchmarkCipher measures the buffer-reusing Seal/Open hot path the ORAM
// block codec runs on every slot of every path access.
func BenchmarkCipher(b *testing.B) {
	c := MustNewCipher(MustNewKey())
	pt := make([]byte, 64)
	ad := []byte("bench:ad")

	b.Run("SealTo", func(b *testing.B) {
		buf := make([]byte, 0, len(pt)+Overhead)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ct, err := c.SealTo(buf[:0], pt, ad)
			if err != nil {
				b.Fatal(err)
			}
			buf = ct[:0]
		}
	})
	b.Run("OpenTo", func(b *testing.B) {
		ct, err := c.Seal(pt, ad)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 0, len(pt))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := c.OpenTo(buf[:0], ct, ad)
			if err != nil {
				b.Fatal(err)
			}
			buf = out[:0]
		}
	})
}

// TestCipherScratchAllocs pins the steady-state allocation count of the
// buffer-reusing variants: with a caller-owned scratch of sufficient
// capacity, sealing and opening must not allocate at all. A regression here
// means a per-cell allocation re-entered the crypto hot path.
func TestCipherScratchAllocs(t *testing.T) {
	c := MustNewCipher(MustNewKey())
	pt := make([]byte, 64)
	ad := []byte("allocs:ad")
	ct, err := c.Seal(pt, ad)
	if err != nil {
		t.Fatal(err)
	}

	sealBuf := make([]byte, 0, len(pt)+Overhead)
	sealAllocs := testing.AllocsPerRun(200, func() {
		out, err := c.SealTo(sealBuf[:0], pt, ad)
		if err != nil {
			t.Fatal(err)
		}
		sealBuf = out[:0]
	})
	if sealAllocs > 0 {
		t.Errorf("SealTo with reused buffer allocates %.1f times per op, want 0", sealAllocs)
	}

	openBuf := make([]byte, 0, len(pt))
	var got []byte
	openAllocs := testing.AllocsPerRun(200, func() {
		out, err := c.OpenTo(openBuf[:0], ct, ad)
		if err != nil {
			t.Fatal(err)
		}
		got = out
		openBuf = out[:0]
	})
	if openAllocs > 0 {
		t.Errorf("OpenTo with reused buffer allocates %.1f times per op, want 0", openAllocs)
	}
	if !bytes.Equal(got, pt) {
		t.Errorf("OpenTo round-trip mismatch")
	}
}
