// Package crypto provides the cell-level authenticated encryption used
// throughout the protocols.
//
// The paper (§II-A, §III-C) assumes each attribute value of each record is
// encrypted individually with a semantically secure scheme, and that the
// client re-encrypts every value it writes back so the server never observes
// a repeated ciphertext. We use AES-128-GCM with a fresh random nonce per
// encryption (the paper uses AES/CBC; both are IND-CPA, and semantic
// security is the only property the protocols rely on — see DESIGN.md §2).
// GCM additionally authenticates every ciphertext, so a Byzantine server
// that flips bits or substitutes blocks is detected at decryption time
// rather than silently corrupting partition cardinalities (DESIGN.md §10).
//
// Seal/Open accept an associated-data slot that binds a ciphertext to its
// logical location (array name, cell index, ORAM tree); a ciphertext moved
// to a different location fails to open even though it authenticates under
// the same key.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// KeySize is the symmetric key length in bytes (128-bit keys, as in the
// paper's evaluation setup).
const KeySize = 16

// NonceSize is the per-ciphertext nonce length in bytes (the GCM standard
// nonce size).
const NonceSize = 12

// TagSize is the length of the GCM authentication tag appended to every
// ciphertext.
const TagSize = 16

// Overhead is the number of bytes a ciphertext is longer than its plaintext:
// the nonce prefix plus the authentication tag. It depends only on constants,
// never on the plaintext, so equal-length plaintexts still yield equal-length
// ciphertexts (the property the obliviousness arguments rely on).
const Overhead = NonceSize + TagSize

// ErrCiphertextTooShort is returned by Open/Decrypt when the input cannot
// even hold a nonce and tag.
var ErrCiphertextTooShort = errors.New("crypto: ciphertext shorter than nonce and tag")

// ErrAuth is returned by Open/Decrypt when the authentication tag does not
// verify: the ciphertext was modified, was encrypted under a different key,
// or is being opened at a different logical location (associated data
// mismatch) than it was sealed for.
var ErrAuth = errors.New("crypto: ciphertext authentication failed")

// Key is a symmetric encryption key held only by the client C.
type Key [KeySize]byte

// NewKey draws a fresh random key from crypto/rand.
func NewKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("crypto: generating key: %w", err)
	}
	return k, nil
}

// MustNewKey is NewKey for contexts (tests, examples) where entropy failure
// is fatal anyway.
func MustNewKey() Key {
	k, err := NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// Cipher encrypts and decrypts individual cells. It is safe for concurrent
// use: the AEAD is stateless after construction and every encryption draws
// its own nonce. SetTelemetry must not race with Seal/Open (attach the
// registry before handing the cipher to worker goroutines, as
// securefd.Outsource and the engine SetTelemetry paths do).
type Cipher struct {
	key  Key // retained so client-side checkpoints can rebuild the cipher
	aead cipher.AEAD
	mac  []byte // HMAC key derived from the AES key, for PRF use
	rand io.Reader

	// Integrity telemetry: one check per Open, one failure per rejected
	// ciphertext. Nil counters no-op, so an un-instrumented cipher pays an
	// untaken branch only.
	checks   *telemetry.Counter
	failures *telemetry.Counter
}

// NewCipher builds a Cipher from a key.
func NewCipher(key Key) (*Cipher, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: building AES cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypto: building GCM: %w", err)
	}
	h := sha256.Sum256(append([]byte("oblivfd-prf-v1"), key[:]...))
	return &Cipher{key: key, aead: aead, mac: h[:], rand: rand.Reader}, nil
}

// Key returns the key the cipher was built from. It exists so a client-side
// checkpoint can carry the key and resume with an identical cipher; the key
// never leaves the client (checkpoint files are client-local by design).
func (c *Cipher) Key() Key { return c.key }

// MustNewCipher is NewCipher that panics on error; the only error source is
// an invalid key length, which the Key type already rules out.
func MustNewCipher(key Key) *Cipher {
	c, err := NewCipher(key)
	if err != nil {
		panic(err)
	}
	return c
}

// SetTelemetry attaches integrity counters to the given registry. A nil
// registry detaches (counters become no-ops). Counters are client-side only
// and never touch storage, so instrumenting a cipher cannot perturb the
// access trace the server observes.
func (c *Cipher) SetTelemetry(reg *telemetry.Registry) {
	c.checks = reg.Counter("oblivfd_integrity_checks_total")
	c.failures = reg.Counter("oblivfd_integrity_failures_total")
}

// Seal produces nonce ∥ GCM(plaintext, ad) with a fresh random nonce, so two
// encryptions of equal plaintexts are unlinkable. The associated data is
// authenticated but not transmitted: Open must present the same ad, which is
// how ciphertexts are bound to their logical location. The result is
// len(plaintext)+Overhead bytes.
func (c *Cipher) Seal(plaintext, ad []byte) ([]byte, error) {
	return c.SealTo(make([]byte, 0, NonceSize+len(plaintext)+TagSize), plaintext, ad)
}

// SealTo is Seal appending to dst, reusing dst's capacity when it suffices.
// The per-call output allocation disappears once the caller recycles the
// returned slice — but only callers that own the buffer may do so: the
// in-process server retains the exact ciphertext slice it is handed, so
// ciphertexts headed for storage must come from Seal (a fresh allocation)
// or from a buffer that is never reused afterwards.
func (c *Cipher) SealTo(dst, plaintext, ad []byte) ([]byte, error) {
	off := len(dst)
	var zero [NonceSize]byte
	dst = append(dst, zero[:]...)
	if _, err := io.ReadFull(c.rand, dst[off:off+NonceSize]); err != nil {
		return nil, fmt.Errorf("crypto: drawing nonce: %w", err)
	}
	return c.aead.Seal(dst, dst[off:off+NonceSize], plaintext, ad), nil
}

// Open reverses Seal, verifying the authentication tag and the binding to
// ad. It returns ErrAuth (or ErrCiphertextTooShort) when verification fails.
func (c *Cipher) Open(ciphertext, ad []byte) ([]byte, error) {
	return c.OpenTo(nil, ciphertext, ad)
}

// OpenTo is Open appending the plaintext to dst. Passing a recycled buffer
// (e.g. scratch[:0]) makes decryption allocation-free in steady state —
// the pattern the ORAM path-read hot loop uses.
func (c *Cipher) OpenTo(dst, ciphertext, ad []byte) ([]byte, error) {
	c.checks.Inc()
	if len(ciphertext) < Overhead {
		c.failures.Inc()
		return nil, ErrCiphertextTooShort
	}
	pt, err := c.aead.Open(dst, ciphertext[:NonceSize], ciphertext[NonceSize:], ad)
	if err != nil {
		c.failures.Inc()
		return nil, ErrAuth
	}
	return pt, nil
}

// Encrypt is Seal with no associated data, for cells whose location is
// authenticated elsewhere (or not at all).
func (c *Cipher) Encrypt(plaintext []byte) ([]byte, error) {
	return c.Seal(plaintext, nil)
}

// Decrypt reverses Encrypt, verifying the authentication tag.
func (c *Cipher) Decrypt(ciphertext []byte) ([]byte, error) {
	return c.Open(ciphertext, nil)
}

// ReEncrypt decrypts and re-encrypts a ciphertext under a fresh nonce. The
// protocols call this on every value written back to the server so that read
// and written ciphertexts are always distinct (§III-C).
func (c *Cipher) ReEncrypt(ciphertext []byte) ([]byte, error) {
	pt, err := c.Decrypt(ciphertext)
	if err != nil {
		return nil, err
	}
	return c.Encrypt(pt)
}

// PRF evaluates a pseudorandom function (HMAC-SHA256, truncated to 8 bytes)
// on the given message. The client uses it to derive fixed-width block
// identifiers from arbitrary cell values.
func (c *Cipher) PRF(msg []byte) uint64 {
	h := hmac.New(sha256.New, c.mac)
	h.Write(msg)
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// EncryptUint64 encrypts an integer as a fixed 8-byte plaintext, so all
// integer ciphertexts are the same length regardless of value.
func (c *Cipher) EncryptUint64(v uint64) ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return c.Encrypt(buf[:])
}

// DecryptUint64 reverses EncryptUint64.
func (c *Cipher) DecryptUint64(ct []byte) (uint64, error) {
	pt, err := c.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	if len(pt) != 8 {
		return 0, fmt.Errorf("crypto: integer plaintext has %d bytes, want 8", len(pt))
	}
	return binary.BigEndian.Uint64(pt), nil
}
