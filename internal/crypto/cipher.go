// Package crypto provides the cell-level semantically secure encryption used
// throughout the protocols.
//
// The paper (§II-A, §III-C) assumes each attribute value of each record is
// encrypted individually with a semantically secure scheme, and that the
// client re-encrypts every value it writes back so the server never observes
// a repeated ciphertext. We use AES-128 in CTR mode with a fresh random
// nonce per encryption (the paper uses AES/CBC; both are IND-CPA, and
// semantic security is the only property the protocols rely on — see
// DESIGN.md §2).
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key length in bytes (128-bit keys, as in the
// paper's evaluation setup).
const KeySize = 16

// NonceSize is the per-ciphertext nonce length in bytes.
const NonceSize = aes.BlockSize

// Overhead is the number of bytes a ciphertext is longer than its plaintext.
const Overhead = NonceSize

// ErrCiphertextTooShort is returned by Decrypt when the input cannot even
// hold a nonce.
var ErrCiphertextTooShort = errors.New("crypto: ciphertext shorter than nonce")

// Key is a symmetric encryption key held only by the client C.
type Key [KeySize]byte

// NewKey draws a fresh random key from crypto/rand.
func NewKey() (Key, error) {
	var k Key
	if _, err := rand.Read(k[:]); err != nil {
		return Key{}, fmt.Errorf("crypto: generating key: %w", err)
	}
	return k, nil
}

// MustNewKey is NewKey for contexts (tests, examples) where entropy failure
// is fatal anyway.
func MustNewKey() Key {
	k, err := NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// Cipher encrypts and decrypts individual cells. It is safe for concurrent
// use: the AES block cipher is stateless after construction and every
// encryption draws its own nonce.
type Cipher struct {
	key   Key // retained so client-side checkpoints can rebuild the cipher
	block cipher.Block
	mac   []byte // HMAC key derived from the AES key, for PRF use
	rand  io.Reader
}

// NewCipher builds a Cipher from a key.
func NewCipher(key Key) (*Cipher, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: building AES cipher: %w", err)
	}
	h := sha256.Sum256(append([]byte("oblivfd-prf-v1"), key[:]...))
	return &Cipher{key: key, block: block, mac: h[:], rand: rand.Reader}, nil
}

// Key returns the key the cipher was built from. It exists so a client-side
// checkpoint can carry the key and resume with an identical cipher; the key
// never leaves the client (checkpoint files are client-local by design).
func (c *Cipher) Key() Key { return c.key }

// MustNewCipher is NewCipher that panics on error; the only error source is
// an invalid key length, which the Key type already rules out.
func MustNewCipher(key Key) *Cipher {
	c, err := NewCipher(key)
	if err != nil {
		panic(err)
	}
	return c
}

// Encrypt produces nonce ∥ CTR(plaintext) with a fresh random nonce, so two
// encryptions of equal plaintexts are unlinkable. The result is
// len(plaintext)+Overhead bytes.
func (c *Cipher) Encrypt(plaintext []byte) ([]byte, error) {
	out := make([]byte, NonceSize+len(plaintext))
	if _, err := io.ReadFull(c.rand, out[:NonceSize]); err != nil {
		return nil, fmt.Errorf("crypto: drawing nonce: %w", err)
	}
	stream := cipher.NewCTR(c.block, out[:NonceSize])
	stream.XORKeyStream(out[NonceSize:], plaintext)
	return out, nil
}

// Decrypt reverses Encrypt.
func (c *Cipher) Decrypt(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < NonceSize {
		return nil, ErrCiphertextTooShort
	}
	stream := cipher.NewCTR(c.block, ciphertext[:NonceSize])
	out := make([]byte, len(ciphertext)-NonceSize)
	stream.XORKeyStream(out, ciphertext[NonceSize:])
	return out, nil
}

// ReEncrypt decrypts and re-encrypts a ciphertext under a fresh nonce. The
// protocols call this on every value written back to the server so that read
// and written ciphertexts are always distinct (§III-C).
func (c *Cipher) ReEncrypt(ciphertext []byte) ([]byte, error) {
	pt, err := c.Decrypt(ciphertext)
	if err != nil {
		return nil, err
	}
	return c.Encrypt(pt)
}

// PRF evaluates a pseudorandom function (HMAC-SHA256, truncated to 8 bytes)
// on the given message. The client uses it to derive fixed-width block
// identifiers from arbitrary cell values.
func (c *Cipher) PRF(msg []byte) uint64 {
	h := hmac.New(sha256.New, c.mac)
	h.Write(msg)
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// EncryptUint64 encrypts an integer as a fixed 8-byte plaintext, so all
// integer ciphertexts are the same length regardless of value.
func (c *Cipher) EncryptUint64(v uint64) ([]byte, error) {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return c.Encrypt(buf[:])
}

// DecryptUint64 reverses EncryptUint64.
func (c *Cipher) DecryptUint64(ct []byte) (uint64, error) {
	pt, err := c.Decrypt(ct)
	if err != nil {
		return 0, err
	}
	if len(pt) != 8 {
		return 0, fmt.Errorf("crypto: integer plaintext has %d bytes, want 8", len(pt))
	}
	return binary.BigEndian.Uint64(pt), nil
}
