package crypto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"github.com/oblivfd/oblivfd/internal/telemetry"
)

func newTestCipher(t *testing.T) *Cipher {
	t.Helper()
	key, err := NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	c, err := NewCipher(key)
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	return c
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c := newTestCipher(t)
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("hello world"),
		bytes.Repeat([]byte{0xAB}, 4096),
	}
	for _, pt := range cases {
		ct, err := c.Encrypt(pt)
		if err != nil {
			t.Fatalf("Encrypt(%d bytes): %v", len(pt), err)
		}
		if len(ct) != len(pt)+Overhead {
			t.Errorf("ciphertext length = %d, want %d", len(ct), len(pt)+Overhead)
		}
		got, err := c.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip mismatch: got %q want %q", got, pt)
		}
	}
}

func TestEncryptRandomized(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("same plaintext")
	ct1, err := c.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := c.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct1, ct2) {
		t.Error("two encryptions of the same plaintext produced identical ciphertexts")
	}
}

func TestReEncryptChangesBytesKeepsPlaintext(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("re-encrypt me")
	ct, err := c.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := c.ReEncrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, ct2) {
		t.Error("re-encryption did not change ciphertext bytes")
	}
	got, err := c.Decrypt(ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Errorf("re-encrypted plaintext = %q, want %q", got, pt)
	}
}

func TestDecryptTooShort(t *testing.T) {
	c := newTestCipher(t)
	if _, err := c.Decrypt([]byte{1, 2, 3}); err == nil {
		t.Error("Decrypt on short input succeeded, want error")
	}
}

func TestDifferentKeysDisagree(t *testing.T) {
	c1 := newTestCipher(t)
	c2 := newTestCipher(t)
	pt := []byte("cross-key")
	ct, err := c1.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Decrypt(ct); !errors.Is(err, ErrAuth) {
		t.Errorf("decryption under wrong key: err = %v, want ErrAuth", err)
	}
}

func TestTamperedCiphertextRejected(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("authenticated cell value")
	ct, err := c.Encrypt(pt)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at every position: nonce, body, and tag must all be
	// covered by the authentication check.
	for i := range ct {
		mutated := bytes.Clone(ct)
		mutated[i] ^= 0x01
		if _, err := c.Decrypt(mutated); !errors.Is(err, ErrAuth) {
			t.Fatalf("bit flip at byte %d: err = %v, want ErrAuth", i, err)
		}
	}
	// Truncation is rejected too.
	if _, err := c.Decrypt(ct[:Overhead-1]); err == nil {
		t.Error("truncated ciphertext decrypted successfully")
	}
}

func TestAssociatedDataBindsLocation(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("row 7 of column city")
	ct, err := c.Seal(pt, []byte("cell:db:x:col0:7"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Open(ct, []byte("cell:db:x:col0:7"))
	if err != nil || !bytes.Equal(got, pt) {
		t.Fatalf("Open at same location: %q, %v", got, err)
	}
	// The same ciphertext presented at any other location must fail.
	for _, ad := range [][]byte{[]byte("cell:db:x:col0:8"), []byte("cell:db:x:col1:7"), nil} {
		if _, err := c.Open(ct, ad); !errors.Is(err, ErrAuth) {
			t.Errorf("Open with ad %q: err = %v, want ErrAuth", ad, err)
		}
	}
}

func TestNonceUniquenessAcrossReEncryptions(t *testing.T) {
	// Guards the semantic-security claim of §III-C: every write back to the
	// server must carry a fresh IV. Re-encrypt the same cell many times and
	// require all nonce prefixes to be distinct.
	c := newTestCipher(t)
	ct, err := c.Seal([]byte("hot cell"), []byte("slot"))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 4096; i++ {
		n := string(ct[:NonceSize])
		if seen[n] {
			t.Fatalf("nonce reused after %d re-encryptions", i)
		}
		seen[n] = true
		pt, err := c.Open(ct, []byte("slot"))
		if err != nil {
			t.Fatal(err)
		}
		if ct, err = c.Seal(pt, []byte("slot")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIntegrityCounters(t *testing.T) {
	c := newTestCipher(t)
	reg := telemetry.New()
	c.SetTelemetry(reg)
	ct, err := c.Seal([]byte("counted"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open(ct, nil); err != nil {
		t.Fatal(err)
	}
	mutated := bytes.Clone(ct)
	mutated[len(mutated)-1] ^= 0xFF
	if _, err := c.Open(mutated, nil); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered Open: %v", err)
	}
	if got := reg.Counter("oblivfd_integrity_checks_total").Value(); got != 2 {
		t.Errorf("integrity_checks_total = %d, want 2", got)
	}
	if got := reg.Counter("oblivfd_integrity_failures_total").Value(); got != 1 {
		t.Errorf("integrity_failures_total = %d, want 1", got)
	}
	// Detaching must not panic, and a detached cipher still verifies.
	c.SetTelemetry(nil)
	if _, err := c.Open(ct, nil); err != nil {
		t.Errorf("Open after detaching telemetry: %v", err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	c := newTestCipher(t)
	f := func(v uint64) bool {
		ct, err := c.EncryptUint64(v)
		if err != nil {
			return false
		}
		got, err := c.DecryptUint64(ct)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64FixedLength(t *testing.T) {
	c := newTestCipher(t)
	ct0, _ := c.EncryptUint64(0)
	ctMax, _ := c.EncryptUint64(^uint64(0))
	if len(ct0) != len(ctMax) {
		t.Errorf("integer ciphertext lengths differ: %d vs %d", len(ct0), len(ctMax))
	}
}

func TestPRFDeterministicAndSpread(t *testing.T) {
	c := newTestCipher(t)
	a := c.PRF([]byte("alpha"))
	if b := c.PRF([]byte("alpha")); a != b {
		t.Error("PRF is not deterministic")
	}
	if b := c.PRF([]byte("beta")); a == b {
		t.Error("PRF collides on trivially different inputs")
	}
	// Different keys give different functions.
	c2 := newTestCipher(t)
	if c.PRF([]byte("alpha")) == c2.PRF([]byte("alpha")) {
		t.Error("PRF is key-independent")
	}
}

func TestEncryptRoundTripProperty(t *testing.T) {
	c := newTestCipher(t)
	f := func(pt []byte) bool {
		ct, err := c.Encrypt(pt)
		if err != nil {
			return false
		}
		got, err := c.Decrypt(ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPadUnpadProperty(t *testing.T) {
	f := func(value []byte) bool {
		width := len(value) + 7
		padded, err := Pad(value, width)
		if err != nil {
			return false
		}
		if len(padded) != PadWidth(width) {
			return false
		}
		got, err := Unpad(padded)
		return err == nil && bytes.Equal(got, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPadOverflow(t *testing.T) {
	if _, err := Pad([]byte("too long"), 3); err == nil {
		t.Error("Pad beyond width succeeded, want error")
	}
}

func TestUnpadCorrupt(t *testing.T) {
	for _, buf := range [][]byte{nil, {1}, {0, 0, 0, 9, 1, 2}} {
		if _, err := Unpad(buf); err == nil {
			t.Errorf("Unpad(%v) succeeded, want error", buf)
		}
	}
}

func TestMustHelpers(t *testing.T) {
	key := MustNewKey()
	c := MustNewCipher(key)
	ct, err := c.Encrypt([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.Decrypt(ct)
	if err != nil || string(pt) != "x" {
		t.Errorf("Must-constructed cipher broken: %q, %v", pt, err)
	}
}

func TestDecryptUint64BadLength(t *testing.T) {
	c := newTestCipher(t)
	ct, err := c.Encrypt([]byte("short"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecryptUint64(ct); err == nil {
		t.Error("DecryptUint64 accepted a 5-byte plaintext")
	}
}

func TestKeysAreRandom(t *testing.T) {
	a := MustNewKey()
	b := MustNewKey()
	if a == b {
		t.Error("two fresh keys are identical")
	}
}

func TestPadEqualWidths(t *testing.T) {
	a, err := Pad([]byte("x"), 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pad([]byte("a much longer va"), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Errorf("padded widths differ: %d vs %d", len(a), len(b))
	}
}
