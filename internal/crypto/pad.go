package crypto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Semantic security hides everything about a plaintext except its length
// (§III-C). Values that must be indistinguishable therefore have to be
// padded to a common width before encryption. Pad/Unpad implement a simple
// length-prefixed scheme.

// ErrPadOverflow is returned when a value does not fit the target width.
var ErrPadOverflow = errors.New("crypto: value longer than pad width")

// ErrPadCorrupt is returned when an unpadded buffer is malformed.
var ErrPadCorrupt = errors.New("crypto: padded buffer corrupt")

// PadWidth returns the padded size for a payload capacity of n bytes.
func PadWidth(n int) int { return n + 4 }

// Pad encodes value into a buffer of exactly PadWidth(width) bytes:
// big-endian 4-byte length followed by the value and zero fill.
func Pad(value []byte, width int) ([]byte, error) {
	if len(value) > width {
		return nil, fmt.Errorf("%w: %d > %d", ErrPadOverflow, len(value), width)
	}
	out := make([]byte, PadWidth(width))
	binary.BigEndian.PutUint32(out[:4], uint32(len(value)))
	copy(out[4:], value)
	return out, nil
}

// PadInto is Pad writing into a caller-owned buffer of exactly
// PadWidth(width) bytes, zero-filling the tail so a reused buffer carries
// nothing over from its previous contents. The value parameter is a string
// so hot loops (the ORAM block encoder) avoid a []byte conversion
// allocation.
func PadInto(dst []byte, value string, width int) error {
	if len(value) > width {
		return fmt.Errorf("%w: %d > %d", ErrPadOverflow, len(value), width)
	}
	if len(dst) != PadWidth(width) {
		return fmt.Errorf("crypto: pad buffer has %d bytes, want %d", len(dst), PadWidth(width))
	}
	binary.BigEndian.PutUint32(dst[:4], uint32(len(value)))
	copy(dst[4:], value)
	clear(dst[4+len(value):])
	return nil
}

// Unpad reverses Pad.
func Unpad(buf []byte) ([]byte, error) {
	if len(buf) < 4 {
		return nil, ErrPadCorrupt
	}
	n := binary.BigEndian.Uint32(buf[:4])
	if int(n) > len(buf)-4 {
		return nil, ErrPadCorrupt
	}
	return buf[4 : 4+n], nil
}
