package otrace

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestWireRoundTrip(t *testing.T) {
	tr := New(Config{Service: "test"})
	root := tr.StartRoot("root")
	ctx := root.Context()
	if !ctx.Valid() || !ctx.Sampled {
		t.Fatalf("root context invalid: %+v", ctx)
	}
	got := FromWire(ctx.Wire())
	if got != ctx {
		t.Fatalf("wire roundtrip: got %+v want %+v", got, ctx)
	}

	unsampled := SpanContext{Trace: ctx.Trace, Span: ctx.Span, Sampled: false}
	if got := FromWire(unsampled.Wire()); got != unsampled {
		t.Fatalf("unsampled roundtrip: got %+v want %+v", got, unsampled)
	}
}

func TestWireZeroContextStaysConstantSize(t *testing.T) {
	// The zero context still encodes with a non-zero version byte so the
	// frame codec can never elide the field.
	b := SpanContext{}.Wire()
	if len(b) != WireSize {
		t.Fatalf("zero context wire length = %d, want %d", len(b), WireSize)
	}
	if b[0] != wireVersion {
		t.Fatalf("zero context version byte = %d, want %d", b[0], wireVersion)
	}
	if got := FromWire(b); got.Valid() {
		t.Fatalf("zero context decoded as valid: %+v", got)
	}
	// Unknown version decodes to the zero context rather than garbage.
	bogus := make([]byte, WireSize)
	bogus[0] = 99
	bogus[1] = 1
	if got := FromWire(bogus); got.Valid() {
		t.Fatalf("unknown version decoded as valid: %+v", got)
	}
	// Truncated and overlong headers decode to the zero context too.
	if got := FromWire(b[:WireSize-1]); got.Valid() {
		t.Fatalf("truncated header decoded as valid: %+v", got)
	}
	if got := FromWire(append(append([]byte(nil), b...), 0)); got.Valid() {
		t.Fatalf("overlong header decoded as valid: %+v", got)
	}
}

func TestWireSizeMatchesLayout(t *testing.T) {
	if WireSize != 1+16+8+1 {
		t.Fatalf("WireSize = %d, want 26", WireSize)
	}
}

func TestChildLinksToParent(t *testing.T) {
	tr := New(Config{Service: "test"})
	root := tr.StartRoot("root")
	child := tr.StartChild("child", root.Context())
	if child.Context().Trace != root.Context().Trace {
		t.Fatalf("child trace %v != root trace %v", child.Context().Trace, root.Context().Trace)
	}
	if child.parent != root.Context().Span {
		t.Fatalf("child parent %v != root span %v", child.parent, root.Context().Span)
	}
	child.End()
	root.End()
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Parent != recs[1].Span {
		t.Fatalf("record parent %q != root span %q", recs[0].Parent, recs[1].Span)
	}
	if recs[0].Trace != recs[1].Trace {
		t.Fatalf("records disagree on trace: %q vs %q", recs[0].Trace, recs[1].Trace)
	}
}

func TestInvalidParentStartsRoot(t *testing.T) {
	tr := New(Config{Service: "test"})
	s := tr.StartChild("orphan", SpanContext{})
	if !s.Context().Valid() {
		t.Fatal("orphan did not get a fresh trace")
	}
	if s.parent != zeroSpan {
		t.Fatalf("orphan has parent %v", s.parent)
	}
}

func TestRingBufferBounded(t *testing.T) {
	tr := New(Config{Service: "test", Capacity: 8})
	for i := 0; i < 20; i++ {
		sp := tr.StartRoot(fmt.Sprintf("span-%02d", i))
		sp.End()
	}
	recs := tr.Records()
	if len(recs) != 8 {
		t.Fatalf("ring holds %d records, want 8", len(recs))
	}
	// Oldest-first: the survivors are spans 12..19.
	for i, r := range recs {
		want := fmt.Sprintf("span-%02d", 12+i)
		if r.Name != want {
			t.Fatalf("record %d = %q, want %q", i, r.Name, want)
		}
	}
	if tr.Recorded() != 20 {
		t.Fatalf("Recorded() = %d, want 20", tr.Recorded())
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{Service: "test", SampleEvery: 4})
	for i := 0; i < 16; i++ {
		root := tr.StartRoot("root")
		// Children inherit the head decision.
		child := tr.StartChild("child", root.Context())
		child.End()
		root.End()
	}
	recs := tr.Records()
	if len(recs) != 8 { // 4 sampled roots x (root + child)
		t.Fatalf("got %d records, want 8", len(recs))
	}
}

func TestBindParentsDeepSpans(t *testing.T) {
	tr := New(Config{Service: "test"})
	req := tr.StartRoot("request")
	release := req.Bind()
	inner := tr.Start("inner") // no explicit context: must find the binding
	if inner.Context().Trace != req.Context().Trace {
		t.Fatal("bound span not inherited by Start")
	}
	if inner.parent != req.Context().Span {
		t.Fatal("inner span not parented to bound span")
	}
	release()
	orphan := tr.Start("after-release")
	if orphan.Context().Trace == req.Context().Trace {
		t.Fatal("binding leaked past release")
	}
}

func TestBindRestoresPrevious(t *testing.T) {
	tr := New(Config{Service: "test"})
	outer := tr.StartRoot("outer")
	releaseOuter := outer.Bind()
	inner := tr.StartRoot("inner")
	releaseInner := inner.Bind()
	if Active() != inner {
		t.Fatal("inner binding not active")
	}
	releaseInner()
	if Active() != outer {
		t.Fatal("outer binding not restored")
	}
	releaseOuter()
	if Active() != nil {
		t.Fatal("binding leaked")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	sp.End()
	release := sp.Bind()
	release()
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if tr.Records() != nil || tr.Recorded() != 0 {
		t.Fatal("nil tracer has records")
	}
	tr.Reset()
	if tr.Start("y") != nil || tr.StartChild("z", SpanContext{}) != nil {
		t.Fatal("nil tracer produced a span")
	}
	var buf bytes.Buffer
	tr.Handler().ServeHTTP(discardResponse{&buf}, nil)
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatal("nil tracer handler did not serve an empty document")
	}
}

type discardResponse struct{ w *bytes.Buffer }

func (d discardResponse) Header() http.Header         { return http.Header{} }
func (d discardResponse) Write(b []byte) (int, error) { return d.w.Write(b) }
func (d discardResponse) WriteHeader(int)             {}

func TestSlowSpanHook(t *testing.T) {
	var mu sync.Mutex
	var slow []Record
	tr := New(Config{
		Service:     "test",
		SampleEvery: 1 << 30, // effectively unsampled after the first
		SlowSpan:    time.Nanosecond,
		OnSlowSpan: func(r Record) {
			mu.Lock()
			slow = append(slow, r)
			mu.Unlock()
		},
	})
	tr.StartRoot("first").End() // sampled (head of the cycle)
	s := tr.StartRoot("second") // unsampled, but still slow
	time.Sleep(time.Millisecond)
	s.End()
	mu.Lock()
	defer mu.Unlock()
	if len(slow) != 2 {
		t.Fatalf("slow hook fired %d times, want 2 (sampled and unsampled)", len(slow))
	}
	if slow[1].Name != "second" || slow[1].Dur <= 0 {
		t.Fatalf("bad slow record: %+v", slow[1])
	}
	if len(tr.Records()) != 1 {
		t.Fatalf("unsampled slow span leaked into the ring: %d records", len(tr.Records()))
	}
}

// TestConcurrentRecording exercises the ring buffer and the goroutine
// bindings from many goroutines at once; run under -race.
func TestConcurrentRecording(t *testing.T) {
	tr := New(Config{Service: "test", Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				root := tr.StartRoot(fmt.Sprintf("g%d", g))
				release := root.Bind()
				child := tr.Start("child")
				child.End()
				release()
				root.End()
				tr.Records()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Recorded(); got != 8*200*2 {
		t.Fatalf("Recorded() = %d, want %d", got, 8*200*2)
	}
	if len(tr.Records()) != 64 {
		t.Fatalf("ring holds %d, want capacity 64", len(tr.Records()))
	}
	if Active() != nil {
		t.Fatal("a binding leaked")
	}
}

func TestRecordsJSONRoundTrip(t *testing.T) {
	tr := New(Config{Service: "svc"})
	root := tr.StartRoot("op")
	tr.StartChild("sub", root.Context()).End()
	root.End()
	b, err := MarshalRecords(tr.Records())
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRecords(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Name != "sub" || back[0].Service != "svc" {
		t.Fatalf("bad roundtrip: %+v", back)
	}
}
