package otrace

import "testing"

// The GLS benchmarks guard the hot-path budget: Bind/Active sit on every
// traced RPC, so Active must stay in the tens of nanoseconds (profiler-label
// slot + one map hit), nowhere near the microseconds a runtime.Stack-based
// goroutine identity costs.

func BenchmarkStartEndSampled(b *testing.B) {
	t := New(Config{Service: "b", Capacity: 1 << 14, SampleEvery: 1})
	for i := 0; i < b.N; i++ {
		t.Start("x").End()
	}
}

func BenchmarkBindActive(b *testing.B) {
	t := New(Config{Service: "b", Capacity: 16, SampleEvery: 1})
	sp := t.Start("root")
	release := sp.Bind()
	defer release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Active()
	}
}

func BenchmarkBindRelease(b *testing.B) {
	t := New(Config{Service: "b", Capacity: 16, SampleEvery: 1})
	sp := t.Start("root")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Bind()()
	}
}

func BenchmarkBindingSet(b *testing.B) {
	t := New(Config{Service: "b", Capacity: 16, SampleEvery: 1})
	sp := t.Start("root")
	bind := NewBinding()
	defer bind.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bind.Set(sp)
		bind.Set(nil)
	}
}
