package otrace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// goldenRecords is a fixed two-service trace: a client lattice-level span
// containing an RPC span, whose server-side handler contains a WAL append
// and a replication ship — the shape a real merged artifact has.
func goldenRecords() []Record {
	const trace = "0102030405060708090a0b0c0d0e0f10"
	base := int64(1700000000000000000)
	return []Record{
		{Trace: trace, Span: "1111111111111111", Name: "lattice/level-02",
			Service: "fddiscover", Start: base, Dur: 5_000_000},
		{Trace: trace, Span: "2222222222222222", Parent: "1111111111111111",
			Name: "rpc/Batch", Service: "fddiscover", Start: base + 500_000, Dur: 3_000_000},
		{Trace: trace, Span: "3333333333333333", Parent: "2222222222222222",
			Name: "server/Batch", Service: "fdserver", Start: base + 700_000, Dur: 2_500_000},
		{Trace: trace, Span: "4444444444444444", Parent: "3333333333333333",
			Name: "wal/append", Service: "fdserver", Start: base + 800_000, Dur: 400_000},
		{Trace: trace, Span: "5555555555555555", Parent: "3333333333333333",
			Name: "repl/ship:127.0.0.1:7071", Service: "fdserver", Start: base + 1_300_000, Dur: 1_100_123},
	}
}

func TestChromeExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenRecords()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}

func TestChromeExportParses(t *testing.T) {
	// Structural checks independent of the golden bytes: valid JSON, one
	// process lane per service, events rebased to t=0.
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenRecords()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Ts   json.Number     `json:"ts"`
			Pid  int             `json:"pid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var meta, slices int
	pids := map[int]bool{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			pids[e.Pid] = true
		}
	}
	if meta != 2 {
		t.Fatalf("got %d process_name events, want 2 (fddiscover + fdserver)", meta)
	}
	if slices != 5 || len(pids) != 2 {
		t.Fatalf("got %d slices over %d pids, want 5 over 2", slices, len(pids))
	}
	if doc.TraceEvents[2].Ts != "0.000" { // first slice after 2 metadata events
		t.Fatalf("first slice ts = %s, want 0.000 (rebased)", doc.TraceEvents[2].Ts)
	}
	if err := json.Unmarshal(buf.Bytes(), &map[string]any{}); err != nil {
		t.Fatal(err)
	}
}

func TestChromeExportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("empty export missing traceEvents")
	}
}
