// Empty assembly file: required so the go:linkname pull declarations in
// gls.go may omit function bodies.
