package otrace

// Goroutine-local span bindings.
//
// Bind/Active sit on the hot path of every traced RPC: the transport client
// asks Active for the span to parent an rpc/ span under, and the server
// dispatcher binds each request span around its handler. The obvious
// dependency-free goroutine identity — parsing the header of
// runtime.Stack — walks and symbolizes the whole call stack, which costs
// microseconds and grows with stack depth; measured against a loopback
// discovery run it roughly doubled wall time.
//
// Instead the binding rides in the runtime's profiler-label slot, the one
// true goroutine-local cell the runtime exposes: runtime_setProfLabel /
// runtime_getProfLabel are the linknamed accessors runtime/pprof itself
// uses, and the runtime documents their signatures as frozen (see
// go.dev/issue/67401). Each Bind allocates a fresh label value and keys a
// global registry by that pointer, so:
//
//   - Active is a pointer load plus one map lookup — no stack walk;
//   - foreign labels (set by runtime/pprof.Do in user code) miss the
//     registry and Active reports no binding, rather than otrace ever
//     casting memory it does not own;
//   - the label value itself has the exact memory layout the running
//     toolchain's profile builder expects (see gls_label*.go), so a CPU
//     profile taken while a span is bound decodes it as an ordinary label
//     set instead of crashing.
//
// A binding is inherited by goroutines spawned while it is active (the
// runtime copies the label pointer at go-statement time), which gives
// spawned workers the spawning request's span as their parent — the same
// semantics pprof labels have. Release on the binding goroutine restores
// the previous label; an inherited pointer whose binding was released
// simply stops resolving.

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

//go:linkname setProfLabel runtime/pprof.runtime_setProfLabel
func setProfLabel(p unsafe.Pointer)

//go:linkname getProfLabel runtime/pprof.runtime_getProfLabel
func getProfLabel() unsafe.Pointer

// bindingCell is the mutable slot a label pointer resolves to. Request
// loops rebind thousands of times per second; making the registry value a
// cell turns each rebind into one atomic store instead of a map operation.
type bindingCell struct {
	sp atomic.Pointer[Span]
}

// bindings maps a binding's label pointer to its cell. Holding the pointer
// as a key also keeps the label value alive for the goroutines that
// inherited it, independent of the binder's own lifetime.
var bindings sync.Map // label pointer (unsafe.Pointer) -> *bindingCell

// Active returns the span bound to the calling goroutine, or nil.
func Active() *Span {
	p := getProfLabel()
	if p == nil {
		return nil
	}
	if v, ok := bindings.Load(p); ok {
		return v.(*bindingCell).sp.Load()
	}
	return nil
}

// Bind makes the span the calling goroutine's active span and returns a
// release func that restores the previous binding. Always call release on
// the same goroutine, typically via defer. While bound, any pprof labels
// the caller had set are shadowed (and restored on release).
func (s *Span) Bind() func() {
	if s == nil {
		return func() {}
	}
	prev := getProfLabel()
	cell := &bindingCell{}
	cell.sp.Store(s)
	p := newBindingLabel()
	bindings.Store(p, cell)
	setProfLabel(p)
	return func() {
		bindings.Delete(p)
		setProfLabel(prev)
	}
}

// Binding is a reusable goroutine-local binding for request loops: install
// it once with NewBinding on the loop goroutine, point it at each request's
// span with Set (one atomic store, no allocation), and Release it when the
// loop ends. The transport server holds one per connection so per-request
// rebinding costs nothing.
type Binding struct {
	p    unsafe.Pointer
	prev unsafe.Pointer
	cell *bindingCell
}

// NewBinding installs an empty binding on the calling goroutine. Until Set
// is called, Active resolves to nil as if nothing were bound.
func NewBinding() *Binding {
	b := &Binding{p: newBindingLabel(), prev: getProfLabel(), cell: &bindingCell{}}
	bindings.Store(b.p, b.cell)
	setProfLabel(b.p)
	return b
}

// Set points the binding at the given span (nil clears it).
func (b *Binding) Set(s *Span) {
	if b == nil {
		return
	}
	b.cell.sp.Store(s)
}

// Release uninstalls the binding and restores whatever label the goroutine
// had before NewBinding. Call it on the binding goroutine.
func (b *Binding) Release() {
	if b == nil {
		return
	}
	bindings.Delete(b.p)
	setProfLabel(b.prev)
}
