//go:build !go1.24

package otrace

import "unsafe"

// Before go1.24, runtime/pprof's labelMap is a plain map[string]string and
// the profiler-label slot holds a pointer to one. See gls_label_go124.go
// for why the layout must match: a CPU profile sampling a bound goroutine
// decodes this value as a label set.
type profLabelMap map[string]string

// newBindingLabel allocates a fresh, uniquely-addressed label value for one
// Bind call.
func newBindingLabel() unsafe.Pointer {
	lm := profLabelMap{"oblivfd.otrace": "span-binding"}
	return unsafe.Pointer(&lm)
}
