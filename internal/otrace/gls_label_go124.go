//go:build go1.24

package otrace

import "unsafe"

// The value installed in the profiler-label slot must decode as a
// runtime/pprof label set if a CPU profile samples a goroutine while a
// span is bound. On go1.24+ that representation is
//
//	type labelMap struct{ LabelSet }
//	type LabelSet struct{ list []label }
//	type label struct{ key, value string }
//
// mirrored structurally here. otrace never reads these fields back — the
// binding is resolved through the registry keyed by the pointer — the
// layout exists purely so the profile builder sees a well-formed label.
type profLabel struct {
	key, value string //nolint:unused // read by the runtime profile builder
}

type profLabelSet struct {
	list []profLabel //nolint:unused // read by the runtime profile builder
}

type profLabelMap struct {
	profLabelSet
}

// newBindingLabel allocates a fresh, uniquely-addressed label value for one
// Bind call.
func newBindingLabel() unsafe.Pointer {
	lm := &profLabelMap{profLabelSet{list: []profLabel{{key: "oblivfd.otrace", value: "span-binding"}}}}
	return unsafe.Pointer(lm)
}
