// Package otrace is a dependency-free distributed tracing subsystem for
// the oblivious FD-discovery stack. It provides 128-bit trace IDs with
// parent/child span links, a bounded per-process ring buffer with
// head-based sampling, and a fixed-size wire context that rides on every
// transport frame whether or not tracing is enabled.
//
// The wire format is deliberately constant-size and always present: a
// frame carries exactly WireSize bytes of trace context regardless of
// whether tracing is on, off, sampled, or unsampled. The adversary-visible
// message shape therefore never depends on tracing state (see DESIGN.md
// §14 for the leakage argument).
//
// otrace is distinct from internal/trace (the adversary-view recorder used
// by the security tests) and from internal/telemetry (aggregate phase
// timers). Those answer "what does the server see" and "where did the time
// go in total"; otrace answers "what happened, causally, on this request".
package otrace

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"

	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one causal tree of spans across processes.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

var (
	zeroTrace TraceID
	zeroSpan  SpanID
)

// String renders the ID as lowercase hex.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the ID as lowercase hex.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the trace ID is unset.
func (id TraceID) IsZero() bool { return id == zeroTrace }

// SpanContext is the portable identity of a span: enough to create remote
// children and to correlate records across processes.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() }

// WireSize is the exact number of bytes of trace context carried on every
// transport frame: 1 version byte + 16 trace ID + 8 span ID + 1 flags.
const WireSize = 26

const (
	wireVersion     = 1
	wireFlagSampled = 1
)

// Wire encodes the context into the fixed-size frame header: always exactly
// WireSize bytes, never nil, with a non-zero version byte even for the zero
// context. The frame codec (gob) encodes byte strings as a length prefix
// plus raw bytes, so a constant-length, always-present header encodes to a
// constant number of frame bytes no matter what IDs it carries: frame
// lengths are identical with tracing on or off, sampled or not. (A fixed
// [26]byte array would NOT have that property — gob encodes array elements
// as per-element varints, so ID bytes ≥ 0x80 would each cost an extra wire
// byte and frame lengths would leak tracing state.)
func (c SpanContext) Wire() []byte {
	b := make([]byte, WireSize)
	b[0] = wireVersion
	copy(b[1:17], c.Trace[:])
	copy(b[17:25], c.Span[:])
	if c.Sampled {
		b[25] = wireFlagSampled
	}
	return b
}

// FromWire decodes a frame header produced by Wire. Headers of the wrong
// length, unknown versions, and contexts with a zero trace ID decode to the
// zero (invalid) context.
func FromWire(b []byte) SpanContext {
	if len(b) != WireSize || b[0] != wireVersion {
		return SpanContext{}
	}
	var c SpanContext
	copy(c.Trace[:], b[1:17])
	copy(c.Span[:], b[17:25])
	c.Sampled = b[25]&wireFlagSampled != 0
	if !c.Valid() {
		return SpanContext{}
	}
	return c
}

// Record is one finished span as it lands in the ring buffer and in
// exported artifacts. IDs are lowercase hex so records marshal to JSON
// without custom codecs and merge across processes by string equality.
type Record struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Service string `json:"service"`
	Start   int64  `json:"start_unix_ns"`
	Dur     int64  `json:"dur_ns"`
}

// MarshalRecords renders records as a JSON array (the TraceDump RPC body).
func MarshalRecords(recs []Record) ([]byte, error) { return json.Marshal(recs) }

// UnmarshalRecords parses a JSON array produced by MarshalRecords.
func UnmarshalRecords(b []byte) ([]Record, error) {
	var recs []Record
	if err := json.Unmarshal(b, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// Config sizes and shapes a Tracer.
type Config struct {
	// Service labels every record from this tracer ("fdserver",
	// "fddiscover", ...). Exported artifacts group spans by it.
	Service string
	// Capacity bounds the ring buffer; older finished spans are
	// overwritten. Default 4096.
	Capacity int
	// SampleEvery keeps 1 of every N root traces (head-based: the
	// decision is made once at the root and propagated). 0 or 1 keeps
	// everything. Unsampled spans still flow through the full wire path
	// at constant size; they just never land in the ring.
	SampleEvery int
	// SlowSpan, when positive, invokes OnSlowSpan for any span (sampled
	// or not) whose duration meets the threshold. Use it to emit one
	// structured log line per slow span.
	SlowSpan   time.Duration
	OnSlowSpan func(Record)
}

const defaultCapacity = 4096

// ringRec is the compact in-ring form of a finished span: binary IDs, no
// allocation beyond the ring slot itself. Hex rendering and the service
// label are applied only when the ring is exported (Records), keeping the
// per-span recording cost off the request hot path.
type ringRec struct {
	trace  TraceID
	span   SpanID
	parent SpanID
	name   string
	start  int64
	dur    int64
}

// Tracer records finished spans into a bounded ring. A nil *Tracer is a
// valid no-op tracer: every method is safe and free on nil.
type Tracer struct {
	cfg   Config
	roots atomic.Uint64

	mu    sync.Mutex
	ring  []ringRec
	next  int
	total uint64
}

// New builds a tracer. See Config for defaults.
func New(cfg Config) *Tracer {
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultCapacity
	}
	return &Tracer{cfg: cfg, ring: make([]ringRec, 0, cfg.Capacity)}
}

// Service returns the configured service label ("" on nil).
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.cfg.Service
}

func (t *Tracer) sample() bool {
	every := t.cfg.SampleEvery
	if every <= 1 {
		return true
	}
	return (t.roots.Add(1)-1)%uint64(every) == 0
}

func (t *Tracer) record(r ringRec) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
	} else {
		t.ring[t.next] = r
	}
	t.next = (t.next + 1) % cap(t.ring)
	t.total++
	t.mu.Unlock()
}

// Records snapshots the ring in arrival order (oldest first).
func (t *Tracer) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		for _, r := range t.ring[t.next:] {
			out = append(out, t.export(r))
		}
		for _, r := range t.ring[:t.next] {
			out = append(out, t.export(r))
		}
	} else {
		for _, r := range t.ring {
			out = append(out, t.export(r))
		}
	}
	return out
}

// export renders one ring slot in the portable Record form.
func (t *Tracer) export(r ringRec) Record {
	rec := Record{
		Trace:   r.trace.String(),
		Span:    r.span.String(),
		Name:    r.name,
		Service: t.cfg.Service,
		Start:   r.start,
		Dur:     r.dur,
	}
	if r.parent != zeroSpan {
		rec.Parent = r.parent.String()
	}
	return rec
}

// Recorded returns the lifetime count of spans recorded (including any
// since overwritten by ring wraparound).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Reset drops all buffered records (mainly for tests and per-run reuse).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.total = 0
	t.mu.Unlock()
}

func newTraceID() TraceID {
	var id TraceID
	mustRand(id[:])
	return id
}

func newSpanID() SpanID {
	var id SpanID
	mustRand(id[:])
	return id
}

func mustRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failure is unrecoverable for the whole stack (the
		// cipher layer depends on it too); surface it loudly.
		panic("otrace: crypto/rand failed: " + err.Error())
	}
}

// Span is one in-flight timed operation. A nil *Span is valid and free.
type Span struct {
	t      *Tracer
	name   string
	ctx    SpanContext
	parent SpanID
	start  time.Time
}

// StartRoot begins a new trace. The head-based sampling decision is made
// here and inherited by every descendant, local or remote.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		t:    t,
		name: name,
		ctx: SpanContext{
			Trace:   newTraceID(),
			Span:    newSpanID(),
			Sampled: t.sample(),
		},
		start: time.Now(),
	}
}

// StartChild begins a span under an explicit parent context. An invalid
// parent (zero trace) starts a fresh root instead — this is the server
// entry point for frames arriving from untraced clients.
func (t *Tracer) StartChild(name string, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(name)
	}
	return &Span{
		t:    t,
		name: name,
		ctx: SpanContext{
			Trace:   parent.Trace,
			Span:    newSpanID(),
			Sampled: parent.Sampled,
		},
		parent: parent.Span,
		start:  time.Now(),
	}
}

// Start begins a span as a child of the goroutine's bound active span (see
// Span.Bind), or as a new root when none is bound. This is what deep
// layers (store, replication) call so their spans nest under whatever
// request is being served, without threading contexts through every
// signature.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	if p := Active(); p != nil {
		return t.StartChild(name, p.ctx)
	}
	return t.StartRoot(name)
}

// Context returns the span's portable identity (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// End finishes the span: sampled spans are recorded into the ring, and the
// slow-span hook fires (sampled or not) when the threshold is met.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	dur := time.Since(s.start)
	cfg := &s.t.cfg
	slow := cfg.SlowSpan > 0 && dur >= cfg.SlowSpan && cfg.OnSlowSpan != nil
	if !s.ctx.Sampled && !slow {
		return
	}
	rec := ringRec{
		trace:  s.ctx.Trace,
		span:   s.ctx.Span,
		parent: s.parent,
		name:   s.name,
		start:  s.start.UnixNano(),
		dur:    int64(dur),
	}
	if s.ctx.Sampled {
		s.t.record(rec)
	}
	if slow {
		cfg.OnSlowSpan(s.t.export(rec))
	}
}

// Goroutine-local active-span bindings live in gls.go: layers without
// plumbed contexts (store, WAL, replication shipping) parent their spans
// under the request span bound by the dispatcher via Bind/Active.
