package otrace

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// chromeEvent is one entry in the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU;
// loadable by Perfetto and chrome://tracing). We emit complete ("X")
// events plus process_name metadata so each service gets its own lane.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   json.Number    `json:"ts"`
	Dur  json.Number    `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint32         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// micros renders nanoseconds as a microsecond decimal with fixed precision
// so exports are byte-stable (no float shortest-repr drift).
func micros(ns int64) json.Number {
	neg := ns < 0
	if neg {
		ns = -ns
	}
	s := strconv.FormatInt(ns/1000, 10) + "." + pad3(ns%1000)
	if neg {
		s = "-" + s
	}
	return json.Number(s)
}

func pad3(v int64) string {
	s := strconv.FormatInt(v, 10)
	for len(s) < 3 {
		s = "0" + s
	}
	return s
}

func traceTid(trace string) uint32 {
	h := fnv.New32a()
	io.WriteString(h, trace)
	return h.Sum32()%1_000_000 + 1
}

// WriteChrome renders records as a Chrome trace-event JSON document.
// Timestamps are rebased to the earliest span so the timeline starts at
// zero. Records from multiple services (client + servers merged by trace
// ID) land in separate process lanes. The output is deterministic for a
// given record set.
func WriteChrome(w io.Writer, recs []Record) error {
	recs = append([]Record(nil), recs...)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Start != recs[j].Start {
			return recs[i].Start < recs[j].Start
		}
		return recs[i].Span < recs[j].Span
	})

	var base int64
	if len(recs) > 0 {
		base = recs[0].Start
	}

	// Assign stable pids by sorted service name.
	services := map[string]int{}
	var names []string
	for _, r := range recs {
		if _, ok := services[r.Service]; !ok {
			services[r.Service] = 0
			names = append(names, r.Service)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		services[n] = i + 1
	}

	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, n := range names {
		label := n
		if label == "" {
			label = "unknown"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Ts:   "0",
			Pid:  services[n],
			Tid:  0,
			Args: map[string]any{"name": label},
		})
	}
	for _, r := range recs {
		args := map[string]any{"trace": r.Trace, "span": r.Span}
		if r.Parent != "" {
			args["parent"] = r.Parent
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: r.Name,
			Cat:  "oblivfd",
			Ph:   "X",
			Ts:   micros(r.Start - base),
			Dur:  micros(r.Dur),
			Pid:  services[r.Service],
			Tid:  traceTid(r.Trace),
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Handler serves the tracer's current ring as Chrome trace-event JSON
// (mounted at /trace.json next to /metrics). Safe on a nil tracer: serves
// an empty document.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteChrome(w, t.Records()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
