package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
	"github.com/oblivfd/oblivfd/internal/transport"
)

// The multitenant experiment measures graceful degradation under load: N
// concurrent clients, spread over M database namespaces, each run a full
// Sort discovery against one session-scoped fdserver with a fixed global
// in-flight budget. As the client count grows past the budget the server
// sheds (retryable ErrOverloaded) instead of queueing without bound; the
// clients ride the shedding out with store.WithRetry. Reported per point:
// aggregate discovery throughput, the worst per-tenant server-side p99 RPC
// latency, and the shed rate. fdbench writes the result to
// BENCH_multitenant.json so later changes compare against a committed
// artifact.

// MultiTenantPoint is one (clients, databases) configuration's outcome.
type MultiTenantPoint struct {
	Clients   int   `json:"clients"`
	Databases int   `json:"databases"`
	WallNS    int64 `json:"wall_ns"`
	// Requests counts every non-handshake RPC the server answered,
	// including shed ones; Shed is the subset refused by admission control.
	Requests int64   `json:"requests"`
	Shed     int64   `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	// ThroughputRPS is admitted (executed) requests per second of wall time.
	ThroughputRPS float64 `json:"throughput_rps"`
	// P99NS is the worst per-tenant server-side p99 RPC latency.
	P99NS int64 `json:"p99_ns"`
	// DiscoveriesPerSec is completed full discoveries per second.
	DiscoveriesPerSec float64 `json:"discoveries_per_sec"`
}

// MultiTenantResult is the full experiment outcome.
type MultiTenantResult struct {
	N           int                `json:"n"`
	M           int                `json:"m"`
	Seed        int64              `json:"seed"`
	MaxInflight int                `json:"max_inflight"`
	Points      []MultiTenantPoint `json:"points"`
}

// MultiTenant sweeps concurrent client counts over a fixed number of
// database namespaces against one admission-controlled TCP server. Every
// client must finish its discovery — shedding slows tenants down, it never
// fails them.
func MultiTenant(n, m int, clientsList []int, databases, maxInflight int, seed int64) (*MultiTenantResult, error) {
	res := &MultiTenantResult{N: n, M: m, Seed: seed, MaxInflight: maxInflight}
	for _, clients := range clientsList {
		p, err := multiTenantPoint(n, m, clients, databases, maxInflight, seed)
		if err != nil {
			return nil, fmt.Errorf("bench: multitenant clients=%d: %w", clients, err)
		}
		res.Points = append(res.Points, *p)
	}
	return res, nil
}

// multiTenantOpLatency is the modeled per-operation storage latency. Without
// it an in-memory backend answers in microseconds and requests never overlap
// enough to hit any realistic in-flight budget; with it, concurrency at the
// server is the real quantity admission control meters.
const multiTenantOpLatency = 200 * time.Microsecond

func multiTenantPoint(n, m, clients, databases, maxInflight int, seed int64) (*MultiTenantPoint, error) {
	reg := telemetry.New()
	srv := transport.NewServer(store.WithLatency(store.NewServer(), multiTenantOpLatency))
	srv.SetSessionLimits(store.SessionLimits{MaxInflight: maxInflight})
	srv.SetMetrics(reg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer l.Close()
	go func() { _ = srv.Serve(l) }()
	addr := l.Addr().String()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = multiTenantClient(addr, fmt.Sprintf("t%d", i%databases), n, m, seed+int64(i))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	point := &MultiTenantPoint{
		Clients:   clients,
		Databases: databases,
		WallNS:    wall.Nanoseconds(),
		Shed:      srv.Sessions().Shed(),
	}
	for db := 0; db < databases; db++ {
		snap := reg.Histogram("oblivfd_tenant_rpc_seconds", "db", fmt.Sprintf("t%d", db)).Snapshot()
		point.Requests += snap.Count
		if p99 := snap.P99.Nanoseconds(); p99 > point.P99NS {
			point.P99NS = p99
		}
	}
	if point.Requests > 0 {
		point.ShedRate = float64(point.Shed) / float64(point.Requests)
	}
	secs := wall.Seconds()
	if secs > 0 {
		point.ThroughputRPS = float64(point.Requests-point.Shed) / secs
		point.DiscoveriesPerSec = float64(clients) / secs
	}
	return point, nil
}

// multiTenantClient runs one tenant's full Sort discovery over its own
// session pool, retrying shed requests with backoff.
func multiTenantClient(addr, db string, n, m int, seed int64) error {
	cfg := transport.DefaultClientConfig()
	cfg.CallTimeout = 30 * time.Second
	cfg.Redials = 5
	cfg.RedialBackoff = time.Millisecond
	cfg.RedialMaxBackoff = 50 * time.Millisecond
	cfg.Database = db
	pool, err := transport.DialPoolWith(addr, 2, cfg)
	if err != nil {
		return err
	}
	defer pool.Close()
	svc := store.WithRetry(pool, store.RetryPolicy{
		MaxAttempts:    50,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		Seed:           seed,
	})
	rel := dataset.RND(m, n, seed)
	s, err := newSetupOn(svc, rel, MethodSort, 1, 0)
	if err != nil {
		return err
	}
	defer s.close()
	_, err = core.Discover(s.eng, m, &core.Options{Workers: 2, MaxLHS: 2})
	return err
}

// Render prints the client sweep.
func (r *MultiTenantResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-tenant: Sort discovery, RND m=%d n=%d, %d-deep global in-flight budget\n",
		r.M, r.N, r.MaxInflight)
	fmt.Fprintf(&b, "%8s %4s %10s %12s %10s %10s %10s\n",
		"clients", "dbs", "wall", "admitted/s", "p99", "shed", "shed-rate")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %4d %10s %12.0f %10s %10d %9.1f%%\n",
			p.Clients, p.Databases, fmtDur(time.Duration(p.WallNS)), p.ThroughputRPS,
			fmtDur(time.Duration(p.P99NS)), p.Shed, 100*p.ShedRate)
	}
	b.WriteString("Expected shape: shed rate grows with clients past the budget; every discovery still completes.\n")
	return b.String()
}

// WriteFile writes the JSON artifact (BENCH_multitenant.json).
func (r *MultiTenantResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
