package bench

import (
	"fmt"
	"strings"
)

// CommPoint is one (method, case, n) communication measurement: the number
// of client↔server operations and ciphertext bytes moved for one partition
// computation.
type CommPoint struct {
	Method    Method
	MultiAttr bool
	N         int
	Ops       int64
	Bytes     int64
}

// CommResult reports the communication cost of each method — the quantity
// that dominates the paper's wall-clock numbers (its client and server are
// separated by a network) and that our trace recorder measures exactly
// rather than through timing.
type CommResult struct {
	Points []CommPoint
}

// Comm measures one partition computation per (method, case, n) on RND and
// reads the op/byte counters from the adversary's trace.
func Comm(sizes []int, seed int64) (*CommResult, error) {
	res := &CommResult{}
	for _, n := range sizes {
		for _, method := range AllMethods {
			for _, multi := range []bool{false, true} {
				s, err := newSetup(rndRelation(4, n, seed+int64(n)), method, 1, 0)
				if err != nil {
					return nil, err
				}
				s.srv.Trace().Reset()
				if multi {
					_, err = s.timePair(0, 1)
				} else {
					_, err = s.timeSingle(0)
				}
				if err != nil {
					s.close()
					return nil, fmt.Errorf("bench: comm %s n=%d: %w", method, n, err)
				}
				res.Points = append(res.Points, CommPoint{
					Method:    method,
					MultiAttr: multi,
					N:         n,
					Ops:       s.srv.Trace().TotalOps(),
					Bytes:     s.srv.Trace().TotalBytes(),
				})
				s.close()
			}
		}
	}
	return res, nil
}

// Render prints ops and bytes per case.
func (r *CommResult) Render() string {
	var b strings.Builder
	b.WriteString("Communication cost per partition (server ops / ciphertext bytes moved, RND)\n")
	for _, multi := range []bool{false, true} {
		caseName := "|X| = 1"
		if multi {
			caseName = "|X| >= 2 (includes the untimed subset builds)"
		}
		fmt.Fprintf(&b, "%s\n", caseName)
		fmt.Fprintf(&b, "%8s", "n")
		for _, m := range AllMethods {
			fmt.Fprintf(&b, " %11s-ops %11s-MB", m, m)
		}
		b.WriteByte('\n')
		seen := map[int]map[Method]CommPoint{}
		var order []int
		for _, p := range r.Points {
			if p.MultiAttr != multi {
				continue
			}
			if seen[p.N] == nil {
				seen[p.N] = map[Method]CommPoint{}
				order = append(order, p.N)
			}
			seen[p.N][p.Method] = p
		}
		for _, n := range order {
			fmt.Fprintf(&b, "%8d", n)
			for _, m := range AllMethods {
				p := seen[n][m]
				fmt.Fprintf(&b, " %15d %14.2f", p.Ops, float64(p.Bytes)/(1<<20))
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("Expected shape: ORAM methods move O(n log n) blocks per partition,\nSort O(n log² n) small records; over a network these counts, not CPU, set the runtime.\n")
	return b.String()
}

// Point looks up a measurement (testing helper).
func (r *CommResult) Point(m Method, multi bool, n int) (CommPoint, bool) {
	for _, p := range r.Points {
		if p.Method == m && p.MultiAttr == multi && p.N == n {
			return p, true
		}
	}
	return CommPoint{}, false
}
