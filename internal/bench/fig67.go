package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/enclave"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Fig6aPoint is one (threads, runtime) measurement of Sort.
type Fig6aPoint struct {
	Threads int
	Runtime time.Duration
}

// Fig6aResult reproduces Fig. 6(a): Sort runtime vs worker count.
type Fig6aResult struct {
	N      int
	Points []Fig6aPoint
}

// DefaultRTT is the default modeled network round-trip time per storage
// operation. The paper's client and server are separate machines on a
// 1 Gbps LAN (§VII-A); the parallel speedup of Fig. 6(a) comes from
// overlapping those round trips across threads. We model the round trip
// explicitly (store.WithLatency) so the experiment reproduces that
// mechanism even on a single-core host — see DESIGN.md §2.
const DefaultRTT = 200 * time.Microsecond

// Fig6a runs one Sort partition computation per thread count on RND with n
// rows (the paper uses 2^15 rows and 1..16 threads), with rtt of modeled
// network latency per storage operation.
func Fig6a(n int, threads []int, rtt time.Duration, seed int64) (*Fig6aResult, error) {
	rel := dataset.RND(2, n, seed)
	res := &Fig6aResult{N: n}

	for _, th := range threads {
		svc := store.WithLatency(store.Service(store.NewServer()), rtt)
		s, err := newSetupOn(svc, rel, MethodSort, th, 0)
		if err != nil {
			return nil, err
		}
		d, err := s.timeSingle(0)
		s.close()
		if err != nil {
			return nil, fmt.Errorf("bench: fig6a threads=%d: %w", th, err)
		}
		res.Points = append(res.Points, Fig6aPoint{Threads: th, Runtime: d})
	}
	return res, nil
}

// Render prints the thread sweep.
func (r *Fig6aResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6(a): Sort runtime vs threads (RND, n=%d)\n", r.N)
	fmt.Fprintf(&b, "%8s %12s %10s\n", "threads", "runtime", "speedup")
	var base time.Duration
	for _, p := range r.Points {
		if base == 0 {
			base = p.Runtime
		}
		fmt.Fprintf(&b, "%8d %12s %9.2fx\n", p.Threads, fmtDur(p.Runtime), float64(base)/float64(p.Runtime))
	}
	b.WriteString("Expected shape: near-2x from 1 to 2 threads, diminishing returns by 8 to 16.\n")
	return b.String()
}

// Fig6bPoint is one (n, case) pair of runtimes: the client-server Sort
// protocol vs the enclave-simulated deployment.
type Fig6bPoint struct {
	N         int
	MultiAttr bool
	Outside   time.Duration // client-server Sort (ciphertexts + transfer)
	Enclave   time.Duration // enclave simulation (plaintext secure memory)
}

// Fig6bResult reproduces Fig. 6(b): Sort inside SGX vs outside.
type Fig6bResult struct {
	Points []Fig6bPoint
}

// Fig6b sweeps n for both |X| cases.
func Fig6b(sizes []int, seed int64) (*Fig6bResult, error) {
	res := &Fig6bResult{}
	for _, n := range sizes {
		rel := dataset.RND(2, n, seed+int64(n))
		for _, multi := range []bool{false, true} {
			s, err := newSetup(rel, MethodSort, 1, 0)
			if err != nil {
				return nil, err
			}
			var outside time.Duration
			if multi {
				outside, err = s.timePair(0, 1)
			} else {
				outside, err = s.timeSingle(0)
			}
			s.close()
			if err != nil {
				return nil, err
			}

			enc := enclave.NewSortEngine(rel, 1)
			var inside time.Duration
			if multi {
				if _, err := enc.CardinalitySingle(0); err != nil {
					return nil, err
				}
				if _, err := enc.CardinalitySingle(1); err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := enc.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1)); err != nil {
					return nil, err
				}
				inside = time.Since(start)
			} else {
				start := time.Now()
				if _, err := enc.CardinalitySingle(0); err != nil {
					return nil, err
				}
				inside = time.Since(start)
			}
			res.Points = append(res.Points, Fig6bPoint{N: n, MultiAttr: multi, Outside: outside, Enclave: inside})
		}
	}
	return res, nil
}

// Render prints both cases; the enclave columns should nearly coincide.
func (r *Fig6bResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig 6(b): Sort runtime with and without the (simulated) enclave\n")
	fmt.Fprintf(&b, "%8s %6s %14s %14s %10s\n", "n", "case", "no-enclave", "enclave", "speedup")
	for _, p := range r.Points {
		caseName := "|X|=1"
		if p.MultiAttr {
			caseName = ">=2"
		}
		speed := float64(p.Outside) / float64(maxDur(p.Enclave, time.Microsecond))
		fmt.Fprintf(&b, "%8d %6s %14s %14s %9.0fx\n", p.N, caseName, fmtDur(p.Outside), fmtDur(p.Enclave), speed)
	}
	b.WriteString("Expected shape: enclave runs orders of magnitude faster; |X|=1 and |X|>=2 curves overlap inside the enclave.\n")
	return b.String()
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// Fig7Point is one (n, case) pair of average per-operation latencies for
// Ex-ORAM insertion and deletion.
type Fig7Point struct {
	N          int
	MultiAttr  bool
	InsertAvg  time.Duration
	DeleteAvg  time.Duration
	Operations int
}

// Fig7Result reproduces Fig. 7: dynamic-operation efficiency.
type Fig7Result struct {
	Points []Fig7Point
}

// Fig7 replays the paper's workload: starting from an empty database with
// capacity n, insert n rows one by one, then delete them all, and report
// the average per-operation latency of maintaining one single-attribute
// partition (the |X| = 1 curve) and one two-attribute partition (|X| = 2).
// A timing hook inside Ex-ORAM isolates each partition's marginal cost.
func Fig7(sizes []int, seed int64) (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, n := range sizes {
		rel := dataset.RND(2, n, seed+int64(n))
		srv := store.NewServer()
		cipher, err := crypto.NewCipher(crypto.MustNewKey())
		if err != nil {
			return nil, err
		}
		edb, err := core.UploadWithCapacity(srv, cipher, "fig7", relation.New(rel.Schema()), n)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewExEngine(edb)
		if err != nil {
			return nil, err
		}
		// Materialize the tracked partitions on the empty database; all
		// maintenance cost is then incremental.
		if _, err := eng.CardinalitySingle(0); err != nil {
			return nil, fmt.Errorf("bench: fig7 n=%d: %w", n, err)
		}
		if _, err := eng.CardinalitySingle(1); err != nil {
			return nil, fmt.Errorf("bench: fig7 n=%d: %w", n, err)
		}
		pair := relation.NewAttrSet(0, 1)
		if _, err := eng.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1)); err != nil {
			return nil, fmt.Errorf("bench: fig7 n=%d: %w", n, err)
		}

		perSet := map[relation.AttrSet]time.Duration{}
		eng.SetTimingHook(func(x relation.AttrSet, d time.Duration) { perSet[x] += d })

		ids := make([]int, 0, n)
		for i := 0; i < n; i++ {
			id, err := eng.Insert(rel.Row(i))
			if err != nil {
				return nil, fmt.Errorf("bench: fig7 insert %d/%d: %w", i, n, err)
			}
			ids = append(ids, id)
		}
		insertSingle := perSet[relation.SingleAttr(0)] / time.Duration(n)
		insertPair := perSet[pair] / time.Duration(n)

		perSet = map[relation.AttrSet]time.Duration{}
		eng.SetTimingHook(func(x relation.AttrSet, d time.Duration) { perSet[x] += d })
		for _, id := range ids {
			if err := eng.Delete(id); err != nil {
				return nil, fmt.Errorf("bench: fig7 delete %d: %w", id, err)
			}
		}
		deleteSingle := perSet[relation.SingleAttr(0)] / time.Duration(n)
		deletePair := perSet[pair] / time.Duration(n)
		_ = eng.Close()

		res.Points = append(res.Points,
			Fig7Point{N: n, MultiAttr: false, InsertAvg: insertSingle, DeleteAvg: deleteSingle, Operations: n},
			Fig7Point{N: n, MultiAttr: true, InsertAvg: insertPair, DeleteAvg: deletePair, Operations: n},
		)
	}
	return res, nil
}

// Render prints both cases.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig 7: Ex-ORAM insertion/deletion latency (average per operation)\n")
	fmt.Fprintf(&b, "%8s %6s %12s %12s\n", "n", "case", "insert", "delete")
	for _, p := range r.Points {
		caseName := "|X|=1"
		if p.MultiAttr {
			caseName = "|X|=2"
		}
		fmt.Fprintf(&b, "%8d %6s %12s %12s\n", p.N, caseName, fmtDur(p.InsertAvg), fmtDur(p.DeleteAvg))
	}
	b.WriteString("Expected shape: ~log n growth; with |X|=2 insertion costs about twice deletion\n(insertion touches four ORAMs, deletion two).\n")
	return b.String()
}

// Point looks up a measurement (testing helper).
func (r *Fig7Result) Point(n int, multi bool) (Fig7Point, bool) {
	for _, p := range r.Points {
		if p.N == n && p.MultiAttr == multi {
			return p, true
		}
	}
	return Fig7Point{}, false
}
