package bench

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/obsort"
	"github.com/oblivfd/oblivfd/internal/oram"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Two ablations for the design choices DESIGN.md calls out:
//
//   - attribute compression (§IV-B): with it, materializing π_X for any
//     |X| ≥ 2 costs the same as |X| = 2; without it, every record fetches
//     and decrypts |X| cells.
//   - the comparison network: the paper picks bitonic sorting for its
//     regularity and parallelism; Batcher's odd-even merge network needs
//     fewer comparators. AblationNetwork quantifies the gap.

// CompressionPoint is one (|X|, variant) measurement.
type CompressionPoint struct {
	SetSize    int
	Compressed time.Duration // marginal cost of the final union (§IV-B path)
	Raw        time.Duration // direct computation from r[X]
}

// AblationCompressionResult compares the two strategies as |X| grows.
type AblationCompressionResult struct {
	N      int
	Points []CompressionPoint
}

// ablationCellWidth is the cell size used by the compression ablation.
// Compression pays off when r[X] is long (the paper motivates it with
// "especially for the case where |X| is large", §IV-B); 64-byte cells model
// textual attributes like addresses or descriptions.
const ablationCellWidth = 64

// wideCellRel generates a relation of fixed-width 64-byte cells.
func wideCellRel(m, n int, seed int64) *relation.Relation {
	base := dataset.RND(m, n, seed)
	out := relation.New(base.Schema())
	for i := 0; i < n; i++ {
		row := make(relation.Row, m)
		for j := range row {
			v := base.Value(i, j)
			row[j] = v + strings.Repeat("#", ablationCellWidth-len(v))
		}
		if err := out.Append(row); err != nil {
			panic(err)
		}
	}
	return out
}

// AblationCompression measures, for growing |X|, the marginal cost of the
// final partition with attribute compression (the last CardinalityUnion,
// everything below it prematerialized) against computing it directly from
// the raw projected values.
func AblationCompression(n, maxSetSize int, seed int64) (*AblationCompressionResult, error) {
	if maxSetSize < 2 {
		maxSetSize = 2
	}
	rel := wideCellRel(maxSetSize, n, seed)
	res := &AblationCompressionResult{N: n}

	for size := 2; size <= maxSetSize; size++ {
		// Compressed: prematerialize the chain below the target set,
		// time only the final union step.
		s, err := newSetup(rel, MethodSort, 1, 0)
		if err != nil {
			return nil, err
		}
		for a := 0; a < size; a++ {
			if _, err := s.eng.CardinalitySingle(a); err != nil {
				s.close()
				return nil, err
			}
		}
		cur := relation.SingleAttr(0)
		for a := 1; a < size-1; a++ {
			if _, err := s.eng.CardinalityUnion(cur, relation.SingleAttr(a)); err != nil {
				s.close()
				return nil, err
			}
			cur = cur.Add(a)
		}
		start := time.Now()
		if _, err := s.eng.CardinalityUnion(cur, relation.SingleAttr(size-1)); err != nil {
			s.close()
			return nil, err
		}
		compressed := time.Since(start)
		s.close()

		// Raw: the same final partition from full projected values.
		srv := store.NewServer()
		cipher, err := crypto.NewCipher(crypto.MustNewKey())
		if err != nil {
			return nil, err
		}
		edb, err := core.Upload(srv, cipher, fmt.Sprintf("abl%d", size), rel)
		if err != nil {
			return nil, err
		}
		raw := core.NewSortEngine(edb, 1)
		start = time.Now()
		if _, err := raw.CardinalityRaw(relation.FullSet(size)); err != nil {
			return nil, err
		}
		rawDur := time.Since(start)
		_ = raw.Close()

		res.Points = append(res.Points, CompressionPoint{
			SetSize: size, Compressed: compressed, Raw: rawDur,
		})
	}
	return res, nil
}

// Render prints the comparison.
func (r *AblationCompressionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: attribute compression (§IV-B), marginal cost of π_X at n=%d\n", r.N)
	fmt.Fprintf(&b, "%6s %14s %14s %8s\n", "|X|", "compressed", "raw r[X]", "ratio")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%6d %14s %14s %7.2fx\n", p.SetSize,
			fmtDur(p.Compressed), fmtDur(p.Raw), float64(p.Raw)/float64(p.Compressed))
	}
	b.WriteString("Expected shape: compressed cost is flat in |X|; raw cost grows with |X|\n(every record fetches and decrypts |X| cells).\n")
	return b.String()
}

// NetworkPoint is one (n, network) comparator-and-runtime measurement.
type NetworkPoint struct {
	N           int
	Network     string
	Comparators int64
	Runtime     time.Duration
}

// AblationNetworkResult compares the two comparison networks.
type AblationNetworkResult struct {
	Points []NetworkPoint
}

// AblationNetwork sorts the same encrypted arrays with both networks.
func AblationNetwork(sizes []int, seed int64) (*AblationNetworkResult, error) {
	res := &AblationNetworkResult{}
	for _, n := range sizes {
		rel := dataset.RND(1, n, seed+int64(n))
		for _, network := range []struct {
			name string
			net  obsort.Network
		}{{"bitonic", obsort.Bitonic}, {"odd-even", obsort.OddEvenMerge}} {
			srv := store.NewServer()
			cipher, err := crypto.NewCipher(crypto.MustNewKey())
			if err != nil {
				return nil, err
			}
			recs := make([][]byte, n)
			for i := 0; i < n; i++ {
				rec := make([]byte, 16)
				binary.BigEndian.PutUint64(rec, cipher.PRF([]byte(rel.Value(i, 0))))
				binary.BigEndian.PutUint64(rec[8:], uint64(i))
				recs[i] = rec
			}
			arr, err := obsort.Create(srv, cipher, "abl", recs)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := arr.SortNetwork(lessFirst8, 1, network.net); err != nil {
				return nil, err
			}
			res.Points = append(res.Points, NetworkPoint{
				N: n, Network: network.name,
				Comparators: arr.Comparisons(), Runtime: time.Since(start),
			})
		}
	}
	return res, nil
}

// ORAMPoint is one (construction, n) measurement of a full partition
// computation with the Or-ORAM method.
type ORAMPoint struct {
	Construction string
	N            int
	Runtime      time.Duration
	ServerBytes  int64
	ClientBytes  int
}

// AblationORAMResult compares PathORAM (the paper's choice) with the
// trivial linear-scan ORAM backing the same Or-ORAM algorithm.
type AblationORAMResult struct {
	Points []ORAMPoint
}

// AblationORAM measures one single-attribute partition per construction
// per n. Linear wins below a small crossover (no tree bookkeeping, O(1)
// client memory) and loses badly as n grows (O(n) per access vs O(log n)).
func AblationORAM(sizes []int, seed int64) (*AblationORAMResult, error) {
	res := &AblationORAMResult{}
	for _, n := range sizes {
		rel := dataset.RND(1, n, seed+int64(n))
		for _, c := range []struct {
			name    string
			factory oram.Factory
		}{{"path-oram", oram.PathFactory}, {"linear", oram.LinearFactory}} {
			srv := store.NewServer()
			cipher, err := crypto.NewCipher(crypto.MustNewKey())
			if err != nil {
				return nil, err
			}
			edb, err := core.Upload(srv, cipher, fmt.Sprintf("oa-%s-%d", c.name, n), rel)
			if err != nil {
				return nil, err
			}
			eng := core.NewOrEngine(edb)
			eng.Factory = c.factory
			before, _ := srv.Stats()
			start := time.Now()
			if _, err := eng.CardinalitySingle(0); err != nil {
				return nil, fmt.Errorf("bench: oram ablation %s n=%d: %w", c.name, n, err)
			}
			after, _ := srv.Stats()
			res.Points = append(res.Points, ORAMPoint{
				Construction: c.name,
				N:            n,
				Runtime:      time.Since(start),
				ServerBytes:  after.StoredBytes - before.StoredBytes,
				ClientBytes:  eng.ClientMemoryBytes(),
			})
			_ = eng.Close()
		}
	}
	return res, nil
}

// Render prints the construction comparison.
func (r *AblationORAMResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: ORAM construction (PathORAM — the paper's choice — vs linear scan)\n")
	fmt.Fprintf(&b, "%8s %10s %12s %12s %12s\n", "n", "oram", "runtime", "server-sto", "client-mem")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %10s %12s %12s %12s\n", p.N, p.Construction,
			fmtDur(p.Runtime), fmtBytes(p.ServerBytes), fmtBytes(int64(p.ClientBytes)))
	}
	b.WriteString("Expected shape: linear wins only at very small n and has O(1) client memory;\nPathORAM's O(log n) accesses dominate beyond the crossover — the paper's choice.\n")
	return b.String()
}

// lessFirst8 orders records by their leading 8 bytes.
func lessFirst8(a, b []byte) bool { return bytes.Compare(a[:8], b[:8]) < 0 }

// Render prints the network comparison.
func (r *AblationNetworkResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: comparison network (bitonic — the paper's choice — vs odd-even merge)\n")
	fmt.Fprintf(&b, "%8s %10s %12s %12s\n", "n", "network", "comparators", "runtime")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %10s %12d %12s\n", p.N, p.Network, p.Comparators, fmtDur(p.Runtime))
	}
	b.WriteString("Expected shape: odd-even uses ~25% fewer comparators; both are O(n log² n).\nThe paper prefers bitonic for its regular, fully balanced stages.\n")
	return b.String()
}
