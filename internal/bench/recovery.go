package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Recovery experiment: what does crash safety cost? For each n the same full
// Or-ORAM discovery runs three ways — in memory (no durability), on a
// durable server with per-level client checkpoints, and crash-interrupted at
// the middle lattice level then recovered (server rollback + client resume).
// All three must discover the identical FD set; the table reports the
// durability overhead, the on-disk footprint, and how recovery time splits
// between reopening state and finishing the remaining levels.

// RecoveryPoint is one (n) measurement.
type RecoveryPoint struct {
	N          int
	Clean      time.Duration // in-memory discovery
	Durable    time.Duration // durable server + per-level checkpoints
	Epochs     int           // checkpoints taken during the durable run
	SnapBytes  int64         // retained snapshot files after the run
	WALBytes   int64         // WAL tail after the run
	CkptBytes  int64         // client checkpoint file
	Reopen     time.Duration // crash at the middle epoch: server rollback + client state resume
	Finish     time.Duration // remaining discovery after resume
	FullRedo   time.Duration // = Durable; what a restart-from-scratch would pay again
	ResumeSave float64       // 1 - (Reopen+Finish)/Durable: fraction of the run recovery preserved
}

// Overhead is the durable/clean wall-clock ratio.
func (p RecoveryPoint) Overhead() float64 {
	if p.Clean <= 0 {
		return 0
	}
	return float64(p.Durable) / float64(p.Clean)
}

// RecoveryResult is the experiment's typed output.
type RecoveryResult struct {
	Points []RecoveryPoint
}

var errBenchCrash = errors.New("bench: injected crash")

// discoverDurable runs one checkpointed discovery over a durable server,
// optionally crashing (aborting) at the given epoch. It returns the result
// (nil when crashed), the epoch count observed, and the checkpoint size.
func discoverDurable(dir, ckpt string, rel *relation.Relation, crashAt int64) (*core.Result, *store.DurableServer, int, error) {
	srv, err := store.OpenDir(dir, store.DurableOptions{})
	if err != nil {
		return nil, nil, 0, err
	}
	cipher, err := crypto.NewCipher(crypto.MustNewKey())
	if err != nil {
		srv.Close()
		return nil, nil, 0, err
	}
	edb, err := core.Upload(srv, cipher, fmt.Sprintf("recovery%d", setupSeq.Add(1)), rel)
	if err != nil {
		srv.Close()
		return nil, nil, 0, err
	}
	eng := core.NewOrEngine(edb)
	epochs := 0
	res, err := core.Discover(eng, rel.NumAttrs(), &core.Options{
		Checkpoint: func(ls *core.LatticeState) error {
			epoch := int64(ls.NextLevel)
			if err := srv.Checkpoint(epoch); err != nil {
				return err
			}
			epochs++
			if err := core.WriteCheckpointFile(ckpt, &core.Checkpoint{
				Epoch:   epoch,
				EDB:     edb.State(),
				Engine:  eng.CheckpointState(),
				Lattice: ls,
			}); err != nil {
				return err
			}
			if crashAt > 0 && epoch >= crashAt {
				return errBenchCrash
			}
			return nil
		},
	})
	if err != nil {
		if errors.Is(err, errBenchCrash) {
			return nil, srv, epochs, nil
		}
		srv.Close()
		return nil, nil, 0, err
	}
	return res, srv, epochs, nil
}

// dirSnapshotBytes sums the retained snapshot files in a data directory.
func dirSnapshotBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".snap") {
			if info, err := e.Info(); err == nil {
				total += info.Size()
			}
		}
	}
	return total
}

func fileSize(path string) int64 {
	info, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return info.Size()
}

// recoveryRelation is RND confined to an 8-value domain per attribute: wide
// domains make every attribute a key and the lattice prunes after level 1,
// which would leave nothing for the resumed run to do. Bounded domains push
// keys (and therefore checkpoint epochs) to levels 2–3.
func recoveryRelation(m, n int, seed int64) *relation.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("C%02d", i)
	}
	r := relation.New(relation.MustNewSchema(names...))
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		row := make(relation.Row, m)
		for j := range row {
			row[j] = fmt.Sprint(rng.Intn(8) + 1)
		}
		if err := r.Append(row); err != nil {
			panic(err)
		}
	}
	return r
}

// Recovery measures durability overhead and recovery effectiveness.
func Recovery(sizes []int, seed int64) (*RecoveryResult, error) {
	res := &RecoveryResult{}
	for _, n := range sizes {
		rel := recoveryRelation(4, n, seed+int64(n))

		// Clean in-memory baseline.
		clean, err := newSetup(rel, MethodOrORAM, 1, 0)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		want, err := core.Discover(clean.eng, rel.NumAttrs(), nil)
		cleanDur := time.Since(start)
		clean.close()
		if err != nil {
			return nil, fmt.Errorf("bench: recovery clean n=%d: %w", n, err)
		}

		// Durable, checkpointed, uninterrupted.
		root, err := os.MkdirTemp("", "oblivfd-recovery-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(root)
		durDir := filepath.Join(root, "durable")
		if err := os.Mkdir(durDir, 0o755); err != nil {
			return nil, err
		}
		ckpt := filepath.Join(root, "run.ckpt")
		start = time.Now()
		got, srv, epochs, err := discoverDurable(durDir, ckpt, rel, 0)
		durDur := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery durable n=%d: %w", n, err)
		}
		if !relation.FDSetEqual(got.Minimal, want.Minimal) {
			srv.Close()
			return nil, fmt.Errorf("bench: recovery n=%d: durable FDs diverge from clean run", n)
		}
		snapBytes := dirSnapshotBytes(durDir)
		walBytes := srv.WALSize()
		srv.Close()

		// Crash at the middle epoch, then recover and finish.
		crashDir := filepath.Join(root, "crash")
		if err := os.Mkdir(crashDir, 0o755); err != nil {
			return nil, err
		}
		crashCkpt := filepath.Join(root, "crash.ckpt")
		crashEpoch := int64((epochs + 1) / 2)
		_, srv2, _, err := discoverDurable(crashDir, crashCkpt, rel, crashEpoch)
		if err != nil {
			return nil, fmt.Errorf("bench: recovery crash n=%d: %w", n, err)
		}
		srv2.Close() // simulated server death

		start = time.Now()
		cp, err := core.ReadCheckpointFile(crashCkpt)
		if err != nil {
			return nil, err
		}
		srv3, err := store.OpenDirAtEpoch(crashDir, cp.Epoch, store.DurableOptions{})
		if err != nil {
			return nil, fmt.Errorf("bench: recovery reopen n=%d: %w", n, err)
		}
		edb, err := core.AttachEDB(srv3, cp.EDB)
		if err != nil {
			srv3.Close()
			return nil, err
		}
		eng, err := core.ResumeEngine(edb, cp.Engine)
		if err != nil {
			srv3.Close()
			return nil, err
		}
		reopenDur := time.Since(start)

		start = time.Now()
		resumed, err := core.Discover(eng, rel.NumAttrs(), &core.Options{Resume: cp.Lattice})
		finishDur := time.Since(start)
		srv3.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: recovery resume n=%d: %w", n, err)
		}
		if !relation.FDSetEqual(resumed.Minimal, want.Minimal) {
			return nil, fmt.Errorf("bench: recovery n=%d: resumed FDs diverge — recovery must not change results", n)
		}

		p := RecoveryPoint{
			N:         n,
			Clean:     cleanDur,
			Durable:   durDur,
			Epochs:    epochs,
			SnapBytes: snapBytes,
			WALBytes:  walBytes,
			CkptBytes: fileSize(ckpt),
			Reopen:    reopenDur,
			Finish:    finishDur,
			FullRedo:  durDur,
		}
		if durDur > 0 {
			p.ResumeSave = 1 - float64(reopenDur+finishDur)/float64(durDur)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Render prints the durability-cost and recovery table.
func (r *RecoveryResult) Render() string {
	var b strings.Builder
	b.WriteString("Crash recovery (Or-ORAM full discovery, bounded-domain RND m=4; durable = WAL + per-level snapshots + client checkpoints)\n")
	fmt.Fprintf(&b, "%8s %10s %10s %9s %7s %10s %9s %9s %10s %10s %8s\n",
		"n", "clean", "durable", "overhead", "epochs", "snapshots", "wal", "ckpt", "reopen", "finish", "saved")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8d %10s %10s %8.2fx %7d %10s %9s %9s %10s %10s %7.0f%%\n",
			p.N, fmtDur(p.Clean), fmtDur(p.Durable), p.Overhead(), p.Epochs,
			fmtBytes(p.SnapBytes), fmtBytes(p.WALBytes), fmtBytes(p.CkptBytes),
			fmtDur(p.Reopen), fmtDur(p.Finish), p.ResumeSave*100)
	}
	b.WriteString("identical FD sets in all three runs: durability and recovery change timing, never results\n")
	return b.String()
}
