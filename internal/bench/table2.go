package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/stats"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Table2Cell is one (method, |X| case, dataset) entry: the KS p-value
// comparing the method's runtimes on a real-shaped dataset against its
// runtimes on RND, plus the observed server storage.
type Table2Cell struct {
	Method      Method
	MultiAttr   bool // false: |X| = 1 (groups S1 vs S3); true: |X| ≥ 2 (S2 vs S4)
	Dataset     string
	PValue      float64
	StorageReal int64 // server bytes after the run on the real dataset
	StorageRND  int64 // server bytes after the run on RND
}

// Table2Result reproduces Table II: the obliviousness experiment.
type Table2Result struct {
	RowsSampled int
	Runs        int
	Cells       []Table2Cell
}

// Table2Config parameterizes the experiment.
type Table2Config struct {
	// Rows is the sample size per dataset; the paper uses 2^13. Smaller
	// values keep quick runs quick.
	Rows int
	// Runs is the per-group sample count; the paper uses 9.
	Runs int
	// Seed drives dataset generation and column choice.
	Seed int64
	// RTT, when positive, models the paper's network deployment: every
	// storage operation costs one round trip. The paper's p-values come
	// from wall-clock times in a regime where the (data-independent)
	// network cost dominates; without it, microsecond-level client-side
	// effects — position-map sizes, allocator behavior — that a real
	// adversary cannot observe leak into in-process timings and skew the
	// KS test.
	RTT time.Duration
}

// Table2 runs the paper's §VII-B experiment: for each method and each
// |X| case, measure Runs runtimes on each real-shaped dataset (groups S1,
// S2) and on RND (groups S3, S4), and KS-test the samples. Obliviousness
// predicts p-values well above 0.05 everywhere and near-identical storage.
func Table2(cfg Table2Config) (*Table2Result, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 1 << 13
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Table2Result{RowsSampled: cfg.Rows, Runs: cfg.Runs}

	// Definition 2 quantifies over databases *of the same size*, and under
	// cell-level encryption a cell's length is part of that size. The
	// datasets' native cell lengths differ (Adult's categorical strings vs
	// RND's integers), which would legitimately — but uninterestingly —
	// separate the runtime distributions. Pad every cell to one width so
	// the compared databases really are same-size, differing only in
	// content.
	const cellWidth = 20
	rnd := padCells(dataset.RND(10, cfg.Rows, cfg.Seed+100), cellWidth)
	datasets := map[string]*relation.Relation{}
	for _, name := range []string{"adult", "letter", "flight"} {
		rel, err := dataset.Generate(name, cfg.Rows, cfg.Seed)
		if err != nil {
			return nil, err
		}
		datasets[name] = padCells(rel, cellWidth)
	}

	// measureOnce runs one partition computation on rel with a fresh
	// upload and engine, returning the runtime and the protocol storage
	// delta (over the uploaded ciphertexts, whose size is the allowed
	// Size(DB) leakage).
	measureOnce := func(method Method, rel *relation.Relation, multi bool) (float64, int64, error) {
		var s *setup
		var err error
		if cfg.RTT > 0 {
			s, err = newSetupOn(store.WithLatency(store.Service(store.NewServer()), cfg.RTT), rel, method, 1, 0)
		} else {
			s, err = newSetup(rel, method, 1, 0)
		}
		if err != nil {
			return 0, 0, err
		}
		defer s.close()
		before := s.serverBytes()
		var d time.Duration
		if multi {
			a := rng.Intn(rel.NumAttrs())
			b := (a + 1 + rng.Intn(rel.NumAttrs()-1)) % rel.NumAttrs()
			d, err = s.timePair(a, b)
		} else {
			d, err = s.timeSingle(rng.Intn(rel.NumAttrs()))
		}
		if err != nil {
			return 0, 0, err
		}
		return d.Seconds(), s.serverBytes() - before, nil
	}

	order := []string{"rnd", "adult", "letter", "flight"}
	relOf := func(name string) *relation.Relation {
		if name == "rnd" {
			return rnd
		}
		return datasets[name]
	}
	for _, method := range AllMethods {
		for _, multi := range []bool{false, true} {
			// Interleave the groups round-robin: run r of every dataset
			// executes back to back, so slow drift in machine conditions
			// (thermal, background load) shifts all groups equally
			// instead of separating them. The paper's network noise is
			// i.i.d. across its sequential runs; interleaving restores
			// that pairing in a shared environment.
			times := make(map[string][]float64, len(order))
			storage := make(map[string]int64, len(order))
			for r := 0; r < cfg.Runs; r++ {
				// Shuffle within the round too: a fixed position in the
				// round correlates with allocator/GC phase, which would
				// systematically separate one group.
				round := append([]string(nil), order...)
				rng.Shuffle(len(round), func(i, j int) { round[i], round[j] = round[j], round[i] })
				for _, name := range round {
					t, sto, err := measureOnce(method, relOf(name), multi)
					if err != nil {
						return nil, fmt.Errorf("bench: table2 %s %s: %w", method, name, err)
					}
					times[name] = append(times[name], t)
					storage[name] = sto
				}
			}
			for _, name := range order[1:] {
				ks, err := stats.KSTest(times[name], times["rnd"])
				if err != nil {
					return nil, err
				}
				res.Cells = append(res.Cells, Table2Cell{
					Method:      method,
					MultiAttr:   multi,
					Dataset:     name,
					PValue:      ks.P,
					StorageReal: storage[name],
					StorageRND:  storage["rnd"],
				})
			}
		}
	}
	return res, nil
}

// padCells pads (or truncates) every cell to exactly width bytes, giving
// all compared databases identical Size(DB).
func padCells(rel *relation.Relation, width int) *relation.Relation {
	out := relation.New(rel.Schema())
	for i := 0; i < rel.NumRows(); i++ {
		row := make(relation.Row, rel.NumAttrs())
		for j := range row {
			v := rel.Value(i, j)
			if len(v) > width {
				v = v[:width]
			}
			row[j] = v + strings.Repeat("~", width-len(v))
		}
		if err := out.Append(row); err != nil {
			panic(err) // same schema and width by construction
		}
	}
	return out
}

// Render prints the table in the paper's layout (methods × case rows,
// dataset p-value columns, storage column).
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: two-sample KS test p-values (runtime, real vs RND), n=%d, %d runs/group\n", r.RowsSampled, r.Runs)
	fmt.Fprintf(&b, "%-8s %-7s %8s %8s %8s %12s %12s\n", "Method", "Case", "Adult", "Letter", "Flight", "Sto(real)", "Sto(RND)")
	for _, method := range AllMethods {
		for _, multi := range []bool{false, true} {
			caseName := "|X|=1"
			if multi {
				caseName = "|X|>=2"
			}
			vals := map[string]Table2Cell{}
			for _, c := range r.Cells {
				if c.Method == method && c.MultiAttr == multi {
					vals[c.Dataset] = c
				}
			}
			f := vals["flight"]
			fmt.Fprintf(&b, "%-8s %-7s %8.2f %8.2f %8.2f %12s %12s\n",
				method, caseName,
				vals["adult"].PValue, vals["letter"].PValue, f.PValue,
				fmtBytes(f.StorageReal), fmtBytes(f.StorageRND))
		}
	}
	b.WriteString("Obliviousness predicts p >= 0.05 in every cell and matching storage columns.\n")
	return b.String()
}

// MinPValue returns the smallest p-value in the table (used by tests: a
// tiny value would be evidence against obliviousness).
func (r *Table2Result) MinPValue() float64 {
	min := 1.0
	for _, c := range r.Cells {
		if c.PValue < min {
			min = c.PValue
		}
	}
	return min
}
