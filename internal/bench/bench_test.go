package bench

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/oblivfd/oblivfd/internal/dataset"
)

func TestTable1SmallSample(t *testing.T) {
	res, err := Table1(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	wantCols := map[string]int{"Adult": 14, "Letter": 16, "Flight": 20}
	for _, row := range res.Rows {
		if row.Columns != wantCols[row.Dataset] {
			t.Errorf("%s columns = %d, want %d", row.Dataset, row.Columns, wantCols[row.Dataset])
		}
		if row.Rows != 100 || row.Bytes <= 0 {
			t.Errorf("%s rows=%d bytes=%d", row.Dataset, row.Rows, row.Bytes)
		}
	}
	out := res.Render()
	for _, want := range []string{"Table I", "Adult", "Letter", "Flight"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Tiny(t *testing.T) {
	res, err := Table2(Table2Config{Rows: 32, Runs: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 methods × 2 cases × 3 datasets.
	if len(res.Cells) != 18 {
		t.Fatalf("cells = %d, want 18", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.PValue < 0 || c.PValue > 1 {
			t.Errorf("p-value out of range: %+v", c)
		}
		if c.StorageReal <= 0 || c.StorageRND <= 0 {
			t.Errorf("storage not recorded: %+v", c)
		}
		// Obliviousness: storage identical across datasets of equal size.
		if c.StorageReal != c.StorageRND {
			t.Errorf("%s %s storage differs between real (%d) and RND (%d)",
				c.Method, c.Dataset, c.StorageReal, c.StorageRND)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Table II") {
		t.Errorf("render:\n%s", out)
	}
	if res.MinPValue() < 0 {
		t.Error("MinPValue negative")
	}
}

func TestFig4Tiny(t *testing.T) {
	res, err := Fig4([]int{16, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 { // 2 sizes × 3 methods × 2 cases
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, m := range AllMethods {
		lo, ok1 := res.Runtime(m, false, 16)
		hi, ok2 := res.Runtime(m, false, 64)
		if !ok1 || !ok2 || lo <= 0 || hi <= 0 {
			t.Errorf("%s: missing points", m)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Fig 4") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig5Tiny(t *testing.T) {
	res, err := Fig5([]int{16, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Server storage: ORAM > Sort at the same n; storage grows with n.
	or16, _ := res.Point(MethodOrORAM, 16)
	or64, _ := res.Point(MethodOrORAM, 64)
	st64, _ := res.Point(MethodSort, 64)
	ex64, _ := res.Point(MethodExORAM, 64)
	if or64.ServerBytes <= or16.ServerBytes {
		t.Error("ORAM storage does not grow with n")
	}
	if st64.ServerBytes >= or64.ServerBytes {
		t.Errorf("Sort storage (%d) not below Or-ORAM (%d)", st64.ServerBytes, or64.ServerBytes)
	}
	if ex64.ServerBytes <= or64.ServerBytes {
		t.Errorf("Ex-ORAM storage (%d) not above Or-ORAM (%d)", ex64.ServerBytes, or64.ServerBytes)
	}
	// Client memory: Sort constant, ORAM grows.
	st16, _ := res.Point(MethodSort, 16)
	if st16.ClientBytes != st64.ClientBytes {
		t.Error("Sort client memory not constant")
	}
	or16c, _ := res.Point(MethodOrORAM, 16)
	if or64.ClientBytes <= or16c.ClientBytes {
		t.Error("ORAM client memory does not grow")
	}
	if out := res.Render(); !strings.Contains(out, "Fig 5") {
		t.Errorf("render:\n%s", out)
	}
}

func TestTable3Render(t *testing.T) {
	res, err := Table3([]int{16, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	for _, want := range []string{"Table III", "O(n log² n)", "Measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig6aTiny(t *testing.T) {
	res, err := Fig6a(64, []int{1, 2}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Runtime <= 0 {
			t.Errorf("threads=%d runtime %v", p.Threads, p.Runtime)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Fig 6(a)") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig6bTiny(t *testing.T) {
	res, err := Fig6b([]int{64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Enclave >= p.Outside {
			t.Errorf("enclave (%v) not faster than protocol (%v) at n=%d", p.Enclave, p.Outside, p.N)
		}
	}
	if out := res.Render(); !strings.Contains(out, "Fig 6(b)") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFig7Tiny(t *testing.T) {
	res, err := Fig7([]int{32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	single, ok1 := res.Point(32, false)
	pair, ok2 := res.Point(32, true)
	if !ok1 || !ok2 {
		t.Fatal("missing points")
	}
	for _, p := range []Fig7Point{single, pair} {
		if p.InsertAvg <= 0 || p.DeleteAvg <= 0 {
			t.Errorf("non-positive latency: %+v", p)
		}
	}
	// The paper's insert-vs-delete cost shape (|X|=2 insertion touches
	// more ORAMs than deletion) is deterministic in access counts and
	// verified in core's trace tests; wall-clock ratios at this tiny n
	// are noise-dominated, so only positivity is asserted here. The
	// fdbench fig7 run at realistic n shows the ratio.
	if out := res.Render(); !strings.Contains(out, "Fig 7") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationCompressionTiny(t *testing.T) {
	res, err := AblationCompression(48, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 { // |X| = 2, 3, 4
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Compressed <= 0 || p.Raw <= 0 {
			t.Errorf("non-positive timing: %+v", p)
		}
	}
	if out := res.Render(); !strings.Contains(out, "attribute compression") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationNetworkTiny(t *testing.T) {
	res, err := AblationNetwork([]int{32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	var bitonic, oddEven int64
	for _, p := range res.Points {
		switch p.Network {
		case "bitonic":
			bitonic = p.Comparators
		case "odd-even":
			oddEven = p.Comparators
		}
	}
	if oddEven >= bitonic {
		t.Errorf("odd-even comparators (%d) not below bitonic (%d)", oddEven, bitonic)
	}
	if out := res.Render(); !strings.Contains(out, "comparison network") {
		t.Errorf("render:\n%s", out)
	}
}

func TestCommTiny(t *testing.T) {
	res, err := Comm([]int{32, 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("points = %d", len(res.Points))
	}
	or32, _ := res.Point(MethodOrORAM, false, 32)
	or64, _ := res.Point(MethodOrORAM, false, 64)
	sort64, _ := res.Point(MethodSort, false, 64)
	if or64.Ops <= or32.Ops || or64.Bytes <= or32.Bytes {
		t.Error("ORAM communication does not grow with n")
	}
	// The defining asymmetry: Sort needs more round trips, ORAM moves
	// more bytes per trip (whole paths).
	if sort64.Ops <= or64.Ops {
		t.Errorf("Sort ops (%d) not above ORAM ops (%d)", sort64.Ops, or64.Ops)
	}
	if sort64.Bytes >= or64.Bytes {
		t.Errorf("Sort bytes (%d) not below ORAM bytes (%d)", sort64.Bytes, or64.Bytes)
	}
	// Communication is a fixed function of the database size — re-running
	// the same workload must reproduce ops and bytes exactly. (A
	// different seed would change cell digit counts, which is Size(DB)
	// variation, so the same seed is used.)
	res2, err := Comm([]int{64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	again, _ := res2.Point(MethodOrORAM, false, 64)
	if again.Ops != or64.Ops || again.Bytes != or64.Bytes {
		t.Errorf("communication not deterministic: %d/%d vs %d/%d ops/bytes",
			again.Ops, again.Bytes, or64.Ops, or64.Bytes)
	}
	if out := res.Render(); !strings.Contains(out, "Communication cost") {
		t.Errorf("render:\n%s", out)
	}
}

func TestAblationORAMTiny(t *testing.T) {
	res, err := AblationORAM([]int{16, 128}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	byKey := map[string]ORAMPoint{}
	for _, p := range res.Points {
		byKey[fmt.Sprintf("%s/%d", p.Construction, p.N)] = p
	}
	// Linear's client memory is constant; PathORAM's grows.
	if byKey["linear/16"].ClientBytes != byKey["linear/128"].ClientBytes {
		t.Error("linear client memory not constant")
	}
	if byKey["path-oram/128"].ClientBytes <= byKey["path-oram/16"].ClientBytes {
		t.Error("path-oram client memory did not grow")
	}
	// PathORAM stores much more on the server (dummies).
	if byKey["path-oram/128"].ServerBytes <= byKey["linear/128"].ServerBytes {
		t.Error("path-oram server storage not above linear")
	}
	// At n=128 PathORAM must already be faster than the linear scan.
	if byKey["path-oram/128"].Runtime >= byKey["linear/128"].Runtime {
		t.Errorf("path-oram (%v) not faster than linear (%v) at n=128",
			byKey["path-oram/128"].Runtime, byKey["linear/128"].Runtime)
	}
	if out := res.Render(); !strings.Contains(out, "ORAM construction") {
		t.Errorf("render:\n%s", out)
	}
}

func TestSecurityLevelsTiny(t *testing.T) {
	res, err := SecurityLevels([]int{32}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("points = %d, want 5 levels", len(res.Points))
	}
	times := map[string]time.Duration{}
	for _, p := range res.Points {
		if p.Runtime <= 0 {
			t.Errorf("%s runtime %v", p.Level, p.Runtime)
		}
		times[p.Level] = p.Runtime
	}
	// The ordering claim: oblivious protocols cost more than the leaky
	// deterministic baseline.
	if times["sort"] <= times["deterministic"] {
		t.Errorf("sort (%v) not above deterministic (%v)", times["sort"], times["deterministic"])
	}
	if times["or-oram"] <= times["deterministic"] {
		t.Errorf("or-oram (%v) not above deterministic (%v)", times["or-oram"], times["deterministic"])
	}
	if out := res.Render(); !strings.Contains(out, "Price of security") {
		t.Errorf("render:\n%s", out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if got := fmtBytes(512); got != "512B" {
		t.Errorf("fmtBytes(512) = %q", got)
	}
	if got := fmtBytes(2048); got != "2.00KB" {
		t.Errorf("fmtBytes(2048) = %q", got)
	}
	if got := fmtBytes(3 << 20); got != "3.00MB" {
		t.Errorf("fmtBytes(3MB) = %q", got)
	}
	if got := fmtDur(1500 * time.Microsecond); got != "1.5ms" {
		t.Errorf("fmtDur = %q", got)
	}
	if got := fmtDur(12 * time.Second); got != "12.00s" {
		t.Errorf("fmtDur = %q", got)
	}
}

func TestNewSetupUnknownMethod(t *testing.T) {
	rel := dataset.RND(2, 4, 1)
	_, err := newSetup(rel, Method("bogus"), 1, 0)
	if err == nil {
		t.Error("unknown method accepted")
	}
}

// TestFaultToleranceTiny: the faults experiment completes, injects faults,
// retries them, and agrees with the clean run (enforced inside).
func TestFaultToleranceTiny(t *testing.T) {
	res, err := FaultTolerance([]int{32, 64}, 0.05, 0.05, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	var injected, retries int64
	for _, p := range res.Points {
		injected += p.Injected
		retries += p.Retries
		if p.Clean <= 0 || p.Faulty <= 0 {
			t.Errorf("n=%d: non-positive timings %v / %v", p.N, p.Clean, p.Faulty)
		}
	}
	if injected == 0 {
		t.Error("no faults injected at 5% over two sizes")
	}
	if retries < injected {
		t.Errorf("retries (%d) < injected faults (%d)", retries, injected)
	}
	if out := res.Render(); !strings.Contains(out, "Fault tolerance overhead") {
		t.Errorf("render:\n%s", out)
	}
}

// TestFaultToleranceCorruption: with the corruption axis on, every size
// either detects an injected corruption (aborting with ErrIntegrity) or
// injects none; a 5% per-read rate over these workloads always fires.
func TestFaultToleranceCorruption(t *testing.T) {
	res, err := FaultTolerance([]int{32, 64}, 0, 0, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	var corruptions, detected int64
	for _, p := range res.Points {
		corruptions += p.Corruptions
		detected += p.Detected
	}
	if corruptions == 0 {
		t.Error("no corruptions injected at 5% over two sizes")
	}
	if detected == 0 {
		t.Error("no run detected its corruption")
	}
	if out := res.Render(); !strings.Contains(out, "detected") {
		t.Errorf("render missing the detection column:\n%s", out)
	}
}

// TestRecoveryTiny: the recovery experiment completes, checkpoints at least
// one epoch, resumes after the injected crash, and agrees with the clean
// run (enforced inside).
func TestRecoveryTiny(t *testing.T) {
	res, err := Recovery([]int{32}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 {
		t.Fatalf("points = %d", len(res.Points))
	}
	p := res.Points[0]
	if p.Epochs < 1 {
		t.Errorf("no checkpoint epochs in a full discovery")
	}
	if p.Clean <= 0 || p.Durable <= 0 || p.Reopen <= 0 || p.Finish <= 0 {
		t.Errorf("non-positive timings: %+v", p)
	}
	if p.SnapBytes <= 0 || p.CkptBytes <= 0 {
		t.Errorf("no on-disk footprint measured: %+v", p)
	}
	if out := res.Render(); !strings.Contains(out, "Crash recovery") {
		t.Errorf("render:\n%s", out)
	}
}
