package bench

import (
	"fmt"
	"strings"

	"github.com/oblivfd/oblivfd/internal/dataset"
)

// Table1Row is one dataset summary row (paper Table I).
type Table1Row struct {
	Dataset string
	Columns int
	Rows    int
	Bytes   int
}

// Table1Result reproduces Table I: the dataset summary.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 generates (or samples) each dataset and summarizes it. rows ≤ 0
// uses the published sizes (Table I); a positive value caps generation for
// quick runs.
func Table1(rows int, seed int64) (*Table1Result, error) {
	res := &Table1Result{}
	for _, spec := range dataset.Specs {
		n := spec.Rows
		if rows > 0 && rows < n {
			n = rows
		}
		rel, err := dataset.Generate(strings.ToLower(spec.Name), n, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table1Row{
			Dataset: spec.Name,
			Columns: rel.NumAttrs(),
			Rows:    rel.NumRows(),
			Bytes:   rel.ByteSize(),
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: dataset summary\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "Dataset", "# Columns", "# Rows", "# Size")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %10d %10d %10s\n", row.Dataset, row.Columns, row.Rows, fmtBytes(int64(row.Bytes)))
	}
	return b.String()
}
