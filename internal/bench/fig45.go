package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/dataset"
)

// Fig4Point is one (method, case, n) runtime measurement.
type Fig4Point struct {
	Method    Method
	MultiAttr bool
	N         int
	Runtime   time.Duration
}

// Fig4Result reproduces Fig. 4: row scalability of partition-computation
// runtime for |X| = 1 and |X| ≥ 2.
type Fig4Result struct {
	Points []Fig4Point
}

// Fig4 measures one partition computation per (method, case, n) on RND.
func Fig4(sizes []int, seed int64) (*Fig4Result, error) {
	res := &Fig4Result{}
	for _, n := range sizes {
		rel := dataset.RND(4, n, seed+int64(n))
		for _, method := range AllMethods {
			for _, multi := range []bool{false, true} {
				s, err := newSetup(rel, method, 1, 0)
				if err != nil {
					return nil, err
				}
				var d time.Duration
				if multi {
					d, err = s.timePair(0, 1)
				} else {
					d, err = s.timeSingle(0)
				}
				s.close()
				if err != nil {
					return nil, fmt.Errorf("bench: fig4 %s n=%d: %w", method, n, err)
				}
				res.Points = append(res.Points, Fig4Point{Method: method, MultiAttr: multi, N: n, Runtime: d})
			}
		}
	}
	return res, nil
}

// Fig4Single measures a single Fig. 4 point: one partition computation for
// the given method, case, and row count.
func Fig4Single(method Method, multi bool, n int, seed int64) (time.Duration, error) {
	rel := dataset.RND(4, n, seed)
	s, err := newSetup(rel, method, 1, 0)
	if err != nil {
		return 0, err
	}
	defer s.close()
	if multi {
		return s.timePair(0, 1)
	}
	return s.timeSingle(0)
}

// Render prints two series blocks, one per case, methods as columns.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	for _, multi := range []bool{false, true} {
		caseName := "|X| = 1"
		if multi {
			caseName = "|X| >= 2"
		}
		fmt.Fprintf(&b, "Fig 4 (%s): partition runtime vs n (RND)\n", caseName)
		fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "n", MethodOrORAM, MethodExORAM, MethodSort)
		seen := map[int]map[Method]time.Duration{}
		var order []int
		for _, p := range r.Points {
			if p.MultiAttr != multi {
				continue
			}
			if seen[p.N] == nil {
				seen[p.N] = map[Method]time.Duration{}
				order = append(order, p.N)
			}
			seen[p.N][p.Method] = p.Runtime
		}
		for _, n := range order {
			fmt.Fprintf(&b, "%8d %12s %12s %12s\n", n,
				fmtDur(seen[n][MethodOrORAM]), fmtDur(seen[n][MethodExORAM]), fmtDur(seen[n][MethodSort]))
		}
	}
	b.WriteString("Expected shape: Sort grows ~n·log²n and overtakes the ORAM methods as n grows;\nEx-ORAM > Or-ORAM; the |X|>=2 case costs ORAM methods extra subset reads.\n")
	return b.String()
}

// Runtime looks up a point (testing helper).
func (r *Fig4Result) Runtime(m Method, multi bool, n int) (time.Duration, bool) {
	for _, p := range r.Points {
		if p.Method == m && p.MultiAttr == multi && p.N == n {
			return p.Runtime, true
		}
	}
	return 0, false
}

// Fig5Point is one (method, n) resource measurement after computing one
// single-attribute partition.
type Fig5Point struct {
	Method      Method
	N           int
	ServerBytes int64
	ClientBytes int
}

// Fig5Result reproduces Fig. 5: server storage and client memory vs n.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5 measures per-partition server storage and client memory on RND. The
// paper notes the curves coincide for |X| = 1 and |X| ≥ 2, so one case
// suffices.
func Fig5(sizes []int, seed int64) (*Fig5Result, error) {
	res := &Fig5Result{}
	for _, n := range sizes {
		rel := dataset.RND(2, n, seed+int64(n))
		for _, method := range AllMethods {
			s, err := newSetup(rel, method, 1, 0)
			if err != nil {
				return nil, err
			}
			before := s.serverBytes()
			if _, err := s.timeSingle(0); err != nil {
				s.close()
				return nil, fmt.Errorf("bench: fig5 %s n=%d: %w", method, n, err)
			}
			res.Points = append(res.Points, Fig5Point{
				Method:      method,
				N:           n,
				ServerBytes: s.serverBytes() - before,
				ClientBytes: s.eng.ClientMemoryBytes(),
			})
			s.close()
		}
	}
	return res, nil
}

// Render prints server-storage and client-memory blocks.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	render := func(title string, value func(Fig5Point) string) {
		fmt.Fprintf(&b, "Fig 5 (%s) vs n, one partition (RND)\n", title)
		fmt.Fprintf(&b, "%8s %12s %12s %12s\n", "n", MethodOrORAM, MethodExORAM, MethodSort)
		seen := map[int]map[Method]string{}
		var order []int
		for _, p := range r.Points {
			if seen[p.N] == nil {
				seen[p.N] = map[Method]string{}
				order = append(order, p.N)
			}
			seen[p.N][p.Method] = value(p)
		}
		for _, n := range order {
			fmt.Fprintf(&b, "%8d %12s %12s %12s\n", n,
				seen[n][MethodOrORAM], seen[n][MethodExORAM], seen[n][MethodSort])
		}
	}
	render("server storage", func(p Fig5Point) string { return fmtBytes(p.ServerBytes) })
	render("client memory", func(p Fig5Point) string { return fmtBytes(int64(p.ClientBytes)) })
	b.WriteString("Expected shape: Sort stores far less on the server and O(1) on the client;\nORAM methods cost O(n) on both, Ex-ORAM > Or-ORAM (extra key and frequency fields).\n")
	return b.String()
}

// Point looks up a measurement (testing helper).
func (r *Fig5Result) Point(m Method, n int) (Fig5Point, bool) {
	for _, p := range r.Points {
		if p.Method == m && p.N == n {
			return p, true
		}
	}
	return Fig5Point{}, false
}

// Table3Result reproduces Table III: the analytic complexity summary,
// printed alongside measured scaling exponents from a Fig. 4 run so theory
// and measurement sit side by side.
type Table3Result struct {
	Fig4 *Fig4Result
}

// Table3 wraps a Fig. 4 sweep for the complexity summary.
func Table3(sizes []int, seed int64) (*Table3Result, error) {
	f, err := Fig4(sizes, seed)
	if err != nil {
		return nil, err
	}
	return &Table3Result{Fig4: f}, nil
}

// Render prints the analytic table and, where the sweep covers a 4× range,
// the measured runtime ratio across the extreme sizes.
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table III: method summary (computation for one partition, storage in S)\n")
	fmt.Fprintf(&b, "%-8s %-32s %-10s\n", "Method", "Computation", "Storage")
	fmt.Fprintf(&b, "%-8s %-32s %-10s\n", "ORAM", "O(n log n (1 + log² log n))", "O(n)")
	fmt.Fprintf(&b, "%-8s %-32s %-10s\n", "Sort", "O(n log² n)", "O(n)")
	ns := map[int]bool{}
	var min, max int
	for _, p := range r.Fig4.Points {
		if !ns[p.N] {
			ns[p.N] = true
			if min == 0 || p.N < min {
				min = p.N
			}
			if p.N > max {
				max = p.N
			}
		}
	}
	if max >= 4*min {
		b.WriteString("\nMeasured runtime growth (|X|=1) across the sweep:\n")
		for _, m := range AllMethods {
			lo, ok1 := r.Fig4.Runtime(m, false, min)
			hi, ok2 := r.Fig4.Runtime(m, false, max)
			if ok1 && ok2 && lo > 0 {
				fmt.Fprintf(&b, "  %-8s n: %d -> %d, runtime x%.1f\n", m, min, max, float64(hi)/float64(lo))
			}
		}
	}
	return b.String()
}
