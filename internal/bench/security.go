package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/enclave"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// SecurityLevelPoint is one (level, n) full-discovery measurement.
type SecurityLevelPoint struct {
	Level   string
	Leakage string
	N       int
	Runtime time.Duration
}

// SecurityLevelsResult quantifies the price of security: full FD discovery
// under each leakage regime, from no protection to minimal leakage. This is
// the paper's positioning (§I-B, §VIII) made measurable: its predecessor
// [14] trades frequency leakage for speed; the paper's protocols close the
// leak and pay the oblivious-computation premium.
type SecurityLevelsResult struct {
	MaxLHS int
	Points []SecurityLevelPoint
}

// SecurityLevels measures one full discovery per level per n on RND.
func SecurityLevels(sizes []int, maxLHS int, seed int64) (*SecurityLevelsResult, error) {
	levels := []struct {
		name    string
		leakage string
		mk      func(rel *relation.Relation, edb *core.EncryptedDB) core.Engine
	}{
		{"plaintext", "everything", func(rel *relation.Relation, edb *core.EncryptedDB) core.Engine {
			return core.NewPlainEngine(rel)
		}},
		{"deterministic", "frequencies [14]", func(rel *relation.Relation, edb *core.EncryptedDB) core.Engine {
			return core.NewDetEngine(edb)
		}},
		{"enclave", "size+FDs (SGX)", func(rel *relation.Relation, edb *core.EncryptedDB) core.Engine {
			return enclave.NewSortEngine(rel, 1)
		}},
		{"sort", "size+FDs", func(rel *relation.Relation, edb *core.EncryptedDB) core.Engine {
			return core.NewSortEngine(edb, 1)
		}},
		{"or-oram", "size+FDs", func(rel *relation.Relation, edb *core.EncryptedDB) core.Engine {
			return core.NewOrEngine(edb)
		}},
	}

	res := &SecurityLevelsResult{MaxLHS: maxLHS}
	for _, n := range sizes {
		rel := dataset.RND(4, n, seed+int64(n))
		for _, level := range levels {
			srv := store.NewServer()
			cipher, err := crypto.NewCipher(crypto.MustNewKey())
			if err != nil {
				return nil, err
			}
			edb, err := core.Upload(srv, cipher, fmt.Sprintf("sec-%s-%d", level.name, n), rel)
			if err != nil {
				return nil, err
			}
			eng := level.mk(rel, edb)
			start := time.Now()
			if _, err := core.Discover(eng, rel.NumAttrs(), &core.Options{MaxLHS: maxLHS}); err != nil {
				return nil, fmt.Errorf("bench: security %s n=%d: %w", level.name, n, err)
			}
			res.Points = append(res.Points, SecurityLevelPoint{
				Level: level.name, Leakage: level.leakage, N: n, Runtime: time.Since(start),
			})
			_ = eng.Close()
		}
	}
	return res, nil
}

// Render prints the comparison grouped by n.
func (r *SecurityLevelsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Price of security: full discovery runtime (RND, MaxLHS=%d)\n", r.MaxLHS)
	fmt.Fprintf(&b, "%-14s %-18s", "level", "leaks")
	var ns []int
	seen := map[int]bool{}
	for _, p := range r.Points {
		if !seen[p.N] {
			seen[p.N] = true
			ns = append(ns, p.N)
			fmt.Fprintf(&b, " %10s", fmt.Sprintf("n=%d", p.N))
		}
	}
	b.WriteByte('\n')
	order := []string{"plaintext", "deterministic", "enclave", "sort", "or-oram"}
	for _, level := range order {
		var leakage string
		times := map[int]time.Duration{}
		for _, p := range r.Points {
			if p.Level == level {
				leakage = p.Leakage
				times[p.N] = p.Runtime
			}
		}
		fmt.Fprintf(&b, "%-14s %-18s", level, leakage)
		for _, n := range ns {
			fmt.Fprintf(&b, " %10s", fmtDur(times[n]))
		}
		b.WriteByte('\n')
	}
	b.WriteString("Deterministic tags run near plaintext speed but leak every column's frequency\nhistogram (see the frequency-attack tests); the oblivious protocols close that\nleak at the measured premium. The enclave deployment recovers most of it.\n")
	return b.String()
}
