package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// The telemetry experiment: full discovery per method with a registry
// attached, reporting where the wall time goes (per lattice level) and how
// many oblivious accesses each method issues. It complements fig4/fig5
// (whole-run and per-operation timings) and fig6/fig7 (parallelism and
// dynamics) with the breakdown the paper discusses qualitatively in §VII-B:
// the sorting method's cost concentrates in the level-ascension sorts,
// whereas the ORAM methods pay per access. fdbench writes the result to a
// JSON artifact (BENCH_telemetry.json) for plotting.

// TelemetryPhase is one traversal phase's accumulated wall time.
type TelemetryPhase struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
}

// TelemetryPoint is one (method, n) cell of the experiment.
type TelemetryPoint struct {
	Method          string           `json:"method"`
	N               int              `json:"n"`
	WallNS          int64            `json:"wall_ns"`
	MinimalFDs      int              `json:"minimal_fds"`
	Partitions      int              `json:"partitions"`
	ORAMAccesses    int64            `json:"oram_accesses"`
	PathReads       int64            `json:"oram_path_reads"`
	PathWrites      int64            `json:"oram_path_writes"`
	SortComparisons int64            `json:"sort_comparisons"`
	SortStages      int64            `json:"sort_stages"`
	Phases          []TelemetryPhase `json:"phases"`
}

// TelemetryResult is the full experiment outcome.
type TelemetryResult struct {
	M      int              `json:"m"`
	Seed   int64            `json:"seed"`
	Points []TelemetryPoint `json:"points"`
}

// Telemetry runs full FD discovery for every method at each size with a
// metrics registry attached and collects the per-phase breakdown.
func Telemetry(sizes []int, seed int64) (*TelemetryResult, error) {
	const m = 4
	res := &TelemetryResult{M: m, Seed: seed}
	for _, n := range sizes {
		rel := rndRelation(m, n, seed)
		for _, method := range AllMethods {
			s, err := newSetup(rel, method, 1, 0)
			if err != nil {
				return nil, err
			}
			reg := telemetry.New()
			switch eng := s.eng.(type) {
			case *core.SortEngine:
				eng.Telemetry = reg
			case *core.OrEngine:
				eng.Telemetry = reg
			case *core.ExEngine:
				eng.Telemetry = reg
			}
			start := time.Now()
			dres, err := core.Discover(s.eng, m, &core.Options{Telemetry: reg})
			wall := time.Since(start)
			if err != nil {
				s.close()
				return nil, fmt.Errorf("bench: telemetry %s n=%d: %w", method, n, err)
			}
			pt := TelemetryPoint{
				Method:          string(method),
				N:               n,
				WallNS:          wall.Nanoseconds(),
				MinimalFDs:      len(dres.Minimal),
				Partitions:      dres.SetsMaterialized,
				ORAMAccesses:    reg.Counter("oblivfd_oram_accesses_total").Value(),
				PathReads:       reg.Counter("oblivfd_oram_path_reads_total").Value(),
				PathWrites:      reg.Counter("oblivfd_oram_path_writes_total").Value(),
				SortComparisons: reg.Counter("oblivfd_sort_comparisons_total").Value(),
				SortStages:      reg.Counter("oblivfd_sort_stages_total").Value(),
			}
			for _, p := range reg.Tracer().Phases() {
				pt.Phases = append(pt.Phases, TelemetryPhase{
					Name: p.Name, Count: p.Count, TotalNS: p.Total.Nanoseconds(),
				})
			}
			res.Points = append(res.Points, pt)
			s.close()
		}
	}
	return res, nil
}

// Render prints one row per (method, n) with the dominant phases.
func (r *TelemetryResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %10s %12s %12s  %s\n",
		"method", "n", "wall", "oram-acc", "sort-cmp", "top phases (share of wall)")
	for _, pt := range r.Points {
		wall := time.Duration(pt.WallNS)
		var tops []string
		for _, p := range pt.Phases {
			if !strings.HasPrefix(p.Name, "lattice/") {
				continue
			}
			share := 0.0
			if pt.WallNS > 0 {
				share = 100 * float64(p.TotalNS) / float64(pt.WallNS)
			}
			tops = append(tops, fmt.Sprintf("%s %.0f%%", strings.TrimPrefix(p.Name, "lattice/"), share))
		}
		fmt.Fprintf(&b, "%-8s %8d %10s %12d %12d  %s\n",
			pt.Method, pt.N, fmtDur(wall), pt.ORAMAccesses, pt.SortComparisons,
			strings.Join(tops, ", "))
	}
	return b.String()
}

// WriteFile writes the result as indented JSON (the BENCH_telemetry.json
// artifact).
func (r *TelemetryResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
