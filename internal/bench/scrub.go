package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Scrub experiment: what does background integrity scrubbing cost, and how
// fast does it heal? Two axes. The overhead axis times a full Sort discovery
// on a durable server with no scrubber against the same run with a scrubber
// sweeping continuously at the fdserver default rate (65536 units/s) — the
// steady-state tax of verifying every checksum in the background. The repair
// axis measures mean time to repair: a primary shipping to one in-process
// repair-capable replica runs a tight-interval scrubber while the bench
// repeatedly rots a seeded stored cell and polls until the checksum verifies
// again, timing injection-to-heal end to end (detection wait + fetch from
// replica + reinstall).

// ScrubResult is the experiment's typed output; fdbench writes it to
// BENCH_scrub.json.
type ScrubResult struct {
	N             int     `json:"n"`
	Seed          int64   `json:"seed"`
	Rate          int64   `json:"rate"`            // scrub rate during the overhead run (units/s)
	BaseWallNS    int64   `json:"base_wall_ns"`    // Sort discovery, no scrubber
	ScrubWallNS   int64   `json:"scrub_wall_ns"`   // same run, scrubber sweeping throughout
	OverheadPct   float64 `json:"overhead_pct"`    // (scrub-base)/base * 100
	Sweeps        int64   `json:"sweeps"`          // full sweeps completed during the scrubbed run
	CellsScrubbed int64   `json:"cells_scrubbed"`  // stored cells verified during the scrubbed run
	RepairSamples int     `json:"repair_samples"`  // rot injections in the MTTR axis
	MeanRepairNS  int64   `json:"mean_repair_ns"`  // mean injection-to-heal
	MaxRepairNS   int64   `json:"max_repair_ns"`   // worst injection-to-heal
	ScrubRepairs  int64   `json:"scrub_repairs"`   // repairs the scrubber performed in the MTTR axis
}

const (
	scrubAttrs       = 4
	scrubDefaultRate = 65536 // fdserver's -scrub-rate default
	scrubOverhead    = 3     // runs per overhead point; min is reported
)

var scrubDiscoverOpts = core.Options{Workers: 2, MaxLHS: 2}

// benchRepairConn extends the in-process replication conn with the repair
// verb, so the primary's RepairStored can fetch from the replica without a
// socket in the loop — the MTTR axis then measures detection and repair, not
// transport.
type benchRepairConn struct{ benchLoopConn }

func (c benchRepairConn) FetchRepair(fence int64, name string, isTree bool, idx []int64) ([][]byte, error) {
	return c.benchLoopConn.r.FetchRepair(fence, name, isTree, idx)
}

// scrubOverheadRun times one full Sort discovery on a fresh durable server,
// optionally with a scrubber sweeping continuously for the whole run. It
// returns the wall clock, the FD result, and the scrubber's sweep/cell
// counters for that run.
func scrubOverheadRun(rel *relation.Relation, scrub bool) (time.Duration, *core.Result, int64, int64, error) {
	dir, err := os.MkdirTemp("", "oblivfd-scrub-*")
	if err != nil {
		return 0, nil, 0, 0, err
	}
	defer os.RemoveAll(dir)
	d, err := store.OpenDir(dir, store.DurableOptions{})
	if err != nil {
		return 0, nil, 0, 0, err
	}
	defer d.Close()
	var sc *store.Scrubber
	if scrub {
		// A short interval keeps the scrubber busy for the whole discovery;
		// the default rate is what actually paces the work.
		sc = store.NewScrubber(d, nil, store.ScrubConfig{
			Interval: 20 * time.Millisecond,
			Rate:     scrubDefaultRate,
		})
		sc.Start()
		defer sc.Close()
	}
	s, err := newSetupOn(d, rel, MethodSort, 2, 0)
	if err != nil {
		return 0, nil, 0, 0, err
	}
	start := time.Now()
	got, err := core.Discover(s.eng, rel.NumAttrs(), &scrubDiscoverOpts)
	if err != nil {
		return 0, nil, 0, 0, err
	}
	wall := time.Since(start)
	var sweeps, cells int64
	if sc != nil {
		sc.Close()
		sweeps, cells = sc.Sweeps(), sc.CellsScrubbed()
		if sc.Corruptions() != 0 {
			return 0, nil, 0, 0, fmt.Errorf("bench: scrub overhead run found %d corruptions on a clean store", sc.Corruptions())
		}
	}
	return wall, got, sweeps, cells, nil
}

// scrubRepairAxis measures mean time to repair over `samples` seeded rot
// injections against a primary+replica pair with a tight-interval scrubber.
func scrubRepairAxis(samples int, seed int64, res *ScrubResult) error {
	dir, err := os.MkdirTemp("", "oblivfd-scrub-mttr-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	rdir := filepath.Join(dir, "replica")
	if err := os.Mkdir(rdir, 0o755); err != nil {
		return err
	}
	rd, err := store.OpenDir(rdir, store.DurableOptions{})
	if err != nil {
		return err
	}
	replica, err := store.Replicated(rd, store.ReplicationConfig{Primary: false})
	if err != nil {
		rd.Close()
		return err
	}
	defer replica.Close()
	pdir := filepath.Join(dir, "primary")
	if err := os.Mkdir(pdir, 0o755); err != nil {
		return err
	}
	pd, err := store.OpenDir(pdir, store.DurableOptions{})
	if err != nil {
		return err
	}
	primary, err := store.Replicated(pd, store.ReplicationConfig{
		Primary:     true,
		Peers:       []string{"replica"},
		RedialEvery: 1,
		Dial: func(string) (store.ReplicaConn, error) {
			return benchRepairConn{benchLoopConn{replica}}, nil
		},
	})
	if err != nil {
		pd.Close()
		return err
	}
	defer primary.Close()

	const cells = 256
	if err := primary.CreateArray("mttr", cells); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	idx := make([]int64, cells)
	cts := make([][]byte, cells)
	for i := range idx {
		idx[i] = int64(i)
		ct := make([]byte, 64)
		rng.Read(ct)
		cts[i] = ct
	}
	if err := primary.WriteCells("mttr", idx, cts); err != nil {
		return err
	}

	sc := store.NewScrubber(primary.Durable(), primary, store.ScrubConfig{
		Interval: 2 * time.Millisecond,
	})
	sc.Start()
	defer sc.Close()

	var total, worst time.Duration
	for k := 0; k < samples; k++ {
		cell := int64(rng.Intn(cells))
		if err := primary.Durable().CorruptStored("mttr", false, cell, uint(1+rng.Intn(7))); err != nil {
			return err
		}
		start := time.Now()
		for {
			// StoredVerified detects without repairing, so the heal observed
			// here is the scrubber's.
			if _, verr := primary.Durable().StoredVerified("mttr", false, []int64{cell}); verr == nil {
				break
			}
			if time.Since(start) > 10*time.Second {
				return fmt.Errorf("bench: scrub MTTR sample %d: cell %d never healed", k, cell)
			}
			time.Sleep(200 * time.Microsecond)
		}
		d := time.Since(start)
		total += d
		if d > worst {
			worst = d
		}
	}
	sc.Close()
	if sc.Repairs() < int64(samples) {
		return fmt.Errorf("bench: scrub MTTR: %d injections but only %d scrub repairs", samples, sc.Repairs())
	}
	res.RepairSamples = samples
	res.MeanRepairNS = (total / time.Duration(samples)).Nanoseconds()
	res.MaxRepairNS = worst.Nanoseconds()
	res.ScrubRepairs = sc.Repairs()
	return nil
}

// Scrub measures the steady-state scrubbing overhead and the mean time to
// repair an injected corruption.
func Scrub(n, repairSamples int, seed int64) (*ScrubResult, error) {
	rel := dataset.RND(scrubAttrs, n, seed)
	res := &ScrubResult{N: n, Seed: seed, Rate: scrubDefaultRate}

	// Overhead: min of a few runs each way smooths scheduler noise; the FD
	// sets must match — scrubbing changes timing, never results.
	var base, scrubbed time.Duration
	var want *core.Result
	for i := 0; i < scrubOverhead; i++ {
		wall, got, _, _, err := scrubOverheadRun(rel, false)
		if err != nil {
			return nil, fmt.Errorf("bench: scrub base run: %w", err)
		}
		if want == nil {
			want = got
		} else if !relation.FDSetEqual(got.Minimal, want.Minimal) {
			return nil, fmt.Errorf("bench: scrub base runs disagree on FDs")
		}
		if base == 0 || wall < base {
			base = wall
		}
		wall, got, sweeps, cells, err := scrubOverheadRun(rel, true)
		if err != nil {
			return nil, fmt.Errorf("bench: scrubbed run: %w", err)
		}
		if !relation.FDSetEqual(got.Minimal, want.Minimal) {
			return nil, fmt.Errorf("bench: scrubbing changed the FD set")
		}
		if scrubbed == 0 || wall < scrubbed {
			// Report the sweep counters from the run whose wall clock counts.
			scrubbed, res.Sweeps, res.CellsScrubbed = wall, sweeps, cells
		}
	}
	res.BaseWallNS = base.Nanoseconds()
	res.ScrubWallNS = scrubbed.Nanoseconds()
	res.OverheadPct = (float64(scrubbed) - float64(base)) / float64(base) * 100

	if err := scrubRepairAxis(repairSamples, seed+1, res); err != nil {
		return nil, err
	}
	return res, nil
}

// WriteFile writes the JSON artifact.
func (r *ScrubResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints both axes.
func (r *ScrubResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Background scrubbing (Sort full discovery, RND m=%d n=%d; rate %d units/s)\n", scrubAttrs, r.N, r.Rate)
	fmt.Fprintf(&b, "%16s %12s\n", "", "wall")
	fmt.Fprintf(&b, "%16s %12s\n", "no scrubber", fmtDur(time.Duration(r.BaseWallNS)))
	fmt.Fprintf(&b, "%16s %12s  (%+.1f%%; %d sweep(s), %d cells verified)\n",
		"scrubbing", fmtDur(time.Duration(r.ScrubWallNS)), r.OverheadPct, r.Sweeps, r.CellsScrubbed)
	fmt.Fprintf(&b, "time to repair an injected corruption (primary + 1 replica, %d samples): mean %s, max %s\n",
		r.RepairSamples, fmtDur(time.Duration(r.MeanRepairNS)), fmtDur(time.Duration(r.MaxRepairNS)))
	b.WriteString("identical FD sets with and without scrubbing: sweeps change timing, never results\n")
	return b.String()
}
