package bench

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// pairAttrs is the {0,1} determinant both runs must agree on.
func pairAttrs() relation.AttrSet { return relation.NewAttrSet(0, 1) }

// FaultPoint is one (n) fault-tolerance measurement: the same partition
// workload run clean and under injected transient faults with retries, plus
// the counters the retry stack surfaced.
type FaultPoint struct {
	N        int
	Clean    time.Duration
	Faulty   time.Duration
	Injected int64 // transient errors injected
	Spikes   int64 // latency spikes injected
	Retries  int64 // re-attempts the retry layer performed

	// Corruption axis (zero unless a corruption rate was requested): a
	// separate run under payload corruption must either abort with
	// ErrIntegrity or — if the schedule happened to inject nothing —
	// reproduce the clean result exactly.
	Corruptions int64 // payload corruptions injected
	Detected    int64 // corrupted runs aborted with ErrIntegrity
}

// Overhead is the faulty/clean wall-clock ratio.
func (p FaultPoint) Overhead() float64 {
	if p.Clean <= 0 {
		return 0
	}
	return float64(p.Faulty) / float64(p.Clean)
}

// FaultToleranceResult reports what riding out transient faults costs. The
// retry stack must turn an unreliable store into a reliable one (identical
// partition results); the wall-clock cost is dominated by backoff sleep,
// which scales with the fault rate — against a real network, where each op
// already costs an RTT, the relative overhead shrinks by orders of
// magnitude (compare fig6a's RTT model).
type FaultToleranceResult struct {
	ErrorRate   float64
	SpikeRate   float64
	CorruptRate float64
	Points      []FaultPoint
}

// FaultTolerance runs the Sort method's pair-partition workload on RND,
// once on a clean in-process server and once on the same server wrapped in
// seeded fault injection (errorRate transient errors, spikeRate latency
// spikes) and the default retry policy. The two runs must agree on the
// partition cardinality — retries change timing, never results.
//
// A non-zero corruptRate adds a third run per size under seeded payload
// corruption (per-read bit flips). Unlike transient faults, corruption is
// not ridden out: the retry layer classifies ErrIntegrity as fatal, so the
// run must abort at the first corrupted read it verifies. The table reports
// how many corruptions were injected and how many runs detected one —
// anything injected but not detected would be a silent-wrong-result hole,
// and is reported as an error, not a table row.
func FaultTolerance(sizes []int, errorRate, spikeRate, corruptRate float64, seed int64) (*FaultToleranceResult, error) {
	res := &FaultToleranceResult{ErrorRate: errorRate, SpikeRate: spikeRate, CorruptRate: corruptRate}
	for _, n := range sizes {
		rel := rndRelation(4, n, seed+int64(n))

		clean, err := newSetup(rel, MethodSort, 1, 0)
		if err != nil {
			return nil, err
		}
		cleanDur, err := clean.timePair(0, 1)
		if err != nil {
			clean.close()
			return nil, fmt.Errorf("bench: faults clean n=%d: %w", n, err)
		}
		wantCard, _ := clean.eng.Cardinality(pairAttrs())
		clean.close()

		faulty := store.WithFaults(store.NewServer(), store.FaultConfig{
			Seed:      seed + int64(n),
			ErrorRate: errorRate,
			SpikeRate: spikeRate,
			Spike:     100 * time.Microsecond,
		})
		// Backoff at in-process op scale: the defaults (5ms initial) are
		// tuned for real networks and would swamp the table with sleep.
		retried := store.WithRetry(faulty, store.RetryPolicy{
			Seed:           seed,
			InitialBackoff: 100 * time.Microsecond,
			MaxBackoff:     2 * time.Millisecond,
		})
		s, err := newSetupOn(retried, rel, MethodSort, 1, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: faults upload n=%d: %w", n, err)
		}
		faultyDur, err := s.timePair(0, 1)
		if err != nil {
			s.close()
			return nil, fmt.Errorf("bench: faults n=%d: %w", n, err)
		}
		gotCard, ok := s.eng.Cardinality(pairAttrs())
		s.close()
		if !ok || gotCard != wantCard {
			return nil, fmt.Errorf("bench: faults n=%d: cardinality %d under faults, want %d — retries must not change results", n, gotCard, wantCard)
		}

		pt := FaultPoint{
			N:        n,
			Clean:    cleanDur,
			Faulty:   faultyDur,
			Injected: faulty.Injected(),
			Spikes:   faulty.Spikes(),
			Retries:  retried.Retries(),
		}

		if corruptRate > 0 {
			corrupt := store.WithFaults(store.NewServer(), store.FaultConfig{
				Seed:        seed + int64(n),
				CorruptRate: corruptRate,
			})
			cretried := store.WithRetry(corrupt, store.RetryPolicy{
				Seed:           seed,
				InitialBackoff: 100 * time.Microsecond,
				MaxBackoff:     2 * time.Millisecond,
			})
			cs, err := newSetupOn(cretried, rel, MethodSort, 1, 0)
			if err == nil {
				_, err = cs.timePair(0, 1)
				if err == nil {
					gotCard, ok := cs.eng.Cardinality(pairAttrs())
					if !ok || gotCard != wantCard {
						cs.close()
						return nil, fmt.Errorf("bench: corrupt n=%d: cardinality %d, want %d — undetected corruption changed a result", n, gotCard, wantCard)
					}
				}
				cs.close()
			}
			pt.Corruptions = corrupt.Corruptions()
			switch {
			case err == nil && pt.Corruptions > 0:
				return nil, fmt.Errorf("bench: corrupt n=%d: %d corruptions injected yet the run completed — silent-wrong-result hole", n, pt.Corruptions)
			case err != nil && !errors.Is(err, store.ErrIntegrity):
				return nil, fmt.Errorf("bench: corrupt n=%d: aborted with %w, want ErrIntegrity", n, err)
			case err != nil:
				pt.Detected = 1
			}
		}

		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render prints the overhead table.
func (r *FaultToleranceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault tolerance overhead (Sort pair partition, RND; %.1f%% transient errors, %.1f%% latency spikes; backoff scaled to in-process op cost)\n",
		r.ErrorRate*100, r.SpikeRate*100)
	if r.CorruptRate > 0 {
		fmt.Fprintf(&b, "corruption axis: %.1f%% per-read payload corruption; detected=1 means the run aborted with ErrIntegrity\n", r.CorruptRate*100)
		fmt.Fprintf(&b, "%8s %12s %12s %9s %8s %8s %8s %10s %9s\n", "n", "clean", "faulty", "overhead", "faults", "spikes", "retries", "corrupted", "detected")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%8d %12s %12s %8.2fx %8d %8d %8d %10d %9d\n",
				p.N, fmtDur(p.Clean), fmtDur(p.Faulty), p.Overhead(), p.Injected, p.Spikes, p.Retries, p.Corruptions, p.Detected)
		}
	} else {
		fmt.Fprintf(&b, "%8s %12s %12s %9s %8s %8s %8s\n", "n", "clean", "faulty", "overhead", "faults", "spikes", "retries")
		for _, p := range r.Points {
			fmt.Fprintf(&b, "%8d %12s %12s %8.2fx %8d %8d %8d\n",
				p.N, fmtDur(p.Clean), fmtDur(p.Faulty), p.Overhead(), p.Injected, p.Spikes, p.Retries)
		}
	}
	b.WriteString("identical partition cardinalities in both runs: retries repeat work, never change results\n")
	return b.String()
}
