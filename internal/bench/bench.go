// Package bench implements the paper's evaluation (§VII): one experiment
// per table and figure, shared by the fdbench command and the repository's
// testing.B benchmarks. Each experiment returns a typed result with a
// Render method that prints the same rows/series the paper reports.
//
// Absolute numbers differ from the paper (Go in-process vs Python over a
// 1 Gbps LAN); the shapes — who wins, by roughly what factor, where the
// crossovers fall — are the reproduction target (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Method identifies an attribute-level method under test, named as in the
// paper's evaluation.
type Method string

// The evaluated methods (§VII).
const (
	MethodOrORAM Method = "Or-ORAM" // original ORAM-based (§IV-C)
	MethodExORAM Method = "Ex-ORAM" // extended ORAM-based (§V)
	MethodSort   Method = "Sort"    // oblivious sorting (§IV-D)
)

// AllMethods lists the methods in the paper's order.
var AllMethods = []Method{MethodOrORAM, MethodExORAM, MethodSort}

// setup bundles one freshly outsourced database and its engine.
type setup struct {
	srv *store.Server // nil when the service is remote (TCP)
	svc store.Service
	eng core.Engine
}

// newSetup uploads rel to a fresh in-process server and builds the engine
// for a method. Workers applies to Sort only.
func newSetup(rel *relation.Relation, method Method, workers, headroom int) (*setup, error) {
	srv := store.NewServer()
	s, err := newSetupOn(srv, rel, method, workers, headroom)
	if err != nil {
		return nil, err
	}
	s.srv = srv
	return s, nil
}

// newSetupOn uploads rel over an arbitrary service (e.g. a TCP pool).
func newSetupOn(svc store.Service, rel *relation.Relation, method Method, workers, headroom int) (*setup, error) {
	cipher, err := crypto.NewCipher(crypto.MustNewKey())
	if err != nil {
		return nil, err
	}
	edb, err := core.UploadWithCapacity(svc, cipher, fmt.Sprintf("bench%d", setupSeq.Add(1)), rel, rel.NumRows()+headroom)
	if err != nil {
		return nil, err
	}
	var eng core.Engine
	switch method {
	case MethodOrORAM:
		eng = core.NewOrEngine(edb)
	case MethodExORAM:
		eng, err = core.NewExEngine(edb)
		if err != nil {
			return nil, err
		}
	case MethodSort:
		eng = core.NewSortEngine(edb, workers)
	default:
		return nil, fmt.Errorf("bench: unknown method %q", method)
	}
	return &setup{svc: svc, eng: eng}, nil
}

// timeSingle measures one CardinalitySingle materialization.
func (s *setup) timeSingle(attr int) (time.Duration, error) {
	start := time.Now()
	if _, err := s.eng.CardinalitySingle(attr); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// timePair materializes two singles (untimed) and measures the pair union —
// the paper's |X| ≥ 2 case, whose cost is independent of |X| by attribute
// compression.
func (s *setup) timePair(a, b int) (time.Duration, error) {
	if _, err := s.eng.CardinalitySingle(a); err != nil {
		return 0, err
	}
	if _, err := s.eng.CardinalitySingle(b); err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := s.eng.CardinalityUnion(relation.SingleAttr(a), relation.SingleAttr(b)); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// serverBytes returns the current server storage footprint.
func (s *setup) serverBytes() int64 {
	st, err := s.svc.Stats()
	if err != nil {
		return 0
	}
	return st.StoredBytes
}

// setupSeq uniquifies database names across setups sharing one server.
var setupSeq atomic.Int64

// rndRelation builds the standard RND workload (wrapper for experiments in
// other files of this package).
func rndRelation(m, n int, seed int64) *relation.Relation {
	return dataset.RND(m, n, seed)
}

func (s *setup) close() { _ = s.eng.Close() }

// fmtBytes renders a byte count in the paper's MB/KB style.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// fmtDur renders a duration compactly with ms precision below 10 s.
func fmtDur(d time.Duration) string {
	if d < 10*time.Second {
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
	return fmt.Sprintf("%.2fs", d.Seconds())
}
