package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
)

// The tracing-overhead axis of the telemetry experiment: full discovery per
// method over loopback TCP with span tracers off and then on at both ends
// (SampleEvery: 1, i.e. every root sampled — the worst case), reporting the
// wall-time overhead the tracing subsystem adds. Loopback TCP matters: the
// lattice itself emits only a handful of spans, but every storage RPC grows
// a client rpc/ span and a server dispatch span, so this path exercises the
// instrumentation at its real density (hundreds of spans per run). The
// subsystem is designed to be cheap enough to leave on in production —
// fixed-size ring, constant-size wire header that is sent whether or not
// tracing is on — and this experiment pins that claim to a number. fdbench
// writes the result to BENCH_tracing.json; the committed baseline documents
// the overhead stays under 5%.

// TracingPoint is one (method, n) cell of the overhead comparison. Wall
// times are the minimum over Runs interleaved off/on pairs, which rejects
// scheduler noise better than means on shared CI machines.
type TracingPoint struct {
	Method      string  `json:"method"`
	N           int     `json:"n"`
	Runs        int     `json:"runs"`
	WallOffNS   int64   `json:"wall_off_ns"`
	WallOnNS    int64   `json:"wall_on_ns"`
	OverheadPct float64 `json:"overhead_pct"`
	Spans       int64   `json:"spans_recorded"`
}

// TracingResult is the full tracing-overhead outcome. The aggregate
// overhead (total on-wall vs total off-wall across every cell) is the
// headline number: per-cell percentages at quick sizes sit inside
// scheduler jitter, while the aggregate averages it out.
type TracingResult struct {
	M           int            `json:"m"`
	Seed        int64          `json:"seed"`
	SampleEvery int            `json:"sample_every"`
	TotalOffNS  int64          `json:"total_wall_off_ns"`
	TotalOnNS   int64          `json:"total_wall_on_ns"`
	OverheadPct float64        `json:"overhead_pct"`
	Points      []TracingPoint `json:"points"`
}

// tracingRuns is the number of off/on pairs per cell; the minimum of each
// side is reported. Minimum, not mean: both sides bottom out at the same
// quiet-machine floor, so the min-to-min comparison isolates the tracing
// cost from scheduler and GC jitter far better than averages do.
const tracingRuns = 5

// TracingOverhead runs full FD discovery for every method at each size,
// once with no tracer and once with an always-sampling tracer, and reports
// the relative wall-time cost of tracing.
func TracingOverhead(sizes []int, seed int64) (*TracingResult, error) {
	const m = 4
	res := &TracingResult{M: m, Seed: seed, SampleEvery: 1}
	for _, n := range sizes {
		rel := rndRelation(m, n, seed)
		for _, method := range AllMethods {
			pt := TracingPoint{Method: string(method), N: n, Runs: tracingRuns}
			// Long-lived tracers per cell, as real processes have: their
			// rings are preallocated once, outside every timed region, so
			// the comparison measures the per-span cost and not the
			// allocation of the rings themselves.
			newTracer := func(service string) *otrace.Tracer {
				return otrace.New(otrace.Config{
					Service:     service,
					Capacity:    1 << 14,
					SampleEvery: 1,
				})
			}
			clientTr, serverTr := newTracer("fdbench"), newTracer("fdserver")
			// One untimed warmup settles lazily-initialized state (gob type
			// registries, listener machinery) before either side is timed.
			if _, err := tracingRun(rel, method, m, nil, nil); err != nil {
				return nil, fmt.Errorf("bench: tracing %s n=%d (warmup): %w", method, n, err)
			}
			// Interleave the off and on runs so slow drift (page cache
			// warming, thermal throttling) hits both sides equally.
			for i := 0; i < tracingRuns; i++ {
				off, err := tracingRun(rel, method, m, nil, nil)
				if err != nil {
					return nil, fmt.Errorf("bench: tracing %s n=%d (off): %w", method, n, err)
				}
				before := int64(clientTr.Recorded() + serverTr.Recorded())
				on, err := tracingRun(rel, method, m, clientTr, serverTr)
				if err != nil {
					return nil, fmt.Errorf("bench: tracing %s n=%d (on): %w", method, n, err)
				}
				if i == 0 || off < pt.WallOffNS {
					pt.WallOffNS = off
				}
				if i == 0 || on < pt.WallOnNS {
					pt.WallOnNS = on
					pt.Spans = int64(clientTr.Recorded()+serverTr.Recorded()) - before
				}
			}
			if pt.WallOffNS > 0 {
				pt.OverheadPct = 100 * float64(pt.WallOnNS-pt.WallOffNS) / float64(pt.WallOffNS)
			}
			res.TotalOffNS += pt.WallOffNS
			res.TotalOnNS += pt.WallOnNS
			res.Points = append(res.Points, pt)
		}
	}
	if res.TotalOffNS > 0 {
		res.OverheadPct = 100 * float64(res.TotalOnNS-res.TotalOffNS) / float64(res.TotalOffNS)
	}
	return res, nil
}

// tracingRun is one full discovery over a loopback TCP server with the
// given tracers (nil = tracing off at that end), returning the wall time of
// the Discover call. The server boots and the relation uploads outside the
// timed region; a forced GC before it puts both sides at the same collector
// state so neither inherits the other's allocation debt.
func tracingRun(rel *relation.Relation, method Method, m int, clientTr, serverTr *otrace.Tracer) (int64, error) {
	srv := transport.NewServer(store.NewServer())
	if serverTr != nil {
		srv.SetTracer(serverTr)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	go func() { _ = srv.Serve(l) }()
	cli, err := transport.DialWith(l.Addr().String(), transport.ClientConfig{Trace: clientTr})
	if err != nil {
		return 0, err
	}
	defer cli.Close()
	s, err := newSetupOn(cli, rel, method, 1, 0)
	if err != nil {
		return 0, err
	}
	defer s.close()
	runtime.GC()
	start := time.Now()
	if _, err := core.Discover(s.eng, m, &core.Options{Trace: clientTr}); err != nil {
		return 0, err
	}
	return time.Since(start).Nanoseconds(), nil
}

// Render prints one row per (method, n) with the off/on walls and overhead.
func (r *TracingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %10s %10s\n",
		"method", "n", "wall-off", "wall-on", "overhead", "spans")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-8s %8d %12s %12s %9.2f%% %10d\n",
			pt.Method, pt.N,
			fmtDur(time.Duration(pt.WallOffNS)), fmtDur(time.Duration(pt.WallOnNS)),
			pt.OverheadPct, pt.Spans)
	}
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %9.2f%%\n",
		"overall", "", fmtDur(time.Duration(r.TotalOffNS)), fmtDur(time.Duration(r.TotalOnNS)),
		r.OverheadPct)
	return b.String()
}

// WriteFile writes the result as indented JSON (the BENCH_tracing.json
// artifact).
func (r *TracingResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
