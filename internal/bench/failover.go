package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/transport"
)

// Failover experiment: what does surviving a server loss cost? Two
// quantities bound the answer. The steady-state price is the discovery
// slowdown versus replica count — every mutation is synchronously shipped to
// each replica, so the sweep shows how the wall clock grows from 0 (plain
// durable server) to 2 replicas. The failure-time price is the recovery
// pause: with a 3-node cluster serving a discovery over the failover client,
// the primary is killed at a seeded WAL offset mid-run, and the experiment
// reports the end-to-end wall clock of the interrupted run next to the clean
// one, plus the isolated probe-promote-reconnect time a failover costs.

// FailoverPoint is one replica-count measurement.
type FailoverPoint struct {
	Replicas int     `json:"replicas"`
	WallNS   int64   `json:"wall_ns"`
	Slowdown float64 `json:"slowdown"` // vs replicas=0
}

// FailoverResult is the experiment's typed output; fdbench writes it to
// BENCH_failover.json.
type FailoverResult struct {
	N           int             `json:"n"`
	Seed        int64           `json:"seed"`
	Points      []FailoverPoint `json:"points"`
	CleanWallNS int64           `json:"clean_wall_ns"` // 3-node TCP cluster, no kill
	KillWallNS  int64           `json:"kill_wall_ns"`  // same run, primary killed mid-discovery
	RecoveryNS  int64           `json:"recovery_ns"`   // probe + promote + reconnect, isolated
	Failovers   int64           `json:"failovers"`     // failovers during the killed run
}

// benchLoopConn ships directly into an in-process replica, isolating the
// replication work itself from transport cost in the slowdown sweep.
type benchLoopConn struct{ r *store.ReplicatedServer }

func (c benchLoopConn) Replicate(fence, seq int64, frames [][]byte) error {
	_, err := c.r.ApplyReplicated(fence, seq, frames)
	return err
}
func (c benchLoopConn) SyncSnapshot(fence, seq int64, snap []byte) error {
	return c.r.ApplySync(fence, seq, snap)
}
func (c benchLoopConn) Close() error { return nil }

const failoverAttrs = 4

var failoverDiscoverOpts = core.Options{Workers: 2, MaxLHS: 2}

// failoverSweepPoint times one full Sort discovery on a durable primary
// shipping to `replicas` in-process replicas.
func failoverSweepPoint(root *string, rel *relation.Relation, replicas int) (time.Duration, *core.Result, error) {
	dir, err := os.MkdirTemp("", "oblivfd-failover-*")
	if err != nil {
		return 0, nil, err
	}
	*root = dir
	reps := make(map[string]*store.ReplicatedServer, replicas)
	var peers []string
	for i := 0; i < replicas; i++ {
		rdir := filepath.Join(dir, fmt.Sprintf("replica%d", i))
		if err := os.Mkdir(rdir, 0o755); err != nil {
			return 0, nil, err
		}
		d, err := store.OpenDir(rdir, store.DurableOptions{})
		if err != nil {
			return 0, nil, err
		}
		rep, err := store.Replicated(d, store.ReplicationConfig{Primary: false})
		if err != nil {
			d.Close()
			return 0, nil, err
		}
		defer rep.Close()
		name := fmt.Sprintf("replica%d", i)
		reps[name] = rep
		peers = append(peers, name)
	}
	pdir := filepath.Join(dir, "primary")
	if err := os.Mkdir(pdir, 0o755); err != nil {
		return 0, nil, err
	}
	d, err := store.OpenDir(pdir, store.DurableOptions{})
	if err != nil {
		return 0, nil, err
	}
	primary, err := store.Replicated(d, store.ReplicationConfig{
		Primary:     true,
		Peers:       peers,
		RedialEvery: 1,
		Dial: func(addr string) (store.ReplicaConn, error) {
			return benchLoopConn{reps[addr]}, nil
		},
	})
	if err != nil {
		d.Close()
		return 0, nil, err
	}
	defer primary.Close()

	s, err := newSetupOn(primary, rel, MethodSort, 2, 0)
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	res, err := core.Discover(s.eng, rel.NumAttrs(), &failoverDiscoverOpts)
	if err != nil {
		return 0, nil, err
	}
	wall := time.Since(start)
	if lag := primary.ReplicaLag(); lag != 0 {
		return 0, nil, fmt.Errorf("bench: failover sweep ends with replication lag %d", lag)
	}
	return wall, res, nil
}

// failoverCluster boots a 3-node TCP cluster (node 0 primary, kill-armed
// when kills > 0) and returns the addresses, the primary's replicated store,
// and a shutdown func.
func failoverCluster(root string, kills int64) ([]string, *store.ReplicatedServer, func(), error) {
	const n = 3
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, nil, err
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	dial := func(addr string) (store.ReplicaConn, error) {
		return transport.DialWith(addr, transport.ClientConfig{DialTimeout: time.Second, Redials: -1})
	}
	var closers []func()
	shutdown := func() {
		for _, c := range closers {
			c()
		}
	}
	var primary *store.ReplicatedServer
	for i := 0; i < n; i++ {
		dir := filepath.Join(root, fmt.Sprintf("node%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			shutdown()
			return nil, nil, nil, err
		}
		opts := store.DurableOptions{}
		if i == 0 {
			opts.KillAfterAppends = kills
		}
		d, err := store.OpenDir(dir, opts)
		if err != nil {
			shutdown()
			return nil, nil, nil, err
		}
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		rep, err := store.Replicated(d, store.ReplicationConfig{
			Primary: i == 0, Peers: peers, RedialEvery: 1, Dial: dial,
		})
		if err != nil {
			d.Close()
			shutdown()
			return nil, nil, nil, err
		}
		ts := transport.NewServer(rep)
		ts.SetReplicator(rep)
		go func(l net.Listener) { _ = ts.Serve(l) }(listeners[i])
		closers = append(closers, func() { ts.Shutdown(0); rep.Close() })
		if i == 0 {
			primary = rep
		}
	}
	return addrs, primary, shutdown, nil
}

// failoverClientRun discovers over the cluster through the failover client
// and retry stack; it returns the wall clock, the failover count, and the
// primary's WAL appends after the run (the kill-point coordinate system).
func failoverClientRun(addrs []string, rel *relation.Relation) (time.Duration, int64, *core.Result, error) {
	cfg := transport.DefaultClientConfig()
	cfg.DialTimeout = time.Second
	cfg.Redials = 1
	f, err := transport.DialFailover(addrs, 2, cfg)
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	svc := store.WithRetry(f, store.RetryPolicy{
		MaxAttempts:    6,
		InitialBackoff: time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
	})
	s, err := newSetupOn(svc, rel, MethodSort, 2, 0)
	if err != nil {
		return 0, 0, nil, err
	}
	start := time.Now()
	res, err := core.Discover(s.eng, rel.NumAttrs(), &failoverDiscoverOpts)
	if err != nil {
		return 0, 0, nil, err
	}
	return time.Since(start), f.Failovers(), res, nil
}

// Failover measures the replication slowdown and failover recovery cost.
func Failover(n int, replicaCounts []int, seed int64) (*FailoverResult, error) {
	rel := dataset.RND(failoverAttrs, n, seed)
	res := &FailoverResult{N: n, Seed: seed}

	// Steady-state: discovery wall clock vs replica count.
	var base time.Duration
	var want *core.Result
	for _, k := range replicaCounts {
		var root string
		wall, got, err := failoverSweepPoint(&root, rel, k)
		if root != "" {
			defer os.RemoveAll(root)
		}
		if err != nil {
			return nil, fmt.Errorf("bench: failover replicas=%d: %w", k, err)
		}
		if want == nil {
			base, want = wall, got
		} else if !relation.FDSetEqual(got.Minimal, want.Minimal) {
			return nil, fmt.Errorf("bench: failover replicas=%d: FDs diverge — replication must not change results", k)
		}
		p := FailoverPoint{Replicas: k, WallNS: wall.Nanoseconds()}
		if base > 0 {
			p.Slowdown = float64(wall) / float64(base)
		}
		res.Points = append(res.Points, p)
	}

	// Failure-time: clean 3-node run, then the same run with the primary
	// killed halfway through discovery.
	root, err := os.MkdirTemp("", "oblivfd-failover-tcp-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	addrs, primary, shutdown, err := failoverCluster(filepath.Join(root, "clean"), 0)
	if err != nil {
		return nil, err
	}
	cleanWall, _, got, err := failoverClientRun(addrs, rel)
	appends := primary.Durable().WALAppends()
	shutdown()
	if err != nil {
		return nil, fmt.Errorf("bench: failover clean cluster run: %w", err)
	}
	if !relation.FDSetEqual(got.Minimal, want.Minimal) {
		return nil, fmt.Errorf("bench: failover clean cluster run: FDs diverge")
	}
	res.CleanWallNS = cleanWall.Nanoseconds()

	addrs, _, shutdown, err = failoverCluster(filepath.Join(root, "killed"), appends/2)
	if err != nil {
		return nil, err
	}
	killWall, failovers, got, err := failoverClientRun(addrs, rel)
	shutdown()
	if err != nil {
		return nil, fmt.Errorf("bench: failover killed cluster run: %w", err)
	}
	if failovers < 1 {
		return nil, fmt.Errorf("bench: failover kill point at %d appends never fired", appends/2)
	}
	if !relation.FDSetEqual(got.Minimal, want.Minimal) {
		return nil, fmt.Errorf("bench: failover killed run: FDs diverge — failover must not change results")
	}
	res.KillWallNS = killWall.Nanoseconds()
	res.Failovers = failovers

	// Isolated recovery time: with the primary already dead, how long does a
	// client take to probe the cluster, promote the freshest replica, and
	// open a working pool? The warm client writes through a plain pool (no
	// failover) until the primary's armed kill point fires, so nothing has
	// been promoted when the clock starts.
	addrs, _, shutdown, err = failoverCluster(filepath.Join(root, "recovery"), 8)
	if err != nil {
		return nil, err
	}
	defer shutdown()
	cfg := transport.DefaultClientConfig()
	cfg.DialTimeout = time.Second
	cfg.Redials = 1
	warm, err := transport.DialPoolWith(addrs[0], 1, cfg)
	if err != nil {
		return nil, err
	}
	_ = warm.CreateArray("seed", 8)
	var warmErr error
	for i := 0; i < 16 && warmErr == nil; i++ {
		warmErr = warm.WriteCells("seed", []int64{0}, [][]byte{{byte(i)}})
	}
	warm.Close()
	if warmErr == nil {
		return nil, fmt.Errorf("bench: failover recovery kill point never fired")
	}
	start := time.Now()
	f, err := transport.DialFailover(addrs, 2, cfg)
	if err != nil {
		return nil, fmt.Errorf("bench: failover recovery dial: %w", err)
	}
	res.RecoveryNS = time.Since(start).Nanoseconds()
	if _, fence := f.Primary(); fence < 2 {
		f.Close()
		return nil, fmt.Errorf("bench: failover recovery dial did not promote (fence %d)", fence)
	}
	f.Close()
	return res, nil
}

// WriteFile writes the JSON artifact.
func (r *FailoverResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the replica sweep and the recovery numbers.
func (r *FailoverResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Replicated storage (Sort full discovery, RND m=%d n=%d; synchronous WAL shipping)\n", failoverAttrs, r.N)
	fmt.Fprintf(&b, "%10s %12s %10s\n", "replicas", "wall", "slowdown")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10d %12s %9.2fx\n", p.Replicas, fmtDur(time.Duration(p.WallNS)), p.Slowdown)
	}
	fmt.Fprintf(&b, "3-node cluster over TCP: clean %s, primary killed mid-run %s (%d failover(s)); probe+promote+reconnect %s\n",
		fmtDur(time.Duration(r.CleanWallNS)), fmtDur(time.Duration(r.KillWallNS)),
		r.Failovers, fmtDur(time.Duration(r.RecoveryNS)))
	b.WriteString("identical FD sets in every run: replication and failover change timing, never results\n")
	return b.String()
}
