package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/oblivfd/oblivfd/internal/core"
	"github.com/oblivfd/oblivfd/internal/dataset"
	"github.com/oblivfd/oblivfd/internal/obsort"
	"github.com/oblivfd/oblivfd/internal/store"
)

// The scaling experiment is the repository's first recorded performance
// baseline for level-parallel discovery (DESIGN.md §11): it sweeps the
// lattice-level worker pool for every secure engine under modeled network
// latency, and separately counts transport round trips with cell batching
// on and off. fdbench writes the result to BENCH_scaling.json so later
// changes can be compared against a committed artifact.
//
// Two mechanisms are measured:
//
//   - Worker scaling: full discovery wall time at each worker count, over a
//     store.WithLatency service. On a single-core host the speedup comes
//     entirely from overlapping round trips of independent partition
//     materializations — the same mechanism as the paper's multi-threaded
//     client (§VII, Fig. 6a), but across lattice candidates instead of
//     inside one sort.
//   - Cell batching: logical storage rounds (store.RoundCounter) for one
//     full Sort discovery with obsort.ChunkCells at its production value
//     versus 1 (every cell its own message). Rounds are scheduling- and
//     latency-independent, so they are counted without sleeping and priced
//     afterwards at the modeled RTT.

// scalingBatchRTT prices the rounds comparison: at 10ms per round trip the
// modeled wall-clock gap between batched and unbatched transport is the
// headline number.
const scalingBatchRTT = 10 * time.Millisecond

// ScalingPoint is one (method, workers) full-discovery measurement.
type ScalingPoint struct {
	Method  string  `json:"method"`
	Workers int     `json:"workers"`
	WallNS  int64   `json:"wall_ns"`
	Speedup float64 `json:"speedup"` // vs the same method at workers=1
}

// ScalingRoundsPoint is one cell-batching configuration's transport cost
// for a full Sort discovery.
type ScalingRoundsPoint struct {
	ChunkCells int   `json:"chunk_cells"`
	Rounds     int64 `json:"rounds"`
	ModeledNS  int64 `json:"modeled_ns"` // Rounds × scalingBatchRTT
}

// ScalingResult is the full experiment outcome.
type ScalingResult struct {
	N            int                  `json:"n"`
	M            int                  `json:"m"`
	Seed         int64                `json:"seed"`
	RTTNS        int64                `json:"rtt_ns"`
	BatchRTTNS   int64                `json:"batch_rtt_ns"`
	Points       []ScalingPoint       `json:"points"`
	Rounds       []ScalingRoundsPoint `json:"rounds"`
	RoundsFactor float64              `json:"rounds_factor"` // unbatched ÷ batched
}

// Scaling runs full FD discovery on RND(m, n) for every method at each
// worker count with rtt of modeled latency per storage round, then counts
// transport rounds for Sort with batching on and off.
func Scaling(n, m int, workersList []int, rtt time.Duration, seed int64) (*ScalingResult, error) {
	rel := dataset.RND(m, n, seed)
	res := &ScalingResult{N: n, M: m, Seed: seed, RTTNS: rtt.Nanoseconds(), BatchRTTNS: scalingBatchRTT.Nanoseconds()}

	for _, method := range AllMethods {
		base := time.Duration(0)
		for _, w := range workersList {
			svc := store.WithLatency(store.Service(store.NewServer()), rtt)
			// Inner sorting-network workers stay at 1: the axis under test
			// is the lattice-level pool (fig6a covers intra-sort workers).
			s, err := newSetupOn(svc, rel, method, 1, 0)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			_, err = core.Discover(s.eng, m, &core.Options{Workers: w})
			wall := time.Since(start)
			s.close()
			if err != nil {
				return nil, fmt.Errorf("bench: scaling %s workers=%d: %w", method, w, err)
			}
			if base == 0 {
				base = wall
			}
			res.Points = append(res.Points, ScalingPoint{
				Method:  string(method),
				Workers: w,
				WallNS:  wall.Nanoseconds(),
				Speedup: float64(base) / float64(wall),
			})
		}
	}

	// Rounds with batching off (every cell its own round) vs on. Restore
	// the production value before returning — ChunkCells is package state.
	defer func(cc int) { obsort.ChunkCells = cc }(obsort.ChunkCells)
	for _, cc := range []int{1, obsort.ChunkCells} {
		obsort.ChunkCells = cc
		rc := store.WithRoundCounter(store.NewServer())
		s, err := newSetupOn(rc, rel, MethodSort, 1, 0)
		if err != nil {
			return nil, err
		}
		setupRounds := rc.Rounds() // exclude upload cost from the comparison
		if _, err := core.Discover(s.eng, m, &core.Options{Workers: 1}); err != nil {
			s.close()
			return nil, fmt.Errorf("bench: scaling rounds chunk=%d: %w", cc, err)
		}
		rounds := rc.Rounds() - setupRounds
		s.close()
		res.Rounds = append(res.Rounds, ScalingRoundsPoint{
			ChunkCells: cc,
			Rounds:     rounds,
			ModeledNS:  rounds * scalingBatchRTT.Nanoseconds(),
		})
	}
	if len(res.Rounds) == 2 && res.Rounds[1].Rounds > 0 {
		res.RoundsFactor = float64(res.Rounds[0].Rounds) / float64(res.Rounds[1].Rounds)
	}
	return res, nil
}

// Render prints the worker sweep per method and the batching comparison.
func (r *ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling: full discovery, RND m=%d n=%d, rtt=%s per storage round\n",
		r.M, r.N, time.Duration(r.RTTNS))
	fmt.Fprintf(&b, "%-8s %8s %12s %10s\n", "method", "workers", "wall", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8s %8d %12s %9.2fx\n",
			p.Method, p.Workers, fmtDur(time.Duration(p.WallNS)), p.Speedup)
	}
	fmt.Fprintf(&b, "Transport rounds, Sort discovery (modeled at %s/round):\n", time.Duration(r.BatchRTTNS))
	fmt.Fprintf(&b, "%12s %10s %14s\n", "chunk-cells", "rounds", "modeled")
	for _, p := range r.Rounds {
		fmt.Fprintf(&b, "%12d %10d %14s\n", p.ChunkCells, p.Rounds, fmtDur(time.Duration(p.ModeledNS)))
	}
	if r.RoundsFactor > 0 {
		fmt.Fprintf(&b, "Batching sends %.1fx fewer rounds.\n", r.RoundsFactor)
	}
	b.WriteString("Expected shape: Sort speedup ≥2x by 8 workers (round-trip overlap), batching ≥2x fewer rounds.\n")
	return b.String()
}

// WriteFile writes the JSON artifact (BENCH_scaling.json).
func (r *ScalingResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
