package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// NewMux returns the operator HTTP mux: Prometheus text on /metrics, the
// JSON snapshot on /metrics.json, and the standard runtime profiles under
// /debug/pprof/. fdserver mounts this on -metrics-addr.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	// net/http/pprof registers on DefaultServeMux via init; mount its
	// handlers explicitly so the metrics mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
