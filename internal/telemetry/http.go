package telemetry

import (
	"net/http"
	"net/http/pprof"
	"runtime"
)

// CollectRuntime samples Go runtime health into gauges: live goroutines,
// heap bytes and objects, cumulative GC pause nanoseconds, and completed GC
// cycles. The metrics handlers call it per scrape so the values are fresh
// without a background poller.
func (r *Registry) CollectRuntime() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go_goroutines").Set(int64(runtime.NumGoroutine()))
	r.Gauge("go_heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	r.Gauge("go_heap_objects").Set(int64(ms.HeapObjects))
	r.Gauge("go_gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	r.Gauge("go_gc_cycles").Set(int64(ms.NumGC))
}

// NewMux returns the operator HTTP mux: Prometheus text on /metrics, the
// JSON snapshot on /metrics.json, and the standard runtime profiles under
// /debug/pprof/. fdserver mounts this on -metrics-addr.
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		r.CollectRuntime()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		r.CollectRuntime()
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	// net/http/pprof registers on DefaultServeMux via init; mount its
	// handlers explicitly so the metrics mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
