package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// famEntry is one series gathered for exposition.
type famEntry struct {
	labels string
	metric any
}

// families groups every registered metric by base name, each family's
// series sorted by label string, family names sorted. The Prometheus text
// format requires all series of one family to be consecutive under a
// single # TYPE line.
func (r *Registry) families() (names []string, byName map[string][]famEntry) {
	byName = make(map[string][]famEntry)
	r.visit(func(_ string, m any) {
		var s series
		switch v := m.(type) {
		case *Counter:
			s = v.series
		case *Gauge:
			s = v.series
		case *Histogram:
			s = v.series
		default:
			return
		}
		if s.name == "" {
			return // standalone metric that leaked into a registry; skip
		}
		if _, ok := byName[s.name]; !ok {
			names = append(names, s.name)
		}
		byName[s.name] = append(byName[s.name], famEntry{labels: s.labels, metric: m})
	})
	sort.Strings(names)
	for _, n := range names {
		es := byName[n]
		sort.Slice(es, func(i, j int) bool { return es[i].labels < es[j].labels })
	}
	return names, byName
}

func fmtFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// writeSeries writes one `name{labels} value` sample line, merging extra
// label pairs (already rendered) with the series labels.
func writeSeries(w io.Writer, name, labels, extra, value string) {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", name, all, value)
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Histograms emit the conventional
// _bucket{le=...}/_sum/_count triple; tracer phases are exported as the
// oblivfd_phase_seconds_total / oblivfd_phase_spans_total counter pair.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	names, byName := r.families()
	for _, name := range names {
		entries := byName[name]
		switch entries[0].metric.(type) {
		case *Counter:
			fmt.Fprintf(w, "# TYPE %s counter\n", name)
		case *Gauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		case *Histogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		}
		for _, e := range entries {
			switch m := e.metric.(type) {
			case *Counter:
				writeSeries(w, name, e.labels, "", strconv.FormatInt(m.Value(), 10))
			case *Gauge:
				writeSeries(w, name, e.labels, "", strconv.FormatInt(m.Value(), 10))
			case *Histogram:
				s := m.Snapshot()
				for _, b := range s.Buckets {
					writeSeries(w, name+"_bucket", e.labels,
						`le="`+fmtFloat(b.UpperBound)+`"`,
						strconv.FormatInt(b.Count, 10))
				}
				if len(s.Buckets) == 0 {
					// Empty histogram: still expose the shape.
					for _, ub := range append(append([]float64(nil), m.bounds...), math.Inf(1)) {
						writeSeries(w, name+"_bucket", e.labels, `le="`+fmtFloat(ub)+`"`, "0")
					}
				}
				writeSeries(w, name+"_sum", e.labels, "", fmtFloat(s.Sum.Seconds()))
				writeSeries(w, name+"_count", e.labels, "", strconv.FormatInt(s.Count, 10))
			}
		}
	}
	phases := r.Tracer().Phases()
	if len(phases) == 0 {
		return
	}
	sorted := append([]Phase(nil), phases...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	fmt.Fprintf(w, "# TYPE oblivfd_phase_seconds_total counter\n")
	for _, p := range sorted {
		writeSeries(w, "oblivfd_phase_seconds_total", `phase="`+escapeLabel(p.Name)+`"`, "",
			fmtFloat(p.Total.Seconds()))
	}
	fmt.Fprintf(w, "# TYPE oblivfd_phase_spans_total counter\n")
	for _, p := range sorted {
		writeSeries(w, "oblivfd_phase_spans_total", `phase="`+escapeLabel(p.Name)+`"`, "",
			strconv.FormatInt(p.Count, 10))
	}
}

// jsonSnapshot is the /metrics.json document shape.
type jsonSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Phases     []Phase                      `json:"phases,omitempty"`
}

// snapshotJSON builds the JSON view of the registry. Histogram bucket
// lists are included; keys are the full series key (name{labels}).
func (r *Registry) snapshotJSON() jsonSnapshot {
	doc := jsonSnapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.visit(func(key string, m any) {
		switch v := m.(type) {
		case *Counter:
			doc.Counters[key] = v.Value()
		case *Gauge:
			doc.Gauges[key] = v.Value()
		case *Histogram:
			doc.Histograms[key] = v.Snapshot()
		}
	})
	doc.Phases = r.Tracer().Phases()
	return doc
}

// WriteJSON renders the registry as an indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshotJSON())
}

// MarshalBreakdownJSON returns the per-phase breakdown plus key counters
// as JSON, the artifact fdbench writes next to its bench output.
func (r *Registry) MarshalBreakdownJSON(wall time.Duration) ([]byte, error) {
	if r == nil {
		return []byte("{}\n"), nil
	}
	doc := struct {
		WallNS int64 `json:"wall_ns"`
		jsonSnapshot
	}{WallNS: int64(wall), jsonSnapshot: r.snapshotJSON()}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}
