package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	if c != nil {
		t.Fatalf("nil registry returned non-nil counter")
	}
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d, want 0", got)
	}
	g := r.Gauge("x")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %d, want 0", got)
	}
	h := r.Histogram("x_seconds")
	h.Observe(time.Second)
	h.ObserveSince(time.Now())
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram Count = %d, want 0", s.Count)
	}
	sp := r.StartSpan("phase")
	sp.End() // must not panic
	if ph := r.Tracer().Phases(); ph != nil {
		t.Fatalf("nil tracer Phases = %v, want nil", ph)
	}
	var buf strings.Builder
	r.WritePrometheus(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil registry WritePrometheus wrote %q", buf.String())
	}
	if got := r.Breakdown(time.Second); !strings.Contains(got, "disabled") {
		t.Fatalf("nil registry Breakdown = %q", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	a := r.Counter("reqs_total", "op", "Read")
	b := r.Counter("reqs_total", "op", "Read")
	if a != b {
		t.Fatalf("same series returned distinct counters")
	}
	c := r.Counter("reqs_total", "op", "Write")
	if a == c {
		t.Fatalf("distinct labels returned same counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared series not shared: %d", b.Value())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual")
}

func TestLabelRendering(t *testing.T) {
	// Sorted by key regardless of argument order, values escaped.
	r := New()
	a := r.Counter("m_total", "b", "2", "a", "1")
	b := r.Counter("m_total", "a", "1", "b", "2")
	if a != b {
		t.Fatalf("label order changed series identity")
	}
	if got := renderLabels([]string{"k", `va"l\ue` + "\n"}); got != `k="va\"l\\ue\n"` {
		t.Fatalf("escape: got %s", got)
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c_total", "op", "x").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds").Observe(time.Duration(j) * time.Microsecond)
				sp := r.StartSpan("p")
				sp.End()
			}
		}()
	}
	// Concurrent readers while writers run.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf strings.Builder
				r.WritePrometheus(&buf)
				_ = r.Breakdown(0)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "op", "x").Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := r.Gauge("g").Value(); got != 1600 {
		t.Fatalf("gauge = %d, want 1600", got)
	}
	if got := r.Histogram("h_seconds").Snapshot().Count; got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
	ph := r.Tracer().Phases()
	if len(ph) != 1 || ph[0].Count != 1600 {
		t.Fatalf("phases = %+v, want one phase with 1600 spans", ph)
	}
}

func TestSpanAccumulation(t *testing.T) {
	tr := NewTracer()
	for i := 0; i < 3; i++ {
		sp := tr.Start("lattice/level-01")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	ph := tr.Phases()
	if len(ph) != 1 {
		t.Fatalf("phases = %d, want 1", len(ph))
	}
	if ph[0].Count != 3 {
		t.Fatalf("count = %d, want 3", ph[0].Count)
	}
	if ph[0].Total < 3*time.Millisecond {
		t.Fatalf("total = %v, want >= 3ms", ph[0].Total)
	}
	if m := ph[0].Mean(); m < time.Millisecond {
		t.Fatalf("mean = %v, want >= 1ms", m)
	}
}

func TestPhaseOrderIsFirstStart(t *testing.T) {
	tr := NewTracer()
	for _, n := range []string{"setup", "lattice/level-01", "lattice/level-02", "setup"} {
		tr.Start(n).End()
	}
	ph := tr.Phases()
	want := []string{"setup", "lattice/level-01", "lattice/level-02"}
	if len(ph) != len(want) {
		t.Fatalf("phases = %d, want %d", len(ph), len(want))
	}
	for i, w := range want {
		if ph[i].Name != w {
			t.Fatalf("phase[%d] = %s, want %s", i, ph[i].Name, w)
		}
	}
}

func TestRenderPhasesEmpty(t *testing.T) {
	if got := RenderPhases(nil, 0); !strings.Contains(got, "no phases") {
		t.Fatalf("empty render = %q", got)
	}
}
