package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer aggregates named spans into per-phase wall-time totals. Phases
// are identified by hierarchical names ("lattice/level-03",
// "candidate/union", "oram/access"); nesting is expressed by the caller
// opening an inner span while an outer one is running, so totals of inner
// phases are included in their enclosing phase — exactly what a cost
// breakdown wants ("of the 12s in level 3, 11s were ORAM accesses").
//
// Start/End are two atomic adds plus two clock reads; the map lookup is
// amortized by a per-name stat cache. A nil *Tracer no-ops.
type Tracer struct {
	mu    sync.Mutex
	stats map[string]*phaseStat
	order []string // first-start order, for stable breakdown tables
}

type phaseStat struct {
	name  string
	count atomic.Int64
	total atomic.Int64 // nanoseconds
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{stats: make(map[string]*phaseStat)} }

// Span is one running phase measurement. The zero Span (from a nil tracer
// or registry) is valid and End on it is a no-op.
type Span struct {
	stat *phaseStat
	t0   time.Time
}

// Start opens a span for the named phase. Spans of the same name
// accumulate; concurrent spans of the same name are each counted.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	st, ok := t.stats[name]
	if !ok {
		st = &phaseStat{name: name}
		t.stats[name] = st
		t.order = append(t.order, name)
	}
	t.mu.Unlock()
	return Span{stat: st, t0: time.Now()}
}

// End closes the span, adding its wall time to the phase total.
func (s Span) End() {
	if s.stat == nil {
		return
	}
	s.stat.count.Add(1)
	s.stat.total.Add(int64(time.Since(s.t0)))
}

// Phase is one aggregated phase in a breakdown.
type Phase struct {
	Name  string        `json:"name"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// Mean returns the average span duration (0 when empty).
func (p Phase) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// Phases returns the aggregated phases in first-start order.
func (t *Tracer) Phases() []Phase {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := append([]string(nil), t.order...)
	stats := make([]*phaseStat, len(names))
	for i, n := range names {
		stats[i] = t.stats[n]
	}
	t.mu.Unlock()
	out := make([]Phase, len(stats))
	for i, st := range stats {
		out[i] = Phase{Name: st.name, Count: st.count.Load(), Total: time.Duration(st.total.Load())}
	}
	return out
}

// RenderPhases formats phases as an aligned breakdown table. Percentages
// are relative to wall when positive, else to the largest top-level total.
func RenderPhases(phases []Phase, wall time.Duration) string {
	if len(phases) == 0 {
		return "(no phases recorded)\n"
	}
	base := wall
	if base <= 0 {
		for _, p := range phases {
			if p.Total > base {
				base = p.Total
			}
		}
	}
	nameW := len("phase")
	for _, p := range phases {
		if len(p.Name) > nameW {
			nameW = len(p.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %10s %14s %14s %7s\n", nameW, "phase", "count", "total", "mean", "%wall")
	for _, p := range phases {
		pct := 0.0
		if base > 0 {
			pct = 100 * float64(p.Total) / float64(base)
		}
		fmt.Fprintf(&b, "%-*s %10d %14s %14s %6.1f%%\n",
			nameW, p.Name, p.Count,
			p.Total.Round(time.Microsecond), p.Mean().Round(time.Microsecond), pct)
	}
	return b.String()
}

// Breakdown renders the registry's full operator view: the phase table,
// non-zero counters and gauges, and latency histogram quantiles. This is
// what fddiscover/fdbench print under -telemetry.
func (r *Registry) Breakdown(wall time.Duration) string {
	if r == nil {
		return "(telemetry disabled)\n"
	}
	var b strings.Builder
	b.WriteString(RenderPhases(r.Tracer().Phases(), wall))

	type row struct{ key, val string }
	var counters, hists []row
	r.visit(func(key string, m any) {
		switch v := m.(type) {
		case *Counter:
			if n := v.Value(); n != 0 {
				counters = append(counters, row{key, fmt.Sprintf("%d", n)})
			}
		case *Gauge:
			if n := v.Value(); n != 0 {
				counters = append(counters, row{key, fmt.Sprintf("%d", n)})
			}
		case *Histogram:
			s := v.Snapshot()
			if s.Count == 0 {
				return
			}
			hists = append(hists, row{key, fmt.Sprintf(
				"count=%d p50=%s p95=%s p99=%s max=%s",
				s.Count,
				s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond),
				s.P99.Round(time.Microsecond), s.Max.Round(time.Microsecond))})
		}
	})
	if len(counters) > 0 {
		b.WriteString("\ncounters:\n")
		sort.Slice(counters, func(i, j int) bool { return counters[i].key < counters[j].key })
		for _, c := range counters {
			fmt.Fprintf(&b, "  %-52s %s\n", c.key, c.val)
		}
	}
	if len(hists) > 0 {
		b.WriteString("\nlatency:\n")
		for _, h := range hists {
			fmt.Fprintf(&b, "  %-52s %s\n", h.key, h.val)
		}
	}
	return b.String()
}
