package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// buildTestRegistry populates a registry with one of each metric kind plus
// a phase, with deterministic values, for golden rendering tests.
func buildTestRegistry() *Registry {
	r := New()
	r.Counter("oblivfd_retries_total").Add(3)
	r.Counter("oblivfd_rpc_errors_total", "op", "ReadPath").Add(1)
	r.Gauge("oblivfd_rpc_inflight").Set(2)
	h := r.Histogram("oblivfd_rpc_seconds", "op", "ReadPath")
	h.Observe(15 * time.Microsecond)
	h.Observe(15 * time.Microsecond)
	tr := r.Tracer()
	st := tr.Start("lattice/level-01")
	st.stat.total.Store(int64(2 * time.Second)) // deterministic total
	st.stat.count.Store(0)
	st.End() // count=1, total=2s+ε
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE oblivfd_retries_total counter\n",
		"oblivfd_retries_total 3\n",
		"# TYPE oblivfd_rpc_errors_total counter\n",
		`oblivfd_rpc_errors_total{op="ReadPath"} 1` + "\n",
		"# TYPE oblivfd_rpc_inflight gauge\n",
		"oblivfd_rpc_inflight 2\n",
		"# TYPE oblivfd_rpc_seconds histogram\n",
		`oblivfd_rpc_seconds_bucket{op="ReadPath",le="1e-05"} 0` + "\n",
		`oblivfd_rpc_seconds_bucket{op="ReadPath",le="2e-05"} 2` + "\n",
		`oblivfd_rpc_seconds_bucket{op="ReadPath",le="+Inf"} 2` + "\n",
		`oblivfd_rpc_seconds_count{op="ReadPath"} 2` + "\n",
		"# TYPE oblivfd_phase_seconds_total counter\n",
		`oblivfd_phase_seconds_total{phase="lattice/level-01"} `,
		`oblivfd_phase_spans_total{phase="lattice/level-01"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}

	// Each # TYPE line appears exactly once per family.
	for _, fam := range []string{"oblivfd_retries_total", "oblivfd_rpc_seconds"} {
		if n := strings.Count(out, "# TYPE "+fam+" "); n != 1 {
			t.Fatalf("family %s has %d TYPE lines", fam, n)
		}
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64             `json:"counters"`
		Gauges     map[string]int64             `json:"gauges"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
		Phases     []Phase                      `json:"phases"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.Counters["oblivfd_retries_total"] != 3 {
		t.Fatalf("counters = %+v", doc.Counters)
	}
	if doc.Gauges["oblivfd_rpc_inflight"] != 2 {
		t.Fatalf("gauges = %+v", doc.Gauges)
	}
	hs, ok := doc.Histograms[`oblivfd_rpc_seconds{op="ReadPath"}`]
	if !ok || hs.Count != 2 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
	if len(doc.Phases) != 1 || doc.Phases[0].Name != "lattice/level-01" {
		t.Fatalf("phases = %+v", doc.Phases)
	}
}

func TestMuxEndpoints(t *testing.T) {
	r := buildTestRegistry()
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ct := get("/metrics")
	if code != 200 || !strings.Contains(body, "oblivfd_retries_total 3") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %s", ct)
	}

	code, body, ct = get("/metrics.json")
	if code != 200 || !json.Valid([]byte(body)) {
		t.Fatalf("/metrics.json: code=%d body=%q", code, body)
	}
	if ct != "application/json" {
		t.Fatalf("/metrics.json content-type = %s", ct)
	}

	code, body, _ = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}

func TestBreakdownRendering(t *testing.T) {
	r := buildTestRegistry()
	out := r.Breakdown(4 * time.Second)
	for _, want := range []string{"lattice/level-01", "oblivfd_retries_total", "oblivfd_rpc_seconds", "p95="} {
		if !strings.Contains(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}
}

func TestMarshalBreakdownJSON(t *testing.T) {
	r := buildTestRegistry()
	b, err := r.MarshalBreakdownJSON(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		WallNS int64   `json:"wall_ns"`
		Phases []Phase `json:"phases"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.WallNS != int64(3*time.Second) || len(doc.Phases) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
}
