package telemetry

import (
	"encoding/json"
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// DefaultBuckets are the histogram upper bounds in seconds: exponential
// from 10µs doubling to ~84s (24 finite buckets plus +Inf). The range
// covers in-process storage calls (~µs) through WAN round trips and WAL
// fsyncs (~ms) up to pathological stalls.
var DefaultBuckets = func() []float64 {
	bounds := make([]float64, 24)
	b := 10e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Histogram is a fixed-bucket latency histogram. Observations are
// lock-free (atomic adds); snapshots estimate quantiles by linear
// interpolation inside the winning bucket, clamped to the observed
// min/max so single-sample and narrow distributions report exact values.
//
// A nil *Histogram ignores observations and snapshots as empty.
type Histogram struct {
	series
	bounds []float64      // ascending upper bounds, seconds; +Inf implicit
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	min    atomic.Int64 // nanoseconds; MaxInt64 until first observation
	max    atomic.Int64 // nanoseconds
}

// NewHistogram returns a standalone (unregistered) histogram with the
// default buckets.
func NewHistogram() *Histogram { return newHistogram("", "", DefaultBuckets) }

func newHistogram(name, labels string, bounds []float64) *Histogram {
	h := &Histogram{
		series: series{name: name, labels: labels},
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	sec := float64(ns) / 1e9
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0))
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound in seconds;
	// +Inf for the overflow bucket.
	UpperBound float64 `json:"-"`
	// Count is the number of observations ≤ UpperBound (cumulative, per
	// the Prometheus convention).
	Count int64 `json:"count"`
}

// MarshalJSON renders the upper bound as a string so the +Inf overflow
// bucket survives encoding (JSON has no infinity literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}{le, b.Count})
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Min     time.Duration `json:"min_ns"`
	Max     time.Duration `json:"max_ns"`
	P50     time.Duration `json:"p50_ns"`
	P95     time.Duration `json:"p95_ns"`
	P99     time.Duration `json:"p99_ns"`
	Buckets []Bucket      `json:"buckets,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Snapshot captures the histogram's current state. Concurrent observations
// may land between field reads; the result is a consistent-enough view for
// monitoring, not an atomic cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = time.Duration(h.min.Load())
	s.Max = time.Duration(h.max.Load())
	raw := make([]int64, len(h.counts))
	cum := int64(0)
	s.Buckets = make([]Bucket, len(h.counts))
	for i := range h.counts {
		raw[i] = h.counts[i].Load()
		cum += raw[i]
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
	}
	total := cum
	s.P50 = h.quantile(raw, total, 0.50, s.Min, s.Max)
	s.P95 = h.quantile(raw, total, 0.95, s.Min, s.Max)
	s.P99 = h.quantile(raw, total, 0.99, s.Min, s.Max)
	return s
}

// quantile estimates the p-quantile from per-bucket counts by linear
// interpolation inside the bucket that contains the target rank, clamped
// to [min, max]. With one sample every quantile is that sample.
func (h *Histogram) quantile(raw []int64, total int64, p float64, min, max time.Duration) time.Duration {
	if total == 0 {
		return 0
	}
	target := p * float64(total)
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for i, c := range raw {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= target {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := float64(max) / 1e9 // +Inf bucket: cap at observed max
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			frac := (target - float64(cum)) / float64(c)
			v := time.Duration((lower + (upper-lower)*frac) * 1e9)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
		cum += c
	}
	return max
}
