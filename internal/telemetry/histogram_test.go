package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P95 != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot not all zero: %+v", s)
	}
	if s.Mean() != 0 {
		t.Fatalf("empty mean = %v", s.Mean())
	}
	if len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot has buckets")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	d := 137 * time.Microsecond
	h.Observe(d)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != d || s.Min != d || s.Max != d {
		t.Fatalf("single-sample snapshot: %+v", s)
	}
	// Min/max clamping makes every quantile exact for one sample.
	for _, q := range []time.Duration{s.P50, s.P95, s.P99} {
		if q != d {
			t.Fatalf("single-sample quantile = %v, want %v", q, d)
		}
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Microsecond)  // == first bound, goes in bucket 0
	h.Observe(11 * time.Microsecond)  // bucket 1 (10µs < v <= 20µs)
	h.Observe(500 * time.Millisecond) // some mid bucket
	h.Observe(time.Hour)              // beyond last bound: +Inf bucket
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if len(s.Buckets) != len(DefaultBuckets)+1 {
		t.Fatalf("buckets = %d, want %d", len(s.Buckets), len(DefaultBuckets)+1)
	}
	if s.Buckets[0].Count != 1 {
		t.Fatalf("bucket0 cumulative = %d, want 1", s.Buckets[0].Count)
	}
	if s.Buckets[1].Count != 2 {
		t.Fatalf("bucket1 cumulative = %d, want 2", s.Buckets[1].Count)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if !math.IsInf(last.UpperBound, 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", last.UpperBound)
	}
	if last.Count != 4 {
		t.Fatalf("+Inf cumulative = %d, want 4 (cumulative convention)", last.Count)
	}
	// Monotone non-decreasing cumulative counts.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Count < s.Buckets[i-1].Count {
			t.Fatalf("bucket counts not cumulative at %d", i)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 100 samples spread 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	// Bucket interpolation is coarse (power-of-two buckets); accept a
	// factor-of-two window around the true quantile.
	check := func(name string, got, want time.Duration) {
		t.Helper()
		if got < want/2 || got > want*2 {
			t.Fatalf("%s = %v, want within [%v, %v]", name, got, want/2, want*2)
		}
	}
	check("p50", s.P50, 50*time.Millisecond)
	check("p95", s.P95, 95*time.Millisecond)
	check("p99", s.P99, 99*time.Millisecond)
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if s.P99 > s.Max {
		t.Fatalf("p99 %v > max %v", s.P99, s.Max)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if m := s.Mean(); m < 45*time.Millisecond || m > 56*time.Millisecond {
		t.Fatalf("mean = %v, want ~50.5ms", m)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Min != 0 || s.Sum != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}
