// Package telemetry is the operator's view of a run: a dependency-free
// metrics registry (atomic counters, gauges, and fixed-bucket latency
// histograms with quantile snapshots) plus lightweight span tracing for
// per-phase wall-time breakdowns (lattice level → candidate check → ORAM
// access).
//
// It is deliberately distinct from internal/trace, which records the
// *adversary's* view for obliviousness proofs. Telemetry observes only
// quantities already in the leakage profile L(DB) — operation names,
// counts, sizes, and timings of server-visible events — never plaintexts,
// keys, or which branch a comparison took (see DESIGN.md §9).
//
// Everything is nil-safe: a nil *Registry hands out nil metrics and zero
// Spans whose methods are no-ops, so instrumented code needs no "is
// telemetry on?" branches and the zero-telemetry path costs one nil check
// per site — no clock reads, no allocations.
package telemetry

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter ignores writes and reads as zero.
type Counter struct {
	series
	v atomic.Int64
}

// NewCounter returns a standalone (unregistered) counter, for components
// that keep per-instance counts even when no registry is configured.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for the Prometheus contract; Add does
// not enforce it).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge ignores writes and
// reads as zero.
type Gauge struct {
	series
	v atomic.Int64
}

// NewGauge returns a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the value by n (negative deltas allowed).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series is the identity shared by every metric kind: a base name plus a
// rendered label set, e.g. name "oblivfd_rpc_seconds", labels
// `op="ReadPath"`.
type series struct {
	name   string
	labels string // rendered `k="v",k2="v2"`, empty for unlabeled
}

// Name returns the metric's base name (empty for standalone metrics).
func (s *series) Name() string { return s.name }

// seriesKey uniquely identifies a series inside a registry.
func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// renderLabels turns alternating key/value pairs into the canonical label
// string. Pairs are sorted by key so the same set always yields the same
// series. Values are escaped per the Prometheus text format.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "") // tolerate a dangling key rather than panic
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Registry is a concurrency-safe collection of metrics plus one span
// Tracer. Metrics are created on first use and live for the registry's
// lifetime; handles are cached by callers, so the map lookup happens at
// construction time, not on the hot path.
//
// A nil *Registry is the "telemetry off" state: every accessor returns a
// nil metric (or zero Span) whose methods no-op.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]any
	order  []string // registration order, for stable human-facing output
	tracer *Tracer
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		byKey:  make(map[string]any),
		tracer: NewTracer(),
	}
}

// Counter returns the counter for name and optional alternating label
// key/value pairs, creating it on first use. It panics if the series
// already exists with a different metric kind.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	labels := renderLabels(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic("telemetry: series " + key + " already registered as a different kind")
		}
		return c
	}
	c := &Counter{series: series{name: name, labels: labels}}
	r.byKey[key] = c
	r.order = append(r.order, key)
	return c
}

// Gauge returns the gauge for name and optional label pairs, creating it on
// first use.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	labels := renderLabels(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic("telemetry: series " + key + " already registered as a different kind")
		}
		return g
	}
	g := &Gauge{series: series{name: name, labels: labels}}
	r.byKey[key] = g
	r.order = append(r.order, key)
	return g
}

// Histogram returns the latency histogram for name and optional label
// pairs, creating it with the default bucket bounds on first use.
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	if r == nil {
		return nil
	}
	labels := renderLabels(kv)
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic("telemetry: series " + key + " already registered as a different kind")
		}
		return h
	}
	h := newHistogram(name, labels, DefaultBuckets)
	r.byKey[key] = h
	r.order = append(r.order, key)
	return h
}

// Tracer returns the registry's span tracer (nil for a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// StartSpan opens a span on the registry's tracer; see Tracer.Start.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return r.tracer.Start(name)
}

// visit walks every registered metric sorted by (name, labels), which is
// the order the Prometheus text format wants series of one family grouped.
func (r *Registry) visit(fn func(key string, m any)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	byKey := make(map[string]any, len(r.byKey))
	for k, v := range r.byKey {
		byKey[k] = v
	}
	r.mu.Unlock()
	sort.Strings(keys)
	for _, k := range keys {
		fn(k, byKey[k])
	}
}
