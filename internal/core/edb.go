package core

import (
	"fmt"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// EncryptedDB is the client's handle to an outsourced database: each cell is
// individually encrypted (cell-level encryption, §II-A) and stored in one
// server array per column. The server sees only ciphertexts and their
// positions; ciphertext lengths reveal cell lengths, which is part of the
// accepted size leakage of cell-level encrypted databases.
type EncryptedDB struct {
	svc      store.Service
	cipher   *crypto.Cipher
	name     string
	schema   *relation.Schema
	n        int // rows written (monotonic: appended rows get ids n, n+1, …)
	capacity int
}

// Upload encrypts rel cell by cell and stores it on the server under the
// given database name. The column arrays are sized to rel's row count;
// use UploadWithCapacity to leave headroom for appended rows.
func Upload(svc store.Service, cipher *crypto.Cipher, name string, rel *relation.Relation) (*EncryptedDB, error) {
	return UploadWithCapacity(svc, cipher, name, rel, rel.NumRows())
}

// UploadWithCapacity uploads rel into column arrays sized for capacity rows,
// so the client can later append up to capacity-n additional records (the
// dynamic setting of §V).
func UploadWithCapacity(svc store.Service, cipher *crypto.Cipher, name string, rel *relation.Relation, capacity int) (*EncryptedDB, error) {
	if capacity < rel.NumRows() {
		return nil, fmt.Errorf("core: capacity %d < %d rows", capacity, rel.NumRows())
	}
	if capacity < 1 {
		return nil, fmt.Errorf("core: capacity must be positive")
	}
	e := &EncryptedDB{
		svc:      svc,
		cipher:   cipher,
		name:     name,
		schema:   rel.Schema(),
		n:        rel.NumRows(),
		capacity: capacity,
	}
	for j := 0; j < rel.NumAttrs(); j++ {
		col := e.columnName(j)
		if err := svc.CreateArray(col, capacity); err != nil {
			return nil, fmt.Errorf("core: uploading column %d: %w", j, err)
		}
		if rel.NumRows() == 0 {
			continue
		}
		idx := make([]int64, rel.NumRows())
		cts := make([][]byte, rel.NumRows())
		for i := 0; i < rel.NumRows(); i++ {
			ct, err := cipher.Seal([]byte(rel.Value(i, j)), e.cellAD(i, j))
			if err != nil {
				return nil, fmt.Errorf("core: encrypting cell (%d,%d): %w", i, j, err)
			}
			idx[i] = int64(i)
			cts[i] = ct
		}
		if err := svc.WriteCells(col, idx, cts); err != nil {
			return nil, fmt.Errorf("core: uploading column %d: %w", j, err)
		}
	}
	return e, nil
}

// AppendRow encrypts and stores a new record, returning its id. The row
// occupies the next free slot; capacity bounds total appends.
func (e *EncryptedDB) AppendRow(row relation.Row) (int, error) {
	if len(row) != e.schema.Width() {
		return 0, fmt.Errorf("%w: row has %d values, schema %d", ErrRowWidth, len(row), e.schema.Width())
	}
	if e.n >= e.capacity {
		return 0, fmt.Errorf("core: database full (%d rows, capacity %d)", e.n, e.capacity)
	}
	id := e.n
	for j, v := range row {
		ct, err := e.cipher.Seal([]byte(v), e.cellAD(id, j))
		if err != nil {
			return 0, fmt.Errorf("core: encrypting appended cell %d: %w", j, err)
		}
		if err := e.svc.WriteCells(e.columnName(j), []int64{int64(id)}, [][]byte{ct}); err != nil {
			return 0, fmt.Errorf("core: appending cell %d: %w", j, err)
		}
	}
	e.n++
	return id, nil
}

// Capacity returns the maximum row count.
func (e *EncryptedDB) Capacity() int { return e.capacity }

func (e *EncryptedDB) columnName(j int) string {
	return fmt.Sprintf("db:%s:col%d", e.name, j)
}

// cellAD binds a cell ciphertext to its (column, row) location. The column
// arrays are append-only — a cell is written once and never moves — so
// location binding alone makes cross-cell substitution detectable; there is
// no version to track.
func (e *EncryptedDB) cellAD(i, j int) []byte {
	return []byte(fmt.Sprintf("cell:%s:%d", e.columnName(j), i))
}

// Name returns the database name.
func (e *EncryptedDB) Name() string { return e.name }

// Schema returns the schema (attribute names are metadata the server knows).
func (e *EncryptedDB) Schema() *relation.Schema { return e.schema }

// NumRows returns n.
func (e *EncryptedDB) NumRows() int { return e.n }

// NumAttrs returns m.
func (e *EncryptedDB) NumAttrs() int { return e.schema.Width() }

// CellValue retrieves and decrypts one cell: the server transfers the
// ciphertext of r_i[X], the client decrypts it (Algorithm 1 line 4).
func (e *EncryptedDB) CellValue(i, j int) (string, error) {
	cts, err := e.svc.ReadCells(e.columnName(j), []int64{int64(i)})
	if err != nil {
		return "", fmt.Errorf("core: reading cell (%d,%d): %w", i, j, err)
	}
	pt, err := e.cipher.Open(cts[0], e.cellAD(i, j))
	if err != nil {
		return "", fmt.Errorf("core: cell (%d,%d) of %q failed verification: %v: %w", i, j, e.name, err, store.ErrIntegrity)
	}
	return string(pt), nil
}

// CellValues retrieves and decrypts the cells (lo..hi-1, j) of one column
// in a single ReadCells round. Callers bound hi-lo to a constant chunk to
// keep client memory O(1); the server still records one access per cell.
func (e *EncryptedDB) CellValues(lo, hi, j int) ([]string, error) {
	if lo < 0 || hi > e.n || lo > hi {
		return nil, fmt.Errorf("core: cell range [%d,%d) out of [0,%d)", lo, hi, e.n)
	}
	idx := make([]int64, hi-lo)
	for k := range idx {
		idx[k] = int64(lo + k)
	}
	cts, err := e.svc.ReadCells(e.columnName(j), idx)
	if err != nil {
		return nil, fmt.Errorf("core: reading cells [%d,%d) of column %d: %w", lo, hi, j, err)
	}
	out := make([]string, len(cts))
	for k, ct := range cts {
		pt, err := e.cipher.Open(ct, e.cellAD(lo+k, j))
		if err != nil {
			return nil, fmt.Errorf("core: cell (%d,%d) of %q failed verification: %v: %w", lo+k, j, e.name, err, store.ErrIntegrity)
		}
		out[k] = string(pt)
	}
	return out, nil
}

// Delete removes the database's column arrays from the server.
func (e *EncryptedDB) Delete() error {
	for j := 0; j < e.schema.Width(); j++ {
		if err := e.svc.Delete(e.columnName(j)); err != nil {
			return fmt.Errorf("core: deleting column %d: %w", j, err)
		}
	}
	return nil
}
