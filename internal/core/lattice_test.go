package core

import (
	"fmt"
	"testing"

	"github.com/oblivfd/oblivfd/internal/baseline"
	"github.com/oblivfd/oblivfd/internal/relation"
)

func TestDiscoverPaperExampleAllEngines(t *testing.T) {
	rel := testRelation()
	want := baseline.MinimalFDs(rel)
	for _, ef := range allEngines() {
		t.Run(ef.name, func(t *testing.T) {
			eng := ef.make(t, rel)
			defer eng.Close()
			res, err := Discover(eng, rel.NumAttrs(), nil)
			if err != nil {
				t.Fatalf("Discover: %v", err)
			}
			if !relation.FDSetEqual(res.Minimal, want) {
				t.Errorf("Minimal = %v, want %v", res.Minimal, want)
			}
		})
	}
}

// TestDiscoverMatchesBaselineRandom is the central correctness property:
// on random relations, every engine's discovery output equals the
// independent brute-force oracle.
func TestDiscoverMatchesBaselineRandom(t *testing.T) {
	type scenario struct {
		m, n, card int
		seed       int64
	}
	scenarios := []scenario{
		{3, 12, 2, 1},
		{4, 20, 2, 2},
		{4, 16, 3, 3},
		{5, 24, 2, 4},
		{3, 6, 1, 5},   // all columns constant
		{4, 10, 26, 6}, // likely all-distinct columns (keys everywhere)
	}
	for _, sc := range scenarios {
		rel := randomRel(sc.m, sc.n, sc.card, sc.seed)
		want := baseline.MinimalFDs(rel)
		for _, ef := range allEngines() {
			eng := ef.make(t, rel)
			res, err := Discover(eng, rel.NumAttrs(), nil)
			if err != nil {
				t.Fatalf("%s seed %d: Discover: %v", ef.name, sc.seed, err)
			}
			eng.Close()
			if !relation.FDSetEqual(res.Minimal, want) {
				t.Errorf("%s seed %d: Minimal = %v, want %v", ef.name, sc.seed, res.Minimal, want)
			}
		}
	}
}

// TestDiscoverMatchesBaselineManySeedsPlain drives many more random cases
// through the (fast) plaintext engine; the lattice logic under test is
// shared by all engines.
func TestDiscoverMatchesBaselineManySeedsPlain(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := 3 + int(seed)%3
		n := 5 + int(seed*7)%25
		card := 1 + int(seed)%4
		rel := randomRel(m, n, card, seed)
		want := baseline.MinimalFDs(rel)
		eng := NewPlainEngine(rel)
		res, err := Discover(eng, m, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !relation.FDSetEqual(res.Minimal, want) {
			t.Errorf("seed %d (m=%d n=%d card=%d): got %v, want %v", seed, m, n, card, res.Minimal, want)
		}
	}
}

// TestDiscoverStressManyShapes hammers the lattice (including key pruning
// and C⁺ reconstruction) with hundreds of random relations across attribute
// counts and cardinalities, cross-validated against the brute-force oracle.
func TestDiscoverStressManyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test in -short mode")
	}
	seed := int64(1000)
	for m := 2; m <= 7; m++ {
		for card := 1; card <= 3; card++ {
			for rep := 0; rep < 25; rep++ {
				seed++
				n := 2 + int(seed*13)%30
				rel := randomRel(m, n, card, seed)
				want := baseline.MinimalFDs(rel)
				res, err := Discover(NewPlainEngine(rel), m, nil)
				if err != nil {
					t.Fatalf("m=%d card=%d seed=%d: %v", m, card, seed, err)
				}
				if !relation.FDSetEqual(res.Minimal, want) {
					t.Fatalf("m=%d n=%d card=%d seed=%d:\ngot  %v\nwant %v",
						m, n, card, seed, res.Minimal, want)
				}
			}
		}
	}
}

func TestDiscoverRevealsOnlyAllowedLeakage(t *testing.T) {
	rel := testRelation()
	eng := NewPlainEngine(rel)
	defer eng.Close()
	var revealed []string
	res, err := Discover(eng, rel.NumAttrs(), &Options{
		Reveal: func(fd relation.FD, holds bool) {
			revealed = append(revealed, fd.String())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every set-level decision is disclosed — and the count matches the
	// number of checks, i.e. nothing else was disclosed.
	if len(revealed) < res.Checks {
		t.Errorf("revealed %d decisions, checks %d", len(revealed), res.Checks)
	}
}

func TestDiscoverMaxLHS(t *testing.T) {
	// With MaxLHS=1 only single-attribute determinants may be searched.
	rel := randomRel(5, 30, 2, 9)
	eng := NewPlainEngine(rel)
	defer eng.Close()
	res, err := Discover(eng, rel.NumAttrs(), &Options{MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.Minimal {
		if fd.LHS.Size() > 1 {
			t.Errorf("FD %v exceeds MaxLHS=1", fd)
		}
	}
	// And those it finds agree with the oracle's size-≤1 subset.
	var want []relation.FD
	for _, fd := range baseline.MinimalFDs(rel) {
		if fd.LHS.Size() <= 1 {
			want = append(want, fd)
		}
	}
	if !relation.FDSetEqual(res.Minimal, want) {
		t.Errorf("MaxLHS=1 minimal = %v, want %v", res.Minimal, want)
	}

	// Regression: a relation whose two-attribute sets are superkeys used
	// to leak |LHS|=2 FDs through the key-pruning harvest despite
	// MaxLHS=1 (found by the flight integration test).
	keyed := relation.MustFromRows(relation.MustNewSchema("a", "b", "c"), []relation.Row{
		{"1", "x", "p"}, {"1", "y", "q"}, {"2", "x", "r"}, {"2", "y", "s"},
	})
	res, err = Discover(NewPlainEngine(keyed), 3, &Options{MaxLHS: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.Minimal {
		if fd.LHS.Size() > 1 {
			t.Errorf("superkey harvest leaked %v past MaxLHS=1", fd)
		}
	}
}

func TestDiscoverEdgeCases(t *testing.T) {
	eng := NewPlainEngine(randomRel(1, 5, 2, 1))
	if _, err := Discover(eng, 0, nil); err == nil {
		t.Error("m=0 accepted")
	}
	empty := relation.New(relation.MustNewSchema("a"))
	if _, err := Discover(NewPlainEngine(empty), 1, nil); err == nil {
		t.Error("empty database accepted")
	}
	// Single column, n=1: the column is a key and constant; ∅ → a holds.
	one := relation.MustFromRows(relation.MustNewSchema("a"), []relation.Row{{"x"}})
	res, err := Discover(NewPlainEngine(one), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.FD{{LHS: 0, RHS: relation.SingleAttr(0)}}
	if !relation.FDSetEqual(res.Minimal, want) {
		t.Errorf("single-cell minimal = %v, want %v", res.Minimal, want)
	}
}

// TestDiscoverTraversalDeterministic: two discovery runs over the same data
// must make identical set-level decisions in identical order — the access
// pattern is defined to be a function of (m, n, FD(DB)), never of map
// iteration order (a regression guard for the prefix-bucket join).
func TestDiscoverTraversalDeterministic(t *testing.T) {
	rel := randomRel(6, 40, 2, 77)
	runOnce := func() []string {
		var log []string
		_, err := Discover(NewPlainEngine(rel), rel.NumAttrs(), &Options{
			Reveal: func(fd relation.FD, holds bool) {
				log = append(log, fmt.Sprintf("%v=%v", fd, holds))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestAggregateFDs(t *testing.T) {
	in := []relation.FD{
		{LHS: relation.NewAttrSet(0), RHS: relation.SingleAttr(1)},
		{LHS: relation.NewAttrSet(0), RHS: relation.SingleAttr(2)},
		{LHS: relation.NewAttrSet(3), RHS: relation.SingleAttr(1)},
	}
	out := AggregateFDs(in)
	want := []relation.FD{
		{LHS: relation.NewAttrSet(0), RHS: relation.NewAttrSet(1, 2)},
		{LHS: relation.NewAttrSet(3), RHS: relation.NewAttrSet(1)},
	}
	if !relation.FDSetEqual(out, want) {
		t.Errorf("AggregateFDs = %v, want %v", out, want)
	}
}

func TestValidateAgainstOracle(t *testing.T) {
	rel := randomRel(4, 18, 2, 21)
	for _, ef := range allEngines() {
		t.Run(ef.name, func(t *testing.T) {
			eng := ef.make(t, rel)
			defer eng.Close()
			cases := []struct{ x, y relation.AttrSet }{
				{relation.NewAttrSet(0), relation.NewAttrSet(1)},
				{relation.NewAttrSet(0, 1), relation.NewAttrSet(2)},
				{relation.NewAttrSet(0, 1, 2), relation.NewAttrSet(3)},
				{relation.NewAttrSet(2), relation.NewAttrSet(0, 3)},
				{relation.NewAttrSet(1), relation.NewAttrSet(1)}, // trivial
			}
			for _, c := range cases {
				got, err := Validate(eng, c.x, c.y)
				if err != nil {
					t.Fatalf("Validate(%v,%v): %v", c.x, c.y, err)
				}
				want := baseline.Holds(rel, relation.FD{LHS: c.x, RHS: c.y})
				if got != want {
					t.Errorf("Validate(%v -> %v) = %v, want %v", c.x, c.y, got, want)
				}
			}
		})
	}
}

func TestValidateRejectsEmptySets(t *testing.T) {
	eng := NewPlainEngine(testRelation())
	if _, err := Validate(eng, 0, relation.SingleAttr(1)); err == nil {
		t.Error("empty X accepted")
	}
	if _, err := Validate(eng, relation.SingleAttr(1), 0); err == nil {
		t.Error("empty Y accepted")
	}
}

// TestDiscoverReleasesServerState: without KeepPartitions the lattice frees
// levels as it ascends; by the end only the final level's state remains
// (here bounded by a small multiple of the last level's size).
func TestDiscoverReleasesServerState(t *testing.T) {
	rel := randomRel(4, 24, 2, 33)
	edb := uploadFor(t, rel)
	eng := NewOrEngine(edb)
	defer eng.Close()
	if _, err := Discover(eng, rel.NumAttrs(), nil); err != nil {
		t.Fatal(err)
	}
	if len(eng.sets) > 12 {
		t.Errorf("%d partitions still materialized after Discover; release is not working", len(eng.sets))
	}
	// With KeepPartitions everything stays.
	eng2 := NewOrEngine(uploadFor(t, rel))
	defer eng2.Close()
	res, err := Discover(eng2, rel.NumAttrs(), &Options{KeepPartitions: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng2.sets) != res.SetsMaterialized {
		t.Errorf("KeepPartitions retained %d of %d sets", len(eng2.sets), res.SetsMaterialized)
	}
}
