package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/trace"
)

// --- runBatch scheduler unit tests -----------------------------------------

// TestRunBatchWaveOrdering checks the two invariants the wave scheduler owes
// the engines: (a) jobs sharing a resource never run concurrently, and (b)
// each resource sees its jobs in serial job order. Case C is the first-fit
// counterexample — A{1}, B{1,2}, C{2} — where packing C into A's wave would
// let C touch resource 2 before B does.
func TestRunBatchWaveOrdering(t *testing.T) {
	r := func(attrs ...int) []relation.AttrSet {
		out := make([]relation.AttrSet, len(attrs))
		for i, a := range attrs {
			out[i] = relation.SingleAttr(a)
		}
		return out
	}

	var mu sync.Mutex
	perResource := make(map[relation.AttrSet][]int) // resource -> job indices in run order
	running := make(map[relation.AttrSet]int)       // resource -> currently running job count
	var commits []int

	job := func(idx int, resources []relation.AttrSet) batchJob {
		return batchJob{
			resources: resources,
			run: func() error {
				mu.Lock()
				for _, res := range resources {
					if running[res] != 0 {
						mu.Unlock()
						t.Errorf("job %d: resource %v already in use by a concurrent job", idx, res)
						return nil
					}
					running[res]++
					perResource[res] = append(perResource[res], idx)
				}
				mu.Unlock()
				mu.Lock()
				for _, res := range resources {
					running[res]--
				}
				mu.Unlock()
				return nil
			},
			commit: func() { commits = append(commits, idx) },
		}
	}

	jobs := []batchJob{
		job(0, r(1)),    // A
		job(1, r(1, 2)), // B conflicts with A on 1
		job(2, r(2)),    // C conflicts with B on 2 — must wait for B, not ride with A
		job(3, r(3)),    // D independent
	}
	if err := runBatch(jobs, 8); err != nil {
		t.Fatal(err)
	}

	for res, order := range perResource {
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Errorf("resource %v saw jobs out of serial order: %v", res, order)
				break
			}
		}
	}
	// Commits happen wave by wave (in job order within each wave), so the
	// global sequence need not be sorted — but jobs that share a resource
	// are in different waves and must commit in job order.
	if len(commits) != len(jobs) {
		t.Fatalf("%d commits, want %d (commits = %v)", len(commits), len(jobs), commits)
	}
	pos := make(map[int]int, len(commits))
	for i, idx := range commits {
		pos[idx] = i
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Errorf("conflict chain 0→1→2 committed out of order: %v", commits)
	}
}

// TestRunBatchErrorPropagation: a failing job surfaces its error, its commit
// is skipped, successful jobs in the same wave still commit, and later waves
// (which may depend on uncommitted state) are abandoned.
func TestRunBatchErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var committed []int
	mk := func(idx int, res int, err error) batchJob {
		return batchJob{
			resources: []relation.AttrSet{relation.SingleAttr(res)},
			run:       func() error { return err },
			commit:    func() { committed = append(committed, idx) },
		}
	}
	jobs := []batchJob{
		mk(0, 1, nil),
		mk(1, 2, boom),
		mk(2, 3, nil),
		mk(3, 1, nil), // second wave (conflicts with job 0) — must never run
	}
	err := runBatch(jobs, 4)
	if !errors.Is(err, boom) {
		t.Fatalf("runBatch err = %v, want %v", err, boom)
	}
	for _, idx := range committed {
		if idx == 1 {
			t.Fatal("failed job was committed")
		}
		if idx == 3 {
			t.Fatal("job in a wave after the failure was committed")
		}
	}
}

// --- serial vs parallel discovery equivalence ------------------------------

type parallelRun struct {
	res   *Result
	shape trace.Shape
}

// discoverWithWorkers runs a full discovery with the given engine kind and
// worker count on a fresh server, returning the result and the trace shape
// canonicalized per structure (the obliviousness invariant for parallel
// execution: per-structure sequences must match the serial run even though
// cross-structure interleaving is scheduling noise).
func discoverWithWorkers(t *testing.T, kind engineKind, rel *relation.Relation, workers int) parallelRun {
	t.Helper()
	srv := store.NewServer()
	cipher := crypto.MustNewCipher(crypto.MustNewKey())
	edb, err := Upload(srv, cipher, "t", rel)
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	switch kind {
	case kindOr:
		eng = NewOrEngine(edb)
	case kindEx:
		eng, err = NewExEngine(edb)
		if err != nil {
			t.Fatal(err)
		}
	case kindSort:
		// Inner sorting-network workers stay at 1 so each array's own
		// access sequence is deterministic; the parallelism under test is
		// the lattice-level batch scheduler.
		eng = NewSortEngine(edb, 1)
	}
	defer eng.Close()

	srv.Trace().Reset()
	srv.Trace().Enable()
	res, err := Discover(eng, rel.NumAttrs(), &Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return parallelRun{res: res, shape: trace.ShapeOf(srv.Trace().Events()).CanonicalPerStructure()}
}

// TestSerialParallelEquivalence is the tentpole correctness statement: for
// every secure engine, running discovery with a worker pool must produce the
// same minimal FD set, the same cardinalities, the same work counters, and
// the same multiset of per-structure access sequences as the serial run.
// Run under -race (CI uses -cpu 1,4) to also exercise memory safety.
// parallelTestRel builds a 4-attribute relation with genuine FD structure:
// column 3 is a function of column 0 (so C0→C3 holds non-trivially) and
// column 2 is a row id (a key), while columns 0 and 1 collide freely so the
// lattice materializes plenty of unions before pruning.
func parallelTestRel(n int) *relation.Relation {
	rel := relation.New(relation.MustNewSchema("C0", "C1", "C2", "C3"))
	for i := 0; i < n; i++ {
		row := relation.Row{
			fmt.Sprintf("%06d", i%8),
			fmt.Sprintf("%06d", i%3),
			fmt.Sprintf("%06d", i),
			fmt.Sprintf("%06d", (i%8)%4),
		}
		if err := rel.Append(row); err != nil {
			panic(err)
		}
	}
	return rel
}

func TestSerialParallelEquivalence(t *testing.T) {
	rel := parallelTestRel(24)
	kinds := []struct {
		name string
		kind engineKind
	}{
		{"or", kindOr},
		{"ex", kindEx},
		{"sort", kindSort},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			serial := discoverWithWorkers(t, k.kind, rel, 1)
			if len(serial.res.Minimal) == 0 {
				t.Fatalf("test relation yields no FDs; equivalence would be vacuous")
			}
			for _, workers := range []int{4, 8} {
				par := discoverWithWorkers(t, k.kind, rel, workers)
				if !relation.FDSetEqual(par.res.Minimal, serial.res.Minimal) {
					t.Errorf("workers=%d: FDs = %v, want %v", workers, par.res.Minimal, serial.res.Minimal)
				}
				if par.res.SetsMaterialized != serial.res.SetsMaterialized || par.res.Checks != serial.res.Checks {
					t.Errorf("workers=%d: counters = %d sets/%d checks, want %d/%d",
						workers, par.res.SetsMaterialized, par.res.Checks,
						serial.res.SetsMaterialized, serial.res.Checks)
				}
				if len(par.res.Cardinalities) != len(serial.res.Cardinalities) {
					t.Errorf("workers=%d: %d cardinalities, want %d",
						workers, len(par.res.Cardinalities), len(serial.res.Cardinalities))
				}
				for x, card := range serial.res.Cardinalities {
					if got, ok := par.res.Cardinalities[x]; !ok || got != card {
						t.Errorf("workers=%d: |π_%v| = %d (present=%v), want %d", workers, x, got, ok, card)
					}
				}
				if !par.shape.Equal(serial.shape) {
					t.Errorf("workers=%d: per-structure trace differs from serial run:\n%s",
						workers, serial.shape.Diff(par.shape))
				}
			}
		})
	}
}

// TestParallelBatchDirect drives the batch entry points directly (rather
// than through Discover) so cache hits, duplicate targets, and validation
// errors inside one batch are all exercised.
func TestParallelBatchDirect(t *testing.T) {
	rel := fixedWidthRel(3, 16, 5, 2)
	srv := store.NewServer()
	cipher := crypto.MustNewCipher(crypto.MustNewKey())
	edb, err := Upload(srv, cipher, "t", rel)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewOrEngine(edb)
	defer eng.Close()

	// Pre-materialize attribute 0 so the batch sees a cache hit.
	card0, err := eng.CardinalitySingle(0)
	if err != nil {
		t.Fatal(err)
	}
	cards, err := eng.CardinalitySingleBatch([]int{0, 1, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cards[0] != card0 {
		t.Errorf("batch cache hit: |π_0| = %d, want %d", cards[0], card0)
	}

	a, b, c := relation.SingleAttr(0), relation.SingleAttr(1), relation.SingleAttr(2)
	jobs := []UnionJob{{X1: a, X2: b}, {X1: a, X2: c}, {X1: b, X2: c}}
	got, err := eng.CardinalityUnionBatch(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		want, ok := eng.Cardinality(j.X1.Union(j.X2))
		if !ok || got[i] != want {
			t.Errorf("union %v∪%v: batch=%d cached=%d ok=%v", j.X1, j.X2, got[i], want, ok)
		}
	}

	// A union whose operands were never materialized must fail cleanly —
	// use a fresh engine so nothing is cached.
	eng2 := NewOrEngine(edb)
	defer eng2.Close()
	if _, err := eng2.CardinalityUnionBatch([]UnionJob{
		{X1: a, X2: b},
	}, 4); !errors.Is(err, ErrNotMaterialized) {
		t.Errorf("union of unmaterialized parents: err = %v, want ErrNotMaterialized", err)
	}
}

// --- Validate release regression -------------------------------------------

// TestValidateReleasesPartitions is the regression for the leak where
// Validate materialized partition chains and never released them: server
// object counts must return to their baseline after every Validate call,
// while partitions that existed beforehand must survive.
func TestValidateReleasesPartitions(t *testing.T) {
	rel := fixedWidthRel(3, 16, 9, 2)
	for _, k := range []struct {
		name string
		mk   func(edb *EncryptedDB) Engine
	}{
		{"or", func(edb *EncryptedDB) Engine { return NewOrEngine(edb) }},
		{"sort", func(edb *EncryptedDB) Engine { return NewSortEngine(edb, 1) }},
	} {
		t.Run(k.name, func(t *testing.T) {
			srv := store.NewServer()
			cipher := crypto.MustNewCipher(crypto.MustNewKey())
			edb, err := Upload(srv, cipher, "t", rel)
			if err != nil {
				t.Fatal(err)
			}
			eng := k.mk(edb)
			defer eng.Close()

			// Pre-materialize π_0: Validate must not release state it
			// did not create.
			if _, err := eng.CardinalitySingle(0); err != nil {
				t.Fatal(err)
			}
			base, err := srv.Stats()
			if err != nil {
				t.Fatal(err)
			}

			x := relation.SingleAttr(0).Add(1)
			y := relation.SingleAttr(2)
			if _, err := Validate(eng, x, y); err != nil {
				t.Fatal(err)
			}
			after, err := srv.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if after.Objects != base.Objects {
				t.Errorf("Validate leaked storage: %d objects, want %d", after.Objects, base.Objects)
			}
			if _, ok := eng.Cardinality(relation.SingleAttr(0)); !ok {
				t.Error("Validate released a partition it did not materialize")
			}

			// Trivial dependency (Y ⊆ X) takes the early return; it must
			// still release the chain for X.
			if holds, err := Validate(eng, x, relation.SingleAttr(1)); err != nil || !holds {
				t.Fatalf("trivial Validate = %v, %v; want true, nil", holds, err)
			}
			after, err = srv.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if after.Objects != base.Objects {
				t.Errorf("trivial-path Validate leaked storage: %d objects, want %d", after.Objects, base.Objects)
			}
		})
	}
}
