package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// Engine computes partition cardinalities obliviously at the attribute
// level. The database-level lattice drives it in an order satisfying
// Property 1: every multi-attribute set is requested as the union of two
// previously materialized proper subsets.
//
// Engines retain the materialized partition of each computed set (the
// paper's π_X, as ORAM pairs or a sorted label array) until Release is
// called, because supersets derive their keys from it.
type Engine interface {
	// NumRows returns n, the number of live records.
	NumRows() int
	// CardinalitySingle materializes π_{attr} for a single attribute and
	// returns |π_{attr}| (Algorithm 1 / 3 / 4 with |X| = 1).
	CardinalitySingle(attr int) (int, error)
	// CardinalityUnion materializes π_{x1∪x2} from the materialized
	// partitions of x1 and x2 and returns its cardinality (Algorithm 2 /
	// 3 / 4 with |X| ≥ 2). Both inputs must be materialized and distinct
	// proper subsets of the union.
	CardinalityUnion(x1, x2 relation.AttrSet) (int, error)
	// Cardinality returns the cached |π_x| of a materialized set.
	Cardinality(x relation.AttrSet) (int, bool)
	// Release frees the server-side state backing π_x.
	Release(x relation.AttrSet) error
	// ClientMemoryBytes estimates client-held protocol memory (Fig. 5).
	ClientMemoryBytes() int
	// Close releases all remaining server-side state.
	Close() error
}

// DynamicEngine extends Engine with incremental maintenance: every
// materialized partition is updated in O(polylog n) per operation instead of
// being recomputed (§V, the non-trivial dynamic protocol of Definition 5).
type DynamicEngine interface {
	Engine
	// Insert appends a record with the next free identifier, updating all
	// materialized partitions, and returns its id.
	Insert(row relation.Row) (int, error)
	// Delete removes the record with the given identifier from all
	// materialized partitions (Algorithm 5).
	Delete(id int) error
}

// Common engine errors.
var (
	// ErrNotMaterialized is returned when a requested subset partition has
	// not been computed yet (a Property 1 ordering violation by the
	// caller).
	ErrNotMaterialized = errors.New("core: partition not materialized")
	// ErrBadUnion is returned when CardinalityUnion arguments do not form
	// a valid two-subset cover.
	ErrBadUnion = errors.New("core: invalid union cover")
	// ErrRowWidth is returned by Insert when the row width does not match
	// the schema.
	ErrRowWidth = errors.New("core: row width mismatch")
	// ErrUnknownID is returned by Delete for an id that is not live.
	ErrUnknownID = errors.New("core: unknown record id")
)

// sortSets orders attribute sets by size then value, so every Property 1
// cover precedes its union when engines replay per-set work (insertions).
func sortSets(sets []relation.AttrSet) {
	sort.Slice(sets, func(i, j int) bool {
		si, sj := sets[i].Size(), sets[j].Size()
		if si != sj {
			return si < sj
		}
		return sets[i] < sets[j]
	})
}

// validateUnion checks the Property 1 contract shared by all engines.
func validateUnion(x1, x2 relation.AttrSet) (relation.AttrSet, error) {
	if x1.IsEmpty() || x2.IsEmpty() {
		return 0, fmt.Errorf("%w: empty subset", ErrBadUnion)
	}
	if x1 == x2 {
		return 0, fmt.Errorf("%w: identical subsets %v", ErrBadUnion, x1)
	}
	x := x1.Union(x2)
	if x == x1 || x == x2 {
		return 0, fmt.Errorf("%w: %v and %v are not proper subsets of %v", ErrBadUnion, x1, x2, x)
	}
	return x, nil
}
