// Package core implements the paper's contribution: oblivious partition
// computation at the attribute level (Algorithms 1–5), the set-level
// cardinality check (Theorem 1), and the database-level top-down lattice
// search (TANE-style, with Property 1's partition-friendly guarantee),
// assembled into secure FD discovery protocols:
//
//   - OrEngine  — the ORAM-based method of §IV-C (static + insertions)
//   - ExEngine  — the extended ORAM method of §V (fully dynamic)
//   - SortEngine — the oblivious-sorting method of §IV-D (static, parallel)
//   - PlainEngine — the insecure plaintext comparator used as a baseline
//
// All engines share one Engine interface so the lattice (database level) is
// written once and every protocol inherits identical leakage there.
package core

import (
	"encoding/binary"

	"github.com/oblivfd/oblivfd/internal/crypto"
)

// Attribute compression (§IV-B). Every record's value under an attribute
// set X is compressed to a fixed-width pair (key_X, label_X):
//
//   - |X| = 1: the paper uses r[X] itself as key_X. We instead use an
//     8-byte PRF image of r[X] under the client's key, which keeps every
//     ORAM block and sort record the same size for every column and every
//     dataset (collisions occur with probability ≈ n²/2⁶⁴, negligible at
//     the paper's scales). This strictly reduces what block geometry could
//     reveal and preserves the injective-mapping property the algorithms
//     need.
//   - |X| ≥ 2: key_X = label_{X1}·n + label_{X2} ∈ [n²+n], exactly the
//     paper's construction, where X1 ∪ X2 = X are the two previously
//     computed proper subsets guaranteed by Property 1.
//
// label_X ∈ [n] is assigned densely in first-appearance order by the
// incremental card_X counter of Algorithms 1/2/4.

// keyWidth is the fixed ORAM/sort key width in bytes.
const keyWidth = 8

// labelWidth is the fixed label width in bytes.
const labelWidth = 8

// singleKey compresses a single-attribute cell value to its fixed-width
// key_X via the client's PRF.
func singleKey(c *crypto.Cipher, value string) uint64 {
	return c.PRF([]byte(value))
}

// unionKey builds key_X for |X| ≥ 2 from the labels of the two covering
// subsets. The paper pairs them as label1·n + label2 ∈ [n²+n], which is
// injective while labels stay below n. In the dynamic protocol labels must
// keep growing monotonically across insert/delete cycles (reusing a
// decremented card_X as the next label could collide with a live label and
// corrupt superset keys — see ExEngine), so we use the equivalent
// fixed-base pairing label1·2³² + label2, injective for all labels < 2³².
// Same width (8 bytes), same role, strictly safer.
func unionKey(label1, label2 uint64) uint64 {
	return label1<<32 | label2
}

// maxLabel bounds labels so unionKey stays injective.
const maxLabel = 1 << 32

// encodeUint64 renders a uint64 as a fixed 8-byte big-endian string, the
// canonical key/value encoding used by every engine.
func encodeUint64(v uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return string(b[:])
}

// decodeUint64 reverses encodeUint64 for an 8-byte prefix.
func decodeUint64(s []byte) uint64 {
	return binary.BigEndian.Uint64(s[:8])
}

// idKey encodes a record identifier r[ID] as an ORAM key.
func idKey(id int) string {
	return encodeUint64(uint64(id))
}
