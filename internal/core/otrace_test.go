package core

import (
	"reflect"
	"strings"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/trace"
)

// discoverWithTracer runs a full Discover over a small fixed relation with
// the given tracer (nil = tracing off), returning the canonical
// server-visible trace shape and the discovered FDs.
func discoverWithTracer(t *testing.T, kind engineKind, otr *otrace.Tracer) (trace.Shape, []relation.FD) {
	t.Helper()
	rel := fixedWidthRel(4, 16, 7, 3)
	srv := store.NewServer()
	cipher := crypto.MustNewCipher(crypto.MustNewKey())
	edb, err := Upload(srv, cipher, "t", rel)
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	switch kind {
	case kindOr:
		eng = NewOrEngine(edb)
	case kindEx:
		e, err := NewExEngine(edb)
		if err != nil {
			t.Fatal(err)
		}
		eng = e
	case kindSort:
		eng = NewSortEngine(edb, 1)
	}
	defer eng.Close()

	srv.Trace().Reset()
	srv.Trace().Enable()
	// Workers: 1 pins the serial path, as in the telemetry-neutrality test:
	// full trace shapes are only deterministic without concurrent
	// materialization, and the serial path is where spans are bound.
	res, err := Discover(eng, 4, &Options{Trace: otr, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return trace.ShapeOf(srv.Trace().Events()).Canonical(), res.Minimal
}

// TestTracingDoesNotPerturbTrace is the leakage regression for the
// distributed-tracing layer, the companion to TestTelemetryDoesNotPerturbTrace:
// attaching a span recorder must leave the server-visible access pattern and
// the discovered FDs bit-identical to a tracing-off run. Spans only ever
// observe identities and timings; if starting or ending a span ever issues
// an extra storage operation, this test catches it.
func TestTracingDoesNotPerturbTrace(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind engineKind
	}{
		{"sort", kindSort},
		{"or-oram", kindOr},
		{"ex-oram", kindEx},
	} {
		t.Run(tc.name, func(t *testing.T) {
			offShape, offFDs := discoverWithTracer(t, tc.kind, nil)
			otr := otrace.New(otrace.Config{Service: "test", SampleEvery: 1})
			onShape, onFDs := discoverWithTracer(t, tc.kind, otr)

			if !reflect.DeepEqual(offFDs, onFDs) {
				t.Fatalf("FD sets diverge: off=%v on=%v", offFDs, onFDs)
			}
			if !reflect.DeepEqual(offShape, onShape) {
				t.Fatalf("trace shapes diverge with tracing attached (off=%d events, on=%d events)",
					len(offShape), len(onShape))
			}

			// The traced run must actually have produced a causal tree:
			// one discover root, lattice-level children under it, and
			// candidate spans under the levels.
			recs := otr.Records()
			spans := map[string]otrace.Record{}
			byName := map[string][]otrace.Record{}
			for _, r := range recs {
				spans[r.Span] = r
				byName[r.Name] = append(byName[r.Name], r)
			}
			if n := len(byName["discover"]); n != 1 {
				t.Fatalf("recorded %d discover roots, want 1", n)
			}
			root := byName["discover"][0]
			if root.Parent != "" {
				t.Errorf("discover root has parent %q", root.Parent)
			}
			if len(byName["lattice/level-01"]) == 0 {
				t.Errorf("no lattice/level-01 spans; names: %v", names(recs))
			}
			for name, rs := range byName {
				if !strings.HasPrefix(name, "lattice/level-") {
					continue
				}
				for _, r := range rs {
					if r.Trace != root.Trace || r.Parent != root.Span {
						t.Errorf("%s is not a child of the discover root", name)
					}
				}
			}
			if len(byName["candidate/single"]) != 4 {
				t.Errorf("candidate/single count = %d, want 4", len(byName["candidate/single"]))
			}
			for _, r := range byName["candidate/single"] {
				parent, ok := spans[r.Parent]
				if !ok || !strings.HasPrefix(parent.Name, "lattice/level-") {
					t.Errorf("candidate/single parent is %q, want a lattice level", parentName(spans, r))
				}
			}
			if len(byName["candidate/union"]) == 0 {
				t.Errorf("no candidate/union spans recorded")
			}
		})
	}
}

func names(recs []otrace.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Name
	}
	return out
}

func parentName(spans map[string]otrace.Record, r otrace.Record) string {
	if p, ok := spans[r.Parent]; ok {
		return p.Name
	}
	return "<missing " + r.Parent + ">"
}
