package core

import (
	"fmt"
	"sync/atomic"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// DetEngine reproduces the security level of the paper's main prior work
// (Dong & Wang, ICDE 2017 — the paper's [14]): FD discovery over
// *deterministically* encrypted cells. Equal plaintexts produce equal
// ciphertexts, so the partition of any column is computable by anyone who
// can read the stored ciphertexts — including the server. Discovery is fast
// (no ORAM, no oblivious sorting; one linear grouping pass per attribute
// set), but the server learns the full frequency histogram of every column,
// the leakage the paper calls "extremely dangerous" (§I-B) and which
// frequency-analysis attacks exploit (see TestFrequencyAttack…).
//
// It exists as the insecure-but-fast comparator the secure protocols
// replace. DO NOT use it for sensitive data.
type DetEngine struct {
	edb      *EncryptedDB
	instance string
	n        int
	sets     map[relation.AttrSet]*detState
	// detTags caches the per-record deterministic tag of each
	// materialized set, exactly the view the server has.
	tags map[relation.AttrSet][]uint64
}

type detState struct {
	labels []uint64
	card   uint64
}

var detEngines atomic.Int64

// NewDetEngine builds a deterministic-encryption engine over an uploaded
// database. The EncryptedDB's cells stay semantically secure; the engine
// additionally derives and stores per-cell deterministic tags on the
// server, which is what creates the frequency leakage (Dong & Wang encrypt
// the cells themselves deterministically; storing tags beside semantically
// secure cells leaks the same information and keeps the upload format
// shared with the other engines).
func NewDetEngine(edb *EncryptedDB) *DetEngine {
	return &DetEngine{
		edb:      edb,
		instance: fmt.Sprintf("det%d", detEngines.Add(1)),
		n:        edb.NumRows(),
		sets:     make(map[relation.AttrSet]*detState),
		tags:     make(map[relation.AttrSet][]uint64),
	}
}

// NumRows implements Engine.
func (e *DetEngine) NumRows() int { return e.n }

// tagArrayName is the server object holding a set's deterministic tags.
func (e *DetEngine) tagArrayName(x relation.AttrSet) string {
	return fmt.Sprintf("%s:%x:TAGS", e.instance, uint64(x))
}

// materialize publishes the tag column to the server (the leakage!) and
// groups it into a partition.
func (e *DetEngine) materialize(x relation.AttrSet, tags []uint64) (*detState, error) {
	// Publish: the server stores the deterministic tags in the clear.
	// (They are PRF images, but equal values collide — that equality
	// pattern IS the frequency leakage.)
	name := e.tagArrayName(x)
	if err := e.edb.svc.CreateArray(name, len(tags)); err != nil {
		return nil, fmt.Errorf("core: publishing tags for %v: %w", x, err)
	}
	idx := make([]int64, len(tags))
	cts := make([][]byte, len(tags))
	for i, tag := range tags {
		idx[i] = int64(i)
		cts[i] = []byte(encodeUint64(tag))
	}
	if err := e.edb.svc.WriteCells(name, idx, cts); err != nil {
		return nil, fmt.Errorf("core: publishing tags for %v: %w", x, err)
	}

	// Group — this is exactly the computation the server could run by
	// itself on the published tags.
	st := &detState{labels: make([]uint64, len(tags))}
	seen := make(map[uint64]uint64, len(tags))
	for i, tag := range tags {
		lbl, ok := seen[tag]
		if !ok {
			lbl = st.card
			st.card++
			seen[tag] = lbl
		}
		st.labels[i] = lbl
	}
	e.tags[x] = tags
	return st, nil
}

// CardinalitySingle implements Engine.
func (e *DetEngine) CardinalitySingle(attr int) (int, error) {
	x := relation.SingleAttr(attr)
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	tags := make([]uint64, e.n)
	for i := 0; i < e.n; i++ {
		v, err := e.edb.CellValue(i, attr)
		if err != nil {
			return 0, err
		}
		tags[i] = singleKey(e.edb.cipher, v) // deterministic PRF tag
	}
	st, err := e.materialize(x, tags)
	if err != nil {
		return 0, err
	}
	e.sets[x] = st
	return int(st.card), nil
}

// CardinalityUnion implements Engine.
func (e *DetEngine) CardinalityUnion(x1, x2 relation.AttrSet) (int, error) {
	x, err := validateUnion(x1, x2)
	if err != nil {
		return 0, err
	}
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	st1, ok := e.sets[x1]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x1)
	}
	st2, ok := e.sets[x2]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x2)
	}
	tags := make([]uint64, e.n)
	for i := 0; i < e.n; i++ {
		tags[i] = unionKey(st1.labels[i], st2.labels[i])
	}
	st, err := e.materialize(x, tags)
	if err != nil {
		return 0, err
	}
	e.sets[x] = st
	return int(st.card), nil
}

// Cardinality implements Engine.
func (e *DetEngine) Cardinality(x relation.AttrSet) (int, bool) {
	st, ok := e.sets[x]
	if !ok {
		return 0, false
	}
	return int(st.card), true
}

// PublishedTags returns the deterministic tags of a materialized set — the
// adversary's view of that column. Frequency-attack tests consume this.
func (e *DetEngine) PublishedTags(x relation.AttrSet) ([]uint64, bool) {
	tags, ok := e.tags[x]
	if !ok {
		return nil, false
	}
	return append([]uint64(nil), tags...), true
}

// Release implements Engine.
func (e *DetEngine) Release(x relation.AttrSet) error {
	if _, ok := e.sets[x]; !ok {
		return fmt.Errorf("%w: %v", ErrNotMaterialized, x)
	}
	if err := e.edb.svc.Delete(e.tagArrayName(x)); err != nil {
		return err
	}
	delete(e.sets, x)
	delete(e.tags, x)
	return nil
}

// ClientMemoryBytes implements Engine.
func (e *DetEngine) ClientMemoryBytes() int {
	total := 0
	for _, st := range e.sets {
		total += 8 * len(st.labels)
	}
	return total
}

// Close implements Engine.
func (e *DetEngine) Close() error {
	for x := range e.sets {
		if err := e.Release(x); err != nil {
			return err
		}
	}
	return nil
}
