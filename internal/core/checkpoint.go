package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/oram"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// Client-side checkpointing. A Checkpoint bundles everything the client
// needs to continue a discovery run after a crash: the encryption key, the
// engine's per-set ORAM client states (stash + position map — the secrets),
// and the lattice traversal frontier. It is written to a client-local file
// and NEVER crosses the wire: the server-side counterpart is just the
// recovery epoch number passed to store.Service.Checkpoint, so the leakage
// profile is unchanged (the adversary learns that — and when — the client
// checkpointed, which is timing it already observes).
//
// Consistency contract: a checkpoint at epoch E is valid only against a
// server whose storage is exactly as it was when E was marked. PathORAM
// reads mutate the server (leaf remap + path rewrite), so resuming an old
// client state against a newer server state silently corrupts the
// partitions. Resume therefore verifies Stats().Epoch == E and
// Stats().MutationsSinceEpoch == 0 before touching anything.

// Checkpoint sentinels.
var (
	// ErrCorruptCheckpoint marks a checkpoint file that cannot be restored
	// (truncated, bit-flipped, or semantically inconsistent).
	ErrCorruptCheckpoint = errors.New("core: corrupt checkpoint")
	// ErrEpochMismatch is returned by Resume when the server's storage
	// state does not match the checkpoint's epoch — either a different
	// epoch was marked last, or mutations were applied after the mark.
	ErrEpochMismatch = errors.New("core: server state does not match checkpoint epoch")
)

// checkpointMagic identifies the framed checkpoint format.
var checkpointMagic = [8]byte{'O', 'F', 'D', 'C', 'K', 'P', 'T', '1'}

const maxCheckpointPayload = 1 << 40

// EDBState is the serializable client handle to an uploaded database. It
// carries the encryption key — the reason checkpoint files must stay on the
// client.
type EDBState struct {
	Name     string
	Attrs    []string
	N        int
	Capacity int
	Key      crypto.Key
}

// State captures the database handle.
func (e *EncryptedDB) State() *EDBState {
	return &EDBState{
		Name:     e.name,
		Attrs:    e.schema.Names(),
		N:        e.n,
		Capacity: e.capacity,
		Key:      e.cipher.Key(),
	}
}

// AttachEDB rebuilds a database handle over existing server-side column
// arrays (no creation, no upload).
func AttachEDB(svc store.Service, st *EDBState) (*EncryptedDB, error) {
	schema, err := relation.NewSchema(st.Attrs...)
	if err != nil {
		return nil, fmt.Errorf("%w: schema: %v", ErrCorruptCheckpoint, err)
	}
	if st.N < 0 || st.Capacity < 1 || st.N > st.Capacity {
		return nil, fmt.Errorf("%w: %d rows in capacity %d", ErrCorruptCheckpoint, st.N, st.Capacity)
	}
	cipher, err := crypto.NewCipher(st.Key)
	if err != nil {
		return nil, err
	}
	return &EncryptedDB{
		svc:      svc,
		cipher:   cipher,
		name:     st.Name,
		schema:   schema,
		n:        st.N,
		capacity: st.Capacity,
	}, nil
}

// SetState is the checkpoint form of one materialized attribute set:
// cardinality, covering subsets, and the client states of its two ORAMs
// (KL/IL for OrEngine, KLF/IKL for ExEngine).
type SetState struct {
	Set       relation.AttrSet
	Card      uint64
	NextLabel uint64 // ExEngine's monotone label source; unused by OrEngine
	Cover     [2]relation.AttrSet
	Primary   *oram.StoreState // KL or KLF
	Secondary *oram.StoreState // IL or IKL
}

// Engine kind tags used in EngineState.Kind.
const (
	engineKindOr = "or-oram"
	engineKindEx = "ex-oram"
)

// EngineState is the serializable client state of an attribute-level engine.
type EngineState struct {
	Kind     string // engineKindOr or engineKindEx
	Instance string // ORAM name prefix; preserved so names keep matching
	Seq      int64  // ORAM-name counter; preserved so new names stay unique
	N        int    // OrEngine: live row count
	LiveIDs  []int  // ExEngine: live record ids, ascending
	Sets     []SetState
}

// CheckpointableEngine is implemented by engines that can capture and later
// resume their client state.
type CheckpointableEngine interface {
	Engine
	CheckpointState() *EngineState
}

// ResumeEngine rebuilds whichever engine the state describes, attached to
// the given database handle.
func ResumeEngine(edb *EncryptedDB, st *EngineState) (Engine, error) {
	switch st.Kind {
	case engineKindOr:
		return ResumeOrEngine(edb, st)
	case engineKindEx:
		return ResumeExEngine(edb, st)
	default:
		return nil, fmt.Errorf("%w: unknown engine kind %q", ErrCorruptCheckpoint, st.Kind)
	}
}

// factoryFromSets infers the ORAM construction for post-resume
// materializations from the checkpointed stores: every set uses the same
// construction, so the first one decides. nil means the default
// (oram.PathFactory).
func factoryFromSets(sets []SetState) oram.Factory {
	if len(sets) > 0 && sets[0].Primary != nil && sets[0].Primary.Linear != nil {
		return oram.LinearFactory
	}
	return nil
}

// LatticeState is the serializable frontier of a Discover run, captured at
// a level boundary: the sets whose partitions are live, the pruning state
// (C⁺), and the results so far. NextLevel is the loop index the resumed run
// starts at.
type LatticeState struct {
	M                int
	NextLevel        int
	Level            []relation.AttrSet
	PrevLevel        []relation.AttrSet
	CPlus            map[relation.AttrSet]relation.AttrSet
	Minimal          []relation.FD
	Cardinalities    map[relation.AttrSet]int
	SetsMaterialized int
	Checks           int
	MaxLHS           int
	KeepPartitions   bool
}

// Checkpoint is a complete client-side recovery point. Epoch is the value
// passed to store.Service.Checkpoint at capture time (the completed lattice
// level count); Resume verifies the server still sits at exactly that
// state.
type Checkpoint struct {
	Epoch   int64
	EDB     *EDBState
	Engine  *EngineState
	Lattice *LatticeState
}

// WriteCheckpoint serializes a checkpoint with the same CRC framing as
// server snapshots, so truncation and corruption are always detected.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cp); err != nil {
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	header := make([]byte, 8+8+4)
	copy(header, checkpointMagic[:])
	binary.LittleEndian.PutUint64(header[8:], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(header[16:], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("core: writing checkpoint header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: writing checkpoint payload: %w", err)
	}
	return nil
}

// ReadCheckpoint parses and validates a framed checkpoint. Any failure —
// short read, bad magic, CRC mismatch, decode error — wraps
// ErrCorruptCheckpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	header := make([]byte, 8+8+4)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrCorruptCheckpoint, err)
	}
	if !bytes.Equal(header[:8], checkpointMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptCheckpoint, header[:8])
	}
	plen := binary.LittleEndian.Uint64(header[8:])
	want := binary.LittleEndian.Uint32(header[16:])
	if plen > maxCheckpointPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptCheckpoint, plen)
	}
	// Incremental read: a corrupted length field must not provoke a huge
	// up-front allocation.
	var payloadBuf bytes.Buffer
	if n, err := io.CopyN(&payloadBuf, r, int64(plen)); err != nil || n != int64(plen) {
		return nil, fmt.Errorf("%w: short payload (%d of %d bytes): %v", ErrCorruptCheckpoint, n, plen, err)
	}
	payload := payloadBuf.Bytes()
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrCorruptCheckpoint, got, want)
	}
	cp := new(Checkpoint)
	if err := safeCheckpointDecode(payload, cp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}
	if cp.EDB == nil || cp.Engine == nil || cp.Lattice == nil {
		return nil, fmt.Errorf("%w: missing section", ErrCorruptCheckpoint)
	}
	return cp, nil
}

func safeCheckpointDecode(data []byte, cp *Checkpoint) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("gob decode panicked: %v", p)
		}
	}()
	return gob.NewDecoder(bytes.NewReader(data)).Decode(cp)
}

// WriteCheckpointFile writes a checkpoint atomically (temp + fsync +
// rename) so a crash mid-write can never leave a torn file where a previous
// good checkpoint was.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := WriteCheckpoint(tmp, cp); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint from a file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}

// VerifyEpoch checks the resume-consistency contract against a live
// service: the server's last-marked epoch must equal the checkpoint's and
// no mutation may have been applied since. Works over any transport because
// both values travel in Stats.
func VerifyEpoch(svc store.Service, epoch int64) error {
	st, err := svc.Stats()
	if err != nil {
		return err
	}
	if st.Epoch != epoch || st.MutationsSinceEpoch != 0 {
		// A stale or rolled-back snapshot is an integrity event, not just a
		// bookkeeping mismatch: wrap both sentinels so callers matching
		// either ErrEpochMismatch or store.ErrIntegrity see it.
		return fmt.Errorf("%w: checkpoint epoch %d, server epoch %d with %d mutations since: %w",
			ErrEpochMismatch, epoch, st.Epoch, st.MutationsSinceEpoch, store.ErrIntegrity)
	}
	return nil
}
