package core

import (
	"fmt"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/trace"
)

// fixedWidthRel builds a relation whose cells all have the same byte length
// (cell lengths are part of the accepted Size leakage, so obliviousness is
// defined over databases of equal size *including* cell widths).
func fixedWidthRel(m, n int, seed int64, distinct int) *relation.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("C%d", i)
	}
	rel := relation.New(relation.MustNewSchema(names...))
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		row := make(relation.Row, m)
		for j := range row {
			row[j] = fmt.Sprintf("%06d", int(next())%distinct)
		}
		if err := rel.Append(row); err != nil {
			panic(err)
		}
	}
	return rel
}

// traceOfPartitionRun records the server-visible trace of materializing one
// single-attribute partition and one pair partition with the given engine
// kind, on the given relation. ORAM leaf choices are seeded identically; the
// shapes must match regardless because ShapeOf strips leaves.
type engineKind int

const (
	kindOr engineKind = iota
	kindEx
	kindSort
)

func traceOfPartitionRun(t *testing.T, kind engineKind, rel *relation.Relation) trace.Shape {
	t.Helper()
	srv := store.NewServer()
	cipher := crypto.MustNewCipher(crypto.MustNewKey())
	edb, err := Upload(srv, cipher, "t", rel)
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	switch kind {
	case kindOr:
		eng = NewOrEngine(edb)
	case kindEx:
		eng, err = NewExEngine(edb)
		if err != nil {
			t.Fatal(err)
		}
	case kindSort:
		eng = NewSortEngine(edb, 1) // sequential for deterministic ordering
	}
	defer eng.Close()

	srv.Trace().Reset()
	srv.Trace().Enable()
	if _, err := eng.CardinalitySingle(0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CardinalitySingle(1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1)); err != nil {
		t.Fatal(err)
	}
	return trace.ShapeOf(srv.Trace().Events()).Canonical()
}

// TestPartitionTraceShapeDataIndependent is the Definition 2 experiment:
// same-size databases with very different value distributions must produce
// identical server-visible trace shapes for every secure engine. This is
// the structural analogue of the paper's Table II (which tests timing and
// storage because Python cannot introspect traces).
func TestPartitionTraceShapeDataIndependent(t *testing.T) {
	const m, n = 3, 32
	rels := []*relation.Relation{
		fixedWidthRel(m, n, 1, 1000000), // near-uniform, all distinct
		fixedWidthRel(m, n, 2, 2),       // two values, heavy collisions
		fixedWidthRel(m, n, 3, 1),       // constant columns
	}
	for _, kind := range []struct {
		name string
		k    engineKind
	}{{"or-oram", kindOr}, {"ex-oram", kindEx}, {"sort", kindSort}} {
		t.Run(kind.name, func(t *testing.T) {
			ref := traceOfPartitionRun(t, kind.k, rels[0])
			for i, rel := range rels[1:] {
				got := traceOfPartitionRun(t, kind.k, rel)
				if !ref.Equal(got) {
					t.Errorf("trace shape differs for distribution %d:\n%s", i+1, ref.Diff(got))
				}
			}
		})
	}
}

// TestDynamicOpTraceShapeDataIndependent checks that Ex-ORAM insertions and
// deletions are trace-indistinguishable across data distributions, and that
// the paper's optional insert/delete indistinguishability (§V-C) holds: an
// insertion trace and a deletion trace have the same shape once partitions
// are materialized.
func TestDynamicOpTraceShapeDataIndependent(t *testing.T) {
	run := func(seed int64, distinct int, doDelete bool) trace.Shape {
		rel := fixedWidthRel(2, 8, seed, distinct)
		srv := store.NewServer()
		edb, err := UploadWithCapacity(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", rel, 16)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewExEngine(edb)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		materializeAll(t, eng, 2)

		srv.Trace().Reset()
		srv.Trace().Enable()
		if doDelete {
			if err := eng.Delete(3); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := eng.Insert(relation.Row{"111111", "222222"}); err != nil {
				t.Fatal(err)
			}
		}
		return trace.ShapeOf(srv.Trace().Events()).Canonical()
	}

	insA := run(1, 1000000, false)
	insB := run(2, 2, false)
	if !insA.Equal(insB) {
		t.Errorf("insertion traces differ across distributions:\n%s", insA.Diff(insB))
	}
	delA := run(3, 1000000, true)
	delB := run(4, 2, true)
	if !delA.Equal(delB) {
		t.Errorf("deletion traces differ across distributions:\n%s", delA.Diff(delB))
	}
}

// TestDeletionBranchesIndistinguishable: deleting a record whose key is
// shared (frequency > 1) and one whose key is unique (frequency = 1) take
// different client-side branches in Algorithm 5 but must produce identical
// server-visible shapes, because ORAM Remove ≡ Write.
func TestDeletionBranchesIndistinguishable(t *testing.T) {
	build := func(rows []relation.Row) (*ExEngine, *store.Server) {
		schema := relation.MustNewSchema("A0")
		rel := relation.MustFromRows(schema, rows)
		srv := store.NewServer()
		edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", rel)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewExEngine(edb)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.CardinalitySingle(0); err != nil {
			t.Fatal(err)
		}
		return eng, srv
	}

	// Record 0 shares its value with record 1 → frequency branch.
	engShared, srvShared := build([]relation.Row{{"v1"}, {"v1"}, {"v2"}})
	srvShared.Trace().Reset()
	srvShared.Trace().Enable()
	if err := engShared.Delete(0); err != nil {
		t.Fatal(err)
	}
	shared := trace.ShapeOf(srvShared.Trace().Events()).Canonical()
	engShared.Close()

	// Record 0 is unique → removal branch.
	engUnique, srvUnique := build([]relation.Row{{"u1"}, {"u2"}, {"u3"}})
	srvUnique.Trace().Reset()
	srvUnique.Trace().Enable()
	if err := engUnique.Delete(0); err != nil {
		t.Fatal(err)
	}
	unique := trace.ShapeOf(srvUnique.Trace().Events()).Canonical()
	engUnique.Close()

	if !shared.Equal(unique) {
		t.Errorf("deletion branches distinguishable:\n%s", shared.Diff(unique))
	}
}

// TestFullDiscoveryTraceEquality is the end-to-end security statement: two
// databases with equal Size(DB) and equal FD(DB) — the entire allowed
// leakage — must produce identical server-visible trace shapes for a full
// discovery run, reveals included.
func TestFullDiscoveryTraceEquality(t *testing.T) {
	// Same size, same FD structure (all columns near-distinct ⇒ same
	// lattice), different contents.
	relA := fixedWidthRel(3, 24, 101, 1_000_000)
	relB := fixedWidthRel(3, 24, 202, 1_000_000)

	run := func(rel *relation.Relation, kind engineKind) trace.Shape {
		srv := store.NewServer()
		edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", rel)
		if err != nil {
			t.Fatal(err)
		}
		var eng Engine
		switch kind {
		case kindOr:
			eng = NewOrEngine(edb)
		case kindEx:
			eng, err = NewExEngine(edb)
			if err != nil {
				t.Fatal(err)
			}
		case kindSort:
			eng = NewSortEngine(edb, 1)
		}
		defer eng.Close()
		srv.Trace().Reset()
		srv.Trace().Enable()
		_, err = Discover(eng, rel.NumAttrs(), &Options{
			// Pin the serial path: this test compares full (interleaved)
			// trace shapes, which are only deterministic with one worker.
			Workers: 1,
			Reveal: func(fd relation.FD, holds bool) {
				v := int64(0)
				if holds {
					v = 1
				}
				_ = srv.Reveal("fd:"+fd.String(), v)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace.ShapeOf(srv.Trace().Events()).Canonical()
	}

	// Sanity: the two relations must actually have identical FD sets, or
	// the divergence would be allowed leakage, not a bug.
	fdsA, err := Discover(NewPlainEngine(relA), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	fdsB, err := Discover(NewPlainEngine(relB), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.FDSetEqual(fdsA.Minimal, fdsB.Minimal) {
		t.Skipf("seeds produced different FD sets (%v vs %v); pick new seeds", fdsA.Minimal, fdsB.Minimal)
	}

	for _, kind := range []struct {
		name string
		k    engineKind
	}{{"or-oram", kindOr}, {"ex-oram", kindEx}, {"sort", kindSort}} {
		t.Run(kind.name, func(t *testing.T) {
			sA := run(relA, kind.k)
			sB := run(relB, kind.k)
			if !sA.Equal(sB) {
				t.Errorf("full-discovery traces differ:\n%s", sA.Diff(sB))
			}
		})
	}
}

// TestDynamicAccessCounts pins the paper's §VII-E cost model: with one
// two-attribute partition (plus its two singles) materialized, an insertion
// performs 5 ORAM accesses for the pair (2 subset-label reads + the
// 3-access Algorithm 4 step) and 3 per single; a deletion performs 4 per
// set (Algorithm 5). Each access is one ReadPath + one WritePath.
func TestDynamicAccessCounts(t *testing.T) {
	rel := fixedWidthRel(2, 8, 5, 4)
	srv := store.NewServer()
	edb, err := UploadWithCapacity(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", rel, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewExEngine(edb)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	materializeAll(t, eng, 2) // sets {0}, {1}, {0,1}

	srv.Trace().Reset()
	id, err := eng.Insert(relation.Row{"111111", "222222"})
	if err != nil {
		t.Fatal(err)
	}
	// Insert: 3 + 3 (singles) + 5 (pair) = 11 accesses.
	if got := srv.Trace().Count(trace.OpReadPath); got != 11 {
		t.Errorf("insert path reads = %d, want 11", got)
	}
	if got := srv.Trace().Count(trace.OpWritePath); got != 11 {
		t.Errorf("insert path writes = %d, want 11", got)
	}

	srv.Trace().Reset()
	if err := eng.Delete(id); err != nil {
		t.Fatal(err)
	}
	// Delete: 4 accesses per set × 3 sets = 12.
	if got := srv.Trace().Count(trace.OpReadPath); got != 12 {
		t.Errorf("delete path reads = %d, want 12", got)
	}
	if got := srv.Trace().Count(trace.OpWritePath); got != 12 {
		t.Errorf("delete path writes = %d, want 12", got)
	}
}

// TestOrStepAccessCountFixed: each Algorithm 1 iteration costs exactly one
// cell read plus three ORAM accesses (1 read + 2 writes), independent of
// whether the key repeats.
func TestOrStepAccessCountFixed(t *testing.T) {
	rel := fixedWidthRel(1, 16, 9, 2)
	srv := store.NewServer()
	edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", rel)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewOrEngine(edb)
	defer eng.Close()
	srv.Trace().Reset()
	if _, err := eng.CardinalitySingle(0); err != nil {
		t.Fatal(err)
	}
	n := int64(rel.NumRows())
	if got := srv.Trace().Count(trace.OpReadCell); got != n {
		t.Errorf("cell reads = %d, want %d", got, n)
	}
	if got := srv.Trace().Count(trace.OpReadPath); got != 3*n {
		t.Errorf("path reads = %d, want %d (3 per record)", got, 3*n)
	}
	if got := srv.Trace().Count(trace.OpWritePath); got != 3*n {
		t.Errorf("path writes = %d, want %d", got, 3*n)
	}
}
