package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// This file demonstrates WHY the paper insists on minimal leakage (§I-B,
// §VIII): the frequency information revealed by its predecessor's approach
// (deterministic tags, DetEngine) enables the classic frequency-analysis
// attack of Naveed–Kamara–Wright (the paper's [39]): an adversary who knows
// an auxiliary distribution of the column (e.g. public census statistics)
// matches the observed tag frequencies against it and recovers plaintexts
// without any key. The same attack against the oblivious engines' server
// state recovers nothing, because every stored ciphertext is unique.

// skewedColumn builds a single-attribute relation whose values follow a
// heavily skewed (roughly Zipfian) distribution, like real categorical
// data.
func skewedColumn(n int, seed int64) (*relation.Relation, []string) {
	values := []string{
		"White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo",
		"Other-A", "Other-B", "Other-C", "Other-D",
	}
	weights := []int{800, 96, 31, 10, 5, 3, 2, 1}
	rng := rand.New(rand.NewSource(seed))
	rel := relation.New(relation.MustNewSchema("race"))
	total := 0
	for _, w := range weights {
		total += w
	}
	for i := 0; i < n; i++ {
		x := rng.Intn(total)
		for j, w := range weights {
			if x < w {
				if err := rel.Append(relation.Row{values[j]}); err != nil {
					panic(err)
				}
				break
			}
			x -= w
		}
	}
	return rel, values
}

// frequencyAttack sorts observed tags and auxiliary values by frequency and
// matches rank-for-rank — the simplest form of the attack, already
// devastating on skewed data.
func frequencyAttack(tags []uint64, auxiliary map[string]int) map[uint64]string {
	counts := make(map[uint64]int)
	for _, tag := range tags {
		counts[tag]++
	}
	type tf struct {
		tag uint64
		n   int
	}
	observed := make([]tf, 0, len(counts))
	for tag, n := range counts {
		observed = append(observed, tf{tag, n})
	}
	sort.Slice(observed, func(i, j int) bool {
		if observed[i].n != observed[j].n {
			return observed[i].n > observed[j].n
		}
		return observed[i].tag < observed[j].tag
	})
	type vf struct {
		value string
		n     int
	}
	aux := make([]vf, 0, len(auxiliary))
	for v, n := range auxiliary {
		aux = append(aux, vf{v, n})
	}
	sort.Slice(aux, func(i, j int) bool {
		if aux[i].n != aux[j].n {
			return aux[i].n > aux[j].n
		}
		return aux[i].value < aux[j].value
	})
	guess := make(map[uint64]string)
	for i := 0; i < len(observed) && i < len(aux); i++ {
		guess[observed[i].tag] = aux[i].value
	}
	return guess
}

// TestFrequencyAttackBreaksDeterministicTags: with a matching auxiliary
// distribution, the attack recovers the overwhelming majority of cells
// protected only by deterministic tags.
func TestFrequencyAttackBreaksDeterministicTags(t *testing.T) {
	const n = 2000
	rel, _ := skewedColumn(n, 1)
	srv := store.NewServer()
	edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "det", rel)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewDetEngine(edb)
	defer eng.Close()
	if _, err := eng.CardinalitySingle(0); err != nil {
		t.Fatal(err)
	}
	tags, ok := eng.PublishedTags(relation.SingleAttr(0))
	if !ok {
		t.Fatal("tags not published")
	}

	// Auxiliary knowledge: the adversary knows the distribution from a
	// *different* sample of the same population.
	auxRel, _ := skewedColumn(n, 999)
	auxiliary := make(map[string]int)
	for i := 0; i < auxRel.NumRows(); i++ {
		auxiliary[auxRel.Value(i, 0)]++
	}

	guess := frequencyAttack(tags, auxiliary)
	recovered := 0
	for i, tag := range tags {
		if guess[tag] == rel.Value(i, 0) {
			recovered++
		}
	}
	rate := float64(recovered) / float64(n)
	t.Logf("frequency attack recovered %.1f%% of %d deterministic cells", 100*rate, n)
	if rate < 0.9 {
		t.Errorf("attack recovered only %.1f%%; the leakage demonstration is broken", 100*rate)
	}
}

// TestFrequencyAttackFailsAgainstObliviousEngines: the same adversary
// looking at the oblivious protocols' server state sees no repeated
// ciphertexts at all — every stored blob is unique — so frequency analysis
// has nothing to grab.
func TestFrequencyAttackFailsAgainstObliviousEngines(t *testing.T) {
	const n = 256
	rel, _ := skewedColumn(n, 2)

	for _, kind := range []struct {
		name string
		make func(edb *EncryptedDB) Engine
	}{
		{"or-oram", func(edb *EncryptedDB) Engine { return NewOrEngine(edb) }},
		{"sort", func(edb *EncryptedDB) Engine { return NewSortEngine(edb, 1) }},
	} {
		t.Run(kind.name, func(t *testing.T) {
			srv := store.NewServer()
			edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "obl", rel)
			if err != nil {
				t.Fatal(err)
			}
			eng := kind.make(edb)
			defer eng.Close()
			if _, err := eng.CardinalitySingle(0); err != nil {
				t.Fatal(err)
			}

			// The adversary's snapshot: every stored byte string.
			var snap struct{ blobs map[string]int }
			snap.blobs = make(map[string]int)
			collect := func(name string, count int) {
				for i := 0; i < count; i++ {
					cts, err := srv.ReadCells(name, []int64{int64(i)})
					if err != nil {
						return
					}
					if len(cts[0]) > 0 {
						snap.blobs[string(cts[0])]++
					}
				}
			}
			collect("db:obl:col0", n)
			for blob, count := range snap.blobs {
				if count > 1 {
					t.Errorf("repeated ciphertext (%d bytes) appears %d times", len(blob), count)
				}
			}
			// Full server state: no byte-identical non-empty blobs
			// anywhere (cells, buckets, anything).
			if dup := duplicateBlobCount(t, srv); dup > 0 {
				t.Errorf("%d duplicate blobs in full server state", dup)
			}
		})
	}
}

// duplicateBlobCount snapshots the server and counts repeated non-empty
// byte strings across all storage.
func duplicateBlobCount(t *testing.T, srv *store.Server) int {
	t.Helper()
	var snapBuf bytesBuffer
	if err := srv.SaveSnapshot(&snapBuf); err != nil {
		t.Fatal(err)
	}
	// The snapshot serializes every stored blob. Rather than parse gob,
	// count repeated fixed-size windows: ciphertexts are ≥ 24 bytes of
	// high-entropy data, so identical aligned 24-byte windows only arise
	// from identical blobs (a conservative detector).
	const window = 24
	seen := make(map[string]int)
	raw := snapBuf.data
	dups := 0
	for i := 0; i+window <= len(raw); i += window {
		w := string(raw[i : i+window])
		seen[w]++
	}
	for _, c := range seen {
		if c > 1 {
			dups += c - 1
		}
	}
	return dups
}

// bytesBuffer is a minimal io.ReadWriter over a byte slice.
type bytesBuffer struct {
	data []byte
	off  int
}

func (b *bytesBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *bytesBuffer) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, fmt.Errorf("EOF")
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

// TestDetEngineMatchesOracle: leaky, but correct — the comparator must
// produce the right answers to be a fair baseline.
func TestDetEngineMatchesOracle(t *testing.T) {
	rel := randomRel(4, 30, 3, 23)
	srv := store.NewServer()
	edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "det2", rel)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewDetEngine(edb)
	defer eng.Close()
	for a := 0; a < 4; a++ {
		got, err := eng.CardinalitySingle(a)
		if err != nil {
			t.Fatal(err)
		}
		if want := relation.PartitionOf(rel, relation.SingleAttr(a)).Classes; got != want {
			t.Errorf("|π_%d| = %d, want %d", a, got, want)
		}
	}
	got, err := eng.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := relation.PartitionOf(rel, relation.NewAttrSet(0, 1)).Classes; got != want {
		t.Errorf("union = %d, want %d", got, want)
	}
	// Full discovery agrees with the oracle too.
	srv2 := store.NewServer()
	edb2, err := Upload(srv2, crypto.MustNewCipher(crypto.MustNewKey()), "det3", rel)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewDetEngine(edb2)
	defer eng2.Close()
	res, err := Discover(eng2, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Discover(NewPlainEngine(rel), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !relation.FDSetEqual(res.Minimal, res2.Minimal) {
		t.Errorf("DetEngine FDs = %v, want %v", res.Minimal, res2.Minimal)
	}
}
