package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// describeIntegrity annotates an engine error that originated in failed
// verification with the lattice coordinates that tripped it, so the operator
// sees *where* in the search the store returned tampered data. Non-integrity
// errors pass through unchanged.
func describeIntegrity(err error, level int, x relation.AttrSet) error {
	if errors.Is(err, store.ErrIntegrity) {
		return fmt.Errorf("core: integrity failure at lattice level %d, attribute set %v: %w", level, x, err)
	}
	return err
}

// describeIntegrityLevel is describeIntegrity for batched materializations,
// where the failing set is not known at this layer (the engines wrap their
// own per-set context into the error).
func describeIntegrityLevel(err error, level int) error {
	if errors.Is(err, store.ErrIntegrity) {
		return fmt.Errorf("core: integrity failure at lattice level %d: %w", level, err)
	}
	return err
}

// This file is the database level (§IV-A): the top-down levelwise search of
// TANE (Huhtala et al., the paper's [23]) over the attribute-set containment
// lattice, with its C⁺ candidate pruning and key pruning. The traversal
// order is a deterministic function of (m, n, the discovered FDs) — exactly
// the allowed leakage L(DB) — and every node's partition is requested as
// the union of two previously materialized subsets, which is Property 1.
//
// The set level is the two lines marked "set-level check" below: the client
// compares two cardinalities it alone can decrypt and (optionally) reveals
// only the boolean to the server.

// Options configures Discover.
type Options struct {
	// KeepPartitions retains every materialized partition on the server
	// instead of releasing levels as the search ascends. Required when the
	// engine will be used dynamically (insert/delete) afterwards.
	KeepPartitions bool
	// MaxLHS bounds the size of left-hand sides searched; 0 means no
	// bound (search the full lattice).
	MaxLHS int
	// Reveal, if non-nil, is invoked for every set-level decision with
	// the candidate FD and whether it holds — the protocol's only
	// disclosure to the server beyond the access pattern.
	Reveal func(fd relation.FD, holds bool)
	// Checkpoint, if non-nil, is invoked at every lattice level boundary
	// (after the level's partitions are materialized and obsolete ones
	// released) with a deep copy of the traversal state. The callback
	// typically captures the engine state alongside, marks the recovery
	// epoch on the server, and persists everything to a client-local file
	// (securefd.Database.DiscoverResumable wires exactly that). A callback
	// error aborts discovery.
	Checkpoint func(ls *LatticeState) error
	// Resume, if non-nil, continues a previous run from its checkpointed
	// frontier instead of starting at level 1. The engine must hold the
	// partitions the state references (core.ResumeEngine rebuilds it).
	// MaxLHS and KeepPartitions are taken from the state, not from this
	// Options value, so the resumed run cannot diverge from the original.
	Resume *LatticeState
	// Telemetry, if non-nil, receives phase spans for the traversal: one
	// "lattice/level-NN" span per lattice level plus "candidate/single" /
	// "candidate/union" spans around each partition materialization (or
	// "candidate/single-batch" / "candidate/union-batch" per level when
	// running parallel). Spans record only wall time and counts —
	// quantities the server already observes — so attaching a registry does
	// not change the leakage profile, and the span calls issue no oblivious
	// accesses of their own.
	Telemetry *telemetry.Registry
	// Trace, if non-nil, records causal spans for the traversal into the
	// distributed-tracing ring: one root "discover" span, a child
	// "lattice/level-NN" per level, and per-candidate children on the
	// serial path. The level span is bound to the traversal goroutine
	// while its level runs, so transport RPC spans (and, through the wire
	// context, server-side store and replication spans) nest causally
	// under it. Like Telemetry, spans observe only wall time over
	// server-visible work — no oblivious accesses of their own and no
	// change to any frame's size (DESIGN.md §14).
	Trace *otrace.Tracer
	// Workers bounds how many of one level's partition materializations
	// proceed concurrently when the engine supports it (ParallelEngine).
	// 0 means runtime.GOMAXPROCS(0); 1 forces the serial per-candidate
	// path, whose access trace is byte-identical to previous releases.
	// Parallelism changes only the interleaving of accesses across
	// structures, never any single structure's sequence — see DESIGN.md
	// §11.
	Workers int
}

// Result is the outcome of a discovery run.
type Result struct {
	// Minimal holds the minimal functional dependencies: X → A with
	// singleton RHS, where no proper subset of X determines A. Every
	// valid FD of the database is implied by this set.
	Minimal []relation.FD
	// Cardinalities caches |π_X| for every materialized set (client-side
	// knowledge; the server never sees these values).
	Cardinalities map[relation.AttrSet]int
	// SetsMaterialized counts attribute sets whose partition was computed.
	SetsMaterialized int
	// Checks counts set-level validations performed.
	Checks int
}

// Discover runs secure FD discovery over an engine covering m attributes.
// The engine's partitions are materialized level by level; unless
// opts.KeepPartitions is set, levels are released once no longer needed.
func Discover(engine Engine, m int, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	if m < 1 || m > relation.MaxAttrs {
		return nil, fmt.Errorf("core: attribute count %d out of range", m)
	}
	n := engine.NumRows()
	if n < 1 {
		return nil, fmt.Errorf("core: empty database")
	}
	reg := opts.Telemetry // nil registry: every span below is a no-op

	// Causal spans: one root for the whole traversal, one child per level.
	// The running level's span stays bound to this goroutine so everything
	// the engine does for it — client RPC spans, and through the wire
	// context the server's own spans — links under it. Nil tracer: every
	// call below is a no-op. An aborting error path leaves the running
	// level's span unrecorded (mirroring the telemetry spans) while the
	// deferred cleanup still ends the root and keeps the goroutine
	// binding balanced.
	otr := opts.Trace
	dsp := otr.Start("discover")
	releaseRoot := dsp.Bind()
	var olsp *otrace.Span
	var releaseLevel func()
	beginLevel := func(name string) {
		olsp = otr.Start(name)
		releaseLevel = olsp.Bind()
	}
	endLevel := func() {
		if releaseLevel != nil {
			releaseLevel()
			releaseLevel = nil
		}
		olsp.End()
		olsp = nil
	}
	defer func() {
		if releaseLevel != nil {
			releaseLevel()
		}
		releaseRoot()
		dsp.End()
	}()

	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pe, parallel := engine.(ParallelEngine)
	if workers <= 1 {
		parallel = false // serial path: per-candidate calls, unchanged trace
	}

	res := &Result{Cardinalities: make(map[relation.AttrSet]int)}
	universe := relation.FullSet(m)
	cplus := map[relation.AttrSet]relation.AttrSet{0: universe}

	// cplusOf returns C⁺(x), reconstructing it recursively as the
	// intersection of its parents' C⁺ when x itself was never a lattice
	// node (pruned branches still participate in the key-pruning
	// condition below). Memoized into cplus.
	var cplusOf func(x relation.AttrSet) relation.AttrSet
	cplusOf = func(x relation.AttrSet) relation.AttrSet {
		if c, ok := cplus[x]; ok {
			return c
		}
		cp := universe
		x.Subsets(func(sub relation.AttrSet) {
			cp = cp.Intersect(cplusOf(sub))
		})
		cplus[x] = cp
		return cp
	}

	var level, prevLevel []relation.AttrSet
	startLevel := 1

	// snapshotState deep-copies the traversal state at a level boundary, so
	// the checkpoint callback can retain it without aliasing live maps.
	snapshotState := func(nextLevel int) *LatticeState {
		ls := &LatticeState{
			M:                m,
			NextLevel:        nextLevel,
			Level:            append([]relation.AttrSet(nil), level...),
			PrevLevel:        append([]relation.AttrSet(nil), prevLevel...),
			CPlus:            make(map[relation.AttrSet]relation.AttrSet, len(cplus)),
			Minimal:          append([]relation.FD(nil), res.Minimal...),
			Cardinalities:    make(map[relation.AttrSet]int, len(res.Cardinalities)),
			SetsMaterialized: res.SetsMaterialized,
			Checks:           res.Checks,
			MaxLHS:           opts.MaxLHS,
			KeepPartitions:   opts.KeepPartitions,
		}
		for k, v := range cplus {
			ls.CPlus[k] = v
		}
		for k, v := range res.Cardinalities {
			ls.Cardinalities[k] = v
		}
		return ls
	}

	if rs := opts.Resume; rs != nil {
		// Continue from a checkpointed frontier. The pruning-relevant
		// options come from the state so the resumed traversal — and with
		// it the access pattern — is the one the original run would have
		// produced.
		if rs.M != m {
			return nil, fmt.Errorf("%w: checkpoint covers %d attributes, engine %d", ErrCorruptCheckpoint, rs.M, m)
		}
		if rs.NextLevel < 1 {
			return nil, fmt.Errorf("%w: next level %d", ErrCorruptCheckpoint, rs.NextLevel)
		}
		opts.MaxLHS = rs.MaxLHS
		opts.KeepPartitions = rs.KeepPartitions
		level = append([]relation.AttrSet(nil), rs.Level...)
		prevLevel = append([]relation.AttrSet(nil), rs.PrevLevel...)
		for k, v := range rs.CPlus {
			cplus[k] = v
		}
		res.Minimal = append([]relation.FD(nil), rs.Minimal...)
		for k, v := range rs.Cardinalities {
			res.Cardinalities[k] = v
		}
		res.SetsMaterialized = rs.SetsMaterialized
		res.Checks = rs.Checks
		startLevel = rs.NextLevel
		for _, x := range level {
			if _, ok := engine.Cardinality(x); !ok {
				return nil, fmt.Errorf("%w: frontier set %v not materialized in engine", ErrCorruptCheckpoint, x)
			}
		}
	} else {
		// Level 1: materialize every singleton partition.
		lsp := reg.StartSpan("lattice/level-01")
		beginLevel("lattice/level-01")
		level = relation.AllSingletons(m)
		if parallel {
			attrs := make([]int, len(level))
			for i, x := range level {
				attrs[i] = x.First()
			}
			csp := reg.StartSpan("candidate/single-batch")
			ocsp := otr.Start("candidate/single-batch")
			cards, err := pe.CardinalitySingleBatch(attrs, workers)
			ocsp.End()
			csp.End()
			if err != nil {
				return nil, describeIntegrityLevel(err, 1)
			}
			for i, x := range level {
				res.Cardinalities[x] = cards[i]
				res.SetsMaterialized++
			}
		} else {
			for _, x := range level {
				csp := reg.StartSpan("candidate/single")
				ocsp := otr.Start("candidate/single")
				creleased := ocsp.Bind()
				card, err := engine.CardinalitySingle(x.First())
				creleased()
				ocsp.End()
				csp.End()
				if err != nil {
					return nil, describeIntegrity(err, 1, x)
				}
				res.Cardinalities[x] = card
				res.SetsMaterialized++
			}
		}
		endLevel()
		lsp.End()
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint(snapshotState(1)); err != nil {
				return nil, fmt.Errorf("core: checkpoint after level 1: %w", err)
			}
		}
	}

	for l := startLevel; len(level) > 0; l++ {
		// The span for level l covers processing its nodes AND materializing
		// level l+1 from them (GenerateNextLevel), so span NN's time is the
		// cost of ascending from level NN. Error paths return without End;
		// the run aborts and the partial breakdown is never reported.
		lsp := reg.StartSpan(fmt.Sprintf("lattice/level-%02d", l))
		beginLevel(fmt.Sprintf("lattice/level-%02d", l))

		// ComputeDependencies: refresh C⁺ for this level.
		for _, x := range level {
			cp := universe
			x.Subsets(func(sub relation.AttrSet) {
				cp = cp.Intersect(cplusOf(sub))
			})
			cplus[x] = cp
		}
		for _, x := range level {
			for _, a := range x.Intersect(cplus[x]).Attrs() {
				lhs := x.Remove(a)
				lhsCard := 1 // |π_∅| = 1 on a non-empty database
				if !lhs.IsEmpty() {
					lhsCard = res.Cardinalities[lhs]
				}
				// Set-level check (Theorem 1): X\{A} → A iff
				// |π_{X\{A}}| = |π_X|.
				holds := lhsCard == res.Cardinalities[x]
				res.Checks++
				fd := relation.FD{LHS: lhs, RHS: relation.SingleAttr(a)}
				if opts.Reveal != nil {
					opts.Reveal(fd, holds)
				}
				if holds {
					res.Minimal = append(res.Minimal, fd)
					cp := cplus[x].Remove(a)
					cp = cp.Minus(universe.Minus(x))
					cplus[x] = cp
				}
			}
		}

		// Prune: drop nodes with empty C⁺ and superkeys (after harvesting
		// the superkeys' remaining dependencies).
		kept := level[:0]
		inLevel := make(map[relation.AttrSet]bool, len(level))
		release := func(x relation.AttrSet) error {
			if opts.KeepPartitions {
				return nil
			}
			return engine.Release(x)
		}
		for _, x := range level {
			if cplus[x].IsEmpty() {
				if err := release(x); err != nil {
					return nil, err
				}
				continue
			}
			if res.Cardinalities[x] == n { // X is a (super)key
				// The harvested FDs have |LHS| = |X| = l, one more than
				// the dependencies found by ComputeDependencies at this
				// level, so the MaxLHS bound must be re-checked here.
				if opts.MaxLHS == 0 || x.Size() <= opts.MaxLHS {
					for _, a := range cplus[x].Minus(x).Attrs() {
						ok := true
						x.Subsets(func(sub relation.AttrSet) {
							if !cplusOf(sub.Add(a)).Has(a) {
								ok = false
							}
						})
						if ok {
							res.Minimal = append(res.Minimal, relation.FD{LHS: x, RHS: relation.SingleAttr(a)})
							if opts.Reveal != nil {
								opts.Reveal(relation.FD{LHS: x, RHS: relation.SingleAttr(a)}, true)
							}
						}
					}
				}
				if err := release(x); err != nil {
					return nil, err
				}
				continue
			}
			kept = append(kept, x)
			inLevel[x] = true
		}

		if opts.MaxLHS > 0 && l >= opts.MaxLHS+1 {
			endLevel()
			lsp.End()
			break // LHS at the next level would exceed the bound
		}

		// GenerateNextLevel: TANE's prefix-bucket join — two l-sets join
		// iff they share everything but their largest attribute, so
		// bucketing by that prefix generates each candidate exactly once
		// without the O(|level|²) pair scan. Candidates then pass the
		// all-subsets check and are materialized from their Property 1
		// cover.
		buckets := make(map[relation.AttrSet][]relation.AttrSet, len(kept))
		var prefixes []relation.AttrSet
		for _, x := range kept {
			prefix := x.Remove(x.Last())
			if _, ok := buckets[prefix]; !ok {
				prefixes = append(prefixes, prefix)
			}
			buckets[prefix] = append(buckets[prefix], x)
		}
		// Deterministic traversal order: the access pattern must be a
		// function of (m, n, FD(DB)) alone, never of map iteration.
		sort.Slice(prefixes, func(i, j int) bool { return prefixes[i] < prefixes[j] })
		type cand struct {
			z, x1, x2 relation.AttrSet
		}
		var cands []cand
		for _, prefix := range prefixes {
			group := buckets[prefix]
			for i := 0; i < len(group); i++ {
				for j := i + 1; j < len(group); j++ {
					z := group[i].Union(group[j])
					allIn := true
					z.Subsets(func(sub relation.AttrSet) {
						if !inLevel[sub] {
							allIn = false
						}
					})
					if !allIn {
						continue
					}
					x1, x2 := z.SplitCover()
					cands = append(cands, cand{z: z, x1: x1, x2: x2})
				}
			}
		}
		var next []relation.AttrSet
		if parallel && len(cands) > 0 {
			jobs := make([]UnionJob, len(cands))
			for i, c := range cands {
				jobs[i] = UnionJob{X1: c.x1, X2: c.x2}
			}
			usp := reg.StartSpan("candidate/union-batch")
			ousp := otr.Start("candidate/union-batch")
			cards, err := pe.CardinalityUnionBatch(jobs, workers)
			ousp.End()
			usp.End()
			if err != nil {
				return nil, describeIntegrityLevel(err, l+1)
			}
			for i, c := range cands {
				res.Cardinalities[c.z] = cards[i]
				res.SetsMaterialized++
				next = append(next, c.z)
			}
		} else {
			for _, c := range cands {
				usp := reg.StartSpan("candidate/union")
				ousp := otr.Start("candidate/union")
				ureleased := ousp.Bind()
				card, err := engine.CardinalityUnion(c.x1, c.x2)
				ureleased()
				ousp.End()
				usp.End()
				if err != nil {
					return nil, describeIntegrity(err, l+1, c.z)
				}
				res.Cardinalities[c.z] = card
				res.SetsMaterialized++
				next = append(next, c.z)
			}
		}
		// Sets two levels down are no longer anyone's cover.
		if !opts.KeepPartitions {
			for _, x := range prevLevel {
				if err := engine.Release(x); err != nil {
					return nil, err
				}
			}
		}
		prevLevel = kept
		level = next
		endLevel()
		lsp.End()

		// Level boundary: partitions for `level` are materialized, obsolete
		// ones released — the engine state matches the frontier exactly, so
		// this is the one safe moment to checkpoint.
		if opts.Checkpoint != nil && len(level) > 0 {
			if err := opts.Checkpoint(snapshotState(l + 1)); err != nil {
				return nil, fmt.Errorf("core: checkpoint after level %d: %w", l, err)
			}
		}
	}

	relation.SortFDs(res.Minimal)
	return res, nil
}

// AggregateFDs merges minimal FDs sharing a left-hand side into the paper's
// pair form (A, B) with composite right-hand sides: if A → B₁ and A → B₂
// then A → B₁ ∪ B₂.
func AggregateFDs(minimal []relation.FD) []relation.FD {
	byLHS := make(map[relation.AttrSet]relation.AttrSet)
	for _, fd := range minimal {
		byLHS[fd.LHS] = byLHS[fd.LHS].Union(fd.RHS)
	}
	out := make([]relation.FD, 0, len(byLHS))
	for lhs, rhs := range byLHS {
		out = append(out, relation.FD{LHS: lhs, RHS: rhs})
	}
	relation.SortFDs(out)
	return out
}

// Validate checks a single dependency X → Y on an engine by materializing
// the partition chain for X and X ∪ Y (respecting Property 1) and applying
// Theorem 1. It returns whether the FD holds.
//
// Every partition this validation materialized itself is released before
// returning — on success, on error, and on the trivial-dependency early
// return alike — so repeated Validate calls do not accumulate server-side
// state. Partitions that already existed (e.g. retained by a prior Discover
// with KeepPartitions) are left in place.
func Validate(engine Engine, x, y relation.AttrSet) (holds bool, err error) {
	if x.IsEmpty() || y.IsEmpty() {
		return false, fmt.Errorf("core: Validate needs non-empty attribute sets")
	}
	var created []relation.AttrSet
	defer func() {
		for i := len(created) - 1; i >= 0; i-- {
			if rerr := engine.Release(created[i]); rerr != nil && err == nil {
				holds, err = false, rerr
			}
		}
	}()
	cardX, err := materializeChain(engine, x, &created)
	if err != nil {
		return false, err
	}
	union := x.Union(y)
	if union == x {
		return true, nil // Y ⊆ X: trivial dependency
	}
	cardXY, err := materializeChain(engine, union, &created)
	if err != nil {
		return false, err
	}
	return cardX == cardXY, nil
}

// materializeChain materializes π_x by growing one attribute at a time:
// {a₁}, {a₁,a₂}, … — each step a valid two-subset cover. Sets this call
// materialized (as opposed to found already cached) are appended to
// created, so the caller can release exactly its own additions.
func materializeChain(engine Engine, x relation.AttrSet, created *[]relation.AttrSet) (int, error) {
	track := func(s relation.AttrSet, pre bool) {
		if !pre {
			*created = append(*created, s)
		}
	}
	attrs := x.Attrs()
	first := relation.SingleAttr(attrs[0])
	_, pre := engine.Cardinality(first)
	card, err := engine.CardinalitySingle(attrs[0])
	if err != nil {
		return 0, err
	}
	track(first, pre)
	cur := first
	for _, a := range attrs[1:] {
		single := relation.SingleAttr(a)
		_, pre := engine.Cardinality(single)
		if _, err := engine.CardinalitySingle(a); err != nil {
			return 0, err
		}
		track(single, pre)
		next := cur.Add(a)
		_, pre = engine.Cardinality(next)
		card, err = engine.CardinalityUnion(cur, single)
		if err != nil {
			return 0, err
		}
		track(next, pre)
		cur = next
	}
	return card, nil
}
