package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// ckptRelation returns a small relation with a known FD structure.
func ckptRelation(t *testing.T) *relation.Relation {
	t.Helper()
	schema, err := relation.NewSchema("A", "B", "C", "D")
	if err != nil {
		t.Fatal(err)
	}
	rows := []relation.Row{
		{"a1", "b1", "c1", "d1"},
		{"a1", "b1", "c2", "d1"},
		{"a2", "b2", "c1", "d1"},
		{"a2", "b2", "c3", "d2"},
		{"a3", "b1", "c2", "d2"},
		{"a3", "b1", "c1", "d1"},
		{"a4", "b2", "c3", "d2"},
		{"a4", "b2", "c2", "d1"},
	}
	rel, err := relation.FromRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func ckptUpload(t *testing.T, svc store.Service, rel *relation.Relation) *EncryptedDB {
	t.Helper()
	edb, err := Upload(svc, crypto.MustNewCipher(crypto.MustNewKey()), "ckpt-test", rel)
	if err != nil {
		t.Fatal(err)
	}
	return edb
}

// TestCheckpointFileRoundTrip covers the framed file format: write, read
// back, then verify truncations and bit flips are rejected as
// ErrCorruptCheckpoint, never a panic.
func TestCheckpointFileRoundTrip(t *testing.T) {
	svc := store.NewServer()
	rel := ckptRelation(t)
	edb := ckptUpload(t, svc, rel)
	eng := NewOrEngine(edb)
	if _, err := eng.CardinalitySingle(0); err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{
		Epoch:  1,
		EDB:    edb.State(),
		Engine: eng.CheckpointState(),
		Lattice: &LatticeState{
			M:         4,
			NextLevel: 1,
			Level:     relation.AllSingletons(4),
			CPlus:     map[relation.AttrSet]relation.AttrSet{0: relation.FullSet(4)},
			Cardinalities: map[relation.AttrSet]int{
				relation.SingleAttr(0): 4,
			},
		},
	}

	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 1 || got.EDB.Name != "ckpt-test" || got.Engine.Kind != engineKindOr {
		t.Errorf("round trip: %+v", got)
	}
	if got.EDB.Key != cp.EDB.Key {
		t.Error("encryption key did not survive the round trip")
	}
	if len(got.Lattice.Level) != 4 {
		t.Errorf("lattice frontier = %v", got.Lattice.Level)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		tmp := filepath.Join(t.TempDir(), "trunc.ckpt")
		if err := os.WriteFile(tmp, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpointFile(tmp); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorruptCheckpoint", cut, err)
		}
	}
	for i := 0; i < len(data); i += 11 {
		tmp := filepath.Join(t.TempDir(), "flip.ckpt")
		mutated := append([]byte(nil), data...)
		mutated[i] ^= 0x20
		if err := os.WriteFile(tmp, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpointFile(tmp); err == nil {
			t.Fatalf("byte %d flipped: checkpoint accepted", i)
		}
	}
}

// crashAfter aborts a discovery run from inside the checkpoint callback once
// the requested level boundary is reached, capturing the full checkpoint the
// way securefd.DiscoverResumable does.
var errSimulatedCrash = errors.New("simulated client crash")

// TestDiscoverResumeMatchesFullRun is the client-side recovery core: crash at
// every level boundary, resume from the captured checkpoint on the same
// server, and require the identical FD set, counters, and cardinalities.
func TestDiscoverResumeMatchesFullRun(t *testing.T) {
	rel := ckptRelation(t)
	m := rel.NumAttrs()

	baselineSvc := store.NewServer()
	baseEng := NewOrEngine(ckptUpload(t, baselineSvc, rel))
	want, err := Discover(baseEng, m, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Find how many level boundaries a full run has.
	probeSvc := store.NewServer()
	probeEng := NewOrEngine(ckptUpload(t, probeSvc, rel))
	boundaries := 0
	if _, err := Discover(probeEng, m, &Options{
		Checkpoint: func(*LatticeState) error { boundaries++; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if boundaries < 2 {
		t.Fatalf("test relation yields %d level boundaries; need ≥ 2 to exercise resume", boundaries)
	}

	for crashAt := 1; crashAt <= boundaries; crashAt++ {
		svc := store.NewServer()
		edb := ckptUpload(t, svc, rel)
		eng := NewOrEngine(edb)

		var cp *Checkpoint
		seen := 0
		_, err := Discover(eng, m, &Options{
			Checkpoint: func(ls *LatticeState) error {
				seen++
				if seen == crashAt {
					epoch := int64(ls.NextLevel)
					if err := svc.Checkpoint(epoch); err != nil {
						return err
					}
					cp = &Checkpoint{Epoch: epoch, EDB: edb.State(), Engine: eng.CheckpointState(), Lattice: ls}
					return errSimulatedCrash
				}
				return nil
			},
		})
		if !errors.Is(err, errSimulatedCrash) {
			t.Fatalf("crash %d: Discover err = %v, want simulated crash", crashAt, err)
		}

		// Resume: same server (its state is exactly the epoch's, nothing
		// mutated since the callback), fresh engine from the checkpoint.
		if err := VerifyEpoch(svc, cp.Epoch); err != nil {
			t.Fatalf("crash %d: %v", crashAt, err)
		}
		edb2, err := AttachEDB(svc, cp.EDB)
		if err != nil {
			t.Fatal(err)
		}
		eng2, err := ResumeEngine(edb2, cp.Engine)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Discover(eng2, m, &Options{Resume: cp.Lattice})
		if err != nil {
			t.Fatalf("crash %d: resumed Discover: %v", crashAt, err)
		}

		if !relation.FDSetEqual(got.Minimal, want.Minimal) {
			t.Errorf("crash %d: resumed FDs = %v, want %v", crashAt, got.Minimal, want.Minimal)
		}
		if got.SetsMaterialized != want.SetsMaterialized || got.Checks != want.Checks {
			t.Errorf("crash %d: counters = %d sets/%d checks, want %d/%d",
				crashAt, got.SetsMaterialized, got.Checks, want.SetsMaterialized, want.Checks)
		}
		for x, card := range want.Cardinalities {
			if got.Cardinalities[x] != card {
				t.Errorf("crash %d: |π_%v| = %d, want %d", crashAt, x, got.Cardinalities[x], card)
			}
		}
	}
}

// TestResumeEpochMismatch: mutating the server after the epoch mark must make
// VerifyEpoch refuse — resuming ORAM client state against drifted server
// state would silently corrupt partitions.
func TestResumeEpochMismatch(t *testing.T) {
	svc := store.NewServer()
	if err := svc.CreateArray("x", 2); err != nil {
		t.Fatal(err)
	}
	if err := svc.Checkpoint(3); err != nil {
		t.Fatal(err)
	}
	if err := VerifyEpoch(svc, 3); err != nil {
		t.Fatalf("clean epoch rejected: %v", err)
	}
	if err := VerifyEpoch(svc, 2); !errors.Is(err, ErrEpochMismatch) {
		t.Errorf("wrong epoch = %v, want ErrEpochMismatch", err)
	}
	if err := svc.WriteCells("x", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyEpoch(svc, 3); !errors.Is(err, ErrEpochMismatch) {
		t.Errorf("mutated-since-epoch = %v, want ErrEpochMismatch", err)
	}
}

// TestResumeExEngine exercises the dynamic engine's checkpoint path,
// including continued mutations after resume.
func TestResumeExEngine(t *testing.T) {
	rel := ckptRelation(t)
	m := rel.NumAttrs()
	svc := store.NewServer()
	key, _ := crypto.NewKey()
	cipher, err := crypto.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	edb, err := UploadWithCapacity(svc, cipher, "ex-ckpt", rel, rel.NumRows()+4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewExEngine(edb)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic use keeps partitions; discover fully, then checkpoint.
	want, err := Discover(eng, m, &Options{KeepPartitions: true})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CheckpointState()
	if st.Kind != engineKindEx {
		t.Fatalf("kind = %q", st.Kind)
	}

	eng2, err := ResumeExEngine(edb, st)
	if err != nil {
		t.Fatal(err)
	}
	if eng2.NumRows() != eng.NumRows() {
		t.Errorf("resumed rows = %d, want %d", eng2.NumRows(), eng.NumRows())
	}
	for x, card := range want.Cardinalities {
		got, ok := eng2.Cardinality(x)
		if !ok || got != card {
			t.Errorf("resumed |π_%v| = %d (ok %v), want %d", x, got, ok, card)
		}
	}
	// The resumed engine supports the dynamic protocol end to end.
	id, err := eng2.Insert(relation.Row{"a9", "b9", "c9", "d9"})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Delete(id); err != nil {
		t.Fatal(err)
	}
}

// TestResumeEngineKindMismatch: a checkpoint may only resume as the engine
// that wrote it.
func TestResumeEngineKindMismatch(t *testing.T) {
	svc := store.NewServer()
	edb := ckptUpload(t, svc, ckptRelation(t))
	if _, err := ResumeOrEngine(edb, &EngineState{Kind: engineKindEx}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("or-from-ex = %v, want ErrCorruptCheckpoint", err)
	}
	if _, err := ResumeExEngine(edb, &EngineState{Kind: engineKindOr}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("ex-from-or = %v, want ErrCorruptCheckpoint", err)
	}
	if _, err := ResumeEngine(edb, &EngineState{Kind: "bogus"}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("unknown kind = %v, want ErrCorruptCheckpoint", err)
	}
}
