package core

import (
	"fmt"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// PlainEngine computes partitions directly on a plaintext relation. It is
// the insecure comparator: the same database-level search as the secure
// engines, with none of their protections, representing the conventional
// partition-based discovery the paper builds on (§II-C). It also serves as
// the correctness oracle in tests and implements DynamicEngine by
// recomputation, which is exactly the Ω(n)-per-operation "trivial" dynamic
// solution of Definition 5 that ExEngine improves upon.
type PlainEngine struct {
	rel  *relation.Relation
	live map[int]bool
	sets map[relation.AttrSet]*plainState
}

type plainState struct {
	labels map[int]int // r[ID] → label
	card   int
	cover  [2]relation.AttrSet
}

// NewPlainEngine builds a plaintext engine over a relation. The relation is
// cloned, so later mutations of rel do not affect the engine.
func NewPlainEngine(rel *relation.Relation) *PlainEngine {
	live := make(map[int]bool, rel.NumRows())
	for i := 0; i < rel.NumRows(); i++ {
		live[i] = true
	}
	return &PlainEngine{
		rel:  rel.Clone(),
		live: live,
		sets: make(map[relation.AttrSet]*plainState),
	}
}

// NumRows implements Engine.
func (e *PlainEngine) NumRows() int { return len(e.live) }

func (e *PlainEngine) computeSingle(attr int) *plainState {
	st := &plainState{labels: make(map[int]int, len(e.live))}
	seen := make(map[string]int)
	for id := 0; id < e.rel.NumRows(); id++ {
		if !e.live[id] {
			continue
		}
		v := e.rel.Value(id, attr)
		lbl, ok := seen[v]
		if !ok {
			lbl = st.card
			st.card++
			seen[v] = lbl
		}
		st.labels[id] = lbl
	}
	return st
}

func (e *PlainEngine) computeUnion(st1, st2 *plainState, cover [2]relation.AttrSet) *plainState {
	st := &plainState{labels: make(map[int]int, len(e.live)), cover: cover}
	seen := make(map[[2]int]int)
	for id := 0; id < e.rel.NumRows(); id++ {
		if !e.live[id] {
			continue
		}
		k := [2]int{st1.labels[id], st2.labels[id]}
		lbl, ok := seen[k]
		if !ok {
			lbl = st.card
			st.card++
			seen[k] = lbl
		}
		st.labels[id] = lbl
	}
	return st
}

// CardinalitySingle implements Engine.
func (e *PlainEngine) CardinalitySingle(attr int) (int, error) {
	x := relation.SingleAttr(attr)
	if st, ok := e.sets[x]; ok {
		return st.card, nil
	}
	st := e.computeSingle(attr)
	e.sets[x] = st
	return st.card, nil
}

// CardinalityUnion implements Engine.
func (e *PlainEngine) CardinalityUnion(x1, x2 relation.AttrSet) (int, error) {
	x, err := validateUnion(x1, x2)
	if err != nil {
		return 0, err
	}
	if st, ok := e.sets[x]; ok {
		return st.card, nil
	}
	st1, ok := e.sets[x1]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x1)
	}
	st2, ok := e.sets[x2]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x2)
	}
	st := e.computeUnion(st1, st2, [2]relation.AttrSet{x1, x2})
	e.sets[x] = st
	return st.card, nil
}

// Cardinality implements Engine.
func (e *PlainEngine) Cardinality(x relation.AttrSet) (int, bool) {
	st, ok := e.sets[x]
	if !ok {
		return 0, false
	}
	return st.card, true
}

// Insert implements DynamicEngine by full recomputation (the trivial
// solution: Ω(n) per materialized set).
func (e *PlainEngine) Insert(row relation.Row) (int, error) {
	if err := e.rel.Append(row); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrRowWidth, err)
	}
	id := e.rel.NumRows() - 1
	e.live[id] = true
	e.recomputeAll()
	return id, nil
}

// Delete implements DynamicEngine by full recomputation.
func (e *PlainEngine) Delete(id int) error {
	if !e.live[id] {
		return fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	delete(e.live, id)
	e.recomputeAll()
	return nil
}

func (e *PlainEngine) recomputeAll() {
	order := make([]relation.AttrSet, 0, len(e.sets))
	for x := range e.sets {
		order = append(order, x)
	}
	sortSets(order)
	for _, x := range order {
		old := e.sets[x]
		if x.Size() == 1 {
			e.sets[x] = e.computeSingle(x.First())
		} else {
			st1 := e.sets[old.cover[0]]
			st2 := e.sets[old.cover[1]]
			e.sets[x] = e.computeUnion(st1, st2, old.cover)
		}
	}
}

// Release implements Engine.
func (e *PlainEngine) Release(x relation.AttrSet) error {
	if _, ok := e.sets[x]; !ok {
		return fmt.Errorf("%w: %v", ErrNotMaterialized, x)
	}
	delete(e.sets, x)
	return nil
}

// ClientMemoryBytes implements Engine: the plaintext baseline holds all
// partitions client-side.
func (e *PlainEngine) ClientMemoryBytes() int {
	total := 0
	for _, st := range e.sets {
		total += 16 * len(st.labels)
	}
	return total
}

// Close implements Engine.
func (e *PlainEngine) Close() error {
	e.sets = make(map[relation.AttrSet]*plainState)
	return nil
}
