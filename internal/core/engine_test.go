package core

import (
	"errors"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/obsort"
	"github.com/oblivfd/oblivfd/internal/oram"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// engineFactory builds an Engine over a relation for conformance tests.
type engineFactory struct {
	name string
	make func(t *testing.T, rel *relation.Relation) Engine
}

func uploadFor(t *testing.T, rel *relation.Relation) *EncryptedDB {
	t.Helper()
	srv := store.NewServer()
	edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", rel)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	return edb
}

func allEngines() []engineFactory {
	return []engineFactory{
		{"plain", func(t *testing.T, rel *relation.Relation) Engine {
			return NewPlainEngine(rel)
		}},
		{"or-oram", func(t *testing.T, rel *relation.Relation) Engine {
			return NewOrEngine(uploadFor(t, rel))
		}},
		{"ex-oram", func(t *testing.T, rel *relation.Relation) Engine {
			e, err := NewExEngine(uploadFor(t, rel))
			if err != nil {
				t.Fatalf("NewExEngine: %v", err)
			}
			return e
		}},
		{"sort", func(t *testing.T, rel *relation.Relation) Engine {
			return NewSortEngine(uploadFor(t, rel), 2)
		}},
	}
}

func testRelation() *relation.Relation {
	schema := relation.MustNewSchema("Name", "City", "Birth")
	return relation.MustFromRows(schema, []relation.Row{
		{"Alice", "Boston", "Jan"},
		{"Bob", "Boston", "May"},
		{"Bob", "Boston", "Jan"},
		{"Carol", "New York", "Sep"},
	})
}

// TestEngineCardinalitiesMatchOracle runs every engine over several
// relations and compares every single and pairwise-union cardinality with
// the plaintext partition oracle.
func TestEngineCardinalitiesMatchOracle(t *testing.T) {
	rels := map[string]*relation.Relation{
		"paper":      testRelation(),
		"random":     randomRel(4, 24, 3, 11),
		"all-equal":  randomRel(3, 10, 1, 1),
		"distinct":   randomRel(3, 8, 26, 2),
		"single-row": randomRel(4, 1, 3, 3),
	}
	for _, ef := range allEngines() {
		for relName, rel := range rels {
			t.Run(ef.name+"/"+relName, func(t *testing.T) {
				eng := ef.make(t, rel)
				defer eng.Close()
				m := rel.NumAttrs()
				if eng.NumRows() != rel.NumRows() {
					t.Fatalf("NumRows = %d, want %d", eng.NumRows(), rel.NumRows())
				}
				for a := 0; a < m; a++ {
					got, err := eng.CardinalitySingle(a)
					if err != nil {
						t.Fatalf("CardinalitySingle(%d): %v", a, err)
					}
					want := relation.PartitionOf(rel, relation.SingleAttr(a)).Classes
					if got != want {
						t.Errorf("|π_{%d}| = %d, want %d", a, got, want)
					}
				}
				for a := 0; a < m; a++ {
					for b := a + 1; b < m; b++ {
						x1, x2 := relation.SingleAttr(a), relation.SingleAttr(b)
						got, err := eng.CardinalityUnion(x1, x2)
						if err != nil {
							t.Fatalf("CardinalityUnion(%d,%d): %v", a, b, err)
						}
						want := relation.PartitionOf(rel, x1.Union(x2)).Classes
						if got != want {
							t.Errorf("|π_{%d,%d}| = %d, want %d", a, b, got, want)
						}
					}
				}
			})
		}
	}
}

// TestEngineTripleUnions exercises |X| = 3 via Property 1 covers.
func TestEngineTripleUnions(t *testing.T) {
	rel := randomRel(4, 20, 2, 5)
	for _, ef := range allEngines() {
		t.Run(ef.name, func(t *testing.T) {
			eng := ef.make(t, rel)
			defer eng.Close()
			for a := 0; a < 3; a++ {
				if _, err := eng.CardinalitySingle(a); err != nil {
					t.Fatal(err)
				}
			}
			ab, err := eng.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1))
			if err != nil {
				t.Fatal(err)
			}
			_ = ab
			if _, err := eng.CardinalityUnion(relation.SingleAttr(1), relation.SingleAttr(2)); err != nil {
				t.Fatal(err)
			}
			got, err := eng.CardinalityUnion(relation.NewAttrSet(0, 1), relation.NewAttrSet(1, 2))
			if err != nil {
				t.Fatalf("triple union: %v", err)
			}
			want := relation.PartitionOf(rel, relation.NewAttrSet(0, 1, 2)).Classes
			if got != want {
				t.Errorf("|π_{0,1,2}| = %d, want %d", got, want)
			}
		})
	}
}

func TestEngineUnionValidation(t *testing.T) {
	rel := testRelation()
	for _, ef := range allEngines() {
		t.Run(ef.name, func(t *testing.T) {
			eng := ef.make(t, rel)
			defer eng.Close()
			if _, err := eng.CardinalitySingle(0); err != nil {
				t.Fatal(err)
			}
			// Same set twice.
			if _, err := eng.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(0)); !errors.Is(err, ErrBadUnion) {
				t.Errorf("identical subsets err = %v", err)
			}
			// Empty subset.
			if _, err := eng.CardinalityUnion(0, relation.SingleAttr(0)); !errors.Is(err, ErrBadUnion) {
				t.Errorf("empty subset err = %v", err)
			}
			// Non-proper subset (x1 ⊇ x1 ∪ x2).
			if _, err := eng.CardinalityUnion(relation.NewAttrSet(0, 1), relation.SingleAttr(1)); !errors.Is(err, ErrBadUnion) {
				t.Errorf("non-proper subset err = %v", err)
			}
			// Unmaterialized input.
			if _, err := eng.CardinalityUnion(relation.SingleAttr(1), relation.SingleAttr(2)); !errors.Is(err, ErrNotMaterialized) {
				t.Errorf("unmaterialized err = %v", err)
			}
		})
	}
}

func TestEngineCachingAndRelease(t *testing.T) {
	rel := testRelation()
	for _, ef := range allEngines() {
		t.Run(ef.name, func(t *testing.T) {
			eng := ef.make(t, rel)
			defer eng.Close()
			if _, ok := eng.Cardinality(relation.SingleAttr(0)); ok {
				t.Error("Cardinality reported before materialization")
			}
			c1, err := eng.CardinalitySingle(0)
			if err != nil {
				t.Fatal(err)
			}
			if c, ok := eng.Cardinality(relation.SingleAttr(0)); !ok || c != c1 {
				t.Errorf("cached Cardinality = %d,%v; want %d,true", c, ok, c1)
			}
			// Second call must hit the cache (same value, no error).
			c2, err := eng.CardinalitySingle(0)
			if err != nil || c2 != c1 {
				t.Errorf("re-materialization = %d, %v", c2, err)
			}
			if err := eng.Release(relation.SingleAttr(0)); err != nil {
				t.Fatalf("Release: %v", err)
			}
			if _, ok := eng.Cardinality(relation.SingleAttr(0)); ok {
				t.Error("Cardinality survives Release")
			}
			if err := eng.Release(relation.SingleAttr(0)); !errors.Is(err, ErrNotMaterialized) {
				t.Errorf("double Release err = %v", err)
			}
		})
	}
}

func TestEngineCloseFreesServerStorage(t *testing.T) {
	rel := testRelation()
	srv := store.NewServer()
	edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "t", rel)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := srv.Stats()
	eng := NewOrEngine(edb)
	if _, err := eng.CardinalitySingle(0); err != nil {
		t.Fatal(err)
	}
	mid, _ := srv.Stats()
	if mid.StoredBytes <= base.StoredBytes {
		t.Error("materialization did not grow server storage")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	end, _ := srv.Stats()
	if end.Objects != base.Objects || end.StoredBytes != base.StoredBytes {
		t.Errorf("Close did not restore storage: %+v vs %+v", end, base)
	}
}

func TestClientMemoryShapes(t *testing.T) {
	// Fig. 5's qualitative claim: Sort's client memory is O(1); ORAM
	// methods grow with n.
	small := randomRel(2, 16, 4, 1)
	big := randomRel(2, 256, 4, 1)

	mem := func(ef engineFactory, rel *relation.Relation) int {
		eng := ef.make(t, rel)
		defer eng.Close()
		if _, err := eng.CardinalitySingle(0); err != nil {
			t.Fatal(err)
		}
		return eng.ClientMemoryBytes()
	}
	for _, ef := range allEngines() {
		if ef.name == "plain" {
			continue
		}
		sm, bm := mem(ef, small), mem(ef, big)
		switch ef.name {
		case "sort":
			if sm != bm {
				t.Errorf("sort client memory grew with n: %d -> %d", sm, bm)
			}
		default:
			if bm <= sm {
				t.Errorf("%s client memory did not grow with n: %d -> %d", ef.name, sm, bm)
			}
		}
	}
}

// TestEnginesWithLinearORAM: both ORAM engines stay correct when backed by
// the trivial scan ORAM instead of PathORAM.
func TestEnginesWithLinearORAM(t *testing.T) {
	rel := randomRel(3, 12, 2, 29)
	t.Run("or", func(t *testing.T) {
		eng := NewOrEngine(uploadFor(t, rel))
		eng.Factory = oram.LinearFactory
		defer eng.Close()
		for a := 0; a < 3; a++ {
			got, err := eng.CardinalitySingle(a)
			if err != nil {
				t.Fatal(err)
			}
			if want := relation.PartitionOf(rel, relation.SingleAttr(a)).Classes; got != want {
				t.Errorf("|π_%d| = %d, want %d", a, got, want)
			}
		}
		got, err := eng.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1))
		if err != nil {
			t.Fatal(err)
		}
		if want := relation.PartitionOf(rel, relation.NewAttrSet(0, 1)).Classes; got != want {
			t.Errorf("union = %d, want %d", got, want)
		}
	})
	t.Run("ex-dynamic", func(t *testing.T) {
		srv := store.NewServer()
		edb, err := UploadWithCapacity(srv, crypto.MustNewCipher(crypto.MustNewKey()), "lin", rel, 16)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewExEngine(edb)
		if err != nil {
			t.Fatal(err)
		}
		eng.Factory = oram.LinearFactory
		defer eng.Close()
		if _, err := eng.CardinalitySingle(0); err != nil {
			t.Fatal(err)
		}
		id, err := eng.Insert(relation.Row{"a", "a", "a"})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Delete(id); err != nil {
			t.Fatal(err)
		}
		got, _ := eng.Cardinality(relation.SingleAttr(0))
		if want := relation.PartitionOf(rel, relation.SingleAttr(0)).Classes; got != want {
			t.Errorf("after insert+delete: |π_0| = %d, want %d", got, want)
		}
	})
}

// TestSortEngineOddEvenNetwork: the engine produces identical results with
// either comparison network.
func TestSortEngineOddEvenNetwork(t *testing.T) {
	rel := randomRel(3, 25, 2, 19)
	eng := NewSortEngine(uploadFor(t, rel), 2)
	eng.Network = obsort.OddEvenMerge
	defer eng.Close()
	for a := 0; a < 3; a++ {
		got, err := eng.CardinalitySingle(a)
		if err != nil {
			t.Fatal(err)
		}
		want := relation.PartitionOf(rel, relation.SingleAttr(a)).Classes
		if got != want {
			t.Errorf("odd-even |π_%d| = %d, want %d", a, got, want)
		}
	}
	got, err := eng.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := relation.PartitionOf(rel, relation.NewAttrSet(0, 1)).Classes; got != want {
		t.Errorf("odd-even union = %d, want %d", got, want)
	}
}

// TestCardinalityRawMatchesCompressed cross-checks the ablation baseline:
// the uncompressed direct computation must agree with the compressed path
// and the plaintext oracle for every set size.
func TestCardinalityRawMatchesCompressed(t *testing.T) {
	rel := randomRel(4, 30, 2, 17)
	raw := NewSortEngine(uploadFor(t, rel), 1)
	defer raw.Close()
	for size := 1; size <= 4; size++ {
		x := relation.FullSet(size)
		got, err := raw.CardinalityRaw(x)
		if err != nil {
			t.Fatalf("CardinalityRaw(%v): %v", x, err)
		}
		want := relation.PartitionOf(rel, x).Classes
		if got != want {
			t.Errorf("raw |π_%v| = %d, want %d", x, got, want)
		}
	}
	// Raw-materialized partitions are cached and reusable as union covers.
	if _, err := raw.CardinalityRaw(relation.NewAttrSet(1, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := raw.CardinalityUnion(relation.NewAttrSet(0, 1), relation.NewAttrSet(1, 2))
	if err != nil {
		t.Fatalf("union over raw-materialized covers: %v", err)
	}
	if want := relation.PartitionOf(rel, relation.NewAttrSet(0, 1, 2)).Classes; got != want {
		t.Errorf("union over raw covers = %d, want %d", got, want)
	}
	if _, err := raw.CardinalityRaw(0); err == nil {
		t.Error("CardinalityRaw on empty set accepted")
	}
}

// randomRel builds a reproducible random relation for engine tests.
func randomRel(m, n, cardinality int, seed int64) *relation.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	rel := relation.New(relation.MustNewSchema(names...))
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		row := make(relation.Row, m)
		for j := range row {
			row[j] = string(rune('a' + int(next())%cardinality))
		}
		if err := rel.Append(row); err != nil {
			panic(err)
		}
	}
	return rel
}
