package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

// newDynamicEx uploads rel with insert headroom and returns an ExEngine.
func newDynamicEx(t *testing.T, rel *relation.Relation, capacity int) *ExEngine {
	t.Helper()
	srv := store.NewServer()
	edb, err := UploadWithCapacity(srv, crypto.MustNewCipher(crypto.MustNewKey()), "dyn", rel, capacity)
	if err != nil {
		t.Fatalf("UploadWithCapacity: %v", err)
	}
	eng, err := NewExEngine(edb)
	if err != nil {
		t.Fatalf("NewExEngine: %v", err)
	}
	return eng
}

// materializeAll computes all singles and all pairs on the engine.
func materializeAll(t *testing.T, eng Engine, m int) {
	t.Helper()
	for a := 0; a < m; a++ {
		if _, err := eng.CardinalitySingle(a); err != nil {
			t.Fatal(err)
		}
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			if _, err := eng.CardinalityUnion(relation.SingleAttr(a), relation.SingleAttr(b)); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// checkAgainstRelation compares all materialized cardinalities with direct
// partition counts on the expected plaintext state.
func checkAgainstRelation(t *testing.T, eng Engine, want *relation.Relation, m int, ctx string) {
	t.Helper()
	for a := 0; a < m; a++ {
		got, ok := eng.Cardinality(relation.SingleAttr(a))
		if !ok {
			t.Fatalf("%s: single %d not materialized", ctx, a)
		}
		exp := relation.PartitionOf(want, relation.SingleAttr(a)).Classes
		if got != exp {
			t.Errorf("%s: |π_{%d}| = %d, want %d", ctx, a, got, exp)
		}
	}
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			x := relation.NewAttrSet(a, b)
			got, ok := eng.Cardinality(x)
			if !ok {
				t.Fatalf("%s: pair %v not materialized", ctx, x)
			}
			exp := relation.PartitionOf(want, x).Classes
			if got != exp {
				t.Errorf("%s: |π_%v| = %d, want %d", ctx, x, got, exp)
			}
		}
	}
}

// liveRelation builds the expected plaintext state from a base relation,
// appended rows, and a set of deleted ids.
func liveRelation(base *relation.Relation, appended []relation.Row, deleted map[int]bool) *relation.Relation {
	out := relation.New(base.Schema())
	all := make([]relation.Row, 0, base.NumRows()+len(appended))
	for i := 0; i < base.NumRows(); i++ {
		all = append(all, base.Row(i))
	}
	all = append(all, appended...)
	for id, row := range all {
		if !deleted[id] {
			if err := out.Append(row); err != nil {
				panic(err)
			}
		}
	}
	return out
}

func TestExEngineInsertUpdatesPartitions(t *testing.T) {
	rel := randomRel(3, 8, 2, 1)
	eng := newDynamicEx(t, rel, 16)
	defer eng.Close()
	materializeAll(t, eng, 3)

	var appended []relation.Row
	for i := 0; i < 6; i++ {
		row := relation.Row{
			string(rune('a' + i%3)), string(rune('a' + i%2)), string(rune('a' + i%4)),
		}
		if _, err := eng.Insert(row); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
		appended = append(appended, row)
		checkAgainstRelation(t, eng, liveRelation(rel, appended, nil), 3,
			fmt.Sprintf("after insert %d", i))
	}
}

func TestExEngineDeleteUpdatesPartitions(t *testing.T) {
	rel := randomRel(3, 10, 2, 2)
	eng := newDynamicEx(t, rel, 10)
	defer eng.Close()
	materializeAll(t, eng, 3)

	deleted := map[int]bool{}
	for _, id := range []int{3, 0, 9, 5} {
		if err := eng.Delete(id); err != nil {
			t.Fatalf("Delete %d: %v", id, err)
		}
		deleted[id] = true
		checkAgainstRelation(t, eng, liveRelation(rel, nil, deleted), 3,
			fmt.Sprintf("after delete %d", id))
	}
}

func TestExEngineDeleteErrors(t *testing.T) {
	rel := randomRel(2, 4, 2, 3)
	eng := newDynamicEx(t, rel, 4)
	defer eng.Close()
	if err := eng.Delete(99); !errors.Is(err, ErrUnknownID) {
		t.Errorf("unknown id err = %v", err)
	}
	if err := eng.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := eng.Delete(1); !errors.Is(err, ErrUnknownID) {
		t.Errorf("double delete err = %v", err)
	}
}

func TestExEngineInsertCapacity(t *testing.T) {
	rel := randomRel(2, 3, 2, 4)
	eng := newDynamicEx(t, rel, 4)
	defer eng.Close()
	if _, err := eng.Insert(relation.Row{"x", "y"}); err != nil {
		t.Fatalf("Insert within capacity: %v", err)
	}
	if _, err := eng.Insert(relation.Row{"x", "y"}); err == nil {
		t.Error("Insert beyond capacity accepted")
	}
	if _, err := eng.Insert(relation.Row{"too-short"}); !errors.Is(err, ErrRowWidth) {
		t.Errorf("bad width err = %v", err)
	}
}

// TestExEngineMixedWorkloadProperty runs a random insert/delete sequence on
// Ex-ORAM and the recompute-from-scratch PlainEngine side by side; all
// materialized cardinalities must agree after every operation.
func TestExEngineMixedWorkloadProperty(t *testing.T) {
	const m = 3
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := randomRel(m, 6, 2, seed+50)
		eng := newDynamicEx(t, base, 30)
		materializeAll(t, eng, m)

		var appended []relation.Row
		deleted := map[int]bool{}
		liveIDs := []int{0, 1, 2, 3, 4, 5}

		for step := 0; step < 18; step++ {
			if rng.Intn(2) == 0 || len(liveIDs) == 0 {
				row := make(relation.Row, m)
				for j := range row {
					row[j] = string(rune('a' + rng.Intn(3)))
				}
				id, err := eng.Insert(row)
				if err != nil {
					t.Fatalf("seed %d step %d: Insert: %v", seed, step, err)
				}
				appended = append(appended, row)
				liveIDs = append(liveIDs, id)
			} else {
				k := rng.Intn(len(liveIDs))
				id := liveIDs[k]
				if err := eng.Delete(id); err != nil {
					t.Fatalf("seed %d step %d: Delete(%d): %v", seed, step, id, err)
				}
				deleted[id] = true
				liveIDs = append(liveIDs[:k], liveIDs[k+1:]...)
			}
			want := liveRelation(base, appended, deleted)
			checkAgainstRelation(t, eng, want, m, fmt.Sprintf("seed %d step %d", seed, step))
			if eng.NumRows() != want.NumRows() {
				t.Fatalf("seed %d step %d: NumRows = %d, want %d", seed, step, eng.NumRows(), want.NumRows())
			}
		}
		eng.Close()
	}
}

// TestDynamicFDRevalidation exercises the paper's headline dynamic scenario:
// discover FDs, insert a violating record, re-validate cheaply via updated
// cardinalities, and see the FD disappear; delete the record and see it
// return.
func TestDynamicFDRevalidation(t *testing.T) {
	schema := relation.MustNewSchema("Position", "Department")
	rel := relation.MustFromRows(schema, []relation.Row{
		{"Engineer", "R&D"},
		{"Engineer", "R&D"},
		{"Sales", "Market"},
	})
	eng := newDynamicEx(t, rel, 8)
	defer eng.Close()

	res, err := Discover(eng, 2, &Options{KeepPartitions: true})
	if err != nil {
		t.Fatal(err)
	}
	hasFD := func(fds []relation.FD, lhs, rhs relation.AttrSet) bool {
		for _, fd := range fds {
			if fd.LHS == lhs && fd.RHS == rhs {
				return true
			}
		}
		return false
	}
	if !hasFD(res.Minimal, relation.SingleAttr(0), relation.SingleAttr(1)) {
		t.Fatalf("Position -> Department not found initially: %v", res.Minimal)
	}

	// Re-validation helper via cached cardinalities (the set-level check).
	fdHolds := func() bool {
		cx, ok1 := eng.Cardinality(relation.SingleAttr(0))
		cxy, ok2 := eng.Cardinality(relation.NewAttrSet(0, 1))
		if !ok1 || !ok2 {
			t.Fatal("partitions not retained")
		}
		return cx == cxy
	}
	if !fdHolds() {
		t.Fatal("cached cardinalities disagree with discovery")
	}

	id, err := eng.Insert(relation.Row{"Engineer", "Support"}) // violates the FD
	if err != nil {
		t.Fatal(err)
	}
	if fdHolds() {
		t.Error("FD still holds after violating insertion")
	}
	if err := eng.Delete(id); err != nil {
		t.Fatal(err)
	}
	if !fdHolds() {
		t.Error("FD did not return after deleting the violating record")
	}
}

// TestOrEngineInsert checks the original ORAM method's insert-only support.
func TestOrEngineInsert(t *testing.T) {
	rel := randomRel(3, 6, 2, 7)
	srv := store.NewServer()
	edb, err := UploadWithCapacity(srv, crypto.MustNewCipher(crypto.MustNewKey()), "or", rel, 12)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewOrEngine(edb)
	defer eng.Close()
	materializeAll(t, eng, 3)

	var appended []relation.Row
	for i := 0; i < 4; i++ {
		row := relation.Row{"z", string(rune('a' + i%2)), "q"}
		if _, err := eng.Insert(row); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		appended = append(appended, row)
	}
	checkAgainstRelation(t, eng, liveRelation(rel, appended, nil), 3, "or-insert")
	if eng.NumRows() != 10 {
		t.Errorf("NumRows = %d, want 10", eng.NumRows())
	}
}

// TestPlainEngineDynamicParity: the trivial recompute engine also satisfies
// the DynamicEngine contract (it is the Definition 5 baseline).
func TestPlainEngineDynamicParity(t *testing.T) {
	rel := randomRel(3, 6, 2, 8)
	eng := NewPlainEngine(rel)
	materializeAll(t, eng, 3)
	id, err := eng.Insert(relation.Row{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	want := liveRelation(rel, []relation.Row{{"a", "b", "c"}}, nil)
	checkAgainstRelation(t, eng, want, 3, "plain insert")
	if err := eng.Delete(id); err != nil {
		t.Fatal(err)
	}
	checkAgainstRelation(t, eng, rel, 3, "plain delete")
	if err := eng.Delete(id); !errors.Is(err, ErrUnknownID) {
		t.Errorf("double delete err = %v", err)
	}
}

var _ DynamicEngine = (*ExEngine)(nil)
var _ DynamicEngine = (*PlainEngine)(nil)
var _ Engine = (*OrEngine)(nil)
var _ Engine = (*SortEngine)(nil)
