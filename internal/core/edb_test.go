package core

import (
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
)

func TestUploadAndCellValue(t *testing.T) {
	rel := testRelation()
	srv := store.NewServer()
	edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "emp", rel)
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if edb.NumRows() != 4 || edb.NumAttrs() != 3 || edb.Name() != "emp" {
		t.Errorf("metadata: rows=%d attrs=%d name=%q", edb.NumRows(), edb.NumAttrs(), edb.Name())
	}
	for i := 0; i < rel.NumRows(); i++ {
		for j := 0; j < rel.NumAttrs(); j++ {
			got, err := edb.CellValue(i, j)
			if err != nil {
				t.Fatalf("CellValue(%d,%d): %v", i, j, err)
			}
			if got != rel.Value(i, j) {
				t.Errorf("cell (%d,%d) = %q, want %q", i, j, got, rel.Value(i, j))
			}
		}
	}
}

func TestUploadServerSeesOnlyCiphertexts(t *testing.T) {
	rel := testRelation()
	srv := store.NewServer()
	if _, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "emp", rel); err != nil {
		t.Fatal(err)
	}
	cts, err := srv.ReadCells("db:emp:col0", []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if string(cts[0]) == "Alice" {
		t.Error("plaintext stored on server")
	}
	if len(cts[0]) != len("Alice")+crypto.Overhead {
		t.Errorf("ciphertext length = %d, want %d", len(cts[0]), len("Alice")+crypto.Overhead)
	}
}

func TestUploadWithCapacityValidation(t *testing.T) {
	rel := testRelation()
	srv := store.NewServer()
	c := crypto.MustNewCipher(crypto.MustNewKey())
	if _, err := UploadWithCapacity(srv, c, "x", rel, 2); err == nil {
		t.Error("capacity below row count accepted")
	}
	empty := relation.New(rel.Schema())
	if _, err := UploadWithCapacity(srv, c, "y", empty, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestAppendRow(t *testing.T) {
	rel := testRelation()
	srv := store.NewServer()
	edb, err := UploadWithCapacity(srv, crypto.MustNewCipher(crypto.MustNewKey()), "emp", rel, 5)
	if err != nil {
		t.Fatal(err)
	}
	id, err := edb.AppendRow(relation.Row{"Dave", "Chicago", "Feb"})
	if err != nil {
		t.Fatalf("AppendRow: %v", err)
	}
	if id != 4 || edb.NumRows() != 5 {
		t.Errorf("id=%d rows=%d", id, edb.NumRows())
	}
	got, err := edb.CellValue(4, 1)
	if err != nil || got != "Chicago" {
		t.Errorf("appended cell = %q, %v", got, err)
	}
	if _, err := edb.AppendRow(relation.Row{"Eve", "Austin", "Mar"}); err == nil {
		t.Error("append beyond capacity accepted")
	}
	if _, err := edb.AppendRow(relation.Row{"short"}); err == nil {
		t.Error("bad-width append accepted")
	}
}

func TestEncryptedDBDelete(t *testing.T) {
	rel := testRelation()
	srv := store.NewServer()
	edb, err := Upload(srv, crypto.MustNewCipher(crypto.MustNewKey()), "emp", rel)
	if err != nil {
		t.Fatal(err)
	}
	if err := edb.Delete(); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	st, _ := srv.Stats()
	if st.Objects != 0 {
		t.Errorf("objects after delete = %d", st.Objects)
	}
}

func TestUploadEmptyRelationWithCapacity(t *testing.T) {
	srv := store.NewServer()
	empty := relation.New(relation.MustNewSchema("a", "b"))
	edb, err := UploadWithCapacity(srv, crypto.MustNewCipher(crypto.MustNewKey()), "grow", empty, 8)
	if err != nil {
		t.Fatalf("empty upload: %v", err)
	}
	if edb.NumRows() != 0 {
		t.Errorf("rows = %d", edb.NumRows())
	}
	if _, err := edb.AppendRow(relation.Row{"1", "2"}); err != nil {
		t.Fatalf("append into empty db: %v", err)
	}
	v, err := edb.CellValue(0, 0)
	if err != nil || v != "1" {
		t.Errorf("cell = %q, %v", v, err)
	}
}
