package core

import (
	"reflect"
	"testing"

	"github.com/oblivfd/oblivfd/internal/crypto"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
	"github.com/oblivfd/oblivfd/internal/trace"
)

// discoverWithTelemetry runs a full Discover over a small fixed relation
// with the given engine kind and registry (nil = telemetry off), returning
// the canonical server-visible trace shape and the discovered FDs.
func discoverWithTelemetry(t *testing.T, kind engineKind, reg *telemetry.Registry) (trace.Shape, []relation.FD) {
	t.Helper()
	rel := fixedWidthRel(4, 16, 7, 3)
	srv := store.NewServer()
	cipher := crypto.MustNewCipher(crypto.MustNewKey())
	edb, err := Upload(srv, cipher, "t", rel)
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	switch kind {
	case kindOr:
		e := NewOrEngine(edb)
		e.Telemetry = reg
		eng = e
	case kindEx:
		e, err := NewExEngine(edb)
		if err != nil {
			t.Fatal(err)
		}
		e.Telemetry = reg
		eng = e
	case kindSort:
		e := NewSortEngine(edb, 1)
		e.Telemetry = reg
		eng = e
	}
	defer eng.Close()

	srv.Trace().Reset()
	srv.Trace().Enable()
	// Workers: 1 pins the serial path: the span-count assertions below name
	// the serial spans (candidate/single, candidate/union), and full trace
	// shapes are only deterministic without concurrent materialization.
	res, err := Discover(eng, 4, &Options{Telemetry: reg, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return trace.ShapeOf(srv.Trace().Events()).Canonical(), res.Minimal
}

// TestTelemetryDoesNotPerturbTrace is the leakage regression for the
// observability layer: attaching a registry must leave the server-visible
// access pattern and the discovered FDs bit-identical to a telemetry-off
// run. Telemetry only ever observes sizes and timings; if instrumenting a
// code path ever issues an extra storage operation, this test catches it.
func TestTelemetryDoesNotPerturbTrace(t *testing.T) {
	for _, tc := range []struct {
		name string
		kind engineKind
	}{
		{"sort", kindSort},
		{"or-oram", kindOr},
		{"ex-oram", kindEx},
	} {
		t.Run(tc.name, func(t *testing.T) {
			offShape, offFDs := discoverWithTelemetry(t, tc.kind, nil)
			reg := telemetry.New()
			onShape, onFDs := discoverWithTelemetry(t, tc.kind, reg)

			if !reflect.DeepEqual(offFDs, onFDs) {
				t.Fatalf("FD sets diverge: off=%v on=%v", offFDs, onFDs)
			}
			if !reflect.DeepEqual(offShape, onShape) {
				t.Fatalf("trace shapes diverge with telemetry attached (off=%d events, on=%d events)",
					len(offShape), len(onShape))
			}

			// The instrumented run must actually have recorded something:
			// per-level lattice spans and candidate spans.
			phases := map[string]int64{}
			for _, p := range reg.Tracer().Phases() {
				phases[p.Name] = p.Count
			}
			if phases["lattice/level-01"] == 0 {
				t.Errorf("no lattice/level-01 spans recorded; phases: %v", phases)
			}
			if phases["candidate/single"] != 4 {
				t.Errorf("candidate/single count = %d, want 4", phases["candidate/single"])
			}
			if phases["candidate/union"] == 0 {
				t.Errorf("no candidate/union spans recorded")
			}
		})
	}
}

// TestEngineSetTelemetryCoversExistingState checks the resume wiring: a
// registry attached after materialization instruments the already-built
// stores, so post-resume accesses are counted.
func TestEngineSetTelemetryCoversExistingState(t *testing.T) {
	rel := fixedWidthRel(3, 8, 3, 2)
	srv := store.NewServer()
	cipher := crypto.MustNewCipher(crypto.MustNewKey())
	edb, err := Upload(srv, cipher, "t", rel)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewOrEngine(edb)
	defer eng.Close()
	if _, err := eng.CardinalitySingle(0); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.CardinalitySingle(1); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	eng.SetTelemetry(reg)
	accesses := reg.Counter("oblivfd_oram_accesses_total")
	before := accesses.Value()
	if _, err := eng.CardinalityUnion(relation.SingleAttr(0), relation.SingleAttr(1)); err != nil {
		t.Fatal(err)
	}
	if accesses.Value() <= before {
		t.Fatalf("union on pre-existing partitions recorded no ORAM accesses (before=%d after=%d)",
			before, accesses.Value())
	}
}
