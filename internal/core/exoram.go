package core

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/oblivfd/oblivfd/internal/oram"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// ExEngine is the extended ORAM-based method of §V (Algorithms 4 and 5),
// the first non-trivial secure FD protocol for fully dynamic databases. For
// each materialized attribute set X it maintains:
//
//	Key-(Label,Frequency) ORAM  O_X^KLF : key_X → (label_X, fre_X)
//	ID-(Key,Label)        ORAM  O_X^IKL : r[ID] → (key_X, label_X)
//
// fre_X counts how many live records share key_X, which is exactly what
// deletion needs: a key's pair is removed from O^KLF only when its last
// record goes (Algorithm 5's flag arithmetic). Our ORAM's Remove is
// trace-indistinguishable from Write, so both deletion branches look
// identical to the server; the paper encodes the same idea by writing
// (⊥, ⊥).
//
// One deviation: labels are drawn from a monotone counter instead of the
// paper's card_X. Algorithm 5 decrements card_X, so reusing it as the next
// label (Algorithm 4 line 6) could hand a new key the label of a live one
// and corrupt every superset's key_X = pair(label_{X1}, label_{X2}). The
// monotone counter preserves the injective key→label mapping the
// construction depends on; card_X is tracked separately and still equals
// |π_X| at all times.
type ExEngine struct {
	edb      *EncryptedDB
	instance string
	// Factory builds the oblivious key-value stores backing each
	// partition; nil means the paper's PathORAM (oram.PathFactory).
	Factory oram.Factory
	// Telemetry, if non-nil, instruments every ORAM the engine builds
	// (path read/write counters, access spans, stash gauge). Set it before
	// the first materialization, or call SetTelemetry to also cover
	// already-built stores (the resume path does).
	Telemetry *telemetry.Registry
	capacity  int
	liveIDs   map[int]bool
	sets      map[relation.AttrSet]*exState
	seq       atomic.Int64
	timing    func(x relation.AttrSet, d time.Duration)
}

// SetTelemetry attaches a metrics registry to the engine and re-instruments
// every already-materialized ORAM handle (checkpoint resume rebuilds the
// handles without telemetry; this wires them back up).
func (e *ExEngine) SetTelemetry(reg *telemetry.Registry) {
	e.Telemetry = reg
	e.edb.cipher.SetTelemetry(reg)
	for _, st := range e.sets {
		st.klf.SetTelemetry(reg)
		st.ikl.SetTelemetry(reg)
	}
}

// SetTimingHook installs a callback receiving the duration of each
// per-attribute-set maintenance step performed by Insert and Delete. The
// Fig. 7 benchmark uses it to isolate the marginal cost of one partition.
func (e *ExEngine) SetTimingHook(fn func(x relation.AttrSet, d time.Duration)) {
	e.timing = fn
}

type exState struct {
	klf, ikl  oram.Store
	card      uint64 // |π_X|
	nextLabel uint64 // monotone label source
	cover     [2]relation.AttrSet
}

var exEngines atomic.Int64

// NewExEngine builds a dynamic engine over an uploaded database. The
// database's capacity bounds total insertions over the engine's lifetime.
func NewExEngine(edb *EncryptedDB) (*ExEngine, error) {
	if edb.Capacity() >= maxLabel {
		return nil, fmt.Errorf("core: capacity %d exceeds label space", edb.Capacity())
	}
	live := make(map[int]bool, edb.NumRows())
	for i := 0; i < edb.NumRows(); i++ {
		live[i] = true
	}
	return &ExEngine{
		edb:      edb,
		instance: fmt.Sprintf("ex%d", exEngines.Add(1)),
		capacity: edb.Capacity(),
		liveIDs:  live,
		sets:     make(map[relation.AttrSet]*exState),
	}, nil
}

// NumRows implements Engine.
func (e *ExEngine) NumRows() int { return len(e.liveIDs) }

// liveOrdered returns live ids in ascending order (the traversal order of
// Algorithms 4's loop; ids are public row numbers).
func (e *ExEngine) liveOrdered() []int {
	ids := make([]int, 0, len(e.liveIDs))
	for id := range e.liveIDs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (e *ExEngine) newState(x relation.AttrSet, cover [2]relation.AttrSet) (*exState, error) {
	seq := e.seq.Add(1)
	factory := e.Factory
	if factory == nil {
		factory = oram.PathFactory
	}
	mk := func(kind string) (oram.Store, error) {
		return factory(e.edb.svc, e.edb.cipher,
			fmt.Sprintf("%s:%d:%s", e.instance, seq, kind),
			oram.Config{Capacity: e.capacity, KeyWidth: keyWidth, ValueWidth: 2 * labelWidth, Metrics: e.Telemetry})
	}
	klf, err := mk("KLF")
	if err != nil {
		return nil, fmt.Errorf("core: setting up O^KLF for %v: %w", x, err)
	}
	ikl, err := mk("IKL")
	if err != nil {
		return nil, fmt.Errorf("core: setting up O^IKL for %v: %w", x, err)
	}
	return &exState{klf: klf, ikl: ikl, cover: cover}, nil
}

// pair16 packs two uint64s into the engines' fixed 16-byte ORAM value.
func pair16(a, b uint64) []byte {
	out := make([]byte, 16)
	copy(out, encodeUint64(a))
	copy(out[8:], encodeUint64(b))
	return out
}

// step executes Algorithm 4's loop body: read O^KLF, update label and
// frequency branchlessly, write both ORAMs. Exactly three ORAM accesses
// regardless of data.
func (st *exState) step(id int, key uint64) error {
	keyStr := encodeUint64(key)
	v, found, err := st.klf.Read(keyStr)
	if err != nil {
		return fmt.Errorf("core: O^KLF read: %w", err)
	}
	label, fre := st.nextLabel, uint64(0)
	if found {
		label, fre = decodeUint64(v), decodeUint64(v[8:])
	}
	fre++
	if err := st.ikl.Write(idKey(id), pair16(key, label)); err != nil {
		return fmt.Errorf("core: O^IKL write: %w", err)
	}
	if err := st.klf.Write(keyStr, pair16(label, fre)); err != nil {
		return fmt.Errorf("core: O^KLF write: %w", err)
	}
	if !found {
		st.card++
		st.nextLabel++
	}
	return nil
}

// remove executes Algorithm 5 for one record: find the record's key via
// O^IKL, decrement or remove its O^KLF pair, and remove its O^IKL pair.
// Both branches perform one O^KLF operation and one O^IKL operation, and
// Remove ≡ Write on the wire, so the trace is fixed: 2 reads + 2 updates.
func (st *exState) remove(id int) error {
	v, found, err := st.ikl.Read(idKey(id))
	if err != nil {
		return fmt.Errorf("core: O^IKL read: %w", err)
	}
	if !found {
		return fmt.Errorf("%w: id %d", ErrUnknownID, id)
	}
	key := decodeUint64(v)
	keyStr := encodeUint64(key)
	lf, found, err := st.klf.Read(keyStr)
	if err != nil {
		return fmt.Errorf("core: O^KLF read: %w", err)
	}
	if !found {
		return fmt.Errorf("core: O^KLF missing key for live id %d", id)
	}
	label, fre := decodeUint64(lf), decodeUint64(lf[8:])
	if fre == 1 {
		if err := st.klf.Remove(keyStr); err != nil {
			return fmt.Errorf("core: O^KLF remove: %w", err)
		}
		st.card--
	} else {
		if err := st.klf.Write(keyStr, pair16(label, fre-1)); err != nil {
			return fmt.Errorf("core: O^KLF write: %w", err)
		}
	}
	if err := st.ikl.Remove(idKey(id)); err != nil {
		return fmt.Errorf("core: O^IKL remove: %w", err)
	}
	return nil
}

// singleKeyFor compresses record id's value under a single attribute.
func (e *ExEngine) singleKeyFor(id, attr int) (uint64, error) {
	v, err := e.edb.CellValue(id, attr)
	if err != nil {
		return 0, err
	}
	return singleKey(e.edb.cipher, v), nil
}

// unionKeyFor builds key_X for record id from the covering subsets'
// ID-(Key,Label) ORAMs.
func (e *ExEngine) unionKeyFor(id int, st1, st2 *exState) (uint64, error) {
	v1, found, err := st1.ikl.Read(idKey(id))
	if err != nil {
		return 0, fmt.Errorf("core: O^IKL read: %w", err)
	}
	if !found {
		return 0, fmt.Errorf("%w: id %d missing from subset partition", ErrNotMaterialized, id)
	}
	v2, found, err := st2.ikl.Read(idKey(id))
	if err != nil {
		return 0, fmt.Errorf("core: O^IKL read: %w", err)
	}
	if !found {
		return 0, fmt.Errorf("%w: id %d missing from subset partition", ErrNotMaterialized, id)
	}
	return unionKey(decodeUint64(v1[8:]), decodeUint64(v2[8:])), nil
}

// CardinalitySingle implements Engine (Algorithm 4).
func (e *ExEngine) CardinalitySingle(attr int) (int, error) {
	x := relation.SingleAttr(attr)
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	st, err := e.newState(x, [2]relation.AttrSet{})
	if err != nil {
		return 0, err
	}
	for _, id := range e.liveOrdered() {
		key, err := e.singleKeyFor(id, attr)
		if err != nil {
			return 0, err
		}
		if err := st.step(id, key); err != nil {
			return 0, err
		}
	}
	e.sets[x] = st
	return int(st.card), nil
}

// CardinalityUnion implements Engine (Algorithm 4's multi-attribute variant,
// which obtains key_X as in Algorithm 2 lines 4–6).
func (e *ExEngine) CardinalityUnion(x1, x2 relation.AttrSet) (int, error) {
	x, err := validateUnion(x1, x2)
	if err != nil {
		return 0, err
	}
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	st1, ok := e.sets[x1]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x1)
	}
	st2, ok := e.sets[x2]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x2)
	}
	st, err := e.newState(x, [2]relation.AttrSet{x1, x2})
	if err != nil {
		return 0, err
	}
	for _, id := range e.liveOrdered() {
		key, err := e.unionKeyFor(id, st1, st2)
		if err != nil {
			return 0, err
		}
		if err := st.step(id, key); err != nil {
			return 0, err
		}
	}
	e.sets[x] = st
	return int(st.card), nil
}

// CardinalitySingleBatch implements ParallelEngine; see the OrEngine
// counterpart. ORAM pairs are created serially in job order, traversals run
// concurrently over a shared snapshot of the live-id order.
func (e *ExEngine) CardinalitySingleBatch(attrs []int, workers int) ([]int, error) {
	results := make([]int, len(attrs))
	jobs := make([]batchJob, len(attrs))
	ids := e.liveOrdered()
	pendingTarget := make(map[relation.AttrSet]bool, len(attrs))
	for k, attr := range attrs {
		k, attr := k, attr
		x := relation.SingleAttr(attr)
		var st *exState
		if _, cached := e.sets[x]; !cached && !pendingTarget[x] {
			var err error
			st, err = e.newState(x, [2]relation.AttrSet{})
			if err != nil {
				return nil, err
			}
		}
		pendingTarget[x] = true
		jobs[k] = batchJob{
			resources: []relation.AttrSet{x},
			run: func() error {
				if cached, ok := e.sets[x]; ok {
					st = cached
					return nil
				}
				for _, id := range ids {
					key, err := e.singleKeyFor(id, attr)
					if err != nil {
						return err
					}
					if err := st.step(id, key); err != nil {
						return err
					}
				}
				return nil
			},
			commit: func() {
				e.sets[x] = st
				results[k] = int(st.card)
			},
		}
	}
	if err := runBatch(jobs, workers); err != nil {
		return nil, err
	}
	return results, nil
}

// CardinalityUnionBatch implements ParallelEngine. As with OrEngine, jobs
// sharing a cover are serialized into different waves: reading a cover's
// O^IKL is a mutating access on a handle that is not goroutine-safe.
func (e *ExEngine) CardinalityUnionBatch(jobs []UnionJob, workers int) ([]int, error) {
	results := make([]int, len(jobs))
	bjobs := make([]batchJob, len(jobs))
	ids := e.liveOrdered()
	pendingTarget := make(map[relation.AttrSet]bool, len(jobs))
	for k, uj := range jobs {
		k, x1, x2 := k, uj.X1, uj.X2
		x, err := validateUnion(x1, x2)
		if err != nil {
			return nil, err
		}
		var st *exState
		if _, cached := e.sets[x]; !cached && !pendingTarget[x] {
			st, err = e.newState(x, [2]relation.AttrSet{x1, x2})
			if err != nil {
				return nil, err
			}
		}
		pendingTarget[x] = true
		bjobs[k] = batchJob{
			resources: []relation.AttrSet{x1, x2, x},
			run: func() error {
				if cached, ok := e.sets[x]; ok {
					st = cached
					return nil
				}
				st1, ok := e.sets[x1]
				if !ok {
					return fmt.Errorf("%w: %v", ErrNotMaterialized, x1)
				}
				st2, ok := e.sets[x2]
				if !ok {
					return fmt.Errorf("%w: %v", ErrNotMaterialized, x2)
				}
				for _, id := range ids {
					key, err := e.unionKeyFor(id, st1, st2)
					if err != nil {
						return err
					}
					if err := st.step(id, key); err != nil {
						return err
					}
				}
				return nil
			},
			commit: func() {
				e.sets[x] = st
				results[k] = int(st.card)
			},
		}
	}
	if err := runBatch(bjobs, workers); err != nil {
		return nil, err
	}
	return results, nil
}

var _ ParallelEngine = (*ExEngine)(nil)

// Cardinality implements Engine.
func (e *ExEngine) Cardinality(x relation.AttrSet) (int, bool) {
	st, ok := e.sets[x]
	if !ok {
		return 0, false
	}
	return int(st.card), true
}

// Insert implements DynamicEngine: the new record is an untraversed record,
// processed by one Algorithm 4 step per materialized set, covers first.
func (e *ExEngine) Insert(row relation.Row) (int, error) {
	id, err := e.edb.AppendRow(row)
	if err != nil {
		return 0, err
	}
	for _, x := range e.setsBySize() {
		st := e.sets[x]
		start := time.Now()
		var key uint64
		if x.Size() == 1 {
			key, err = e.singleKeyFor(id, x.First())
		} else {
			st1, ok1 := e.sets[st.cover[0]]
			st2, ok2 := e.sets[st.cover[1]]
			if !ok1 || !ok2 {
				return 0, fmt.Errorf("%w: cover of %v was released; dynamic use requires keeping partitions", ErrNotMaterialized, x)
			}
			key, err = e.unionKeyFor(id, st1, st2)
		}
		if err != nil {
			return 0, err
		}
		if err := st.step(id, key); err != nil {
			return 0, err
		}
		if e.timing != nil {
			e.timing(x, time.Since(start))
		}
	}
	e.liveIDs[id] = true
	return id, nil
}

// Delete implements DynamicEngine: one Algorithm 5 pass per materialized
// set. Deletions across sets are order-independent (§V-C).
func (e *ExEngine) Delete(id int) error {
	if !e.liveIDs[id] {
		return fmt.Errorf("%w: %d", ErrUnknownID, id)
	}
	for _, x := range e.setsBySize() {
		start := time.Now()
		if err := e.sets[x].remove(id); err != nil {
			return err
		}
		if e.timing != nil {
			e.timing(x, time.Since(start))
		}
	}
	delete(e.liveIDs, id)
	return nil
}

func (e *ExEngine) setsBySize() []relation.AttrSet {
	out := make([]relation.AttrSet, 0, len(e.sets))
	for x := range e.sets {
		out = append(out, x)
	}
	sortSets(out)
	return out
}

// CheckpointState implements CheckpointableEngine.
func (e *ExEngine) CheckpointState() *EngineState {
	es := &EngineState{
		Kind:     engineKindEx,
		Instance: e.instance,
		Seq:      e.seq.Load(),
		LiveIDs:  e.liveOrdered(),
	}
	for _, x := range e.setsBySize() {
		st := e.sets[x]
		es.Sets = append(es.Sets, SetState{
			Set:       x,
			Card:      st.card,
			NextLabel: st.nextLabel,
			Cover:     st.cover,
			Primary:   st.klf.CheckpointState(),
			Secondary: st.ikl.CheckpointState(),
		})
	}
	return es
}

// ResumeExEngine rebuilds an ExEngine from checkpointed state, reattaching
// every set's ORAM handles to their existing server-side objects. The
// server must hold exactly the storage state it had at capture time (see
// the consistency contract in checkpoint.go).
func ResumeExEngine(edb *EncryptedDB, st *EngineState) (*ExEngine, error) {
	if st.Kind != engineKindEx {
		return nil, fmt.Errorf("%w: engine kind %q, want %q", ErrCorruptCheckpoint, st.Kind, engineKindEx)
	}
	live := make(map[int]bool, len(st.LiveIDs))
	for _, id := range st.LiveIDs {
		live[id] = true
	}
	e := &ExEngine{
		edb:      edb,
		instance: st.Instance,
		Factory:  factoryFromSets(st.Sets),
		capacity: edb.Capacity(),
		liveIDs:  live,
		sets:     make(map[relation.AttrSet]*exState, len(st.Sets)),
	}
	e.seq.Store(st.Seq)
	for _, s := range st.Sets {
		klf, err := oram.ResumeStore(edb.svc, edb.cipher, s.Primary)
		if err != nil {
			return nil, fmt.Errorf("core: resuming O^KLF for %v: %w", s.Set, err)
		}
		ikl, err := oram.ResumeStore(edb.svc, edb.cipher, s.Secondary)
		if err != nil {
			return nil, fmt.Errorf("core: resuming O^IKL for %v: %w", s.Set, err)
		}
		e.sets[s.Set] = &exState{klf: klf, ikl: ikl, card: s.Card, nextLabel: s.NextLabel, cover: s.Cover}
	}
	return e, nil
}

// Release implements Engine.
func (e *ExEngine) Release(x relation.AttrSet) error {
	st, ok := e.sets[x]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotMaterialized, x)
	}
	if err := st.klf.Destroy(); err != nil {
		return err
	}
	if err := st.ikl.Destroy(); err != nil {
		return err
	}
	delete(e.sets, x)
	return nil
}

// ClientMemoryBytes implements Engine.
func (e *ExEngine) ClientMemoryBytes() int {
	total := 8 * len(e.liveIDs)
	for _, st := range e.sets {
		total += st.klf.ClientMemoryBytes() + st.ikl.ClientMemoryBytes()
	}
	return total
}

// Close implements Engine.
func (e *ExEngine) Close() error {
	for x := range e.sets {
		if err := e.Release(x); err != nil {
			return err
		}
	}
	return nil
}
