package core

import (
	"sync"

	"github.com/oblivfd/oblivfd/internal/relation"
)

// This file is the level-parallel execution layer: all candidates of one
// lattice level are independent of each other (each depends only on
// previous-level partitions), so their materializations can proceed
// concurrently — the coarse-grained counterpart of the sorting network's
// intra-sort parallelism (§IV-D).
//
// Obliviousness is preserved structure by structure, not globally: the
// multiset of per-structure access sequences (each ORAM tree's and each
// sort array's own read/write order) is identical to the serial run's, and
// each sequence was already a function of public quantities alone. Only the
// interleaving *across* structures changes, and that interleaving is a
// function of goroutine scheduling, never of the data — see DESIGN.md §11
// and trace.Shape.CanonicalPerStructure, which the equivalence tests use to
// compare runs under different worker counts.

// UnionJob is one Property 1 union materialization request: compute
// |π_{X1∪X2}| from the materialized partitions of X1 and X2.
type UnionJob struct {
	X1, X2 relation.AttrSet
}

// ParallelEngine is implemented by engines that can materialize several
// partitions of one lattice level concurrently. Both batch methods preserve
// the serial semantics exactly: results arrive in job order, every
// partition ends up cached as if the jobs had run one by one in order, and
// with workers <= 1 the execution *is* the serial one. Engines that cannot
// parallelize simply don't implement the interface and the lattice falls
// back to per-candidate calls.
type ParallelEngine interface {
	Engine
	// CardinalitySingleBatch materializes the singleton partitions for
	// attrs, returning cardinalities in input order.
	CardinalitySingleBatch(attrs []int, workers int) ([]int, error)
	// CardinalityUnionBatch materializes the union partitions for jobs,
	// returning cardinalities in input order. Each job's covers must be
	// materialized (before the batch, or by an earlier job of the same
	// batch).
	CardinalityUnionBatch(jobs []UnionJob, workers int) ([]int, error)
}

// batchJob is one schedulable unit inside an engine batch call.
type batchJob struct {
	// resources names the structures the job touches: the target set plus,
	// for unions, both covers. Jobs sharing a resource never run in the
	// same wave. For the ORAM engines this is a hard correctness
	// requirement (reading a cover's ID-Label ORAM is a mutating access and
	// the handles are not goroutine-safe); for the sort engine it preserves
	// each cover array's access sequence.
	resources []relation.AttrSet
	// run does the expensive concurrent work. It must not touch engine
	// maps for writing; state to publish goes into the closure until
	// commit.
	run func() error
	// commit publishes the job's results into the engine's maps and the
	// caller's result slice. Called serially, in job order, after the
	// job's wave completes.
	commit func()
}

// conflictsWith reports whether two resource sets intersect.
func conflictsWith(a, b []relation.AttrSet) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// runBatch executes jobs under the wave schedule with at most workers
// concurrent runs.
//
// Wave rule: wave(j) = max over conflicting earlier jobs i of wave(i)+1,
// else 0. This — and not greedy first-fit packing — is what keeps every
// shared structure's access sequence in serial order: if jobs i < j
// conflict, j runs in a strictly later wave, so the structure sees i's
// accesses complete before j's begin, exactly as in the serial run.
// (First-fit is wrong: with jobs A{1}, B{1,2}, C{2}, packing C into A's
// wave would let C touch structure 2 before B does, reversing their serial
// order.)
//
// Commits run serially in job order after each wave, so a later wave
// observes every earlier job's published state. With workers <= 1 the
// schedule degenerates to the exact serial execution: run, commit, next.
//
// On failure the current wave still runs to completion and its successful
// jobs are committed (their server-side state exists; publishing it lets
// Close release it), then the lowest-index error of the wave is returned
// and later waves are abandoned.
func runBatch(jobs []batchJob, workers int) error {
	if workers <= 1 {
		for _, j := range jobs {
			if err := j.run(); err != nil {
				return err
			}
			j.commit()
		}
		return nil
	}

	waves := make([]int, len(jobs))
	numWaves := 0
	for j := range jobs {
		w := 0
		for i := 0; i < j; i++ {
			if waves[i] >= w && conflictsWith(jobs[i].resources, jobs[j].resources) {
				w = waves[i] + 1
			}
		}
		waves[j] = w
		if w+1 > numWaves {
			numWaves = w + 1
		}
	}

	sem := make(chan struct{}, workers)
	for w := 0; w < numWaves; w++ {
		var idxs []int
		for j := range jobs {
			if waves[j] == w {
				idxs = append(idxs, j)
			}
		}
		errs := make([]error, len(idxs))
		var wg sync.WaitGroup
		for k, j := range idxs {
			wg.Add(1)
			sem <- struct{}{}
			go func(k, j int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[k] = jobs[j].run()
			}(k, j)
		}
		wg.Wait()
		var firstErr error
		for k, j := range idxs {
			if errs[k] != nil {
				if firstErr == nil {
					firstErr = errs[k]
				}
				continue
			}
			jobs[j].commit()
		}
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}
