package core

import (
	"fmt"
	"sync/atomic"

	"github.com/oblivfd/oblivfd/internal/oram"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// OrEngine is the original ORAM-based method of §IV-C (Algorithms 1 and 2).
// For each materialized attribute set X it maintains two ORAMs:
//
//	Key-Label ORAM  O_X^KL : key_X  → label_X   (counts distinct keys)
//	ID-Label  ORAM  O_X^IL : r[ID]  → label_X   (feeds supersets of X)
//
// It supports static databases and insertions (the method traverses records
// one by one, so appended records are simply untraversed records, §IV-C(c)).
// Deletion is not supported — that is ExEngine's job.
type OrEngine struct {
	edb      *EncryptedDB
	instance string
	// Factory builds the oblivious key-value stores backing each
	// partition; the default is the paper's PathORAM
	// (oram.PathFactory). Set before the first materialization to use an
	// alternative such as oram.LinearFactory.
	Factory oram.Factory
	// Telemetry, if non-nil, instruments every ORAM the engine builds
	// (path read/write counters, access spans, stash gauge). Set it before
	// the first materialization, or call SetTelemetry to also cover
	// already-built stores (the resume path does).
	Telemetry *telemetry.Registry
	capacity  int
	n         int // live rows, ids 0..n-1 (insert-only keeps ids contiguous)
	sets      map[relation.AttrSet]*orState
	seq       atomic.Int64 // unique ORAM-name counter across the engine's life
}

// SetTelemetry attaches a metrics registry to the engine and re-instruments
// every already-materialized ORAM handle (checkpoint resume rebuilds the
// handles without telemetry; this wires them back up).
func (e *OrEngine) SetTelemetry(reg *telemetry.Registry) {
	e.Telemetry = reg
	e.edb.cipher.SetTelemetry(reg)
	for _, st := range e.sets {
		st.kl.SetTelemetry(reg)
		st.il.SetTelemetry(reg)
	}
}

type orState struct {
	kl, il oram.Store
	card   uint64
	cover  [2]relation.AttrSet // the Property 1 subsets; zero for singletons
}

// orEngines is a package-level counter so two engines over the same service
// never collide on object names.
var orEngines atomic.Int64

// NewOrEngine builds an engine over an uploaded database.
func NewOrEngine(edb *EncryptedDB) *OrEngine {
	return &OrEngine{
		edb:      edb,
		instance: fmt.Sprintf("or%d", orEngines.Add(1)),
		capacity: edb.Capacity(),
		n:        edb.NumRows(),
		sets:     make(map[relation.AttrSet]*orState),
	}
}

// NumRows implements Engine.
func (e *OrEngine) NumRows() int { return e.n }

func (e *OrEngine) newState(x relation.AttrSet, cover [2]relation.AttrSet) (*orState, error) {
	seq := e.seq.Add(1)
	factory := e.Factory
	if factory == nil {
		factory = oram.PathFactory
	}
	mk := func(kind string) (oram.Store, error) {
		return factory(e.edb.svc, e.edb.cipher,
			fmt.Sprintf("%s:%d:%s", e.instance, seq, kind),
			oram.Config{Capacity: e.capacity, KeyWidth: keyWidth, ValueWidth: labelWidth, Metrics: e.Telemetry})
	}
	kl, err := mk("KL")
	if err != nil {
		return nil, fmt.Errorf("core: setting up O^KL for %v: %w", x, err)
	}
	il, err := mk("IL")
	if err != nil {
		return nil, fmt.Errorf("core: setting up O^IL for %v: %w", x, err)
	}
	return &orState{kl: kl, il: il, cover: cover}, nil
}

// step executes one iteration of Algorithm 1/2's loop body for record id
// with the already-constructed key_X. The ORAM access sequence — one Read
// and two Writes — is identical regardless of whether the key was seen
// before (the branchless flag arithmetic of the paper's lines 6–10).
func (st *orState) step(id int, key string) error {
	labelBytes, found, err := st.kl.Read(key)
	if err != nil {
		return fmt.Errorf("core: O^KL read: %w", err)
	}
	label := st.card
	if found {
		label = decodeUint64(labelBytes)
	}
	enc := encodeUint64(label)
	if err := st.il.Write(idKey(id), []byte(enc)); err != nil {
		return fmt.Errorf("core: O^IL write: %w", err)
	}
	if err := st.kl.Write(key, []byte(enc)); err != nil {
		return fmt.Errorf("core: O^KL write: %w", err)
	}
	if !found {
		st.card++
	}
	return nil
}

// singleKeyFor compresses record id's value under a single attribute.
func (e *OrEngine) singleKeyFor(id, attr int) (string, error) {
	v, err := e.edb.CellValue(id, attr)
	if err != nil {
		return "", err
	}
	return encodeUint64(singleKey(e.edb.cipher, v)), nil
}

// unionKeyFor builds key_X for record id from the two covering subsets'
// ID-Label ORAMs (Algorithm 2, lines 4–6).
func (e *OrEngine) unionKeyFor(id int, st1, st2 *orState) (string, error) {
	l1b, found, err := st1.il.Read(idKey(id))
	if err != nil {
		return "", fmt.Errorf("core: O^IL read: %w", err)
	}
	if !found {
		return "", fmt.Errorf("%w: id %d missing from subset partition", ErrNotMaterialized, id)
	}
	l2b, found, err := st2.il.Read(idKey(id))
	if err != nil {
		return "", fmt.Errorf("core: O^IL read: %w", err)
	}
	if !found {
		return "", fmt.Errorf("%w: id %d missing from subset partition", ErrNotMaterialized, id)
	}
	return encodeUint64(unionKey(decodeUint64(l1b), decodeUint64(l2b))), nil
}

// CardinalitySingle implements Engine (Algorithm 1).
func (e *OrEngine) CardinalitySingle(attr int) (int, error) {
	x := relation.SingleAttr(attr)
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	st, err := e.newState(x, [2]relation.AttrSet{})
	if err != nil {
		return 0, err
	}
	for id := 0; id < e.n; id++ {
		key, err := e.singleKeyFor(id, attr)
		if err != nil {
			return 0, err
		}
		if err := st.step(id, key); err != nil {
			return 0, err
		}
	}
	e.sets[x] = st
	return int(st.card), nil
}

// CardinalityUnion implements Engine (Algorithm 2).
func (e *OrEngine) CardinalityUnion(x1, x2 relation.AttrSet) (int, error) {
	x, err := validateUnion(x1, x2)
	if err != nil {
		return 0, err
	}
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	st1, ok := e.sets[x1]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x1)
	}
	st2, ok := e.sets[x2]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x2)
	}
	st, err := e.newState(x, [2]relation.AttrSet{x1, x2})
	if err != nil {
		return 0, err
	}
	for id := 0; id < e.n; id++ {
		key, err := e.unionKeyFor(id, st1, st2)
		if err != nil {
			return 0, err
		}
		if err := st.step(id, key); err != nil {
			return 0, err
		}
	}
	e.sets[x] = st
	return int(st.card), nil
}

// CardinalitySingleBatch implements ParallelEngine. ORAM pairs are created
// serially in job order (tree setup is a deterministic linear pass), then
// the per-record traversals run concurrently: each traversal touches only
// its own attribute column and its own KL/IL pair, so all jobs share a
// wave.
func (e *OrEngine) CardinalitySingleBatch(attrs []int, workers int) ([]int, error) {
	results := make([]int, len(attrs))
	jobs := make([]batchJob, len(attrs))
	pendingTarget := make(map[relation.AttrSet]bool, len(attrs))
	for k, attr := range attrs {
		k, attr := k, attr
		x := relation.SingleAttr(attr)
		var st *orState
		if _, cached := e.sets[x]; !cached && !pendingTarget[x] {
			var err error
			st, err = e.newState(x, [2]relation.AttrSet{})
			if err != nil {
				return nil, err
			}
		}
		pendingTarget[x] = true
		jobs[k] = batchJob{
			resources: []relation.AttrSet{x},
			run: func() error {
				if cached, ok := e.sets[x]; ok {
					st = cached
					return nil
				}
				for id := 0; id < e.n; id++ {
					key, err := e.singleKeyFor(id, attr)
					if err != nil {
						return err
					}
					if err := st.step(id, key); err != nil {
						return err
					}
				}
				return nil
			},
			commit: func() {
				e.sets[x] = st
				results[k] = int(st.card)
			},
		}
	}
	if err := runBatch(jobs, workers); err != nil {
		return nil, err
	}
	return results, nil
}

// CardinalityUnionBatch implements ParallelEngine. Reading a cover's
// ID-Label ORAM is a mutating PathORAM access and the handles are not
// goroutine-safe, so jobs sharing a cover are serialized into different
// waves — which also keeps every tree's access sequence identical to the
// serial run's. ORAM pairs are created serially in job order before any
// traversal starts.
func (e *OrEngine) CardinalityUnionBatch(jobs []UnionJob, workers int) ([]int, error) {
	results := make([]int, len(jobs))
	bjobs := make([]batchJob, len(jobs))
	pendingTarget := make(map[relation.AttrSet]bool, len(jobs))
	for k, uj := range jobs {
		k, x1, x2 := k, uj.X1, uj.X2
		x, err := validateUnion(x1, x2)
		if err != nil {
			return nil, err
		}
		var st *orState
		if _, cached := e.sets[x]; !cached && !pendingTarget[x] {
			st, err = e.newState(x, [2]relation.AttrSet{x1, x2})
			if err != nil {
				return nil, err
			}
		}
		pendingTarget[x] = true
		bjobs[k] = batchJob{
			resources: []relation.AttrSet{x1, x2, x},
			run: func() error {
				if cached, ok := e.sets[x]; ok {
					st = cached
					return nil
				}
				st1, ok := e.sets[x1]
				if !ok {
					return fmt.Errorf("%w: %v", ErrNotMaterialized, x1)
				}
				st2, ok := e.sets[x2]
				if !ok {
					return fmt.Errorf("%w: %v", ErrNotMaterialized, x2)
				}
				for id := 0; id < e.n; id++ {
					key, err := e.unionKeyFor(id, st1, st2)
					if err != nil {
						return err
					}
					if err := st.step(id, key); err != nil {
						return err
					}
				}
				return nil
			},
			commit: func() {
				e.sets[x] = st
				results[k] = int(st.card)
			},
		}
	}
	if err := runBatch(bjobs, workers); err != nil {
		return nil, err
	}
	return results, nil
}

var _ ParallelEngine = (*OrEngine)(nil)

// Cardinality implements Engine.
func (e *OrEngine) Cardinality(x relation.AttrSet) (int, bool) {
	st, ok := e.sets[x]
	if !ok {
		return 0, false
	}
	return int(st.card), true
}

// Insert continues the traversal for one appended record across every
// materialized attribute set, in subset-before-superset order so Algorithm
// 2's key construction finds fresh labels (§IV-C(c)).
func (e *OrEngine) Insert(row relation.Row) (int, error) {
	id, err := e.edb.AppendRow(row)
	if err != nil {
		return 0, err
	}
	for _, x := range e.setsBySize() {
		st := e.sets[x]
		var key string
		if x.Size() == 1 {
			key, err = e.singleKeyFor(id, x.First())
		} else {
			st1, ok1 := e.sets[st.cover[0]]
			st2, ok2 := e.sets[st.cover[1]]
			if !ok1 || !ok2 {
				return 0, fmt.Errorf("%w: cover of %v was released; dynamic use requires keeping partitions", ErrNotMaterialized, x)
			}
			key, err = e.unionKeyFor(id, st1, st2)
		}
		if err != nil {
			return 0, err
		}
		if err := st.step(id, key); err != nil {
			return 0, err
		}
	}
	e.n++
	return id, nil
}

// setsBySize returns the materialized sets ordered by |X| then value, so
// covers always precede their unions.
func (e *OrEngine) setsBySize() []relation.AttrSet {
	out := make([]relation.AttrSet, 0, len(e.sets))
	for x := range e.sets {
		out = append(out, x)
	}
	sortSets(out)
	return out
}

// CheckpointState implements CheckpointableEngine: it deep-captures every
// materialized set's cardinality, cover, and ORAM client states, in
// cover-before-union order so resume can rebuild dependencies in sequence.
func (e *OrEngine) CheckpointState() *EngineState {
	es := &EngineState{
		Kind:     engineKindOr,
		Instance: e.instance,
		Seq:      e.seq.Load(),
		N:        e.n,
	}
	for _, x := range e.setsBySize() {
		st := e.sets[x]
		es.Sets = append(es.Sets, SetState{
			Set:       x,
			Card:      st.card,
			Cover:     st.cover,
			Primary:   st.kl.CheckpointState(),
			Secondary: st.il.CheckpointState(),
		})
	}
	return es
}

// ResumeOrEngine rebuilds an OrEngine from checkpointed state, reattaching
// every set's ORAM handles to their existing server-side objects. The
// server must hold exactly the storage state it had at capture time (see
// the consistency contract in checkpoint.go).
func ResumeOrEngine(edb *EncryptedDB, st *EngineState) (*OrEngine, error) {
	if st.Kind != engineKindOr {
		return nil, fmt.Errorf("%w: engine kind %q, want %q", ErrCorruptCheckpoint, st.Kind, engineKindOr)
	}
	e := &OrEngine{
		edb:      edb,
		instance: st.Instance,
		Factory:  factoryFromSets(st.Sets),
		capacity: edb.Capacity(),
		n:        st.N,
		sets:     make(map[relation.AttrSet]*orState, len(st.Sets)),
	}
	e.seq.Store(st.Seq)
	for _, s := range st.Sets {
		kl, err := oram.ResumeStore(edb.svc, edb.cipher, s.Primary)
		if err != nil {
			return nil, fmt.Errorf("core: resuming O^KL for %v: %w", s.Set, err)
		}
		il, err := oram.ResumeStore(edb.svc, edb.cipher, s.Secondary)
		if err != nil {
			return nil, fmt.Errorf("core: resuming O^IL for %v: %w", s.Set, err)
		}
		e.sets[s.Set] = &orState{kl: kl, il: il, card: s.Card, cover: s.Cover}
	}
	return e, nil
}

// Release implements Engine.
func (e *OrEngine) Release(x relation.AttrSet) error {
	st, ok := e.sets[x]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotMaterialized, x)
	}
	if err := st.kl.Destroy(); err != nil {
		return err
	}
	if err := st.il.Destroy(); err != nil {
		return err
	}
	delete(e.sets, x)
	return nil
}

// ClientMemoryBytes implements Engine.
func (e *OrEngine) ClientMemoryBytes() int {
	total := 0
	for _, st := range e.sets {
		total += st.kl.ClientMemoryBytes() + st.il.ClientMemoryBytes()
	}
	return total
}

// Close implements Engine.
func (e *OrEngine) Close() error {
	for x := range e.sets {
		if err := e.Release(x); err != nil {
			return err
		}
	}
	return nil
}
