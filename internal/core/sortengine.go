package core

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"github.com/oblivfd/oblivfd/internal/obsort"
	"github.com/oblivfd/oblivfd/internal/relation"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// SortEngine is the oblivious-sorting method of §IV-D (Algorithm 3). For
// each attribute set X it materializes the array B_X of (label_X, r[ID])
// records ordered by r[ID]:
//
//  1. build A = {(key_X, r[ID])} — key_X from the cell value (|X|=1) or
//     from the covering subsets' labels (|X|≥2, Property 1),
//  2. ObliviousSort A by key_X,
//  3. one sequential pass replaces each key with a dense label via the
//     card_X counter (branchless, every cell rewritten),
//  4. ObliviousSort back by r[ID].
//
// The method needs O(1) client memory (one record in flight), is static
// only, and parallelizes inside the bitonic network — Workers controls the
// degree (Fig. 6a).
type SortEngine struct {
	edb      *EncryptedDB
	instance string
	// Workers is the parallelism degree for the bitonic network; minimum 1.
	Workers int
	// Network selects the comparison network; the zero value is the
	// paper's bitonic sorter, obsort.OddEvenMerge saves ~20% of the
	// comparators (see the network ablation).
	Network obsort.Network
	// Telemetry, if non-nil, instruments every working array the engine
	// creates (comparison/stage counters and sort-pass spans). Set it
	// before the first materialization, or call SetTelemetry to cover
	// arrays that already exist.
	Telemetry *telemetry.Registry
	n         int
	sets      map[relation.AttrSet]*sortState
	seq       atomic.Int64
}

// SetTelemetry attaches a metrics registry to the engine and to every
// already-materialized array (used after resume or late wiring).
func (e *SortEngine) SetTelemetry(reg *telemetry.Registry) {
	e.Telemetry = reg
	e.edb.cipher.SetTelemetry(reg)
	for _, st := range e.sets {
		st.arr.SetTelemetry(reg)
	}
}

type sortState struct {
	arr  *obsort.Array // (label_X, r[ID]) records, ordered by r[ID]
	card uint64
}

var sortEngines atomic.Int64

// sortRecWidth is key/label (8 bytes) followed by r[ID] (8 bytes).
const sortRecWidth = 16

// NewSortEngine builds a sorting engine over an uploaded database.
func NewSortEngine(edb *EncryptedDB, workers int) *SortEngine {
	if workers < 1 {
		workers = 1
	}
	return &SortEngine{
		edb:      edb,
		instance: fmt.Sprintf("sort%d", sortEngines.Add(1)),
		Workers:  workers,
		n:        edb.NumRows(),
		sets:     make(map[relation.AttrSet]*sortState),
	}
}

// NumRows implements Engine.
func (e *SortEngine) NumRows() int { return e.n }

// lessByKey orders records by their leading 8-byte key.
func lessByKey(a, b []byte) bool { return bytes.Compare(a[:8], b[:8]) < 0 }

// lessByID orders records by their trailing 8-byte r[ID].
func lessByID(a, b []byte) bool { return bytes.Compare(a[8:16], b[8:16]) < 0 }

// materialize runs Algorithm 3 on the array A (already holding
// (key_X, r[ID]) records) and returns the final state.
func (e *SortEngine) materialize(arr *obsort.Array) (*sortState, error) {
	// Line 1: sort by key_X so equal keys are consecutive.
	if err := arr.SortNetwork(lessByKey, e.Workers, e.Network); err != nil {
		return nil, fmt.Errorf("core: sorting by key: %w", err)
	}
	// Lines 2–8: one oblivious pass assigns dense labels. The pass reads
	// and rewrites every cell whether or not the label changed.
	var tmp []byte
	var card uint64
	err := arr.Scan(func(i int, rec []byte) ([]byte, error) {
		key := append([]byte(nil), rec[:8]...)
		if i == 0 {
			tmp = key
		}
		if !bytes.Equal(key, tmp) {
			card++
			tmp = key
		}
		copy(rec[:8], encodeUint64(card))
		return rec, nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: labeling pass: %w", err)
	}
	// Line 9: restore r[ID] order so B_X aligns with every other B_Y.
	if err := arr.SortNetwork(lessByID, e.Workers, e.Network); err != nil {
		return nil, fmt.Errorf("core: sorting by id: %w", err)
	}
	return &sortState{arr: arr, card: card + 1}, nil
}

// nextName draws a unique server-side array name. Batch calls draw names
// up front, in job order, so naming is deterministic under any worker count.
func (e *SortEngine) nextName() string {
	return fmt.Sprintf("%s:%d:B", e.instance, e.seq.Add(1))
}

// buildSingle materializes B_{attr} under the given array name. Cell values
// are prefetched one ChunkCells-sized column range per storage round; the
// per-cell accesses the server records are the same ascending scan as a
// one-at-a-time read.
func (e *SortEngine) buildSingle(attr int, name string) (*sortState, error) {
	var vals []string
	var base int
	arr, err := obsort.CreateStreamed(e.edb.svc, e.edb.cipher, name, e.n, sortRecWidth,
		func(i int) ([]byte, error) {
			if i%obsort.ChunkCells == 0 {
				hi := i + obsort.ChunkCells
				if hi > e.n {
					hi = e.n
				}
				v, err := e.edb.CellValues(i, hi, attr)
				if err != nil {
					return nil, err
				}
				vals, base = v, i
			}
			rec := make([]byte, sortRecWidth)
			copy(rec, encodeUint64(singleKey(e.edb.cipher, vals[i-base])))
			copy(rec[8:], encodeUint64(uint64(i)))
			return rec, nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: building A for attr %d: %w", attr, err)
	}
	arr.SetTelemetry(e.Telemetry)
	return e.materialize(arr)
}

// buildUnion materializes B_{x1∪x2} from the covers' arrays under the given
// name. Both covers' label records are prefetched one ChunkCells-sized range
// at a time, fused into a single batched round when the storage service
// supports it.
func (e *SortEngine) buildUnion(x relation.AttrSet, st1, st2 *sortState, name string) (*sortState, error) {
	var recs [][][]byte
	var base int
	arr, err := obsort.CreateStreamed(e.edb.svc, e.edb.cipher, name, e.n, sortRecWidth,
		func(i int) ([]byte, error) {
			if i%obsort.ChunkCells == 0 {
				hi := i + obsort.ChunkCells
				if hi > e.n {
					hi = e.n
				}
				r, err := obsort.GetRanges([]*obsort.Array{st1.arr, st2.arr}, i, hi)
				if err != nil {
					return nil, err
				}
				recs, base = r, i
			}
			r1, r2 := recs[0][i-base], recs[1][i-base]
			rec := make([]byte, sortRecWidth)
			copy(rec, encodeUint64(unionKey(decodeUint64(r1), decodeUint64(r2))))
			copy(rec[8:], r1[8:16]) // r[ID], identical in both inputs
			return rec, nil
		})
	if err != nil {
		return nil, fmt.Errorf("core: building A for %v: %w", x, err)
	}
	arr.SetTelemetry(e.Telemetry)
	return e.materialize(arr)
}

// CardinalitySingle implements Engine.
func (e *SortEngine) CardinalitySingle(attr int) (int, error) {
	x := relation.SingleAttr(attr)
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	st, err := e.buildSingle(attr, e.nextName())
	if err != nil {
		return 0, err
	}
	e.sets[x] = st
	return int(st.card), nil
}

// CardinalityUnion implements Engine. Labels are extracted positionally:
// both B arrays are ordered by r[ID], so B_X1[i] and B_X2[i] describe the
// same record (§IV-D's extraction).
func (e *SortEngine) CardinalityUnion(x1, x2 relation.AttrSet) (int, error) {
	x, err := validateUnion(x1, x2)
	if err != nil {
		return 0, err
	}
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	st1, ok := e.sets[x1]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x1)
	}
	st2, ok := e.sets[x2]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrNotMaterialized, x2)
	}
	st, err := e.buildUnion(x, st1, st2, e.nextName())
	if err != nil {
		return 0, err
	}
	e.sets[x] = st
	return int(st.card), nil
}

// CardinalitySingleBatch implements ParallelEngine. Partition builds are
// embarrassingly parallel here: each job touches only its own attribute
// column and its own fresh array, so all jobs share a wave and the sorting
// work overlaps across candidates as well as inside each bitonic network.
func (e *SortEngine) CardinalitySingleBatch(attrs []int, workers int) ([]int, error) {
	results := make([]int, len(attrs))
	jobs := make([]batchJob, len(attrs))
	for k, attr := range attrs {
		k, attr := k, attr
		x := relation.SingleAttr(attr)
		name := e.nextName()
		var st *sortState
		jobs[k] = batchJob{
			resources: []relation.AttrSet{x},
			run: func() error {
				if cached, ok := e.sets[x]; ok {
					st = cached
					return nil
				}
				var err error
				st, err = e.buildSingle(attr, name)
				return err
			},
			commit: func() {
				e.sets[x] = st
				results[k] = int(st.card)
			},
		}
	}
	if err := runBatch(jobs, workers); err != nil {
		return nil, err
	}
	return results, nil
}

// CardinalityUnionBatch implements ParallelEngine. Jobs sharing a cover run
// in different waves so each cover array's read sequence stays in serial
// order; everything else proceeds concurrently.
func (e *SortEngine) CardinalityUnionBatch(jobs []UnionJob, workers int) ([]int, error) {
	results := make([]int, len(jobs))
	bjobs := make([]batchJob, len(jobs))
	for k, uj := range jobs {
		k, x1, x2 := k, uj.X1, uj.X2
		x, err := validateUnion(x1, x2)
		if err != nil {
			return nil, err
		}
		name := e.nextName()
		var st *sortState
		bjobs[k] = batchJob{
			resources: []relation.AttrSet{x1, x2, x},
			run: func() error {
				if cached, ok := e.sets[x]; ok {
					st = cached
					return nil
				}
				st1, ok := e.sets[x1]
				if !ok {
					return fmt.Errorf("%w: %v", ErrNotMaterialized, x1)
				}
				st2, ok := e.sets[x2]
				if !ok {
					return fmt.Errorf("%w: %v", ErrNotMaterialized, x2)
				}
				var err error
				st, err = e.buildUnion(x, st1, st2, name)
				return err
			},
			commit: func() {
				e.sets[x] = st
				results[k] = int(st.card)
			},
		}
	}
	if err := runBatch(bjobs, workers); err != nil {
		return nil, err
	}
	return results, nil
}

var _ ParallelEngine = (*SortEngine)(nil)

// CardinalityRaw materializes π_X without attribute compression: the sort
// key is the full projected value r[X] itself, so every record fetches and
// decrypts |X| cells and every compare-exchange ships |X| cells' worth of
// ciphertext. This is the pre-compression baseline the paper's §IV-B
// optimization replaces — its cost grows with |X|, whereas
// CardinalityUnion's is constant. The final partition is compacted to the
// standard (label, id) form, so raw-materialized sets remain usable as
// union covers. It exists for the ablation benchmark and as an independent
// correctness cross-check.
func (e *SortEngine) CardinalityRaw(x relation.AttrSet) (int, error) {
	if x.IsEmpty() {
		return 0, fmt.Errorf("core: CardinalityRaw on empty set")
	}
	if st, ok := e.sets[x]; ok {
		return int(st.card), nil
	}
	attrs := x.Attrs()

	// First pass: fixed record geometry needs the widest projection
	// (cell lengths are public size metadata, but the uncompressed
	// algorithm still has to scan them).
	projWidth := 0
	projFor := func(i int) ([]byte, error) {
		var proj []byte
		for _, a := range attrs {
			v, err := e.edb.CellValue(i, a)
			if err != nil {
				return nil, err
			}
			// Length-prefixed so ("ab","c") ≠ ("a","bc").
			proj = append(proj, encodeUint64(uint64(len(v)))...)
			proj = append(proj, v...)
		}
		return proj, nil
	}
	for i := 0; i < e.n; i++ {
		proj, err := projFor(i)
		if err != nil {
			return 0, err
		}
		if len(proj) > projWidth {
			projWidth = len(proj)
		}
	}

	// Second pass: build the wide array [proj | pad | id].
	recWidth := projWidth + 8
	wideName := fmt.Sprintf("%s:%d:RAW", e.instance, e.seq.Add(1))
	wide, err := obsort.CreateStreamed(e.edb.svc, e.edb.cipher, wideName, e.n, recWidth,
		func(i int) ([]byte, error) {
			proj, err := projFor(i)
			if err != nil {
				return nil, err
			}
			rec := make([]byte, recWidth)
			copy(rec, proj)
			copy(rec[projWidth:], encodeUint64(uint64(i)))
			return rec, nil
		})
	if err != nil {
		return 0, fmt.Errorf("core: building raw A for %v: %w", x, err)
	}
	wide.SetTelemetry(e.Telemetry)

	// Algorithm 3 on wide records: sort by the raw key, assign dense
	// labels into the record head, sort back by id.
	lessRawKey := func(a, b []byte) bool { return bytes.Compare(a[:projWidth], b[:projWidth]) < 0 }
	lessRawID := func(a, b []byte) bool { return bytes.Compare(a[projWidth:], b[projWidth:]) < 0 }
	if err := wide.SortNetwork(lessRawKey, e.Workers, e.Network); err != nil {
		return 0, fmt.Errorf("core: raw key sort: %w", err)
	}
	var tmp []byte
	var card uint64
	err = wide.Scan(func(i int, rec []byte) ([]byte, error) {
		key := append([]byte(nil), rec[:projWidth]...)
		if i == 0 {
			tmp = key
		}
		if !bytes.Equal(key, tmp) {
			card++
			tmp = key
		}
		for j := 8; j < projWidth; j++ {
			rec[j] = 0
		}
		copy(rec[:8], encodeUint64(card))
		return rec, nil
	})
	if err != nil {
		return 0, fmt.Errorf("core: raw labeling pass: %w", err)
	}
	if err := wide.SortNetwork(lessRawID, e.Workers, e.Network); err != nil {
		return 0, fmt.Errorf("core: raw id sort: %w", err)
	}

	// Compact to the standard 16-byte (label, id) form for reuse.
	name := fmt.Sprintf("%s:%d:B", e.instance, e.seq.Add(1))
	arr, err := obsort.CreateStreamed(e.edb.svc, e.edb.cipher, name, e.n, sortRecWidth,
		func(i int) ([]byte, error) {
			r, err := wide.Get(i)
			if err != nil {
				return nil, err
			}
			rec := make([]byte, sortRecWidth)
			copy(rec, r[:8])
			copy(rec[8:], r[projWidth:])
			return rec, nil
		})
	if err != nil {
		return 0, fmt.Errorf("core: compacting raw B for %v: %w", x, err)
	}
	arr.SetTelemetry(e.Telemetry)
	if err := wide.Destroy(); err != nil {
		return 0, err
	}
	e.sets[x] = &sortState{arr: arr, card: card + 1}
	return int(card + 1), nil
}

// Cardinality implements Engine.
func (e *SortEngine) Cardinality(x relation.AttrSet) (int, bool) {
	st, ok := e.sets[x]
	if !ok {
		return 0, false
	}
	return int(st.card), true
}

// Release implements Engine.
func (e *SortEngine) Release(x relation.AttrSet) error {
	st, ok := e.sets[x]
	if !ok {
		return fmt.Errorf("%w: %v", ErrNotMaterialized, x)
	}
	if err := st.arr.Destroy(); err != nil {
		return err
	}
	delete(e.sets, x)
	return nil
}

// ClientMemoryBytes implements Engine: the sorting client holds only the
// encryption key and one in-flight record pair (§VII-C reports a constant).
func (e *SortEngine) ClientMemoryBytes() int {
	return 16 /* AES key */ + 2*(sortRecWidth+1)
}

// Close implements Engine.
func (e *SortEngine) Close() error {
	for x := range e.sets {
		if err := e.Release(x); err != nil {
			return err
		}
	}
	return nil
}
