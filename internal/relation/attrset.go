// Package relation defines the plaintext data model shared by every layer:
// schemas, relations (n rows × m attributes), attribute sets, and functional
// dependencies. It mirrors the paper's notation (§II): a database DB has n
// rows and m attributes T = {T_1..T_m}; r[X] is record r's value under
// attribute set X; r[ID] is the record's unique row number.
package relation

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxAttrs is the largest number of attributes an AttrSet can hold. 64 is
// far beyond the paper's datasets (m ≤ 20) and keeps sets a single word.
const MaxAttrs = 64

// AttrSet is a set of attribute indices represented as a bitset; attribute
// i ∈ [m] is present iff bit i is set. The zero value is the empty set.
type AttrSet uint64

// NewAttrSet builds a set from attribute indices.
func NewAttrSet(attrs ...int) AttrSet {
	var s AttrSet
	for _, a := range attrs {
		s = s.Add(a)
	}
	return s
}

// SingleAttr returns the singleton set {a}.
func SingleAttr(a int) AttrSet { return AttrSet(1) << uint(a) }

// Add returns s ∪ {a}.
func (s AttrSet) Add(a int) AttrSet {
	if a < 0 || a >= MaxAttrs {
		panic(fmt.Sprintf("relation: attribute index %d out of range [0,%d)", a, MaxAttrs))
	}
	return s | SingleAttr(a)
}

// Remove returns s \ {a}.
func (s AttrSet) Remove(a int) AttrSet { return s &^ SingleAttr(a) }

// Has reports whether a ∈ s.
func (s AttrSet) Has(a int) bool {
	return a >= 0 && a < MaxAttrs && s&SingleAttr(a) != 0
}

// Union returns s ∪ t.
func (s AttrSet) Union(t AttrSet) AttrSet { return s | t }

// Intersect returns s ∩ t.
func (s AttrSet) Intersect(t AttrSet) AttrSet { return s & t }

// Minus returns s \ t.
func (s AttrSet) Minus(t AttrSet) AttrSet { return s &^ t }

// Contains reports whether t ⊆ s.
func (s AttrSet) Contains(t AttrSet) bool { return s&t == t }

// ProperSubsetOf reports whether s ⊊ t.
func (s AttrSet) ProperSubsetOf(t AttrSet) bool { return t.Contains(s) && s != t }

// Size returns |s|.
func (s AttrSet) Size() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether s is the empty set.
func (s AttrSet) IsEmpty() bool { return s == 0 }

// Attrs returns the attribute indices in ascending order.
func (s AttrSet) Attrs() []int {
	out := make([]int, 0, s.Size())
	for v := uint64(s); v != 0; v &= v - 1 {
		out = append(out, bits.TrailingZeros64(v))
	}
	return out
}

// First returns the smallest attribute index in s, or -1 if s is empty.
func (s AttrSet) First() int {
	if s == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(s))
}

// Last returns the largest attribute index in s, or -1 if s is empty.
func (s AttrSet) Last() int {
	if s == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// SplitCover returns two distinct proper subsets X1, X2 ⊊ s with
// X1 ∪ X2 = s, as required by the partition-friendly Property 1 (§IV-A).
// It panics if |s| < 2, where no such cover exists. The split removes the
// largest (resp. smallest) attribute, matching the prefix-based covers the
// levelwise lattice has already materialized.
func (s AttrSet) SplitCover() (x1, x2 AttrSet) {
	if s.Size() < 2 {
		panic(fmt.Sprintf("relation: SplitCover on %v needs |X| ≥ 2", s))
	}
	return s.Remove(s.Last()), s.Remove(s.First())
}

// Subsets invokes fn on every non-empty proper subset of s that removes
// exactly one attribute (the "parents" of s in the containment lattice).
func (s AttrSet) Subsets(fn func(sub AttrSet)) {
	for _, a := range s.Attrs() {
		fn(s.Remove(a))
	}
}

// String renders the set as {i,j,...} with attribute indices.
func (s AttrSet) String() string {
	parts := make([]string, 0, s.Size())
	for _, a := range s.Attrs() {
		parts = append(parts, fmt.Sprint(a))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Names renders the set using a schema's attribute names, sorted by index.
func (s AttrSet) Names(schema *Schema) string {
	parts := make([]string, 0, s.Size())
	for _, a := range s.Attrs() {
		parts = append(parts, schema.Name(a))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// AllSingletons returns the m singleton sets {0}..{m-1}.
func AllSingletons(m int) []AttrSet {
	out := make([]AttrSet, m)
	for i := range out {
		out[i] = SingleAttr(i)
	}
	return out
}

// FullSet returns {0..m-1}.
func FullSet(m int) AttrSet {
	if m < 0 || m > MaxAttrs {
		panic(fmt.Sprintf("relation: FullSet(%d) out of range", m))
	}
	if m == MaxAttrs {
		return ^AttrSet(0)
	}
	return (AttrSet(1) << uint(m)) - 1
}
