package relation

import (
	"fmt"
	"strings"
)

// Schema describes the attributes (columns) of a relation.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Names must be unique.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("relation: schema needs at least one attribute")
	}
	if len(names) > MaxAttrs {
		return nil, fmt.Errorf("relation: %d attributes exceeds maximum %d", len(names), MaxAttrs)
	}
	s := &Schema{names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute name %q", n)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustNewSchema is NewSchema that panics on error, for tests and literals.
func MustNewSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Width returns the number of attributes m.
func (s *Schema) Width() int { return len(s.names) }

// Name returns the name of attribute i.
func (s *Schema) Name(i int) string { return s.names[i] }

// Names returns a copy of all attribute names in order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Index returns the index of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Set builds an AttrSet from attribute names.
func (s *Schema) Set(names ...string) (AttrSet, error) {
	var set AttrSet
	for _, n := range names {
		i, ok := s.index[n]
		if !ok {
			return 0, fmt.Errorf("relation: unknown attribute %q", n)
		}
		set = set.Add(i)
	}
	return set, nil
}

// MustSet is Set that panics on unknown names.
func (s *Schema) MustSet(names ...string) AttrSet {
	set, err := s.Set(names...)
	if err != nil {
		panic(err)
	}
	return set
}

// Row is one record's attribute values, indexed by attribute position.
type Row []string

// Relation is a plaintext table: a schema plus n rows. Row i has implicit
// identifier r[ID] = i (the paper lets r[ID] be the row number, §IV-C).
type Relation struct {
	schema *Schema
	rows   []Row
}

// New builds an empty relation over the schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// FromRows builds a relation and validates row widths.
func FromRows(schema *Schema, rows []Row) (*Relation, error) {
	r := New(schema)
	for i, row := range rows {
		if err := r.Append(row); err != nil {
			return nil, fmt.Errorf("relation: row %d: %w", i, err)
		}
	}
	return r, nil
}

// MustFromRows is FromRows that panics on error.
func MustFromRows(schema *Schema, rows []Row) *Relation {
	r, err := FromRows(schema, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// NumRows returns n.
func (r *Relation) NumRows() int { return len(r.rows) }

// NumAttrs returns m.
func (r *Relation) NumAttrs() int { return r.schema.Width() }

// Row returns row i (not a copy; callers must not mutate it).
func (r *Relation) Row(i int) Row { return r.rows[i] }

// Value returns r_i[attr].
func (r *Relation) Value(i, attr int) string { return r.rows[i][attr] }

// Append adds a row, validating its width.
func (r *Relation) Append(row Row) error {
	if len(row) != r.schema.Width() {
		return fmt.Errorf("row has %d values, schema has %d attributes", len(row), r.schema.Width())
	}
	r.rows = append(r.rows, row)
	return nil
}

// ProjectKey returns the composite value r_i[X] for attribute set X, encoded
// unambiguously (values joined with a length prefix so ("ab","c") and
// ("a","bc") differ).
func (r *Relation) ProjectKey(i int, x AttrSet) string {
	var b strings.Builder
	for _, a := range x.Attrs() {
		v := r.rows[i][a]
		fmt.Fprintf(&b, "%d:", len(v))
		b.WriteString(v)
		b.WriteByte('|')
	}
	return b.String()
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	rows := make([]Row, len(r.rows))
	for i, row := range r.rows {
		rows[i] = append(Row(nil), row...)
	}
	return &Relation{schema: r.schema, rows: rows}
}

// Sample returns a new relation holding the first n rows (or all rows if the
// relation is smaller). The paper samples 2^13 rows per dataset for the
// obliviousness experiment (§VII-B).
func (r *Relation) Sample(n int) *Relation {
	if n > len(r.rows) {
		n = len(r.rows)
	}
	rows := make([]Row, n)
	copy(rows, r.rows[:n])
	return &Relation{schema: r.schema, rows: rows}
}

// ByteSize returns the total plaintext payload size in bytes (sum of cell
// value lengths), matching Table I's "Size" column semantics.
func (r *Relation) ByteSize() int {
	total := 0
	for _, row := range r.rows {
		for _, v := range row {
			total += len(v)
		}
	}
	return total
}
