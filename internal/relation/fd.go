package relation

import (
	"fmt"
	"sort"
)

// FD is a functional dependency LHS → RHS between attribute sets (§II-B).
type FD struct {
	LHS AttrSet
	RHS AttrSet
}

// String renders the FD with attribute indices.
func (f FD) String() string { return fmt.Sprintf("%v -> %v", f.LHS, f.RHS) }

// Format renders the FD with attribute names from a schema.
func (f FD) Format(schema *Schema) string {
	return fmt.Sprintf("%s -> %s", f.LHS.Names(schema), f.RHS.Names(schema))
}

// Holds reports whether the dependency holds on the plaintext relation by
// direct definition: for all pairs r1,r2, r1[LHS]=r2[LHS] ⇒ r1[RHS]=r2[RHS].
// This is the O(n) hashing check used as ground truth in tests.
func (f FD) Holds(r *Relation) bool {
	seen := make(map[string]string, r.NumRows())
	for i := 0; i < r.NumRows(); i++ {
		lhs := r.ProjectKey(i, f.LHS)
		rhs := r.ProjectKey(i, f.RHS)
		if prev, ok := seen[lhs]; ok {
			if prev != rhs {
				return false
			}
		} else {
			seen[lhs] = rhs
		}
	}
	return true
}

// SortFDs orders FDs deterministically (by LHS then RHS) for stable output
// and comparison in tests.
func SortFDs(fds []FD) {
	sort.Slice(fds, func(i, j int) bool {
		if fds[i].LHS != fds[j].LHS {
			return fds[i].LHS < fds[j].LHS
		}
		return fds[i].RHS < fds[j].RHS
	})
}

// FDSetEqual reports whether two FD slices contain the same dependencies,
// ignoring order and duplicates.
func FDSetEqual(a, b []FD) bool {
	set := func(fds []FD) map[FD]bool {
		m := make(map[FD]bool, len(fds))
		for _, f := range fds {
			m[f] = true
		}
		return m
	}
	sa, sb := set(a), set(b)
	if len(sa) != len(sb) {
		return false
	}
	for f := range sa {
		if !sb[f] {
			return false
		}
	}
	return true
}
