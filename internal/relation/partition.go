package relation

// Partition is the plaintext partition π_X of a relation under an attribute
// set X (§II-C): rows grouped into equivalence classes by their value of X.
// It is used by the baseline discoverer and as a correctness oracle; the
// secure protocols never materialize it in plaintext on the server.
type Partition struct {
	// Labels assigns every row the index of its equivalence class, in
	// first-appearance order. len(Labels) == n.
	Labels []int
	// Classes is the number of distinct equivalence classes, |π_X|.
	Classes int
}

// PartitionOf computes π_X for the relation by hashing projected values.
func PartitionOf(r *Relation, x AttrSet) Partition {
	labels := make([]int, r.NumRows())
	seen := make(map[string]int, r.NumRows())
	next := 0
	for i := 0; i < r.NumRows(); i++ {
		k := r.ProjectKey(i, x)
		lbl, ok := seen[k]
		if !ok {
			lbl = next
			next++
			seen[k] = lbl
		}
		labels[i] = lbl
	}
	return Partition{Labels: labels, Classes: next}
}

// Refine computes the partition of X1 ∪ X2 from the partitions of X1 and X2
// using the label-pair product, mirroring the attribute-compression trick
// (§IV-B): the pair (label_{X1}, label_{X2}) identifies the combined value.
func Refine(p1, p2 Partition) Partition {
	n := len(p1.Labels)
	if len(p2.Labels) != n {
		panic("relation: Refine on partitions of different sizes")
	}
	labels := make([]int, n)
	seen := make(map[[2]int]int, n)
	next := 0
	for i := 0; i < n; i++ {
		k := [2]int{p1.Labels[i], p2.Labels[i]}
		lbl, ok := seen[k]
		if !ok {
			lbl = next
			next++
			seen[k] = lbl
		}
		labels[i] = lbl
	}
	return Partition{Labels: labels, Classes: next}
}
