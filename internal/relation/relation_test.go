package relation

import (
	"testing"
	"testing/quick"
)

// paperExample is the relation from Fig. 1 of the paper.
func paperExample() *Relation {
	schema := MustNewSchema("Name", "City", "Birth")
	return MustFromRows(schema, []Row{
		{"Alice", "Boston", "Jan"},
		{"Bob", "Boston", "May"},
		{"Bob", "Boston", "Jan"},
		{"Carol", "New York", "Sep"},
	})
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty name accepted")
	}
	names := make([]string, MaxAttrs+1)
	for i := range names {
		names[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	if _, err := NewSchema(names...); err == nil {
		t.Error("oversized schema accepted")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := MustNewSchema("Name", "City")
	if i, ok := s.Index("City"); !ok || i != 1 {
		t.Errorf("Index(City) = %d,%v", i, ok)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Error("Index on unknown name succeeded")
	}
	set, err := s.Set("Name", "City")
	if err != nil || set != NewAttrSet(0, 1) {
		t.Errorf("Set = %v, %v", set, err)
	}
	if _, err := s.Set("Nope"); err == nil {
		t.Error("Set on unknown name succeeded")
	}
}

func TestAppendValidatesWidth(t *testing.T) {
	r := New(MustNewSchema("a", "b"))
	if err := r.Append(Row{"1"}); err == nil {
		t.Error("short row accepted")
	}
	if err := r.Append(Row{"1", "2"}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if r.NumRows() != 1 {
		t.Errorf("NumRows = %d", r.NumRows())
	}
}

func TestProjectKeyUnambiguous(t *testing.T) {
	schema := MustNewSchema("a", "b")
	r := MustFromRows(schema, []Row{{"ab", "c"}, {"a", "bc"}})
	x := NewAttrSet(0, 1)
	if r.ProjectKey(0, x) == r.ProjectKey(1, x) {
		t.Error(`ProjectKey collides on ("ab","c") vs ("a","bc")`)
	}
}

func TestPaperExamplePartitions(t *testing.T) {
	r := paperExample()
	name := NewAttrSet(0)
	nameCity := NewAttrSet(0, 1)
	nameBirth := NewAttrSet(0, 2)

	pn := PartitionOf(r, name)
	if pn.Classes != 3 {
		t.Errorf("|π_Name| = %d, want 3", pn.Classes)
	}
	if got := PartitionOf(r, nameCity).Classes; got != 3 {
		t.Errorf("|π_{Name,City}| = %d, want 3", got)
	}
	if got := PartitionOf(r, nameBirth).Classes; got != 4 {
		t.Errorf("|π_{Name,Birth}| = %d, want 4", got)
	}
}

func TestPaperExampleFDs(t *testing.T) {
	r := paperExample()
	nameToCity := FD{LHS: NewAttrSet(0), RHS: NewAttrSet(1)}
	nameToBirth := FD{LHS: NewAttrSet(0), RHS: NewAttrSet(2)}
	if !nameToCity.Holds(r) {
		t.Error("Name -> City should hold (paper Fig. 1)")
	}
	if nameToBirth.Holds(r) {
		t.Error("Name -> Birth should not hold (paper Fig. 1)")
	}
}

// TestTheorem1Property checks Theorem 1: A→B iff |π_A| == |π_{A∪B}|,
// against the direct pairwise definition, on random small relations.
func TestTheorem1Property(t *testing.T) {
	f := func(seed uint8, aRaw, bRaw uint8) bool {
		r := randomRelation(int(seed)%7+2, int(seed)%29+1, 3, int64(seed))
		m := r.NumAttrs()
		a := AttrSet(aRaw) & FullSet(m)
		b := AttrSet(bRaw) & FullSet(m)
		if a.IsEmpty() || b.IsEmpty() {
			return true
		}
		fd := FD{LHS: a, RHS: b}
		viaTheorem := PartitionOf(r, a).Classes == PartitionOf(r, a.Union(b)).Classes
		return fd.Holds(r) == viaTheorem
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRefineProperty checks Refine(π_X1, π_X2) == π_{X1∪X2} in class counts
// and grouping, on random relations.
func TestRefineProperty(t *testing.T) {
	f := func(seed uint8, aRaw, bRaw uint8) bool {
		r := randomRelation(5, int(seed)%31+1, 3, int64(seed)+1000)
		m := r.NumAttrs()
		a := AttrSet(aRaw) & FullSet(m)
		b := AttrSet(bRaw) & FullSet(m)
		if a.IsEmpty() || b.IsEmpty() {
			return true
		}
		got := Refine(PartitionOf(r, a), PartitionOf(r, b))
		want := PartitionOf(r, a.Union(b))
		if got.Classes != want.Classes {
			return false
		}
		// Same grouping: labels must be a bijection of each other.
		fwd := make(map[int]int)
		for i := range got.Labels {
			if w, ok := fwd[got.Labels[i]]; ok {
				if w != want.Labels[i] {
					return false
				}
			} else {
				fwd[got.Labels[i]] = want.Labels[i]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := paperExample()
	c := r.Clone()
	c.Row(0)[0] = "Mallory"
	if r.Value(0, 0) != "Alice" {
		t.Error("Clone shares row storage with original")
	}
}

func TestSampleAndByteSize(t *testing.T) {
	r := paperExample()
	s := r.Sample(2)
	if s.NumRows() != 2 {
		t.Errorf("Sample(2).NumRows = %d", s.NumRows())
	}
	if got := r.Sample(100).NumRows(); got != 4 {
		t.Errorf("oversample NumRows = %d, want 4", got)
	}
	want := 0
	for i := 0; i < r.NumRows(); i++ {
		for j := 0; j < r.NumAttrs(); j++ {
			want += len(r.Value(i, j))
		}
	}
	if got := r.ByteSize(); got != want {
		t.Errorf("ByteSize = %d, want %d", got, want)
	}
}

func TestFDSetEqual(t *testing.T) {
	a := []FD{{LHS: 1, RHS: 2}, {LHS: 3, RHS: 4}}
	b := []FD{{LHS: 3, RHS: 4}, {LHS: 1, RHS: 2}, {LHS: 1, RHS: 2}}
	if !FDSetEqual(a, b) {
		t.Error("equal sets reported unequal")
	}
	c := []FD{{LHS: 1, RHS: 2}}
	if FDSetEqual(a, c) {
		t.Error("unequal sets reported equal")
	}
}

func TestSortFDsDeterministic(t *testing.T) {
	fds := []FD{{LHS: 3, RHS: 1}, {LHS: 1, RHS: 2}, {LHS: 1, RHS: 1}}
	SortFDs(fds)
	want := []FD{{LHS: 1, RHS: 1}, {LHS: 1, RHS: 2}, {LHS: 3, RHS: 1}}
	for i := range want {
		if fds[i] != want[i] {
			t.Errorf("fds[%d] = %v, want %v", i, fds[i], want[i])
		}
	}
}

// randomRelation builds a small random relation for property tests. Values
// are drawn from a small alphabet so FDs and collisions actually occur.
func randomRelation(m, n, cardinality int, seed int64) *Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	r := New(MustNewSchema(names...))
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 33
	}
	for i := 0; i < n; i++ {
		row := make(Row, m)
		for j := range row {
			row[j] = string(rune('a' + int(next())%cardinality))
		}
		if err := r.Append(row); err != nil {
			panic(err)
		}
	}
	return r
}
