package relation

import (
	"testing"
	"testing/quick"
)

func TestAttrSetBasics(t *testing.T) {
	s := NewAttrSet(0, 2, 5)
	if got := s.Size(); got != 3 {
		t.Errorf("Size = %d, want 3", got)
	}
	for _, a := range []int{0, 2, 5} {
		if !s.Has(a) {
			t.Errorf("Has(%d) = false, want true", a)
		}
	}
	for _, a := range []int{1, 3, 4, 6, 63, -1, 64} {
		if s.Has(a) {
			t.Errorf("Has(%d) = true, want false", a)
		}
	}
	if got := s.String(); got != "{0,2,5}" {
		t.Errorf("String = %q, want {0,2,5}", got)
	}
}

func TestAttrSetOps(t *testing.T) {
	a := NewAttrSet(0, 1, 2)
	b := NewAttrSet(2, 3)
	if got := a.Union(b); got != NewAttrSet(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewAttrSet(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != NewAttrSet(0, 1) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Contains(NewAttrSet(0, 2)) {
		t.Error("Contains subset = false")
	}
	if a.Contains(b) {
		t.Error("Contains non-subset = true")
	}
	if !NewAttrSet(0).ProperSubsetOf(a) {
		t.Error("ProperSubsetOf = false for {0} ⊊ {0,1,2}")
	}
	if a.ProperSubsetOf(a) {
		t.Error("set is proper subset of itself")
	}
}

func TestAttrSetFirstLast(t *testing.T) {
	s := NewAttrSet(3, 17, 41)
	if s.First() != 3 {
		t.Errorf("First = %d, want 3", s.First())
	}
	if s.Last() != 41 {
		t.Errorf("Last = %d, want 41", s.Last())
	}
	var empty AttrSet
	if empty.First() != -1 || empty.Last() != -1 {
		t.Error("empty set First/Last should be -1")
	}
}

func TestSplitCoverProperty(t *testing.T) {
	// For any set with |X| ≥ 2: X1, X2 ⊊ X, X1 ≠ X2, X1 ∪ X2 = X.
	f := func(raw uint64) bool {
		s := AttrSet(raw)
		if s.Size() < 2 {
			return true
		}
		x1, x2 := s.SplitCover()
		return x1 != x2 &&
			x1.ProperSubsetOf(s) && x2.ProperSubsetOf(s) &&
			x1.Union(x2) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSplitCoverPanicsOnSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SplitCover on singleton did not panic")
		}
	}()
	NewAttrSet(4).SplitCover()
}

func TestSubsetsEnumeratesParents(t *testing.T) {
	s := NewAttrSet(1, 4, 9)
	var got []AttrSet
	s.Subsets(func(sub AttrSet) { got = append(got, sub) })
	want := []AttrSet{NewAttrSet(4, 9), NewAttrSet(1, 9), NewAttrSet(1, 4)}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("subset %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFullSet(t *testing.T) {
	if got := FullSet(3); got != NewAttrSet(0, 1, 2) {
		t.Errorf("FullSet(3) = %v", got)
	}
	if got := FullSet(0); got != 0 {
		t.Errorf("FullSet(0) = %v, want empty", got)
	}
	if got := FullSet(64).Size(); got != 64 {
		t.Errorf("FullSet(64).Size = %d", got)
	}
}

func TestAttrsRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		s := AttrSet(raw)
		return NewAttrSet(s.Attrs()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllSingletons(t *testing.T) {
	singles := AllSingletons(5)
	if len(singles) != 5 {
		t.Fatalf("len = %d, want 5", len(singles))
	}
	for i, s := range singles {
		if s.Size() != 1 || !s.Has(i) {
			t.Errorf("singleton %d = %v", i, s)
		}
	}
}
