package baseline

import (
	"testing"

	"github.com/oblivfd/oblivfd/internal/relation"
)

func paperExample() *relation.Relation {
	schema := relation.MustNewSchema("Name", "City", "Birth")
	return relation.MustFromRows(schema, []relation.Row{
		{"Alice", "Boston", "Jan"},
		{"Bob", "Boston", "May"},
		{"Bob", "Boston", "Jan"},
		{"Carol", "New York", "Sep"},
	})
}

func TestPaperExampleMinimalFDs(t *testing.T) {
	fds := MinimalFDs(paperExample())
	// Exactly two minimal FDs exist: Name → City (the paper's Fig. 1
	// example) and Birth → City. {Name,Birth} → City holds too but is
	// not minimal.
	want := []relation.FD{
		{LHS: relation.NewAttrSet(0), RHS: relation.NewAttrSet(1)}, // Name → City
		{LHS: relation.NewAttrSet(2), RHS: relation.NewAttrSet(1)}, // Birth → City
	}
	if !relation.FDSetEqual(fds, want) {
		t.Errorf("MinimalFDs = %v, want %v", fds, want)
	}
	// Every reported FD must actually hold and be minimal.
	rel := paperExample()
	for _, fd := range fds {
		if !fd.Holds(rel) {
			t.Errorf("reported FD %v does not hold", fd)
		}
		for _, a := range fd.LHS.Attrs() {
			smaller := relation.FD{LHS: fd.LHS.Remove(a), RHS: fd.RHS}
			if smaller.Holds(rel) {
				t.Errorf("FD %v is not minimal: %v also holds", fd, smaller)
			}
		}
	}
}

func TestConstantColumn(t *testing.T) {
	schema := relation.MustNewSchema("a", "b")
	rel := relation.MustFromRows(schema, []relation.Row{
		{"1", "x"}, {"2", "x"}, {"3", "x"},
	})
	fds := MinimalFDs(rel)
	found := false
	for _, fd := range fds {
		if fd.LHS.IsEmpty() && fd.RHS == relation.NewAttrSet(1) {
			found = true
		}
	}
	if !found {
		t.Errorf("constant column not reported as ∅ -> b: %v", fds)
	}
}

func TestKeyColumn(t *testing.T) {
	schema := relation.MustNewSchema("id", "x", "y")
	rel := relation.MustFromRows(schema, []relation.Row{
		{"1", "a", "p"}, {"2", "a", "q"}, {"3", "b", "p"},
	})
	fds := MinimalFDs(rel)
	// id is a key: id → x and id → y must be reported (minimal, since
	// neither x nor y is constant and ∅ determines nothing here).
	has := func(lhs, rhs relation.AttrSet) bool {
		for _, fd := range fds {
			if fd.LHS == lhs && fd.RHS == rhs {
				return true
			}
		}
		return false
	}
	if !has(relation.NewAttrSet(0), relation.NewAttrSet(1)) {
		t.Errorf("missing id -> x: %v", fds)
	}
	if !has(relation.NewAttrSet(0), relation.NewAttrSet(2)) {
		t.Errorf("missing id -> y: %v", fds)
	}
}

func TestNoFDs(t *testing.T) {
	// A relation engineered to have no non-trivial single-column FDs:
	// every pair of columns disagrees in both directions, and no column
	// is constant or a key... but two-column LHSs that are keys will
	// still determine the rest, so only check single-attribute LHSs.
	schema := relation.MustNewSchema("a", "b")
	rel := relation.MustFromRows(schema, []relation.Row{
		{"1", "x"}, {"1", "y"}, {"2", "x"}, {"2", "y"},
	})
	for _, fd := range MinimalFDs(rel) {
		if fd.LHS.Size() <= 1 && fd.LHS.Size() == 1 {
			t.Errorf("unexpected single-attribute FD %v", fd)
		}
	}
}

// TestReportedSetIsSoundAndComplete cross-checks MinimalFDs against direct
// enumeration on random relations: every minimal FD is reported, nothing
// else.
func TestReportedSetIsSoundAndComplete(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rel := randomRelation(4, 12, 2, seed)
		fds := MinimalFDs(rel)
		reported := make(map[relation.FD]bool, len(fds))
		for _, fd := range fds {
			reported[fd] = true
		}
		m := rel.NumAttrs()
		for raw := 0; raw < 1<<m; raw++ {
			lhs := relation.AttrSet(raw)
			for a := 0; a < m; a++ {
				if lhs.Has(a) {
					continue
				}
				fd := relation.FD{LHS: lhs, RHS: relation.SingleAttr(a)}
				holds := fd.Holds(rel)
				minimal := holds
				if holds {
					for _, b := range lhs.Attrs() {
						if (relation.FD{LHS: lhs.Remove(b), RHS: fd.RHS}).Holds(rel) {
							minimal = false
							break
						}
					}
				}
				if minimal != reported[fd] {
					t.Fatalf("seed %d: FD %v minimal=%v reported=%v", seed, fd, minimal, reported[fd])
				}
			}
		}
	}
}

func randomRelation(m, n, cardinality int, seed int64) *relation.Relation {
	names := make([]string, m)
	for i := range names {
		names[i] = string(rune('A' + i))
	}
	rel := relation.New(relation.MustNewSchema(names...))
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*2862933555777941757 + 3037000493
		return state >> 33
	}
	for i := 0; i < n; i++ {
		row := make(relation.Row, m)
		for j := range row {
			row[j] = string(rune('a' + int(next())%cardinality))
		}
		if err := rel.Append(row); err != nil {
			panic(err)
		}
	}
	return rel
}
