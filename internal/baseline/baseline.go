// Package baseline provides an independent correctness oracle for FD
// discovery: an exhaustive search over the attribute-set lattice using
// direct partition counting on plaintext. It shares no code with the
// lattice or engines in internal/core, so agreement between the two is
// meaningful evidence of correctness. It is exponential in the attribute
// count and intended for small test relations only.
package baseline

import (
	"github.com/oblivfd/oblivfd/internal/relation"
)

// MinimalFDs returns every minimal functional dependency X → A (singleton
// right-hand side, A ∉ X, no proper subset of X determining A) of the
// relation, in deterministic order. For constant attributes it includes
// ∅ → A (empty LHS).
func MinimalFDs(rel *relation.Relation) []relation.FD {
	m := rel.NumAttrs()
	var fds []relation.FD

	// Enumerate candidate LHS sets in subset-size order so minimality can
	// be checked against already-found smaller FDs.
	determinedBy := make(map[int][]relation.AttrSet) // attr → minimal LHSs found

	sets := allSetsBySize(m)
	for _, lhs := range sets {
		for a := 0; a < m; a++ {
			if lhs.Has(a) {
				continue
			}
			if hasSubsetDeterminer(determinedBy[a], lhs) {
				continue // not minimal
			}
			if holdsDirect(rel, lhs, a) {
				fd := relation.FD{LHS: lhs, RHS: relation.SingleAttr(a)}
				fds = append(fds, fd)
				determinedBy[a] = append(determinedBy[a], lhs)
			}
		}
	}
	relation.SortFDs(fds)
	return fds
}

// holdsDirect checks lhs → a by the pairwise definition via hashing.
func holdsDirect(rel *relation.Relation, lhs relation.AttrSet, a int) bool {
	seen := make(map[string]string, rel.NumRows())
	for i := 0; i < rel.NumRows(); i++ {
		k := rel.ProjectKey(i, lhs)
		v := rel.Value(i, a)
		if prev, ok := seen[k]; ok {
			if prev != v {
				return false
			}
		} else {
			seen[k] = v
		}
	}
	return true
}

// hasSubsetDeterminer reports whether any recorded determiner of a is a
// subset of lhs (including equality and the empty set).
func hasSubsetDeterminer(determiners []relation.AttrSet, lhs relation.AttrSet) bool {
	for _, d := range determiners {
		if lhs.Contains(d) {
			return true
		}
	}
	return false
}

// allSetsBySize enumerates every subset of [m] (including the empty set) in
// ascending size order, deterministic within a size.
func allSetsBySize(m int) []relation.AttrSet {
	bySize := make([][]relation.AttrSet, m+1)
	total := 1 << m
	for raw := 0; raw < total; raw++ {
		s := relation.AttrSet(raw)
		bySize[s.Size()] = append(bySize[s.Size()], s)
	}
	var out []relation.AttrSet
	for _, group := range bySize {
		out = append(out, group...)
	}
	return out
}

// Holds checks an arbitrary FD A → B directly on the relation; it is the
// oracle for Validate-style queries.
func Holds(rel *relation.Relation, fd relation.FD) bool {
	return fd.Holds(rel)
}
