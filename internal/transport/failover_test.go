package transport

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"github.com/oblivfd/oblivfd/internal/store"
)

// replNode is one member of an in-process replicated cluster: a durable
// store wrapped with a replication role, served over a real TCP socket.
type replNode struct {
	addr string
	dir  string
	rep  *store.ReplicatedServer
	ts   *Server
}

// kill closes the node's listener and every live connection, simulating the
// server process dying mid-run.
func (n *replNode) kill() { n.ts.Shutdown(0) }

// startReplCluster boots n nodes (node 0 primary, the rest replicas), each
// configured with every other node as a replication peer so whoever ends up
// primary ships to the survivors.
func startReplCluster(t *testing.T, n int) []*replNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	dial := func(addr string) (store.ReplicaConn, error) {
		return DialWith(addr, ClientConfig{Redials: -1})
	}
	nodes := make([]*replNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		dir := t.TempDir()
		d, err := store.OpenDir(dir, store.DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := store.Replicated(d, store.ReplicationConfig{
			Primary:     i == 0,
			Peers:       peers,
			RedialEvery: 1,
			Dial:        dial,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := NewServer(rep)
		ts.SetReplicator(rep)
		go func(l net.Listener) { _ = ts.Serve(l) }(listeners[i])
		nodes[i] = &replNode{addr: addrs[i], dir: dir, rep: rep, ts: ts}
		t.Cleanup(func() { ts.Shutdown(0); rep.Close() })
	}
	return nodes
}

func clusterAddrs(nodes []*replNode) []string {
	addrs := make([]string, len(nodes))
	for i, n := range nodes {
		addrs[i] = n.addr
	}
	return addrs
}

func TestFailoverPoolSurvivesPrimaryDeath(t *testing.T) {
	nodes := startReplCluster(t, 3)
	f, err := DialFailover(clusterAddrs(nodes), 2, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if addr, fence := f.Primary(); addr != nodes[0].addr || fence != 1 {
		t.Fatalf("initial primary = %s fence %d, want %s fence 1", addr, fence, nodes[0].addr)
	}

	if err := f.CreateArray("a", 8); err != nil {
		t.Fatal(err)
	}
	want := [][]byte{{1, 2}, {3}}
	if err := f.WriteCells("a", []int64{0, 5}, want); err != nil {
		t.Fatal(err)
	}

	nodes[0].kill()

	// The next operations ride through the failover: the pool promotes the
	// freshest replica at fence 2 and the replicated data is all there.
	got, err := f.ReadCells("a", []int64{0, 5})
	if err != nil {
		t.Fatalf("read after primary death: %v", err)
	}
	if !bytes.Equal(got[0], want[0]) || !bytes.Equal(got[1], want[1]) {
		t.Fatalf("cells after failover = %v, want %v", got, want)
	}
	if err := f.WriteCells("a", []int64{7}, [][]byte{{9}}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if n := f.Failovers(); n < 1 {
		t.Errorf("failovers = %d, want >= 1", n)
	}
	addr, fence := f.Primary()
	if addr == nodes[0].addr || fence != 2 {
		t.Errorf("post-failover primary = %s fence %d, want a replica at fence 2", addr, fence)
	}
	st, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Primary || st.Fence != 2 || st.Failovers < 1 {
		t.Errorf("stats after failover = %+v", st)
	}

	// The new primary ships to the remaining replica; after one more write
	// the survivor's watermark moves.
	var survivor *replNode
	for _, n := range nodes[1:] {
		if n.addr != addr {
			survivor = n
		}
	}
	if survivor.rep.Watermark() == 0 {
		t.Error("surviving replica never received the new primary's stream")
	}
}

func TestFencedExPrimaryCannotServe(t *testing.T) {
	nodes := startReplCluster(t, 3)
	f, err := DialFailover(clusterAddrs(nodes), 1, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}
	nodes[0].kill()
	if err := f.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatalf("write after failover: %v", err)
	}
	if err := nodes[0].rep.Close(); err != nil {
		t.Fatal(err)
	}

	// The ex-primary restarts with its old flags and old fence, oblivious to
	// the promotion that happened while it was dead.
	d, err := store.OpenDir(nodes[0].dir, store.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := store.Replicated(d, store.ReplicationConfig{Primary: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := NewServer(rep)
	ts.SetReplicator(rep)
	go func() { _ = ts.Serve(l) }()
	defer ts.Shutdown(0)

	// A fence-aware client refuses it — and the refusal teaches the
	// ex-primary the newer fence, deposing it durably.
	_, fence := f.Primary()
	if fence != 2 {
		t.Fatalf("cluster fence = %d, want 2", fence)
	}
	if _, err := DialPoolWith(l.Addr().String(), 1, ClientConfig{Fence: fence}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("fence-aware dial of ex-primary = %v, want ErrFenced", err)
	}
	if rep.IsPrimary() {
		t.Fatal("ex-primary still claims the role after observing the newer fence")
	}

	// Even a legacy fence-less client cannot make it apply writes now.
	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteCells("a", []int64{0}, [][]byte{{0xBB}}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("write to fenced ex-primary = %v, want ErrFenced", err)
	}
}

func TestFailoverPoolPlainServerPassthrough(t *testing.T) {
	// A failover pool pointed at an unreplicated server (seed-era deployment)
	// behaves like an ordinary pool: no fence, no promotion attempts.
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = Serve(l, backend) }()
	defer l.Close()
	f, err := DialFailover([]string{l.Addr().String()}, 1, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, fence := f.Primary(); fence != 0 {
		t.Fatalf("plain-server fence = %d, want 0", fence)
	}
	if err := f.CreateArray("p", 2); err != nil {
		t.Fatal(err)
	}
	if n, err := f.ArrayLen("p"); err != nil || n != 2 {
		t.Fatalf("ArrayLen = %d, %v", n, err)
	}
}

// serveRep exposes one replicated store over TCP with the replication
// handshake wired, returning its address.
func serveRep(t *testing.T, rep *store.ReplicatedServer, limits store.SessionLimits) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ts := NewServer(rep)
	ts.SetSessionLimits(limits)
	ts.SetReplicator(rep)
	go func() { _ = ts.Serve(l) }()
	t.Cleanup(func() { ts.Shutdown(0); rep.Close() })
	return l.Addr().String()
}

// replicaAt builds a replica-role server positioned at the given fencing
// epoch and stream watermark, the coordinates the promotion logic ranks by.
func replicaAt(t *testing.T, fence, watermark int64) *store.ReplicatedServer {
	t.Helper()
	d, err := store.OpenDir(t.TempDir(), store.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := store.Replicated(d, store.ReplicationConfig{Primary: false})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := store.NewServer().SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := rep.ApplySync(fence, watermark, snap.Bytes()); err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestPromotionPrefersNewestFence: watermarks are per-reign stream
// positions, so a replica stranded in an older fencing epoch must lose the
// promotion to a newest-fence survivor even when its watermark is
// numerically far higher — promoting the stranded one would resurrect a
// superseded history fork.
func TestPromotionPrefersNewestFence(t *testing.T) {
	staleAddr := serveRep(t, replicaAt(t, 1, 100), store.SessionLimits{})
	freshAddr := serveRep(t, replicaAt(t, 2, 5), store.SessionLimits{})

	f, err := DialFailover([]string{staleAddr, freshAddr}, 1, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	addr, fence := f.Primary()
	if addr != freshAddr {
		t.Fatalf("promoted %s (old reign, watermark 100), want %s (newest fence)", addr, freshAddr)
	}
	if fence != 3 {
		t.Errorf("promotion fence = %d, want 3 (above every fence seen)", fence)
	}
}

// TestUnauthenticatedHelloCannotFence: the fence claim in a handshake is
// state-changing (it can durably depose the primary), so on a
// token-protected server it must be refused with ErrUnauthorized before the
// fence is acted on — reaching the port must not be enough to fence the
// cluster off.
func TestUnauthenticatedHelloCannotFence(t *testing.T) {
	d, err := store.OpenDir(t.TempDir(), store.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := store.Replicated(d, store.ReplicationConfig{Primary: true})
	if err != nil {
		t.Fatal(err)
	}
	addr := serveRep(t, rep, store.SessionLimits{Token: "s3cret"})

	if _, err := DialWith(addr, ClientConfig{Fence: 99, Token: "wrong", Redials: -1}); !errors.Is(err, store.ErrUnauthorized) {
		t.Fatalf("bad-token fence-bearing dial = %v, want ErrUnauthorized", err)
	}
	if !rep.IsPrimary() || rep.Fence() != 1 {
		t.Fatalf("unauthenticated hello changed the role: primary=%v fence=%d", rep.IsPrimary(), rep.Fence())
	}

	// The genuine token still exercises the fence-aware handshake: a higher
	// client fence deposes the stale primary exactly as before.
	if _, err := DialWith(addr, ClientConfig{Fence: 99, Token: "s3cret", Redials: -1}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("authenticated fence-bearing dial = %v, want ErrFenced", err)
	}
	if rep.IsPrimary() || rep.Fence() != 99 {
		t.Fatalf("authenticated higher fence did not depose: primary=%v fence=%d", rep.IsPrimary(), rep.Fence())
	}
}
