package transport

import (
	"bytes"
	"testing"

	"github.com/oblivfd/oblivfd/internal/store"
)

// TestTCPBatchRoundTrip: a kindBatch frame carries mixed reads and writes
// in one message; ops apply in order so in-batch read-after-write holds
// exactly as it does for the in-process server.
func TestTCPBatchRoundTrip(t *testing.T) {
	c, _ := startServer(t)
	if err := c.CreateArray("a", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteCells("a", []int64{0, 1, 2, 3}, [][]byte{{0}, {1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}

	res, err := c.Batch([]store.BatchOp{
		{Name: "a", Idx: []int64{0, 3}},
		{Write: true, Name: "a", Idx: []int64{0}, Cts: [][]byte{{0xAB}}},
		{Name: "a", Idx: []int64{0}},
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(res) != 3 {
		t.Fatalf("Batch returned %d results, want 3", len(res))
	}
	if !bytes.Equal(res[0][0], []byte{0}) || !bytes.Equal(res[0][1], []byte{3}) {
		t.Errorf("op 0 = %v, want [[0] [3]]", res[0])
	}
	if res[1] != nil {
		t.Errorf("write op result = %v, want nil", res[1])
	}
	if !bytes.Equal(res[2][0], []byte{0xAB}) {
		t.Errorf("in-batch read-after-write = %v, want [AB]", res[2][0])
	}
}

// TestTCPBatchError: a failing op aborts the batch and surfaces the server
// error; earlier writes in the batch remain applied (serial semantics).
func TestTCPBatchError(t *testing.T) {
	c, backend := startServer(t)
	if err := c.CreateArray("a", 2); err != nil {
		t.Fatal(err)
	}
	_, err := c.Batch([]store.BatchOp{
		{Write: true, Name: "a", Idx: []int64{0}, Cts: [][]byte{{7}}},
		{Name: "missing", Idx: []int64{0}},
	})
	if err == nil {
		t.Fatal("Batch with unknown array succeeded, want error")
	}
	got, err := backend.ReadCells("a", []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], []byte{7}) {
		t.Errorf("write before failing op = %v, want [7] (serial semantics)", got[0])
	}
}

// TestPoolBatch routes a batch through the connection pool.
func TestPoolBatch(t *testing.T) {
	addr := startPoolServer(t)
	p, err := DialPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.Batch([]store.BatchOp{
		{Write: true, Name: "a", Idx: []int64{1}, Cts: [][]byte{{5}}},
		{Name: "a", Idx: []int64{1}},
	})
	if err != nil {
		t.Fatalf("pool Batch: %v", err)
	}
	if !bytes.Equal(res[1][0], []byte{5}) {
		t.Errorf("pool batch read = %v, want [5]", res[1][0])
	}
}
