package transport

import (
	"errors"
	"fmt"
	"sync"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/store"
	"github.com/oblivfd/oblivfd/internal/telemetry"
)

// FailoverPool is a store.Service over a *list* of servers. At any moment it
// drives one of them — the primary — through an ordinary connection Pool;
// when that server dies or answers with a role error, the pool re-probes the
// list, finds (or creates, by promoting the freshest replica) a new primary,
// and re-issues the failed call there. Layered under store.WithRetry it
// makes an entire server loss look like one more transient fault.
//
// Failover procedure:
//
//  1. Probe every address with a sessionless Stats call.
//  2. If a reachable server reports Primary at the highest fence seen,
//     use it.
//  3. Otherwise promote: pick the reachable replica at the newest fence,
//     breaking ties by watermark (the most records applied in that reign —
//     the smallest data loss), and hand it a fence strictly above every
//     fence seen or ever used.
//  4. Reconnect the data pool with that fence in its handshake, so a stale
//     ex-primary that answers the dial is fenced instead of obeyed.
//
// Promotion safety: the fence handed out is above anything the old primary
// held, so the moment the new primary accepts it, the old one is refused by
// every replica (ErrFenced on its next shipment) and by every fence-aware
// client. Two concurrent failover clients racing a promotion cannot fork
// history either — the loser's Promote arrives at-or-below the winner's
// fence and is refused, and it re-probes into the winner's cluster view.
//
// Cross-server resend safety is the same argument as Client's redial path:
// every write carries its exact ciphertexts (idempotent), and a create or
// delete whose acknowledgement was lost to the failover is reconciled from
// the new primary's verdict — the replica applied the primary's WAL record
// before the crash, or the op never happened anywhere.
type FailoverPool struct {
	addrs []string
	size  int
	cfg   ClientConfig

	mu     sync.Mutex
	pool   *Pool
	cur    string // address the pool currently points at
	fence  int64  // highest fencing epoch seen or issued
	closed bool

	failovers *telemetry.Counter
}

var (
	_ store.Service = (*FailoverPool)(nil)
	_ store.Batcher = (*FailoverPool)(nil)
)

// DialFailover opens a failover pool of size connections against the first
// usable server in addrs (the primary, when the cluster has one).
func DialFailover(addrs []string, size int, cfg ClientConfig) (*FailoverPool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("transport: no server addresses")
	}
	f := &FailoverPool{addrs: addrs, size: size, cfg: cfg.withDefaults()}
	if f.cfg.Metrics != nil {
		f.failovers = f.cfg.Metrics.Counter("oblivfd_failovers_total")
	} else {
		f.failovers = telemetry.NewCounter()
	}
	f.mu.Lock()
	err := f.connectLocked("")
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Failovers returns how many times the pool switched servers.
func (f *FailoverPool) Failovers() int64 { return f.failovers.Value() }

// Primary returns the address currently served and the fence in use.
func (f *FailoverPool) Primary() (addr string, fence int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cur, f.fence
}

// Close closes the underlying pool.
func (f *FailoverPool) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	if f.pool == nil {
		return nil
	}
	return f.pool.Close()
}

// probeConfig strips the session and fence from the data config: probes must
// reach replicas (which refuse fenced data sessions) and must not consume a
// namespace session slot for longer than one Stats call.
func (f *FailoverPool) probeConfig() ClientConfig {
	cfg := f.cfg
	cfg.Database = ""
	cfg.Fence = 0
	cfg.Redials = -1 // a probe is itself the retry loop; fail fast
	cfg.Metrics = nil
	return cfg
}

// connectLocked (re)establishes the data pool on the best server, promoting
// a replica when no primary answers. avoid is the address we are failing
// away from; it is chosen only when nothing else qualifies. Caller holds
// f.mu.
func (f *FailoverPool) connectLocked(avoid string) error {
	// One span covers the whole probe sweep; a promotion (when needed)
	// gets its own child naming the server it elevated.
	psp := f.cfg.Trace.Start("failover/probe")
	defer psp.End()
	release := psp.Bind()
	defer release()
	type probe struct {
		addr string
		st   store.Stats
	}
	var (
		probes   []probe
		maxFence = f.fence
		lastErr  error
	)
	pcfg := f.probeConfig()
	for _, addr := range f.addrs {
		c, err := DialWith(addr, pcfg)
		if err != nil {
			lastErr = err
			continue
		}
		st, err := c.statsRaw()
		c.Close()
		if err != nil {
			lastErr = err
			continue
		}
		probes = append(probes, probe{addr, st})
		if st.Fence > maxFence {
			maxFence = st.Fence
		}
	}
	if len(probes) == 0 {
		return fmt.Errorf("transport: no server reachable: %w: %w", store.ErrUnavailable, lastErr)
	}

	// Prefer a live primary at the newest fence; an avoided address only as
	// the last resort (it may be the very server whose verdicts failed us).
	pick := func(ok func(probe) bool) (string, bool) {
		chosen, found := "", false
		for _, p := range probes {
			if !ok(p) {
				continue
			}
			if !found || chosen == avoid {
				chosen, found = p.addr, true
			}
		}
		return chosen, found
	}
	replicated := maxFence > 0
	if addr, ok := pick(func(p probe) bool { return p.st.Primary && p.st.Fence == maxFence }); ok {
		f.fence = maxFence
		return f.openPoolLocked(addr)
	}
	if !replicated {
		// No server reports a replication role: a plain single-server (or
		// seed-era) deployment. Serve the first reachable address with no
		// fence in the handshake.
		addr, _ := pick(func(probe) bool { return true })
		f.fence = 0
		return f.openPoolLocked(addr)
	}

	// No primary answered: promote the freshest reachable replica — newest
	// fence first, watermark only as a tie-break within that fence.
	// Watermarks are per-reign stream positions, not comparable across
	// fencing epochs: after successive failovers a server stranded in an
	// older reign can report a numerically higher watermark than the newest
	// reign's survivor, but its history was superseded the moment the newer
	// fence was issued — promoting it would resurrect a forked past rather
	// than lose only the documented unshipped suffix. The avoided address is
	// still only chosen when nothing else qualifies.
	best, found := "", false
	var bestFence, bestWM int64 = -1, -1
	for pass := 0; pass < 2 && !found; pass++ {
		for _, p := range probes {
			if pass == 0 && p.addr == avoid {
				continue
			}
			if found && (p.st.Fence < bestFence ||
				(p.st.Fence == bestFence && p.st.Watermark <= bestWM)) {
				continue
			}
			best, bestFence, bestWM, found = p.addr, p.st.Fence, p.st.Watermark, true
		}
	}
	if !found {
		return fmt.Errorf("transport: no replica to promote: %w", store.ErrUnavailable)
	}
	ssp := f.cfg.Trace.Start("failover/promote:" + best)
	defer ssp.End()
	ctl, err := DialWith(best, pcfg)
	if err != nil {
		return fmt.Errorf("transport: promoting %s: %w", best, err)
	}
	newFence, err := ctl.Promote(maxFence + 1)
	ctl.Close()
	if err != nil {
		return fmt.Errorf("transport: promoting %s to fence %d: %w", best, maxFence+1, err)
	}
	f.fence = newFence
	return f.openPoolLocked(best)
}

// openPoolLocked dials the data pool against addr with the current fence in
// its session handshake. Caller holds f.mu.
func (f *FailoverPool) openPoolLocked(addr string) error {
	cfg := f.cfg
	cfg.Fence = f.fence
	p, err := DialPoolWith(addr, f.size, cfg)
	if err != nil {
		return err
	}
	f.pool, f.cur = p, addr
	return nil
}

// failoverClass reports whether an error means "this server is no longer
// usable" (fail over) as opposed to "this request failed on its merits"
// (surface to the caller / the retry layer). ErrTransient and ErrOverloaded
// are deliberately not failover triggers: the server answered, it just wants
// the client to back off and retry *here*.
func failoverClass(err error) bool {
	switch {
	case errors.Is(err, store.ErrNotPrimary), errors.Is(err, store.ErrFenced),
		errors.Is(err, store.ErrUnavailable), errors.Is(err, store.ErrServerKilled),
		errors.Is(err, ErrClosed):
		return true
	}
	return false
}

// do runs one logical call, failing over between attempts. appliedErr is
// the create/delete reconciliation sentinel (see FailoverPool's type
// comment); it only applies after at least one failover, mirroring the
// resend rule in Client.call.
func (f *FailoverPool) do(appliedErr error, fn func(p *Pool) error) error {
	var err error
	for attempt := 0; ; attempt++ {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return ErrClosed
		}
		p := f.pool
		f.mu.Unlock()
		err = fn(p)
		if err == nil {
			return nil
		}
		if attempt > 0 && appliedErr != nil && errors.Is(err, appliedErr) {
			return nil
		}
		if !failoverClass(err) {
			return err
		}
		if attempt >= len(f.addrs) {
			break
		}
		f.failoverFrom(p)
	}
	if errors.Is(err, store.ErrFenced) || errors.Is(err, store.ErrUnavailable) {
		return err
	}
	// Wrap so the retry layer classifies the exhaustion as retryable — the
	// cluster may be mid-restart, and backoff-then-reprobe is the cure.
	return fmt.Errorf("transport: every server failed: %w: %w", store.ErrUnavailable, err)
}

// failoverFrom replaces the pool that just failed. Idempotent under
// concurrency: the workers that lost the race see the pool already swapped
// and simply retry on the new one.
func (f *FailoverPool) failoverFrom(old *Pool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.pool != old {
		return
	}
	f.failovers.Inc()
	avoid := f.cur
	old.Close()
	// On connect failure the closed pool stays installed: its fast ErrClosed
	// verdicts route the next attempts back here to re-probe.
	_ = f.connectLocked(avoid)
}

// CreateArray implements store.Service.
func (f *FailoverPool) CreateArray(name string, n int) error {
	return f.do(store.ErrObjectExists, func(p *Pool) error { return p.CreateArray(name, n) })
}

// ArrayLen implements store.Service.
func (f *FailoverPool) ArrayLen(name string) (n int, err error) {
	err = f.do(nil, func(p *Pool) error { n, err = p.ArrayLen(name); return err })
	return n, err
}

// ReadCells implements store.Service.
func (f *FailoverPool) ReadCells(name string, idx []int64) (cts [][]byte, err error) {
	err = f.do(nil, func(p *Pool) error { cts, err = p.ReadCells(name, idx); return err })
	if err != nil {
		return nil, err
	}
	return cts, nil
}

// WriteCells implements store.Service.
func (f *FailoverPool) WriteCells(name string, idx []int64, cts [][]byte) error {
	return f.do(nil, func(p *Pool) error { return p.WriteCells(name, idx, cts) })
}

// CreateTree implements store.Service.
func (f *FailoverPool) CreateTree(name string, levels, slotsPerBucket int) error {
	return f.do(store.ErrObjectExists, func(p *Pool) error { return p.CreateTree(name, levels, slotsPerBucket) })
}

// ReadPath implements store.Service.
func (f *FailoverPool) ReadPath(name string, leaf uint32) (cts [][]byte, err error) {
	err = f.do(nil, func(p *Pool) error { cts, err = p.ReadPath(name, leaf); return err })
	if err != nil {
		return nil, err
	}
	return cts, nil
}

// WritePath implements store.Service.
func (f *FailoverPool) WritePath(name string, leaf uint32, slots [][]byte) error {
	return f.do(nil, func(p *Pool) error { return p.WritePath(name, leaf, slots) })
}

// WriteBuckets implements store.Service.
func (f *FailoverPool) WriteBuckets(name string, bucketStart int, slots [][]byte) error {
	return f.do(nil, func(p *Pool) error { return p.WriteBuckets(name, bucketStart, slots) })
}

// Delete implements store.Service.
func (f *FailoverPool) Delete(name string) error {
	return f.do(store.ErrUnknownObject, func(p *Pool) error { return p.Delete(name) })
}

// Reveal implements store.Service.
func (f *FailoverPool) Reveal(tag string, value int64) error {
	return f.do(nil, func(p *Pool) error { return p.Reveal(tag, value) })
}

// Checkpoint implements store.Service.
func (f *FailoverPool) Checkpoint(epoch int64) error {
	return f.do(nil, func(p *Pool) error { return p.Checkpoint(epoch) })
}

// Batch implements store.Batcher. A batch re-issued on the new primary
// re-applies idempotent cell ops, same as a redial resend.
func (f *FailoverPool) Batch(ops []store.BatchOp) (res [][][]byte, err error) {
	err = f.do(nil, func(p *Pool) error { res, err = p.Batch(ops); return err })
	if err != nil {
		return nil, err
	}
	return res, nil
}

// TraceDump gathers buffered span records from every reachable server in
// the cluster, not just the current primary: replication-ship spans live
// on the primary, but apply spans live on the replicas, and a merged
// artifact wants both sides. Unreachable servers are skipped silently; an
// error is returned only when no server answered at all.
func (f *FailoverPool) TraceDump(traceFilter string) ([]otrace.Record, error) {
	pcfg := f.probeConfig()
	var (
		recs    []otrace.Record
		lastErr error
		got     bool
	)
	for _, addr := range f.addrs {
		c, err := DialWith(addr, pcfg)
		if err != nil {
			lastErr = err
			continue
		}
		r, err := c.TraceDump(traceFilter)
		c.Close()
		if err != nil {
			lastErr = err
			continue
		}
		recs = append(recs, r...)
		got = true
	}
	if !got {
		return nil, fmt.Errorf("transport: trace dump: no server reachable: %w", lastErr)
	}
	return recs, nil
}

// Stats implements store.Service, adding the failover count to the report.
func (f *FailoverPool) Stats() (store.Stats, error) {
	var st store.Stats
	err := f.do(nil, func(p *Pool) error { var e error; st, e = p.Stats(); return e })
	if err != nil {
		return store.Stats{}, err
	}
	st.Failovers = f.failovers.Value()
	return st, nil
}
