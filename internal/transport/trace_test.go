package transport

import (
	"bytes"
	"encoding/gob"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/oblivfd/oblivfd/internal/otrace"
	"github.com/oblivfd/oblivfd/internal/store"
)

// encodeSession gob-encodes a fixed request sequence, stamping every request
// with the given trace context, and returns the total encoded length. A
// fresh encoder per call keeps the type-definition preamble identical across
// variants, so any length difference comes from the context bytes alone.
func encodeSession(t *testing.T, ctx otrace.SpanContext) int {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	reqs := []request{
		{Kind: kindHello, Name: "db", Token: "secret"},
		{Kind: kindCreateArray, Name: "a", N: 64},
		{Kind: kindWriteCells, Name: "a", Idx: []int64{0, 1}, Cts: [][]byte{{0xAB}, {0xCD}}},
		{Kind: kindReadCells, Name: "a", Idx: []int64{0, 1}},
		{Kind: kindBatch, Ops: []store.BatchOp{{Name: "a", Idx: []int64{2}, Cts: [][]byte{{0xEF}}}}},
	}
	for i := range reqs {
		reqs[i].Ctx = ctx.Wire()
		if err := enc.Encode(&reqs[i]); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	return buf.Len()
}

// TestFrameSizeTraceNeutral is the codec half of the leakage argument
// (DESIGN.md §14): the encoded length of every request is identical whether
// the context is zero (tracing off), sampled, or unsampled — and identical
// across different ID values, including IDs whose bytes are all ≥ 0x80
// (which a varint-per-element encoding would inflate).
func TestFrameSizeTraceNeutral(t *testing.T) {
	high := otrace.SpanContext{Sampled: true}
	low := otrace.SpanContext{Sampled: false}
	for i := 0; i < 16; i++ {
		high.Trace[i] = byte(0x80 + i)
		low.Trace[i] = byte(i + 1)
	}
	for i := 0; i < 8; i++ {
		high.Span[i] = byte(0xF0 + i)
		low.Span[i] = byte(i + 1)
	}

	off := encodeSession(t, otrace.SpanContext{})
	sampledHigh := encodeSession(t, high)
	unsampledLow := encodeSession(t, low)
	if off != sampledHigh || off != unsampledLow {
		t.Fatalf("frame bytes leak tracing state: off=%d sampled(high IDs)=%d unsampled(low IDs)=%d",
			off, sampledHigh, unsampledLow)
	}
}

// tallyListener counts every byte the server reads off accepted
// connections: the adversary's exact view of client→server traffic volume.
type tallyListener struct {
	net.Listener
	n *atomic.Int64
}

func (l tallyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return tallyConn{Conn: c, n: l.n}, nil
}

type tallyConn struct {
	net.Conn
	n *atomic.Int64
}

func (c tallyConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// runCountedSession runs a fixed op sequence against a fresh server and
// returns how many bytes the server read from the client.
func runCountedSession(t *testing.T, tr *otrace.Tracer) int64 {
	t.Helper()
	var n atomic.Int64
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(backend)
	go func() { _ = srv.Serve(tallyListener{Listener: l, n: &n}) }()
	defer l.Close()

	cfg := DefaultClientConfig()
	cfg.Trace = tr
	c, err := DialWith(l.Addr().String(), cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := c.CreateArray("a", 64); err != nil {
		t.Fatalf("CreateArray: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := c.WriteCells("a", []int64{int64(i)}, [][]byte{{byte(i)}}); err != nil {
			t.Fatalf("WriteCells: %v", err)
		}
		if _, err := c.ReadCells("a", []int64{int64(i)}); err != nil {
			t.Fatalf("ReadCells: %v", err)
		}
	}
	if _, err := c.ArrayLen("a"); err != nil {
		t.Fatalf("ArrayLen: %v", err)
	}
	// Every request byte has been read by the server once its response is
	// back, so the counter is stable here; Close sends nothing.
	c.Close()
	return n.Load()
}

// TestWireBytesTraceNeutral is the end-to-end half of the leakage argument:
// the server-side byte count of a whole session is identical with tracing
// off, fully sampled, and mixed sampled/unsampled.
func TestWireBytesTraceNeutral(t *testing.T) {
	off := runCountedSession(t, nil)
	on := runCountedSession(t, otrace.New(otrace.Config{Service: "c", SampleEvery: 1}))
	mixed := runCountedSession(t, otrace.New(otrace.Config{Service: "c", SampleEvery: 2}))
	if off != on || off != mixed {
		t.Fatalf("session bytes leak tracing state: off=%d sampled=%d mixed=%d", off, on, mixed)
	}
	if off == 0 {
		t.Fatal("counting listener saw no bytes")
	}
}

// TestTraceDumpMergesCausalTree drives traced RPCs through a traced server
// and checks the two halves join: the TraceDump RPC returns server spans
// whose trace IDs match the client's and whose parents are the client RPC
// spans that carried them in.
func TestTraceDumpMergesCausalTree(t *testing.T) {
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(backend)
	srv.SetTracer(otrace.New(otrace.Config{Service: "fdserver", SampleEvery: 1}))
	go func() { _ = srv.Serve(l) }()
	defer l.Close()

	client := otrace.New(otrace.Config{Service: "fddiscover", SampleEvery: 1})
	cfg := DefaultClientConfig()
	cfg.Trace = client
	c, err := DialWith(l.Addr().String(), cfg)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// A bound root models the lattice-level span: the RPC spans must
	// parent under it, and the server spans under the RPC spans.
	root := client.StartRoot("lattice/level-01")
	release := root.Bind()
	if err := c.CreateArray("a", 8); err != nil {
		t.Fatalf("CreateArray: %v", err)
	}
	if err := c.WriteCells("a", []int64{0}, [][]byte{{1}}); err != nil {
		t.Fatalf("WriteCells: %v", err)
	}
	release()
	root.End()

	traceID := root.Context().Trace.String()
	clientRecs := client.Records()
	rpcSpans := map[string]string{} // span ID -> name
	for _, r := range clientRecs {
		if r.Trace != traceID {
			t.Fatalf("client span %q on unexpected trace %s", r.Name, r.Trace)
		}
		if strings.HasPrefix(r.Name, "rpc/") {
			if r.Parent != root.Context().Span.String() {
				t.Fatalf("%s parent = %q, want root span %q", r.Name, r.Parent, root.Context().Span)
			}
			rpcSpans[r.Span] = r.Name
		}
	}
	if len(rpcSpans) != 2 {
		t.Fatalf("client recorded %d rpc spans, want 2: %+v", len(rpcSpans), clientRecs)
	}

	serverRecs, err := c.TraceDump(traceID)
	if err != nil {
		t.Fatalf("TraceDump: %v", err)
	}
	serverSide := 0
	for _, r := range serverRecs {
		if r.Trace != traceID {
			t.Fatalf("TraceDump returned foreign trace %s (filter %s)", r.Trace, traceID)
		}
		if !strings.HasPrefix(r.Name, "server/") {
			continue
		}
		if r.Service != "fdserver" {
			t.Fatalf("server span service = %q", r.Service)
		}
		if _, ok := rpcSpans[r.Parent]; !ok {
			t.Fatalf("server span %q parent %q is not a client rpc span", r.Name, r.Parent)
		}
		serverSide++
	}
	if serverSide != 2 {
		t.Fatalf("server recorded %d dispatch spans for the trace, want 2: %+v", serverSide, serverRecs)
	}
}

// TestTraceDumpTokenGated: on a token-protected server the span dump is an
// authenticated operator surface, exactly like replication control.
func TestTraceDumpTokenGated(t *testing.T) {
	backend := store.NewServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(backend)
	srv.SetTracer(otrace.New(otrace.Config{Service: "fdserver"}))
	srv.SetSessionLimits(store.SessionLimits{Token: "hunter2"})
	go func() { _ = srv.Serve(l) }()
	defer l.Close()

	bad := DefaultClientConfig()
	bad.Token = "wrong"
	cb, err := DialWith(l.Addr().String(), bad)
	if err == nil {
		defer cb.Close()
		if _, err := cb.TraceDump(""); err == nil {
			t.Fatal("TraceDump with a bad token succeeded")
		}
	}

	good := DefaultClientConfig()
	good.Token = "hunter2"
	cg, err := DialWith(l.Addr().String(), good)
	if err != nil {
		t.Fatalf("dial with token: %v", err)
	}
	defer cg.Close()
	if _, err := cg.TraceDump(""); err != nil {
		t.Fatalf("TraceDump with the right token: %v", err)
	}
}
